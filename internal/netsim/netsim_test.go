package netsim

import (
	"math"
	"testing"

	"sweb/internal/des"
)

func newLinks(sim *des.Simulator, n int, rate float64) []*des.PSResource {
	links := make([]*des.PSResource, n)
	for i := range links {
		links[i] = des.NewPSResource(sim, "link", rate)
	}
	return links
}

func TestFatTreeInternalTransferTiming(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 2, 1e6))
	var done des.Time
	ft.InternalTransfer(0, 1, 1_000_000, func() { done = sim.Now() })
	sim.RunAll()
	// 1 MB * 1.1 penalty over 1 MB/s + latency.
	want := 1.1 + ft.ControlLatency().ToSeconds()
	if got := done.ToSeconds(); math.Abs(got-want) > 0.01 {
		t.Fatalf("transfer took %v, want %v", got, want)
	}
}

func TestFatTreeSameNodeTransferIsFree(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 2, 1e6))
	var done des.Time
	ft.InternalTransfer(1, 1, 100<<20, func() { done = sim.Now() })
	sim.RunAll()
	if done.ToSeconds() > 0.001 {
		t.Fatalf("same-node transfer took %v", done)
	}
}

func TestFatTreeSenderLinkContention(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 3, 1e6))
	var d1, d2 des.Time
	// Two transfers out of node 0 share its link; destinations differ.
	ft.InternalTransfer(0, 1, 500_000, func() { d1 = sim.Now() })
	ft.InternalTransfer(0, 2, 500_000, func() { d2 = sim.Now() })
	sim.RunAll()
	for _, d := range []des.Time{d1, d2} {
		if got := d.ToSeconds(); math.Abs(got-1.1) > 0.05 {
			t.Fatalf("contended transfer took %v, want ~1.1s", got)
		}
	}
}

func TestFatTreeDifferentSendersDoNotContend(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 2, 1e6))
	var d1, d2 des.Time
	ft.InternalTransfer(0, 1, 500_000, func() { d1 = sim.Now() })
	ft.InternalTransfer(1, 0, 500_000, func() { d2 = sim.Now() })
	sim.RunAll()
	// Full bisection: each uses its own link, ~0.55s each.
	for _, d := range []des.Time{d1, d2} {
		if got := d.ToSeconds(); math.Abs(got-0.55) > 0.05 {
			t.Fatalf("transfer took %v, want ~0.55s", got)
		}
	}
}

func TestFatTreeClientTransferSentBeforeDelivered(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 1, 1e6))
	link := ClientLink{Name: "c", LatencyOneWay: 10 * des.Millisecond, BytesPerSec: 2e6}
	var sent, delivered des.Time
	ft.ClientTransfer(0, link, 1_000_000, func() { sent = sim.Now() }, func() { delivered = sim.Now() })
	sim.RunAll()
	if sent == 0 || delivered == 0 || sent >= delivered {
		t.Fatalf("sent=%v delivered=%v", sent, delivered)
	}
	// sent at ~1s (link), delivered ~ +latency +0.5s drain.
	if got := sent.ToSeconds(); math.Abs(got-1.0) > 0.02 {
		t.Fatalf("sent at %v", got)
	}
	if got := (delivered - sent).ToSeconds(); math.Abs(got-0.51) > 0.02 {
		t.Fatalf("drain took %v", got)
	}
}

func TestFatTreeNilCallbacksAllowed(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 1, 1e6))
	ft.ClientTransfer(0, CampusClient(), 1000, nil, nil)
	sim.RunAll() // must not panic
}

func TestEthernetBusPenaltyOnInternalTraffic(t *testing.T) {
	sim := des.New()
	eb := NewEthernetBus(sim, newLinks(sim, 2, 10e6), 1e6, 0)
	var done des.Time
	eb.InternalTransfer(0, 1, 1_000_000, func() { done = sim.Now() })
	sim.RunAll()
	// NIC stage 0.1s + bus 1.6s (penalty) + latency.
	want := 0.1 + 1.6 + eb.ControlLatency().ToSeconds()
	if got := done.ToSeconds(); math.Abs(got-want) > 0.05 {
		t.Fatalf("NFS over Ethernet took %v, want ~%v", got, want)
	}
	if eb.RemotePenalty() != 1.6 {
		t.Fatalf("penalty = %v", eb.RemotePenalty())
	}
}

func TestEthernetBusIsSharedAcrossSenders(t *testing.T) {
	sim := des.New()
	eb := NewEthernetBus(sim, newLinks(sim, 2, 100e6), 1e6, 0)
	var d1, d2 des.Time
	link := ClientLink{Name: "c", LatencyOneWay: 0, BytesPerSec: 1e9}
	eb.ClientTransfer(0, link, 500_000, nil, func() { d1 = sim.Now() })
	eb.ClientTransfer(1, link, 500_000, nil, func() { d2 = sim.Now() })
	sim.RunAll()
	// Both cross the single 1 MB/s bus: ~1s each, not ~0.5s.
	for _, d := range []des.Time{d1, d2} {
		if got := d.ToSeconds(); got < 0.9 {
			t.Fatalf("bus sharing not modeled: transfer took %v", got)
		}
	}
}

func TestEthernetBackgroundLoadSlowsBus(t *testing.T) {
	timeFor := func(background float64) float64 {
		sim := des.New()
		eb := NewEthernetBus(sim, newLinks(sim, 1, 100e6), 1e6, background)
		var done des.Time
		eb.ClientTransfer(0, ClientLink{BytesPerSec: 1e9}, 1_000_000, nil, func() { done = sim.Now() })
		sim.RunAll()
		return done.ToSeconds()
	}
	quiet, busy := timeFor(0), timeFor(1)
	if busy < 1.8*quiet {
		t.Fatalf("background traffic has no effect: quiet=%v busy=%v", quiet, busy)
	}
}

func TestEthernetBusSameNodeFree(t *testing.T) {
	sim := des.New()
	eb := NewEthernetBus(sim, newLinks(sim, 2, 1e6), 1e6, 0)
	var done des.Time
	eb.InternalTransfer(0, 0, 100<<20, func() { done = sim.Now() })
	sim.RunAll()
	if done.ToSeconds() > 0.001 {
		t.Fatalf("same-node transfer crossed the bus: %v", done)
	}
	if eb.BusLoad() != 0 {
		t.Fatalf("bus load = %d", eb.BusLoad())
	}
}

func TestClientLinkPresets(t *testing.T) {
	campus, east := CampusClient(), CrossCountryClient()
	if campus.LatencyOneWay >= east.LatencyOneWay {
		t.Fatal("cross-country latency must exceed campus latency")
	}
	if campus.BytesPerSec <= east.BytesPerSec {
		t.Fatal("campus bandwidth must exceed cross-country bandwidth")
	}
}

func TestMeikoPenaltyLessThanEthernetPenalty(t *testing.T) {
	sim := des.New()
	ft := NewFatTree(sim, newLinks(sim, 1, 1e6))
	eb := NewEthernetBus(sim, newLinks(sim, 1, 1e6), 1e6, 0)
	// Paper: ~10% penalty on the Meiko, 50-70% on Ethernet.
	if ft.RemotePenalty() >= eb.RemotePenalty() {
		t.Fatal("fat tree must have lower remote penalty than the shared bus")
	}
	if ft.RemotePenalty() < 1.05 || ft.RemotePenalty() > 1.2 {
		t.Fatalf("meiko penalty %v outside the paper's ~10%%", ft.RemotePenalty())
	}
	if eb.RemotePenalty() < 1.5 || eb.RemotePenalty() > 1.7 {
		t.Fatalf("ethernet penalty %v outside the paper's 50-70%%", eb.RemotePenalty())
	}
}

func TestConstructorsPanicOnEmpty(t *testing.T) {
	sim := des.New()
	for _, fn := range []func(){
		func() { NewFatTree(sim, nil) },
		func() { NewEthernetBus(sim, nil, 1e6, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
