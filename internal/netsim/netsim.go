// Package netsim models the networks in the SWEB paper's two testbeds: the
// Meiko CS-2's fat-tree interconnect (full bisection bandwidth, so traffic
// contends only on each node's own attachment link) and the NOW's single
// shared 10 Mb/s Ethernet bus (every internal NFS transfer and every
// response to a client crosses one contended segment that also carries
// unrelated campus traffic). It also models the Internet path to clients,
// which the paper treats as equal for all server nodes and therefore
// excludes from the scheduling decision, but which still contributes t_net
// to the measured response time.
//
// Both interconnects attach to the per-node NIC resources owned by
// model.Node, so the load daemon can observe "network load" per node the
// same way it observes CPU and disk load.
package netsim

import (
	"sweb/internal/des"
)

// ClientLink describes the Internet path between the server site and one
// client population.
type ClientLink struct {
	Name string
	// LatencyOneWay is the one-way propagation delay.
	LatencyOneWay des.Time
	// BytesPerSec is the end-to-end bottleneck bandwidth of the client's
	// connection, applied as a dedicated drain stage per transfer.
	BytesPerSec float64
}

// CampusClient models the paper's primary clients "situated within UCSB":
// low latency, bandwidth high enough that the server side is the bottleneck.
func CampusClient() ClientLink {
	return ClientLink{Name: "ucsb-campus", LatencyOneWay: 2 * des.Millisecond, BytesPerSec: 2e6}
}

// CrossCountryClient models the Rutgers (New Jersey) clients: "poor
// bandwidth and long latency over the connection from the east coast".
func CrossCountryClient() ClientLink {
	return ClientLink{Name: "rutgers", LatencyOneWay: 35 * des.Millisecond, BytesPerSec: 150e3}
}

// Network is the interconnect seen by the simulated SWEB nodes.
type Network interface {
	// InternalTransfer moves bytes of NFS payload from node src to node
	// dst, invoking done when the last byte arrives.
	InternalTransfer(src, dst int, bytes int64, done func())
	// ClientTransfer sends bytes from node src toward a client over link.
	// sent fires when the bytes have left the server site (the handler
	// process can exit); delivered fires when the client has received
	// them. Either callback may be nil.
	ClientTransfer(src int, link ClientLink, bytes int64, sent, delivered func())
	// ControlLatency is the one-way delay for a small control datagram
	// (loadd broadcasts, redirect notes) inside the server site.
	ControlLatency() des.Time
	// RemotePenalty is the multiplicative slowdown of a remote file fetch
	// versus a local one, as the broker's oracle is configured with
	// (~1.1 on the Meiko, 1.5-1.7 on Ethernet).
	RemotePenalty() float64
	// Name identifies the interconnect for reports.
	Name() string
}

// after is a tiny helper: fire fn (if non-nil) after d.
func after(sim *des.Simulator, d des.Time, fn func()) {
	if fn == nil {
		return
	}
	sim.After(d, fn)
}

// FatTree models the Meiko CS-2 interconnect. The hardware peak is 40 MB/s,
// but SWEB deliberately runs on Solaris TCP sockets and "were only able to
// achieve approximately 5-15% of the peak communication performance", so the
// effective attachment rate is the nodes' NIC rate (~5 MB/s). The fat tree
// has full bisection bandwidth, so a transfer contends only on the sender's
// attachment link.
type FatTree struct {
	sim     *des.Simulator
	links   []*des.PSResource // per-node attachment links (the nodes' NICs)
	latency des.Time
	penalty float64
}

// NewFatTree builds the Meiko interconnect over the given per-node
// attachment links (normally each model.Node's NIC resource).
func NewFatTree(sim *des.Simulator, links []*des.PSResource) *FatTree {
	if len(links) == 0 {
		panic("netsim: fat tree needs at least one link")
	}
	return &FatTree{sim: sim, links: links, latency: 500 * des.Microsecond, penalty: 1.1}
}

// Name implements Network.
func (ft *FatTree) Name() string { return "meiko-fat-tree" }

// RemotePenalty implements Network.
func (ft *FatTree) RemotePenalty() float64 { return ft.penalty }

// ControlLatency implements Network.
func (ft *FatTree) ControlLatency() des.Time { return ft.latency }

// InternalTransfer implements Network. The NFS payload pays the sender's
// link plus the protocol penalty that makes b2 < b1.
func (ft *FatTree) InternalTransfer(src, dst int, bytes int64, done func()) {
	if src == dst {
		after(ft.sim, 0, done)
		return
	}
	ft.links[src].Submit(float64(bytes)*ft.penalty, func() {
		after(ft.sim, ft.latency, done)
	})
}

// ClientTransfer implements Network. The response leaves through the node's
// attachment link, then drains over the client's dedicated Internet path.
func (ft *FatTree) ClientTransfer(src int, link ClientLink, bytes int64, sent, delivered func()) {
	ft.links[src].Submit(float64(bytes), func() {
		if sent != nil {
			sent()
		}
		drain := des.Seconds(float64(bytes) / link.BytesPerSec)
		after(ft.sim, link.LatencyOneWay+drain, delivered)
	})
}

// EthernetBus models the NOW's shared 10 Mb/s Ethernet segment. Traffic
// first crosses the sending node's NIC, then the single bus, which
// additionally carries elastic background traffic from "other UCSB
// machines". Remote NFS over this bus costs 50-70% more than a local read.
type EthernetBus struct {
	sim     *des.Simulator
	nics    []*des.PSResource
	bus     *des.PSResource
	latency des.Time
	penalty float64
}

// NewEthernetBus builds the shared segment over the nodes' NICs. busRate is
// the achievable payload bandwidth in bytes/second (10 Mb/s line rate is
// 1.25 MB/s; CSMA/CD and protocol overhead bring the usable default to
// ~1.1 MB/s) and background is the phantom competing load in equivalent
// always-on flows.
func NewEthernetBus(sim *des.Simulator, nics []*des.PSResource, busRate, background float64) *EthernetBus {
	if len(nics) == 0 {
		panic("netsim: ethernet needs at least one NIC")
	}
	bus := des.NewPSResource(sim, "ethernet/bus", busRate)
	bus.SetBackground(background)
	return &EthernetBus{sim: sim, nics: nics, bus: bus, latency: 1 * des.Millisecond, penalty: 1.6}
}

// Name implements Network.
func (eb *EthernetBus) Name() string { return "now-ethernet" }

// RemotePenalty implements Network.
func (eb *EthernetBus) RemotePenalty() float64 { return eb.penalty }

// ControlLatency implements Network.
func (eb *EthernetBus) ControlLatency() des.Time { return eb.latency }

// BusLoad returns the instantaneous number of real transfers on the bus.
func (eb *EthernetBus) BusLoad() int { return eb.bus.Load() }

// BusUtilization returns the busy fraction of the bus since t0.
func (eb *EthernetBus) BusUtilization(t0 des.Time) float64 { return eb.bus.Utilization(t0) }

// InternalTransfer implements Network.
func (eb *EthernetBus) InternalTransfer(src, dst int, bytes int64, done func()) {
	if src == dst {
		after(eb.sim, 0, done)
		return
	}
	eb.nics[src].Submit(float64(bytes), func() {
		// Remote NFS pays the RPC/retransmission penalty as extra bus
		// occupancy, reproducing the measured 50-70% cost increase.
		eb.bus.Submit(float64(bytes)*eb.penalty, func() {
			after(eb.sim, eb.latency, done)
		})
	})
}

// ClientTransfer implements Network.
func (eb *EthernetBus) ClientTransfer(src int, link ClientLink, bytes int64, sent, delivered func()) {
	eb.nics[src].Submit(float64(bytes), func() {
		eb.bus.Submit(float64(bytes), func() {
			if sent != nil {
				sent()
			}
			drain := des.Seconds(float64(bytes) / link.BytesPerSec)
			after(eb.sim, link.LatencyOneWay+drain, delivered)
		})
	})
}

var (
	_ Network = (*FatTree)(nil)
	_ Network = (*EthernetBus)(nil)
)
