package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestZeroRecorderDiscardsEverything(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	r.Record(1, 0, EvIssued, 0, "")
	if r.Len() != 0 {
		t.Fatal("nil recorder stored an event")
	}
	if r.NewRequest() != -1 {
		t.Fatal("nil recorder allocated an id")
	}
	var zero Recorder
	zero.Record(1, 0, EvIssued, 0, "")
	if zero.Len() != 0 {
		t.Fatal("zero recorder stored an event")
	}
}

func TestRecordAndSpan(t *testing.T) {
	r := NewRecorder(0)
	id := r.NewRequest()
	r.Record(id, 0.0, EvIssued, -1, "path=/a")
	r.Record(id, 0.1, EvConnected, 2, "")
	r.Record(id, 0.3, EvDelivered, 2, "")
	other := r.NewRequest()
	r.Record(other, 0.2, EvIssued, -1, "")
	span := r.Span(id)
	if len(span) != 3 {
		t.Fatalf("span len = %d", len(span))
	}
	for i := 1; i < len(span); i++ {
		if span[i].At < span[i-1].At {
			t.Fatal("span not time-ordered")
		}
	}
	if got := r.Requests(); len(got) != 2 || got[0] != id || got[1] != other {
		t.Fatalf("requests = %v", got)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(3)
	id := r.NewRequest()
	for i := 0; i < 10; i++ {
		r.Record(id, float64(i), EvIssued, 0, "")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want capped at 3", r.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := r.NewRequest()
				r.Record(id, float64(i), EvIssued, 0, "")
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d", r.Len())
	}
	ids := map[int64]bool{}
	for _, e := range r.Events() {
		if ids[e.Req] {
			t.Fatal("duplicate request id")
		}
		ids[e.Req] = true
	}
}

func TestRenderSpan(t *testing.T) {
	r := NewRecorder(0)
	id := r.NewRequest()
	r.Record(id, 1.0, EvIssued, -1, "path=/doc.html")
	r.Record(id, 1.002, EvConnected, 3, "")
	r.Record(id, 1.01, EvRedirected, 3, "to=1")
	out := RenderSpan(r.Span(id))
	for _, want := range []string{"req 1", "issued", "node 3", "to=1", "0.000000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered span missing %q:\n%s", want, out)
		}
	}
	if RenderSpan(nil) != "(empty span)\n" {
		t.Fatal("empty span rendering")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(0)
	// Two requests: one straight-through, one redirected+refused elsewhere.
	a := r.NewRequest()
	r.Record(a, 0.00, EvIssued, -1, "")
	r.Record(a, 0.01, EvConnected, 0, "")
	r.Record(a, 0.03, EvParsed, 0, "")
	r.Record(a, 0.035, EvAnalyzed, 0, "")
	r.Record(a, 0.50, EvSent, 0, "")
	r.Record(a, 0.60, EvDelivered, 0, "")
	b := r.NewRequest()
	r.Record(b, 0.00, EvIssued, -1, "")
	r.Record(b, 0.01, EvRedirected, 1, "to=0")
	r.Record(b, 0.02, EvRefused, 0, "accept capacity")

	s := Summarize(r.Events())
	if s.Requests != 2 || s.Completed != 1 || s.Redirected != 1 || s.Refused != 1 {
		t.Fatalf("summary = %+v", s)
	}
	phase := s.MeanPhase["parsed→analyzed"]
	if phase < 0.004 || phase > 0.006 {
		t.Fatalf("parsed→analyzed = %v", phase)
	}
	if d := s.MeanPhase["sent→delivered"]; d < 0.0999 || d > 0.1001 {
		t.Fatalf("sent→delivered = %v", d)
	}
	out := RenderSummary(s)
	if !strings.Contains(out, "requests 2") || !strings.Contains(out, "parsed→analyzed") {
		t.Fatalf("summary rendering:\n%s", out)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Requests != 0 || len(s.MeanPhase) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
