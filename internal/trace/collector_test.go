package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBeginJoinsAndMints(t *testing.T) {
	rec := NewRecorder(0)
	req1, minted := rec.Begin("")
	if minted == "" {
		t.Fatal("Begin(\"\") did not mint a trace id")
	}
	req2, joined := rec.Begin(minted)
	if joined != minted {
		t.Fatalf("joining returned %q, want the inbound %q", joined, minted)
	}
	if rec.TraceOf(req1) != minted || rec.TraceOf(req2) != minted {
		t.Fatal("both requests should be bound to the same trace")
	}
	rec.Record(req2, 1.0, EvConnected, 1, "")
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Trace != minted {
		t.Fatalf("recorded event not stamped with the trace: %+v", evs)
	}
}

func TestBeginDisabledPassesContextThrough(t *testing.T) {
	var rec *Recorder
	req, ctx := rec.Begin("abcd")
	if req != -1 || ctx != "abcd" {
		t.Fatalf("disabled Begin = (%d, %q), want (-1, \"abcd\")", req, ctx)
	}
	rec.Record(req, 0, EvConnected, 0, "") // must not panic
}

func TestDroppedCountsOverflow(t *testing.T) {
	rec := NewRecorder(2)
	req := rec.NewRequest()
	for i := 0; i < 5; i++ {
		rec.Record(req, float64(i), EvConnected, 0, "")
	}
	if rec.Len() != 2 {
		t.Fatalf("kept %d events, want 2", rec.Len())
	}
	if rec.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", rec.Dropped())
	}
}

func TestCollectorAlignsEpochs(t *testing.T) {
	col := NewCollector()
	// Two nodes, epochs 100s apart, both contributing to trace "x": the
	// collector must shift each stream onto the shared absolute clock.
	col.Add(100, []Event{{Trace: "x", Req: 1, At: 1.0, Kind: EvConnected, Node: 0}})
	col.Add(200, []Event{{Trace: "x", Req: 7, At: 0.5, Kind: EvSent, Node: 1}})
	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].At != 101.0 || evs[1].At != 200.5 {
		t.Fatalf("epoch alignment wrong: %v and %v", evs[0].At, evs[1].At)
	}
	spans := col.Spans()
	if len(spans) != 1 || spans[0].Trace != "x" {
		t.Fatalf("want one span for trace x, got %+v", spans)
	}
	if n := spans[0].Nodes(); len(n) != 2 {
		t.Fatalf("span nodes %v, want both", n)
	}
}

func TestCollectorSyntheticIDsNeverMerge(t *testing.T) {
	// Untraced events with the same local request id on different nodes
	// must not merge into one span.
	col := NewCollector()
	col.Add(0, []Event{{Req: 1, At: 1, Kind: EvConnected, Node: 0}})
	col.Add(0, []Event{{Req: 1, At: 2, Kind: EvConnected, Node: 1}})
	if spans := col.Spans(); len(spans) != 2 {
		t.Fatalf("untraced streams merged: %+v", spans)
	}
}

func TestSpanRedirectionSumsHops(t *testing.T) {
	span := Span{Trace: "x", Events: []Event{
		{At: 1.0, Kind: EvConnected, Node: 0},
		{At: 1.2, Kind: EvRedirected, Node: 0},
		{At: 1.7, Kind: EvConnected, Node: 1},
		{At: 2.0, Kind: EvSent, Node: 1},
	}}
	got, ok := span.Redirection()
	if !ok || got < 0.499 || got > 0.501 {
		t.Fatalf("Redirection() = (%v, %v), want (0.5, true)", got, ok)
	}
	noHop := Span{Trace: "y", Events: []Event{{At: 1, Kind: EvConnected, Node: 0}}}
	if _, ok := noHop.Redirection(); ok {
		t.Fatal("span without a redirect reported a hop")
	}
}

func TestExportChromeSchema(t *testing.T) {
	col := NewCollector()
	col.Add(0, []Event{
		{Trace: "x", Req: 1, At: 0.0, Kind: EvIssued, Node: -1},
		{Trace: "x", Req: 1, At: 0.1, Kind: EvResolved, Node: 0},
		{Trace: "x", Req: 2, At: 0.2, Kind: EvConnected, Node: 0},
		{Trace: "x", Req: 2, At: 0.3, Kind: EvParsed, Node: 0},
		{Trace: "x", Req: 2, At: 0.4, Kind: EvAnalyzed, Node: 0},
		{Trace: "x", Req: 2, At: 0.5, Kind: EvRedirected, Node: 0},
		{Trace: "x", Req: 3, At: 0.9, Kind: EvConnected, Node: 1},
		{Trace: "x", Req: 3, At: 1.0, Kind: EvSent, Node: 1},
	})
	var buf bytes.Buffer
	if err := ExportChrome(&buf, col.Spans()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range out.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if !strings.Contains("XsfiM", ph) || ph == "" {
			t.Fatalf("unexpected phase %q in %v", ph, ev)
		}
	}
	// The node-0→node-1 hop must render as a flow arrow pair, the
	// adjacent same-node pairs as complete slices, plus track metadata.
	if phases["s"] == 0 || phases["f"] == 0 {
		t.Fatalf("no flow arrows: %v", phases)
	}
	if phases["X"] == 0 || phases["M"] == 0 {
		t.Fatalf("missing slices or metadata: %v", phases)
	}
}
