package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: spans rendered in the JSON format Perfetto
// and chrome://tracing load (the "JSON Array Format" with a traceEvents
// wrapper). The mapping:
//
//   - one track (pid) per server node, plus one for the client side;
//   - one row (tid) per span, so concurrent requests on a node stack
//     instead of overlapping;
//   - "X" complete slices for the phase intervals (parse, analyze,
//     redirect, fetch+send, resolve, deliver);
//   - "s"/"f" flow arrows whenever a span hops between tracks — the 302
//     redirect and the internal fetch made visible as arrows;
//   - "i" instants for events that bound no slice (refused, timed-out);
//   - "M" metadata naming the tracks.
//
// Timestamps are microseconds, rebased to the earliest event so the
// viewer opens at t=0 instead of the Unix epoch.

// chromeEvent is one element of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// clientPid is the track for node -1 (the client / DNS side).
const clientPid = 1

func chromePid(node int) int {
	if node < 0 {
		return clientPid
	}
	return node + 2
}

// slicePairs maps adjacent same-track event kinds to a named phase slice.
var slicePairs = map[[2]Kind]string{
	{EvIssued, EvResolved}:     "resolve",
	{EvConnected, EvParsed}:    "parse",
	{EvParsed, EvAnalyzed}:     "analyze",
	{EvAnalyzed, EvRedirected}: "redirect",
	{EvAnalyzed, EvForwarded}:  "forward",
	{EvFetchLocal, EvSent}:     "fetch-local+send",
	{EvFetchNFS, EvSent}:       "fetch-nfs+send",
	{EvCGI, EvSent}:            "cgi+send",
	{EvSent, EvDelivered}:      "deliver",
}

// ExportChrome writes the spans as a Perfetto-loadable Chrome trace.
func ExportChrome(w io.Writer, spans []Span) error {
	var out []chromeEvent
	pids := map[int]int{} // chrome pid -> sweb node
	t0, haveT0 := 0.0, false
	for _, sp := range spans {
		for _, e := range sp.Events {
			if !haveT0 || e.At < t0 {
				t0, haveT0 = e.At, true
			}
		}
	}
	ts := func(at float64) float64 { return (at - t0) * 1e6 }

	for si, sp := range spans {
		tid := int64(si + 1)
		used := make([]bool, len(sp.Events))
		flows := 0
		for i := 1; i < len(sp.Events); i++ {
			a, b := sp.Events[i-1], sp.Events[i]
			pids[chromePid(a.Node)] = a.Node
			pids[chromePid(b.Node)] = b.Node
			if chromePid(a.Node) == chromePid(b.Node) {
				if name, ok := slicePairs[[2]Kind{a.Kind, b.Kind}]; ok {
					dur := ts(b.At) - ts(a.At)
					if dur < 0 {
						dur = 0
					}
					out = append(out, chromeEvent{
						Name: name, Cat: "sweb", Ph: "X",
						Ts: ts(a.At), Dur: dur,
						Pid: chromePid(a.Node), Tid: tid,
						Args: map[string]any{"trace": string(sp.Trace), "detail": a.Detail},
					})
					used[i-1], used[i] = true, true
				}
				continue
			}
			// Track hop: a redirect or internal fetch crossing nodes
			// becomes a flow arrow between the two tracks.
			flows++
			id := fmt.Sprintf("%s/%d", sp.Trace, flows)
			out = append(out, chromeEvent{
				Name: "hop", Cat: "sweb", Ph: "s", Ts: ts(a.At),
				Pid: chromePid(a.Node), Tid: tid, ID: id,
			})
			out = append(out, chromeEvent{
				Name: "hop", Cat: "sweb", Ph: "f", BP: "e", Ts: ts(b.At),
				Pid: chromePid(b.Node), Tid: tid, ID: id,
			})
		}
		for i, e := range sp.Events {
			pids[chromePid(e.Node)] = e.Node
			if used[i] {
				continue
			}
			out = append(out, chromeEvent{
				Name: string(e.Kind), Cat: "sweb", Ph: "i", S: "t",
				Ts: ts(e.At), Pid: chromePid(e.Node), Tid: tid,
				Args: map[string]any{"trace": string(sp.Trace), "detail": e.Detail},
			})
		}
	}

	pidList := make([]int, 0, len(pids))
	for p := range pids {
		pidList = append(pidList, p)
	}
	sort.Ints(pidList)
	meta := make([]chromeEvent, 0, len(pidList))
	for _, p := range pidList {
		name := fmt.Sprintf("node %d", pids[p])
		if pids[p] < 0 {
			name = "client"
		}
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}
