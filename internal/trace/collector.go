package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Collector merges per-node event streams — each timed in seconds since
// its own recorder's epoch — onto one shared absolute clock and groups
// them by trace id into end-to-end spans. This is the stitching half of
// distributed tracing: every live node serves its raw stream (plus its
// epoch as a Unix timestamp) under /sweb/trace, and the collector turns
// those per-node fragments into the paper's Figure 1 cross-node picture.
type Collector struct {
	mu      sync.Mutex
	streams []stream
}

type stream struct {
	epoch  float64 // the stream's time zero, as Unix seconds
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add ingests one node's event stream. epochUnix anchors the stream's
// relative At values to the wall clock (Unix seconds); pass 0 for streams
// already on a shared clock (e.g. a simulator run, or several nodes
// sharing one recorder and epoch).
func (c *Collector) Add(epochUnix float64, events []Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.streams = append(c.streams, stream{
		epoch:  epochUnix,
		events: append([]Event(nil), events...),
	})
}

// Events returns every collected event on the shared clock, sorted by
// time. Events without a trace id get a synthetic per-stream one, so two
// nodes' unrelated local request ids can never merge by accident.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for si, st := range c.streams {
		for _, e := range st.events {
			e.At += st.epoch
			if e.Trace == "" {
				e.Trace = TraceID(fmt.Sprintf("untraced-%d-%d", si, e.Req))
			}
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Span is one end-to-end request: every event recorded under one trace
// id, across however many nodes it touched, time-ordered on the shared
// clock.
type Span struct {
	Trace  TraceID
	Events []Event
}

// Start returns the span's first event time (0 for an empty span).
func (s Span) Start() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[0].At
}

// End returns the span's last event time (0 for an empty span).
func (s Span) End() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Nodes returns the distinct server nodes (>= 0) the span touched,
// ascending.
func (s Span) Nodes() []int {
	seen := map[int]bool{}
	for _, e := range s.Events {
		if e.Node >= 0 {
			seen[e.Node] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Kinds returns the span's event kinds in time order.
func (s Span) Kinds() []Kind {
	out := make([]Kind, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.Kind
	}
	return out
}

// Redirection returns the span's measured t_redirection — the total gap
// between each 302 and the connection it caused on the target node — and
// whether the span completed at least one redirect hop.
func (s Span) Redirection() (float64, bool) {
	total, hops := 0.0, 0
	pending, havePending := 0.0, false
	for _, e := range s.Events {
		switch e.Kind {
		case EvRedirected:
			pending, havePending = e.At, true
		case EvConnected:
			if havePending && e.At >= pending {
				total += e.At - pending
				hops++
				havePending = false
			}
		}
	}
	return total, hops > 0
}

// Spans groups the collected events by trace, each span time-ordered,
// the slice ordered by span start time.
func (c *Collector) Spans() []Span {
	byTrace := map[TraceID][]Event{}
	for _, e := range c.Events() {
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
	}
	out := make([]Span, 0, len(byTrace))
	for id, evs := range byTrace {
		out = append(out, Span{Trace: id, Events: evs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// Span returns the stitched span for one trace id.
func (c *Collector) Span(id TraceID) (Span, bool) {
	var evs []Event
	for _, e := range c.Events() {
		if e.Trace == id {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		return Span{}, false
	}
	return Span{Trace: id, Events: evs}, true
}

// Summarize reduces the stitched stream with the shared aggregator; the
// redirected→connected phase is the cluster's measured t_redirection.
func (c *Collector) Summarize() Summary {
	return Summarize(c.Events())
}
