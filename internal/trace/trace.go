// Package trace records the life of individual requests as structured
// events — the running system's view of the paper's Figure 1 transaction
// diagram (DNS lookup → connect → request → redirect → response). The
// simulator and the live server both emit into a Recorder; renderers turn
// a request's span into the step-by-step timeline the paper draws, and
// aggregators reduce event streams to the per-phase costs of Table 5.
package trace

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies an event.
type Kind string

// Event kinds, in rough lifecycle order.
const (
	EvIssued     Kind = "issued"      // client fired the request
	EvResolved   Kind = "resolved"    // DNS answered with a node
	EvConnected  Kind = "connected"   // TCP connection accepted
	EvRefused    Kind = "refused"     // accept capacity exhausted
	EvParsed     Kind = "parsed"      // preprocessing done
	EvAnalyzed   Kind = "analyzed"    // broker decision made
	EvRedirected Kind = "redirected"  // 302 sent, client re-requesting
	EvForwarded  Kind = "forwarded"   // proxied to a peer server-side
	EvFetchLocal Kind = "fetch-local" // disk/page-cache read started
	EvFetchNFS   Kind = "fetch-nfs"   // remote fetch from the owner
	EvCGI        Kind = "cgi"         // dynamic handler executed
	EvSent       Kind = "sent"        // last byte left the server
	EvDelivered  Kind = "delivered"   // client received the last byte
	EvTimedOut   Kind = "timed-out"   // client gave up
)

// TraceID names one end-to-end request across every node it touches. It
// travels with the request — as the swebt query parameter through a 302
// and as the X-Sweb-Trace header on internal fetches — so a peer joining
// the work records into the same logical trace.
type TraceID string

// fallbackTraceCtr backs NewTraceID if the system entropy source fails.
var fallbackTraceCtr atomic.Int64

// NewTraceID mints a cluster-unique trace id (8 random bytes, hex). No
// coordination is needed: independent nodes minting ids concurrently
// collide with negligible probability.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return TraceID(fmt.Sprintf("t%016x", fallbackTraceCtr.Add(1)))
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// Event is one step of one request. The JSON tags are the /sweb/trace
// wire format the live nodes expose for cross-node stitching.
type Event struct {
	// Trace is the end-to-end trace the event belongs to ("" for events
	// recorded before trace propagation, kept for compatibility).
	Trace TraceID `json:"trace,omitempty"`
	// Req identifies the request within the recorder's lifetime.
	Req int64 `json:"req"`
	// At is the event time in seconds (sim time or wall time since the
	// recorder's epoch).
	At float64 `json:"at"`
	// Kind classifies the step.
	Kind Kind `json:"kind"`
	// Node is the server node involved, -1 when not applicable.
	Node int `json:"node"`
	// Detail is free-form ("path=/a.html", "target=3").
	Detail string `json:"detail,omitempty"`
}

// Recorder accumulates events. The zero value discards everything (so the
// hot paths can call it unconditionally); NewRecorder returns a recording
// one. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	on      bool
	events  []Event
	nextReq int64
	limit   int
	dropped int64
	traces  map[int64]TraceID
}

// NewRecorder returns a recorder capturing up to limit events (<=0 means
// a default of 1<<20; the cap guards runaway live captures).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{on: true, limit: limit, traces: make(map[int64]TraceID)}
}

// Enabled reports whether the recorder captures anything.
func (r *Recorder) Enabled() bool { return r != nil && r.on }

// NewRequest allocates a request id under a freshly minted trace.
func (r *Recorder) NewRequest() int64 {
	id, _ := r.Begin("")
	return id
}

// Begin allocates a request id bound to trace ctx — a peer joining work
// another node started — minting a fresh TraceID when ctx is empty. It
// returns the id and the trace the caller should propagate onward. On a
// disabled recorder it returns (-1, ctx) so the trace context still flows
// through untraced nodes.
func (r *Recorder) Begin(ctx TraceID) (int64, TraceID) {
	if !r.Enabled() {
		return -1, ctx
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextReq++
	if ctx == "" {
		ctx = NewTraceID()
	}
	// Once the event buffer is full every Record drops anyway; not
	// binding further ids keeps the trace map bounded on long runs while
	// ctx still propagates through the return value.
	if len(r.events) < r.limit {
		r.traces[r.nextReq] = ctx
	}
	return r.nextReq, ctx
}

// TraceOf returns the trace a request id was begun under ("" when
// unknown or unbound).
func (r *Recorder) TraceOf(req int64) TraceID {
	if !r.Enabled() {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces[req]
}

// Record appends one event, stamping it with the request's trace.
func (r *Recorder) Record(req int64, at float64, kind Kind, node int, detail string) {
	if !r.Enabled() || req < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Trace: r.traces[req], Req: req, At: at, Kind: kind, Node: node, Detail: detail,
	})
}

// Dropped returns the number of events discarded at the capture limit —
// the signal that a span may be incomplete and the limit needs raising.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of captured events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of all events in capture order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Tail returns a copy of the last n events in capture order (all of them
// when n <= 0 or fewer exist) — the bounded dump snapshot bundles use.
func (r *Recorder) Tail(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := 0
	if n > 0 && len(r.events) > n {
		start = len(r.events) - n
	}
	return append([]Event(nil), r.events[start:]...)
}

// Span returns one request's events sorted by time.
func (r *Recorder) Span(req int64) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Req == req {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Requests returns the distinct request ids seen, ascending.
func (r *Recorder) Requests() []int64 {
	seen := map[int64]bool{}
	for _, e := range r.Events() {
		seen[e.Req] = true
	}
	out := make([]int64, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenderSpan draws one request's timeline in the style of Figure 1:
//
//	req 17
//	  +0.000000s  issued       client            path=/a.html
//	  +0.002100s  resolved     dns     -> node 2
//	  ...
func RenderSpan(events []Event) string {
	if len(events) == 0 {
		return "(empty span)\n"
	}
	var b strings.Builder
	t0 := events[0].At
	if tr := events[0].Trace; tr != "" {
		fmt.Fprintf(&b, "req %d  trace %s\n", events[0].Req, tr)
	} else {
		fmt.Fprintf(&b, "req %d\n", events[0].Req)
	}
	for _, e := range events {
		node := "-"
		if e.Node >= 0 {
			node = fmt.Sprintf("node %d", e.Node)
		}
		fmt.Fprintf(&b, "  +%9.6fs  %-12s %-8s %s\n", e.At-t0, e.Kind, node, e.Detail)
	}
	return b.String()
}

// Summary aggregates an event stream.
type Summary struct {
	Requests   int
	ByKind     map[Kind]int
	Redirected int
	Forwarded  int
	Refused    int
	Completed  int
	// MeanPhase maps a (from,to) kind pair label like "parsed→analyzed"
	// to its mean duration in seconds, over requests exhibiting both.
	MeanPhase map[string]float64
}

// groupKey buckets events into end-to-end requests: the trace id when
// propagation stamped one, else the local request id (pre-propagation
// streams, where hops were separate requests).
func groupKey(e Event) string {
	if e.Trace != "" {
		return string(e.Trace)
	}
	return "req:" + strconv.FormatInt(e.Req, 10)
}

// Summarize reduces the full stream. Events sharing a trace id — the hops
// of one redirected request, stitched across nodes — are summarized as a
// single request, so the redirected→connected edge is the measured
// t_redirection of the paper's cost model.
func Summarize(events []Event) Summary {
	s := Summary{ByKind: map[Kind]int{}, MeanPhase: map[string]float64{}}
	byReq := map[string][]Event{}
	for _, e := range events {
		s.ByKind[e.Kind]++
		k := groupKey(e)
		byReq[k] = append(byReq[k], e)
	}
	s.Requests = len(byReq)
	s.Redirected = s.ByKind[EvRedirected]
	s.Forwarded = s.ByKind[EvForwarded]
	s.Refused = s.ByKind[EvRefused]
	s.Completed = s.ByKind[EvDelivered]

	type edge struct{ from, to Kind }
	edges := []edge{
		{EvIssued, EvConnected},
		{EvConnected, EvParsed},
		{EvParsed, EvAnalyzed},
		{EvAnalyzed, EvRedirected},
		{EvAnalyzed, EvSent},
		{EvSent, EvDelivered},
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, evs := range byReq {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		first := map[Kind]float64{}
		for _, e := range evs {
			if _, ok := first[e.Kind]; !ok {
				first[e.Kind] = e.At
			}
		}
		for _, ed := range edges {
			a, okA := first[ed.from]
			b, okB := first[ed.to]
			if okA && okB && b >= a {
				key := string(ed.from) + "→" + string(ed.to)
				sums[key] += b - a
				counts[key]++
			}
		}
		// The redirect hop needs more than first-occurrence times: the
		// connection a 302 causes is the *next* connected after it, the
		// first one being the hop's origin.
		pending, havePending := 0.0, false
		for _, e := range evs {
			switch e.Kind {
			case EvRedirected:
				pending, havePending = e.At, true
			case EvConnected:
				if havePending && e.At >= pending {
					sums["redirected→connected"] += e.At - pending
					counts["redirected→connected"]++
					havePending = false
				}
			}
		}
	}
	for k, sum := range sums {
		s.MeanPhase[k] = sum / float64(counts[k])
	}
	return s
}

// RenderSummary prints the aggregate view.
func RenderSummary(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d, completed %d, redirected %d, forwarded %d, refused %d\n",
		s.Requests, s.Completed, s.Redirected, s.Forwarded, s.Refused)
	keys := make([]string, 0, len(s.MeanPhase))
	for k := range s.MeanPhase {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-22s %9.6fs\n", k, s.MeanPhase[k])
	}
	return b.String()
}
