// Package trace records the life of individual requests as structured
// events — the running system's view of the paper's Figure 1 transaction
// diagram (DNS lookup → connect → request → redirect → response). The
// simulator and the live server both emit into a Recorder; renderers turn
// a request's span into the step-by-step timeline the paper draws, and
// aggregators reduce event streams to the per-phase costs of Table 5.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind string

// Event kinds, in rough lifecycle order.
const (
	EvIssued     Kind = "issued"      // client fired the request
	EvResolved   Kind = "resolved"    // DNS answered with a node
	EvConnected  Kind = "connected"   // TCP connection accepted
	EvRefused    Kind = "refused"     // accept capacity exhausted
	EvParsed     Kind = "parsed"      // preprocessing done
	EvAnalyzed   Kind = "analyzed"    // broker decision made
	EvRedirected Kind = "redirected"  // 302 sent, client re-requesting
	EvForwarded  Kind = "forwarded"   // proxied to a peer server-side
	EvFetchLocal Kind = "fetch-local" // disk/page-cache read started
	EvFetchNFS   Kind = "fetch-nfs"   // remote fetch from the owner
	EvCGI        Kind = "cgi"         // dynamic handler executed
	EvSent       Kind = "sent"        // last byte left the server
	EvDelivered  Kind = "delivered"   // client received the last byte
	EvTimedOut   Kind = "timed-out"   // client gave up
)

// Event is one step of one request.
type Event struct {
	// Req identifies the request within the recorder's lifetime.
	Req int64
	// At is the event time in seconds (sim time or wall time since the
	// recorder's epoch).
	At float64
	// Kind classifies the step.
	Kind Kind
	// Node is the server node involved, -1 when not applicable.
	Node int
	// Detail is free-form ("path=/a.html", "target=3").
	Detail string
}

// Recorder accumulates events. The zero value discards everything (so the
// hot paths can call it unconditionally); NewRecorder returns a recording
// one. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	on      bool
	events  []Event
	nextReq int64
	limit   int
}

// NewRecorder returns a recorder capturing up to limit events (<=0 means
// a default of 1<<20; the cap guards runaway live captures).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{on: true, limit: limit}
}

// Enabled reports whether the recorder captures anything.
func (r *Recorder) Enabled() bool { return r != nil && r.on }

// NewRequest allocates a request id.
func (r *Recorder) NewRequest() int64 {
	if !r.Enabled() {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextReq++
	return r.nextReq
}

// Record appends one event.
func (r *Recorder) Record(req int64, at float64, kind Kind, node int, detail string) {
	if !r.Enabled() || req < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{Req: req, At: at, Kind: kind, Node: node, Detail: detail})
}

// Len returns the number of captured events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of all events in capture order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Span returns one request's events sorted by time.
func (r *Recorder) Span(req int64) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Req == req {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Requests returns the distinct request ids seen, ascending.
func (r *Recorder) Requests() []int64 {
	seen := map[int64]bool{}
	for _, e := range r.Events() {
		seen[e.Req] = true
	}
	out := make([]int64, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenderSpan draws one request's timeline in the style of Figure 1:
//
//	req 17
//	  +0.000000s  issued       client            path=/a.html
//	  +0.002100s  resolved     dns     -> node 2
//	  ...
func RenderSpan(events []Event) string {
	if len(events) == 0 {
		return "(empty span)\n"
	}
	var b strings.Builder
	t0 := events[0].At
	fmt.Fprintf(&b, "req %d\n", events[0].Req)
	for _, e := range events {
		node := "-"
		if e.Node >= 0 {
			node = fmt.Sprintf("node %d", e.Node)
		}
		fmt.Fprintf(&b, "  +%9.6fs  %-12s %-8s %s\n", e.At-t0, e.Kind, node, e.Detail)
	}
	return b.String()
}

// Summary aggregates an event stream.
type Summary struct {
	Requests   int
	ByKind     map[Kind]int
	Redirected int
	Forwarded  int
	Refused    int
	Completed  int
	// MeanPhase maps a (from,to) kind pair label like "parsed→analyzed"
	// to its mean duration in seconds, over requests exhibiting both.
	MeanPhase map[string]float64
}

// Summarize reduces the full stream.
func Summarize(events []Event) Summary {
	s := Summary{ByKind: map[Kind]int{}, MeanPhase: map[string]float64{}}
	byReq := map[int64][]Event{}
	for _, e := range events {
		s.ByKind[e.Kind]++
		byReq[e.Req] = append(byReq[e.Req], e)
	}
	s.Requests = len(byReq)
	s.Redirected = s.ByKind[EvRedirected]
	s.Forwarded = s.ByKind[EvForwarded]
	s.Refused = s.ByKind[EvRefused]
	s.Completed = s.ByKind[EvDelivered]

	type edge struct{ from, to Kind }
	edges := []edge{
		{EvIssued, EvConnected},
		{EvConnected, EvParsed},
		{EvParsed, EvAnalyzed},
		{EvAnalyzed, EvSent},
		{EvSent, EvDelivered},
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, evs := range byReq {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		first := map[Kind]float64{}
		for _, e := range evs {
			if _, ok := first[e.Kind]; !ok {
				first[e.Kind] = e.At
			}
		}
		for _, ed := range edges {
			a, okA := first[ed.from]
			b, okB := first[ed.to]
			if okA && okB && b >= a {
				key := string(ed.from) + "→" + string(ed.to)
				sums[key] += b - a
				counts[key]++
			}
		}
	}
	for k, sum := range sums {
		s.MeanPhase[k] = sum / float64(counts[k])
	}
	return s
}

// RenderSummary prints the aggregate view.
func RenderSummary(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d, completed %d, redirected %d, forwarded %d, refused %d\n",
		s.Requests, s.Completed, s.Redirected, s.Forwarded, s.Refused)
	keys := make([]string, 0, len(s.MeanPhase))
	for k := range s.MeanPhase {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-22s %9.6fs\n", k, s.MeanPhase[k])
	}
	return b.String()
}
