package simsrv

import (
	"sweb/internal/core"
	"sweb/internal/des"
	"sweb/internal/rebalance"
)

// pickFetchSource names the replica node x pulls the document's bytes
// from: core.RankSources' cheapest-first order over the broker's load
// view, skipping nodes that are out of the pool — ground truth the
// gossip table may not have learned yet; the collapsed-to-zero-time
// analogue of the live relay's try-next-source failover — with the
// primary owner as the last resort.
func (c *Cluster) pickFetchSource(rs *request, x int) int {
	f := rs.file
	req := core.Request{
		Path:      rs.path,
		Owner:     f.Owner,
		Replicas:  f.Replicas,
		DiskBytes: rs.demand.DiskBytesPerByte * float64(f.Size),
	}
	loads := c.tables[x].Snapshot(len(c.nodes), c.nowSec())
	loads[x] = c.liveRow(x)
	for _, rep := range core.RankSources(req, x, x, loads) {
		if rep != x && c.up[rep] {
			return rep
		}
	}
	return f.Owner
}

// Replicate materializes a copy of path on node dst at the current
// simulation time: the cheapest live replica's disk reads the document
// chunk by chunk, each chunk crosses the interconnect, and only when the
// last byte lands does the shared store gain the replica — the DES
// analogue of the live rebalancer's internal fetch into a peer docroot.
// done, when non-nil, fires with whether the replica was created.
func (c *Cluster) Replicate(path string, dst int, done func(bool)) {
	finish := func(ok bool) {
		if done != nil {
			done(ok)
		}
	}
	f, ok := c.cfg.Store.Lookup(path)
	if !ok || f.CGI || dst < 0 || dst >= len(c.nodes) || f.HasReplica(dst) || !c.up[dst] {
		finish(false)
		return
	}
	src := -1
	for _, rep := range f.ReplicaSet() {
		if c.up[rep] {
			src = rep
			break
		}
	}
	if src < 0 {
		finish(false)
		return
	}
	srcNode, dstNode := c.nodes[src], c.nodes[dst]
	release := dstNode.PinBuffer(f.Size)
	commit := func() {
		release()
		err := c.cfg.Store.AddReplica(path, dst)
		if err == nil {
			dstNode.Cache.Insert(f.Path, f.Size)
			c.nm[dst].rebalanceAction("add")
		}
		finish(err == nil)
	}
	if f.Size == 0 {
		commit()
		return
	}
	var pump func(off int64)
	pump = func(off int64) {
		chunk := c.cfg.ChunkBytes
		if off+chunk > f.Size {
			chunk = f.Size - off
		}
		last := off+chunk >= f.Size
		srcNode.DiskReads++
		srcNode.DiskBytes += chunk
		srcNode.Disk.Submit(float64(chunk), func() {
			c.net.InternalTransfer(src, dst, chunk, func() {
				if last {
					commit()
					return
				}
				pump(off + chunk)
			})
		})
	}
	pump(0)
}

// DropReplica retires node dst's copy of path from the shared store (the
// primary is refused, exactly as in storage.Store). The page-cache entry
// is left to age out on its own, as a real unlink would.
func (c *Cluster) DropReplica(path string, dst int) error {
	if err := c.cfg.Store.DropReplica(path, dst); err != nil {
		return err
	}
	c.nm[dst].rebalanceAction("drop")
	return nil
}

// StartRebalancer installs the heat-driven replica rebalancer as a DES
// periodic event, mirroring the live cluster's loop: each period the
// controller reads the merged heat view and the resulting adds run as
// simulated transfers (disk reads, interconnect chunks, then the store
// update) while drops take effect immediately. Applied actions append to
// the returned slice as the simulation runs — adds are recorded when
// their transfer completes.
func (c *Cluster) StartRebalancer(cfg rebalance.Config, period des.Time) *[]rebalance.Action {
	ctrl := rebalance.New(cfg)
	applied := &[]rebalance.Action{}
	up := func(n int) bool { return n >= 0 && n < len(c.nodes) && c.up[n] }
	c.Every(period, func() {
		for _, act := range ctrl.Tick(c.MergedHeat(), c.cfg.Store, up) {
			act := act
			switch act.Kind {
			case "add":
				c.Replicate(act.Path, act.Node, func(ok bool) {
					if ok {
						*applied = append(*applied, act)
					}
				})
			case "drop":
				if c.DropReplica(act.Path, act.Node) == nil {
					*applied = append(*applied, act)
				}
			}
		}
	})
	return applied
}
