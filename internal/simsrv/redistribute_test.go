package simsrv

import (
	"math/rand"
	"strconv"
	"testing"

	"sweb/internal/des"
	"sweb/internal/heat"
	"sweb/internal/metrics"
	"sweb/internal/monitor"
	"sweb/internal/rebalance"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// TestSkewedHotspotRedistribution closes the heat loop inside the
// simulator: a Zipf-style burst concentrates 80% of traffic on one
// document, the rebalancer replicates it onto the heaviest non-owner
// landing node within its one-action budget, and the system-level
// effects follow — the relay rate collapses, the advisor's predicted
// reduction matches the observed one, and the hot_doc alert fires and
// then clears even though the skew itself never flattens.
func TestSkewedHotspotRedistribution(t *testing.T) {
	const nodes = 3
	st := storage.NewStore(nodes)
	bg := storage.UniformSet(st, 6, 2048)
	hot := storage.SkewedSet(st, 8192)

	cfg := MeikoConfig(nodes, st)
	// Round-robin serves where requests land, so two thirds of the
	// hotspot's traffic relays until a replica lands; the cache is off so
	// the relief is attributable to replication alone.
	cfg.Policy = PolicyRoundRobin
	cfg.CacheOff = true
	cfg.Seed = 17
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	mon := monitor.New(monitor.Config{
		Window: 4,
		Rules: monitor.RuleConfig{
			// Everything but hot_doc is parked out of reach.
			RedirectRatio:   2,
			ImbalanceCoV:    100,
			CacheMinLookups: 1e9,
			HotDocShare:     0.65,
			ForSamples:      2,
		},
	})
	for i := 0; i < cl.Nodes(); i++ {
		i := i
		mon.AddSource(&monitor.RegistrySource{
			Name:     strconv.Itoa(i),
			Registry: cl.Registry(i),
			Up:       func() bool { return cl.NodeUp(i) },
		})
	}

	sumCounter := func(name string) float64 {
		var sum float64
		for i := 0; i < cl.Nodes(); i++ {
			sum += cl.Registry(i).Counter(name, "", metrics.Labels{"path": hot}).Value()
		}
		return sum
	}

	// Per-virtual-second telemetry, recorded before the rebalancer's tick
	// at the same instant so each row reflects the pre-action state. The
	// cumulative request counter marks which ticks still carried traffic:
	// the event loop keeps ticking after the burst drains, and those idle
	// seconds must not count toward any rate.
	type tick struct {
		relays   float64 // cumulative hot-doc relays, cluster-wide
		reqs     float64 // cumulative hot-doc serves, cluster-wide
		replicas int
		firing   bool
	}
	var timeline []tick
	var preAdvice heat.Advice // advisor's view while the hotspot was unreplicated
	cl.Every(des.Second, func() {
		mon.Collect(cl.Sim.Now().ToSeconds())
		reps := len(st.Replicas(hot))
		if reps == 1 {
			for _, a := range heat.Advise(cl.MergedHeat()) {
				if a.Path == hot {
					preAdvice = a
				}
			}
		}
		timeline = append(timeline, tick{
			relays:   sumCounter("sweb_heat_relays_total"),
			reqs:     sumCounter("sweb_heat_requests_total"),
			replicas: reps,
			firing:   mon.AlertFiring("hot_doc", hot),
		})
	})

	// ForTicks 4 holds the fix back long enough for the monitor's own
	// 2-sample hysteresis to fire hot_doc first — the scenario under test
	// is alert → redistribution → alert clears, in that order.
	applied := cl.StartRebalancer(rebalance.Config{
		MaxReplicas:   2,
		BudgetPerTick: 1,
		HotShare:      0.5,
		CoolShare:     0.05,
		ForTicks:      4,
		CooldownTicks: 2,
	}, des.Second)

	const rps, dur = 40, 12
	pick, err := workload.WeightedPicker([][]string{{hot}, bg}, []float64{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
	arr, err := burst.Generate(pick, nil, rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunSchedule(arr)
	if res.Completed == 0 {
		t.Fatal("burst completed nothing")
	}

	// The rebalancer acted: exactly the hotspot, exactly one add, onto
	// the node the advisor nominated.
	if len(*applied) == 0 {
		t.Fatal("rebalancer applied no actions")
	}
	add := (*applied)[0]
	if add.Kind != "add" || add.Path != hot {
		t.Fatalf("first applied action = %+v, want add of %s", add, hot)
	}
	if preAdvice.Path != hot || add.Node != preAdvice.ReplicaNode {
		t.Fatalf("replica landed on %d, advisor nominated %+v", add.Node, preAdvice)
	}
	if reps := st.Replicas(hot); len(reps) != 2 {
		t.Fatalf("hotspot replica set = %v, want 2-way", reps)
	}
	for _, a := range *applied {
		if a.Path != hot {
			t.Fatalf("rebalancer touched background doc: %+v", a)
		}
	}

	// The relay rate collapsed once the replica landed: compare the
	// steady unreplicated per-second rate against the last seconds that
	// still carried traffic.
	traffic := timeline[:1]
	for i := 1; i < len(timeline); i++ {
		if timeline[i].reqs > timeline[i-1].reqs {
			traffic = append(traffic, timeline[i])
		}
	}
	var preRate, postRate float64
	var prePts, postPts int
	for i := 1; i < len(traffic); i++ {
		d := traffic[i].relays - traffic[i-1].relays
		if traffic[i].replicas == 1 {
			preRate += d
			prePts++
		} else if i >= len(traffic)-3 {
			postRate += d
			postPts++
		}
	}
	if prePts == 0 || postPts == 0 {
		t.Fatalf("timeline lacks both phases: %+v", traffic)
	}
	preRate /= float64(prePts)
	postRate /= float64(postPts)
	if postRate > 0.75*preRate {
		t.Fatalf("relay rate did not collapse: pre=%.1f/s post=%.1f/s", preRate, postRate)
	}

	// The advisor's promise held up: predicted reduction (share of total
	// cluster work) within 50% relative + 5pp absolute of the observed
	// relay-rate drop.
	observed := (preRate - postRate) / rps
	pred := preAdvice.PredictedReduction
	if pred <= 0 {
		t.Fatalf("advisor predicted no reduction: %+v", preAdvice)
	}
	if diff := observed - pred; diff > 0.5*pred+0.05 || diff < -0.5*pred-0.05 {
		t.Fatalf("prediction off: predicted %.3f observed %.3f", pred, observed)
	}

	// hot_doc fired while the document was unreplicated and cleared after
	// the replica halved its per-copy share — judged only over ticks with
	// traffic, so the clear cannot be explained by the burst draining.
	fired, clearedAfter := -1, -1
	for i, tk := range traffic {
		if tk.firing && fired < 0 {
			fired = i
		}
		if fired >= 0 && !tk.firing && i > fired && clearedAfter < 0 {
			clearedAfter = i
		}
	}
	if fired < 0 {
		t.Fatalf("hot_doc never fired: %+v", traffic)
	}
	if traffic[fired].replicas != 1 {
		t.Fatalf("hot_doc first fired at tick %d with %d replicas", fired, traffic[fired].replicas)
	}
	if clearedAfter < 0 {
		t.Fatalf("hot_doc never cleared under load (fired at tick %d): %+v", fired, traffic)
	}
	// "Without the load flattening": the final seconds still relayed the
	// hotspot from its remaining away node, so traffic stayed skewed.
	if postRate <= 0 {
		t.Fatalf("hot traffic flattened instead of being redistributed (post relay rate %.2f/s)", postRate)
	}
}
