package simsrv

import (
	"fmt"
	"math"

	"sweb/internal/core"
	"sweb/internal/des"
	"sweb/internal/model"
	"sweb/internal/oracle"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// request carries one HTTP request through the four-phase lifecycle.
type request struct {
	path   string
	domain string
	file   storage.File
	found  bool
	demand oracle.Demand

	issued    des.Time
	mark      des.Time // start of the current phase
	redirects int
	servedBy  int
	tid       int64 // trace request id (-1 when tracing is off)
	ph        stats.PhaseBreakdown

	fetchPhase string  // phase-histogram cell the fulfill path lands in
	predicted  float64 // broker's t_s estimate for serving here
	hasPred    bool

	// Flight-recorder state: the connection id, the node the request last
	// arrived at (where a refusal is attributed), whether fulfillment hit
	// the page cache, and when the first response byte left the server.
	id       int64
	entry    int
	cacheHit bool
	ttfbAt   des.Time
	hasTTFB  bool
}

const errorResponseBytes = 512 // a 404 body plus headers

// arrive runs the accept path at node x: the connection is refused if the
// node is down or its accept capacity (process table + listen backlog) is
// exhausted; otherwise the request enters preprocessing.
func (c *Cluster) arrive(rs *request, x int) {
	rs.entry = x
	if !c.up[x] {
		c.trace(rs, trace.EvRefused, x, "node down")
		c.drop(rs, stats.DropUnavailable)
		return
	}
	if c.inflight[x] >= c.cfg.Specs[x].AcceptQueue {
		c.trace(rs, trace.EvRefused, x, "accept capacity")
		c.nm[x].event(trace.EvRefused)
		c.nm[x].drop("refused")
		c.drop(rs, stats.DropRefused)
		return
	}
	c.inflight[x]++
	c.trace(rs, trace.EvConnected, x, "")
	c.nm[x].event(trace.EvConnected)
	rs.mark = c.Sim.Now()
	// "The server parses the HTTP commands, and completes the pathname
	// given, determining appropriate permissions along the way."
	c.nodes[x].CPUWork(model.ActParse, c.cfg.PreprocessOps, func() {
		d := (c.Sim.Now() - rs.mark).ToSeconds()
		rs.ph.Preprocess += d
		c.trace(rs, trace.EvParsed, x, "")
		c.nm[x].event(trace.EvParsed)
		c.nm[x].phase("parse", d)
		c.analyze(rs, x)
	})
}

// analyze charges the broker's cost-estimation CPU, then decides.
func (c *Cluster) analyze(rs *request, x int) {
	rs.mark = c.Sim.Now()
	c.nodes[x].CPUWork(model.ActSchedule, c.cfg.AnalysisOps, func() {
		d := (c.Sim.Now() - rs.mark).ToSeconds()
		rs.ph.Analysis += d
		c.nm[x].phase("analyze", d)
		c.decide(rs, x)
	})
}

// decide consults the policy and either fulfills locally or redirects.
func (c *Cluster) decide(rs *request, x int) {
	req := core.Request{
		Path:          rs.path,
		Arrived:       x,
		RedirectCount: rs.redirects,
	}
	if rs.found {
		req.Size = rs.file.Size
		req.Owner = rs.file.Owner
		req.Replicas = rs.file.Replicas
		req.CachedLocal = c.nodes[x].Cache.Peek(rs.path)
		if c.cfg.CacheHints > 0 {
			// Cooperative caching: mark peers whose last digest said they
			// hold this document in memory.
			req.CachedAt = make([]bool, len(c.nodes))
			req.CachedAt[x] = req.CachedLocal
			for y := range c.nodes {
				if y != x && c.tables[x].CachedAt(y, rs.path, c.nowSec()) {
					req.CachedAt[y] = true
				}
			}
		}
		d := rs.demand
		req.Ops = d.BaseOps + d.OpsPerByte*float64(rs.file.Size) + d.CGIOps + rs.file.CGIOps
		req.DiskBytes = d.DiskBytesPerByte * float64(rs.file.Size)
		req.PinnedLocal = rs.file.CGI
	} else {
		// Errors are "always completed at x" (Sec. 3.2 step 2).
		req.PinnedLocal = true
		req.Owner = x
	}
	loads := c.tables[x].Snapshot(len(c.nodes), c.nowSec())
	loads[x] = c.liveRow(x) // a node knows its own load precisely
	var target int
	est := math.NaN()
	if c.cfg.Dispatcher && x == 0 && rs.redirects == 0 && !req.PinnedLocal {
		target = c.dispatcherChoose(req, loads)
	} else {
		dec := c.policy.Choose(req, x, loads)
		target = dec.Target
		est = dec.Estimate
	}
	if target < 0 || target >= len(c.nodes) {
		target = x
	}
	c.trace(rs, trace.EvAnalyzed, x, fmt.Sprintf("target=%d", target))
	c.nm[x].event(trace.EvAnalyzed)
	if target == x {
		if !math.IsNaN(est) && !math.IsInf(est, 0) {
			rs.predicted = est
			rs.hasPred = true
		}
		c.fulfill(rs, x)
		return
	}
	if c.cfg.Reassign == ReassignForward {
		// Server-side forwarding: the request never returns to the
		// client; node x proxies it to the target and relays the
		// response. The client keeps one connection; the cluster pays
		// double handling (the cost the paper avoided with redirection).
		c.tables[x].Bump(target)
		c.trace(rs, trace.EvForwarded, x, fmt.Sprintf("to=%d", target))
		c.nm[x].event(trace.EvForwarded)
		rs.mark = c.Sim.Now()
		c.nodes[x].CPUWork(model.ActSchedule, c.cfg.RedirectOps, func() {
			rs.redirects++
			if !c.up[target] {
				// Forwarding has no second chance: the relay fails.
				c.inflight[x]--
				c.trace(rs, trace.EvRefused, target, "forward target down")
				c.nm[x].drop("unavailable")
				c.drop(rs, stats.DropUnavailable)
				return
			}
			rs.ph.Redirect += (c.Sim.Now() - rs.mark).ToSeconds()
			c.fulfillForwarded(rs, x, target)
		})
		return
	}
	// Redirect: bump the local view of the chosen peer so the next stale
	// decision does not dogpile it, charge the 302 generation, then the
	// client follows the Location header to the new node.
	c.tables[x].Bump(target)
	c.trace(rs, trace.EvRedirected, x, fmt.Sprintf("to=%d", target))
	rs.mark = c.Sim.Now()
	c.nodes[x].CPUWork(model.ActSchedule, c.cfg.RedirectOps, func() {
		c.inflight[x]--
		rs.redirects++
		c.nm[x].event(trace.EvRedirected)
		c.nm[x].redirect(target)
		c.nm[x].phase("redirect", (c.Sim.Now() - rs.mark).ToSeconds())
		// "Twice the estimated latency of the connection between the
		// server and the client plus the time for a server to set up a
		// connection."
		travel := 2*c.cfg.Client.LatencyOneWay + des.Seconds(c.cfg.Params.ConnectSeconds)
		hopFrom := c.Sim.Now()
		c.Sim.After(travel, func() {
			rs.ph.Redirect += (c.Sim.Now() - rs.mark).ToSeconds()
			if c.up[target] {
				// The hop is measured where the redirected connection
				// lands, matching the live redirect_hop cell.
				c.nm[target].phase("redirect_hop", (c.Sim.Now() - hopFrom).ToSeconds())
			}
			c.arrive(rs, target)
		})
	})
}

// dispatcherChoose is the centralized assignment: the distributor never
// serves documents itself; it picks the minimum-estimate worker (or, for
// non-SWEB policies, rotates).
func (c *Cluster) dispatcherChoose(req core.Request, loads []core.NodeLoad) int {
	sweb, ok := c.policy.(*core.SWEB)
	if !ok {
		// Baseline dispatcher: rotate over live workers.
		n := len(c.nodes)
		for k := 1; k < n; k++ {
			w := 1 + int(c.dispatchNext)%(n-1)
			c.dispatchNext++
			if c.up[w] {
				return w
			}
		}
		return 0
	}
	best, bestNode := -1.0, -1
	for w := 1; w < len(c.nodes); w++ {
		cb := sweb.EstimateCost(req, 0, w, loads)
		if cb.Infeasible {
			continue
		}
		if bestNode < 0 || cb.Total < best {
			best, bestNode = cb.Total, w
		}
	}
	if bestNode < 0 {
		return 0
	}
	return bestNode
}

// fulfillForwarded serves the request at worker y while relaying every
// chunk back through proxy x to the client. Both nodes hold a handler slot
// for the duration; the worker's bytes cross the interconnect twice as
// often as under redirection.
func (c *Cluster) fulfillForwarded(rs *request, x, y int) {
	rs.servedBy = y
	if c.inflight[y] >= c.cfg.Specs[y].AcceptQueue {
		c.inflight[x]--
		c.trace(rs, trace.EvRefused, y, "forward target full")
		c.nm[y].event(trace.EvRefused)
		c.nm[y].drop("refused")
		c.drop(rs, stats.DropRefused)
		return
	}
	c.inflight[y]++
	worker := c.nodes[y]
	proxy := c.nodes[x]
	f := rs.file
	if !rs.found || f.CGI {
		// Errors and CGI are pinned and never reach here (PinnedLocal).
		c.inflight[y]--
		c.fulfill(rs, x)
		return
	}
	rs.mark = c.Sim.Now()
	releaseY := worker.PinBuffer(f.Size)
	releaseX := proxy.PinBuffer(f.Size)
	cached := worker.Cache.Contains(f.Path)
	rs.cacheHit = cached
	if cached {
		worker.Cache.Touch(f.Path)
	}
	const relayOpsPerByte = 0.06 // proxy-side copy between sockets
	finishWorker := func() {
		releaseY()
		c.inflight[y]--
	}
	var pump func(off int64)
	pump = func(off int64) {
		chunk := c.cfg.ChunkBytes
		if off+chunk > f.Size {
			chunk = f.Size - off
		}
		last := off+chunk >= f.Size
		fetch := func(then func()) {
			if cached {
				worker.CPUWork(model.ActFulfill, c.cfg.CopyOpsPerByte*float64(chunk), then)
				return
			}
			work := float64(chunk)
			if worker.MemoryPressure() {
				work *= worker.Spec.SwapPenalty
				worker.SwappedOps++
			}
			worker.DiskReads++
			worker.DiskBytes += chunk
			worker.Disk.Submit(work, then)
		}
		fetch(func() {
			if last && !cached {
				worker.Cache.Insert(f.Path, f.Size)
			}
			worker.CPUWork(model.ActFulfill, rs.demand.OpsPerByte*float64(chunk), func() {
				c.net.InternalTransfer(y, x, chunk, func() {
					proxy.CPUWork(model.ActFulfill, relayOpsPerByte*float64(chunk), func() {
						c.nm[x].bytesOut += chunk
						if !rs.hasTTFB {
							rs.ttfbAt, rs.hasTTFB = c.Sim.Now(), true
						}
						c.net.ClientTransfer(x, c.cfg.Client, chunk,
							func() {
								if last {
									finishWorker()
									c.finishServerSide(rs, x, releaseX)
								} else {
									pump(off + chunk)
								}
							},
							func() {
								if last {
									c.complete(rs)
								}
							})
					})
				})
			})
		})
	}
	if f.Size == 0 {
		finishWorker()
		c.finishServerSide(rs, x, releaseX)
		c.complete(rs)
		return
	}
	worker.CPUWork(model.ActFulfill, rs.demand.BaseOps, func() { pump(0) })
}

// fulfill serves the request at node x "in the normal HTTP server manner".
func (c *Cluster) fulfill(rs *request, x int) {
	rs.servedBy = x
	node := c.nodes[x]
	if !rs.found {
		// 404: a small generated body, no disk involved.
		c.nm[x].drop("not_found")
		rs.mark = c.Sim.Now()
		node.CPUWork(model.ActFulfill, rs.demand.BaseOps+float64(errorResponseBytes)*rs.demand.OpsPerByte, func() {
			c.sendOnly(rs, x, errorResponseBytes)
		})
		return
	}
	f := rs.file
	rs.mark = c.Sim.Now()
	if f.CGI {
		c.trace(rs, trace.EvCGI, x, "")
		c.nm[x].event(trace.EvCGI)
		rs.fetchPhase = "cgi"
		// CGI: fork + compute, then stream the generated result (no
		// static file fetch).
		node.CPUWork(model.ActFulfill, rs.demand.BaseOps, func() {
			node.CPUWork(model.ActCGI, f.CGIOps+rs.demand.CGIOps, func() {
				c.sendOnly(rs, x, f.Size)
			})
		})
		return
	}
	// Static fetch: fork + handler setup, then the chunked
	// read-process-write loop.
	node.CPUWork(model.ActFulfill, rs.demand.BaseOps, func() {
		c.streamFile(rs, x)
	})
}

// sendOnly streams size generated bytes (CGI output, error bodies) to the
// client without touching the disk.
func (c *Cluster) sendOnly(rs *request, x int, size int64) {
	node := c.nodes[x]
	release := node.PinBuffer(size)
	var sendChunk func(off int64)
	sendChunk = func(off int64) {
		chunk := c.cfg.ChunkBytes
		if off+chunk > size {
			chunk = size - off
		}
		last := off+chunk >= size
		node.CPUWork(model.ActFulfill, rs.demand.OpsPerByte*float64(chunk), func() {
			c.nm[x].bytesOut += chunk
			if !rs.hasTTFB {
				rs.ttfbAt, rs.hasTTFB = c.Sim.Now(), true
			}
			c.net.ClientTransfer(x, c.cfg.Client, chunk,
				func() {
					if last {
						c.finishServerSide(rs, x, release)
					} else {
						sendChunk(off + chunk)
					}
				},
				func() {
					if last {
						c.complete(rs)
					}
				})
		})
	}
	sendChunk(0)
}

// streamFile runs the chunked read → packetize → write loop for a static
// file, fetching from the local disk, the page cache, or the owning node
// over the interconnect.
func (c *Cluster) streamFile(rs *request, x int) {
	node := c.nodes[x]
	f := rs.file
	release := node.PinBuffer(f.Size)

	// One cache decision per file: partial files are not cached.
	cachedHere := node.Cache.Contains(f.Path)
	rs.cacheHit = cachedHere
	if cachedHere {
		node.Cache.Touch(f.Path)
	}
	remote := !f.HasReplica(x)
	source := x
	if remote {
		source = c.pickFetchSource(rs, x)
	}
	srcNode := c.nodes[source]
	srcCached := false
	if remote && !cachedHere {
		srcCached = srcNode.Cache.Peek(f.Path)
	}
	diskPerByte := rs.demand.DiskBytesPerByte
	if diskPerByte <= 0 {
		diskPerByte = 1
	}

	if remote && !cachedHere {
		c.trace(rs, trace.EvFetchNFS, x, fmt.Sprintf("source=%d", source))
		c.nm[x].event(trace.EvFetchNFS)
		c.nm[x].replicaFetch(f.Path, source)
		rs.fetchPhase = "fetch_nfs"
	} else {
		c.trace(rs, trace.EvFetchLocal, x, "")
		c.nm[x].event(trace.EvFetchLocal)
		rs.fetchPhase = "fetch_local"
	}
	// fetch obtains one chunk into local memory, then calls then().
	fetch := func(chunk int64, then func()) {
		switch {
		case cachedHere:
			// Buffer-cache hit: just the memory copy.
			node.CPUWork(model.ActFulfill, c.cfg.CopyOpsPerByte*float64(chunk), then)
		case !remote:
			work := diskPerByte * float64(chunk)
			if node.MemoryPressure() {
				work *= node.Spec.SwapPenalty
				node.SwappedOps++
			}
			node.DiskReads++
			node.DiskBytes += chunk
			node.Disk.Submit(work, then)
		case srcCached:
			// The NFS server answers from its page cache.
			c.net.InternalTransfer(source, x, chunk, then)
		default:
			work := diskPerByte * float64(chunk)
			if srcNode.MemoryPressure() {
				work *= srcNode.Spec.SwapPenalty
				srcNode.SwappedOps++
			}
			srcNode.DiskReads++
			srcNode.DiskBytes += chunk
			srcNode.Disk.Submit(work, func() {
				c.net.InternalTransfer(source, x, chunk, then)
			})
		}
	}

	var pump func(off int64)
	pump = func(off int64) {
		chunk := c.cfg.ChunkBytes
		if off+chunk > f.Size {
			chunk = f.Size - off
		}
		last := off+chunk >= f.Size
		fetch(chunk, func() {
			if last && !cachedHere {
				// The whole file has now passed through memory; it
				// lands in the serving node's page cache, and on a
				// remote read the source's NFS server cached it too.
				node.Cache.Insert(f.Path, f.Size)
				if remote && !srcCached {
					srcNode.Cache.Insert(f.Path, f.Size)
				}
			}
			node.CPUWork(model.ActFulfill, rs.demand.OpsPerByte*float64(chunk), func() {
				c.nm[x].bytesOut += chunk
				if !rs.hasTTFB {
					rs.ttfbAt, rs.hasTTFB = c.Sim.Now(), true
				}
				c.net.ClientTransfer(x, c.cfg.Client, chunk,
					func() {
						if last {
							c.finishServerSide(rs, x, release)
						} else {
							pump(off + chunk)
						}
					},
					func() {
						if last {
							c.complete(rs)
						}
					})
			})
		})
	}
	if f.Size == 0 {
		c.finishServerSide(rs, x, release)
		c.complete(rs)
		return
	}
	pump(0)
}

// finishServerSide releases the handler slot once the last byte has left
// the server site; the tail of the transfer is pure network drain.
func (c *Cluster) finishServerSide(rs *request, x int, release func()) {
	served := (c.Sim.Now() - rs.mark).ToSeconds()
	rs.ph.Transfer += served
	rs.mark = c.Sim.Now()
	c.trace(rs, trace.EvSent, x, "")
	c.nm[x].event(trace.EvSent)
	if rs.fetchPhase != "" {
		c.nm[x].phase(rs.fetchPhase, served)
	}
	if rs.hasPred {
		// Actual t_s is the server-side portion of the lifecycle; the
		// client-network drain the broker never modelled stays out.
		c.nm[x].predictionTotal(rs.predicted, rs.ph.Preprocess+rs.ph.Analysis+rs.ph.Transfer)
	}
	release()
	c.inflight[x]--
}

// complete records the client-observed outcome.
func (c *Cluster) complete(rs *request) {
	rs.ph.Network += (c.Sim.Now() - rs.mark).ToSeconds()
	resp := (c.Sim.Now() - rs.issued).ToSeconds()
	c.outstanding--
	c.lastDone = c.Sim.Now()
	if resp > c.cfg.ClientTimeout.ToSeconds() {
		c.trace(rs, trace.EvTimedOut, rs.servedBy, "")
		c.nm[rs.servedBy].drop("timeout")
		c.flightComplete(rs, true)
		c.res.RecordDrop(stats.DropTimeout)
		return
	}
	c.trace(rs, trace.EvDelivered, rs.servedBy, "")
	// Same exemplar rule as the live node: the trace id of the most recent
	// traced success stays on the bucket it landed in, timestamped in
	// virtual micros, so a burn-rate breach resolves to a flight record.
	nowMicros := int64(c.Sim.Now().ToSeconds() * 1e6)
	tid := c.traceIDOf(rs)
	c.nm[rs.servedBy].response.ObserveExemplar(resp, tid, nowMicros)
	if rs.hasTTFB {
		c.nm[rs.servedBy].ttfb.ObserveExemplar((rs.ttfbAt - rs.issued).ToSeconds(), tid, nowMicros)
	}
	c.flightComplete(rs, false)
	// Heat counts fulfilled document serves only — the same event the
	// live handler observes — so both substrates fill identical sketches.
	if rs.found {
		c.heatObserve(rs, resp)
	}
	c.res.RecordSuccess(resp, rs.servedBy, rs.redirects > 0, rs.ph)
}
