package simsrv

import (
	"fmt"
	"math/rand"

	"sweb/internal/core"
	"sweb/internal/des"
	"sweb/internal/dnsrr"
	"sweb/internal/flight"
	"sweb/internal/heat"
	"sweb/internal/loadd"
	"sweb/internal/model"
	"sweb/internal/netsim"
	"sweb/internal/stats"
	"sweb/internal/trace"
	"sweb/internal/workload"
)

// Cluster is one simulated SWEB deployment.
type Cluster struct {
	Sim *des.Simulator

	cfg      Config
	nodes    []*model.Node
	net      netsim.Network
	tables   []*loadd.Table
	policy   core.Policy
	resolver *dnsrr.Resolver
	rng      *rand.Rand

	inflight []int  // admitted, not yet finished server-side, per node
	up       []bool // node in the resource pool
	nm       []*simMetrics
	fl       []*flight.Recorder // per-node black boxes, nil when FlightOff
	ht       []*heat.Sketch     // per-node document-heat sketches, nil when HeatOff
	reqSeq   int64              // sim analogue of the live connection id

	res            *stats.RunResult
	outstanding    int64
	lastDone       des.Time // completion time of the latest request
	lostBroadcasts int64
	dispatchNext   int64 // rotation cursor for the baseline dispatcher
	stopped        bool
}

// New builds a cluster from cfg. The returned cluster is ready for Submit /
// RunSchedule.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	sim := des.New()
	n := len(cfg.Specs)
	c := &Cluster{
		Sim:      sim,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		inflight: make([]int, n),
		up:       make([]bool, n),
		res:      &stats.RunResult{PerNodeServed: make([]int64, n)},
	}
	nics := make([]*des.PSResource, 0, n)
	for i, spec := range cfg.Specs {
		node, err := model.NewNode(sim, i, spec)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		nics = append(nics, node.NIC)
		c.up[i] = true
	}
	switch cfg.Net {
	case NetMeiko:
		c.net = netsim.NewFatTree(sim, nics)
	case NetNOW:
		c.net = netsim.NewEthernetBus(sim, nics, cfg.BusRate, cfg.BusBackground)
	}
	// The oracle's remote penalty comes from the interconnect unless the
	// caller overrode it.
	if !cfg.HaveParams {
		c.cfg.Params.RemotePenalty = c.net.RemotePenalty()
	}
	var err error
	c.policy, err = buildPolicy(cfg.Policy, c.cfg.Params)
	if err != nil {
		return nil, err
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	c.resolver, err = dnsrr.New(ids, cfg.DNSCacheTTL)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		c.tables = append(c.tables, loadd.NewTable(i, cfg.LoaddTimeout, c.cfg.Params.Delta))
	}
	// Per-node flight recorders precede the registries: the metric
	// closures read them.
	if !cfg.FlightOff {
		fcfg := flight.Config{
			Cap:         cfg.FlightRing,
			NotableCap:  cfg.FlightNotable,
			SlowSeconds: cfg.SlowThresholdSeconds,
		}
		for i := 0; i < n; i++ {
			c.fl = append(c.fl, flight.New(fcfg))
		}
	}
	// Heat sketches precede the registries for the same reason.
	if !cfg.HeatOff {
		for i := 0; i < n; i++ {
			c.ht = append(c.ht, heat.New(heat.Config{K: cfg.HeatK}))
		}
	}
	// Per-node registries mirror the live /sweb/metrics families; they need
	// the tables in place for the gossip gauges.
	for i := 0; i < n; i++ {
		c.nm = append(c.nm, newSimMetrics(c, i))
	}
	// Warm the tables (the daemons were already running before the test
	// bursts start) and kick off the periodic broadcasts, staggered so
	// nodes do not gossip in lockstep.
	for i := 0; i < n; i++ {
		c.broadcast(i)
		stagger := des.Time(i) * 100 * des.Millisecond
		c.scheduleLoadd(i, stagger+c.nextPeriod())
	}
	return c, nil
}

func buildPolicy(name string, p core.Params) (core.Policy, error) {
	switch name {
	case PolicySWEB:
		return core.NewSWEB(p), nil
	case PolicyRoundRobin:
		return core.RoundRobin{}, nil
	case PolicyFileLocality:
		return core.FileLocality{P: p}, nil
	case PolicyCPUOnly:
		return core.CPUOnly{P: p}, nil
	default:
		return nil, fmt.Errorf("simsrv: unknown policy %q", name)
	}
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node exposes the i-th simulated node for inspection in tests.
func (c *Cluster) Node(i int) *model.Node { return c.nodes[i] }

// PolicyName reports the active scheduling policy.
func (c *Cluster) PolicyName() string { return c.policy.Name() }

// Result returns the accumulating run result.
func (c *Cluster) Result() *stats.RunResult { return c.res }

// nowSec is the simulation clock in seconds, the unit loadd and dnsrr use.
func (c *Cluster) nowSec() float64 { return c.Sim.Now().ToSeconds() }

func (c *Cluster) nextPeriod() des.Time {
	j := c.cfg.LoaddJitter
	if j <= 0 {
		return c.cfg.LoaddPeriod
	}
	return c.cfg.LoaddPeriod + des.Time(c.rng.Int63n(int64(2*j))) - j
}

// scheduleLoadd arms node x's next broadcast.
func (c *Cluster) scheduleLoadd(x int, at des.Time) {
	c.Sim.At(at, func() {
		if c.stopped {
			return
		}
		if c.up[x] {
			// Collecting /proc statistics and sending the datagrams
			// costs a little CPU (~0.2% in the paper).
			c.nodes[x].CPUWork(model.ActLoadd, c.cfg.LoaddOps, func() {})
			c.broadcast(x)
		}
		c.scheduleLoadd(x, c.Sim.Now()+c.nextPeriod())
	})
}

// netLoadOf measures node x's network pressure: its own attachment link
// plus, on the NOW, the shared bus occupancy — on a real Ethernet the load
// daemon sees segment utilization directly (collision/defer rates).
func (c *Cluster) netLoadOf(x, nic int) float64 {
	load := float64(nic)
	if eb, ok := c.net.(*netsim.EthernetBus); ok {
		load += float64(eb.BusLoad())
	}
	return load
}

// sampleOf captures node x's current load vector.
func (c *Cluster) sampleOf(x int) loadd.Sample {
	cpu, disk, nic := c.nodes[x].LoadVector()
	spec := c.cfg.Specs[x]
	smp := loadd.Sample{
		Node:            x,
		CPULoad:         float64(cpu),
		DiskLoad:        float64(disk),
		NetLoad:         c.netLoadOf(x, nic),
		CPUOpsPerSec:    spec.CPUOpsPerSec,
		DiskBytesPerSec: spec.DiskBytesPerSec,
		NetBytesPerSec:  c.advertisedNetRate(x),
		SentAt:          c.nowSec(),
	}
	if c.cfg.CacheHints > 0 {
		smp.CacheHints = c.nodes[x].Cache.Hot(c.cfg.CacheHints)
	}
	return smp
}

// advertisedNetRate is b2, the remote-fetch bandwidth the broker plans
// with: the attachment link on the fat tree or the shared bus on the NOW,
// discounted by the measured NFS protocol penalty.
func (c *Cluster) advertisedNetRate(x int) float64 {
	rate := c.cfg.Specs[x].NICBytesPerSec
	if c.cfg.Net == NetNOW && c.cfg.BusRate < rate {
		rate = c.cfg.BusRate
	}
	return rate / c.net.RemotePenalty()
}

// broadcast distributes node x's sample to every table, including its own.
// Datagrams to peers are lossy when LoaddLossRate is set — UDP over a
// congested segment drops, and the gossip protocol must tolerate it.
func (c *Cluster) broadcast(x int) {
	s := c.sampleOf(x)
	for y := range c.nodes {
		y := y
		if y == x {
			if err := c.tables[x].Update(s, c.nowSec()); err != nil {
				panic(err) // own samples are always valid
			}
			continue
		}
		if c.cfg.LoaddLossRate > 0 && c.rng.Float64() < c.cfg.LoaddLossRate {
			c.lostBroadcasts++
			continue
		}
		c.Sim.After(c.net.ControlLatency(), func() {
			// Ignore the error: a corrupt datagram is dropped, exactly
			// what the live daemon does.
			_ = c.tables[y].Update(s, c.nowSec())
		})
	}
}

// LostBroadcasts reports how many loadd datagrams the loss injection ate.
func (c *Cluster) LostBroadcasts() int64 { return c.lostBroadcasts }

// Makespan returns the time of the last request completion — the active
// portion of the run, excluding the idle timeout tail.
func (c *Cluster) Makespan() des.Time { return c.lastDone }

// liveRow builds the broker's view of its own node from current counters
// rather than the last broadcast: a node always knows its own load.
func (c *Cluster) liveRow(x int) core.NodeLoad {
	cpu, disk, nic := c.nodes[x].LoadVector()
	spec := c.cfg.Specs[x]
	return core.NodeLoad{
		Available:       c.up[x],
		CPULoad:         float64(cpu),
		DiskLoad:        float64(disk),
		NetLoad:         c.netLoadOf(x, nic),
		CPUOpsPerSec:    spec.CPUOpsPerSec,
		DiskBytesPerSec: spec.DiskBytesPerSec,
		NetBytesPerSec:  c.advertisedNetRate(x),
	}
}

// FailNodeAt removes node x from the pool at time t: it stops broadcasting
// (peers will time it out) and refuses new connections. In-flight requests
// finish. The DNS keeps resolving to it — exactly the failure mode the
// paper's loadd timeout exists for.
func (c *Cluster) FailNodeAt(t des.Time, x int) {
	c.Sim.At(t, func() { c.up[x] = false })
}

// RecoverNodeAt returns node x to the pool at time t; its next broadcast
// re-announces it to the peers.
func (c *Cluster) RecoverNodeAt(t des.Time, x int) {
	c.Sim.At(t, func() {
		c.up[x] = true
		c.broadcast(x)
	})
}

// Submit schedules one request arrival.
func (c *Cluster) Submit(a workload.Arrival) {
	c.res.Offered++
	c.outstanding++
	c.Sim.At(a.At, func() {
		var node int
		if c.cfg.Dispatcher {
			// Centralized architecture: every request goes through the
			// single distributor on node 0.
			node = 0
		} else {
			n, err := c.resolver.Resolve(a.Domain, c.nowSec())
			if err != nil {
				c.drop(nil, stats.DropUnavailable)
				return
			}
			node = n
		}
		c.reqSeq++
		rs := &request{path: a.Path, domain: a.Domain, issued: c.Sim.Now(), id: c.reqSeq}
		rs.tid = c.cfg.Trace.NewRequest()
		c.trace(rs, trace.EvIssued, -1, "path="+a.Path)
		c.trace(rs, trace.EvResolved, node, "")
		if f, ok := c.cfg.Store.Lookup(a.Path); ok {
			rs.file = f
			rs.found = true
			rs.demand = c.cfg.Oracle.Characterize(a.Path)
		}
		// DNS answer in hand, the client opens the TCP connection:
		// one round trip plus server-side accept processing.
		setup := 2*c.cfg.Client.LatencyOneWay + des.Seconds(c.cfg.Params.ConnectSeconds)
		rs.mark = c.Sim.Now()
		c.Sim.After(setup, func() {
			rs.ph.Network += (c.Sim.Now() - rs.mark).ToSeconds()
			c.arrive(rs, node)
		})
	})
}

// trace emits one lifecycle event when recording is on.
func (c *Cluster) trace(rs *request, kind trace.Kind, node int, detail string) {
	if rs == nil || !c.cfg.Trace.Enabled() {
		return
	}
	c.cfg.Trace.Record(rs.tid, c.nowSec(), kind, node, detail)
}

// RunSchedule submits every arrival, runs the simulation until all requests
// have either completed or exceeded the client timeout, and returns the
// finalized result. It must be called at most once per cluster.
func (c *Cluster) RunSchedule(arrivals []workload.Arrival) *stats.RunResult {
	var last des.Time
	for _, a := range arrivals {
		c.Submit(a)
		if a.At > last {
			last = a.At
		}
	}
	horizon := last + c.cfg.ClientTimeout + 5*des.Second
	c.Sim.Run(horizon)
	c.finalize()
	return c.res
}

// finalize classifies unfinished requests as timeouts and computes the
// whole-run derived statistics.
func (c *Cluster) finalize() {
	c.stopped = true
	for ; c.outstanding > 0; c.outstanding-- {
		c.res.RecordDrop(stats.DropTimeout)
	}
	// CPU shares are measured over the active makespan, not the idle tail
	// the timeout horizon adds after the last completion.
	elapsed := c.lastDone.ToSeconds()
	if elapsed == 0 {
		elapsed = c.Sim.Now().ToSeconds()
	}
	if elapsed > 0 {
		var totalCapacity float64
		byAct := make(map[string]float64)
		for i, node := range c.nodes {
			totalCapacity += c.cfg.Specs[i].CPUOpsPerSec * elapsed
			for act, ops := range node.CPUByActivity() {
				byAct[string(act)] += ops
			}
		}
		c.res.CPUShare = make(map[string]float64, len(byAct))
		for act, ops := range byAct {
			c.res.CPUShare[act] = ops / totalCapacity
		}
	}
	var hits, misses int64
	for _, node := range c.nodes {
		h, m := node.Cache.Stats()
		hits += h
		misses += m
	}
	if hits+misses > 0 {
		c.res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
}

func (c *Cluster) drop(rs *request, cause stats.DropCause) {
	c.res.RecordDrop(cause)
	c.outstanding--
	c.lastDone = c.Sim.Now()
	if rs != nil {
		// Refused and unreachable requests still leave black-box evidence:
		// a 503 record at the node that turned them away, with no target
		// (the broker never placed them anywhere).
		c.flightEmit(rs, rs.entry, 503, 0, false)
	}
}
