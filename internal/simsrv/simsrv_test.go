package simsrv

import (
	"math"
	"math/rand"
	"testing"

	"sweb/internal/core"
	"sweb/internal/des"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

func smallStore(nodes, count int, size int64) (*storage.Store, []string) {
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, count, size)
	return st, paths
}

func runBurst(t *testing.T, cfg Config, rps, dur int, paths []string) *stats.RunResult {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
	arrivals, err := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return cl.RunSchedule(arrivals)
}

func TestConfigValidation(t *testing.T) {
	st, _ := smallStore(2, 2, 1024)
	cases := []Config{
		{},                                // no specs
		{Specs: MeikoSpecs(2)},            // no store
		{Specs: MeikoSpecs(3), Store: st}, // node count mismatch
		{Specs: MeikoSpecs(2), Store: st, Net: "token-ring"},
		{Specs: MeikoSpecs(2), Store: st, Policy: "best-effort"},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAllRequestsComplete(t *testing.T) {
	st, paths := smallStore(3, 6, 64<<10)
	res := runBurst(t, MeikoConfig(3, st), 4, 5, paths)
	if res.Offered != 20 {
		t.Fatalf("offered = %d", res.Offered)
	}
	if res.Completed != 20 || res.Dropped() != 0 {
		t.Fatalf("completed=%d dropped=%d", res.Completed, res.Dropped())
	}
	if res.MeanResponse() <= 0 {
		t.Fatal("zero response time")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *stats.RunResult {
		st, paths := smallStore(4, 8, 256<<10)
		cfg := MeikoConfig(4, st)
		cfg.Seed = 99
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		burst := workload.Burst{RPS: 10, DurationSeconds: 5, Jitter: true}
		arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(5)))
		return cl.RunSchedule(arr)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Redirects != b.Redirects ||
		math.Abs(a.MeanResponse()-b.MeanResponse()) > 1e-12 {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.PerNodeServed {
		if a.PerNodeServed[i] != b.PerNodeServed[i] {
			t.Fatalf("per-node differs: %v vs %v", a.PerNodeServed, b.PerNodeServed)
		}
	}
}

func TestRoundRobinServesWhereDNSSends(t *testing.T) {
	st, paths := smallStore(3, 6, 32<<10)
	cfg := MeikoConfig(3, st)
	cfg.Policy = PolicyRoundRobin
	res := runBurst(t, cfg, 6, 5, paths)
	if res.Redirects != 0 {
		t.Fatalf("rr redirected %d requests", res.Redirects)
	}
	// DNS rotation spreads 30 requests exactly 10-10-10.
	for i, n := range res.PerNodeServed {
		if n != 10 {
			t.Fatalf("node %d served %d (want 10): %v", i, n, res.PerNodeServed)
		}
	}
}

func TestFileLocalityServesAtOwner(t *testing.T) {
	st := storage.NewStore(3)
	// All files owned by node 2.
	var paths []string
	for i := 0; i < 3; i++ {
		p := []string{"/a.dat", "/b.dat", "/c.dat"}[i]
		st.MustAdd(storage.File{Path: p, Size: 32 << 10, Owner: 2})
		paths = append(paths, p)
	}
	cfg := MeikoConfig(3, st)
	cfg.Policy = PolicyFileLocality
	res := runBurst(t, cfg, 3, 4, paths)
	if res.PerNodeServed[2] != res.Completed {
		t.Fatalf("owner served %d of %d", res.PerNodeServed[2], res.Completed)
	}
	if res.Redirects == 0 {
		t.Fatal("no redirects despite foreign arrivals")
	}
}

func TestOverloadProducesDrops(t *testing.T) {
	st, paths := smallStore(1, 4, 1536<<10)
	cfg := MeikoConfig(1, st)
	res := runBurst(t, cfg, 40, 20, paths)
	if res.Dropped() == 0 {
		t.Fatal("a single node absorbing 40 rps of 1.5MB files must drop")
	}
	if res.Drops[stats.DropRefused] == 0 {
		t.Fatal("overload should overflow the accept capacity")
	}
}

func TestNodeFailureDropsItsArrivals(t *testing.T) {
	st, paths := smallStore(2, 4, 1024)
	cfg := MeikoConfig(2, st)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNodeAt(0, 1) // node 1 dead from the start; DNS keeps resolving to it
	burst := workload.Burst{RPS: 4, DurationSeconds: 3, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(3)))
	res := cl.RunSchedule(arr)
	if res.Drops[stats.DropUnavailable] == 0 {
		t.Fatal("arrivals at the dead node should drop as unavailable")
	}
	if res.PerNodeServed[1] != 0 {
		t.Fatal("dead node served requests")
	}
	// Half the rotation lands on the dead node.
	if res.Completed != res.Offered-res.Dropped() {
		t.Fatal("accounting mismatch")
	}
}

func TestNodeRecoveryRestoresService(t *testing.T) {
	st, paths := smallStore(2, 4, 1024)
	cfg := MeikoConfig(2, st)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNodeAt(0, 1)
	cl.RecoverNodeAt(5*des.Second, 1)
	burst := workload.Burst{RPS: 4, DurationSeconds: 10, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(4)))
	res := cl.RunSchedule(arr)
	if res.PerNodeServed[1] == 0 {
		t.Fatal("recovered node never served")
	}
	if res.Drops[stats.DropUnavailable] == 0 {
		t.Fatal("pre-recovery arrivals should have dropped")
	}
}

func TestSWEBAvoidsDeadPeers(t *testing.T) {
	// All files on node 0; node 0 dies. SWEB brokers elsewhere must not
	// redirect into the void once loadd times node 0 out.
	st := storage.NewStore(3)
	hot := storage.SkewedSet(st, 256<<10)
	cfg := MeikoConfig(3, st)
	cfg.LoaddTimeout = 4
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNodeAt(2*des.Second, 0)
	burst := workload.Burst{RPS: 6, DurationSeconds: 15, Jitter: true}
	arr, _ := burst.Generate(workload.SinglePicker(hot), nil, rand.New(rand.NewSource(6)))
	res := cl.RunSchedule(arr)
	// Arrivals DNS-routed to node 0 drop; arrivals elsewhere must all
	// complete (~2/3 of traffic), so drops stay well below half.
	if rate := res.DropRate(); rate > 0.45 {
		t.Fatalf("drop rate %v: brokers kept redirecting to the dead owner", rate)
	}
	if res.PerNodeServed[1] == 0 || res.PerNodeServed[2] == 0 {
		t.Fatalf("survivors idle: %v", res.PerNodeServed)
	}
}

func TestCGIPinnedAndCharged(t *testing.T) {
	st := storage.NewStore(2)
	cgi := storage.AddCGISet(st, 2, 20e6, 2048)
	cfg := MeikoConfig(2, st)
	res := runBurst(t, cfg, 2, 4, cgi)
	if res.Completed != res.Offered {
		t.Fatalf("cgi drops: %d/%d", res.Completed, res.Offered)
	}
	if res.Redirects != 0 {
		t.Fatal("CGI requests must be pinned where they arrive")
	}
	if res.CPUShare["cgi"] == 0 {
		t.Fatal("CGI compute not accounted")
	}
}

func TestNotFoundServedLocally(t *testing.T) {
	st, _ := smallStore(2, 2, 1024)
	cfg := MeikoConfig(2, st)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 2, DurationSeconds: 3, Jitter: true}
	arr, _ := burst.Generate(workload.SinglePicker("/does/not/exist"), nil, rand.New(rand.NewSource(8)))
	res := cl.RunSchedule(arr)
	if res.Completed != res.Offered {
		t.Fatalf("errors not served: %d/%d", res.Completed, res.Offered)
	}
	if res.Redirects != 0 {
		t.Fatal("404s must never be redirected")
	}
	// Error responses are tiny and fast.
	if res.MeanResponse() > 0.5 {
		t.Fatalf("404 took %v", res.MeanResponse())
	}
}

func TestCacheWarmsAcrossRequests(t *testing.T) {
	st, paths := smallStore(2, 2, 256<<10)
	cfg := MeikoConfig(2, st)
	res := runBurst(t, cfg, 8, 10, paths)
	if res.CacheHitRate <= 0.5 {
		t.Fatalf("hit rate %v after 80 requests over 2 files", res.CacheHitRate)
	}
}

func TestPhaseBreakdownSumsToResponse(t *testing.T) {
	st, paths := smallStore(2, 4, 512<<10)
	cfg := MeikoConfig(2, st)
	res := runBurst(t, cfg, 4, 5, paths)
	sum := res.Phases.Preprocess.Mean() + res.Phases.Analysis.Mean() +
		res.Phases.Redirect.Mean() + res.Phases.Transfer.Mean() + res.Phases.Network.Mean()
	if math.Abs(sum-res.MeanResponse()) > 0.01*res.MeanResponse()+1e-6 {
		t.Fatalf("phases sum to %v, response %v", sum, res.MeanResponse())
	}
}

func TestCPUShareAccounting(t *testing.T) {
	st, paths := smallStore(2, 4, 512<<10)
	res := runBurst(t, MeikoConfig(2, st), 6, 5, paths)
	for _, key := range []string{"parse", "schedule", "loadd", "fulfill"} {
		if res.CPUShare[key] <= 0 {
			t.Fatalf("activity %q has zero CPU share: %v", key, res.CPUShare)
		}
	}
	var total float64
	for _, v := range res.CPUShare {
		total += v
	}
	if total >= 1 {
		t.Fatalf("CPU shares exceed capacity: %v", total)
	}
	// The scheduling machinery must cost far less than request work
	// (Sec. 4.3's headline claim).
	if res.CPUShare["schedule"]+res.CPUShare["loadd"] > res.CPUShare["parse"] {
		t.Fatalf("overhead exceeds parsing: %v", res.CPUShare)
	}
}

func TestDNSCacheSkewsRoundRobin(t *testing.T) {
	st, paths := smallStore(3, 6, 1024)
	cfg := MeikoConfig(3, st)
	cfg.Policy = PolicyRoundRobin
	cfg.DNSCacheTTL = 300
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 6, DurationSeconds: 5, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), workload.NewDomainPool(1),
		rand.New(rand.NewSource(9)))
	res := cl.RunSchedule(arr)
	// One cached domain: everything lands on one node.
	nonZero := 0
	for _, n := range res.PerNodeServed {
		if n > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("DNS caching should funnel to one node: %v", res.PerNodeServed)
	}
}

func TestMaxRedirectsHonored(t *testing.T) {
	st := storage.NewStore(2)
	hot := storage.SkewedSet(st, 512<<10)
	cfg := MeikoConfig(2, st)
	cfg.Policy = PolicyFileLocality
	p := core.DefaultParams()
	p.MaxRedirects = 0
	cfg.Params = p
	cfg.HaveParams = true
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 2, DurationSeconds: 3, Jitter: true}
	arr, _ := burst.Generate(workload.SinglePicker(hot), nil, rand.New(rand.NewSource(10)))
	res := cl.RunSchedule(arr)
	if res.Redirects != 0 {
		t.Fatalf("MaxRedirects=0 yet %d redirects", res.Redirects)
	}
}

func TestRemoteFetchesCrossTheInterconnect(t *testing.T) {
	// Round robin with files all owned by node 0: node 1 must fetch
	// remotely, showing up as disk traffic at the owner only.
	st := storage.NewStore(2)
	var paths []string
	for _, p := range []string{"/x.dat", "/y.dat"} {
		st.MustAdd(storage.File{Path: p, Size: 512 << 10, Owner: 0})
		paths = append(paths, p)
	}
	cfg := MeikoConfig(2, st)
	cfg.Policy = PolicyRoundRobin
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 2, DurationSeconds: 2, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(11)))
	cl.RunSchedule(arr)
	if cl.Node(0).DiskReads == 0 {
		t.Fatal("owner disk never read")
	}
	if cl.Node(1).DiskReads != 0 {
		t.Fatal("non-owner read its own disk for foreign files")
	}
}

func TestZeroByteFileServed(t *testing.T) {
	st := storage.NewStore(1)
	st.MustAdd(storage.File{Path: "/empty.dat", Size: 0, Owner: 0})
	cfg := MeikoConfig(1, st)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 1, DurationSeconds: 2, Jitter: true}
	arr, _ := burst.Generate(workload.SinglePicker("/empty.dat"), nil, rand.New(rand.NewSource(12)))
	res := cl.RunSchedule(arr)
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestMoreNodesReduceResponseUnderLoad(t *testing.T) {
	mean := func(nodes int) float64 {
		st, paths := smallStore(nodes, 12, 1536<<10)
		cfg := MeikoConfig(nodes, st)
		cfg.ClientTimeout = 600 * des.Second
		res := runBurst(t, cfg, 12, 8, paths)
		return res.MeanResponse()
	}
	one, six := mean(1), mean(6)
	if six >= one/2 {
		t.Fatalf("scaling broken: 1 node %vs, 6 nodes %vs", one, six)
	}
}

func TestSWEBOutperformsRoundRobinOnHotSpot(t *testing.T) {
	run := func(policy string) float64 {
		st := storage.NewStore(4)
		hot := storage.SkewedSet(st, 1536<<10)
		cfg := MeikoConfig(4, st)
		cfg.Policy = policy
		cfg.ClientTimeout = 600 * des.Second
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		burst := workload.Burst{RPS: 8, DurationSeconds: 15, Jitter: true}
		arr, _ := burst.Generate(workload.SinglePicker(hot), nil, rand.New(rand.NewSource(13)))
		return cl.RunSchedule(arr).MeanResponse()
	}
	fl, sweb := run(PolicyFileLocality), run(PolicySWEB)
	if sweb >= fl {
		t.Fatalf("SWEB (%vs) must beat file locality (%vs) on the hot spot", sweb, fl)
	}
}
