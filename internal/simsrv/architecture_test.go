package simsrv

import (
	"math/rand"
	"testing"

	"sweb/internal/des"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/trace"
	"sweb/internal/workload"
)

func TestForwardingServesEverything(t *testing.T) {
	st := storage.NewStore(3)
	// All files on node 2 so reassignment definitely happens.
	var paths []string
	for _, p := range []string{"/a.dat", "/b.dat"} {
		st.MustAdd(storage.File{Path: p, Size: 256 << 10, Owner: 2})
		paths = append(paths, p)
	}
	cfg := MeikoConfig(3, st)
	cfg.Policy = PolicyFileLocality
	cfg.Reassign = ReassignForward
	res := runBurst(t, cfg, 4, 5, paths)
	if res.Completed != res.Offered {
		t.Fatalf("completed %d of %d", res.Completed, res.Offered)
	}
	if res.Redirects == 0 {
		t.Fatal("no reassignments despite foreign arrivals")
	}
	// Forwarded requests are *served by* the owner even though the client
	// never reconnects.
	if res.PerNodeServed[2] != res.Completed {
		t.Fatalf("owner served %d of %d", res.PerNodeServed[2], res.Completed)
	}
}

func TestForwardingInvalidMechanismRejected(t *testing.T) {
	st, _ := smallStore(2, 2, 1024)
	cfg := MeikoConfig(2, st)
	cfg.Reassign = "smoke-signals"
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus reassignment mechanism accepted")
	}
}

func TestForwardingToDeadTargetDrops(t *testing.T) {
	st := storage.NewStore(2)
	hot := storage.SkewedSet(st, 256<<10) // owned by node 0
	cfg := MeikoConfig(2, st)
	cfg.Policy = PolicyFileLocality
	cfg.Reassign = ReassignForward
	cfg.LoaddTimeout = 1000 // keep the stale entry "available"
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNodeAt(0, 0)
	burst := workload.Burst{RPS: 4, DurationSeconds: 3, Jitter: true}
	arr, _ := burst.Generate(workload.SinglePicker(hot), nil, rand.New(rand.NewSource(2)))
	res := cl.RunSchedule(arr)
	// Arrivals at node 1 forward toward dead node 0 and fail; arrivals at
	// node 0 are refused outright. Nothing completes, nothing hangs.
	if res.Completed != 0 {
		t.Fatalf("completed %d with the only owner dead", res.Completed)
	}
	if res.Drops[stats.DropUnavailable] == 0 {
		t.Fatal("no unavailable drops recorded")
	}
}

func TestDispatcherRoutesEverythingThroughNodeZero(t *testing.T) {
	st := storage.NewStore(3)
	var paths []string
	for i, p := range []string{"/a.dat", "/b.dat"} {
		st.MustAdd(storage.File{Path: p, Size: 64 << 10, Owner: 1 + i})
		paths = append(paths, p)
	}
	cfg := MeikoConfig(3, st)
	cfg.Dispatcher = true
	res := runBurst(t, cfg, 4, 5, paths)
	if res.Completed != res.Offered {
		t.Fatalf("completed %d of %d", res.Completed, res.Offered)
	}
	if res.PerNodeServed[0] != 0 {
		t.Fatalf("dispatcher served %d requests itself", res.PerNodeServed[0])
	}
	// Every request was redirected exactly once by the dispatcher.
	if res.Redirects != res.Completed {
		t.Fatalf("redirects %d != completed %d", res.Redirects, res.Completed)
	}
}

func TestDispatcherNeedsWorkers(t *testing.T) {
	st, _ := smallStore(1, 1, 1024)
	cfg := MeikoConfig(1, st)
	cfg.Dispatcher = true
	if _, err := New(cfg); err == nil {
		t.Fatal("single-node dispatcher accepted")
	}
}

func TestDispatcherDeathKillsService(t *testing.T) {
	st := storage.NewStore(3)
	st.MustAdd(storage.File{Path: "/a.dat", Size: 1024, Owner: 1})
	cfg := MeikoConfig(3, st)
	cfg.Dispatcher = true
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNodeAt(0, 0)
	burst := workload.Burst{RPS: 4, DurationSeconds: 3, Jitter: true}
	arr, _ := burst.Generate(workload.SinglePicker("/a.dat"), nil, rand.New(rand.NewSource(3)))
	res := cl.RunSchedule(arr)
	if res.Completed != 0 {
		t.Fatalf("the single point of failure is down yet %d completed", res.Completed)
	}
}

func TestLoaddLossRateValidation(t *testing.T) {
	st, _ := smallStore(2, 2, 1024)
	for _, bad := range []float64{-0.1, 1.0, 2} {
		cfg := MeikoConfig(2, st)
		cfg.LoaddLossRate = bad
		if _, err := New(cfg); err == nil {
			t.Errorf("loss rate %v accepted", bad)
		}
	}
}

func TestLoaddLossDropsDatagramsButServiceSurvives(t *testing.T) {
	st, paths := smallStore(3, 6, 64<<10)
	cfg := MeikoConfig(3, st)
	cfg.LoaddLossRate = 0.6
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 6, DurationSeconds: 10, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(4)))
	res := cl.RunSchedule(arr)
	if cl.LostBroadcasts() == 0 {
		t.Fatal("loss injection dropped nothing")
	}
	if res.DropRate() > 0.01 {
		t.Fatalf("gossip loss caused request drops: %v", res.DropRate())
	}
}

func TestTraceCapturesLifecycle(t *testing.T) {
	st, paths := smallStore(2, 2, 64<<10)
	cfg := MeikoConfig(2, st)
	rec := trace.NewRecorder(0)
	cfg.Trace = rec
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 2, DurationSeconds: 2, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(5)))
	res := cl.RunSchedule(arr)

	sum := trace.Summarize(rec.Events())
	if sum.Requests != int(res.Offered) {
		t.Fatalf("traced %d requests, offered %d", sum.Requests, res.Offered)
	}
	if sum.Completed != int(res.Completed) {
		t.Fatalf("traced %d deliveries, completed %d", sum.Completed, res.Completed)
	}
	// Every request shows the full Figure 1 sequence.
	for _, id := range rec.Requests() {
		span := rec.Span(id)
		kinds := map[trace.Kind]bool{}
		for _, e := range span {
			kinds[e.Kind] = true
		}
		for _, want := range []trace.Kind{trace.EvIssued, trace.EvResolved,
			trace.EvConnected, trace.EvParsed, trace.EvAnalyzed, trace.EvDelivered} {
			if !kinds[want] {
				t.Fatalf("request %d missing %s:\n%s", id, want, trace.RenderSpan(span))
			}
		}
	}
}

func TestTraceRecordsMakespan(t *testing.T) {
	st, paths := smallStore(2, 2, 1024)
	cfg := MeikoConfig(2, st)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 2, DurationSeconds: 2, Jitter: true}
	arr, _ := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(6)))
	cl.RunSchedule(arr)
	if cl.Makespan() <= 0 || cl.Makespan() > 10*des.Second {
		t.Fatalf("makespan = %v", cl.Makespan())
	}
}

func TestCacheHintsValidation(t *testing.T) {
	st, _ := smallStore(2, 2, 1024)
	cfg := MeikoConfig(2, st)
	cfg.CacheHints = 1000
	if _, err := New(cfg); err == nil {
		t.Fatal("oversized hint count accepted")
	}
}

func TestCacheHintsSpreadHotDocuments(t *testing.T) {
	run := func(hints int) *stats.RunResult {
		st := storage.NewStore(3)
		hot := storage.SkewedSet(st, 512<<10)
		cfg := MeikoConfig(3, st)
		cfg.CacheHints = hints
		cfg.Seed = 7
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		burst := workload.Burst{RPS: 6, DurationSeconds: 10, Jitter: true}
		arr, _ := burst.Generate(workload.SinglePicker(hot), nil, rand.New(rand.NewSource(8)))
		return cl.RunSchedule(arr)
	}
	with := run(8)
	without := run(0)
	if with.Completed != with.Offered || without.Completed != without.Offered {
		t.Fatal("drops in hot-file run")
	}
	// With hints the brokers know every node caches the hot file; the run
	// must not be slower than the blind one.
	if with.MeanResponse() > without.MeanResponse()*1.2 {
		t.Fatalf("hints hurt: %.3fs vs %.3fs", with.MeanResponse(), without.MeanResponse())
	}
}
