package simsrv

import (
	"strconv"

	"sweb/internal/flight"
)

// flightOf returns node x's black-box recorder, nil when FlightOff (the
// flight package's methods are nil-safe, so callers never branch).
func (c *Cluster) flightOf(x int) *flight.Recorder {
	if c.fl == nil {
		return nil
	}
	return c.fl[x]
}

// FlightDump snapshots node x's black box — the simulator analogue of
// scraping /sweb/flight. AtSeconds values are virtual seconds from sim
// start, so EpochUnix stays zero (the DES has no wall clock).
func (c *Cluster) FlightDump(x int) flight.Dump {
	d := c.flightOf(x).Dump()
	d.Node = x
	return d
}

// flightEmit appends one record for rs to node's black box. served marks
// requests that reached fulfillment: those carry the policy name and the
// serving node as the decision target, while refusals and drops record no
// placement (Target -1). Both substrates fill the same Record schema —
// the parity test in internal/flight holds them to it.
func (c *Cluster) flightEmit(rs *request, node, status int, bytes int64, served bool) {
	r := c.flightOf(node)
	if r == nil {
		return
	}
	rec := flight.Record{
		AtSeconds:        rs.issued.ToSeconds(),
		Node:             node,
		ConnID:           rs.id,
		Path:             rs.path,
		Status:           status,
		Bytes:            bytes,
		Target:           -1,
		Redirected:       rs.redirects > 0,
		CacheHit:         rs.cacheHit,
		PredictedSeconds: -1,
		ParseSeconds:     rs.ph.Preprocess,
		AnalyzeSeconds:   rs.ph.Analysis,
		TTFBSeconds:      -1,
		TotalSeconds:     (c.Sim.Now() - rs.issued).ToSeconds(),
	}
	if served {
		rec.Policy = c.policy.Name()
		rec.Target = node
		if rs.hasPred {
			rec.PredictedSeconds = rs.predicted
		}
	}
	if rs.hasTTFB {
		rec.TTFBSeconds = (rs.ttfbAt - rs.issued).ToSeconds()
	}
	if c.cfg.Trace.Enabled() && rs.tid >= 0 {
		rec.TraceID = strconv.FormatInt(rs.tid, 10)
	}
	r.Add(rec)
}

// traceIDOf renders rs's trace id the way flight records carry it — the
// string a metrics exemplar must hold for the breach → flight pivot to
// resolve. Empty when tracing is off.
func (c *Cluster) traceIDOf(rs *request) string {
	if !c.cfg.Trace.Enabled() || rs.tid < 0 {
		return ""
	}
	return strconv.FormatInt(rs.tid, 10)
}

// flightComplete records a finished request at the node that served it.
// A timeout is stamped status 0 — the client gave up before the response
// was usable — which routes it to the notable ring, exactly as a live
// node's failed response write does.
func (c *Cluster) flightComplete(rs *request, timedOut bool) {
	status := 200
	bytes := rs.file.Size
	switch {
	case timedOut:
		status = 0
	case !rs.found:
		status = 404
		bytes = errorResponseBytes
	}
	c.flightEmit(rs, rs.servedBy, status, bytes, true)
}
