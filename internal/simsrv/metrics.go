package simsrv

import (
	"math"
	"strconv"

	"sweb/internal/des"
	"sweb/internal/metrics"
	"sweb/internal/trace"
)

// simMetrics publishes one simulated node's state as the same sweb_*
// metric families a live node serves under /sweb/metrics, so the monitor
// renders identical reports from either substrate. The registry is read
// through RegistrySource inside the event loop — everything here runs on
// the single simulation goroutine, timestamps are virtual seconds.
type simMetrics struct {
	reg      *metrics.Registry
	response *metrics.Histogram
	ttfb     *metrics.Histogram
	compared *metrics.Counter
	absErr   *metrics.Histogram
	bytesOut int64
}

// Metric family names shared with the live exposition (see
// internal/httpd/observe.go for the vocabulary they mirror).
const (
	smEvents        = "sweb_events_total"
	smPhase         = "sweb_phase_seconds"
	smResponse      = "sweb_response_seconds"
	smTTFB          = "sweb_ttfb_seconds"
	smDrops         = "sweb_drops_total"
	smRedirects     = "sweb_redirect_targets_total"
	smSchedPred     = "sweb_sched_predicted_seconds_total"
	smSchedActual   = "sweb_sched_actual_seconds_total"
	smSchedCompared = "sweb_sched_compared_total"
	smSchedAbsErr   = "sweb_sched_abs_error_seconds"
	smGossipAge     = "sweb_loadd_broadcast_age_seconds"
	smGossipAdv     = "sweb_loadd_advertised_load"
	smReplicaFetch  = "sweb_replica_fetch_total"
	smRebalance     = "sweb_rebalance_actions_total"
)

func newSimMetrics(c *Cluster, x int) *simMetrics {
	reg := metrics.NewRegistry()
	m := &simMetrics{
		reg: reg,
		response: reg.Histogram(smResponse,
			"end-to-end service time per successfully served request", nil, nil),
		ttfb: reg.Histogram(smTTFB,
			"request arrival to first response chunk, virtual time", nil, nil),
		compared: reg.Counter(smSchedCompared,
			"requests with both a finite prediction and a measured total", nil),
		absErr: reg.Histogram(smSchedAbsErr,
			"absolute error |predicted - actual| of the broker's t_s", nil, nil),
	}
	reg.GaugeFunc("sweb_inflight", "connections being handled now", nil,
		func() float64 { return float64(c.inflight[x]) })
	reg.GaugeFunc("sweb_capacity", "accept capacity (process table + listen backlog)", nil,
		func() float64 { return float64(c.cfg.Specs[x].AcceptQueue) })
	reg.GaugeFunc("sweb_disk_active", "in-progress local disk reads", nil,
		func() float64 { _, disk, _ := c.nodes[x].LoadVector(); return float64(disk) })
	reg.GaugeFunc("sweb_net_active", "in-progress transfers and fetches", nil,
		func() float64 { _, _, nic := c.nodes[x].LoadVector(); return float64(nic) })
	reg.CounterFunc("sweb_bytes_out_total", "response body bytes written", nil,
		func() float64 { return float64(m.bytesOut) })
	// Flight-recorder accounting, same family names as the live node.
	reg.CounterFunc("sweb_flight_records_total", "requests recorded by the flight recorder", nil,
		func() float64 { return float64(c.flightOf(x).Total()) })
	reg.CounterFunc("sweb_flight_notable_total", "flight records retained as notable (errors and slow requests)", nil,
		func() float64 { return float64(c.flightOf(x).NotableTotal()) })
	// Document-heat accounting, same family names as the live node.
	reg.CounterFunc("sweb_heat_observations_total", "served requests folded into the document-heat sketch", nil,
		func() float64 { return float64(c.heatOf(x).Total()) })
	reg.GaugeFunc("sweb_heat_tracked_paths", "paths holding a document-heat sketch slot now", nil,
		func() float64 { return float64(c.heatOf(x).Tracked()) })
	// Page-cache families, mirroring the live sweb_cache_* exposition.
	// The DES runs one request at a time, so misses never coalesce and
	// singleflight_shared stays a constant 0 — published anyway to keep
	// the family set identical across substrates.
	reg.CounterFunc("sweb_cache_hits_total", "page-cache lookups served from memory", nil,
		func() float64 { h, _ := c.nodes[x].Cache.Stats(); return float64(h) })
	reg.CounterFunc("sweb_cache_misses_total", "page-cache lookups that missed", nil,
		func() float64 { _, mi := c.nodes[x].Cache.Stats(); return float64(mi) })
	reg.CounterFunc("sweb_cache_evictions_total", "entries displaced by the LRU policy", nil,
		func() float64 { return float64(c.nodes[x].Cache.Evictions()) })
	reg.CounterFunc("sweb_cache_singleflight_shared_total", "fills shared by coalesced concurrent misses", nil,
		func() float64 { return 0 })
	reg.GaugeFunc("sweb_cache_bytes", "bytes resident in the page cache", nil,
		func() float64 { return float64(c.nodes[x].Cache.Used()) })
	reg.GaugeFunc("sweb_cache_capacity_bytes", "page-cache capacity", nil,
		func() float64 { return float64(c.nodes[x].Cache.Capacity()) })
	for peer := range c.cfg.Specs {
		if peer == x {
			continue
		}
		peer := peer
		reg.GaugeFunc(smGossipAge, "seconds since the peer's last load broadcast (-1: none yet)",
			metrics.Labels{"peer": strconv.Itoa(peer)},
			func() float64 { return c.tables[x].Age(peer, c.nowSec()) })
		for _, facet := range []string{"cpu", "disk", "net"} {
			facet := facet
			reg.GaugeFunc(smGossipAdv, "load the peer last advertised, by facet",
				metrics.Labels{"peer": strconv.Itoa(peer), "facet": facet},
				func() float64 {
					smp, ok := c.tables[x].Advertised(peer)
					if !ok {
						return 0
					}
					switch facet {
					case "cpu":
						return smp.CPULoad
					case "disk":
						return smp.DiskLoad
					default:
						return smp.NetLoad
					}
				})
		}
	}
	return m
}

func (m *simMetrics) event(kind trace.Kind) {
	m.reg.Counter(smEvents, "request lifecycle events by trace kind",
		metrics.Labels{"event": string(kind)}).Inc()
}

func (m *simMetrics) drop(cause string) {
	m.reg.Counter(smDrops, "requests not served in full, by cause",
		metrics.Labels{"cause": cause}).Inc()
}

func (m *simMetrics) phase(phase string, seconds float64) {
	m.reg.Histogram(smPhase, "time spent per lifecycle phase",
		metrics.Labels{"phase": phase}, nil).Observe(seconds)
}

func (m *simMetrics) replicaFetch(path string, source int) {
	m.reg.Counter(smReplicaFetch, "internal document fetches by source replica node",
		metrics.Labels{"path": path, "source": strconv.Itoa(source)}).Inc()
}

func (m *simMetrics) rebalanceAction(action string) {
	m.reg.Counter(smRebalance, "replica-set mutations applied at this node, by action",
		metrics.Labels{"action": action}).Inc()
}

func (m *simMetrics) redirect(target int) {
	m.reg.Counter(smRedirects, "302s issued, by target node",
		metrics.Labels{"target": strconv.Itoa(target)}).Inc()
}

// predictionTotal records one predicted-vs-actual t_s pair. The simulated
// broker exposes only its chosen target's total estimate, so the
// comparison is whole-t_s, phase="total" — the same cells a live node
// fills when its policy lacks a full cost table.
func (m *simMetrics) predictionTotal(predicted, actual float64) {
	if math.IsNaN(predicted) || math.IsInf(predicted, 0) || predicted < 0 {
		return
	}
	m.reg.Counter(smSchedPred, "sum of broker-predicted seconds by t_s phase",
		metrics.Labels{"phase": "total"}).Add(predicted)
	m.reg.Counter(smSchedActual, "sum of measured seconds by t_s phase",
		metrics.Labels{"phase": "total"}).Add(actual)
	m.compared.Inc()
	d := predicted - actual
	if d < 0 {
		d = -d
	}
	m.absErr.Observe(d)
}

// Registry exposes node x's metrics registry — the simulator analogue of
// scraping /sweb/metrics, meant to feed a monitor.RegistrySource.
func (c *Cluster) Registry(x int) *metrics.Registry { return c.nm[x].reg }

// NodeUp reports whether node x is in the resource pool — the simulated
// scrape-reachability signal.
func (c *Cluster) NodeUp(x int) bool { return c.up[x] }

// Every arms fn on the simulation clock each period until the run
// finalizes — the virtual-time cadence a monitor's Collect loop rides.
func (c *Cluster) Every(period des.Time, fn func()) {
	if period <= 0 {
		return
	}
	var arm func(at des.Time)
	arm = func(at des.Time) {
		c.Sim.At(at, func() {
			if c.stopped {
				return
			}
			fn()
			arm(c.Sim.Now() + period)
		})
	}
	arm(c.Sim.Now() + period)
}
