package simsrv

import (
	"sweb/internal/heat"
	"sweb/internal/metrics"
)

// heatOf returns node x's document-heat sketch, nil when HeatOff (the
// heat package's methods are nil-safe, so callers never branch).
func (c *Cluster) heatOf(x int) *heat.Sketch {
	if c.ht == nil {
		return nil
	}
	return c.ht[x]
}

// HeatDump snapshots node x's sketch — the simulator analogue of
// scraping /sweb/heat. Both substrates fill the same Dump schema; the
// parity test in internal/heat holds them to it.
func (c *Cluster) HeatDump(x int) heat.Dump {
	d := c.heatOf(x).Dump()
	d.Node = x
	return d
}

// MergedHeat folds every node's sketch into the cluster-wide ranking —
// what a live deployment gets by scraping and merging /sweb/heat.
func (c *Cluster) MergedHeat() heat.Merged {
	dumps := make([]heat.Dump, c.Nodes())
	for i := range dumps {
		dumps[i] = c.HeatDump(i)
	}
	return heat.Merge(dumps)
}

// heatObserve folds one fulfilled serve into the serving node's sketch
// and bumps the per-path counters, mirroring the live node's funnel.
func (c *Cluster) heatObserve(rs *request, resp float64) {
	h := c.heatOf(rs.servedBy)
	if h == nil {
		return
	}
	cgi := rs.fetchPhase == "cgi"
	owner := -1
	if !cgi {
		owner = rs.file.Owner
	}
	h.Observe(heat.Observation{
		Path:    rs.path,
		Owner:   owner,
		Bytes:   rs.file.Size,
		Relay:   rs.fetchPhase == "fetch_nfs",
		Miss:    !cgi && !rs.cacheHit,
		Seconds: resp,
	})
	reg := c.nm[rs.servedBy].reg
	reg.Counter("sweb_heat_requests_total", "served requests per document path",
		metrics.Labels{"path": rs.path}).Inc()
	if rs.fetchPhase == "fetch_nfs" {
		reg.Counter("sweb_heat_relays_total", "requests served by fetching the document from a replica",
			metrics.Labels{"path": rs.path}).Inc()
	}
	// Replica-set size at serve time: the hot_doc rule divides a path's
	// request share by this gauge, so replication — not only load decay —
	// clears the alert.
	reg.Gauge("sweb_heat_replicas", "replica-set size of the document at last serve",
		metrics.Labels{"path": rs.path}).Set(float64(len(rs.file.ReplicaSet())))
}
