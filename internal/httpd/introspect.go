package httpd

import (
	"bytes"
	"encoding/json"
	"time"

	"sweb/internal/heat"
	"sweb/internal/httpmsg"
	"sweb/internal/loadd"
	"sweb/internal/metrics"
	"sweb/internal/slo"
	"sweb/internal/trace"
)

// introspectPrefix guards the per-node observability endpoints. Like
// X-Sweb-Internal fetches they are served where they arrive, never
// re-scheduled: a 302 to a "less loaded" peer would answer with the wrong
// node's state.
const introspectPrefix = "/sweb/"

// StatusConfig is the slice of Config worth seeing from outside.
type StatusConfig struct {
	Policy              string  `json:"policy"`
	MaxConcurrent       int     `json:"max_concurrent"`
	FetchAttempts       int     `json:"fetch_attempts"`
	FailureLimit        int     `json:"failure_limit"`
	LoaddPeriodSeconds  float64 `json:"loadd_period_seconds"`
	LoaddTimeoutSeconds float64 `json:"loadd_timeout_seconds"`
	DocRoot             string  `json:"doc_root"`
}

// TraceStatus summarizes the node's recorder for /sweb/status: whether
// tracing is on, how much it captured, and — the silent-loss signal — how
// many events the capture limit discarded.
type TraceStatus struct {
	Enabled   bool    `json:"enabled"`
	Events    int     `json:"events"`
	Dropped   int64   `json:"dropped"`
	EpochUnix float64 `json:"epoch_unix"`
}

// CacheStatus summarizes the node's hot-file cache for /sweb/status:
// residency and the counters behind the sweb_cache_* families. The Hot
// ranking is unified on the document-heat sketch when heat telemetry is
// on — so relay- and miss-heavy documents appear, not just cache
// residents — with the cache's LRU view as the heat-off fallback; the
// cache itself stays a feeder, not a second ranking.
type CacheStatus struct {
	Enabled            bool     `json:"enabled"`
	CapacityBytes      int64    `json:"capacity_bytes"`
	UsedBytes          int64    `json:"used_bytes"`
	Files              int      `json:"files"`
	Hits               int64    `json:"hits"`
	Misses             int64    `json:"misses"`
	Evictions          int64    `json:"evictions"`
	SingleflightShared int64    `json:"singleflight_shared"`
	HitRate            float64  `json:"hit_rate"`
	Hot                []string `json:"hot,omitempty"`
}

// StatusReport is the /sweb/status payload: one node's counters, its view
// of every peer's health, the recent scheduling decisions with their
// measured outcomes, the gossip time-series behind those decisions, and
// the config shaping them.
type StatusReport struct {
	Node          int                 `json:"node"`
	Addr          string              `json:"addr"`
	UDPAddr       string              `json:"udp_addr"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Stats         Stats               `json:"stats"`
	Cache         CacheStatus         `json:"cache"`
	Heat          heat.Dump           `json:"heat"`
	Trace         TraceStatus         `json:"trace"`
	Peers         []loadd.PeerHealth  `json:"peers"`
	Gossip        []loadd.PeerHistory `json:"gossip,omitempty"`
	Decisions     []DecisionAudit     `json:"decisions"`
	Config        StatusConfig        `json:"config"`
}

// cacheStatus snapshots the hot-file cache (zero-valued when disabled).
func (s *Server) cacheStatus() CacheStatus {
	c := s.cache
	if c == nil {
		return CacheStatus{}
	}
	st := c.Stats()
	return CacheStatus{
		Enabled:            true,
		CapacityBytes:      st.CapacityBytes,
		UsedBytes:          st.UsedBytes,
		Files:              st.Files,
		Hits:               st.Hits,
		Misses:             st.Misses,
		Evictions:          st.Evictions,
		SingleflightShared: st.SingleflightShared,
		HitRate:            st.HitRate(),
		Hot:                s.hotPaths(8),
	}
}

// StatusReport snapshots the node for /sweb/status (exported for the
// cluster doctor and tests).
func (s *Server) StatusReport() StatusReport {
	return StatusReport{
		Node:          s.cfg.ID,
		Addr:          s.Addr(),
		UDPAddr:       s.UDPAddr(),
		UptimeSeconds: time.Since(s.epoch).Seconds(),
		Stats:         s.Stats(),
		Cache:         s.cacheStatus(),
		Heat:          s.HeatDump(),
		Trace: TraceStatus{
			Enabled:   s.cfg.Trace.Enabled(),
			Events:    s.cfg.Trace.Len(),
			Dropped:   s.cfg.Trace.Dropped(),
			EpochUnix: float64(s.epoch.UnixNano()) / 1e9,
		},
		Peers:     s.table.Health(s.nowSec()),
		Gossip:    s.table.HistorySnapshot(),
		Decisions: s.audit.snapshot(),
		Config: StatusConfig{
			Policy:              s.cfg.Policy.Name(),
			MaxConcurrent:       s.cfg.MaxConcurrent,
			FetchAttempts:       s.cfg.FetchAttempts,
			FailureLimit:        s.cfg.FailureLimit,
			LoaddPeriodSeconds:  s.cfg.LoaddPeriod.Seconds(),
			LoaddTimeoutSeconds: s.cfg.LoaddTimeout.Seconds(),
			DocRoot:             s.cfg.DocRoot,
		},
	}
}

// Registry exposes the node's metric registry (tests, embedding).
func (s *Server) Registry() *metrics.Registry { return s.nm.reg }

// SLOReport evaluates the node's configured objectives against its own
// cumulative registry — the lifetime-window accounting a single node can
// answer for, since time-series history lives in the cluster monitor
// (which serves the rolling windows and burn-rate alerts).
func (s *Server) SLOReport() slo.Report {
	var buf bytes.Buffer
	_ = s.nm.reg.WriteText(&buf)
	samples, err := metrics.ParseText(&buf)
	if err != nil {
		samples = nil
	}
	objs := s.cfg.SLO
	if len(objs) == 0 {
		objs = slo.DefaultObjectives()
	}
	uptime := time.Since(s.epoch).Seconds()
	return slo.EvaluateSamples(samples, objs, nodeName(s.cfg.ID), uptime, s.nowSec())
}

// TraceDump is the /sweb/trace payload: one node's raw event stream plus
// the epoch that anchors its relative timestamps to the wall clock, which
// is exactly what trace.Collector.Add needs to stitch streams cross-node.
type TraceDump struct {
	Node      int           `json:"node"`
	Enabled   bool          `json:"enabled"`
	EpochUnix float64       `json:"epoch_unix"`
	Dropped   int64         `json:"dropped"`
	Events    []trace.Event `json:"events"`
}

// TraceDump snapshots the recorder for /sweb/trace (exported for the
// in-process scraper and tests).
func (s *Server) TraceDump() TraceDump {
	return TraceDump{
		Node:      s.cfg.ID,
		Enabled:   s.cfg.Trace.Enabled(),
		EpochUnix: float64(s.epoch.UnixNano()) / 1e9,
		Dropped:   s.cfg.Trace.Dropped(),
		Events:    s.cfg.Trace.Events(),
	}
}

// serveIntrospection answers /sweb/status and /sweb/metrics on the main
// listener and returns the status written.
func (s *Server) serveIntrospection(rc *reqConn, req *httpmsg.Request) int {
	var body []byte
	ctype := metrics.ContentType
	switch req.Path {
	case "/sweb/status":
		b, err := json.MarshalIndent(s.StatusReport(), "", "  ")
		if err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		body, ctype = append(b, '\n'), "application/json"
	case "/sweb/trace":
		b, err := json.Marshal(s.TraceDump())
		if err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		body, ctype = append(b, '\n'), "application/json"
	case "/sweb/flight":
		b, err := json.Marshal(s.FlightDump())
		if err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		body, ctype = append(b, '\n'), "application/json"
	case "/sweb/heat":
		b, err := json.Marshal(s.HeatDump())
		if err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		body, ctype = append(b, '\n'), "application/json"
	case "/sweb/snapshot":
		if s.cfg.SnapshotDir == "" {
			code := httpmsg.StatusServiceUnavailable
			_ = rc.simple(code, nil,
				httpmsg.ErrorBody(code, "No snapshot directory configured (-snapshot-dir)."))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		bundle, err := s.WriteSnapshot("manual")
		if err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		b, _ := json.Marshal(map[string]string{"bundle": bundle})
		body, ctype = append(b, '\n'), "application/json"
	case "/sweb/slo":
		b, err := json.MarshalIndent(s.SLOReport(), "", "  ")
		if err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		body, ctype = append(b, '\n'), "application/json"
	case "/sweb/replicate":
		return s.serveReplicate(rc, req)
	case "/sweb/metrics":
		var buf bytes.Buffer
		if err := s.nm.reg.WriteText(&buf); err != nil {
			code := httpmsg.StatusInternalServerError
			_ = rc.simple(code, nil, httpmsg.ErrorBody(code, err.Error()))
			s.logAccess(rc.c, req, code, -1)
			return code
		}
		body = buf.Bytes()
		// WriteText newline-terminates every line, but guarantee the
		// trailing newline even for an empty registry: parsers in the
		// exposition-format lineage reject truncated final lines.
		if len(body) == 0 || body[len(body)-1] != '\n' {
			body = append(body, '\n')
		}
	default:
		code := httpmsg.StatusNotFound
		_ = rc.simple(code, nil,
			httpmsg.ErrorBody(code, "No such introspection endpoint."))
		s.logAccess(rc.c, req, code, -1)
		return code
	}
	h := httpmsg.Header{}
	h.Set("Content-Type", ctype)
	if err := rc.simple(httpmsg.StatusOK, h, body); err != nil {
		return 0
	}
	s.logAccess(rc.c, req, httpmsg.StatusOK, int64(len(body)))
	return httpmsg.StatusOK
}
