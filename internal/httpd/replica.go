package httpd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sweb/internal/httpmsg"
)

// Live replica actuation: the rebalancer (in-process controller or the
// swebd -rebalance leader) drives replica-set changes through these two
// mutations plus the /sweb/replicate endpoint. The order is
// materialize-then-announce — the document's bytes land in the docroot
// before the store learns about the replica — so a broker can never route
// an internal fetch at a copy that does not exist yet.

// MaterializeReplica makes this node a replica of path: the document is
// pulled from the cheapest live replica over the internal-fetch path
// (retry budget, health marking, and failover included), written into the
// docroot, and only then recorded in the store. Idempotent: a node that
// already holds the replica answers nil without touching the network.
func (s *Server) MaterializeReplica(path string) error {
	file, ok := s.cfg.Store.Lookup(path)
	if !ok {
		return fmt.Errorf("replicate: unknown document %q", path)
	}
	if file.CGI {
		return fmt.Errorf("replicate: %q is a CGI endpoint, not a document", path)
	}
	if file.HasReplica(s.cfg.ID) {
		return nil
	}
	sources := s.rankedSources(path, file)
	if len(sources) == 0 {
		return fmt.Errorf("replicate: no reachable replica of %q", path)
	}
	resp, err := s.fetchWithRetry(sources, path, "")
	if err != nil {
		return fmt.Errorf("replicate: fetch %q: %w", path, err)
	}
	full := s.localPath(path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	if err := os.WriteFile(full, resp.Body, 0o644); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	if err := s.cfg.Store.AddReplica(path, s.cfg.ID); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	s.nm.rebalanceAction("add")
	return nil
}

// DropReplicaLocal retires this node's replica of path: the store forgets
// it first — new requests route elsewhere — then the docroot copy and any
// cached entry go. Dropping the primary is refused by the store.
func (s *Server) DropReplicaLocal(path string) error {
	if err := s.cfg.Store.DropReplica(path, s.cfg.ID); err != nil {
		return err
	}
	if s.cache != nil {
		s.cache.Invalidate(path)
	}
	if err := os.Remove(s.localPath(path)); err != nil && !os.IsNotExist(err) {
		return err
	}
	s.nm.rebalanceAction("drop")
	return nil
}

// queryParam extracts one key's value from a raw query string ("" when
// absent), the same hand-rolled parsing the sweb markers use.
func queryParam(query, key string) string {
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, key+"="); ok {
			return v
		}
	}
	return ""
}

// serveReplicate answers /sweb/replicate?path=P&node=N&action=add|drop —
// the control-plane verb the rebalancer speaks. The addressed node
// materializes or retires its own copy; every other node just updates its
// ownership map, so a deployment without a shared store converges when
// the rebalancer broadcasts the same call to each member. The response
// reports the resulting replica set.
func (s *Server) serveReplicate(rc *reqConn, req *httpmsg.Request) int {
	fail := func(code int, msg string) int {
		_ = rc.simple(code, nil, httpmsg.ErrorBody(code, msg))
		s.logAccess(rc.c, req, code, -1)
		return code
	}
	path, perr := httpmsg.DecodePath(queryParam(req.Query, "path"))
	if perr != nil {
		return fail(httpmsg.StatusBadRequest, "bad path parameter")
	}
	node, err := strconv.Atoi(queryParam(req.Query, "node"))
	if err != nil {
		return fail(httpmsg.StatusBadRequest, "bad or missing node parameter")
	}
	action := queryParam(req.Query, "action")
	if _, ok := s.cfg.Store.Lookup(path); !ok {
		return fail(httpmsg.StatusNotFound, "unknown document")
	}
	switch {
	case action == "add" && node == s.cfg.ID:
		err = s.MaterializeReplica(path)
	case action == "drop" && node == s.cfg.ID:
		err = s.DropReplicaLocal(path)
	case action == "add":
		// Another node holds the bytes (or is fetching them); this node
		// only needs the routing fact. AddReplica is idempotent, so the
		// shared-store deployments of internal/live no-op here.
		err = s.cfg.Store.AddReplica(path, node)
	case action == "drop":
		err = s.cfg.Store.DropReplica(path, node)
	default:
		return fail(httpmsg.StatusBadRequest, "action must be add or drop")
	}
	if err != nil {
		return fail(httpmsg.StatusInternalServerError, err.Error())
	}
	b, _ := json.Marshal(map[string]any{
		"path":     path,
		"node":     node,
		"action":   action,
		"replicas": s.cfg.Store.Replicas(path),
	})
	h := httpmsg.Header{}
	h.Set("Content-Type", "application/json")
	if rc.simple(httpmsg.StatusOK, h, append(b, '\n')) != nil {
		return 0
	}
	s.logAccess(rc.c, req, httpmsg.StatusOK, int64(len(b)))
	return httpmsg.StatusOK
}
