package httpd

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sweb/internal/httpmsg"
	"sweb/internal/metrics"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// startSoloNode runs a single-node cluster with one 1 KiB document on disk.
func startSoloNode(t *testing.T, mut func(*Config)) (*Server, string) {
	t.Helper()
	st := storage.NewStore(1)
	paths := storage.UniformSet(st, 2, 1024)
	cfg := Config{ID: 0, DocRoot: t.TempDir(), Store: st}
	if mut != nil {
		mut(&cfg)
	}
	for _, p := range paths {
		full := filepath.Join(cfg.DocRoot, filepath.FromSlash(strings.TrimPrefix(p, "/")))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, make([]byte, 1024), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.SetPeers([]Peer{{ID: 0, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()}})
	srv.Start()
	return srv, paths[0]
}

// get performs one raw HTTP/1.0 GET against addr.
func get(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	req := &httpmsg.Request{Method: "GET", Path: path, Header: httpmsg.Header{}}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Body
}

func TestStatusEndpoint(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
		t.Fatalf("document fetch = %d", st)
	}
	status, body := get(t, srv.Addr(), "/sweb/status")
	if status != httpmsg.StatusOK {
		t.Fatalf("/sweb/status = %d", status)
	}
	var rep StatusReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("status payload: %v\n%s", err, body)
	}
	if rep.Node != 0 || rep.Config.Policy != "SWEB" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Stats.Served < 1 || rep.Stats.Accepted < 1 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
	if len(rep.Decisions) == 0 {
		t.Fatal("no decision audit rows")
	}
	d := rep.Decisions[0]
	if d.Path != doc || d.Redirected || d.Target != 0 || d.ActualSeconds < 0 {
		t.Fatalf("audit row = %+v", d)
	}
	if len(d.Candidates) == 0 {
		t.Fatal("audit row lost the cost table")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	for i := 0; i < 3; i++ {
		if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
			t.Fatalf("document fetch = %d", st)
		}
	}
	get(t, srv.Addr(), "/no/such/file")

	status, body := get(t, srv.Addr(), "/sweb/metrics")
	if status != httpmsg.StatusOK {
		t.Fatalf("/sweb/metrics = %d", status)
	}
	samples, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, body)
	}
	want := func(name string, labels metrics.Labels, atLeast float64) {
		t.Helper()
		v, ok := metrics.Value(samples, name, labels)
		if !ok || v < atLeast {
			t.Fatalf("%s%v = %v (found=%v), want >= %v", name, labels, v, ok, atLeast)
		}
	}
	want("sweb_events_total", metrics.Labels{"event": "connected"}, 4)
	want("sweb_events_total", metrics.Labels{"event": "sent"}, 3)
	want("sweb_events_total", metrics.Labels{"event": "fetch-local"}, 3)
	want("sweb_phase_seconds_count", metrics.Labels{"phase": "parse"}, 4)
	want("sweb_phase_seconds_count", metrics.Labels{"phase": "fetch_local"}, 3)
	want("sweb_response_seconds_count", nil, 3)
	want("sweb_drops_total", metrics.Labels{"cause": "not_found"}, 1)
	want("sweb_sched_compared_total", nil, 3)
	want("sweb_sched_predicted_seconds_total", metrics.Labels{"phase": "total"}, 0)
	want("sweb_sched_actual_seconds_total", metrics.Labels{"phase": "total"}, 0)
	want("sweb_bytes_out_total", nil, 3*1024)
}

func TestIntrospectionCanBeDisabled(t *testing.T) {
	srv, _ := startSoloNode(t, func(c *Config) { c.DisableIntrospection = true })
	if st, _ := get(t, srv.Addr(), "/sweb/status"); st != httpmsg.StatusNotFound {
		t.Fatalf("disabled introspection answered %d", st)
	}
	if got := srv.Stats().Introspect; got != 0 {
		t.Fatalf("introspect counter = %d", got)
	}
}

func TestIntrospectionUnknownPath(t *testing.T) {
	srv, _ := startSoloNode(t, nil)
	if st, _ := get(t, srv.Addr(), "/sweb/bogus"); st != httpmsg.StatusNotFound {
		t.Fatalf("/sweb/bogus = %d", st)
	}
}

// TestLiveTraceEvents drives a request through a traced node and checks
// the span walks the simulator's lifecycle, renderable by the shared
// renderers.
func TestLiveTraceEvents(t *testing.T) {
	rec := trace.NewRecorder(0)
	srv, doc := startSoloNode(t, func(c *Config) { c.Trace = rec })
	if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
		t.Fatalf("document fetch = %d", st)
	}
	reqs := rec.Requests()
	if len(reqs) != 1 {
		t.Fatalf("traced %d requests, want 1", len(reqs))
	}
	span := rec.Span(reqs[0])
	var kinds []trace.Kind
	for _, e := range span {
		kinds = append(kinds, e.Kind)
	}
	wantOrder := []trace.Kind{trace.EvConnected, trace.EvParsed, trace.EvAnalyzed,
		trace.EvFetchLocal, trace.EvSent}
	if len(kinds) != len(wantOrder) {
		t.Fatalf("span kinds = %v", kinds)
	}
	for i, k := range wantOrder {
		if kinds[i] != k {
			t.Fatalf("span kinds = %v, want %v", kinds, wantOrder)
		}
	}
	if out := trace.RenderSpan(span); !strings.Contains(out, "fetch-local") {
		t.Fatalf("RenderSpan output:\n%s", out)
	}
	sum := trace.Summarize(rec.Events())
	if sum.Requests != 1 || sum.ByKind[trace.EvSent] != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if _, ok := sum.MeanPhase["parsed→analyzed"]; !ok {
		t.Fatalf("summary lacks parsed→analyzed phase: %+v", sum.MeanPhase)
	}
	// Introspection and internal fetches must never appear in the trace.
	get(t, srv.Addr(), "/sweb/status")
	if got := len(rec.Requests()); got != 1 {
		t.Fatalf("introspection leaked into trace: %d requests", got)
	}
}

func TestStatsDropsAndInflight(t *testing.T) {
	srv, _ := startSoloNode(t, nil)
	get(t, srv.Addr(), "/no/such/file")
	st := srv.Stats()
	if st.NotFound != 1 || st.Drops["not_found"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d with no open connections", st.Inflight)
	}
}

func TestAuditRingWraps(t *testing.T) {
	a := newAuditLog(4)
	for i := 0; i < 10; i++ {
		a.add(DecisionAudit{Path: "/p", Target: i})
	}
	got := a.snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d", len(got))
	}
	for i, d := range got {
		if d.Target != 6+i || d.Seq != int64(7+i) {
			t.Fatalf("snapshot[%d] = %+v", i, d)
		}
	}
}
