package httpd

import (
	"bufio"
	"net"
	"time"

	"sweb/internal/flight"
	"sweb/internal/httpmsg"
)

// writeMeter wraps the client socket on the write side so the serve loop
// can measure time-to-first-byte and per-response byte counts without the
// fulfillment paths knowing: the instant the first byte of a response
// reaches the wire is recorded regardless of which path (simple, stream,
// chunked) produced it. Only the handler goroutine writes, so the fields
// need no lock.
type writeMeter struct {
	net.Conn
	firstWrite time.Time
	written    int64
}

func (w *writeMeter) Write(p []byte) (int, error) {
	if w.firstWrite.IsZero() && len(p) > 0 {
		w.firstWrite = time.Now()
	}
	n, err := w.Conn.Write(p)
	w.written += int64(n)
	return n, err
}

// reset arms the meter for the next request on the connection.
func (w *writeMeter) reset() {
	w.firstWrite = time.Time{}
	w.written = 0
}

// reqConn is one client connection's serving state: the buffered reader
// requests are parsed from, the protocol version the current response must
// echo, and the keep-alive decision the serve loop made for it. The
// fulfillment paths write responses through it so every response carries a
// truthful Connection header.
type reqConn struct {
	s         *Server
	c         net.Conn // the metered connection responses are written to
	meter     *writeMeter
	id        int64 // tracked connection id, for flight records
	br        *bufio.Reader
	proto     string // response protocol version, echoing the request
	keepAlive bool   // whether the connection survives the current response
	served    int    // requests answered on this connection so far
}

// connHeader renders the Connection header for the loop's current decision.
func (rc *reqConn) connHeader() string {
	if rc.keepAlive {
		return "keep-alive"
	}
	return "close"
}

// simple writes a complete small response (errors, redirects, 304s),
// stamped with the serve loop's keep-alive decision. A failed write spends
// the connection.
func (rc *reqConn) simple(code int, h httpmsg.Header, body []byte) error {
	if h == nil {
		h = httpmsg.Header{}
	}
	h.Set("Connection", rc.connHeader())
	err := httpmsg.WriteProtoSimpleResponse(rc.c, rc.proto, code, h, body)
	if err != nil {
		rc.keepAlive = false
	}
	return err
}

// fail records a mid-response write failure. The response framing is now
// indeterminate, so the connection cannot carry another request.
func (rc *reqConn) fail() int {
	rc.s.errors.Add(1)
	rc.s.drop("write_failed")
	rc.keepAlive = false
	return 0
}

// isDraining reports whether graceful shutdown has begun; the serve loop
// stops renewing keep-alive from that point.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// serveConn runs the persistent-connection serve loop: park in an idle
// read between requests, then give each request its own read and write
// budgets. This replaces the old one-request-per-connection handle with
// its single whole-connection deadline — a keep-alive client now pays the
// TCP handshake once, which is exactly the saving the paper's t_redirection
// term wants after a 302. Deadlines stay on the raw socket; responses go
// through the write meter so every request leaves a flight record with an
// honest time-to-first-byte.
func (s *Server) serveConn(c net.Conn, ci *connInfo) {
	w := &writeMeter{Conn: c}
	rc := &reqConn{s: s, c: w, meter: w, id: ci.id, br: bufio.NewReader(c), proto: "HTTP/1.0"}
	defer func() {
		// Requests-per-connection, observed once at connection end: the
		// keep-alive amortization the PR 6 data plane bought.
		s.nm.keepAliveServed(float64(rc.served))
	}()
	for {
		// Idle wait: the peer may keep the connection open up to
		// IdleTimeout between requests. Pipelined bytes already buffered
		// make the peek free.
		_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if _, err := rc.br.Peek(1); err != nil {
			// Clean close, idle timeout, or reset between requests:
			// nothing was promised, nothing to answer. A timeout on a
			// live server is the idle reaper doing its job.
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !s.isDraining() {
				s.idleReaped.Add(1)
			}
			return
		}
		w.reset()
		t0 := time.Now()
		_ = c.SetReadDeadline(t0.Add(connTimeout))
		req, err := httpmsg.ReadRequest(rc.br)
		if err != nil {
			rc.keepAlive = false
			s.errors.Add(1)
			s.badRequests.Add(1)
			s.drop("bad_request")
			_ = c.SetWriteDeadline(time.Now().Add(connTimeout))
			_ = rc.simple(httpmsg.StatusBadRequest, nil,
				httpmsg.ErrorBody(httpmsg.StatusBadRequest, err.Error()))
			s.logAccess(c, nil, httpmsg.StatusBadRequest, -1)
			s.flightAdd(rc, flight.Record{Path: "(unparsed)"}, t0, httpmsg.StatusBadRequest)
			return
		}
		rc.served++
		ci.served.Add(1)
		rc.proto = "HTTP/1.0"
		if req.Proto == "HTTP/1.1" {
			rc.proto = "HTTP/1.1"
		}
		rc.keepAlive = !s.cfg.KeepAliveOff && req.KeepAlive() &&
			(s.cfg.KeepAliveMax <= 0 || rc.served < s.cfg.KeepAliveMax) &&
			!s.isDraining()
		_ = c.SetWriteDeadline(time.Now().Add(connTimeout))
		s.reqActive.Add(1)
		ci.active.Store(true)
		s.handle(rc, req, t0)
		ci.active.Store(false)
		s.reqActive.Add(-1)
		if !rc.keepAlive || s.isDraining() {
			return
		}
	}
}
