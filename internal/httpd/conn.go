package httpd

import (
	"bufio"
	"net"
	"time"

	"sweb/internal/httpmsg"
)

// reqConn is one client connection's serving state: the buffered reader
// requests are parsed from, the protocol version the current response must
// echo, and the keep-alive decision the serve loop made for it. The
// fulfillment paths write responses through it so every response carries a
// truthful Connection header.
type reqConn struct {
	s         *Server
	c         net.Conn
	br        *bufio.Reader
	proto     string // response protocol version, echoing the request
	keepAlive bool   // whether the connection survives the current response
	served    int    // requests answered on this connection so far
}

// connHeader renders the Connection header for the loop's current decision.
func (rc *reqConn) connHeader() string {
	if rc.keepAlive {
		return "keep-alive"
	}
	return "close"
}

// simple writes a complete small response (errors, redirects, 304s),
// stamped with the serve loop's keep-alive decision. A failed write spends
// the connection.
func (rc *reqConn) simple(code int, h httpmsg.Header, body []byte) error {
	if h == nil {
		h = httpmsg.Header{}
	}
	h.Set("Connection", rc.connHeader())
	err := httpmsg.WriteProtoSimpleResponse(rc.c, rc.proto, code, h, body)
	if err != nil {
		rc.keepAlive = false
	}
	return err
}

// fail records a mid-response write failure. The response framing is now
// indeterminate, so the connection cannot carry another request.
func (rc *reqConn) fail() int {
	rc.s.errors.Add(1)
	rc.s.drop("write_failed")
	rc.keepAlive = false
	return 0
}

// isDraining reports whether graceful shutdown has begun; the serve loop
// stops renewing keep-alive from that point.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// serveConn runs the persistent-connection serve loop: park in an idle
// read between requests, then give each request its own read and write
// budgets. This replaces the old one-request-per-connection handle with
// its single whole-connection deadline — a keep-alive client now pays the
// TCP handshake once, which is exactly the saving the paper's t_redirection
// term wants after a 302.
func (s *Server) serveConn(c net.Conn) {
	rc := &reqConn{s: s, c: c, br: bufio.NewReader(c), proto: "HTTP/1.0"}
	for {
		// Idle wait: the peer may keep the connection open up to
		// IdleTimeout between requests. Pipelined bytes already buffered
		// make the peek free.
		_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if _, err := rc.br.Peek(1); err != nil {
			// Clean close, idle timeout, or reset between requests:
			// nothing was promised, nothing to answer.
			return
		}
		t0 := time.Now()
		_ = c.SetReadDeadline(t0.Add(connTimeout))
		req, err := httpmsg.ReadRequest(rc.br)
		if err != nil {
			rc.keepAlive = false
			s.errors.Add(1)
			s.badRequests.Add(1)
			s.drop("bad_request")
			_ = c.SetWriteDeadline(time.Now().Add(connTimeout))
			_ = rc.simple(httpmsg.StatusBadRequest, nil,
				httpmsg.ErrorBody(httpmsg.StatusBadRequest, err.Error()))
			s.logAccess(c, nil, httpmsg.StatusBadRequest, -1)
			return
		}
		rc.served++
		rc.proto = "HTTP/1.0"
		if req.Proto == "HTTP/1.1" {
			rc.proto = "HTTP/1.1"
		}
		rc.keepAlive = !s.cfg.KeepAliveOff && req.KeepAlive() &&
			(s.cfg.KeepAliveMax <= 0 || rc.served < s.cfg.KeepAliveMax) &&
			!s.isDraining()
		_ = c.SetWriteDeadline(time.Now().Add(connTimeout))
		s.reqActive.Add(1)
		s.handle(rc, req, t0)
		s.reqActive.Add(-1)
		if !rc.keepAlive || s.isDraining() {
			return
		}
	}
}
