package httpd

import (
	"bufio"
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sweb/internal/httpmsg"
	"sweb/internal/metrics"
)

// getWith is get with request headers, returning the full response.
func getWith(t *testing.T, addr, path string, hdr map[string]string) *httpmsg.Response {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	req := &httpmsg.Request{Method: "GET", Path: path, Header: httpmsg.Header{}}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// docFile resolves a document path inside the node's docroot.
func docFile(srv *Server, doc string) string {
	return filepath.Join(srv.cfg.DocRoot, filepath.FromSlash(strings.TrimPrefix(doc, "/")))
}

// TestCacheNeverServesStale mutates a document between requests — same
// size, different bytes, bumped mtime — and demands the cache's validator
// force a re-read: the old body must never leave the node again.
func TestCacheNeverServesStale(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	full := docFile(srv, doc)

	st, first := get(t, srv.Addr(), doc)
	if st != httpmsg.StatusOK {
		t.Fatalf("first fetch = %d", st)
	}
	// A repeat is a memory hit of the same bytes.
	if st, again := get(t, srv.Addr(), doc); st != httpmsg.StatusOK || !bytes.Equal(again, first) {
		t.Fatalf("cached fetch = %d, equal=%v", st, bytes.Equal(again, first))
	}
	if !srv.Cache().Peek(doc) {
		t.Fatal("document not resident after two fetches")
	}

	// Rewrite in place: identical size so only the mtime betrays the
	// change — the hardest staleness case for a size-checking cache.
	mutated := bytes.Repeat([]byte{'Z'}, len(first))
	if err := os.WriteFile(full, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	// Force a visibly newer mtime even on coarse-granularity filesystems.
	newMod := fi.ModTime().Add(2 * time.Second)
	if err := os.Chtimes(full, newMod, newMod); err != nil {
		t.Fatal(err)
	}

	st, body := get(t, srv.Addr(), doc)
	if st != httpmsg.StatusOK {
		t.Fatalf("post-mutation fetch = %d", st)
	}
	if !bytes.Equal(body, mutated) {
		t.Fatalf("served stale bytes after mutation: got %q... want %q...", body[:8], mutated[:8])
	}
	// And the refreshed entry serves the new bytes from memory thereafter.
	if st, again := get(t, srv.Addr(), doc); st != httpmsg.StatusOK || !bytes.Equal(again, mutated) {
		t.Fatalf("refreshed cached fetch = %d, equal=%v", st, bytes.Equal(again, mutated))
	}
}

// TestCacheConditionalGetRevalidates drives If-Modified-Since through the
// cached path: an up-to-date condition earns a body-less 304 from memory,
// and mutating the document flips the same condition back to a full 200
// with the new bytes.
func TestCacheConditionalGetRevalidates(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	full := docFile(srv, doc)

	if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
		t.Fatalf("warm-up fetch = %d", st)
	}
	fi, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	cond := map[string]string{"If-Modified-Since": httpmsg.FormatHTTPDate(fi.ModTime())}

	resp := getWith(t, srv.Addr(), doc, cond)
	if resp.StatusCode != httpmsg.StatusNotModified {
		t.Fatalf("conditional GET on cached entry = %d, want 304", resp.StatusCode)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(resp.Body))
	}
	if resp.Header.Get("Last-Modified") == "" {
		t.Fatal("304 from cache lost Last-Modified")
	}

	// Mutate the document; the same stale condition must now fetch fresh.
	mutated := []byte("regenerated document body\n")
	if err := os.WriteFile(full, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	newMod := fi.ModTime().Add(3 * time.Second)
	if err := os.Chtimes(full, newMod, newMod); err != nil {
		t.Fatal(err)
	}
	resp = getWith(t, srv.Addr(), doc, cond)
	if resp.StatusCode != httpmsg.StatusOK {
		t.Fatalf("conditional GET after mutation = %d, want 200", resp.StatusCode)
	}
	if !bytes.Equal(resp.Body, mutated) {
		t.Fatalf("conditional GET served stale bytes: %q", resp.Body)
	}
}

// TestCacheMetricsAndStatus checks the observability wiring: the
// sweb_cache_* families move with traffic and /sweb/status carries the
// cache section.
func TestCacheMetricsAndStatus(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	for i := 0; i < 3; i++ {
		if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
			t.Fatalf("fetch %d failed", i)
		}
	}
	status, body := get(t, srv.Addr(), "/sweb/metrics")
	if status != httpmsg.StatusOK {
		t.Fatalf("/sweb/metrics = %d", status)
	}
	samples, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	want := func(name string, atLeast float64) {
		t.Helper()
		v, ok := metrics.Value(samples, name, nil)
		if !ok || v < atLeast {
			t.Fatalf("%s = %v (found=%v), want >= %v", name, v, ok, atLeast)
		}
	}
	want("sweb_cache_hits_total", 2)   // fetches 2 and 3
	want("sweb_cache_misses_total", 1) // the cold first fetch
	want("sweb_cache_bytes", 1024)
	want("sweb_cache_capacity_bytes", float64(DefaultCacheBytes))

	cs := srv.cacheStatus()
	if !cs.Enabled || cs.Hits < 2 || cs.Misses < 1 || cs.Files < 1 {
		t.Fatalf("cache status = %+v", cs)
	}
	if len(cs.Hot) == 0 || cs.Hot[0] != doc {
		t.Fatalf("hot list = %v, want %s first", cs.Hot, doc)
	}
}

// TestCacheOff runs the ablation: with Config.CacheOff the node serves
// correctly straight off the disk, publishes no cache families, and
// reports the cache disabled.
func TestCacheOff(t *testing.T) {
	srv, doc := startSoloNode(t, func(c *Config) { c.CacheOff = true })
	for i := 0; i < 2; i++ {
		if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
			t.Fatalf("fetch %d failed", i)
		}
	}
	if srv.Cache() != nil {
		t.Fatal("CacheOff left a cache constructed")
	}
	if cs := srv.cacheStatus(); cs.Enabled {
		t.Fatalf("cache status = %+v, want disabled", cs)
	}
	_, body := get(t, srv.Addr(), "/sweb/metrics")
	if strings.Contains(string(body), "sweb_cache_") {
		t.Fatal("disabled cache still publishes sweb_cache_* families")
	}
}
