package httpd

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sweb/internal/accesslog"
	"sweb/internal/cache"
	"sweb/internal/core"
	"sweb/internal/flight"
	"sweb/internal/heat"
	"sweb/internal/httpmsg"
	"sweb/internal/retry"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// Markers the live protocol uses:
//   - the "swebr" query parameter counts redirects ("any HTTP request is
//     not allowed to be redirected more than once"); URL redirection has to
//     carry this in the URL because a 302 cannot set request headers;
//   - the "swebt" query parameter carries the trace context the same way:
//     "<trace-id>" or "<trace-id>:<unix-micros>", the timestamp stamped at
//     the moment the 302 left the redirecting node so the target can
//     measure t_redirection on the wall clock, without sharing an epoch;
//   - the X-SWEB-Internal header marks a node-to-node fetch (the NFS
//     stand-in), which must be served directly, never re-scheduled;
//   - the X-SWEB-Trace header joins an internal fetch to the originating
//     request's trace, so the owner's disk read lands in the same span.
const (
	redirectParam  = "swebr"
	traceParam     = "swebt"
	internalHeader = "X-Sweb-Internal"
	traceHeader    = "X-Sweb-Trace"
)

const (
	connTimeout = 30 * time.Second
	// shedWriteTimeout bounds the courtesy 503 written to a shed
	// connection; a client that will not read it cannot stall anything.
	shedWriteTimeout = 2 * time.Second
)

// acceptLoop is the NCSA-style accept loop; each connection gets its own
// serve-loop goroutine (Go's stand-in for fork-per-request).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	errStreak := 0
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			case <-s.draining:
				// Graceful shutdown closed the listener before closed is
				// signalled; exiting here (not continuing) keeps the loop
				// from spinning on the dead listener during the drain.
				return
			default:
			}
			// Back off on repeated transient errors (EMFILE, ECONNABORTED)
			// instead of hot-spinning the core, the same capped streak the
			// loadd listener uses; it resets on the next good accept.
			errStreak++
			if errStreak > 1 {
				time.Sleep(retry.Backoff(errStreak-1, time.Millisecond, 100*time.Millisecond))
			}
			continue
		}
		errStreak = 0
		if s.inflight.Load() >= int64(s.cfg.MaxConcurrent) {
			// Accept capacity exhausted: shed the connection, the live
			// analogue of a dropped request. The courtesy 503 goes out on
			// a separate goroutine with a write deadline so one slow or
			// absent reader can never stall the accept loop.
			s.refused.Add(1)
			s.drop("shed")
			s.nm.event(trace.EvRefused)
			if rec := s.cfg.Trace; rec.Enabled() {
				rec.Record(rec.NewRequest(), s.nowSec(), trace.EvRefused, s.cfg.ID, "reason=capacity")
			}
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				defer c.Close()
				_ = c.SetWriteDeadline(time.Now().Add(shedWriteTimeout))
				h := httpmsg.Header{}
				h.Set("Retry-After", s.retryAfterSeconds())
				h.Set("Connection", "close")
				_ = httpmsg.WriteSimpleResponse(c, httpmsg.StatusServiceUnavailable, h,
					httpmsg.ErrorBody(httpmsg.StatusServiceUnavailable, "Server too busy."))
				s.logAccess(c, nil, httpmsg.StatusServiceUnavailable, -1)
			}(conn)
			continue
		}
		s.accepted.Add(1)
		s.inflight.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.inflight.Add(-1)
			defer conn.Close()
			ci := s.trackConn(conn)
			defer s.untrackConn(conn)
			s.serveConn(conn, ci)
		}()
	}
}

// logAccess emits one Common Log Format line, when logging is configured.
func (s *Server) logAccess(conn net.Conn, req *httpmsg.Request, status int, bytes int64) {
	if s.cfg.AccessLog == nil {
		return
	}
	host := "-"
	if addr := conn.RemoteAddr(); addr != nil {
		host = addr.String()
		if h, _, err := net.SplitHostPort(host); err == nil {
			host = h
		}
	}
	e := accesslog.Entry{
		Host: host, Time: time.Now(),
		Method: "-", Path: "-", Proto: "HTTP/1.0",
		Status: status, Bytes: bytes,
	}
	if req != nil {
		e.Method = req.Method
		e.Path = req.Path
		if req.Query != "" {
			e.Path += "?" + req.Query
		}
		if req.Proto != "" {
			e.Proto = req.Proto
		}
	}
	_ = s.cfg.AccessLog.Log(e)
}

// handle runs the four-phase lifecycle for one parsed request, timing each
// phase and emitting the same trace events the simulator does. t0 is the
// moment the request's first byte arrived (phase 1, preprocess, is the
// parse the serve loop already ran). Internal fetches stay invisible to
// trace and the lifecycle metrics: they are the tail of another node's
// fetch-nfs span, not requests of their own.
func (s *Server) handle(rc *reqConn, req *httpmsg.Request, t0 time.Time) {
	tParsed := time.Now()
	internal := req.Header.Get(internalHeader) != ""

	// Introspection is answered right where it arrived, like internal
	// fetches: rescheduling /sweb/status would report the wrong node.
	if !internal && !s.cfg.DisableIntrospection && strings.HasPrefix(req.Path, introspectPrefix) {
		s.introspect.Add(1)
		status := s.serveIntrospection(rc, req)
		s.flightAdd(rc, flight.Record{Path: req.Path, Target: -1}, t0, status)
		return
	}

	redirects := parseRedirectCount(req.Query)
	tctx, hopSentMicros, _ := parseTraceContext(req.Query)
	rec := s.cfg.Trace
	tid := int64(-1)
	if !internal {
		if rec.Enabled() {
			// Joining an inbound trace context keeps every hop of a
			// redirected request under one trace id; without one, this
			// node originates the trace.
			tid, tctx = rec.Begin(tctx)
			connDetail := ""
			if redirects > 0 {
				connDetail = fmt.Sprintf("hop=%d", redirects)
			}
			rec.Record(tid, s.sinceEpoch(t0), trace.EvConnected, s.cfg.ID, connDetail)
			rec.Record(tid, s.sinceEpoch(tParsed), trace.EvParsed, s.cfg.ID, "path="+req.Path)
		}
		s.nm.event(trace.EvConnected)
		s.nm.event(trace.EvParsed)
		s.nm.phase("parse", tParsed.Sub(t0).Seconds())
		if hopSentMicros > 0 {
			// The 302 carried its send time: the gap to this connection is
			// the measured t_redirection of the paper's cost model.
			hop := float64(t0.UnixMicro()-hopSentMicros) / 1e6
			if hop < 0 {
				hop = 0
			}
			s.nm.phase("redirect_hop", hop)
		}
	}

	cgiFn, isCGI := s.cgiFor(req.Path)
	file, found := s.cfg.Store.Lookup(req.Path)
	if !found && !isCGI {
		s.errors.Add(1)
		s.notFound.Add(1)
		if !internal {
			s.drop("not_found")
		}
		_ = rc.simple(httpmsg.StatusNotFound, nil,
			httpmsg.ErrorBody(httpmsg.StatusNotFound, "The requested URL was not found on this server."))
		s.logAccess(rc.c, req, httpmsg.StatusNotFound, -1)
		if !internal {
			s.flightAdd(rc, flight.Record{
				Path:         req.Path,
				TraceID:      string(tctx),
				Target:       -1,
				Redirected:   redirects > 0,
				ParseSeconds: tParsed.Sub(t0).Seconds(),
			}, t0, httpmsg.StatusNotFound)
		}
		return
	}

	// Internal fetches bypass scheduling entirely: we are the NFS server.
	// When the fetching node sent a trace header, the disk read joins the
	// originating request's span; otherwise it stays trace-invisible as
	// the tail of the fetcher's own fetch-nfs phase.
	if internal {
		s.internalFetch.Add(1)
		if id := trace.TraceID(req.Header.Get(traceHeader)); id != "" && rec.Enabled() {
			jid, _ := rec.Begin(id)
			rec.Record(jid, s.sinceEpoch(time.Now()), trace.EvFetchLocal, s.cfg.ID, "internal=1")
		}
		s.serveLocalFile(rc, req, file)
		return
	}

	// CGI and POST are pinned where they arrived (Sec. 3.2 step 2; POST
	// handling is the paper's footnote-1 extension).
	pinned := isCGI || req.Method == "POST"

	// Phase 2: analyze — the broker picks the best node.
	var dec core.Decision
	scheduled := false
	tAnalyzed := tParsed
	if !pinned {
		d := s.cfg.Oracle.Characterize(req.Path)
		coreReq := core.Request{
			Path:          req.Path,
			Size:          file.Size,
			Owner:         file.Owner,
			Replicas:      file.Replicas,
			Ops:           d.Ops(file.Size) + file.CGIOps,
			DiskBytes:     d.DiskBytes(file.Size),
			Arrived:       s.cfg.ID,
			RedirectCount: redirects,
			CachedLocal:   s.cachedLocally(req.Path),
		}
		loads := s.snapshotLoads()
		dec = s.cfg.Policy.Choose(coreReq, s.cfg.ID, loads)
		scheduled = true
		target := s.confirmTarget(dec)
		tAnalyzed = time.Now()
		s.nm.event(trace.EvAnalyzed)
		s.nm.phase("analyze", tAnalyzed.Sub(tParsed).Seconds())
		rec.Record(tid, s.sinceEpoch(tAnalyzed), trace.EvAnalyzed, s.cfg.ID,
			fmt.Sprintf("target=%d", target))
		if target != s.cfg.ID {
			if peer, ok := s.peerByID(target); ok {
				// Phase 3: redirect via a 302 with the bumped URL,
				// preserving the client's own query parameters and
				// threading the trace context (stamped with the send
				// time, so the target measures the hop).
				loc := redirectLocation(peer.HTTPAddr, req.Path, req.Query, redirects,
					formatTraceContext(tctx, time.Now().UnixMicro()))
				h := httpmsg.Header{}
				h.Set("Location", loc)
				err := rc.simple(httpmsg.StatusMovedTemporarily, h,
					httpmsg.ErrorBody(httpmsg.StatusMovedTemporarily,
						`The document has moved <A HREF="`+loc+`">here</A>.`))
				if err != nil {
					// The client never saw the 302, so no request is on
					// its way to the peer: inflating its load view would
					// only skew later decisions.
					s.errors.Add(1)
					s.drop("write_failed")
					s.flightAdd(rc, flight.Record{
						Path:             req.Path,
						TraceID:          string(tctx),
						Policy:           s.cfg.Policy.Name(),
						Target:           target,
						PredictedSeconds: sanitizeSeconds(dec.Estimate),
						ParseSeconds:     tParsed.Sub(t0).Seconds(),
						AnalyzeSeconds:   tAnalyzed.Sub(tParsed).Seconds(),
					}, t0, 0)
					return
				}
				tSent := time.Now()
				s.table.Bump(target)
				s.redirected.Add(1)
				s.nm.event(trace.EvRedirected)
				s.nm.redirect(target)
				s.nm.phase("redirect", tSent.Sub(tAnalyzed).Seconds())
				rec.Record(tid, s.sinceEpoch(tSent), trace.EvRedirected, s.cfg.ID,
					fmt.Sprintf("to=%d", target))
				s.audit.add(DecisionAudit{
					AtSeconds:        s.sinceEpoch(t0),
					Path:             req.Path,
					Policy:           s.cfg.Policy.Name(),
					Target:           target,
					Redirected:       true,
					PredictedSeconds: sanitizeSeconds(dec.Estimate),
					ActualSeconds:    -1, // fulfilled by the target node
					ParseSeconds:     tParsed.Sub(t0).Seconds(),
					AnalyzeSeconds:   tAnalyzed.Sub(tParsed).Seconds(),
					Candidates:       sanitizeCandidates(dec.Candidates),
				})
				s.logAccess(rc.c, req, httpmsg.StatusMovedTemporarily, -1)
				s.flightAdd(rc, flight.Record{
					Path:             req.Path,
					TraceID:          string(tctx),
					Policy:           s.cfg.Policy.Name(),
					Target:           target,
					Redirected:       true,
					PredictedSeconds: sanitizeSeconds(dec.Estimate),
					ParseSeconds:     tParsed.Sub(t0).Seconds(),
					AnalyzeSeconds:   tAnalyzed.Sub(tParsed).Seconds(),
				}, t0, httpmsg.StatusMovedTemporarily)
				return
			}
		}
	}

	// Phase 4: fulfillment. One counted cache lookup per request, exactly
	// like the simulator's Contains at the top of streamFile: a validated
	// hit serves from memory regardless of ownership (emitting fetch-local,
	// as the simulator does for cached remote documents), a miss falls
	// through to the disk or the owner and fills the cache on the way out.
	tFulfill := time.Now()
	var status int
	var hot cache.Entry
	cacheHit := false
	if !isCGI && s.cache != nil {
		hot, cacheHit = s.cache.Lookup(req.Path, s.entryCheck(req.Path, file))
	}
	switch {
	case isCGI:
		s.nm.event(trace.EvCGI)
		rec.Record(tid, s.sinceEpoch(tFulfill), trace.EvCGI, s.cfg.ID, "path="+req.Path)
		status = s.serveCGI(rc, req, cgiFn)
		s.nm.phase("cgi", time.Since(tFulfill).Seconds())
	case cacheHit:
		// Hot-file hit: a memory copy — no disk read, and for a foreign
		// document no owner round-trip either, which keeps the document
		// serving even while its owner is dead.
		s.nm.event(trace.EvFetchLocal)
		rec.Record(tid, s.sinceEpoch(tFulfill), trace.EvFetchLocal, s.cfg.ID, "cache=hit")
		status = s.writeEntry(rc, req, hot)
		s.nm.phase("fetch_local", time.Since(tFulfill).Seconds())
	case file.HasReplica(s.cfg.ID):
		s.nm.event(trace.EvFetchLocal)
		rec.Record(tid, s.sinceEpoch(tFulfill), trace.EvFetchLocal, s.cfg.ID, "")
		status = s.serveLocalFile(rc, req, file)
		s.nm.phase("fetch_local", time.Since(tFulfill).Seconds())
	default:
		s.nm.event(trace.EvFetchNFS)
		rec.Record(tid, s.sinceEpoch(tFulfill), trace.EvFetchNFS, s.cfg.ID,
			fmt.Sprintf("owner=%d", file.Owner))
		status = s.serveRemoteFile(rc, req, file, tctx)
		s.nm.phase("fetch_nfs", time.Since(tFulfill).Seconds())
	}
	done := time.Now()
	if status > 0 {
		s.nm.event(trace.EvSent)
		rec.Record(tid, s.sinceEpoch(done), trace.EvSent, s.cfg.ID,
			"status="+strconv.Itoa(status))
	}
	total := done.Sub(t0).Seconds()
	if status == httpmsg.StatusOK || status == httpmsg.StatusNotModified {
		// Only successful service counts toward the latency families: every
		// phase-4 failure pairs with a sweb_drops_total cause, so the SLO
		// engine reads successes here and errors there with no overlap — and
		// a fast 503 can never pass for a good response time. The trace id
		// rides along as the bucket's exemplar, linking an SLO breach to the
		// concrete flight record that burned the budget.
		exID := string(tctx)
		if s.cfg.ExemplarOff {
			exID = ""
		}
		s.nm.response.ObserveExemplar(total, exID, done.UnixMicro())
		if fb := rc.meter.firstWrite; !fb.IsZero() {
			s.nm.ttfb.ObserveExemplar(fb.Sub(t0).Seconds(), exID, done.UnixMicro())
		}
		// Document-heat telemetry counts fulfilled serves only — the same
		// event the simulator's complete() observes, so both substrates
		// fill identical sketches for the same workload.
		owner := -1
		if !isCGI {
			owner = file.Owner
		}
		s.heatObserve(heat.Observation{
			Path:    req.Path,
			Owner:   owner,
			Bytes:   rc.meter.written,
			Relay:   !isCGI && !cacheHit && !file.HasReplica(s.cfg.ID),
			Miss:    !isCGI && s.cache != nil && !cacheHit,
			Seconds: total,
		}, len(file.ReplicaSet()))
	}

	fl := flight.Record{
		Path:             req.Path,
		TraceID:          string(tctx),
		Target:           -1,
		Redirected:       redirects > 0,
		CacheHit:         cacheHit,
		PredictedSeconds: -1,
		ParseSeconds:     tParsed.Sub(t0).Seconds(),
		AnalyzeSeconds:   tAnalyzed.Sub(tParsed).Seconds(),
	}
	if scheduled {
		fl.Policy = s.cfg.Policy.Name()
		fl.Target = s.cfg.ID
		fl.PredictedSeconds = sanitizeSeconds(dec.Estimate)
	}
	s.flightAdd(rc, fl, t0, status)

	if scheduled {
		a := DecisionAudit{
			AtSeconds:        s.sinceEpoch(t0),
			Path:             req.Path,
			Policy:           s.cfg.Policy.Name(),
			Target:           s.cfg.ID,
			PredictedSeconds: sanitizeSeconds(dec.Estimate),
			ActualSeconds:    total,
			ParseSeconds:     tParsed.Sub(t0).Seconds(),
			AnalyzeSeconds:   tAnalyzed.Sub(tParsed).Seconds(),
			FulfillSeconds:   done.Sub(tFulfill).Seconds(),
			Candidates:       sanitizeCandidates(dec.Candidates),
		}
		s.audit.add(a)
		// Compare prediction to reality only for clean local service: an
		// error path measures the failure handling, not t_s.
		if status == httpmsg.StatusOK || status == httpmsg.StatusNotModified {
			s.recordPrediction(dec, a)
		}
	}
}

// confirmTarget re-validates the broker's pick against the freshest peer
// health: never 302 to a peer whose loadd row has gone stale or whose data
// path is in a failure streak. When the pick fails the check, the cheapest
// remaining feasible candidate wins (local service included), so a dead
// peer degrades the schedule instead of the request.
func (s *Server) confirmTarget(dec core.Decision) int {
	target := dec.Target
	if target == s.cfg.ID {
		return target
	}
	now := s.nowSec()
	if s.table.Available(target, now) {
		return target
	}
	best, bestTotal := s.cfg.ID, math.Inf(1)
	for _, cb := range dec.Candidates {
		if cb.Infeasible || cb.Node == target {
			continue
		}
		if cb.Node != s.cfg.ID && !s.table.Available(cb.Node, now) {
			continue
		}
		if cb.Total < bestTotal {
			best, bestTotal = cb.Node, cb.Total
		}
	}
	return best
}

// redirectLocation rebuilds the client's URL pointing at a peer, keeping
// every original query parameter and replacing only the swebr counter and
// the swebt trace context, so `GET /doc?x=1` arrives at the target node
// still carrying `x=1`. The decoded path is re-escaped into wire form — a
// document name with a space or '%' must not produce a malformed Location.
// traceCtx is the rendered swebt value ("" omits the parameter: tracing is
// off and no upstream context arrived).
func redirectLocation(httpAddr, path, query string, redirects int, traceCtx string) string {
	var b strings.Builder
	b.WriteString("http://")
	b.WriteString(httpAddr)
	b.WriteString(httpmsg.EscapePath(path))
	sep := byte('?')
	for _, kv := range strings.Split(query, "&") {
		if kv == "" || strings.HasPrefix(kv, redirectParam+"=") ||
			strings.HasPrefix(kv, traceParam+"=") {
			continue
		}
		b.WriteByte(sep)
		b.WriteString(kv)
		sep = '&'
	}
	b.WriteByte(sep)
	fmt.Fprintf(&b, "%s=%d", redirectParam, redirects+1)
	if traceCtx != "" {
		fmt.Fprintf(&b, "&%s=%s", traceParam, traceCtx)
	}
	return b.String()
}

// formatTraceContext renders the swebt value: the trace id plus the
// moment the 302 goes out (Unix microseconds). Empty id renders empty —
// nothing to propagate.
func formatTraceContext(id trace.TraceID, sentUnixMicros int64) string {
	if id == "" {
		return ""
	}
	if sentUnixMicros <= 0 {
		return string(id)
	}
	return fmt.Sprintf("%s:%d", id, sentUnixMicros)
}

// parseTraceContext extracts the swebt trace context from a query string.
func parseTraceContext(query string) (id trace.TraceID, sentUnixMicros int64, ok bool) {
	for _, kv := range strings.Split(query, "&") {
		v, has := strings.CutPrefix(kv, traceParam+"=")
		if !has {
			continue
		}
		idPart, tsPart, hasTS := strings.Cut(v, ":")
		if idPart == "" {
			continue
		}
		if hasTS {
			if n, err := strconv.ParseInt(tsPart, 10, 64); err == nil && n > 0 {
				sentUnixMicros = n
			}
		}
		return trace.TraceID(idPart), sentUnixMicros, true
	}
	return "", 0, false
}

// retryAfterSeconds renders the configured Retry-After hint (whole
// seconds, minimum 1, as HTTP wants it).
func (s *Server) retryAfterSeconds() string {
	secs := int(math.Ceil(s.cfg.RetryAfterHint.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// cachedLocally reports whether the document is resident in this node's
// hot-file cache — the real cache-residency signal the broker's
// CachedLocal input carries, stat-free like the simulator's Peek. With the
// cache off nothing is resident and every candidate pays its full t_data.
func (s *Server) cachedLocally(path string) bool {
	return s.cache != nil && s.cache.Peek(path)
}

// entryCheck picks the staleness validator for a cached document: a file
// this node owns revalidates against the docroot (mtime and size must
// still match the stat), a relayed foreign file against the manifest size
// — the strongest truth each side has. A failed check invalidates the
// entry atomically, so the cache never serves bytes older than what the
// validator can see.
func (s *Server) entryCheck(path string, file storage.File) func(cache.Entry) bool {
	if file.HasReplica(s.cfg.ID) {
		return s.localCheck(path)
	}
	return func(ent cache.Entry) bool { return int64(len(ent.Body)) == file.Size }
}

// localCheck validates a cached entry against the docroot file it came
// from. It runs a stat under the cache lock — cheap, and it makes
// validate-and-invalidate atomic with respect to concurrent fills.
func (s *Server) localCheck(path string) func(cache.Entry) bool {
	full := s.localPath(path)
	return func(ent cache.Entry) bool {
		fi, err := os.Stat(full)
		return err == nil && fi.Size() == int64(len(ent.Body)) && fi.ModTime().Equal(ent.ModTime)
	}
}

// cacheable reports whether the document can go through the hot-file
// cache; oversized files stream straight from their source, mirroring the
// model cache's refusal to hold a file bigger than its whole capacity.
func (s *Server) cacheable(file storage.File) bool {
	return s.cache != nil && file.Size > 0 && file.Size <= s.cache.Capacity()
}

// snapshotLoads builds the broker's view, refreshing the self row from
// live counters. CPULoad counts requests being processed right now, not
// open connections — a parked keep-alive connection is not load.
func (s *Server) snapshotLoads() []core.NodeLoad {
	s.peersMu.RLock()
	n := 0
	for id := range s.peers {
		if id >= n {
			n = id + 1
		}
	}
	s.peersMu.RUnlock()
	if self := s.cfg.ID; self >= n {
		n = self + 1
	}
	loads := s.table.Snapshot(n, s.nowSec())
	loads[s.cfg.ID] = core.NodeLoad{
		Available:       true,
		CPULoad:         float64(s.reqActive.Load()),
		DiskLoad:        float64(s.diskActive.Load()),
		NetLoad:         float64(s.netActive.Load()),
		CPUOpsPerSec:    s.cfg.CPUOpsPerSec,
		DiskBytesPerSec: s.cfg.DiskBytesPerSec,
		NetBytesPerSec:  s.cfg.NetBytesPerSec,
	}
	return loads
}

func (s *Server) peerByID(id int) (Peer, bool) {
	s.peersMu.RLock()
	defer s.peersMu.RUnlock()
	p, ok := s.peers[id]
	return p, ok
}

func parseRedirectCount(query string) int {
	for _, kv := range strings.Split(query, "&") {
		if v, ok := strings.CutPrefix(kv, redirectParam+"="); ok {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				return n
			}
		}
	}
	return 0
}

// localPath maps a URL path into this node's docroot.
func (s *Server) localPath(urlPath string) string {
	return filepath.Join(s.cfg.DocRoot, filepath.FromSlash(strings.TrimPrefix(urlPath, "/")))
}

// serveLocalFile serves a document this node owns and returns the status
// written (0 when the write itself failed). Cacheable documents go through
// the hot-file cache with singleflight fill — one disk read per document
// no matter how many handlers want it at once, and the owner side of an
// internal fetch populates the cache too, exactly as the simulator's NFS
// server inserts on a remote read. The cache lookup here is quiet (no
// hit/miss accounting): the client-facing counted lookup already ran in
// handle, and internal fetches mirror the simulator's stat-free Peek.
func (s *Server) serveLocalFile(rc *reqConn, req *httpmsg.Request, file storage.File) int {
	if !s.cacheable(file) {
		return s.streamLocalFile(rc, req)
	}
	ent, err := s.cache.Fetch(req.Path, s.localCheck(req.Path), func() (cache.Entry, error) {
		return s.readLocalFile(req.Path)
	})
	if err != nil {
		s.errors.Add(1)
		s.drop("local_io")
		code := httpmsg.StatusNotFound
		if os.IsPermission(err) {
			code = httpmsg.StatusForbidden
		}
		_ = rc.simple(code, nil, httpmsg.ErrorBody(code, "Cannot open document."))
		return code
	}
	return s.writeEntry(rc, req, ent)
}

// readLocalFile is the cache's backing read: the whole document in one
// disk pass, with diskActive held across it so the scheduler sees the
// disk pressure of the fill.
func (s *Server) readLocalFile(path string) (cache.Entry, error) {
	s.diskActive.Add(1)
	defer s.diskActive.Add(-1)
	full := s.localPath(path)
	fi, err := os.Stat(full)
	if err != nil {
		return cache.Entry{}, err
	}
	body, err := os.ReadFile(full)
	if err != nil {
		return cache.Entry{}, err
	}
	return cache.Entry{Path: path, Body: body, ModTime: fi.ModTime()}, nil
}

// writeEntry answers a request from a memory-resident entry: conditional
// GETs revalidate against the entry's mtime (local files and relayed
// bodies alike — the relay path now carries the owner's Last-Modified into
// the entry), full responses stream from the cached bytes with no
// diskActive — the whole point of the hit path.
func (s *Server) writeEntry(rc *reqConn, req *httpmsg.Request, ent cache.Entry) int {
	if !ent.ModTime.IsZero() && httpmsg.NotModified(req.Header.Get("If-Modified-Since"), ent.ModTime) {
		h := httpmsg.Header{}
		h.Set("Last-Modified", httpmsg.FormatHTTPDate(ent.ModTime))
		_ = rc.simple(httpmsg.StatusNotModified, h, nil)
		s.served.Add(1)
		s.logAccess(rc.c, req, httpmsg.StatusNotModified, -1)
		return httpmsg.StatusNotModified
	}
	return s.streamResponse(rc, req, int64(len(ent.Body)), bytes.NewReader(ent.Body), ent.ModTime)
}

// streamLocalFile streams a document from the node's own disk, bypassing
// the cache (cache off, or the file exceeds the whole cache capacity).
// diskActive is held for the whole transfer — the disk is read as the body
// streams, so releasing the counter at open time would hide disk pressure
// from the scheduler exactly while the disk is busiest.
func (s *Server) streamLocalFile(rc *reqConn, req *httpmsg.Request) int {
	s.diskActive.Add(1)
	defer s.diskActive.Add(-1)
	f, err := os.Open(s.localPath(req.Path))
	if err != nil {
		s.errors.Add(1)
		s.drop("local_io")
		code := httpmsg.StatusNotFound
		if os.IsPermission(err) {
			code = httpmsg.StatusForbidden
		}
		_ = rc.simple(code, nil, httpmsg.ErrorBody(code, "Cannot open document."))
		return code
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		s.errors.Add(1)
		s.drop("local_io")
		_ = rc.simple(httpmsg.StatusInternalServerError, nil,
			httpmsg.ErrorBody(httpmsg.StatusInternalServerError, "stat failed"))
		return httpmsg.StatusInternalServerError
	}
	// Conditional GET (RFC 1945 §10.9): a browser revalidating its cache
	// sends If-Modified-Since and gets a body-less 304 if the document is
	// unchanged — the cheapest response the 1996 server knows.
	if httpmsg.NotModified(req.Header.Get("If-Modified-Since"), fi.ModTime()) {
		h := httpmsg.Header{}
		h.Set("Last-Modified", httpmsg.FormatHTTPDate(fi.ModTime()))
		_ = rc.simple(httpmsg.StatusNotModified, h, nil)
		s.served.Add(1)
		s.logAccess(rc.c, req, httpmsg.StatusNotModified, -1)
		return httpmsg.StatusNotModified
	}
	// The body streams straight from the open *os.File through a pooled
	// copy buffer — the document is never materialized in one allocation.
	return s.streamResponse(rc, req, fi.Size(), f, fi.ModTime())
}

// serveRemoteFile fetches the document from a replica (the NFS stand-in)
// and relays it to the client. The replica set is walked cheapest-first
// (core.RankSources) with failover: a dead source feeds the loadd health
// view and the next attempt moves down the list, so a single node death
// never turns a replicated document into a 503. Cacheable documents are
// materialized into the hot-file cache — with the source's Last-Modified
// preserved so clients can 304-revalidate foreign documents — and
// concurrent requests for the same cold document coalesce into one fetch
// (singleflight). Documents too big for the cache stream straight from
// the source's socket to the client without ever being held in memory.
// Either way the fetch runs under the node's retry budget, and only once
// the budget is spent across every replica does the client see the
// degradation ladder's last rung: 503 with a Retry-After hint.
func (s *Server) serveRemoteFile(rc *reqConn, req *httpmsg.Request, file storage.File, tctx trace.TraceID) int {
	sources := s.rankedSources(req.Path, file)
	if len(sources) == 0 {
		s.errors.Add(1)
		s.drop("owner_unknown")
		_ = rc.simple(httpmsg.StatusInternalServerError, nil,
			httpmsg.ErrorBody(httpmsg.StatusInternalServerError, "owner unknown"))
		return httpmsg.StatusInternalServerError
	}
	s.netActive.Add(1)
	defer s.netActive.Add(-1)
	if !s.cacheable(file) {
		return s.relayStream(rc, req, sources, tctx)
	}
	ent, err := s.cache.Fetch(req.Path, s.entryCheck(req.Path, file), func() (cache.Entry, error) {
		resp, ferr := s.fetchWithRetry(sources, req.Path, tctx)
		if ferr != nil {
			return cache.Entry{}, ferr
		}
		return cache.Entry{Path: req.Path, Body: resp.Body, ModTime: lastModified(resp.Header)}, nil
	})
	if err != nil {
		return s.degrade503(rc, req)
	}
	return s.writeEntry(rc, req, ent)
}

// rankedSources maps core.RankSources' cheapest-first replica order onto
// the known peers — the failover list the fetch paths walk. Unavailable
// replicas trail the list rather than vanish: when every replica looks
// dead the fetch still tries them, because the health view may be stale.
func (s *Server) rankedSources(path string, file storage.File) []fetchSource {
	d := s.cfg.Oracle.Characterize(path)
	coreReq := core.Request{
		Path:      path,
		Owner:     file.Owner,
		Replicas:  file.Replicas,
		DiskBytes: d.DiskBytes(file.Size),
	}
	loads := s.snapshotLoads()
	out := make([]fetchSource, 0, len(file.ReplicaSet()))
	for _, rep := range core.RankSources(coreReq, s.cfg.ID, s.cfg.ID, loads) {
		if rep == s.cfg.ID {
			continue
		}
		if peer, ok := s.peerByID(rep); ok {
			out = append(out, fetchSource{node: rep, peer: peer})
		}
	}
	return out
}

// degrade503 answers the degradation ladder's last rung: the owner stayed
// unreachable through the whole retry budget.
func (s *Server) degrade503(rc *reqConn, req *httpmsg.Request) int {
	s.errors.Add(1)
	s.fetchFailed.Add(1)
	s.drop("owner_unreachable")
	h := httpmsg.Header{}
	h.Set("Retry-After", s.retryAfterSeconds())
	_ = rc.simple(httpmsg.StatusServiceUnavailable, h,
		httpmsg.ErrorBody(httpmsg.StatusServiceUnavailable, "owner unreachable"))
	s.logAccess(rc.c, req, httpmsg.StatusServiceUnavailable, -1)
	return httpmsg.StatusServiceUnavailable
}

// serveCGI executes a registered dynamic endpoint, returning the status
// written (0 when the write failed).
func (s *Server) serveCGI(rc *reqConn, req *httpmsg.Request, fn CGIFunc) int {
	body, ctype := fn(req.Query, req.Body)
	if ctype == "" {
		ctype = "text/html"
	}
	h := httpmsg.Header{}
	h.Set("Content-Type", ctype)
	if err := rc.simple(httpmsg.StatusOK, h, body); err != nil {
		s.drop("write_failed")
		return 0
	}
	s.served.Add(1)
	s.bytesOut.Add(int64(len(body)))
	s.logAccess(rc.c, req, httpmsg.StatusOK, int64(len(body)))
	return httpmsg.StatusOK
}

// streamResponse writes the response header and body in the httpd
// write-loop style, returning the status written (0 when the write failed
// mid-flight, which also spends the connection). size < 0 means the length
// is unknown up front: HTTP/1.1 clients get chunked transfer coding, and
// HTTP/1.0 clients an EOF-delimited body on a connection marked close. A
// zero modTime omits Last-Modified. The body crosses through a pooled copy
// buffer; a HEAD response skips it entirely and logs zero body bytes.
func (s *Server) streamResponse(rc *reqConn, req *httpmsg.Request, size int64, body io.Reader, modTime time.Time) int {
	s.netActive.Add(1)
	defer s.netActive.Add(-1)
	bw := bufio.NewWriter(rc.c)
	h := httpmsg.Header{}
	h.Set("Content-Type", httpmsg.ContentTypeFor(req.Path))
	chunked := false
	switch {
	case size >= 0:
		h.Set("Content-Length", strconv.FormatInt(size, 10))
	case rc.proto == "HTTP/1.1":
		chunked = true
		h.Set("Transfer-Encoding", "chunked")
	default:
		// Unknown length to a 1.0 client: the body runs to EOF, so this
		// connection cannot carry another request.
		rc.keepAlive = false
	}
	if !modTime.IsZero() {
		h.Set("Last-Modified", httpmsg.FormatHTTPDate(modTime))
	}
	h.Set("Connection", rc.connHeader())
	if err := httpmsg.WriteProtoResponseHeader(bw, rc.proto, httpmsg.StatusOK, h); err != nil {
		return rc.fail()
	}
	var sent int64
	if req.Method != "HEAD" {
		var err error
		switch {
		case chunked:
			cw := httpmsg.NewChunkedWriter(bw)
			sent, err = httpmsg.CopyBody(cw, body)
			if err == nil {
				err = cw.Close()
			}
		case size >= 0:
			sent, err = httpmsg.CopyBodyN(bw, body, size)
		default:
			sent, err = httpmsg.CopyBody(bw, body)
		}
		s.bytesOut.Add(sent)
		if err != nil {
			// Short or failed body: the client was promised different
			// framing than it got, so the connection is unusable.
			return rc.fail()
		}
	}
	if err := bw.Flush(); err != nil {
		return rc.fail()
	}
	s.served.Add(1)
	s.logAccess(rc.c, req, httpmsg.StatusOK, sent)
	return httpmsg.StatusOK
}
