package httpd

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sweb/internal/core"
	"sweb/internal/loadd"
	"sweb/internal/storage"
)

func testConfig(t *testing.T) Config {
	st := storage.NewStore(2)
	storage.UniformSet(st, 2, 1024)
	return Config{ID: 0, DocRoot: t.TempDir(), Store: st}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Store = nil },
		func(c *Config) { c.DocRoot = "" },
	}
	for i, mut := range cases {
		cfg := testConfig(t)
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy == nil || cfg.Oracle == nil {
		t.Fatal("policy/oracle defaults missing")
	}
	if cfg.LoaddPeriod != 2500*time.Millisecond || cfg.LoaddTimeout != 8*time.Second {
		t.Fatalf("loadd defaults: %v %v", cfg.LoaddPeriod, cfg.LoaddTimeout)
	}
	if cfg.MaxConcurrent != 256 {
		t.Fatalf("max concurrent = %d", cfg.MaxConcurrent)
	}
}

func TestNewBindsEphemeralPorts(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" || srv.UDPAddr() == "" {
		t.Fatal("addresses not bound")
	}
	if srv.ID() != 0 {
		t.Fatalf("id = %d", srv.ID())
	}
	if !strings.Contains(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("addr = %q", srv.Addr())
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Close()
	srv.Close() // second close must not panic or deadlock
}

func TestParseRedirectCount(t *testing.T) {
	cases := map[string]int{
		"":                0,
		"swebr=1":         1,
		"swebr=3":         3,
		"x=2&swebr=2&y=1": 2,
		"swebr=bogus":     0,
		"swebr=-1":        0,
		"other=5":         0,
	}
	for in, want := range cases {
		if got := parseRedirectCount(in); got != want {
			t.Errorf("parseRedirectCount(%q) = %d want %d", in, got, want)
		}
	}
}

func TestLocalPathStaysInDocroot(t *testing.T) {
	cfg := testConfig(t)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := srv.localPath("/a/b.html")
	want := filepath.Join(cfg.DocRoot, "a", "b.html")
	if got != want {
		t.Fatalf("localPath = %q want %q", got, want)
	}
}

func TestSnapshotLoadsSelfRowIsLive(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetPeers([]Peer{{ID: 0, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()}, {ID: 1, HTTPAddr: "x", UDPAddr: "y"}})
	srv.reqActive.Store(5)
	loads := srv.snapshotLoads()
	if len(loads) != 2 {
		t.Fatalf("len = %d", len(loads))
	}
	if !loads[0].Available || loads[0].CPULoad != 5 {
		t.Fatalf("self row = %+v", loads[0])
	}
	if loads[1].Available {
		t.Fatal("peer without broadcasts should be unavailable")
	}
}

func TestRegisterCGI(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterCGI("/cgi-bin/x.cgi", func(q string, b []byte) ([]byte, string) { return nil, "" })
	if _, ok := srv.cgiFor("/cgi-bin/x.cgi"); !ok {
		t.Fatal("registered CGI not found")
	}
	if _, ok := srv.cgiFor("/other"); ok {
		t.Fatal("phantom CGI")
	}
}

func TestSampleReflectsConfig(t *testing.T) {
	cfg := testConfig(t)
	cfg.ID = 1
	cfg.CPUOpsPerSec = 11
	cfg.DiskBytesPerSec = 22
	cfg.NetBytesPerSec = 33
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := srv.sample()
	if s.Node != 1 || s.CPUOpsPerSec != 11 || s.DiskBytesPerSec != 22 || s.NetBytesPerSec != 33 {
		t.Fatalf("sample = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRedirectLocationPreservesQuery(t *testing.T) {
	cases := []struct {
		query string
		want  string
	}{
		{"", "http://h:1/doc?swebr=1"},
		{"x=1", "http://h:1/doc?x=1&swebr=1"},
		{"x=1&y=2", "http://h:1/doc?x=1&y=2&swebr=1"},
		// An existing counter is replaced, not duplicated.
		{"swebr=0&x=1", "http://h:1/doc?x=1&swebr=1"},
		{"x=1&swebr=3", "http://h:1/doc?x=1&swebr=1"},
	}
	for _, c := range cases {
		if got := redirectLocation("h:1", "/doc", c.query, 0, ""); got != c.want {
			t.Errorf("redirectLocation(%q) = %q want %q", c.query, got, c.want)
		}
	}
	// The counter value tracks the redirect count.
	if got := redirectLocation("h:1", "/doc", "a=b", 2, ""); got != "http://h:1/doc?a=b&swebr=3" {
		t.Errorf("redirect count: %q", got)
	}
	// A trace context rides along after the counter; an inbound one is
	// replaced, not duplicated.
	if got := redirectLocation("h:1", "/doc", "a=b&swebt=old:5", 0, "abcd:99"); got != "http://h:1/doc?a=b&swebr=1&swebt=abcd:99" {
		t.Errorf("trace context: %q", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cfg := testConfig(t)
	cfg.RetryAfterHint = 2500 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.retryAfterSeconds(); got != "3" {
		t.Fatalf("retryAfterSeconds = %q, want ceil to 3", got)
	}
}

func TestConfirmTargetSkipsDeadPeer(t *testing.T) {
	cfg := testConfig(t)
	cfg.Store = storage.NewStore(3)
	storage.UniformSet(cfg.Store, 3, 1024)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	smp := func(node int) loadd.Sample {
		return loadd.Sample{Node: node, CPUOpsPerSec: 1, DiskBytesPerSec: 1,
			NetBytesPerSec: 1, SentAt: srv.nowSec()}
	}
	if err := srv.Table().Update(smp(1), srv.nowSec()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Table().Update(smp(2), srv.nowSec()); err != nil {
		t.Fatal(err)
	}

	dec := core.Decision{Target: 1, Candidates: []core.CostBreakdown{
		{Node: 0, Total: 3},
		{Node: 1, Total: 1},
		{Node: 2, Total: 2},
	}}
	// All peers healthy: the broker's pick stands.
	if got := srv.confirmTarget(dec); got != 1 {
		t.Fatalf("healthy pick overridden: %d", got)
	}
	// The pick's data path fails past the limit: next-best feasible wins.
	for i := 0; i < loadd.DefaultFailureLimit; i++ {
		srv.Table().MarkFailure(1)
	}
	if got := srv.confirmTarget(dec); got != 2 {
		t.Fatalf("fallback = %d, want next-best peer 2", got)
	}
	// Every peer dead: degrade to local service.
	for i := 0; i < loadd.DefaultFailureLimit; i++ {
		srv.Table().MarkFailure(2)
	}
	if got := srv.confirmTarget(dec); got != 0 {
		t.Fatalf("fallback = %d, want local", got)
	}
	// Recovery on the data path restores the pick.
	srv.Table().MarkSuccess(1)
	if got := srv.confirmTarget(dec); got != 1 {
		t.Fatalf("recovered pick = %d, want 1", got)
	}
}

func TestConfirmTargetNoCandidatesFallsBackLocal(t *testing.T) {
	// Policies like FileLocality return a bare target with no candidate
	// breakdowns; a dead pick must still degrade to local service.
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dec := core.Decision{Target: 1} // node 1 never broadcast
	if got := srv.confirmTarget(dec); got != 0 {
		t.Fatalf("confirmTarget = %d, want local 0", got)
	}
}

func TestFetchDefaults(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.FetchAttempts != 3 || cfg.FetchBackoff != 100*time.Millisecond {
		t.Fatalf("fetch defaults: %d %v", cfg.FetchAttempts, cfg.FetchBackoff)
	}
	if cfg.FetchTimeout != 5*time.Second || cfg.RetryAfterHint != 2*time.Second {
		t.Fatalf("fetch defaults: %v %v", cfg.FetchTimeout, cfg.RetryAfterHint)
	}
	if cfg.FailureLimit != loadd.DefaultFailureLimit {
		t.Fatalf("failure limit default = %d", cfg.FailureLimit)
	}
}
