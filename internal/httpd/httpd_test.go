package httpd

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sweb/internal/storage"
)

func testConfig(t *testing.T) Config {
	st := storage.NewStore(2)
	storage.UniformSet(st, 2, 1024)
	return Config{ID: 0, DocRoot: t.TempDir(), Store: st}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Store = nil },
		func(c *Config) { c.DocRoot = "" },
	}
	for i, mut := range cases {
		cfg := testConfig(t)
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := testConfig(t)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy == nil || cfg.Oracle == nil {
		t.Fatal("policy/oracle defaults missing")
	}
	if cfg.LoaddPeriod != 2500*time.Millisecond || cfg.LoaddTimeout != 8*time.Second {
		t.Fatalf("loadd defaults: %v %v", cfg.LoaddPeriod, cfg.LoaddTimeout)
	}
	if cfg.MaxConcurrent != 256 {
		t.Fatalf("max concurrent = %d", cfg.MaxConcurrent)
	}
}

func TestNewBindsEphemeralPorts(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" || srv.UDPAddr() == "" {
		t.Fatal("addresses not bound")
	}
	if srv.ID() != 0 {
		t.Fatalf("id = %d", srv.ID())
	}
	if !strings.Contains(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("addr = %q", srv.Addr())
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Close()
	srv.Close() // second close must not panic or deadlock
}

func TestParseRedirectCount(t *testing.T) {
	cases := map[string]int{
		"":                0,
		"swebr=1":         1,
		"swebr=3":         3,
		"x=2&swebr=2&y=1": 2,
		"swebr=bogus":     0,
		"swebr=-1":        0,
		"other=5":         0,
	}
	for in, want := range cases {
		if got := parseRedirectCount(in); got != want {
			t.Errorf("parseRedirectCount(%q) = %d want %d", in, got, want)
		}
	}
}

func TestLocalPathStaysInDocroot(t *testing.T) {
	cfg := testConfig(t)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := srv.localPath("/a/b.html")
	want := filepath.Join(cfg.DocRoot, "a", "b.html")
	if got != want {
		t.Fatalf("localPath = %q want %q", got, want)
	}
}

func TestSnapshotLoadsSelfRowIsLive(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetPeers([]Peer{{ID: 0, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()}, {ID: 1, HTTPAddr: "x", UDPAddr: "y"}})
	srv.inflight.Store(5)
	loads := srv.snapshotLoads()
	if len(loads) != 2 {
		t.Fatalf("len = %d", len(loads))
	}
	if !loads[0].Available || loads[0].CPULoad != 5 {
		t.Fatalf("self row = %+v", loads[0])
	}
	if loads[1].Available {
		t.Fatal("peer without broadcasts should be unavailable")
	}
}

func TestRegisterCGI(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterCGI("/cgi-bin/x.cgi", func(q string, b []byte) ([]byte, string) { return nil, "" })
	if _, ok := srv.cgiFor("/cgi-bin/x.cgi"); !ok {
		t.Fatal("registered CGI not found")
	}
	if _, ok := srv.cgiFor("/other"); ok {
		t.Fatal("phantom CGI")
	}
}

func TestSampleReflectsConfig(t *testing.T) {
	cfg := testConfig(t)
	cfg.ID = 1
	cfg.CPUOpsPerSec = 11
	cfg.DiskBytesPerSec = 22
	cfg.NetBytesPerSec = 33
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := srv.sample()
	if s.Node != 1 || s.CPUOpsPerSec != 11 || s.DiskBytesPerSec != 22 || s.NetBytesPerSec != 33 {
		t.Fatalf("sample = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
