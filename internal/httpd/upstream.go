package httpd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"sweb/internal/httpmsg"
	"sweb/internal/retry"
	"sweb/internal/trace"
)

// upstreamIdlePerPeer bounds how many idle internal-fetch connections are
// kept per peer. A relay burst fans out over at most this many sockets and
// reuses them; beyond that, extra connections are spent after one exchange.
const upstreamIdlePerPeer = 4

// upstream is one reusable connection to a peer's HTTP listener, with the
// buffered reader that parses its responses.
type upstream struct {
	conn net.Conn
	br   *bufio.Reader
}

func (u *upstream) Close() { _ = u.conn.Close() }

// upstreamPool keeps idle internal-fetch connections per peer address, so
// a relay burst does not pay a TCP dial per request ("NFS cross-mount"
// traffic rides persistent connections like client traffic does).
type upstreamPool struct {
	mu     sync.Mutex
	idle   map[string][]*upstream
	cap    int
	closed bool
}

func newUpstreamPool(perPeer int) *upstreamPool {
	if perPeer <= 0 {
		perPeer = upstreamIdlePerPeer
	}
	return &upstreamPool{idle: make(map[string][]*upstream), cap: perPeer}
}

// get pops an idle connection to addr, nil when none is parked.
func (p *upstreamPool) get(addr string) *upstream {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.idle[addr]
	if len(list) == 0 {
		return nil
	}
	u := list[len(list)-1]
	p.idle[addr] = list[:len(list)-1]
	return u
}

// put parks a connection for reuse, closing it instead when the per-peer
// cap is reached or the pool is shut down.
func (p *upstreamPool) put(addr string, u *upstream) {
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.cap {
		p.mu.Unlock()
		u.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], u)
	p.mu.Unlock()
}

// closeAll closes every parked connection and refuses new parks.
func (p *upstreamPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for addr, list := range p.idle {
		for _, u := range list {
			u.Close()
		}
		delete(p.idle, addr)
	}
}

// internalRequest builds the node-to-node fetch request: HTTP/1.1 with
// keep-alive so the owner leaves the connection open, the internal marker
// so it is served directly, and optionally the client's If-Modified-Since
// (streamed relays let the owner answer 304) and the originating trace.
func (s *Server) internalRequest(method, path, ims string, tctx trace.TraceID) *httpmsg.Request {
	req := &httpmsg.Request{Method: method, Path: path, Proto: "HTTP/1.1", Header: httpmsg.Header{}}
	req.Header.Set(internalHeader, "1")
	req.Header.Set("Connection", "keep-alive")
	if ims != "" {
		req.Header.Set("If-Modified-Since", ims)
	}
	if tctx != "" {
		req.Header.Set(traceHeader, string(tctx))
	}
	return req
}

// openPeerStream sends one internal request and returns the connection
// with the response header parsed and the body still unread on u.br — the
// shape both the materializing fetch and the streaming relay start from.
// A pooled connection is tried first; if the exchange fails on it (the
// peer may have idle-timed it out), one fresh dial retries before the
// error propagates.
func (s *Server) openPeerStream(peer Peer, req *httpmsg.Request) (*upstream, *httpmsg.Response, error) {
	if u := s.ups.get(peer.HTTPAddr); u != nil {
		if resp, err := roundTripUpstream(u, req); err == nil {
			s.upstreamReused.Add(1)
			return u, resp, nil
		}
		u.Close() // stale pooled connection; fall through to a fresh dial
	}
	if delay := s.cfg.DialDelay; delay != nil {
		if d := delay(); d > 0 {
			time.Sleep(d)
		}
	}
	c, err := net.DialTimeout("tcp", peer.HTTPAddr, s.cfg.FetchTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("dial owner %d: %w", peer.ID, err)
	}
	s.upstreamDials.Add(1)
	u := &upstream{conn: c, br: bufio.NewReader(c)}
	resp, err := roundTripUpstream(u, req)
	if err != nil {
		u.Close()
		return nil, nil, fmt.Errorf("owner %d: %w", peer.ID, err)
	}
	return u, resp, nil
}

// roundTripUpstream writes the request and parses the response header. The
// deadline covers the whole exchange including the body reads that follow.
func roundTripUpstream(u *upstream, req *httpmsg.Request) (*httpmsg.Response, error) {
	_ = u.conn.SetDeadline(time.Now().Add(connTimeout))
	if err := req.Write(u.conn); err != nil {
		return nil, err
	}
	return httpmsg.ReadResponseHeader(u.br)
}

// readUpstreamBody reads the full response body off the upstream reader.
// reusable reports whether the framing left the connection positioned at
// the next response (an EOF-delimited body spends it).
func readUpstreamBody(br *bufio.Reader, resp *httpmsg.Response) (body []byte, reusable bool, err error) {
	if resp.Chunked() {
		body, err = io.ReadAll(httpmsg.NewChunkedReader(br))
		return body, err == nil, err
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, perr := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if perr != nil || n < 0 {
			return nil, false, fmt.Errorf("bad Content-Length %q", cl)
		}
		body = make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, false, err
		}
		return body, true, nil
	}
	body, err = io.ReadAll(br)
	return body, false, err
}

// fetchFromPeer performs one internal GET against the owning node over a
// pooled keep-alive connection and materializes the body — the cache-fill
// path. The connection returns to the pool when its framing allows.
func (s *Server) fetchFromPeer(peer Peer, path string, tctx trace.TraceID) (*httpmsg.Response, error) {
	req := s.internalRequest("GET", path, "", tctx)
	u, resp, err := s.openPeerStream(peer, req)
	if err != nil {
		return nil, err
	}
	body, reusable, err := readUpstreamBody(u.br, resp)
	if err != nil {
		u.Close()
		return nil, fmt.Errorf("read from owner %d: %w", peer.ID, err)
	}
	if reusable && resp.KeepAlive() {
		s.ups.put(peer.HTTPAddr, u)
	} else {
		u.Close()
	}
	if resp.StatusCode != httpmsg.StatusOK {
		return nil, fmt.Errorf("owner %d returned %d", peer.ID, resp.StatusCode)
	}
	resp.Body = body
	return resp, nil
}

// fetchSource is one replica candidate for an internal fetch: the node id
// the health view tracks and the peer address to dial.
type fetchSource struct {
	node int
	peer Peer
}

// fetchPolicy builds the retry budget for an internal fetch over the
// given failover list: the per-source attempt count scales with the list
// so every replica gets its full share of tries (R=1 reduces to the
// pre-replication policy exactly), while the time budget stays fixed.
func (s *Server) fetchPolicy(sources int) retry.Policy {
	return retry.Policy{
		MaxAttempts: s.cfg.FetchAttempts * sources,
		BaseDelay:   s.cfg.FetchBackoff,
		MaxDelay:    2 * time.Second,
		Jitter:      0.2,
		Budget:      connTimeout / 2,
	}
}

// fetchWithRetry runs the materializing internal fetch under the node's
// retry budget, rotating through the failover list — attempt k hits
// sources[(k-1) mod len] — and feeding the loadd health view on every
// outcome, so a dead replica is tried, marked, and routed around.
func (s *Server) fetchWithRetry(sources []fetchSource, path string, tctx trace.TraceID) (*httpmsg.Response, error) {
	s.internalFetch.Add(1)
	var resp *httpmsg.Response
	err := s.fetchPolicy(len(sources)).Do(s.closed, func(attempt int) error {
		src := sources[(attempt-1)%len(sources)]
		r, ferr := s.fetchFromPeer(src.peer, path, tctx)
		if ferr != nil {
			s.table.MarkFailure(src.node)
			return ferr
		}
		s.table.MarkSuccess(src.node)
		s.nm.replicaFetch(path, src.node)
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// relayStream pipes a non-cacheable document from a replica straight to
// the client without materializing it: the source's response header is
// parsed, then the body is copied socket-to-socket through a pooled
// buffer. Attempts rotate through the failover list, so a dead source
// sends the next try to the surviving replica. Retries apply only while
// nothing has reached the client; once the first body byte is on the
// wire a dying source can only truncate the transfer (the client sees
// the short body against Content-Length, and both connections are
// spent).
func (s *Server) relayStream(rc *reqConn, req *httpmsg.Request, sources []fetchSource, tctx trace.TraceID) int {
	s.internalFetch.Add(1)
	ireq := s.internalRequest(req.Method, req.Path, req.Header.Get("If-Modified-Since"), tctx)
	var u *upstream
	var resp *httpmsg.Response
	var chosen fetchSource
	err := s.fetchPolicy(len(sources)).Do(s.closed, func(attempt int) error {
		cand := sources[(attempt-1)%len(sources)]
		uu, r, ferr := s.openPeerStream(cand.peer, ireq)
		if ferr != nil {
			s.table.MarkFailure(cand.node)
			return ferr
		}
		if r.StatusCode != httpmsg.StatusOK && r.StatusCode != httpmsg.StatusNotModified {
			uu.Close()
			s.table.MarkFailure(cand.node)
			return fmt.Errorf("replica %d returned %d", cand.peer.ID, r.StatusCode)
		}
		u, resp, chosen = uu, r, cand
		return nil
	})
	if err != nil {
		return s.degrade503(rc, req)
	}
	s.table.MarkSuccess(chosen.node)
	s.nm.replicaFetch(req.Path, chosen.node)
	peer := chosen.peer

	if resp.StatusCode == httpmsg.StatusNotModified {
		s.ups.put(peer.HTTPAddr, u) // a 304 carries no body; the conn is clean
		h := httpmsg.Header{}
		if lm := resp.Header.Get("Last-Modified"); lm != "" {
			h.Set("Last-Modified", lm)
		}
		if rc.simple(httpmsg.StatusNotModified, h, nil) != nil {
			return 0
		}
		s.served.Add(1)
		s.logAccess(rc.c, req, httpmsg.StatusNotModified, -1)
		return httpmsg.StatusNotModified
	}

	size := int64(-1)
	var src io.Reader = u.br
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, perr := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if perr != nil || n < 0 {
			u.Close()
			return s.degrade503(rc, req)
		}
		size = n
		src = io.LimitReader(u.br, n)
	} else if resp.Chunked() {
		src = httpmsg.NewChunkedReader(u.br)
	}
	status := s.streamResponse(rc, req, size, src, lastModified(resp.Header))
	// The connection survives for reuse only when the owner's body was
	// consumed exactly: a HEAD left nothing on the wire, a completed sized
	// transfer drained its LimitReader. Everything else is mid-body.
	if req.Method == "HEAD" || (status != 0 && size >= 0) {
		s.ups.put(peer.HTTPAddr, u)
	} else {
		u.Close()
	}
	return status
}

// lastModified parses an upstream Last-Modified header; zero when absent
// or unparseable.
func lastModified(h httpmsg.Header) time.Time {
	if lm := h.Get("Last-Modified"); lm != "" {
		if t, err := httpmsg.ParseHTTPDate(lm); err == nil {
			return t
		}
	}
	return time.Time{}
}
