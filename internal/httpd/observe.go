package httpd

import (
	"math"
	"runtime"
	"strconv"
	"sync"

	"sweb/internal/core"
	"sweb/internal/metrics"
	"sweb/internal/trace"
)

// Metric families every live node serves under /sweb/metrics. The event
// counter mirrors the trace.Kind vocabulary so the exposition and the
// trace renderers describe the lifecycle in the same words; the phase
// histograms are the live analogue of Table 5's per-phase costs; the
// sched_* families compare the broker's predicted t_s terms against what
// the node then measured.
const (
	mEvents         = "sweb_events_total"
	mPhase          = "sweb_phase_seconds"
	mResponse       = "sweb_response_seconds"
	mTTFB           = "sweb_ttfb_seconds"
	mDrops          = "sweb_drops_total"
	mRedirects      = "sweb_redirect_targets_total"
	mSchedPredicted = "sweb_sched_predicted_seconds_total"
	mSchedActual    = "sweb_sched_actual_seconds_total"
	mSchedCompared  = "sweb_sched_compared_total"
	mSchedAbsErr    = "sweb_sched_abs_error_seconds"
	// Gossip telemetry: the scheduler's decision inputs as observables.
	// Age is per-peer broadcast staleness right now; interval is the
	// distribution of gaps between receptions; advertised is the load
	// vector a peer last claimed; drift is |now - last advertised| for
	// this node's own numbers, the error peers act on between broadcasts.
	mGossipAge        = "sweb_loadd_broadcast_age_seconds"
	mGossipInterval   = "sweb_loadd_broadcast_interval_seconds"
	mGossipAdvertised = "sweb_loadd_advertised_load"
	mGossipDrift      = "sweb_loadd_self_drift"
	mTraceDropped     = "sweb_trace_dropped_total"
	// Hot-file cache counters, read live from the cache at exposition
	// time; the simulator publishes the same families from its page-cache
	// model, so hit-rate dashboards work on either substrate.
	mCacheHits      = "sweb_cache_hits_total"
	mCacheMisses    = "sweb_cache_misses_total"
	mCacheEvictions = "sweb_cache_evictions_total"
	mCacheShared    = "sweb_cache_singleflight_shared_total"
	mCacheBytes     = "sweb_cache_bytes"
	mCacheCapacity  = "sweb_cache_capacity_bytes"
	// Connection-plane state split by phase (sweb_inflight stays as the
	// conflated total the monitor's default rules read) plus the flight
	// recorder's own accounting.
	mConnsActive   = "sweb_conns_active"
	mConnsIdle     = "sweb_conns_idle"
	mIdleReaped    = "sweb_conns_idle_reaped_total"
	mKeepAlivePer  = "sweb_keepalive_requests_per_conn"
	mFlightRecords = "sweb_flight_records_total"
	mFlightNotable = "sweb_flight_notable_total"
	// Document-heat telemetry: the sketch's own accounting plus the
	// per-path request/relay counters the hot_doc monitor rule windows.
	// The simulator publishes the same families from its sketches.
	mHeatObservations = "sweb_heat_observations_total"
	mHeatTracked      = "sweb_heat_tracked_paths"
	mHeatRequests     = "sweb_heat_requests_total"
	mHeatRelays       = "sweb_heat_relays_total"
	// Replication telemetry: which replica internal fetches landed on
	// (the parity and chaos tests' failover evidence), the replica-set
	// size the hot_doc rule divides by, and the rebalancer's actions.
	mHeatReplicas = "sweb_heat_replicas"
	mReplicaFetch = "sweb_replica_fetch_total"
	mRebalance    = "sweb_rebalance_actions_total"
)

// keepAliveBuckets cover one-shot connections through a fully amortized
// KeepAliveMax=100 and beyond.
var keepAliveBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250}

// gossipIntervalBuckets cover a healthy 2-3 s gossip period up through the
// 8 s default timeout and well past it, so a dying peer's growing gaps are
// visible in the histogram, not just clipped into +Inf.
var gossipIntervalBuckets = []float64{0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// gossipDriftBuckets are in load units (runnable jobs / active transfers),
// not seconds.
var gossipDriftBuckets = []float64{0.5, 1, 2, 4, 8, 16, 32, 64}

// nodeMetrics caches the fixed-label handles the request path touches on
// every request; dynamic-label instances (event kinds, drop causes,
// redirect targets) go through the registry, which dedups by signature.
type nodeMetrics struct {
	reg      *metrics.Registry
	response *metrics.Histogram
	ttfb     *metrics.Histogram
	compared *metrics.Counter
	absErr   *metrics.Histogram
	kaServed *metrics.Histogram
}

func newNodeMetrics(s *Server) *nodeMetrics {
	reg := metrics.NewRegistry()
	m := &nodeMetrics{
		reg: reg,
		response: reg.Histogram(mResponse,
			"end-to-end service time per successfully served request", nil, nil),
		ttfb: reg.Histogram(mTTFB,
			"request arrival to first response byte on the wire", nil, nil),
		compared: reg.Counter(mSchedCompared,
			"requests with both a finite prediction and a measured total", nil),
		absErr: reg.Histogram(mSchedAbsErr,
			"absolute error |predicted - actual| of the broker's t_s", nil, nil),
		kaServed: reg.Histogram(mKeepAlivePer,
			"requests served per client connection, observed at connection end",
			nil, keepAliveBuckets),
	}
	reg.GaugeFunc("sweb_inflight", "client connections open now (idle keep-alive included)", nil,
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc(mConnsActive, "client connections with a request mid-lifecycle now", nil,
		func() float64 { a, _ := s.connCounts(); return float64(a) })
	reg.GaugeFunc(mConnsIdle, "client connections parked between requests now", nil,
		func() float64 { _, i := s.connCounts(); return float64(i) })
	reg.CounterFunc(mIdleReaped, "keep-alive connections closed by the idle timeout", nil,
		func() float64 { return float64(s.idleReaped.Load()) })
	reg.CounterFunc(mFlightRecords, "requests recorded by the flight recorder", nil,
		func() float64 { return float64(s.flight.Total()) })
	reg.CounterFunc(mFlightNotable, "flight records retained as notable (errors and slow requests)", nil,
		func() float64 { return float64(s.flight.NotableTotal()) })
	reg.GaugeFunc("sweb_requests_active", "requests mid-lifecycle now (the load signal)", nil,
		func() float64 { return float64(s.reqActive.Load()) })
	reg.GaugeFunc("sweb_capacity", "concurrent-connection ceiling (MAXLOAD analogue)", nil,
		func() float64 { return float64(s.cfg.MaxConcurrent) })
	reg.CounterFunc("sweb_upstream_dials_total", "internal-fetch connections dialed", nil,
		func() float64 { return float64(s.upstreamDials.Load()) })
	reg.CounterFunc("sweb_upstream_reused_total", "internal fetches served over a pooled connection", nil,
		func() float64 { return float64(s.upstreamReused.Load()) })
	// Server-process health next to the modelled load: a node can look
	// lightly loaded in SWEB terms while the Go runtime is drowning.
	reg.Gauge("sweb_build_info", "build metadata; value is always 1",
		metrics.Labels{"go_version": runtime.Version()}).Set(1)
	reg.GaugeFunc("sweb_goroutines", "live goroutines in the server process", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("sweb_heap_alloc_bytes", "bytes of allocated heap objects", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("sweb_gc_pause_seconds_total", "cumulative GC stop-the-world pause time", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	reg.GaugeFunc("sweb_disk_active", "in-progress local disk reads", nil,
		func() float64 { return float64(s.diskActive.Load()) })
	reg.GaugeFunc("sweb_net_active", "in-progress transfers and fetches", nil,
		func() float64 { return float64(s.netActive.Load()) })
	reg.CounterFunc("sweb_bytes_out_total", "response body bytes written", nil,
		func() float64 { return float64(s.bytesOut.Load()) })
	if c := s.cache; c != nil {
		reg.CounterFunc(mCacheHits, "hot-file cache lookups served from memory", nil,
			func() float64 { return float64(c.Stats().Hits) })
		reg.CounterFunc(mCacheMisses, "hot-file cache lookups that missed (absent or stale)", nil,
			func() float64 { return float64(c.Stats().Misses) })
		reg.CounterFunc(mCacheEvictions, "entries displaced by the LRU policy", nil,
			func() float64 { return float64(c.Stats().Evictions) })
		reg.CounterFunc(mCacheShared, "fills shared by coalesced concurrent misses", nil,
			func() float64 { return float64(c.Stats().SingleflightShared) })
		reg.GaugeFunc(mCacheBytes, "bytes resident in the hot-file cache", nil,
			func() float64 { return float64(c.Stats().UsedBytes) })
		reg.GaugeFunc(mCacheCapacity, "hot-file cache capacity", nil,
			func() float64 { return float64(c.Capacity()) })
	}
	if h := s.heat; h != nil {
		reg.CounterFunc(mHeatObservations, "served requests folded into the document-heat sketch", nil,
			func() float64 { return float64(h.Total()) })
		reg.GaugeFunc(mHeatTracked, "paths holding a document-heat sketch slot now", nil,
			func() float64 { return float64(h.Tracked()) })
	}
	if rec := s.cfg.Trace; rec.Enabled() {
		reg.CounterFunc(mTraceDropped, "trace events discarded at the capture limit", nil,
			func() float64 { return float64(rec.Dropped()) })
	}
	return m
}

// gossipGauges registers the live views of one peer's gossip state:
// staleness of its last broadcast and the load vector it advertised.
// Values are read from the loadd table at exposition time; a peer with no
// sample yet reads as -1 age and zero loads.
func (m *nodeMetrics) gossipGauges(s *Server, peer int) {
	lbl := metrics.Labels{"peer": strconv.Itoa(peer)}
	m.reg.GaugeFunc(mGossipAge, "seconds since the peer's last load broadcast (-1: none yet)",
		lbl, func() float64 { return s.table.Age(peer, s.nowSec()) })
	for _, facet := range []string{"cpu", "disk", "net"} {
		facet := facet
		flbl := metrics.Labels{"peer": strconv.Itoa(peer), "facet": facet}
		m.reg.GaugeFunc(mGossipAdvertised, "load the peer last advertised, by facet",
			flbl, func() float64 {
				smp, ok := s.table.Advertised(peer)
				if !ok {
					return 0
				}
				switch facet {
				case "cpu":
					return smp.CPULoad
				case "disk":
					return smp.DiskLoad
				default:
					return smp.NetLoad
				}
			})
	}
}

func (m *nodeMetrics) gossipInterval(peer int, seconds float64) {
	m.reg.Histogram(mGossipInterval, "gap between consecutive broadcasts received, by peer",
		metrics.Labels{"peer": strconv.Itoa(peer)}, gossipIntervalBuckets).Observe(seconds)
}

func (m *nodeMetrics) gossipDrift(facet string, delta float64) {
	if delta < 0 {
		delta = -delta
	}
	m.reg.Histogram(mGossipDrift, "|load now - load last advertised| at broadcast time, by facet",
		metrics.Labels{"facet": facet}, gossipDriftBuckets).Observe(delta)
}

func (m *nodeMetrics) event(kind trace.Kind) {
	m.reg.Counter(mEvents, "request lifecycle events by trace kind",
		metrics.Labels{"event": string(kind)}).Inc()
}

func (m *nodeMetrics) drop(cause string) {
	m.reg.Counter(mDrops, "requests not served in full, by cause",
		metrics.Labels{"cause": cause}).Inc()
}

func (m *nodeMetrics) phase(phase string, seconds float64) {
	m.reg.Histogram(mPhase, "time spent per lifecycle phase",
		metrics.Labels{"phase": phase}, nil).Observe(seconds)
}

func (m *nodeMetrics) redirect(target int) {
	m.reg.Counter(mRedirects, "302s issued, by target node",
		metrics.Labels{"target": strconv.Itoa(target)}).Inc()
}

func (m *nodeMetrics) replicaFetch(path string, source int) {
	m.reg.Counter(mReplicaFetch, "internal document fetches by source replica node",
		metrics.Labels{"path": path, "source": strconv.Itoa(source)}).Inc()
}

func (m *nodeMetrics) rebalanceAction(action string) {
	m.reg.Counter(mRebalance, "replica-set mutations applied at this node, by action",
		metrics.Labels{"action": action}).Inc()
}

// keepAliveServed observes one connection's request count at its end.
func (m *nodeMetrics) keepAliveServed(n float64) {
	m.kaServed.Observe(n)
}

// prediction accumulates one predicted/actual pair for a t_s phase
// ("cpu", "data", "total"); the cluster report divides the two sums to
// get mean predicted vs mean actual per phase.
func (m *nodeMetrics) prediction(phase string, predicted, actual float64) {
	m.reg.Counter(mSchedPredicted, "sum of broker-predicted seconds by t_s phase",
		metrics.Labels{"phase": phase}).Add(predicted)
	m.reg.Counter(mSchedActual, "sum of measured seconds by t_s phase",
		metrics.Labels{"phase": phase}).Add(actual)
}

// AuditCandidate is one row of a recorded decision's cost table — a
// core.CostBreakdown with its +Inf sentinel replaced by -1 so the audit
// survives encoding/json (which rejects infinities).
type AuditCandidate struct {
	Node            int     `json:"node"`
	SourceNode      int     `json:"source_node"` // replica the data term priced
	RedirectSeconds float64 `json:"redirect_seconds"`
	DataSeconds     float64 `json:"data_seconds"`
	CPUSeconds      float64 `json:"cpu_seconds"`
	NetSeconds      float64 `json:"net_seconds"`
	TotalSeconds    float64 `json:"total_seconds"` // -1 when infeasible
	Infeasible      bool    `json:"infeasible"`
}

// DecisionAudit records one scheduling decision next to the timings the
// node then measured — the per-request audit trail behind /sweb/status.
// ActualSeconds is -1 for redirected requests (fulfilled elsewhere).
type DecisionAudit struct {
	Seq              int64            `json:"seq"`
	AtSeconds        float64          `json:"at_seconds"`
	Path             string           `json:"path"`
	Policy           string           `json:"policy"`
	Target           int              `json:"target"`
	Redirected       bool             `json:"redirected"`
	PredictedSeconds float64          `json:"predicted_seconds"` // -1 without a finite estimate
	ActualSeconds    float64          `json:"actual_seconds"`
	ParseSeconds     float64          `json:"parse_seconds"`
	AnalyzeSeconds   float64          `json:"analyze_seconds"`
	FulfillSeconds   float64          `json:"fulfill_seconds"`
	Candidates       []AuditCandidate `json:"candidates,omitempty"`
}

func sanitizeSeconds(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

func sanitizeCandidates(cands []core.CostBreakdown) []AuditCandidate {
	if len(cands) == 0 {
		return nil
	}
	out := make([]AuditCandidate, len(cands))
	for i, cb := range cands {
		out[i] = AuditCandidate{
			Node:            cb.Node,
			SourceNode:      cb.Source,
			RedirectSeconds: sanitizeSeconds(cb.Redirect),
			DataSeconds:     sanitizeSeconds(cb.Data),
			CPUSeconds:      sanitizeSeconds(cb.CPU),
			NetSeconds:      sanitizeSeconds(cb.Net),
			TotalSeconds:    sanitizeSeconds(cb.Total),
			Infeasible:      cb.Infeasible,
		}
	}
	return out
}

// auditCap bounds the decision audit: enough recent decisions to diagnose
// a placement anomaly without letting a long run grow the status payload.
const auditCap = 128

// auditLog is a fixed-size ring of the most recent decisions.
type auditLog struct {
	mu   sync.Mutex
	seq  int64
	ring []DecisionAudit
	next int
	full bool
}

func newAuditLog(n int) *auditLog {
	return &auditLog{ring: make([]DecisionAudit, n)}
}

func (a *auditLog) add(d DecisionAudit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	d.Seq = a.seq
	a.ring[a.next] = d
	a.next++
	if a.next == len(a.ring) {
		a.next = 0
		a.full = true
	}
}

// snapshot returns the retained decisions, oldest first.
func (a *auditLog) snapshot() []DecisionAudit {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.full {
		return append([]DecisionAudit(nil), a.ring[:a.next]...)
	}
	out := make([]DecisionAudit, 0, len(a.ring))
	out = append(out, a.ring[a.next:]...)
	return append(out, a.ring[:a.next]...)
}

// recordPrediction feeds the predicted-vs-actual accumulators once a
// scheduled request finished cleanly on this node. With a full SWEB cost
// table the comparison is per phase (t_CPU vs parse+analyze, t_data+t_net
// vs fulfillment); policies that predict only a scalar (rr, cpu) compare
// totals — the report then shows exactly how blind they are, which is the
// paper's point.
func (s *Server) recordPrediction(dec core.Decision, a DecisionAudit) {
	var cb *core.CostBreakdown
	if id := s.cfg.ID; id < len(dec.Candidates) && !dec.Candidates[id].Infeasible {
		cb = &dec.Candidates[id]
	}
	switch {
	case cb != nil && !math.IsInf(cb.Total, 0):
		s.nm.prediction("cpu", cb.CPU, a.ParseSeconds+a.AnalyzeSeconds)
		s.nm.prediction("data", cb.Data+cb.Net, a.FulfillSeconds)
		s.nm.prediction("total", cb.Total, a.ActualSeconds)
		s.nm.compared.Inc()
		s.nm.absErr.Observe(math.Abs(cb.Total - a.ActualSeconds))
	case a.PredictedSeconds >= 0:
		s.nm.prediction("total", a.PredictedSeconds, a.ActualSeconds)
		s.nm.compared.Inc()
		s.nm.absErr.Observe(math.Abs(a.PredictedSeconds - a.ActualSeconds))
	}
}

// drop counts one dropped/degraded request both in the per-cause Stats
// map and the exposition counter.
func (s *Server) drop(cause string) {
	s.dropMu.Lock()
	s.dropCounts[cause]++
	s.dropMu.Unlock()
	s.nm.drop(cause)
}
