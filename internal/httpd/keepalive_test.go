package httpd

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sweb/internal/core"
	"sweb/internal/httpmsg"
	"sweb/internal/storage"
)

// dialNode opens one raw client connection with a test deadline.
func dialNode(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn
}

// keepAliveGet writes one HTTP/1.1 GET on an open connection.
func keepAliveGet(t *testing.T, conn net.Conn, method, path string, hdr map[string]string) {
	t.Helper()
	req := &httpmsg.Request{Method: method, Path: path, Proto: "HTTP/1.1", Header: httpmsg.Header{}}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
}

// TestKeepAlivePipelining drives several requests down ONE connection —
// including two written back to back before the first response is read —
// and demands every response arrive correctly framed on the same socket.
// The server must count a single accepted connection.
func TestKeepAlivePipelining(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	conn := dialNode(t, srv.Addr())
	br := bufio.NewReader(conn)

	// Two pipelined requests in one write, then a third after reading.
	keepAliveGet(t, conn, "GET", doc, nil)
	keepAliveGet(t, conn, "GET", doc, nil)
	for i := 0; i < 2; i++ {
		resp, err := httpmsg.ReadResponse(br, 1<<20)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.StatusCode != httpmsg.StatusOK || len(resp.Body) != 1024 {
			t.Fatalf("response %d: status=%d len=%d", i, resp.StatusCode, len(resp.Body))
		}
		if !resp.KeepAlive() {
			t.Fatalf("response %d not keep-alive: Connection=%q", i, resp.Header.Get("Connection"))
		}
	}
	keepAliveGet(t, conn, "GET", doc, nil)
	resp, err := httpmsg.ReadResponse(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != httpmsg.StatusOK {
		t.Fatalf("third response status = %d", resp.StatusCode)
	}

	if got := srv.Stats().Accepted; got != 1 {
		t.Fatalf("accepted = %d connections for 3 requests, want 1", got)
	}
	if got := srv.Stats().Served; got != 3 {
		t.Fatalf("served = %d, want 3", got)
	}
}

// TestKeepAliveOffClosesAfterOne: with persistent connections disabled the
// first response must announce Connection: close and the socket must die.
func TestKeepAliveOffClosesAfterOne(t *testing.T) {
	srv, doc := startSoloNode(t, func(c *Config) { c.KeepAliveOff = true })
	conn := dialNode(t, srv.Addr())
	br := bufio.NewReader(conn)
	keepAliveGet(t, conn, "GET", doc, nil)
	resp, err := httpmsg.ReadResponse(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeepAlive() {
		t.Fatalf("keep-alive granted with KeepAliveOff: Connection=%q", resp.Header.Get("Connection"))
	}
	if _, err := br.Peek(1); err == nil {
		t.Fatal("connection still open after Connection: close response")
	}
}

// TestKeepAliveMaxCapsConnection: the Nth response on a connection closes
// it when KeepAliveMax = N.
func TestKeepAliveMaxCapsConnection(t *testing.T) {
	srv, doc := startSoloNode(t, func(c *Config) { c.KeepAliveMax = 2 })
	conn := dialNode(t, srv.Addr())
	br := bufio.NewReader(conn)
	keepAliveGet(t, conn, "GET", doc, nil)
	first, err := httpmsg.ReadResponse(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !first.KeepAlive() {
		t.Fatal("first response should keep the connection")
	}
	keepAliveGet(t, conn, "GET", doc, nil)
	second, err := httpmsg.ReadResponse(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if second.KeepAlive() {
		t.Fatal("second response should close a KeepAliveMax=2 connection")
	}
}

// TestHTTP10DefaultStillCloses: a plain HTTP/1.0 request without the
// keep-alive opt-in gets the old one-shot behavior.
func TestHTTP10DefaultStillCloses(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	conn := dialNode(t, srv.Addr())
	req := &httpmsg.Request{Method: "GET", Path: doc, Header: httpmsg.Header{}}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := httpmsg.ReadResponse(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeepAlive() {
		t.Fatal("HTTP/1.0 without opt-in must not keep alive")
	}
	if _, err := br.Peek(1); err == nil {
		t.Fatal("connection still open after HTTP/1.0 response")
	}
}

// TestIdleTimeoutReapsParkedConnections: a keep-alive connection sitting
// idle past IdleTimeout is closed by the server, without a response.
func TestIdleTimeoutReapsParkedConnections(t *testing.T) {
	srv, doc := startSoloNode(t, func(c *Config) { c.IdleTimeout = 100 * time.Millisecond })
	conn := dialNode(t, srv.Addr())
	br := bufio.NewReader(conn)
	keepAliveGet(t, conn, "GET", doc, nil)
	if _, err := httpmsg.ReadResponse(br, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Park past the idle budget; the next read must see EOF, not a 400.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := br.Peek(1); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// countingListener fails every Accept, counting how often the loop asks.
type countingListener struct {
	accepts atomic.Int64
	closed  chan struct{}
}

func (l *countingListener) Accept() (net.Conn, error) {
	l.accepts.Add(1)
	select {
	case <-l.closed:
		return nil, errors.New("listener closed")
	default:
	}
	return nil, errors.New("transient accept failure")
}

func (l *countingListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *countingListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestAcceptLoopBacksOffOnError: a listener returning transient errors
// must NOT be hot-spun. The capped backoff keeps the Accept call count in
// the tens over 150ms; the old loop retried unconditionally and racked up
// hundreds of thousands.
func TestAcceptLoopBacksOffOnError(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	fake := &countingListener{closed: make(chan struct{})}
	_ = srv.ln.Close() // release the real socket; the loop gets the fake
	srv.ln = fake
	srv.wg.Add(1)
	go srv.acceptLoop()
	time.Sleep(150 * time.Millisecond)
	n := fake.accepts.Load()
	srv.Close()
	if n > 1000 {
		t.Fatalf("accept loop spun %d times in 150ms; backoff is not applied", n)
	}
	if n == 0 {
		t.Fatal("accept loop never ran")
	}
}

// startPairRR boots a two-node cluster with round-robin policy (never
// redirects, so asking the wrong node always exercises the internal fetch
// or relay path). Returns both servers and the path of the node-1 document.
func startPairRR(t *testing.T, mut func(*Config)) (*Server, *Server, string) {
	t.Helper()
	const remoteDoc = "/docs/remote.html"
	st := storage.NewStore(2)
	st.MustAdd(storage.File{Path: "/docs/local.html", Size: 2048, Owner: 0})
	st.MustAdd(storage.File{Path: remoteDoc, Size: 2048, Owner: 1})
	var srvs []*Server
	for i := 0; i < 2; i++ {
		cfg := Config{ID: i, DocRoot: t.TempDir(), Store: st, Policy: core.RoundRobin{}}
		if mut != nil {
			mut(&cfg)
		}
		for _, p := range st.Paths() {
			if o, _ := st.Owner(p); o != i {
				continue
			}
			full := filepath.Join(cfg.DocRoot, filepath.FromSlash(strings.TrimPrefix(p, "/")))
			if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(full, bytes.Repeat([]byte{'a' + byte(i)}, 2048), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		srvs = append(srvs, srv)
	}
	peers := []Peer{
		{ID: 0, HTTPAddr: srvs[0].Addr(), UDPAddr: srvs[0].UDPAddr()},
		{ID: 1, HTTPAddr: srvs[1].Addr(), UDPAddr: srvs[1].UDPAddr()},
	}
	for _, srv := range srvs {
		srv.SetPeers(peers)
		srv.Start()
	}
	return srvs[0], srvs[1], remoteDoc
}

// TestRelayedDocumentCarriesLastModified: a document fetched from its
// owner and cached on the relaying node must keep the owner's
// Last-Modified, and an If-Modified-Since revalidation against the relay
// must earn a 304. The old relay dropped the header, leaving zero-ModTime
// cache entries that could never revalidate.
func TestRelayedDocumentCarriesLastModified(t *testing.T) {
	relay, _, doc := startPairRR(t, nil)

	resp := getWith(t, relay.Addr(), doc, nil)
	if resp.StatusCode != httpmsg.StatusOK {
		t.Fatalf("relayed fetch = %d", resp.StatusCode)
	}
	lm := resp.Header.Get("Last-Modified")
	if lm == "" {
		t.Fatal("relayed response has no Last-Modified")
	}
	again := getWith(t, relay.Addr(), doc, map[string]string{"If-Modified-Since": lm})
	if again.StatusCode != httpmsg.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", again.StatusCode)
	}
	if len(again.Body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(again.Body))
	}
}

// TestRelayStreamLastModifiedAnd304: the non-materializing relay path
// (cache off) must also preserve Last-Modified and pass an
// If-Modified-Since through to the owner for a relayed 304.
func TestRelayStreamLastModifiedAnd304(t *testing.T) {
	relay, owner, doc := startPairRR(t, func(c *Config) { c.CacheOff = true })

	resp := getWith(t, relay.Addr(), doc, nil)
	if resp.StatusCode != httpmsg.StatusOK || len(resp.Body) != 2048 {
		t.Fatalf("streamed relay = %d len=%d", resp.StatusCode, len(resp.Body))
	}
	lm := resp.Header.Get("Last-Modified")
	if lm == "" {
		t.Fatal("streamed relay dropped Last-Modified")
	}
	again := getWith(t, relay.Addr(), doc, map[string]string{"If-Modified-Since": lm})
	if again.StatusCode != httpmsg.StatusNotModified {
		t.Fatalf("relayed revalidation = %d, want 304", again.StatusCode)
	}
	if owner.Stats().InternalFetch == 0 {
		t.Fatal("owner never saw the internal fetch")
	}
}

// TestUpstreamPoolReusesConnections: back-to-back relays to the same owner
// must ride one upstream connection — one dial, the rest reused.
func TestUpstreamPoolReusesConnections(t *testing.T) {
	relay, _, doc := startPairRR(t, func(c *Config) { c.CacheOff = true })
	for i := 0; i < 3; i++ {
		resp := getWith(t, relay.Addr(), doc, nil)
		if resp.StatusCode != httpmsg.StatusOK {
			t.Fatalf("fetch %d = %d", i, resp.StatusCode)
		}
	}
	st := relay.Stats()
	if st.UpstreamDials != 1 {
		t.Fatalf("upstream dials = %d for 3 relays, want 1", st.UpstreamDials)
	}
	if st.UpstreamReused != 2 {
		t.Fatalf("upstream reuses = %d for 3 relays, want 2", st.UpstreamReused)
	}
}

// TestHEADAccountsZeroBodyBytes: a HEAD response promises the full
// Content-Length but sends no body, and the byte accounting must record
// what was sent (nothing) — not the advertised size.
func TestHEADAccountsZeroBodyBytes(t *testing.T) {
	srv, doc := startSoloNode(t, nil)
	if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
		t.Fatalf("warmup = %d", st)
	}
	before := srv.Stats().BytesOut

	conn := dialNode(t, srv.Addr())
	br := bufio.NewReader(conn)
	keepAliveGet(t, conn, "HEAD", doc, nil)
	resp, err := httpmsg.ReadResponseHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != httpmsg.StatusOK {
		t.Fatalf("HEAD = %d", resp.StatusCode)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(1024) {
		t.Fatalf("HEAD Content-Length = %q, want 1024", cl)
	}
	// The connection must hold no body bytes: a keep-alive HEAD is followed
	// immediately by the next response, so answer a second request now.
	keepAliveGet(t, conn, "GET", doc, nil)
	next, err := httpmsg.ReadResponse(br, 1<<20)
	if err != nil {
		t.Fatalf("request after HEAD on same connection: %v", err)
	}
	if next.StatusCode != httpmsg.StatusOK || len(next.Body) != 1024 {
		t.Fatalf("post-HEAD GET = %d len=%d", next.StatusCode, len(next.Body))
	}
	if got := srv.Stats().BytesOut - before; got != 1024 {
		t.Fatalf("HEAD+GET accounted %d body bytes, want 1024 (HEAD must log 0)", got)
	}
}

// TestRelayMidStreamOwnerDeath pins the worst relay failure: the owner
// promises a body, sends part of it, and dies — after the relay has
// already forwarded the response header on a keep-alive connection. The
// client must see a hard truncation (never a short body dressed as
// complete), the relay must count the failed write, and the node must keep
// serving fresh connections.
func TestRelayMidStreamOwnerDeath(t *testing.T) {
	const doc = "/docs/remote.html"
	st := storage.NewStore(2)
	st.MustAdd(storage.File{Path: "/docs/local.html", Size: 1024, Owner: 0})
	st.MustAdd(storage.File{Path: doc, Size: 100000, Owner: 1})

	// The owner is a hand-rolled listener: header + partial body, then RST.
	fakeOwner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fakeOwner.Close()
	go func() {
		for {
			c, err := fakeOwner.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := httpmsg.ReadRequest(bufio.NewReader(c)); err != nil {
					return
				}
				_, _ = c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 100000\r\n\r\n"))
				_, _ = c.Write(make([]byte, 1000)) // 1% of the promise, then gone
			}(c)
		}
	}()

	cfg := Config{ID: 0, DocRoot: t.TempDir(), Store: st, Policy: core.RoundRobin{},
		CacheOff: true, FetchAttempts: 1}
	full := filepath.Join(cfg.DocRoot, "docs", "local.html")
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, make([]byte, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.SetPeers([]Peer{
		{ID: 0, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()},
		{ID: 1, HTTPAddr: fakeOwner.Addr().String(), UDPAddr: "127.0.0.1:1"},
	})
	srv.Start()

	conn := dialNode(t, srv.Addr())
	br := bufio.NewReader(conn)
	keepAliveGet(t, conn, "GET", doc, nil)
	if _, err := httpmsg.ReadResponse(br, 1<<20); err == nil {
		t.Fatal("truncated relay read as a complete response")
	}
	if srv.Stats().Drops["write_failed"] == 0 {
		t.Fatal("relay did not count the mid-stream failure")
	}
	// The node survives: a fresh connection serves the local document.
	if status, body := get(t, srv.Addr(), "/docs/local.html"); status != httpmsg.StatusOK || len(body) != 1024 {
		t.Fatalf("post-failure fetch = %d len=%d", status, len(body))
	}
}

// TestStreamResponseChunked drives the unknown-length HTTP/1.1 path
// directly: the body must arrive chunked, byte-identical, on a connection
// still marked keep-alive.
func TestStreamResponseChunked(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, server := net.Pipe()
	defer client.Close()
	body := bytes.Repeat([]byte("chunk-me-"), 12000) // > one 32K copy buffer
	rc := &reqConn{s: srv, c: server, br: bufio.NewReader(server), proto: "HTTP/1.1", keepAlive: true}
	req := &httpmsg.Request{Method: "GET", Path: "/stream.bin", Proto: "HTTP/1.1", Header: httpmsg.Header{}}
	go func() {
		defer server.Close()
		srv.streamResponse(rc, req, -1, bytes.NewReader(body), time.Time{})
	}()
	resp, err := httpmsg.ReadResponse(bufio.NewReader(client), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Chunked() {
		t.Fatalf("unknown-length 1.1 response not chunked: %+v", resp.Header)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatalf("chunked body corrupted: %d bytes, want %d", len(resp.Body), len(body))
	}
	if !resp.KeepAlive() {
		t.Fatal("chunked response should preserve keep-alive")
	}
}

// TestStreamResponseUnknownLengthHTTP10 falls back to an EOF-delimited
// body and must mark the connection close.
func TestStreamResponseUnknownLengthHTTP10(t *testing.T) {
	srv, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, server := net.Pipe()
	defer client.Close()
	body := []byte("short dynamic body")
	rc := &reqConn{s: srv, c: server, br: bufio.NewReader(server), proto: "HTTP/1.0", keepAlive: true}
	req := &httpmsg.Request{Method: "GET", Path: "/gen.txt", Header: httpmsg.Header{}}
	go func() {
		defer server.Close()
		srv.streamResponse(rc, req, -1, bytes.NewReader(body), time.Time{})
	}()
	resp, err := httpmsg.ReadResponse(bufio.NewReader(client), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeepAlive() {
		t.Fatal("EOF-delimited body cannot keep the connection")
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatalf("body = %q", resp.Body)
	}
}
