package httpd

import (
	"sweb/internal/heat"
	"sweb/internal/metrics"
)

// heatObserve folds one fulfilled request into the document-heat sketch
// and bumps the per-path metric counters the monitor's hot_doc rule
// windows, plus the replica-set-size gauge the rule divides by — so
// replicating a hot document clears the alert without the load having to
// flatten. Nil-safe via the sketch: with heat off this is a nil check.
func (s *Server) heatObserve(o heat.Observation, replicas int) {
	if s.heat == nil {
		return
	}
	s.heat.Observe(o)
	s.nm.reg.Counter(mHeatRequests, "served requests per document path",
		metrics.Labels{"path": o.Path}).Inc()
	if o.Relay {
		s.nm.reg.Counter(mHeatRelays, "requests served by fetching the document from a replica",
			metrics.Labels{"path": o.Path}).Inc()
	}
	s.nm.reg.Gauge(mHeatReplicas, "replica-set size of the document at last serve",
		metrics.Labels{"path": o.Path}).Set(float64(replicas))
}

// Heat exposes the node's document-heat sketch (nil when disabled) for
// tests and in-process scrapers.
func (s *Server) Heat() *heat.Sketch { return s.heat }

// HeatDump snapshots the heat sketch with the node identity filled in —
// the /sweb/heat payload.
func (s *Server) HeatDump() heat.Dump {
	d := s.heat.Dump()
	d.Node = s.cfg.ID
	return d
}

// hotPaths is the ranking /sweb/status surfaces: the heat sketch when
// enabled (so relay- and miss-heavy documents appear, not just cache
// residents), else the cache's LRU-derived view.
func (s *Server) hotPaths(n int) []string {
	if s.heat != nil {
		return s.heat.Hot(n)
	}
	if s.cache != nil {
		return s.cache.Hot(n)
	}
	return nil
}
