package httpd

import (
	"encoding/json"
	"strings"
	"testing"

	"sweb/internal/httpmsg"
	"sweb/internal/metrics"
	"sweb/internal/trace"
)

// TestTraceDroppedSurfaced overflows a tiny recorder and checks the dropped
// counter shows up everywhere an operator would look: /sweb/status,
// /sweb/trace, and the metrics exposition.
func TestTraceDroppedSurfaced(t *testing.T) {
	rec := trace.NewRecorder(6) // one request records 5 events; two overflow
	srv, doc := startSoloNode(t, func(c *Config) { c.Trace = rec })
	for i := 0; i < 2; i++ {
		if st, _ := get(t, srv.Addr(), doc); st != httpmsg.StatusOK {
			t.Fatalf("document fetch = %d", st)
		}
	}
	if rec.Dropped() == 0 {
		t.Fatal("recorder did not overflow; the test premise is wrong")
	}

	status, body := get(t, srv.Addr(), "/sweb/status")
	if status != httpmsg.StatusOK {
		t.Fatalf("/sweb/status = %d", status)
	}
	var rep StatusReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("status payload: %v", err)
	}
	if !rep.Trace.Enabled || rep.Trace.Events != 6 || rep.Trace.Dropped != rec.Dropped() {
		t.Fatalf("status trace block = %+v, recorder dropped %d", rep.Trace, rec.Dropped())
	}
	if rep.Trace.EpochUnix <= 0 {
		t.Fatalf("status trace epoch = %v, want a Unix timestamp", rep.Trace.EpochUnix)
	}

	status, body = get(t, srv.Addr(), "/sweb/trace")
	if status != httpmsg.StatusOK {
		t.Fatalf("/sweb/trace = %d", status)
	}
	var dump TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("trace payload: %v", err)
	}
	if dump.Node != 0 || !dump.Enabled || len(dump.Events) != 6 || dump.Dropped != rec.Dropped() {
		t.Fatalf("trace dump node=%d enabled=%v events=%d dropped=%d",
			dump.Node, dump.Enabled, len(dump.Events), dump.Dropped)
	}

	_, body = get(t, srv.Addr(), "/sweb/metrics")
	samples, err := metrics.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := metrics.Value(samples, "sweb_trace_dropped_total", nil); !ok || v != float64(rec.Dropped()) {
		t.Fatalf("sweb_trace_dropped_total = %v (found=%v), want %d", v, ok, rec.Dropped())
	}
}

// TestTraceEndpointWithoutRecorder: an untraced node still answers
// /sweb/trace, reporting tracing disabled.
func TestTraceEndpointWithoutRecorder(t *testing.T) {
	srv, _ := startSoloNode(t, nil)
	status, body := get(t, srv.Addr(), "/sweb/trace")
	if status != httpmsg.StatusOK {
		t.Fatalf("/sweb/trace = %d", status)
	}
	var dump TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Enabled || len(dump.Events) != 0 {
		t.Fatalf("untraced dump = %+v", dump)
	}
}
