package httpd

import (
	"bytes"
	"encoding/json"
	"errors"
	"sort"
	"strconv"
	"time"

	"sweb/internal/flight"
)

// flightTraceTail bounds the trace dump written into snapshot bundles: the
// recorder can hold up to a million events, far more than a postmortem
// needs and enough to dominate the bundle size.
const flightTraceTail = 4096

// flightAdd fills the per-connection and timing fields of a flight record
// and appends it — the single funnel every request path exits through.
// Nil-safe via the recorder: with the recorder off this is a nil check.
func (s *Server) flightAdd(rc *reqConn, fl flight.Record, t0 time.Time, status int) {
	if s.flight == nil {
		return
	}
	fl.Node = s.cfg.ID
	fl.ConnID = rc.id
	fl.AtSeconds = s.sinceEpoch(t0)
	fl.Status = status
	fl.TotalSeconds = time.Since(t0).Seconds()
	fl.Bytes = rc.meter.written
	fl.TTFBSeconds = -1
	if !rc.meter.firstWrite.IsZero() {
		fl.TTFBSeconds = rc.meter.firstWrite.Sub(t0).Seconds()
	}
	if fl.PredictedSeconds == 0 {
		fl.PredictedSeconds = -1
	}
	s.flight.Add(fl)
}

// FlightRecorder exposes the node's flight recorder (nil when disabled)
// for tests and in-process scrapers.
func (s *Server) FlightRecorder() *flight.Recorder { return s.flight }

// FlightDump snapshots the flight rings with the node identity and epoch
// filled in — the /sweb/flight payload.
func (s *Server) FlightDump() flight.Dump {
	d := s.flight.Dump()
	d.Node = s.cfg.ID
	d.EpochUnix = float64(s.epoch.UnixNano()) / 1e9
	return d
}

// ConnState is one tracked connection's row in the conn-table snapshot.
type ConnState struct {
	ID         int64   `json:"id"`
	Remote     string  `json:"remote"`
	AgeSeconds float64 `json:"age_seconds"`
	Served     int64   `json:"served"`
	Active     bool    `json:"active"`
}

// ConnTable snapshots every open client connection, ordered by id — the
// "which conn wedged" view a snapshot bundle preserves.
func (s *Server) ConnTable() []ConnState {
	now := time.Now()
	s.connMu.Lock()
	out := make([]ConnState, 0, len(s.conns))
	for _, ci := range s.conns {
		out = append(out, ConnState{
			ID:         ci.id,
			Remote:     ci.remote,
			AgeSeconds: now.Sub(ci.opened).Seconds(),
			Served:     ci.served.Load(),
			Active:     ci.active.Load(),
		})
	}
	s.connMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// connCounts splits the tracked connections into active (a request
// mid-lifecycle) and idle (parked between requests) — the per-state view
// the conflated sweb_inflight gauge could not give.
func (s *Server) connCounts() (active, idle int) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for _, ci := range s.conns {
		if ci.active.Load() {
			active++
		} else {
			idle++
		}
	}
	return active, idle
}

// SnapshotState gathers everything this node contributes to a diagnostic
// bundle: its metrics exposition, status report, a bounded trace tail,
// the flight rings, and the conn table.
func (s *Server) SnapshotState() flight.NodeState {
	ns := flight.NodeState{Name: nodeName(s.cfg.ID), Flight: s.FlightDump(),
		Heat: s.HeatDump(), Conns: s.ConnTable()}
	var buf bytes.Buffer
	if err := s.nm.reg.WriteText(&buf); err == nil {
		ns.Metrics = append([]byte(nil), buf.Bytes()...)
	}
	if b, err := json.MarshalIndent(s.StatusReport(), "", "  "); err == nil {
		ns.Status = b
	}
	if s.cfg.Trace.Enabled() {
		td := s.TraceDump()
		td.Events = s.cfg.Trace.Tail(flightTraceTail)
		if b, err := json.Marshal(td); err == nil {
			ns.Trace = b
		}
	}
	return ns
}

func nodeName(id int) string { return "node" + strconv.Itoa(id) }

// WriteSnapshot writes a single-node diagnostic bundle under the
// configured SnapshotDir — the /sweb/snapshot and swebd on-demand path.
// Cross-node bundles are the cluster harness's job (live.Cluster).
func (s *Server) WriteSnapshot(reason string) (string, error) {
	if s.cfg.SnapshotDir == "" {
		return "", errors.New("httpd: no snapshot directory configured")
	}
	return flight.Snapshot(flight.SnapshotOptions{Dir: s.cfg.SnapshotDir, Reason: reason},
		[]flight.NodeState{s.SnapshotState()})
}

// Closed reports whether the server has been shut down.
func (s *Server) Closed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}
