package httpd

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sweb/internal/trace"
)

// randQuery builds a random client query string: 0..5 ordinary parameters,
// sometimes with stale swebr/swebt entries mixed in (as a second hop sees).
func randQuery(rng *rand.Rand) (query string, ordinary []string) {
	var parts []string
	for i, n := 0, rng.Intn(6); i < n; i++ {
		kv := fmt.Sprintf("k%d=v%d", rng.Intn(10), rng.Intn(100))
		parts = append(parts, kv)
		ordinary = append(ordinary, kv)
	}
	if rng.Intn(2) == 0 {
		parts = append(parts, fmt.Sprintf("swebr=%d", rng.Intn(4)))
	}
	if rng.Intn(2) == 0 {
		parts = append(parts, fmt.Sprintf("swebt=stale%d:%d", rng.Intn(100), rng.Int63n(1e12)))
	}
	rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	// The shuffle must not reorder the ordinary params relative to each
	// other as far as the property cares, so recollect them in output order.
	ordinary = ordinary[:0]
	for _, kv := range parts {
		if !strings.HasPrefix(kv, "swebr=") && !strings.HasPrefix(kv, "swebt=") {
			ordinary = append(ordinary, kv)
		}
	}
	return strings.Join(parts, "&"), ordinary
}

// TestRedirectLocationProperty: for random queries, hop counts, and trace
// contexts, redirectLocation must preserve every ordinary parameter in
// order, carry exactly one swebr and (when tracing) one swebt, and both
// must round-trip through parseRedirectCount / parseTraceContext
// uncorrupted — including across a second hop fed its own output.
func TestRedirectLocationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		query, ordinary := randQuery(rng)
		redirects := rng.Intn(3)
		var tctx string
		wantID := trace.TraceID("")
		wantMicros := int64(0)
		if rng.Intn(4) > 0 {
			wantID = trace.TraceID(fmt.Sprintf("t%08x", rng.Uint32()))
			if rng.Intn(2) == 0 {
				wantMicros = 1 + rng.Int63n(1e15)
			}
			tctx = formatTraceContext(wantID, wantMicros)
		}

		loc := redirectLocation("peer:80", "/doc", query, redirects, tctx)
		rest, ok := strings.CutPrefix(loc, "http://peer:80/doc?")
		if !ok {
			t.Fatalf("case %d: malformed location %q", i, loc)
		}
		checkThreading(t, i, rest, ordinary, redirects+1, wantID, wantMicros)

		// Second hop: the target node rebuilds the URL from the query it
		// received; the counter bumps again, the context is re-stamped.
		micros2 := int64(0)
		if wantID != "" {
			micros2 = 1 + rng.Int63n(1e15)
		}
		loc2 := redirectLocation("other:81", "/doc", rest, parseRedirectCount(rest),
			formatTraceContext(wantID, micros2))
		rest2, ok := strings.CutPrefix(loc2, "http://other:81/doc?")
		if !ok {
			t.Fatalf("case %d: malformed second-hop location %q", i, loc2)
		}
		checkThreading(t, i, rest2, ordinary, redirects+2, wantID, micros2)
	}
}

// checkThreading asserts the threading invariants on one rebuilt query.
func checkThreading(t *testing.T, i int, query string, ordinary []string,
	wantRedirects int, wantID trace.TraceID, wantMicros int64) {
	t.Helper()
	var gotOrdinary []string
	swebr, swebt := 0, 0
	for _, kv := range strings.Split(query, "&") {
		switch {
		case strings.HasPrefix(kv, "swebr="):
			swebr++
		case strings.HasPrefix(kv, "swebt="):
			swebt++
		default:
			gotOrdinary = append(gotOrdinary, kv)
		}
	}
	if fmt.Sprint(gotOrdinary) != fmt.Sprint(ordinary) {
		t.Fatalf("case %d: ordinary params corrupted: got %v want %v (query %q)",
			i, gotOrdinary, ordinary, query)
	}
	if swebr != 1 {
		t.Fatalf("case %d: %d swebr params in %q, want exactly 1", i, swebr, query)
	}
	if got := parseRedirectCount(query); got != wantRedirects {
		t.Fatalf("case %d: redirect count %d, want %d (query %q)", i, got, wantRedirects, query)
	}
	if wantID == "" {
		if swebt != 0 {
			t.Fatalf("case %d: untraced redirect still carries swebt: %q", i, query)
		}
		return
	}
	if swebt != 1 {
		t.Fatalf("case %d: %d swebt params in %q, want exactly 1", i, swebt, query)
	}
	id, micros, ok := parseTraceContext(query)
	if !ok || id != wantID || micros != wantMicros {
		t.Fatalf("case %d: trace context round-trip got (%q, %d, %v), want (%q, %d)",
			i, id, micros, ok, wantID, wantMicros)
	}
}
