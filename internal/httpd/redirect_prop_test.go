package httpd

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sweb/internal/httpmsg"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// randQuery builds a random client query string: 0..5 ordinary parameters,
// sometimes with stale swebr/swebt entries mixed in (as a second hop sees).
func randQuery(rng *rand.Rand) (query string, ordinary []string) {
	var parts []string
	for i, n := 0, rng.Intn(6); i < n; i++ {
		kv := fmt.Sprintf("k%d=v%d", rng.Intn(10), rng.Intn(100))
		parts = append(parts, kv)
		ordinary = append(ordinary, kv)
	}
	if rng.Intn(2) == 0 {
		parts = append(parts, fmt.Sprintf("swebr=%d", rng.Intn(4)))
	}
	if rng.Intn(2) == 0 {
		parts = append(parts, fmt.Sprintf("swebt=stale%d:%d", rng.Intn(100), rng.Int63n(1e12)))
	}
	rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	// The shuffle must not reorder the ordinary params relative to each
	// other as far as the property cares, so recollect them in output order.
	ordinary = ordinary[:0]
	for _, kv := range parts {
		if !strings.HasPrefix(kv, "swebr=") && !strings.HasPrefix(kv, "swebt=") {
			ordinary = append(ordinary, kv)
		}
	}
	return strings.Join(parts, "&"), ordinary
}

// TestRedirectLocationProperty: for random queries, hop counts, and trace
// contexts, redirectLocation must preserve every ordinary parameter in
// order, carry exactly one swebr and (when tracing) one swebt, and both
// must round-trip through parseRedirectCount / parseTraceContext
// uncorrupted — including across a second hop fed its own output.
func TestRedirectLocationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		query, ordinary := randQuery(rng)
		redirects := rng.Intn(3)
		var tctx string
		wantID := trace.TraceID("")
		wantMicros := int64(0)
		if rng.Intn(4) > 0 {
			wantID = trace.TraceID(fmt.Sprintf("t%08x", rng.Uint32()))
			if rng.Intn(2) == 0 {
				wantMicros = 1 + rng.Int63n(1e15)
			}
			tctx = formatTraceContext(wantID, wantMicros)
		}

		loc := redirectLocation("peer:80", "/doc", query, redirects, tctx)
		rest, ok := strings.CutPrefix(loc, "http://peer:80/doc?")
		if !ok {
			t.Fatalf("case %d: malformed location %q", i, loc)
		}
		checkThreading(t, i, rest, ordinary, redirects+1, wantID, wantMicros)

		// Second hop: the target node rebuilds the URL from the query it
		// received; the counter bumps again, the context is re-stamped.
		micros2 := int64(0)
		if wantID != "" {
			micros2 = 1 + rng.Int63n(1e15)
		}
		loc2 := redirectLocation("other:81", "/doc", rest, parseRedirectCount(rest),
			formatTraceContext(wantID, micros2))
		rest2, ok := strings.CutPrefix(loc2, "http://other:81/doc?")
		if !ok {
			t.Fatalf("case %d: malformed second-hop location %q", i, loc2)
		}
		checkThreading(t, i, rest2, ordinary, redirects+2, wantID, micros2)
	}
}

// TestRedirectLocationEscapesPath: a Location header is one line of the
// response — a path with spaces (or any byte needing escaping) must leave
// percent-encoded, and decoding the escaped form must round-trip to the
// original path. The old code pasted the raw path into the URL; a client
// following "GET /a b.html?swebr=1" then produced an unparseable request
// line at the target node.
func TestRedirectLocationEscapesPath(t *testing.T) {
	cases := []string{
		"/a b.html",
		"/dir with spaces/doc.txt",
		"/percent%file",
		"/q?.html",
		"/plain/doc.html",
	}
	for _, path := range cases {
		loc := redirectLocation("peer:80", path, "", 0, "")
		rest, ok := strings.CutPrefix(loc, "http://peer:80")
		if !ok {
			t.Fatalf("malformed location %q", loc)
		}
		escaped := rest[:strings.IndexByte(rest, '?')]
		for _, bad := range []byte{' ', '?', '"'} {
			if strings.IndexByte(escaped, bad) >= 0 {
				t.Errorf("Location path %q for %q contains unescaped %q", escaped, path, bad)
			}
		}
		decoded, err := httpmsg.DecodePath(escaped)
		if err != nil {
			t.Errorf("escaped path %q does not decode: %v", escaped, err)
			continue
		}
		if decoded != path {
			t.Errorf("escape round trip: %q -> %q -> %q", path, escaped, decoded)
		}
	}
}

// TestEscapedRedirectFollowThrough drives the full hop for a space-laden
// path: the serving node's 302 must be followable verbatim — the target
// parses the escaped path from the request line back to the same document.
func TestEscapedRedirectFollowThrough(t *testing.T) {
	const doc = "/spaced dir/a b.html"
	st := storage.NewStore(1)
	st.MustAdd(storage.File{Path: doc, Size: 512, Owner: 0})
	cfg := Config{ID: 0, DocRoot: t.TempDir(), Store: st}
	full := filepath.Join(cfg.DocRoot, "spaced dir", "a b.html")
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, make([]byte, 512), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.SetPeers([]Peer{{ID: 0, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()}})
	srv.Start()

	// The exact URL a 302 would carry for this document: escaped path plus
	// the bumped redirect counter. A client replays it verbatim as the
	// request target, and the node must parse it back to the document.
	loc := redirectLocation(srv.Addr(), doc, "", 0, "")
	rest := strings.TrimPrefix(loc, "http://"+srv.Addr())
	conn := dialNode(t, srv.Addr())
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\n\r\n", rest)
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != httpmsg.StatusOK || len(resp.Body) != 512 {
		t.Fatalf("follow-through = %d len=%d (target %q)", resp.StatusCode, len(resp.Body), rest)
	}
}

// checkThreading asserts the threading invariants on one rebuilt query.
func checkThreading(t *testing.T, i int, query string, ordinary []string,
	wantRedirects int, wantID trace.TraceID, wantMicros int64) {
	t.Helper()
	var gotOrdinary []string
	swebr, swebt := 0, 0
	for _, kv := range strings.Split(query, "&") {
		switch {
		case strings.HasPrefix(kv, "swebr="):
			swebr++
		case strings.HasPrefix(kv, "swebt="):
			swebt++
		default:
			gotOrdinary = append(gotOrdinary, kv)
		}
	}
	if fmt.Sprint(gotOrdinary) != fmt.Sprint(ordinary) {
		t.Fatalf("case %d: ordinary params corrupted: got %v want %v (query %q)",
			i, gotOrdinary, ordinary, query)
	}
	if swebr != 1 {
		t.Fatalf("case %d: %d swebr params in %q, want exactly 1", i, swebr, query)
	}
	if got := parseRedirectCount(query); got != wantRedirects {
		t.Fatalf("case %d: redirect count %d, want %d (query %q)", i, got, wantRedirects, query)
	}
	if wantID == "" {
		if swebt != 0 {
			t.Fatalf("case %d: untraced redirect still carries swebt: %q", i, query)
		}
		return
	}
	if swebt != 1 {
		t.Fatalf("case %d: %d swebt params in %q, want exactly 1", i, swebt, query)
	}
	id, micros, ok := parseTraceContext(query)
	if !ok || id != wantID || micros != wantMicros {
		t.Fatalf("case %d: trace context round-trip got (%q, %d, %v), want (%q, %d)",
			i, id, micros, ok, wantID, wantMicros)
	}
}
