// Package httpd is the live SWEB node: a from-scratch HTTP server (in the
// mold of the NCSA httpd 1.3 that SWEB was built on, extended with
// HTTP/1.1 persistent connections) that runs the paper's four-phase
// request lifecycle — preprocess, analyze, redirect, fulfill — against
// real TCP sockets, with the same core scheduling policies and loadd
// tables as the simulator, gossiping load over UDP. File locality is real:
// each node serves its own document root and fetches documents it does not
// own from the owning peer over pooled internal HTTP connections (the
// NFS-cross-mount stand-in).
package httpd

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sweb/internal/accesslog"
	"sweb/internal/cache"
	"sweb/internal/core"
	"sweb/internal/flight"
	"sweb/internal/heat"
	"sweb/internal/loadd"
	"sweb/internal/oracle"
	"sweb/internal/retry"
	"sweb/internal/slo"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// Peer identifies one cluster member.
type Peer struct {
	ID       int
	HTTPAddr string // host:port of the peer's HTTP listener
	UDPAddr  string // host:port of the peer's loadd socket
}

// CGIFunc is a registered dynamic endpoint ("any CGI's executed as
// needed"). It receives the query string and optional POST body and
// returns the response body and content type.
type CGIFunc func(query string, body []byte) (out []byte, contentType string)

// Config describes one live node.
type Config struct {
	// ID is this node's index in the cluster.
	ID int
	// Addr is the HTTP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// UDPAddr is the loadd listen address ("127.0.0.1:0" for ephemeral).
	UDPAddr string
	// DocRoot is the directory holding the documents this node owns.
	DocRoot string
	// Store is the cluster-wide ownership map.
	Store *storage.Store
	// Policy decides request placement (default: SWEB with Params).
	Policy core.Policy
	// Params tunes the scheduler (default core.DefaultParams).
	Params core.Params
	// HaveParams marks Params as intentionally set.
	HaveParams bool
	// Oracle characterizes requests (default table).
	Oracle *oracle.Oracle
	// LoaddPeriod is the broadcast interval (default 2500ms ± jitter).
	LoaddPeriod time.Duration
	// LoaddTimeout silences a peer (default 8s).
	LoaddTimeout time.Duration
	// MaxConcurrent is the accept capacity; beyond it connections get 503
	// (default 256).
	MaxConcurrent int

	// IdleTimeout is how long a keep-alive connection may sit idle between
	// requests before the server closes it (default 15s).
	IdleTimeout time.Duration
	// KeepAliveMax caps the requests served per connection before the
	// server answers Connection: close (default 100; <0 means unlimited).
	KeepAliveMax int
	// KeepAliveOff disables persistent connections entirely: every
	// response carries Connection: close, restoring the one-request-per-
	// connection behavior. The -keepalive=false ablation switch.
	KeepAliveOff bool

	// FetchAttempts is the attempt budget for internal fetches against a
	// document's owner (default 3; 1 disables retry).
	FetchAttempts int
	// FetchBackoff is the base delay between internal-fetch attempts; it
	// doubles per failure with ±20% jitter (default 100ms).
	FetchBackoff time.Duration
	// FetchTimeout is the per-attempt dial timeout for internal fetches
	// (default 5s).
	FetchTimeout time.Duration
	// RetryAfterHint is the Retry-After value stamped on degraded 503
	// responses (default 2s).
	RetryAfterHint time.Duration
	// FailureLimit is the consecutive data-path failure count at which a
	// peer is scheduled around even if its broadcasts still look fresh
	// (default loadd.DefaultFailureLimit).
	FailureLimit int

	// CacheBytes is the hot-file memory cache capacity (default
	// DefaultCacheBytes). Documents at most this size are kept in memory
	// after their first read — local disk reads and remote-fetch results
	// alike — and served without touching the disk or the owner again
	// until they are evicted or the backing file changes.
	CacheBytes int64
	// CacheOff disables the hot-file cache entirely: every request pays
	// the full b1 disk (or internal-fetch) cost, as before the cache
	// existed. The -cache-off ablation switch.
	CacheOff bool

	// DialDelay, when non-nil, is consulted before every internal-fetch
	// dial and the returned duration slept — fault injection for tests.
	DialDelay func() time.Duration
	// DropBroadcast, when non-nil, reports whether to drop an outgoing
	// loadd datagram — fault injection for tests.
	DropBroadcast func() bool

	// Capabilities advertised in load broadcasts. Defaults describe the
	// host loosely; they only need to be consistent across the cluster.
	CPUOpsPerSec    float64
	DiskBytesPerSec float64
	NetBytesPerSec  float64

	// AccessLog, when non-nil, receives one NCSA Common Log Format line
	// per handled request. Flush it before reading.
	AccessLog *accesslog.Logger

	// Trace, when non-nil, receives the same lifecycle events the
	// simulator emits (connected → parsed → analyzed → redirected /
	// fetch-local / fetch-nfs / cgi → sent), timed in seconds since the
	// server's epoch. A nil recorder costs nothing on the hot path.
	Trace *trace.Recorder
	// Epoch is the zero point of the node's trace clock. Zero means "now"
	// (New's call time); a cluster harness sets one shared instant so all
	// nodes' event streams stitch without alignment, and the collector
	// aligns independently-started nodes via their advertised epochs.
	Epoch time.Time
	// DisableIntrospection turns off the /sweb/status and /sweb/metrics
	// endpoints (served by default on the main listener).
	DisableIntrospection bool

	// FlightRing sizes the flight recorder's recent ring (default
	// flight.DefaultCap); FlightNotable sizes the always-retained
	// slow/error ring (default flight.DefaultNotableCap).
	FlightRing    int
	FlightNotable int
	// FlightOff disables the flight recorder entirely — the ablation
	// switch for measuring its overhead.
	FlightOff bool
	// SlowThreshold routes requests slower than this into the notable
	// ring (default 1s; negative disables slow routing, errors are still
	// retained).
	SlowThreshold time.Duration
	// HeatK sizes the document-heat sketch: the number of hottest paths
	// tracked per node (default heat.DefaultK).
	HeatK int
	// HeatOff disables per-document heat telemetry entirely — the
	// ablation switch for measuring the sketch update's overhead.
	HeatOff bool
	// SnapshotDir, when set, enables diagnostic snapshot bundles: the
	// /sweb/snapshot endpoint and alert-triggered captures write
	// timestamped bundle directories under it.
	SnapshotDir string
	// SLO is the node's service-level objectives, reported on /sweb/slo
	// against the registry's lifetime counters (slo.DefaultObjectives when
	// empty). Rolling-window budgets and burn-rate alerts are the cluster
	// monitor's job; this is the per-node accounting view.
	SLO []slo.Objective
	// ExemplarOff skips stamping histogram exemplars on traced successes —
	// the ablation switch for measuring the exemplar path's overhead.
	ExemplarOff bool
}

func (c *Config) fillDefaults() error {
	if c.Store == nil {
		return fmt.Errorf("httpd: Config.Store is required")
	}
	if c.DocRoot == "" {
		return fmt.Errorf("httpd: Config.DocRoot is required")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if !c.HaveParams {
		c.Params = core.DefaultParams()
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		c.Policy = core.NewSWEB(c.Params)
	}
	if c.Oracle == nil {
		c.Oracle = oracle.New(oracle.DefaultDemand())
	}
	if c.LoaddPeriod == 0 {
		c.LoaddPeriod = 2500 * time.Millisecond
	}
	if c.LoaddTimeout == 0 {
		c.LoaddTimeout = 8 * time.Second
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 256
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 15 * time.Second
	}
	if c.KeepAliveMax == 0 {
		c.KeepAliveMax = 100
	}
	if c.FetchAttempts == 0 {
		c.FetchAttempts = 3
	}
	if c.FetchBackoff == 0 {
		c.FetchBackoff = 100 * time.Millisecond
	}
	if c.FetchTimeout == 0 {
		c.FetchTimeout = 5 * time.Second
	}
	if c.RetryAfterHint == 0 {
		c.RetryAfterHint = 2 * time.Second
	}
	if c.FailureLimit == 0 {
		c.FailureLimit = loadd.DefaultFailureLimit
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.CPUOpsPerSec == 0 {
		c.CPUOpsPerSec = 40e6
	}
	if c.DiskBytesPerSec == 0 {
		c.DiskBytesPerSec = 5e6
	}
	if c.NetBytesPerSec == 0 {
		c.NetBytesPerSec = 5e6
	}
	return nil
}

// Stats are the server's cumulative counters (Inflight and RequestsActive
// are the only instantaneous values: open connections and requests being
// processed right now — under keep-alive the two diverge). Drops maps a
// degradation cause ("shed", "bad_request", "not_found",
// "owner_unreachable", ...) to its count — the same cells the
// sweb_drops_total metric exposes.
type Stats struct {
	Accepted       int64            `json:"accepted"`
	Refused        int64            `json:"refused"`
	Served         int64            `json:"served"`
	Redirected     int64            `json:"redirected"`
	InternalFetch  int64            `json:"internal_fetch"`
	Errors         int64            `json:"errors"`
	BadRequests    int64            `json:"bad_requests"`
	NotFound       int64            `json:"not_found"`
	FetchFailed    int64            `json:"fetch_failed"`
	Introspect     int64            `json:"introspect"`
	BytesOut       int64            `json:"bytes_out"`
	Inflight       int64            `json:"inflight"`
	RequestsActive int64            `json:"requests_active"`
	UpstreamDials  int64            `json:"upstream_dials"`
	UpstreamReused int64            `json:"upstream_reused"`
	Broadcasts     int64            `json:"broadcasts"`
	SamplesHeard   int64            `json:"samples_heard"`
	IdleReaped     int64            `json:"idle_reaped"`
	Drops          map[string]int64 `json:"drops,omitempty"`
}

// DefaultCacheBytes is the default hot-file cache capacity: 64 MB, a
// 2× oversubscription of the Meiko node's 32 MB RAM scaled to a modern
// host — big enough to hold a paper-style hot set of 1.5 MB documents.
const DefaultCacheBytes int64 = 64 << 20

// Server is one live SWEB node.
type Server struct {
	cfg   Config
	ln    net.Listener
	udp   *net.UDPConn
	table *loadd.Table
	epoch time.Time

	// cache is the hot-file memory cache; nil when Config.CacheOff.
	cache *cache.Cache

	peersMu sync.RWMutex
	peers   map[int]Peer

	// inflight counts open client connections (the shed signal);
	// reqActive counts requests mid-lifecycle (the load signal). Under
	// keep-alive a parked idle connection holds inflight but not
	// reqActive.
	inflight   atomic.Int64
	reqActive  atomic.Int64
	diskActive atomic.Int64
	netActive  atomic.Int64

	// conns tracks open client connections so drain and close can wake
	// ones parked in idle keep-alive reads, and carries the per-connection
	// state the flight recorder and the conn-table snapshot read.
	connMu  sync.Mutex
	conns   map[net.Conn]*connInfo
	connSeq atomic.Int64 // connection ids, monotone per node

	// flight is the request black box; nil when Config.FlightOff.
	flight     *flight.Recorder
	idleReaped atomic.Int64

	// heat is the per-document heavy-hitter sketch; nil when
	// Config.HeatOff.
	heat *heat.Sketch

	// ups pools idle internal-fetch connections per peer.
	ups                           *upstreamPool
	upstreamDials, upstreamReused atomic.Int64

	accepted, refused, served, redirected atomic.Int64
	internalFetch, errors, bytesOut       atomic.Int64
	broadcasts, samplesHeard              atomic.Int64
	badRequests, notFound                 atomic.Int64
	fetchFailed, introspect               atomic.Int64

	dropMu     sync.Mutex
	dropCounts map[string]int64

	nm    *nodeMetrics
	audit *auditLog

	// lastAdvertised is the previous broadcast's sample, for the
	// advertised-vs-now drift histograms. Touched only by the broadcast
	// goroutine.
	lastAdvertised     loadd.Sample
	haveLastAdvertised bool

	cgiMu sync.RWMutex
	cgi   map[string]CGIFunc

	closed   chan struct{}
	draining chan struct{}
	closeMu  sync.Mutex
	wg       sync.WaitGroup
}

// New binds the node's HTTP and UDP sockets but does not serve yet; read
// the bound addresses with Addr/UDPAddr, distribute them as peers, then
// call SetPeers and Start.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("httpd: listen %s: %w", cfg.Addr, err)
	}
	uaddr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("httpd: resolve %s: %w", cfg.UDPAddr, err)
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("httpd: udp listen %s: %w", cfg.UDPAddr, err)
	}
	epoch := cfg.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}
	s := &Server{
		cfg:        cfg,
		ln:         ln,
		udp:        udp,
		table:      newHealthTable(cfg),
		epoch:      epoch,
		peers:      make(map[int]Peer),
		cgi:        make(map[string]CGIFunc),
		closed:     make(chan struct{}),
		draining:   make(chan struct{}),
		dropCounts: make(map[string]int64),
		audit:      newAuditLog(auditCap),
		conns:      make(map[net.Conn]*connInfo),
		ups:        newUpstreamPool(0),
	}
	if !cfg.CacheOff {
		s.cache = cache.New(cfg.CacheBytes)
	}
	if !cfg.FlightOff {
		fcfg := flight.Config{Cap: cfg.FlightRing, NotableCap: cfg.FlightNotable}
		switch {
		case cfg.SlowThreshold < 0:
			fcfg.SlowSeconds = -1
		case cfg.SlowThreshold > 0:
			fcfg.SlowSeconds = cfg.SlowThreshold.Seconds()
		}
		s.flight = flight.New(fcfg)
	}
	if !cfg.HeatOff {
		// Before newNodeMetrics: the sweb_heat_* closures read it.
		s.heat = heat.New(heat.Config{K: cfg.HeatK})
	}
	s.nm = newNodeMetrics(s)
	return s, nil
}

// Cache exposes the node's hot-file cache (nil when disabled) for tests
// and the status report.
func (s *Server) Cache() *cache.Cache { return s.cache }

// newHealthTable builds the loadd table with the configured data-path
// failure threshold.
func newHealthTable(cfg Config) *loadd.Table {
	t := loadd.NewTable(cfg.ID, cfg.LoaddTimeout.Seconds(), cfg.Params.Delta)
	t.SetFailureLimit(cfg.FailureLimit)
	return t
}

// ID returns the node id.
func (s *Server) ID() int { return s.cfg.ID }

// Addr returns the bound HTTP address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// UDPAddr returns the bound loadd address.
func (s *Server) UDPAddr() string { return s.udp.LocalAddr().String() }

// Epoch returns the zero point of the node's trace clock.
func (s *Server) Epoch() time.Time { return s.epoch }

// SetPeers installs the cluster membership (including this node) and
// registers the per-peer gossip gauges — the scheduler's decision inputs
// (broadcast staleness, advertised loads) become scrapeable the moment the
// membership is known. The registry dedups, so re-installing peers after a
// membership change is safe.
func (s *Server) SetPeers(peers []Peer) {
	s.peersMu.Lock()
	for _, p := range peers {
		s.peers[p.ID] = p
	}
	s.peersMu.Unlock()
	for _, p := range peers {
		if p.ID == s.cfg.ID {
			continue
		}
		s.nm.gossipGauges(s, p.ID)
	}
}

// RegisterCGI installs a dynamic endpoint at path.
func (s *Server) RegisterCGI(path string, fn CGIFunc) {
	s.cgiMu.Lock()
	defer s.cgiMu.Unlock()
	s.cgi[path] = fn
}

func (s *Server) cgiFor(path string) (CGIFunc, bool) {
	s.cgiMu.RLock()
	defer s.cgiMu.RUnlock()
	fn, ok := s.cgi[path]
	return fn, ok
}

// Start launches the accept loop, the loadd broadcaster, and the loadd
// listener.
func (s *Server) Start() {
	s.wg.Add(3)
	go s.acceptLoop()
	go s.broadcastLoop()
	go s.listenLoop()
}

// connInfo is the tracked state of one open client connection, shared by
// its serve loop and the conn-table snapshot.
type connInfo struct {
	id     int64
	opened time.Time
	remote string
	served atomic.Int64
	active atomic.Bool // a request is mid-lifecycle right now
}

// trackConn registers an open client connection for drain/close wakeups
// and assigns its node-unique id.
func (s *Server) trackConn(c net.Conn) *connInfo {
	ci := &connInfo{id: s.connSeq.Add(1), opened: time.Now()}
	if addr := c.RemoteAddr(); addr != nil {
		ci.remote = addr.String()
	}
	s.connMu.Lock()
	s.conns[c] = ci
	s.connMu.Unlock()
	return ci
}

func (s *Server) untrackConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// nudgeConns expires every tracked connection's read deadline so serve
// loops parked in idle keep-alive reads wake immediately instead of
// sitting out the idle timeout during drain.
func (s *Server) nudgeConns() {
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
}

// closeConns force-closes every tracked connection (the hard-stop path).
func (s *Server) closeConns() {
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
}

// Close shuts the node down and waits for its goroutines. Open keep-alive
// connections are force-closed — Close is the hard stop; Shutdown drains.
func (s *Server) Close() {
	s.closeMu.Lock()
	select {
	case <-s.closed:
		s.closeMu.Unlock()
		return
	default:
		close(s.closed)
	}
	s.closeMu.Unlock()
	s.ln.Close()
	s.udp.Close()
	s.ups.closeAll()
	s.closeConns()
	s.wg.Wait()
}

// Shutdown stops the node gracefully: the listener closes immediately so
// no new connection is accepted, in-flight handlers get up to grace to
// drain, then the node is torn down as in Close. It reports whether the
// node drained fully within the grace period.
func (s *Server) Shutdown(grace time.Duration) bool {
	s.closeMu.Lock()
	select {
	case <-s.closed:
		s.closeMu.Unlock()
		return true
	default:
	}
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	s.closeMu.Unlock()
	s.ln.Close() // acceptLoop sees draining and exits instead of spinning
	// Wake connections parked between requests; their serve loops observe
	// draining and close. Mid-request connections finish their response
	// (the write deadline is separate) and then close instead of renewing
	// keep-alive.
	s.nudgeConns()
	deadline := time.Now().Add(grace)
	drained := true
	for s.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Close()
	return drained
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted:       s.accepted.Load(),
		Refused:        s.refused.Load(),
		Served:         s.served.Load(),
		Redirected:     s.redirected.Load(),
		InternalFetch:  s.internalFetch.Load(),
		Errors:         s.errors.Load(),
		BadRequests:    s.badRequests.Load(),
		NotFound:       s.notFound.Load(),
		FetchFailed:    s.fetchFailed.Load(),
		Introspect:     s.introspect.Load(),
		BytesOut:       s.bytesOut.Load(),
		Inflight:       s.inflight.Load(),
		RequestsActive: s.reqActive.Load(),
		UpstreamDials:  s.upstreamDials.Load(),
		UpstreamReused: s.upstreamReused.Load(),
		Broadcasts:     s.broadcasts.Load(),
		SamplesHeard:   s.samplesHeard.Load(),
		IdleReaped:     s.idleReaped.Load(),
	}
	s.dropMu.Lock()
	if len(s.dropCounts) > 0 {
		st.Drops = make(map[string]int64, len(s.dropCounts))
		for k, v := range s.dropCounts {
			st.Drops[k] = v
		}
	}
	s.dropMu.Unlock()
	return st
}

// Table exposes the loadd table (tests and the doctor CLI).
func (s *Server) Table() *loadd.Table { return s.table }

func (s *Server) nowSec() float64 { return time.Since(s.epoch).Seconds() }

// sinceEpoch converts a wall-clock instant to trace time.
func (s *Server) sinceEpoch(t time.Time) float64 { return t.Sub(s.epoch).Seconds() }

// sample builds this node's load broadcast. CPULoad advertises requests
// being processed, not open connections — peers should not schedule around
// a node whose keep-alive connections are all idle.
func (s *Server) sample() loadd.Sample {
	return loadd.Sample{
		Node:            s.cfg.ID,
		CPULoad:         float64(s.reqActive.Load()),
		DiskLoad:        float64(s.diskActive.Load()),
		NetLoad:         float64(s.netActive.Load()),
		CPUOpsPerSec:    s.cfg.CPUOpsPerSec,
		DiskBytesPerSec: s.cfg.DiskBytesPerSec,
		NetBytesPerSec:  s.cfg.NetBytesPerSec,
		SentAt:          s.nowSec(),
	}
}

// broadcastLoop sends the load sample to every peer at the loadd period
// (with mild per-node jitter, like the paper's 2-3 s spread).
func (s *Server) broadcastLoop() {
	defer s.wg.Done()
	jitter := time.Duration(s.cfg.ID%5) * 100 * time.Millisecond
	ticker := time.NewTicker(s.cfg.LoaddPeriod + jitter)
	defer ticker.Stop()
	s.broadcastOnce()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			s.broadcastOnce()
		}
	}
}

func (s *Server) broadcastOnce() {
	smp := s.sample()
	// A node always trusts its own fresh numbers.
	if err := s.table.Update(smp, s.nowSec()); err != nil {
		return
	}
	// Self-drift: how far the load moved since the numbers last advertised
	// to the cluster — the error every peer's view of this node carries
	// for up to a gossip period.
	if s.haveLastAdvertised {
		s.nm.gossipDrift("cpu", smp.CPULoad-s.lastAdvertised.CPULoad)
		s.nm.gossipDrift("disk", smp.DiskLoad-s.lastAdvertised.DiskLoad)
		s.nm.gossipDrift("net", smp.NetLoad-s.lastAdvertised.NetLoad)
	}
	s.lastAdvertised, s.haveLastAdvertised = smp, true
	var buf [loadd.MaxWireSize]byte
	n, err := loadd.EncodeSample(buf[:], smp)
	if err != nil {
		return
	}
	s.peersMu.RLock()
	defer s.peersMu.RUnlock()
	for id, p := range s.peers {
		if id == s.cfg.ID {
			continue
		}
		if drop := s.cfg.DropBroadcast; drop != nil && drop() {
			continue // injected gossip loss
		}
		addr, err := net.ResolveUDPAddr("udp", p.UDPAddr)
		if err != nil {
			continue
		}
		if _, err := s.udp.WriteToUDP(buf[:n], addr); err == nil {
			s.broadcasts.Add(1)
		}
	}
}

// listenLoop ingests peer broadcasts.
func (s *Server) listenLoop() {
	defer s.wg.Done()
	buf := make([]byte, loadd.MaxWireSize)
	errStreak := 0
	for {
		n, _, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Back off on repeated transient errors instead of busy-
			// spinning the core; the streak resets on the next good read.
			errStreak++
			if errStreak > 1 {
				time.Sleep(retry.Backoff(errStreak-1, time.Millisecond, 100*time.Millisecond))
			}
			continue
		}
		errStreak = 0
		smp, err := loadd.DecodeSample(buf[:n])
		if err != nil {
			continue // drop corrupt datagrams
		}
		if smp.Node == s.cfg.ID {
			continue // ignore echoes
		}
		now := s.nowSec()
		prevAge := s.table.Age(smp.Node, now)
		if s.table.Update(smp, now) == nil {
			s.samplesHeard.Add(1)
			if prevAge >= 0 {
				// Gap between consecutive receptions from this peer — the
				// distribution the staleness gauge samples from.
				s.nm.gossipInterval(smp.Node, prevAge)
			}
		}
	}
}
