// Package slo evaluates service-level objectives over the cluster's
// metrics: availability (the fraction of requests answered without a
// server-fault drop) and latency (the fraction of requests served under a
// threshold), with error-budget accounting per node and cluster-wide and
// Google-SRE-style multi-window multi-burn-rate alerting that plugs into
// the monitor's alert/hysteresis/OnFire machinery — so an SLO breach
// triggers the same snapshot bundles a node-down alert does.
//
// Counting semantics, identical on both substrates: the response-time
// histogram records only successfully served requests, and server-fault
// drops (every sweb_drops_total cause except the client-attributable
// bad_request and not_found) are the error events. An availability
// objective's total is successes plus errors; a latency objective
// additionally moves successes above the threshold into the error column,
// so a fast 503 can never satisfy a latency target.
package slo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"sweb/internal/metrics"
	"sweb/internal/monitor"
)

// ResponseFamily is the histogram family objectives are evaluated against.
const ResponseFamily = "sweb_response_seconds"

// dropsFamily counts refused/failed requests by cause.
const dropsFamily = "sweb_drops_total"

// clientCauses are drop causes attributable to the client's own request;
// they consume no error budget.
var clientCauses = map[string]bool{"bad_request": true, "not_found": true}

// Objective is one declarative service-level objective. Threshold == 0
// means availability (good = any successful response); Threshold > 0 means
// latency (good = successful response in at most Threshold seconds).
type Objective struct {
	Name      string  `json:"name"`                // "avail", "p99", ...
	Target    float64 `json:"target"`              // required good fraction, e.g. 0.999
	Threshold float64 `json:"threshold,omitempty"` // seconds; 0 → availability
}

// IsLatency reports whether the objective bounds response time.
func (o Objective) IsLatency() bool { return o.Threshold > 0 }

// String renders the objective in the flag syntax ParseObjectives accepts.
func (o Objective) String() string {
	if o.IsLatency() {
		return o.Name + "=" + time.Duration(o.Threshold*float64(time.Second)).String()
	}
	return o.Name + "=" + strconv.FormatFloat(o.Target*100, 'f', -1, 64)
}

// FormatObjectives renders objectives back into the comma flag syntax.
func FormatObjectives(objs []Objective) string {
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = o.String()
	}
	return strings.Join(parts, ",")
}

// DefaultObjectives is the out-of-the-box target: three nines of
// availability and 99% of requests under 250ms.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "avail", Target: 0.999},
		{Name: "p99", Target: 0.99, Threshold: 0.25},
	}
}

// ParseObjectives parses the declarative objective syntax
// "avail=99.9,p99=250ms": avail takes a target percentage, and a pNN key
// (p50, p95, p99, p999, ...) takes a latency threshold as a Go duration,
// with the target percentile implied by the key's digits.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo: objective %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch {
		case key == "avail":
			pct, err := strconv.ParseFloat(val, 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("slo: avail wants a percentage in (0,100), got %q", val)
			}
			out = append(out, Objective{Name: key, Target: pct / 100})
		case strings.HasPrefix(key, "p") && len(key) > 1:
			digits := key[1:]
			if _, err := strconv.Atoi(digits); err != nil {
				return nil, fmt.Errorf("slo: unknown objective key %q", key)
			}
			target, err := strconv.ParseFloat("0."+digits, 64)
			if err != nil || target <= 0 || target >= 1 {
				return nil, fmt.Errorf("slo: bad percentile key %q", key)
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo: %s wants a positive duration, got %q", key, val)
			}
			out = append(out, Objective{Name: key, Target: target, Threshold: d.Seconds()})
		default:
			return nil, fmt.Errorf("slo: unknown objective key %q", key)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: no objectives in %q", s)
	}
	return out, nil
}

// Counts is the good/total event tally of one objective over one window.
type Counts struct {
	Good  float64
	Total float64
}

// Errors is the event count charged against the budget.
func (c Counts) Errors() float64 { return c.Total - c.Good }

// ErrorRatio is errors over total; an empty window has ratio 0 (no
// traffic burns no budget).
func (c Counts) ErrorRatio() float64 {
	if c.Total <= 0 {
		return 0
	}
	return (c.Total - c.Good) / c.Total
}

// increase is monitor.Delta plus birth accounting: counters are born at
// zero, so when a series' first retained point falls inside the window,
// that value is growth the window must be charged for. Families created
// lazily — a drop cause first seen mid-window — and counts accrued before
// the monitor's first scrape would otherwise vanish from the budget.
func increase(pts []monitor.Point, from, to float64) float64 {
	d := monitor.Delta(pts, from, to)
	if len(pts) > 0 && pts[0].T >= from && pts[0].T <= to {
		d += pts[0].V
	}
	return d
}

// FromStore tallies objective o over [from,to] against the monitor's
// time-series store. node == "" aggregates the whole cluster; otherwise
// only series labelled with that node count. Deltas are reset-aware, so a
// node restart mid-window contributes its post-restart counts instead of
// a negative spike.
func FromStore(st *monitor.Store, o Objective, node string, from, to float64) Counts {
	sel := metrics.Labels{}
	if node != "" {
		sel["node"] = node
	}
	var drops, resp float64
	for _, s := range st.Select(dropsFamily, sel) {
		if clientCauses[s.Labels["cause"]] {
			continue
		}
		drops += increase(s.Points, from, to)
	}
	for _, s := range st.Select(ResponseFamily+"_count", sel) {
		resp += increase(s.Points, from, to)
	}
	total := resp + drops
	if !o.IsLatency() {
		return Counts{Good: resp, Total: total}
	}
	good := storeCountAtOrBelow(st, ResponseFamily, sel, o.Threshold, from, to)
	if good > total {
		good = total
	}
	return Counts{Good: good, Total: total}
}

// storeCountAtOrBelow sums, across every matching histogram instance, the
// windowed delta of the largest cumulative bucket whose upper bound is at
// or below the threshold. A threshold between bucket edges thus rounds
// DOWN to the nearest edge — the conservative direction: a request is only
// counted good when the histogram proves it was under the threshold. A
// threshold below the smallest edge counts nothing as good.
func storeCountAtOrBelow(st *monitor.Store, name string, sel metrics.Labels, threshold, from, to float64) float64 {
	type pick struct {
		le  float64
		pts []monitor.Point
	}
	best := make(map[string]pick)
	for _, s := range st.Select(name+"_bucket", sel) {
		leStr, ok := s.Labels["le"]
		if !ok || leStr == "+Inf" {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil || le > threshold {
			continue
		}
		key := bucketGroupKey(name, s.Labels)
		if cur, seen := best[key]; !seen || le > cur.le {
			best[key] = pick{le: le, pts: s.Points}
		}
	}
	var sum float64
	for _, p := range best {
		sum += increase(p.pts, from, to)
	}
	return sum
}

// bucketGroupKey identifies one histogram instance: its labels minus le.
func bucketGroupKey(name string, labels metrics.Labels) string {
	rest := make(metrics.Labels, len(labels))
	for k, v := range labels {
		if k != "le" {
			rest[k] = v
		}
	}
	return metrics.Sample{Name: name, Labels: rest}.Key()
}

// FromSamples tallies objective o against one cumulative scrape (a node's
// registry since process start — the "lifetime window" a node reports on
// /sweb/slo, where no time-series history exists).
func FromSamples(samples []metrics.Sample, o Objective) Counts {
	var drops, resp float64
	type pick struct {
		le float64
		v  float64
	}
	best := make(map[string]pick)
	for _, s := range samples {
		switch s.Name {
		case dropsFamily:
			if !clientCauses[s.Labels["cause"]] {
				drops += s.Value
			}
		case ResponseFamily + "_count":
			resp += s.Value
		case ResponseFamily + "_bucket":
			if !o.IsLatency() {
				continue
			}
			leStr, ok := s.Labels["le"]
			if !ok || leStr == "+Inf" {
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil || le > o.Threshold {
				continue
			}
			key := bucketGroupKey(ResponseFamily, s.Labels)
			if cur, seen := best[key]; !seen || le > cur.le {
				best[key] = pick{le: le, v: s.Value}
			}
		}
	}
	total := resp + drops
	if !o.IsLatency() {
		return Counts{Good: resp, Total: total}
	}
	var good float64
	for _, p := range best {
		good += p.v
	}
	if good > total {
		good = total
	}
	return Counts{Good: good, Total: total}
}

// Status is one objective's error-budget accounting over one window.
type Status struct {
	Objective       Objective `json:"objective"`
	WindowSeconds   float64   `json:"window_seconds"`
	Good            float64   `json:"good"`
	Total           float64   `json:"total"`
	Errors          float64   `json:"errors"`
	ErrorRatio      float64   `json:"error_ratio"`
	BurnRate        float64   `json:"burn_rate"`
	BudgetRemaining float64   `json:"budget_remaining"` // fraction; negative = overdrawn
	Met             bool      `json:"met"`
}

// NewStatus derives the budget arithmetic for one objective's counts over
// a window: burn rate is the window's error ratio over the error budget
// (1 - target), and the remaining budget is what a full window at this
// ratio leaves. A target of 100% has zero budget: any error burns at +Inf.
func NewStatus(o Objective, c Counts, windowSeconds float64) Status {
	ratio := c.ErrorRatio()
	budget := 1 - o.Target
	var burn float64
	switch {
	case budget > 0:
		burn = ratio / budget
	case ratio > 0:
		burn = math.Inf(1)
	}
	return Status{
		Objective:       o,
		WindowSeconds:   windowSeconds,
		Good:            c.Good,
		Total:           c.Total,
		Errors:          c.Errors(),
		ErrorRatio:      ratio,
		BurnRate:        burn,
		BudgetRemaining: 1 - burn,
		Met:             burn <= 1,
	}
}

// Report is an SLO evaluation at one instant for one scope (a node or the
// cluster), optionally broken down per node.
type Report struct {
	AtSeconds     float64             `json:"at_seconds"`
	WindowSeconds float64             `json:"window_seconds"`
	Scope         string              `json:"scope"`
	Objectives    []Status            `json:"objectives"`
	Nodes         map[string][]Status `json:"nodes,omitempty"`
}

// Breached reports whether any objective in the report's scope is unmet.
func (r Report) Breached() bool {
	for _, s := range r.Objectives {
		if !s.Met {
			return true
		}
	}
	return false
}

// Evaluate computes the budget report over the trailing window
// [now-window, now]: cluster-wide statuses plus a per-node breakdown.
func Evaluate(st *monitor.Store, nodes []string, objs []Objective, window, now float64) Report {
	r := Report{
		AtSeconds:     now,
		WindowSeconds: window,
		Scope:         "cluster",
		Nodes:         make(map[string][]Status, len(nodes)),
	}
	for _, o := range objs {
		r.Objectives = append(r.Objectives, NewStatus(o, FromStore(st, o, "", now-window, now), window))
	}
	for _, node := range nodes {
		for _, o := range objs {
			r.Nodes[node] = append(r.Nodes[node], NewStatus(o, FromStore(st, o, node, now-window, now), window))
		}
	}
	return r
}

// EvaluateSamples builds a single-scope report from one cumulative scrape.
func EvaluateSamples(samples []metrics.Sample, objs []Objective, scope string, window, now float64) Report {
	r := Report{AtSeconds: now, WindowSeconds: window, Scope: scope}
	for _, o := range objs {
		r.Objectives = append(r.Objectives, NewStatus(o, FromSamples(samples, o), window))
	}
	return r
}

// Render formats a report as the aligned text panel swebtop and swebsim
// print: one row per objective, budget remaining as a signed percentage.
func Render(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO %s (window %.0fs)\n", r.Scope, r.WindowSeconds)
	writeRows := func(indent string, sts []Status) {
		for _, s := range sts {
			verdict := "ok"
			if !s.Met {
				verdict = "BREACH"
			}
			fmt.Fprintf(&b, "%s%-6s target %7s  good %7.0f/%-7.0f err %6.3f%%  burn %6.2fx  budget %7.1f%%  %s\n",
				indent, s.Objective.Name, s.Objective.String(),
				s.Good, s.Total, 100*s.ErrorRatio, s.BurnRate, 100*s.BudgetRemaining, verdict)
		}
	}
	writeRows("  ", r.Objectives)
	if len(r.Nodes) > 0 {
		nodes := make([]string, 0, len(r.Nodes))
		for n := range r.Nodes {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			fmt.Fprintf(&b, "  node %s\n", n)
			writeRows("    ", r.Nodes[n])
		}
	}
	return b.String()
}
