package slo

import (
	"math"
	"strings"
	"testing"

	"sweb/internal/metrics"
	"sweb/internal/monitor"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("avail=99.9, p99=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	if objs[0].Name != "avail" || math.Abs(objs[0].Target-0.999) > 1e-12 || objs[0].IsLatency() {
		t.Errorf("avail parsed as %+v", objs[0])
	}
	if objs[1].Name != "p99" || objs[1].Target != 0.99 || objs[1].Threshold != 0.25 {
		t.Errorf("p99 parsed as %+v", objs[1])
	}
	if objs, err = ParseObjectives("p999=1s"); err != nil || objs[0].Target != 0.999 {
		t.Errorf("p999: objs=%+v err=%v", objs, err)
	}
	for _, bad := range []string{"", "avail", "avail=0", "avail=100", "p99=0s", "px=1s", "latency=5ms", "p99=fast"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
	// The flag syntax round-trips through String/FormatObjectives.
	round, err := ParseObjectives(FormatObjectives(objs))
	if err != nil || round[0] != objs[0] {
		t.Errorf("round trip: %+v err=%v", round, err)
	}
}

// seedStore writes a synthetic pair of counters (successes + one drop
// cause) sampled once per second, via the same AppendSamples path the
// monitor scraper uses.
func seedStore(node string, at []float64, resp, drops []float64) *monitor.Store {
	st := monitor.NewStore(0)
	for i, t := range at {
		st.AppendSamples(node, t, []metrics.Sample{
			{Name: "sweb_response_seconds_count", Value: resp[i]},
			{Name: "sweb_drops_total", Labels: metrics.Labels{"cause": "owner_unreachable"}, Value: drops[i]},
		})
	}
	return st
}

func TestAvailabilityCounts(t *testing.T) {
	at := []float64{0, 1, 2, 3, 4}
	st := seedStore("0", at, []float64{0, 10, 20, 30, 40}, []float64{0, 0, 1, 3, 6})
	o := Objective{Name: "avail", Target: 0.9}

	c := FromStore(st, o, "", 0, 4)
	if c.Good != 40 || c.Total != 46 {
		t.Fatalf("full window counts = %+v, want good 40 total 46", c)
	}
	// A sub-window sees only its own deltas.
	c = FromStore(st, o, "2", 1, 3)
	if c.Total != 0 {
		t.Fatalf("wrong node matched: %+v", c)
	}
	c = FromStore(st, o, "0", 1, 3)
	if c.Good != 20 || c.Total != 23 {
		t.Fatalf("sub-window counts = %+v, want good 20 total 23", c)
	}
}

// TestCounterResetMidWindow pins the reset-aware delta: a node restart
// zeroes its counters mid-window, and the tally must count the post-reset
// growth instead of going negative or spiking.
func TestCounterResetMidWindow(t *testing.T) {
	at := []float64{0, 1, 2, 3, 4}
	// 0..30 then restart: 30 → 5 → 12. True growth = 30 + 12 = 42.
	resp := []float64{0, 15, 30, 5, 12}
	drops := []float64{0, 2, 4, 1, 3} // growth 4 + 3 = 7
	st := seedStore("0", at, resp, drops)
	c := FromStore(st, Objective{Name: "avail", Target: 0.9}, "", 0, 4)
	if c.Good != 42 || c.Total != 49 {
		t.Fatalf("reset-aware counts = %+v, want good 42 total 49", c)
	}
	if c.Errors() != 7 {
		t.Fatalf("errors = %v, want 7", c.Errors())
	}
}

// TestCounterBornMidWindow pins birth accounting: a lazily created family
// — a drop cause first seen mid-window — enters the store with its first
// scrape already nonzero, and that first value is in-window growth, not a
// baseline to subtract. A series whose first point predates the window
// keeps plain delta semantics.
func TestCounterBornMidWindow(t *testing.T) {
	o := Objective{Name: "avail", Target: 0.9}
	st := monitor.NewStore(0)
	// Successes scraped from t=0 (series born inside the window at 0).
	for i, v := range []float64{0, 10, 20} {
		st.AppendSamples("0", float64(i), []metrics.Sample{
			{Name: "sweb_response_seconds_count", Value: v},
		})
	}
	// The drop cause first appears at t=2 with 6 already counted: all 6
	// happened since the previous scrape, inside the window.
	st.AppendSamples("0", 2, []metrics.Sample{
		{Name: "sweb_drops_total", Labels: metrics.Labels{"cause": "owner_unreachable"}, Value: 6},
	})
	c := FromStore(st, o, "", 0, 2)
	if c.Good != 20 || c.Total != 26 {
		t.Fatalf("born-mid-window counts = %+v, want good 20 total 26", c)
	}
	// A later sub-window that excludes the births is pure delta again.
	st.AppendSamples("0", 3, []metrics.Sample{
		{Name: "sweb_response_seconds_count", Value: 25},
		{Name: "sweb_drops_total", Labels: metrics.Labels{"cause": "owner_unreachable"}, Value: 7},
	})
	// [2.5, 3.5]: both series predate the window, so the t=2 samples are
	// pure baselines (no birth charge) and only the t=2→3 growth counts.
	c = FromStore(st, o, "", 2.5, 3.5)
	if c.Good != 5 || c.Total != 6 {
		t.Fatalf("baseline sub-window counts = %+v, want good 5 total 6", c)
	}
	// [1.5, 3.5]: the response series has a baseline (t=1, value 10), but
	// the drop series was born inside the window — 6 at birth + 1 growth.
	c = FromStore(st, o, "", 1.5, 3.5)
	if c.Good != 15 || c.Total != 22 {
		t.Fatalf("sub-window past birth counts = %+v, want good 15 total 22", c)
	}
}

// TestEmptyAndShortWindows pins the no-data semantics: zero traffic means
// zero burn (never an alert), and a window shorter than the sampling
// period — a single point — reads as no growth.
func TestEmptyAndShortWindows(t *testing.T) {
	o := Objective{Name: "avail", Target: 0.999}
	empty := monitor.NewStore(0)
	if burn := burnOver(empty, o, "", 0, 100); burn != 0 {
		t.Fatalf("empty store burns %v, want 0", burn)
	}
	st := seedStore("0", []float64{0, 1, 2}, []float64{0, 10, 20}, []float64{0, 5, 10})
	// The window [10,11] holds no points at all.
	if burn := burnOver(st, o, "", 10, 11); burn != 0 {
		t.Fatalf("beyond-data window burns %v, want 0", burn)
	}
	// A window narrower than one sampling period sees a single point.
	if c := FromStore(st, o, "", 1.2, 1.8); c.Total != 0 {
		t.Fatalf("sub-sample window counts %+v, want zero", c)
	}
	// NewStatus on an empty window reports met with full budget.
	s := NewStatus(o, Counts{}, 60)
	if !s.Met || s.BurnRate != 0 || s.BudgetRemaining != 1 {
		t.Fatalf("empty status = %+v", s)
	}
}

// latencyStore exposes a real histogram through the scrape path so bucket
// series carry genuine cumulative structure.
func latencyStore(t *testing.T, values []float64, at []float64, perStep int) *monitor.Store {
	t.Helper()
	reg := metrics.NewRegistry()
	h := reg.Histogram("sweb_response_seconds", "t", nil, []float64{0.1, 0.2, 0.4})
	reg.Counter("sweb_drops_total", "t", metrics.Labels{"cause": "timeout"})
	st := monitor.NewStore(0)
	src := &monitor.RegistrySource{Name: "0", Registry: reg, Up: func() bool { return true }}
	i := 0
	for _, now := range at {
		// Scrape first: the sample at at[0] is the window baseline, so every
		// observation made afterwards falls inside [at[0], at[len-1]].
		samples, err := src.Scrape()
		if err != nil {
			t.Fatal(err)
		}
		st.AppendSamples(src.Name, now, samples)
		for k := 0; k < perStep && i < len(values); k++ {
			h.Observe(values[i])
			i++
		}
	}
	return st
}

// TestLatencyThresholdRounding pins the documented conservative rule: a
// threshold between histogram edges rounds DOWN to the nearest edge, and
// one below the smallest edge counts nothing as good.
func TestLatencyThresholdRounding(t *testing.T) {
	// 6 observations: 3 at 0.05 (≤0.1), 2 at 0.15 (≤0.2), 1 at 0.3 (≤0.4).
	vals := []float64{0.05, 0.15, 0.05, 0.3, 0.15, 0.05}
	st := latencyStore(t, vals, []float64{0, 1, 2}, 3)

	cases := []struct {
		threshold float64
		wantGood  float64
	}{
		{0.2, 5},  // exact edge: includes the 0.2 bucket
		{0.3, 5},  // between 0.2 and 0.4: rounds down to 0.2
		{0.39, 5}, // still below the 0.4 edge
		{0.4, 6},  // exact top edge
		{9.9, 6},  // above all edges: every success is provably under
		{0.05, 0}, // below the smallest edge: nothing provable
		{0.1, 3},  // smallest edge exactly
	}
	for _, tc := range cases {
		o := Objective{Name: "p99", Target: 0.5, Threshold: tc.threshold}
		c := FromStore(st, o, "", 0, 2)
		if c.Total != 6 {
			t.Fatalf("threshold %v: total = %v, want 6", tc.threshold, c.Total)
		}
		if c.Good != tc.wantGood {
			t.Errorf("threshold %v: good = %v, want %v", tc.threshold, c.Good, tc.wantGood)
		}
	}
}

// TestBurnRateAndRules drives the full alert path: an error ratio ten
// times the budget must fire the fast rule through a monitor, and recovery
// must clear it.
func TestBurnRateAndRules(t *testing.T) {
	o := Objective{Name: "avail", Target: 0.9} // 10% budget
	// 50% errors → burn 5 with budget 10%.
	st := seedStore("0", []float64{0, 1, 2, 3, 4},
		[]float64{0, 5, 10, 15, 20}, []float64{0, 5, 10, 15, 20})
	if burn := burnOver(st, o, "", 0, 4); math.Abs(burn-5) > 1e-9 {
		t.Fatalf("burn = %v, want 5", burn)
	}

	w := Windows{FastLong: 4, FastShort: 2, SlowLong: 8, SlowShort: 4, FastBurn: 3, SlowBurn: 1}
	rules := Rules([]Objective{o}, w)
	if len(rules) != 2 || rules[0].Name != "slo_fast_avail" || rules[1].Name != "slo_slow_avail" {
		t.Fatalf("rules = %v", rules)
	}
	view := &monitor.View{Store: st, Nodes: []string{"0"}, From: 0, To: 4}
	vals := rules[0].Eval(view)
	if math.Abs(vals["cluster"]-5) > 1e-9 || math.Abs(vals["0"]-5) > 1e-9 {
		t.Fatalf("fast rule values = %v, want burn 5 for cluster and node 0", vals)
	}

	// Through the monitor: two collects (For: 2) fire, recovery clears.
	reg := metrics.NewRegistry()
	good := reg.Counter("sweb_response_seconds_count", "g", nil)
	bad := reg.Counter("sweb_drops_total", "b", metrics.Labels{"cause": "timeout"})
	mon := monitor.New(monitor.Config{
		Window:     4,
		ExtraRules: Rules([]Objective{o}, w),
	})
	mon.AddSource(&monitor.RegistrySource{Name: "0", Registry: reg, Up: func() bool { return true }})
	now := 0.0
	step := func(g, b float64) {
		good.Add(g)
		bad.Add(b)
		now++
		mon.Collect(now)
	}
	step(5, 5)
	step(5, 5)
	step(5, 5)
	if !mon.AlertFiring("slo_fast_avail", "cluster") {
		t.Fatalf("fast burn did not fire; alerts = %+v", mon.Alerts())
	}
	for i := 0; i < 12; i++ {
		step(50, 0) // recovery: heavy healthy traffic dilutes the window
	}
	if mon.AlertFiring("slo_fast_avail", "cluster") {
		t.Fatalf("fast burn did not clear; alerts = %+v", mon.Alerts())
	}
}

// TestEvaluateAndRender covers the report plumbing both engines share.
func TestEvaluateAndRender(t *testing.T) {
	st := seedStore("0", []float64{0, 1, 2}, []float64{0, 50, 100}, []float64{0, 0, 0})
	objs := []Objective{{Name: "avail", Target: 0.999}}
	r := Evaluate(st, []string{"0", "1"}, objs, 2, 2)
	if r.Breached() {
		t.Fatalf("healthy report breached: %+v", r)
	}
	if len(r.Objectives) != 1 || r.Objectives[0].Good != 100 {
		t.Fatalf("cluster objectives = %+v", r.Objectives)
	}
	if got := r.Nodes["0"][0].Good; got != 100 {
		t.Fatalf("node 0 good = %v", got)
	}
	if got := r.Nodes["1"][0].Total; got != 0 {
		t.Fatalf("node 1 total = %v, want 0 (no traffic)", got)
	}
	text := Render(r)
	for _, want := range []string{"SLO cluster", "avail", "node 0", "ok"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}

	// FromSamples agrees with FromStore on the same cumulative totals.
	samples := []metrics.Sample{
		{Name: "sweb_response_seconds_count", Value: 100},
		{Name: "sweb_drops_total", Labels: metrics.Labels{"cause": "shed"}, Value: 5},
		{Name: "sweb_drops_total", Labels: metrics.Labels{"cause": "not_found"}, Value: 7},
	}
	c := FromSamples(samples, objs[0])
	if c.Good != 100 || c.Total != 105 {
		t.Fatalf("FromSamples = %+v, want good 100 total 105 (client causes excluded)", c)
	}
}
