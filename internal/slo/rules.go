package slo

import (
	"math"

	"sweb/internal/monitor"
)

// Windows configures the multi-window multi-burn-rate alert pairs, after
// the SRE workbook: a fast pair (1h confirmed by 5m) catching sharp burn
// within minutes, and a slow pair (3d confirmed by 6h) catching the
// sustained leak that would quietly exhaust a month's budget. Both windows
// of a pair must exceed the pair's burn threshold to fire — the long
// window for significance, the short one so a recovered burst stops
// alerting promptly. Scale compresses every window uniformly for the
// simulator's virtual clock and for tests.
type Windows struct {
	Scale     float64 // applied to the four windows; <=0 means 1 (wall clock)
	FastLong  float64 // seconds, default 1h
	FastShort float64 // seconds, default 5m
	SlowLong  float64 // seconds, default 3d
	SlowShort float64 // seconds, default 6h
	FastBurn  float64 // default 14.4 (2% of a 30d budget in 1h)
	SlowBurn  float64 // default 1 (budget-neutral pace)
}

// DefaultWindows returns the workbook windows compressed by scale.
func DefaultWindows(scale float64) Windows {
	if scale <= 0 {
		scale = 1
	}
	return Windows{
		Scale:     scale,
		FastLong:  3600 * scale,
		FastShort: 300 * scale,
		SlowLong:  3 * 86400 * scale,
		SlowShort: 6 * 3600 * scale,
		FastBurn:  14.4,
		SlowBurn:  1,
	}
}

func (w *Windows) fillDefaults() {
	d := DefaultWindows(w.Scale)
	if w.FastLong <= 0 {
		w.FastLong = d.FastLong
	}
	if w.FastShort <= 0 {
		w.FastShort = d.FastShort
	}
	if w.SlowLong <= 0 {
		w.SlowLong = d.SlowLong
	}
	if w.SlowShort <= 0 {
		w.SlowShort = d.SlowShort
	}
	if w.FastBurn <= 0 {
		w.FastBurn = d.FastBurn
	}
	if w.SlowBurn <= 0 {
		w.SlowBurn = d.SlowBurn
	}
}

// burnOver is the budget burn rate over [from,to] for one scope: the
// window's error ratio divided by the objective's error budget. An empty
// window burns nothing — short or traffic-less windows never alert.
func burnOver(st *monitor.Store, o Objective, node string, from, to float64) float64 {
	c := FromStore(st, o, node, from, to)
	if c.Total <= 0 {
		return 0
	}
	ratio := c.ErrorRatio()
	budget := 1 - o.Target
	if budget <= 0 {
		if ratio > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return ratio / budget
}

// Rules converts objectives into monitor alert rules — "slo_fast_<name>"
// and "slo_slow_<name>" per objective — suitable for
// monitor.Config.ExtraRules, so SLO breaches ride the same hysteresis,
// alert-state metrics, and OnFire snapshot hook as the built-in rules.
// Each rule's value is the smaller of its two windows' burn rates,
// evaluated per node and cluster-wide under the subject "cluster".
func Rules(objs []Objective, w Windows) []monitor.Rule {
	w.fillDefaults()
	rules := make([]monitor.Rule, 0, 2*len(objs))
	for _, o := range objs {
		o := o
		mk := func(kind string, long, short, burn float64) monitor.Rule {
			return monitor.Rule{
				Name:  "slo_" + kind + "_" + o.Name,
				Fire:  burn,
				Clear: burn / 2,
				For:   2,
				Eval: func(v *monitor.View) map[string]float64 {
					out := make(map[string]float64, len(v.Nodes)+1)
					eval := func(subject, node string) {
						bl := burnOver(v.Store, o, node, v.To-long, v.To)
						bs := burnOver(v.Store, o, node, v.To-short, v.To)
						out[subject] = math.Min(bl, bs)
					}
					eval("cluster", "")
					for _, n := range v.Nodes {
						eval(n, n)
					}
					return out
				},
			}
		}
		rules = append(rules,
			mk("fast", w.FastLong, w.FastShort, w.FastBurn),
			mk("slow", w.SlowLong, w.SlowShort, w.SlowBurn))
	}
	return rules
}
