package dnsrr

import (
	"testing"
	"testing/quick"
)

func TestRotationIsRoundRobin(t *testing.T) {
	r, err := New([]int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 0; i < 6; i++ {
		n, err := r.Resolve("", float64(i))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, n)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v", got)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New([]int{1, 1}, 0); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := New([]int{-1}, 0); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := New([]int{0}, -5); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

func TestRegisterAndDeregister(t *testing.T) {
	r, _ := New([]int{0, 1}, 0)
	r.Register(2)
	r.Register(2) // idempotent
	if got := r.Nodes(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("nodes = %v", got)
	}
	r.Deregister(1)
	if got := r.Nodes(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("nodes = %v", got)
	}
	r.Deregister(99) // unknown: no-op
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		n, _ := r.Resolve("", 0)
		seen[n] = true
	}
	if seen[1] {
		t.Fatal("deregistered node still resolved")
	}
}

func TestDeregisterLastNodeThenResolveFails(t *testing.T) {
	r, _ := New([]int{0}, 0)
	r.Deregister(0)
	if _, err := r.Resolve("", 0); err == nil {
		t.Fatal("resolve with empty rotation succeeded")
	}
}

func TestCachingPinsDomainToOneNode(t *testing.T) {
	r, _ := New([]int{0, 1, 2}, 60)
	first, _ := r.Resolve("ucsb.edu", 0)
	for i := 1; i < 10; i++ {
		n, _ := r.Resolve("ucsb.edu", float64(i))
		if n != first {
			t.Fatalf("cached domain moved from %d to %d", first, n)
		}
	}
	// A different domain advances the rotation.
	other, _ := r.Resolve("rutgers.edu", 1)
	if other == first {
		t.Fatal("second domain should get the next rotation slot")
	}
	res, hits := r.Stats()
	if res != 11 || hits != 9 {
		t.Fatalf("resolutions=%d hits=%d", res, hits)
	}
}

func TestCacheExpiresAfterTTL(t *testing.T) {
	r, _ := New([]int{0, 1}, 10)
	a, _ := r.Resolve("d", 0)
	b, _ := r.Resolve("d", 10.5) // expired: next rotation slot
	if a == b {
		t.Fatal("cache did not expire")
	}
}

func TestCachedAnswerForDeregisteredNodeRefreshes(t *testing.T) {
	r, _ := New([]int{0, 1}, 100)
	first, _ := r.Resolve("d", 0)
	r.Deregister(first)
	n, _ := r.Resolve("d", 1)
	if n == first {
		t.Fatal("resolved to a deregistered node from cache")
	}
}

func TestEmptyDomainBypassesCache(t *testing.T) {
	r, _ := New([]int{0, 1}, 100)
	a, _ := r.Resolve("", 0)
	b, _ := r.Resolve("", 0)
	if a == b {
		t.Fatal("empty domain was cached")
	}
}

func TestZeroTTLDisablesCaching(t *testing.T) {
	r, _ := New([]int{0, 1}, 0)
	a, _ := r.Resolve("d", 0)
	b, _ := r.Resolve("d", 0)
	if a == b {
		t.Fatal("TTL=0 still cached")
	}
}

// Property: without caching, any window of k*len(nodes) consecutive
// resolutions hits every node exactly k times.
func TestRotationFairnessProperty(t *testing.T) {
	f := func(nodes uint8, k uint8) bool {
		n := int(nodes%6) + 1
		reps := int(k%4) + 1
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		r, err := New(ids, 0)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for i := 0; i < n*reps; i++ {
			got, err := r.Resolve("", 0)
			if err != nil {
				return false
			}
			counts[got]++
		}
		for _, c := range counts {
			if c != reps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
