// Package dnsrr models the round-robin DNS front end that gives SWEB its
// initial request spread: "the user requests are first evenly routed to
// SWEB processors via the DNS rotation ... in a round-robin fashion"
// (Sec. 3.1), together with the weakness the paper calls out — DNS caching,
// where "all requests for a period of time from a DNS server's domain will
// go to a particular IP address".
package dnsrr

import (
	"fmt"
	"sort"
	"sync"
)

// Resolver rotates over the currently registered node ids. It is safe for
// concurrent use (the live cluster resolves from many client goroutines).
type Resolver struct {
	mu    sync.Mutex
	nodes []int // sorted registered ids
	next  int   // rotation cursor into nodes

	// cacheTTL > 0 enables the client-side caching model: each client
	// domain pins the answer it last received for cacheTTL seconds.
	cacheTTL float64
	cache    map[string]cachedAnswer

	resolutions int64
	cacheHits   int64
}

type cachedAnswer struct {
	node    int
	expires float64
}

// New creates a resolver over the given node ids. TTL 0 disables caching
// (every lookup hits the rotation, the paper's idealized best case).
func New(nodes []int, cacheTTL float64) (*Resolver, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("dnsrr: no nodes registered")
	}
	if cacheTTL < 0 {
		return nil, fmt.Errorf("dnsrr: negative TTL")
	}
	r := &Resolver{cacheTTL: cacheTTL, cache: make(map[string]cachedAnswer)}
	seen := make(map[int]bool)
	for _, n := range nodes {
		if n < 0 {
			return nil, fmt.Errorf("dnsrr: negative node id %d", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("dnsrr: duplicate node id %d", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Ints(r.nodes)
	return r, nil
}

// Register adds a node to the rotation (a workstation joining the pool).
// Adding an existing node is a no-op.
func (r *Resolver) Register(node int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n == node {
			return
		}
	}
	r.nodes = append(r.nodes, node)
	sort.Ints(r.nodes)
}

// Deregister removes a node from the rotation (leaving the pool). The DNS
// cannot react to load, but operators do remove dead names.
func (r *Resolver) Deregister(node int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.nodes {
		if n == node {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			if r.next >= len(r.nodes) && len(r.nodes) > 0 {
				r.next = 0
			}
			return
		}
	}
}

// Nodes returns the registered rotation in sorted order.
func (r *Resolver) Nodes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.nodes...)
}

// Resolve returns the node for a lookup from clientDomain at time now
// (seconds). With caching enabled, repeated lookups from the same domain
// within the TTL return the same node — the skew the paper warns about.
// An empty clientDomain bypasses the cache.
func (r *Resolver) Resolve(clientDomain string, now float64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.nodes) == 0 {
		return 0, fmt.Errorf("dnsrr: no nodes registered")
	}
	r.resolutions++
	if r.cacheTTL > 0 && clientDomain != "" {
		if a, ok := r.cache[clientDomain]; ok && now < a.expires && r.registered(a.node) {
			r.cacheHits++
			return a.node, nil
		}
	}
	node := r.nodes[r.next%len(r.nodes)]
	r.next = (r.next + 1) % len(r.nodes)
	if r.cacheTTL > 0 && clientDomain != "" {
		r.cache[clientDomain] = cachedAnswer{node: node, expires: now + r.cacheTTL}
	}
	return node, nil
}

func (r *Resolver) registered(node int) bool {
	for _, n := range r.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Stats returns total resolutions and how many were served from client
// caches.
func (r *Resolver) Stats() (resolutions, cacheHits int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resolutions, r.cacheHits
}
