package workload

import (
	"strings"
	"testing"
	"time"

	"sweb/internal/accesslog"
	"sweb/internal/des"
)

func logEntry(host, path string, status int, at time.Time) accesslog.Entry {
	return accesslog.Entry{
		Host: host, Time: at, Method: "GET", Path: path,
		Proto: "HTTP/1.0", Status: status, Bytes: 100,
	}
}

func TestFromAccessLogBasics(t *testing.T) {
	t0 := time.Date(1996, 3, 1, 12, 0, 0, 0, time.UTC)
	entries := []accesslog.Entry{
		logEntry("a.example", "/x.html", 200, t0),
		logEntry("b.example", "/y.html", 200, t0.Add(1500*time.Millisecond)),
		logEntry("a.example", "/missing", 404, t0.Add(2*time.Second)), // skipped
		logEntry("c.example", "/z.html?q=1", 200, t0.Add(3*time.Second)),
	}
	arr, err := FromAccessLog(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 3 {
		t.Fatalf("arrivals = %d", len(arr))
	}
	if arr[0].At != 0 || arr[0].Path != "/x.html" || arr[0].Domain != "a.example" {
		t.Fatalf("first arrival = %+v", arr[0])
	}
	if arr[1].At != 1500*des.Millisecond {
		t.Fatalf("offset = %v", arr[1].At)
	}
	if arr[2].Path != "/z.html" {
		t.Fatalf("query not stripped: %q", arr[2].Path)
	}
}

func TestFromAccessLogSortsOutOfOrderEntries(t *testing.T) {
	t0 := time.Date(1996, 3, 1, 12, 0, 0, 0, time.UTC)
	entries := []accesslog.Entry{
		logEntry("h", "/late.html", 200, t0.Add(5*time.Second)),
		logEntry("h", "/early.html", 200, t0),
	}
	arr, err := FromAccessLog(entries)
	if err != nil {
		t.Fatal(err)
	}
	if arr[0].Path != "/early.html" || arr[1].Path != "/late.html" {
		t.Fatalf("not sorted: %+v", arr)
	}
}

func TestFromAccessLogRejectsEmptyReplay(t *testing.T) {
	entries := []accesslog.Entry{
		logEntry("h", "/x", 404, time.Now()),
	}
	if _, err := FromAccessLog(entries); err == nil {
		t.Fatal("404-only log produced a replay")
	}
	if _, err := FromAccessLog(nil); err == nil {
		t.Fatal("empty log produced a replay")
	}
}

func TestFromAccessLogEndToEndWithParser(t *testing.T) {
	raw := strings.Join([]string{
		`cl1.ucsb.edu - - [02/Feb/1996:15:04:05 -0700] "GET /a.html HTTP/1.0" 200 2048`,
		`cl2.ucsb.edu - - [02/Feb/1996:15:04:06 -0700] "GET /b.html HTTP/1.0" 200 2048`,
		`cl1.ucsb.edu - - [02/Feb/1996:15:04:07 -0700] "POST /cgi HTTP/1.0" 200 10`,
	}, "\n")
	entries, err := accesslog.Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	arr, err := FromAccessLog(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 { // POST skipped
		t.Fatalf("arrivals = %d", len(arr))
	}
	if arr[1].At != des.Second {
		t.Fatalf("second arrival at %v", arr[1].At)
	}
}
