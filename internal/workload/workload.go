// Package workload generates the request streams used in the paper's
// experiments: "a burst of requests would arrive nearly simultaneously,
// simulating the action of a graphical browser such as Netscape", driven as
// a constant number of requests launched at each second for a 30-second
// burst, a 120-second sustained test, or the 45-second skewed test. Paths
// are drawn from pluggable pickers (uniform over a corpus, weighted, or a
// single hot file) and each request carries a client-domain label for the
// DNS caching model.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sweb/internal/accesslog"
	"sweb/internal/des"
)

// Arrival is one request issue instant.
type Arrival struct {
	At     des.Time
	Path   string
	Domain string // client DNS domain, "" to bypass the cache model
}

// Picker chooses the path for the i-th request of a run.
type Picker func(i int, rng *rand.Rand) string

// UniformPicker draws uniformly from paths.
func UniformPicker(paths []string) Picker {
	if len(paths) == 0 {
		panic("workload: UniformPicker needs at least one path")
	}
	return func(i int, rng *rand.Rand) string {
		return paths[rng.Intn(len(paths))]
	}
}

// RoundRobinPicker cycles through paths deterministically, giving every file
// exactly even coverage.
func RoundRobinPicker(paths []string) Picker {
	if len(paths) == 0 {
		panic("workload: RoundRobinPicker needs at least one path")
	}
	return func(i int, rng *rand.Rand) string {
		return paths[i%len(paths)]
	}
}

// ZipfPicker draws from paths with Zipf-distributed popularity (exponent
// s, v=1): web request streams concentrate heavily on a few hot documents,
// which is what makes pure file locality collapse onto the hot files'
// owners while DNS rotation stays even by request count.
func ZipfPicker(paths []string, s float64, rng *rand.Rand) Picker {
	if len(paths) == 0 {
		panic("workload: ZipfPicker needs at least one path")
	}
	if s <= 1 {
		s = 1.0001 // rand.Zipf requires s > 1
	}
	z := rand.NewZipf(rng, s, 1, uint64(len(paths)-1))
	return func(i int, _ *rand.Rand) string {
		return paths[z.Uint64()]
	}
}

// SinglePicker always returns path — the skewed test "where each client
// accessed the same file located on a single server".
func SinglePicker(path string) Picker {
	return func(int, *rand.Rand) string { return path }
}

// WeightedPicker draws path group g with probability weight[g] (normalized),
// then uniformly inside the group. Used by the ADL example: many metadata
// hits, some browse images, few full scenes.
func WeightedPicker(groups [][]string, weights []float64) (Picker, error) {
	if len(groups) == 0 || len(groups) != len(weights) {
		return nil, fmt.Errorf("workload: need matching non-empty groups and weights")
	}
	var total float64
	for g, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight %g", w)
		}
		if len(groups[g]) == 0 {
			return nil, fmt.Errorf("workload: empty group %d", g)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: weights sum to zero")
	}
	return func(i int, rng *rand.Rand) string {
		x := rng.Float64() * total
		for g, w := range weights {
			if x < w || g == len(weights)-1 {
				grp := groups[g]
				return grp[rng.Intn(len(grp))]
			}
			x -= w
		}
		panic("unreachable")
	}, nil
}

// DomainPool labels requests with client domains. size is the number of
// distinct domains; the paper's DNS-caching pathology appears when size is
// small relative to the request rate.
type DomainPool struct {
	size int
}

// NewDomainPool creates a pool of n domains; n <= 0 disables domain labels.
func NewDomainPool(n int) *DomainPool { return &DomainPool{size: n} }

// Pick returns the domain for the i-th request.
func (d *DomainPool) Pick(i int, rng *rand.Rand) string {
	if d == nil || d.size <= 0 {
		return ""
	}
	return fmt.Sprintf("dom%03d.clients.example", rng.Intn(d.size))
}

// Burst describes the paper's test shape: at each whole second for Duration
// seconds, RPS requests are launched at jittered sub-second offsets.
type Burst struct {
	// RPS is the constant number of requests launched each second.
	RPS int
	// DurationSeconds is the test length (30 for bursts, 120 sustained,
	// 45 for the skewed test).
	DurationSeconds int
	// Jitter spreads each second's launches uniformly across the second
	// when true; when false all RPS requests fire at the second boundary
	// ("arrive nearly simultaneously").
	Jitter bool
}

// Validate reports malformed bursts.
func (b Burst) Validate() error {
	if b.RPS <= 0 {
		return fmt.Errorf("workload: RPS must be positive, got %d", b.RPS)
	}
	if b.DurationSeconds <= 0 {
		return fmt.Errorf("workload: DurationSeconds must be positive, got %d", b.DurationSeconds)
	}
	return nil
}

// Total returns the number of requests the burst will issue.
func (b Burst) Total() int { return b.RPS * b.DurationSeconds }

// Generate produces the arrival schedule, sorted by time.
func (b Burst) Generate(pick Picker, domains *DomainPool, rng *rand.Rand) ([]Arrival, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if pick == nil {
		return nil, fmt.Errorf("workload: nil Picker")
	}
	arrivals := make([]Arrival, 0, b.Total())
	i := 0
	for sec := 0; sec < b.DurationSeconds; sec++ {
		base := des.Time(sec) * des.Second
		offsets := make([]des.Time, b.RPS)
		for k := range offsets {
			if b.Jitter {
				offsets[k] = des.Time(rng.Int63n(int64(des.Second)))
			} else {
				// Tiny spacing keeps event order deterministic while
				// preserving the "nearly simultaneous" burst.
				offsets[k] = des.Time(k) * des.Microsecond
			}
		}
		sortTimes(offsets)
		for _, off := range offsets {
			arrivals = append(arrivals, Arrival{
				At:     base + off,
				Path:   pick(i, rng),
				Domain: domains.Pick(i, rng),
			})
			i++
		}
	}
	return arrivals, nil
}

// FromAccessLog turns a parsed access log back into an arrival schedule:
// each successful GET replays at its original offset from the first entry,
// with the client host as the DNS-caching domain. This is how a production
// trace drives the simulator.
func FromAccessLog(entries []accesslog.Entry) ([]Arrival, error) {
	var out []Arrival
	var t0 time.Time
	for _, e := range entries {
		if e.Method != "GET" || e.Status != 200 {
			continue
		}
		if t0.IsZero() || e.Time.Before(t0) {
			t0 = e.Time
		}
	}
	if t0.IsZero() {
		return nil, fmt.Errorf("workload: no replayable GET entries")
	}
	for _, e := range entries {
		if e.Method != "GET" || e.Status != 200 {
			continue
		}
		path := e.Path
		if q := strings.IndexByte(path, '?'); q >= 0 {
			path = path[:q]
		}
		out = append(out, Arrival{
			At:     des.Time(e.Time.Sub(t0) / 1000), // ns → µs
			Path:   path,
			Domain: e.Host,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

func sortTimes(ts []des.Time) {
	for i := 1; i < len(ts); i++ {
		for k := i; k > 0 && ts[k] < ts[k-1]; k-- {
			ts[k], ts[k-1] = ts[k-1], ts[k]
		}
	}
}
