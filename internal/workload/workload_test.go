package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sweb/internal/des"
)

func TestBurstValidate(t *testing.T) {
	if err := (Burst{RPS: 1, DurationSeconds: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range []Burst{{RPS: 0, DurationSeconds: 1}, {RPS: 1, DurationSeconds: 0}, {RPS: -1, DurationSeconds: 5}} {
		if err := b.Validate(); err == nil {
			t.Errorf("burst %+v validated", b)
		}
	}
	if (Burst{RPS: 16, DurationSeconds: 30}).Total() != 480 {
		t.Fatal("total")
	}
}

func TestGenerateCountAndOrdering(t *testing.T) {
	b := Burst{RPS: 7, DurationSeconds: 5, Jitter: true}
	rng := rand.New(rand.NewSource(1))
	arr, err := b.Generate(UniformPicker([]string{"/a", "/b"}), nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 35 {
		t.Fatalf("len = %d", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestGenerateExactlyRPSPerSecond(t *testing.T) {
	b := Burst{RPS: 9, DurationSeconds: 4, Jitter: true}
	arr, _ := b.Generate(SinglePicker("/x"), nil, rand.New(rand.NewSource(2)))
	counts := map[int64]int{}
	for _, a := range arr {
		counts[int64(a.At/des.Second)]++
	}
	for sec := int64(0); sec < 4; sec++ {
		if counts[sec] != 9 {
			t.Fatalf("second %d launched %d requests", sec, counts[sec])
		}
	}
}

func TestGenerateNoJitterIsNearlySimultaneous(t *testing.T) {
	b := Burst{RPS: 50, DurationSeconds: 1, Jitter: false}
	arr, _ := b.Generate(SinglePicker("/x"), nil, rand.New(rand.NewSource(3)))
	// All within the first 50 microseconds of the second.
	for _, a := range arr {
		if a.At >= 50*des.Microsecond {
			t.Fatalf("burst arrival at %v, want near-simultaneous", a.At)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := (Burst{RPS: 0, DurationSeconds: 1}).Generate(SinglePicker("/x"), nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid burst generated")
	}
	if _, err := (Burst{RPS: 1, DurationSeconds: 1}).Generate(nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("nil picker accepted")
	}
}

func TestUniformPickerStaysInSet(t *testing.T) {
	paths := []string{"/a", "/b", "/c"}
	pick := UniformPicker(paths)
	rng := rand.New(rand.NewSource(4))
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		p := pick(i, rng)
		seen[p] = true
		if p != "/a" && p != "/b" && p != "/c" {
			t.Fatalf("picked %q", p)
		}
	}
	if len(seen) != 3 {
		t.Fatal("uniform picker never chose some paths")
	}
}

func TestRoundRobinPickerCycles(t *testing.T) {
	pick := RoundRobinPicker([]string{"/a", "/b"})
	rng := rand.New(rand.NewSource(5))
	if pick(0, rng) != "/a" || pick(1, rng) != "/b" || pick(2, rng) != "/a" {
		t.Fatal("round robin picker broken")
	}
}

func TestSinglePicker(t *testing.T) {
	pick := SinglePicker("/hot")
	for i := 0; i < 5; i++ {
		if pick(i, nil) != "/hot" {
			t.Fatal("single picker wandered")
		}
	}
}

func TestZipfPickerSkew(t *testing.T) {
	paths := make([]string, 100)
	for i := range paths {
		paths[i] = "/f" + string(rune('0'+i%10)) + string(rune('0'+i/10))
	}
	pick := ZipfPicker(paths, 1.2, rand.New(rand.NewSource(6)))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[pick(i, nil)]++
	}
	if counts[paths[0]] < 1000 {
		t.Fatalf("zipf head count = %d, want heavy skew", counts[paths[0]])
	}
}

func TestPickersPanicOnEmpty(t *testing.T) {
	for _, fn := range []func(){
		func() { UniformPicker(nil) },
		func() { RoundRobinPicker(nil) },
		func() { ZipfPicker(nil, 1.1, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWeightedPicker(t *testing.T) {
	groups := [][]string{{"/small"}, {"/large"}}
	pick, err := WeightedPicker(groups, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	large := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if pick(i, rng) == "/large" {
			large++
		}
	}
	if frac := float64(large) / n; math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("large fraction = %v, want ~0.75", frac)
	}
}

func TestWeightedPickerErrors(t *testing.T) {
	cases := []struct {
		groups  [][]string
		weights []float64
	}{
		{nil, nil},
		{[][]string{{"/a"}}, []float64{1, 2}},
		{[][]string{{"/a"}}, []float64{-1}},
		{[][]string{{}}, []float64{1}},
		{[][]string{{"/a"}}, []float64{0}},
	}
	for i, c := range cases {
		if _, err := WeightedPicker(c.groups, c.weights); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDomainPool(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var nilPool *DomainPool
	if nilPool.Pick(0, rng) != "" {
		t.Fatal("nil pool should yield empty domains")
	}
	if NewDomainPool(0).Pick(0, rng) != "" {
		t.Fatal("empty pool should yield empty domains")
	}
	pool := NewDomainPool(3)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[pool.Pick(i, rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("domain pool produced %d distinct domains", len(seen))
	}
}

// Property: generation is deterministic for a fixed seed and total count
// always equals RPS*Duration.
func TestGenerateDeterministicProperty(t *testing.T) {
	f := func(rps, dur, seed uint8) bool {
		b := Burst{RPS: int(rps%20) + 1, DurationSeconds: int(dur%10) + 1, Jitter: true}
		gen := func() []Arrival {
			arr, err := b.Generate(UniformPicker([]string{"/a", "/b", "/c"}),
				NewDomainPool(4), rand.New(rand.NewSource(int64(seed))))
			if err != nil {
				return nil
			}
			return arr
		}
		a, b2 := gen(), gen()
		if len(a) != len(b2) || len(a) != b.Total() {
			return false
		}
		for i := range a {
			if a[i] != b2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
