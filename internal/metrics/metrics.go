// Package metrics is the dependency-free observability substrate for the
// live SWEB nodes: counters, gauges, and fixed-bucket latency histograms
// with Prometheus-style text exposition. The simulator measures through
// internal/stats over bounded runs; the live cluster instead accumulates
// into a Registry that every node serves over /sweb/metrics, and
// internal/live scrapes and merges the expositions cluster-wide. All value
// cells are atomics and the registry is a mutex-guarded name → family map,
// so the package is safe under the race detector with many handler
// goroutines writing while an exposition scrape reads.
package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to a metric instance ({"phase": "parse"}).
type Labels map[string]string

// signature renders labels canonically (sorted keys, escaped values),
// without the surrounding braces. Metrics with equal signatures are the
// same instance.
func signature(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// atomicFloat is a float64 cell updatable without locks (CAS on the bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v (must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(v float64) { c.v.add(v) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add shifts the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

// DefBuckets spans 100µs to 10s — the live request latency range between a
// parsed-from-cache hit and a retried remote fetch.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Exemplar is the most recent traced observation retained by a histogram
// bucket: enough to pivot from an aggregated latency cell to the concrete
// request (by trace id, resolvable against the flight recorder) that
// landed in it.
type Exemplar struct {
	TraceID  string
	Value    float64
	TSMicros int64 // observation time, unix microseconds
}

// Histogram counts observations into fixed buckets (cumulative "le" cells
// on exposition, like Prometheus client histograms). Each bucket also
// retains the exemplar of its most recent traced observation.
type Histogram struct {
	bounds    []float64       // strictly increasing upper bounds, +Inf implied
	counts    []atomic.Uint64 // len(bounds)+1; the last cell is the +Inf bucket
	exemplars []atomic.Pointer[Exemplar]
	sum       atomicFloat
	count     atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v ("le" semantics)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveExemplar records one value and, when the observation carries a
// trace id, stamps the bucket it lands in with that exemplar. The stamp is
// one atomic pointer store, so untraced fast paths pay nothing beyond the
// empty-string check.
func (h *Histogram) ObserveExemplar(v float64, traceID string, tsMicros int64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, TSMicros: tsMicros})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// metric is anything a family can hold and expose. Only histogram bucket
// lines carry a non-nil exemplar.
type metric interface {
	exposeInto(fam *family, sig string, add func(name, sig string, v float64, ex *Exemplar))
}

func (c *Counter) exposeInto(fam *family, sig string, add func(string, string, float64, *Exemplar)) {
	add(fam.name, sig, c.Value(), nil)
}

func (g *Gauge) exposeInto(fam *family, sig string, add func(string, string, float64, *Exemplar)) {
	add(fam.name, sig, g.Value(), nil)
}

// funcMetric evaluates a callback at exposition time (live gauges over
// existing atomics, e.g. inflight connections).
type funcMetric struct{ fn func() float64 }

func (f *funcMetric) exposeInto(fam *family, sig string, add func(string, string, float64, *Exemplar)) {
	add(fam.name, sig, f.fn(), nil)
}

func (h *Histogram) exposeInto(fam *family, sig string, add func(string, string, float64, *Exemplar)) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		add(fam.name+"_bucket", withLE(sig, formatValue(b)), float64(cum), h.exemplars[i].Load())
	}
	cum += h.counts[len(h.bounds)].Load()
	add(fam.name+"_bucket", withLE(sig, "+Inf"), float64(cum), h.exemplars[len(h.bounds)].Load())
	add(fam.name+"_sum", sig, h.Sum(), nil)
	add(fam.name+"_count", sig, float64(cum), nil)
}

func withLE(sig, le string) string {
	cell := `le="` + le + `"`
	if sig == "" {
		return cell
	}
	return sig + "," + cell
}

type family struct {
	name, help, typ string
	mu              sync.Mutex
	metrics         map[string]metric
	order           []string
}

func (f *family) get(sig string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.metrics[sig]
	if m == nil {
		m = mk()
		f.metrics[sig] = m
		f.order = append(f.order, sig)
	}
	return m
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]metric)}
		r.families[name] = f
	} else if f.typ != typ {
		panic("metrics: " + name + " already registered as " + f.typ + ", requested " + typ)
	}
	return f
}

// Counter returns the counter name{labels}, creating it on first use.
// Repeated calls with equal name and labels return the same instance.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, "counter")
	return f.get(signature(labels), func() metric { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, "gauge")
	return f.get(signature(labels), func() metric { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is fn() at exposition time. The
// function must be safe to call from the scraping goroutine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, "gauge")
	f.get(signature(labels), func() metric { return &funcMetric{fn: fn} })
}

// CounterFunc registers a counter read from fn() at exposition time (a
// view over an existing atomic).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, "counter")
	f.get(signature(labels), func() metric { return &funcMetric{fn: fn} })
}

// Histogram returns the histogram name{labels} with the given bucket upper
// bounds (nil for DefBuckets). Buckets are fixed by the first call.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	f := r.family(name, help, "histogram")
	return f.get(signature(labels), func() metric { return newHistogram(buckets) }).(*Histogram)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ContentType is the Prometheus text exposition media type a /sweb/metrics
// response must declare.
const ContentType = "text/plain; version=0.0.4"

// WriteText renders the registry in the Prometheus text exposition format:
// families sorted by name, instances sorted by label signature, every line
// newline-terminated — byte-identical output for equal registry contents,
// whatever the registration order. Histogram bucket lines carrying an
// exemplar get the OpenMetrics-style suffix
// ` # {trace_id="..."} <value> <unix-micros>`, still one physical line
// (the trace id is escaped like any label value).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	var err error
	emit := func(name, sig string, v float64, ex *Exemplar) {
		if err != nil {
			return
		}
		line := name
		if sig != "" {
			line += "{" + sig + "}"
		}
		line += " " + formatValue(v)
		if ex != nil {
			line += ` # {trace_id="` + escapeLabel(ex.TraceID) + `"} ` +
				formatValue(ex.Value) + " " + strconv.FormatInt(ex.TSMicros, 10)
		}
		_, err = bw.WriteString(line + "\n")
	}
	for _, f := range fams {
		f.mu.Lock()
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		ms := make([]metric, len(sigs))
		for i, sig := range sigs {
			ms[i] = f.metrics[sig]
		}
		f.mu.Unlock()
		if err == nil && f.help != "" {
			_, err = bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		if err == nil {
			_, err = bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		}
		for i, m := range ms {
			m.exposeInto(f, sigs[i], emit)
		}
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}
