package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric instance and its value at scrape
// time. Histograms appear as their _bucket/_sum/_count series; a bucket
// line may carry the bucket's retained exemplar.
type Sample struct {
	Name     string
	Labels   Labels
	Value    float64
	Exemplar *Exemplar
}

// Key canonically identifies the sample (name plus sorted labels), so
// samples from different nodes can be matched for merging.
func (s Sample) Key() string {
	sig := signature(s.Labels)
	if sig == "" {
		return s.Name
	}
	return s.Name + "{" + sig + "}"
}

// ParseText parses the Prometheus text exposition format (the subset
// WriteText emits: comment lines, `name value`, `name{labels} value`).
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 256<<10), 256<<10)
	var out []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	var s Sample
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.Name = line[:brace]
		// The label section's closing brace must be found by an
		// escape-aware scan: a '}' may legitimately occur inside a quoted
		// label value, and an exemplar suffix carries its own braces, so
		// neither a first- nor a last-index search is safe.
		end, err := labelEnd(line, brace)
		if err != nil {
			return s, err
		}
		labels, err := parseLabels(line[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		line = strings.TrimSpace(line[end+1:])
	} else {
		if space < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = line[:space]
		line = strings.TrimSpace(line[space+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name")
	}
	// Split off an OpenMetrics-style exemplar suffix before reading the
	// value. The value itself is a single space-free token, so the first
	// " # {" in the remainder can only start an exemplar.
	if i := strings.Index(line, " # {"); i >= 0 {
		ex, err := parseExemplar(line[i+3:])
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
		line = strings.TrimSpace(line[:i])
	}
	// A timestamp field would be a second column; this emitter never
	// writes one, so the remainder is exactly the value.
	v, err := parseNumber(strings.Fields(line))
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// labelEnd returns the index of the '}' terminating the label section that
// opens at s[open], skipping braces inside quoted (escaped) label values.
func labelEnd(s string, open int) (int, error) {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		c := s[i]
		if inQuote {
			switch c {
			case '\\':
				i++ // skip the escaped byte
			case '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '}':
			return i, nil
		}
	}
	return 0, fmt.Errorf("unterminated labels in %q", s)
}

// parseExemplar parses `{trace_id="..."} <value> <unix-micros>` — the
// suffix WriteText appends to bucket lines holding an exemplar.
func parseExemplar(s string) (*Exemplar, error) {
	if s == "" || s[0] != '{' {
		return nil, fmt.Errorf("exemplar without labels in %q", s)
	}
	end, err := labelEnd(s, 0)
	if err != nil {
		return nil, err
	}
	labels, err := parseLabels(s[1:end])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) != 2 {
		return nil, fmt.Errorf("want exemplar value and timestamp, got %v", fields)
	}
	v, err := parseNumber(fields[:1])
	if err != nil {
		return nil, err
	}
	ts, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
	}
	return &Exemplar{TraceID: labels["trace_id"], Value: v, TSMicros: ts}, nil
}

func parseNumber(fields []string) (float64, error) {
	if len(fields) != 1 {
		return 0, fmt.Errorf("want one value field, got %v", fields)
	}
	switch fields[0] {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(fields[0], 64)
}

// parseLabels parses `k="v",k2="v2"` with \" \\ \n escapes in values.
func parseLabels(s string) (Labels, error) {
	l := Labels{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		if key == "" {
			return nil, fmt.Errorf("empty label key in %q", s)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					b.WriteByte('\\')
					b.WriteByte(s[i])
				}
				i++
				continue
			}
			i++
			if c == '"' {
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		l[key] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return l, nil
}

// MergeSamples sums matching samples (equal name and labels) across node
// scrapes: counters and histogram buckets add naturally, and summed gauges
// read as cluster totals. A merged bucket keeps the freshest exemplar among
// its inputs. The result is sorted by Key for deterministic reports.
func MergeSamples(scrapes ...[]Sample) []Sample {
	acc := make(map[string]*Sample)
	keys := make([]string, 0)
	for _, scrape := range scrapes {
		for _, s := range scrape {
			k := s.Key()
			if a, ok := acc[k]; ok {
				a.Value += s.Value
				if s.Exemplar != nil && (a.Exemplar == nil || s.Exemplar.TSMicros >= a.Exemplar.TSMicros) {
					a.Exemplar = s.Exemplar
				}
				continue
			}
			cp := s
			if s.Labels != nil {
				cp.Labels = make(Labels, len(s.Labels))
				for lk, lv := range s.Labels {
					cp.Labels[lk] = lv
				}
			}
			acc[k] = &cp
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Sample, len(keys))
	for i, k := range keys {
		out[i] = *acc[k]
	}
	return out
}

// Value returns the value of the sample matching name and labels, or 0
// (and false) when absent.
func Value(samples []Sample, name string, labels Labels) (float64, bool) {
	want := Sample{Name: name, Labels: labels}.Key()
	for _, s := range samples {
		if s.Key() == want {
			return s.Value, true
		}
	}
	return 0, false
}

// Bucket is one cumulative histogram cell: the upper bound ("le") and the
// count of observations at or below it.
type Bucket struct {
	UpperBound      float64
	CumulativeCount float64
}

// Buckets extracts the cumulative buckets of histogram name restricted to
// samples whose labels (excluding "le") match sel, sorted by upper bound.
func Buckets(samples []Sample, name string, sel Labels) []Bucket {
	var out []Bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le, ok := s.Labels["le"]
		if !ok {
			continue
		}
		match := true
		for k, v := range sel {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		// Also require the sample to carry no extra labels beyond sel+le,
		// so phase="parse" does not absorb phase="parse",node="1" cells.
		if match && len(s.Labels) != len(sel)+1 {
			match = false
		}
		if !match {
			continue
		}
		ub := math.Inf(1)
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			ub = v
		}
		out = append(out, Bucket{UpperBound: ub, CumulativeCount: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpperBound < out[j].UpperBound })
	return out
}

// HistogramQuantile estimates the q-th quantile from cumulative buckets
// (the histogram_quantile estimator: linear interpolation inside the
// bucket containing the target rank). Buckets must be sorted ascending and
// end with the +Inf bucket. Returns NaN with no observations.
func HistogramQuantile(q float64, buckets []Bucket) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].CumulativeCount
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.CumulativeCount >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return prevBound
			}
			inBucket := b.CumulativeCount - prevCum
			if inBucket <= 0 {
				return b.UpperBound
			}
			frac := (rank - prevCum) / inBucket
			return prevBound + (b.UpperBound-prevBound)*frac
		}
		prevBound, prevCum = b.UpperBound, b.CumulativeCount
	}
	return prevBound
}
