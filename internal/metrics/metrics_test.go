package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", nil)
	c.Inc()
	c.Add(2.5)
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v", c.Value())
	}
	if r.Counter("c_total", "a counter", nil) != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	g := r.Gauge("g", "a gauge", Labels{"node": "0"})
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	if r.Gauge("g", "a gauge", Labels{"node": "1"}) == g {
		t.Fatal("different labels returned the same gauge")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge name collision")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// le="0.01" is inclusive: 0.005 and 0.01 both land there.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total", "events", Labels{"kind": "sent"}).Add(12)
	r.Counter("ev_total", "events", Labels{"kind": "refused"}).Add(3)
	r.Gauge("inflight", "open conns", nil).Set(4)
	r.GaugeFunc("disk_active", "disk readers", nil, func() float64 { return 2 })
	r.Histogram("lat_seconds", "latency", Labels{"phase": "parse"}, []float64{0.001, 1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, labels Labels, want float64) {
		t.Helper()
		got, ok := Value(samples, name, labels)
		if !ok || got != want {
			t.Fatalf("%s%v = %v (found=%v), want %v", name, labels, got, ok, want)
		}
	}
	check("ev_total", Labels{"kind": "sent"}, 12)
	check("ev_total", Labels{"kind": "refused"}, 3)
	check("inflight", nil, 4)
	check("disk_active", nil, 2)
	check("lat_seconds_bucket", Labels{"phase": "parse", "le": "0.001"}, 0)
	check("lat_seconds_bucket", Labels{"phase": "parse", "le": "1"}, 1)
	check("lat_seconds_bucket", Labels{"phase": "parse", "le": "+Inf"}, 1)
	check("lat_seconds_sum", Labels{"phase": "parse"}, 0.5)
	check("lat_seconds_count", Labels{"phase": "parse"}, 1)
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	odd := `he said "hi\there"` + "\nnewline"
	r.Counter("odd_total", "", Labels{"path": odd}).Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Labels["path"] != odd {
		t.Fatalf("round trip mangled label: %+v", samples)
	}
}

func TestMergeSamples(t *testing.T) {
	a := []Sample{
		{Name: "x_total", Labels: Labels{"k": "1"}, Value: 2},
		{Name: "y", Value: 5},
	}
	b := []Sample{
		{Name: "x_total", Labels: Labels{"k": "1"}, Value: 3},
		{Name: "x_total", Labels: Labels{"k": "2"}, Value: 7},
	}
	merged := MergeSamples(a, b)
	if v, _ := Value(merged, "x_total", Labels{"k": "1"}); v != 5 {
		t.Fatalf("merged x{k=1} = %v", v)
	}
	if v, _ := Value(merged, "x_total", Labels{"k": "2"}); v != 7 {
		t.Fatalf("merged x{k=2} = %v", v)
	}
	if v, _ := Value(merged, "y", nil); v != 5 {
		t.Fatalf("merged y = %v", v)
	}
	if _, ok := Value(merged, "absent", nil); ok {
		t.Fatal("absent sample reported present")
	}
}

func TestBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", Labels{"phase": "send"}, []float64{1, 2, 4})
	// 100 observations uniform over (0,4): quantiles interpolate.
	for i := 0; i < 100; i++ {
		h.Observe(4 * float64(i) / 100)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	buckets := Buckets(samples, "q_seconds", Labels{"phase": "send"})
	if len(buckets) != 4 || !math.IsInf(buckets[3].UpperBound, 1) {
		t.Fatalf("buckets = %+v", buckets)
	}
	p50 := HistogramQuantile(0.5, buckets)
	if p50 < 1.5 || p50 > 2.5 {
		t.Fatalf("p50 = %v, want ≈2", p50)
	}
	p95 := HistogramQuantile(0.95, buckets)
	if p95 < 3.3 || p95 > 4.0 {
		t.Fatalf("p95 = %v, want ≈3.8", p95)
	}
	if !math.IsNaN(HistogramQuantile(0.5, nil)) {
		t.Fatal("empty buckets should yield NaN")
	}
}

// TestConcurrentUse hammers one registry from many goroutines while a
// scraper renders expositions — the race-detector exercise the live node
// depends on (handlers write while /sweb/metrics reads).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "", Labels{"w": "shared"})
			g := r.Gauge("conc_gauge", "", nil)
			h := r.Histogram("conc_seconds", "", nil, []float64{0.5, 1})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) / 2)
				// Dynamic label churn from the hot path, like the live
				// redirect-target counters.
				r.Counter("conc_dyn_total", "", Labels{"k": string(rune('a' + i%4))}).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := r.Counter("conc_total", "", Labels{"w": "shared"}).Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("conc_seconds", "", nil, nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d", h.Count())
	}
	var total float64
	for _, k := range []string{"a", "b", "c", "d"} {
		total += r.Counter("conc_dyn_total", "", Labels{"k": k}).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("dynamic counters sum = %v", total)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, in := range []string{
		"name{unterminated 1",
		"name{k=unquoted} 1",
		`name{k="v} 1`,
		"justname",
		"name notanumber",
		"name 1 2 3",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText(%q) accepted", in)
		}
	}
}
