package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// buildRandomRegistry registers a pseudo-random mix of counters, gauges,
// and histograms — including label values that need escaping — and returns
// the registry plus the samples it should expose.
func buildRandomRegistry(rng *rand.Rand) (*Registry, map[string]float64) {
	reg := NewRegistry()
	want := make(map[string]float64)

	nastyValues := []string{
		"plain", "with space", `quote"inside`, `back\slash`, "new\nline",
		"комета", "trailing\\",
	}
	label := func() Labels {
		switch rng.Intn(3) {
		case 0:
			return nil
		case 1:
			return Labels{"a": nastyValues[rng.Intn(len(nastyValues))]}
		default:
			return Labels{
				"a": nastyValues[rng.Intn(len(nastyValues))],
				"z": fmt.Sprintf("v%d", rng.Intn(4)),
			}
		}
	}

	nCounters := 1 + rng.Intn(4)
	for i := 0; i < nCounters; i++ {
		name := fmt.Sprintf("test_counter_%d_total", i)
		lbl := label()
		c := reg.Counter(name, "random counter", lbl)
		n := rng.Intn(50)
		for j := 0; j < n; j++ {
			c.Inc()
		}
		want[Sample{Name: name, Labels: lbl}.Key()] = float64(n)
	}
	nGauges := 1 + rng.Intn(4)
	for i := 0; i < nGauges; i++ {
		name := fmt.Sprintf("test_gauge_%d", i)
		lbl := label()
		g := reg.Gauge(name, "random gauge", lbl)
		// Round-trippable values only: WriteText uses %g at full precision.
		v := math.Round(rng.NormFloat64()*1e6) / 1e3
		g.Set(v)
		want[Sample{Name: name, Labels: lbl}.Key()] = v
	}
	nHists := rng.Intn(3)
	for i := 0; i < nHists; i++ {
		name := fmt.Sprintf("test_hist_%d_seconds", i)
		lbl := label()
		h := reg.Histogram(name, "random histogram", lbl, []float64{0.1, 1, 10})
		n := rng.Intn(20)
		sum := 0.0
		cum := make([]float64, 4) // 0.1, 1, 10, +Inf
		for j := 0; j < n; j++ {
			v := math.Round(rng.Float64()*2000) / 100 // [0, 20], 2 decimals
			if rng.Intn(2) == 0 {
				h.ObserveExemplar(v, fmt.Sprintf("t%d", j), int64(1000+j))
			} else {
				h.Observe(v)
			}
			sum += v
			for bi, ub := range []float64{0.1, 1, 10, math.Inf(1)} {
				if v <= ub {
					cum[bi]++
				}
			}
		}
		for bi, le := range []string{"0.1", "1", "10", "+Inf"} {
			bl := Labels{"le": le}
			for k, v := range lbl {
				bl[k] = v
			}
			want[Sample{Name: name + "_bucket", Labels: bl}.Key()] = cum[bi]
		}
		want[Sample{Name: name + "_count", Labels: lbl}.Key()] = float64(n)
		want[Sample{Name: name + "_sum", Labels: lbl}.Key()] = sum
	}
	return reg, want
}

// TestWriteParseRoundTrip is the exposition-conformance property test:
// for many random registries, WriteText output must parse back (via
// ParseText) into exactly the sample set the registry holds.
func TestWriteParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reg, want := buildRandomRegistry(rng)

		var buf strings.Builder
		if err := reg.WriteText(&buf); err != nil {
			t.Fatalf("seed %d: WriteText: %v", seed, err)
		}
		text := buf.String()
		if !strings.HasSuffix(text, "\n") {
			t.Fatalf("seed %d: exposition does not end in a newline", seed)
		}
		samples, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("seed %d: ParseText: %v\n%s", seed, err, text)
		}
		got := make(map[string]float64, len(samples))
		for _, s := range samples {
			if _, dup := got[s.Key()]; dup {
				t.Fatalf("seed %d: duplicate sample %s", seed, s.Key())
			}
			got[s.Key()] = s.Value
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d samples round-tripped, want %d\n%s",
				seed, len(got), len(want), text)
		}
		for k, wv := range want {
			gv, ok := got[k]
			if !ok {
				t.Fatalf("seed %d: sample %s lost in round trip", seed, k)
			}
			if math.Abs(gv-wv) > 1e-9*math.Max(1, math.Abs(wv)) {
				t.Fatalf("seed %d: sample %s = %v, want %v", seed, k, gv, wv)
			}
		}
	}
}

// TestHostileLabelValuesRoundTrip pins the escaping rules one hostile
// value at a time — a request path is an attacker-controlled string, and
// the flight recorder now routes such paths into label values, so every
// escape class gets its own case and its own failure message.
func TestHostileLabelValuesRoundTrip(t *testing.T) {
	hostile := []string{
		`"`, `""`, `say "hi"`, // quotes
		`\`, `\\`, `c:\docs\file`, `trailing\`, `\leading`, // backslashes
		"\n", "line\nbreak", "\n\n", "ends with\n", // newlines
		`\"`, "quote\"back\\slash\nnewline", // combinations
		`/docs/u000001.dat?q="x"\n`, // a hostile request path
		"",                          // the empty value must survive too
	}
	for i, v := range hostile {
		name := fmt.Sprintf("hostile_%d_total", i)
		reg := NewRegistry()
		reg.Counter(name, "hostile label case", Labels{"path": v}).Add(float64(i + 1))

		var buf strings.Builder
		if err := reg.WriteText(&buf); err != nil {
			t.Fatalf("case %d (%q): WriteText: %v", i, v, err)
		}
		text := buf.String()
		samples, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("case %d (%q): ParseText: %v\n%s", i, v, err, text)
		}
		var found bool
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			found = true
			if got := s.Labels["path"]; got != v {
				t.Errorf("case %d: label value %q round-tripped as %q\n%s", i, v, got, text)
			}
			if s.Value != float64(i+1) {
				t.Errorf("case %d (%q): value %v, want %d", i, v, s.Value, i+1)
			}
		}
		if !found {
			t.Errorf("case %d: sample with label %q lost entirely\n%s", i, v, text)
		}
		// The escaped line itself must stay one physical line: a raw
		// newline in the exposition would corrupt neighbouring samples.
		for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
			if strings.HasPrefix(line, "#") || line == "" {
				continue
			}
			if !strings.HasPrefix(line, name) {
				t.Errorf("case %d (%q): stray physical line %q leaked into the exposition", i, v, line)
			}
		}
	}
}

// TestExemplarRoundTrip pins the exemplar suffix format: every bucket's
// retained (trace id, value, timestamp) triple must survive WriteText →
// ParseText even with hostile trace ids, with labels that themselves need
// escaping, and without ever breaking the one-physical-line invariant.
func TestExemplarRoundTrip(t *testing.T) {
	hostileIDs := []string{
		"plain-trace-7", `quote"inside`, `back\slash`, "new\nline",
		`}`, `{a="b"}`, " # ", `x" # {trace_id="forged"} 9 9`, "trailing\\", "",
	}
	for i, id := range hostileIDs {
		name := fmt.Sprintf("exhist_%d_seconds", i)
		reg := NewRegistry()
		h := reg.Histogram(name, "exemplar case", Labels{"path": `with"quote`}, []float64{0.5, 5})
		h.ObserveExemplar(0.25, id, int64(1234567+i))
		h.ObserveExemplar(2.5, "other", 99)
		h.Observe(100) // +Inf bucket, no exemplar

		var buf strings.Builder
		if err := reg.WriteText(&buf); err != nil {
			t.Fatalf("case %d (%q): WriteText: %v", i, id, err)
		}
		text := buf.String()
		samples, err := ParseText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("case %d (%q): ParseText: %v\n%s", i, id, err, text)
		}
		for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
			if strings.HasPrefix(line, "#") || line == "" {
				continue
			}
			if !strings.HasPrefix(line, name) {
				t.Errorf("case %d (%q): stray physical line %q in exposition", i, id, line)
			}
		}
		var got *Exemplar
		var infEx *Exemplar
		for _, s := range samples {
			if s.Name != name+"_bucket" {
				if s.Exemplar != nil {
					t.Errorf("case %d: exemplar leaked onto %s", i, s.Name)
				}
				continue
			}
			switch s.Labels["le"] {
			case "0.5":
				got = s.Exemplar
			case "+Inf":
				infEx = s.Exemplar
			}
		}
		if id == "" {
			// An untraced observation leaves no exemplar behind.
			if got != nil {
				t.Errorf("case %d: empty trace id produced exemplar %+v", i, got)
			}
			continue
		}
		if got == nil {
			t.Fatalf("case %d (%q): bucket exemplar lost\n%s", i, id, text)
		}
		if got.TraceID != id {
			t.Errorf("case %d: trace id %q round-tripped as %q\n%s", i, id, got.TraceID, text)
		}
		if got.Value != 0.25 || got.TSMicros != int64(1234567+i) {
			t.Errorf("case %d (%q): exemplar payload %+v", i, id, got)
		}
		if infEx != nil {
			t.Errorf("case %d: +Inf bucket unexpectedly carries exemplar %+v", i, infEx)
		}
	}
}

// TestExemplarLatestWins checks the retention rule (most recent traced
// observation per bucket) and that MergeSamples keeps the freshest
// exemplar across scrapes.
func TestExemplarLatestWins(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ex_seconds", "h", nil, []float64{1})
	h.ObserveExemplar(0.3, "old", 10)
	h.ObserveExemplar(0.4, "new", 20)

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == "ex_seconds_bucket" && s.Labels["le"] == "1" {
			if s.Exemplar == nil || s.Exemplar.TraceID != "new" {
				t.Fatalf("bucket exemplar = %+v, want trace id \"new\"", s.Exemplar)
			}
		}
	}

	older := []Sample{{Name: "m_bucket", Labels: Labels{"le": "1"}, Value: 2,
		Exemplar: &Exemplar{TraceID: "a", TSMicros: 5}}}
	newer := []Sample{{Name: "m_bucket", Labels: Labels{"le": "1"}, Value: 3,
		Exemplar: &Exemplar{TraceID: "b", TSMicros: 9}}}
	for _, order := range [][][]Sample{{older, newer}, {newer, older}} {
		merged := MergeSamples(order[0], order[1])
		if len(merged) != 1 || merged[0].Value != 5 {
			t.Fatalf("merge = %+v", merged)
		}
		if merged[0].Exemplar == nil || merged[0].Exemplar.TraceID != "b" {
			t.Fatalf("merged exemplar = %+v, want freshest (\"b\")", merged[0].Exemplar)
		}
	}
}

// TestWriteTextDeterministicOrder builds the same contents in two
// different registration orders and requires byte-identical exposition.
func TestWriteTextDeterministicOrder(t *testing.T) {
	build := func(perm []int) string {
		reg := NewRegistry()
		register := []func(){
			func() { reg.Counter("o_total", "c", Labels{"n": "1"}).Add(3) },
			func() { reg.Counter("o_total", "c", Labels{"n": "0"}).Add(2) },
			func() { reg.Gauge("o_gauge", "g", nil).Set(7) },
			func() { reg.Histogram("o_seconds", "h", Labels{"p": "x"}, []float64{1}).Observe(0.5) },
		}
		for _, i := range perm {
			register[i]()
		}
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	c := build([]int{1, 3, 0, 2})
	if a != b || a != c {
		t.Fatalf("WriteText order-dependent:\n--- a ---\n%s--- b ---\n%s--- c ---\n%s", a, b, c)
	}
}
