package rebalance

import (
	"testing"

	"sweb/internal/heat"
	"sweb/internal/storage"
)

// testStore builds a 4-node store with one replicable document owned by
// node 0 and one CGI endpoint.
func testStore(t *testing.T) *storage.Store {
	t.Helper()
	st := storage.NewStore(4)
	for _, f := range []storage.File{
		{Path: "/hot.html", Size: 4096, Owner: 0},
		{Path: "/cold.html", Size: 1024, Owner: 1},
		{Path: "/cgi/sum", Size: 0, Owner: 2, CGI: true, CGIOps: 1000},
	} {
		if err := st.Add(f); err != nil {
			t.Fatalf("Add %s: %v", f.Path, err)
		}
	}
	return st
}

// view builds a Merged heat view where path draws count landings out of
// total, spread over byNode.
func view(total uint64, entries ...heat.MergedEntry) heat.Merged {
	return heat.Merged{Total: total, Entries: entries}
}

func entry(path string, owner int, count uint64, byNode map[int]uint64) heat.MergedEntry {
	var relays uint64
	for n, c := range byNode {
		if n != owner {
			relays += c
		}
	}
	return heat.MergedEntry{
		Path: path, Owner: owner, Count: count,
		Relays: relays, ByNode: byNode,
	}
}

// hotView is a skew where /hot.html draws 80% of traffic, most of it
// landing on node 2.
func hotView() heat.Merged {
	return view(100,
		entry("/hot.html", 0, 80, map[int]uint64{0: 10, 2: 60, 3: 10}),
		entry("/cold.html", 1, 20, map[int]uint64{1: 20}),
	)
}

func TestHysteresisDelaysAdd(t *testing.T) {
	st := testStore(t)
	c := New(Config{ForTicks: 2, HotShare: 0.5, CoolShare: 0.1, MaxReplicas: 2, BudgetPerTick: 4})
	if acts := c.Tick(hotView(), st, nil); len(acts) != 0 {
		t.Fatalf("tick 1 acted before ForTicks elapsed: %+v", acts)
	}
	acts := c.Tick(hotView(), st, nil)
	if len(acts) != 1 || acts[0].Kind != "add" || acts[0].Path != "/hot.html" {
		t.Fatalf("tick 2 = %+v, want single add for /hot.html", acts)
	}
	if acts[0].Node != 2 {
		t.Fatalf("replica target = %d, want heaviest landing node 2", acts[0].Node)
	}
}

func TestCooldownAndMaxReplicas(t *testing.T) {
	st := testStore(t)
	c := New(Config{ForTicks: 1, HotShare: 0.5, CoolShare: 0.1, MaxReplicas: 2, BudgetPerTick: 4, CooldownTicks: 2})
	acts := c.Tick(hotView(), st, nil)
	if len(acts) != 1 || acts[0].Kind != "add" {
		t.Fatalf("tick 1 = %+v, want one add", acts)
	}
	if err := st.AddReplica("/hot.html", acts[0].Node); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	// Cooldown suppresses further action even though the doc stays hot.
	if acts := c.Tick(hotView(), st, nil); len(acts) != 0 {
		t.Fatalf("tick 2 acted during cooldown: %+v", acts)
	}
	if acts := c.Tick(hotView(), st, nil); len(acts) != 0 {
		t.Fatalf("tick 3 acted during cooldown: %+v", acts)
	}
	// Cooldown expired, but MaxReplicas=2 is already met: still no add.
	if acts := c.Tick(hotView(), st, nil); len(acts) != 0 {
		t.Fatalf("tick 4 exceeded MaxReplicas: %+v", acts)
	}
}

func TestDropWhenCool(t *testing.T) {
	st := testStore(t)
	if err := st.AddReplica("/hot.html", 2); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	c := New(Config{ForTicks: 2, HotShare: 0.5, CoolShare: 0.2, MaxReplicas: 2, BudgetPerTick: 4})
	cool := view(100,
		entry("/hot.html", 0, 5, map[int]uint64{0: 5}),
		entry("/cold.html", 1, 95, map[int]uint64{1: 40, 0: 55}),
	)
	if acts := c.Tick(cool, st, nil); actsOf(acts, "drop") != 0 {
		t.Fatalf("tick 1 dropped before ForTicks: %+v", acts)
	}
	acts := c.Tick(cool, st, nil)
	var drop *Action
	for i := range acts {
		if acts[i].Kind == "drop" && acts[i].Path == "/hot.html" {
			drop = &acts[i]
		}
	}
	if drop == nil {
		t.Fatalf("tick 2 = %+v, want drop of /hot.html surplus replica", acts)
	}
	if drop.Node != 2 {
		t.Fatalf("drop node = %d, want surplus replica 2 (never primary)", drop.Node)
	}
}

func TestNeverDropsPrimary(t *testing.T) {
	st := testStore(t)
	c := New(Config{ForTicks: 1, HotShare: 0.9, CoolShare: 0.5, MaxReplicas: 2, BudgetPerTick: 4})
	// /hot.html is cool (share .3) but has no surplus replica: nothing to drop.
	cool := view(100,
		entry("/hot.html", 0, 30, map[int]uint64{0: 30}),
		entry("/cold.html", 1, 70, map[int]uint64{1: 70}),
	)
	for i := 0; i < 3; i++ {
		if acts := c.Tick(cool, st, nil); len(acts) != 0 {
			t.Fatalf("tick %d = %+v, want none (only primary exists)", i+1, acts)
		}
	}
}

func TestBudgetCapsAdds(t *testing.T) {
	st := storage.NewStore(4)
	for _, f := range []storage.File{
		{Path: "/a.html", Size: 4096, Owner: 0},
		{Path: "/b.html", Size: 4096, Owner: 1},
	} {
		if err := st.Add(f); err != nil {
			t.Fatalf("Add %s: %v", f.Path, err)
		}
	}
	c := New(Config{ForTicks: 1, HotShare: 0.4, CoolShare: 0.1, MaxReplicas: 2, BudgetPerTick: 1, CooldownTicks: 2})
	both := view(100,
		entry("/a.html", 0, 50, map[int]uint64{0: 10, 2: 40}),
		entry("/b.html", 1, 50, map[int]uint64{1: 5, 3: 45}),
	)
	acts := c.Tick(both, st, nil)
	if actsOf(acts, "add") != 1 {
		t.Fatalf("budget 1 produced %d adds: %+v", actsOf(acts, "add"), acts)
	}
	// The un-acted path kept its streak and was not put on cooldown, so the
	// next tick replicates it.
	acts2 := c.Tick(both, st, nil)
	if actsOf(acts2, "add") != 1 {
		t.Fatalf("tick 2 adds = %d, want the deferred path: %+v", actsOf(acts2, "add"), acts2)
	}
	if len(acts) == 1 && len(acts2) == 1 && acts[0].Path == acts2[0].Path {
		t.Fatalf("both ticks acted on %s; budget should round-robin the backlog", acts[0].Path)
	}
}

func TestSkipsDownNodesAndCGI(t *testing.T) {
	st := testStore(t)
	c := New(Config{ForTicks: 1, HotShare: 0.5, CoolShare: 0.1, MaxReplicas: 2, BudgetPerTick: 4})
	up := func(n int) bool { return n != 2 } // the advisor's pick is down
	acts := c.Tick(hotView(), st, up)
	if len(acts) != 1 || acts[0].Kind != "add" {
		t.Fatalf("acts = %+v, want one add despite node 2 down", acts)
	}
	if acts[0].Node != 3 {
		t.Fatalf("replica target = %d, want fallback to next-heaviest up node 3", acts[0].Node)
	}

	// A hot CGI endpoint never replicates.
	cgi := view(100,
		entry("/cgi/sum", 2, 90, map[int]uint64{0: 45, 1: 45}),
		entry("/cold.html", 1, 10, map[int]uint64{1: 10}),
	)
	c2 := New(Config{ForTicks: 1, HotShare: 0.5, CoolShare: 0.1, MaxReplicas: 2, BudgetPerTick: 4})
	for i := 0; i < 2; i++ {
		if acts := c2.Tick(cgi, st, nil); len(acts) != 0 {
			t.Fatalf("tick %d replicated a CGI endpoint: %+v", i+1, acts)
		}
	}
}

func TestStreakResetsWhenPathVanishes(t *testing.T) {
	st := testStore(t)
	c := New(Config{ForTicks: 2, HotShare: 0.5, CoolShare: 0.1, MaxReplicas: 2, BudgetPerTick: 4})
	c.Tick(hotView(), st, nil) // hot streak 1
	quiet := view(100, entry("/cold.html", 1, 100, map[int]uint64{1: 100}))
	c.Tick(quiet, st, nil) // /hot.html vanished: streak resets
	if acts := c.Tick(hotView(), st, nil); len(acts) != 0 {
		t.Fatalf("streak survived a vanish: %+v", acts)
	}
	if acts := c.Tick(hotView(), st, nil); len(acts) != 1 {
		t.Fatalf("restarted streak did not arm: %+v", acts)
	}
}

func actsOf(acts []Action, kind string) int {
	n := 0
	for _, a := range acts {
		if a.Kind == kind {
			n++
		}
	}
	return n
}
