// Package rebalance turns the placement advisor's report-only output
// (heat.Advise) into replica-set actions: replicate a hot document onto
// the non-owner node already landing most of its traffic, and drain
// surplus replicas once a document cools. The controller is substrate
// independent — it reads a merged heat view and the shared document map
// and emits Actions; the caller (a live cluster goroutine, the swebd
// -rebalance leader, or a DES periodic hook) actually moves the bytes.
//
// Stability comes from three guards: a document must stay hot (or cool)
// for ForTicks consecutive observations before the controller acts
// (hysteresis against one-burst noise), each tick replicates at most
// BudgetPerTick documents (the interconnect also carries client bytes),
// and a freshly changed path sits out CooldownTicks before the next
// action (the heat window must refill with post-change landings before
// it can be judged again).
package rebalance

import (
	"sort"

	"sweb/internal/heat"
	"sweb/internal/storage"
)

// Config tunes the controller. The zero value is unusable; use Defaults.
type Config struct {
	// MaxReplicas caps a document's replica-set size (R).
	MaxReplicas int
	// BudgetPerTick caps replications per tick; drops are free (they
	// move no bytes) and are not counted against it.
	BudgetPerTick int
	// HotShare is the cluster-request share above which a document is
	// replication-worthy.
	HotShare float64
	// CoolShare is the share below which a surplus replica drains.
	// Must sit well under HotShare or the controller oscillates.
	CoolShare float64
	// ForTicks is how many consecutive hot (cool) observations arm an
	// add (drop).
	ForTicks int
	// CooldownTicks is how long a just-changed path is exempt from
	// further actions.
	CooldownTicks int
}

// Defaults mirror the monitor's hot_doc posture: act on a document
// drawing over half the cluster's requests, drain when it falls under a
// fifth, two confirming ticks each way, one replication per tick.
func Defaults() Config {
	return Config{
		MaxReplicas:   2,
		BudgetPerTick: 1,
		HotShare:      0.5,
		CoolShare:     0.2,
		ForTicks:      2,
		CooldownTicks: 2,
	}
}

// Action is one replica-set change the controller wants made.
type Action struct {
	// Kind is "add" or "drop".
	Kind string `json:"kind"`
	// Path is the document.
	Path string `json:"path"`
	// Node gains (add) or loses (drop) the replica.
	Node int `json:"node"`
	// Predicted is the advisor's predicted cluster-work reduction for
	// an add (0 for drops) — recorded so the redistribution test can
	// hold the forecast against the observed relay-rate drop.
	Predicted float64 `json:"predicted"`
}

// Controller applies hysteresis across ticks. Not safe for concurrent
// use; each deployment runs exactly one.
type Controller struct {
	cfg      Config
	hotFor   map[string]int // consecutive ticks at or above HotShare
	coolFor  map[string]int // consecutive ticks at or below CoolShare
	cooldown map[string]int // ticks left before the path may change again
}

// New builds a controller, normalizing nonsensical config to Defaults
// field by field.
func New(cfg Config) *Controller {
	def := Defaults()
	if cfg.MaxReplicas < 1 {
		cfg.MaxReplicas = def.MaxReplicas
	}
	if cfg.BudgetPerTick < 1 {
		cfg.BudgetPerTick = def.BudgetPerTick
	}
	if cfg.HotShare <= 0 || cfg.HotShare > 1 {
		cfg.HotShare = def.HotShare
	}
	if cfg.CoolShare < 0 || cfg.CoolShare >= cfg.HotShare {
		cfg.CoolShare = def.CoolShare
		if cfg.CoolShare >= cfg.HotShare {
			cfg.CoolShare = cfg.HotShare / 2
		}
	}
	if cfg.ForTicks < 1 {
		cfg.ForTicks = def.ForTicks
	}
	if cfg.CooldownTicks < 0 {
		cfg.CooldownTicks = def.CooldownTicks
	}
	return &Controller{
		cfg:      cfg,
		hotFor:   make(map[string]int),
		coolFor:  make(map[string]int),
		cooldown: make(map[string]int),
	}
}

// Tick consumes one merged heat view and returns the actions to take
// now, adds before drops, adds ordered by predicted reduction. up
// reports whether a node can receive a replica right now (nil: all up);
// store supplies the current replica sets and is not mutated here.
func (c *Controller) Tick(m heat.Merged, store *storage.Store, up func(int) bool) []Action {
	for p, left := range c.cooldown {
		if left <= 1 {
			delete(c.cooldown, p)
		} else {
			c.cooldown[p] = left - 1
		}
	}
	seen := make(map[string]bool)
	var adds, drops []Action
	for _, a := range heat.Advise(m) {
		seen[a.Path] = true
		f, ok := store.Lookup(a.Path)
		if !ok || f.CGI {
			continue
		}
		switch {
		case a.Share >= c.cfg.HotShare:
			c.hotFor[a.Path]++
			delete(c.coolFor, a.Path)
		case a.Share <= c.cfg.CoolShare:
			c.coolFor[a.Path]++
			delete(c.hotFor, a.Path)
		default:
			delete(c.hotFor, a.Path)
			delete(c.coolFor, a.Path)
		}
		if c.cooldown[a.Path] > 0 {
			continue
		}
		reps := f.ReplicaSet()
		if c.hotFor[a.Path] >= c.cfg.ForTicks && len(reps) < c.cfg.MaxReplicas {
			node := a.ReplicaNode
			if node < 0 || f.HasReplica(node) || (up != nil && !up(node)) {
				// The advisor's pick is unusable; fall back to the
				// heaviest usable landing node from the merged view.
				node = heaviestCandidate(m, a.Path, f, up)
			}
			if node >= 0 {
				adds = append(adds, Action{Kind: "add", Path: a.Path, Node: node, Predicted: a.PredictedReduction})
			}
		}
		if c.coolFor[a.Path] >= c.cfg.ForTicks && len(reps) > 1 {
			// Drain the last-added replica (set order is owner-first,
			// additions append), keeping the primary untouchable.
			drops = append(drops, Action{Kind: "drop", Path: a.Path, Node: reps[len(reps)-1]})
		}
	}
	// A path that fell out of the advisor's view entirely has gone cold:
	// its streaks reset, so a later reappearance starts from zero.
	for p := range c.hotFor {
		if !seen[p] {
			delete(c.hotFor, p)
		}
	}
	for p := range c.coolFor {
		if !seen[p] {
			delete(c.coolFor, p)
		}
	}
	sort.SliceStable(adds, func(i, j int) bool { return adds[i].Predicted > adds[j].Predicted })
	if len(adds) > c.cfg.BudgetPerTick {
		adds = adds[:c.cfg.BudgetPerTick]
	}
	out := append(adds, drops...)
	for _, act := range out {
		c.cooldown[act.Path] = c.cfg.CooldownTicks
		delete(c.hotFor, act.Path)
		delete(c.coolFor, act.Path)
	}
	return out
}

// heaviestCandidate scans the merged per-node landings for the busiest
// node that could hold a new replica of path.
func heaviestCandidate(m heat.Merged, path string, f storage.File, up func(int) bool) int {
	for _, e := range m.Entries {
		if e.Path != path {
			continue
		}
		best, bestCount := -1, uint64(0)
		for node, cnt := range e.ByNode {
			if f.HasReplica(node) || (up != nil && !up(node)) {
				continue
			}
			if cnt > bestCount || (cnt == bestCount && best >= 0 && node < best) {
				best, bestCount = node, cnt
			}
		}
		return best
	}
	return -1
}
