package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 || s.Variance() != 0 {
		t.Fatal("empty summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	// Sample stddev of this classic set: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %v want %v", s.StdDev(), want)
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Variance() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-value summary wrong")
	}
}

func TestQuantiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.95, 95.05}, {-1, 1}, {2, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%v: got %v want %v", c.q, got, c.want)
		}
	}
	var empty Summary
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b Summary
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	for _, v := range []float64{4, 5, 6} {
		b.Add(v)
	}
	a.Merge(&b)
	if a.N() != 6 || math.Abs(a.Mean()-3.5) > 1e-12 {
		t.Fatalf("merged mean = %v n = %d", a.Mean(), a.N())
	}
}

func TestDropCauseStrings(t *testing.T) {
	if DropRefused.String() != "refused" || DropTimeout.String() != "timeout" ||
		DropUnavailable.String() != "unavailable" {
		t.Fatal("drop cause names")
	}
	if !strings.Contains(DropCause(42).String(), "42") {
		t.Fatal("unknown cause formatting")
	}
}

func TestRunResultAccounting(t *testing.T) {
	r := RunResult{PerNodeServed: make([]int64, 3)}
	r.Offered = 5
	r.RecordSuccess(1.0, 2, true, PhaseBreakdown{Preprocess: 0.1, Transfer: 0.9})
	r.RecordSuccess(3.0, 0, false, PhaseBreakdown{})
	r.RecordDrop(DropRefused)
	r.RecordDrop(DropTimeout)
	r.RecordDrop(DropCause(99)) // ignored
	if r.Completed != 2 || r.Dropped() != 2 {
		t.Fatalf("completed=%d dropped=%d", r.Completed, r.Dropped())
	}
	if math.Abs(r.DropRate()-0.4) > 1e-12 {
		t.Fatalf("drop rate = %v", r.DropRate())
	}
	if math.Abs(r.MeanResponse()-2.0) > 1e-12 {
		t.Fatalf("mean = %v", r.MeanResponse())
	}
	if r.Redirects != 1 {
		t.Fatalf("redirects = %d", r.Redirects)
	}
	if r.PerNodeServed[2] != 1 || r.PerNodeServed[0] != 1 {
		t.Fatalf("per-node = %v", r.PerNodeServed)
	}
	var empty RunResult
	if empty.DropRate() != 0 {
		t.Fatal("empty drop rate")
	}
}

func TestPhaseBreakdownTotal(t *testing.T) {
	p := PhaseBreakdown{Preprocess: 1, Analysis: 2, Redirect: 3, Transfer: 4, Network: 5}
	if p.Total() != 15 {
		t.Fatalf("total = %v", p.Total())
	}
}

func TestMaxRPSFindsThreshold(t *testing.T) {
	// Synthetic system that fails above 17 rps.
	run := func(rps int) float64 {
		if rps > 17 {
			return 0.5
		}
		return 0
	}
	if got := MaxRPS(100, 0.01, run); got != 17 {
		t.Fatalf("MaxRPS = %d", got)
	}
}

func TestMaxRPSEdgeCases(t *testing.T) {
	alwaysFail := func(int) float64 { return 1 }
	neverFail := func(int) float64 { return 0 }
	if got := MaxRPS(50, 0.01, alwaysFail); got != 0 {
		t.Fatalf("always failing: %d", got)
	}
	if got := MaxRPS(50, 0.01, neverFail); got != 50 {
		t.Fatalf("never failing hits the limit: %d", got)
	}
	if got := MaxRPS(0, 0.01, neverFail); got != 0 {
		t.Fatalf("limit 0: %d", got)
	}
	if got := MaxRPS(1, 0.01, neverFail); got != 1 {
		t.Fatalf("limit 1: %d", got)
	}
}

func TestMaxRPSNeverProbesAboveLimit(t *testing.T) {
	probed := []int{}
	run := func(rps int) float64 {
		probed = append(probed, rps)
		return 0
	}
	MaxRPS(10, 0.01, run)
	for _, p := range probed {
		if p > 10 {
			t.Fatalf("probed %d above limit", p)
		}
	}
}

// Property: for any monotone failure threshold k, the search returns
// min(k, limit) exactly.
func TestMaxRPSProperty(t *testing.T) {
	f := func(threshold uint8, limit uint8) bool {
		k := int(threshold%60) + 1
		lim := int(limit%60) + 1
		run := func(rps int) float64 {
			if rps > k {
				return 1
			}
			return 0
		}
		want := k
		if lim < k {
			want = lim
		}
		return MaxRPS(lim, 0.01, run) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Header:  []string{"name", "value"},
		Caption: "a caption",
	}
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta", 42)
	tbl.AddRowStrings("gamma", "x")
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	out := tbl.String()
	for _, want := range []string{"Demo", "name", "alpha", "1.50s", "42", "gamma", "a caption"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 3 rows, caption.
	if len(lines) != 7 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.0005, "0.50ms"},
		{0.25, "250ms"},
		{1.5, "1.50s"},
		{120, "120.00s"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q want %q", c.in, got, c.want)
		}
	}
	if got := FormatPercent(0.373); got != "37.3%" {
		t.Fatalf("FormatPercent = %q", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(values []float64, qa, qb float64) bool {
		if len(values) == 0 {
			return true
		}
		var s Summary
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := s.Quantile(qa), s.Quantile(qb)
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		return va <= vb+1e-9 && va >= sorted[0]-1e-9 && vb <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}, Caption: "cap"}
	tbl.AddRowStrings("x|y", "2")
	out := tbl.Markdown()
	for _, want := range []string{"### T", "| a | b |", "| --- | --- |", `x\|y`, "cap"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRowStrings("plain", "1")
	tbl.AddRowStrings(`has,comma`, `has"quote`)
	out := tbl.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"has,comma","has""quote"` {
		t.Fatalf("quoted row = %q", lines[2])
	}
}

func TestSummaryReservoirBound(t *testing.T) {
	var s Summary
	s.SetCap(100)
	const n = 10000
	for i := 0; i < n; i++ {
		s.Add(float64(i))
	}
	if s.N() != n {
		t.Fatalf("n = %d", s.N())
	}
	if s.Exact() {
		t.Fatal("overflowed summary still claims exact quantiles")
	}
	if got := len(s.Values()); got != 100 {
		t.Fatalf("retained %d values, want 100", got)
	}
	// Moments and extremes stay exact regardless of the reservoir.
	if s.Min() != 0 || s.Max() != n-1 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-(n-1)/2.0) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// The estimated median must land near the true one (wide tolerance:
	// a 100-point reservoir has real sampling error).
	if med := s.Quantile(0.5); med < n/5 || med > 4*n/5 {
		t.Fatalf("median estimate = %v", med)
	}
	if s.Quantile(0) != 0 || s.Quantile(1) != n-1 {
		t.Fatal("extreme quantiles no longer exact")
	}
}

func TestSummaryReservoirDeterministic(t *testing.T) {
	run := func() float64 {
		var s Summary
		s.SetCap(32)
		for i := 0; i < 5000; i++ {
			s.Add(float64(i % 977))
		}
		return s.Quantile(0.9)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("reservoir not deterministic: %v vs %v", a, b)
	}
}

func TestSummaryExactUnderCap(t *testing.T) {
	var s Summary
	for i := 0; i < 1000; i++ {
		s.Add(float64(999 - i))
	}
	if !s.Exact() {
		t.Fatal("bounded run lost exactness")
	}
	if got := s.Quantile(0.5); math.Abs(got-499.5) > 1e-9 {
		t.Fatalf("exact median = %v", got)
	}
}

func TestSummarySetCapPanicsAfterAdd(t *testing.T) {
	var s Summary
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetCap after Add did not panic")
		}
	}()
	s.SetCap(10)
}
