// Package stats provides the measurement side of the reproduction:
// streaming summaries (Welford mean/variance plus exact quantiles over the
// bounded per-run sample counts), drop accounting by cause, the max-rps
// search used for Table 1 ("increasing the rps until requests start to
// fail"), and plain-text table rendering for the paper-style reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultSummaryCap bounds the retained sample: simulator runs sit far
// below it (their quantiles stay exact), while an unbounded live feed
// degrades to a uniform reservoir instead of growing without limit.
const DefaultSummaryCap = 1 << 17

// Summary accumulates a stream of float64 observations. Count, mean,
// variance, min, and max are always exact; quantiles are exact until the
// retained sample reaches the cap, then estimated from a uniform
// reservoir (Vitter's algorithm R, deterministic seed).
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
	capN     int
	values   []float64
	rng      uint64
}

// SetCap overrides the retained-sample bound; n <= 0 restores
// DefaultSummaryCap. It must be called before the first Add — switching
// mid-stream would bias the reservoir.
func (s *Summary) SetCap(n int) {
	if s.n > 0 {
		panic("stats: SetCap after Add")
	}
	if n <= 0 {
		n = DefaultSummaryCap
	}
	s.capN = n
}

func (s *Summary) capacity() int {
	if s.capN == 0 {
		return DefaultSummaryCap
	}
	return s.capN
}

// Exact reports whether every observation is still retained, i.e. the
// quantiles are exact rather than reservoir estimates.
func (s *Summary) Exact() bool { return int64(len(s.values)) == s.n }

// nextRand steps a per-summary xorshift64. A fixed seed keeps runs
// reproducible — the reservoir is a measurement tool, not a source of
// experiment randomness.
func (s *Summary) nextRand() uint64 {
	if s.rng == 0 {
		s.rng = 0x9E3779B97F4A7C15
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if len(s.values) < s.capacity() {
		s.values = append(s.values, x)
		return
	}
	// Algorithm R: the i-th observation replaces a random slot with
	// probability cap/i, keeping the sample uniform over the stream.
	if j := s.nextRand() % uint64(s.n); j < uint64(len(s.values)) {
		s.values[j] = x
	}
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance (n-1 denominator).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation
// over the sorted sample, or 0 with no observations.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Values returns a copy of the retained observations (all of them while
// Exact; a uniform sample beyond the cap), in insertion order until the
// reservoir starts replacing slots.
func (s *Summary) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Merge folds other into s by re-adding its retained values. Exact for
// bounded (simulator) summaries; once other has overflowed its cap the
// merged counts cover the sample only.
func (s *Summary) Merge(other *Summary) {
	for _, v := range other.values {
		s.Add(v)
	}
}

// DropCause classifies why a request failed.
type DropCause int

const (
	// DropRefused: the node's accept capacity (process table + listen
	// backlog) was exhausted when the connection arrived.
	DropRefused DropCause = iota
	// DropTimeout: the response completed after the client's patience
	// expired, so the client counts it as a failure.
	DropTimeout
	// DropUnavailable: no server node was reachable.
	DropUnavailable
	numDropCauses
)

// String names the cause.
func (d DropCause) String() string {
	switch d {
	case DropRefused:
		return "refused"
	case DropTimeout:
		return "timeout"
	case DropUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("cause(%d)", int(d))
	}
}

// PhaseBreakdown is the Table 5 cost itemization for one request, seconds.
type PhaseBreakdown struct {
	Preprocess float64 // HTTP command parsing and path resolution
	Analysis   float64 // broker cost estimation (SWEB)
	Redirect   float64 // generating + following the 302 (SWEB)
	Transfer   float64 // server-side data transfer (disk/NFS + send)
	Network    float64 // Internet drain + latencies
}

// Total sums the phases.
func (p PhaseBreakdown) Total() float64 {
	return p.Preprocess + p.Analysis + p.Redirect + p.Transfer + p.Network
}

// RunResult aggregates one experiment run.
type RunResult struct {
	Offered   int64
	Completed int64
	Drops     [numDropCauses]int64

	Response  Summary // seconds, successful requests only
	Redirects int64   // how many requests were 302'd

	Phases struct {
		Preprocess, Analysis, Redirect, Transfer, Network Summary
	}

	PerNodeServed []int64
	CacheHitRate  float64

	// CPUShare maps activity name to the fraction of total available CPU
	// cycles spent on it (Sec. 4.3 overhead report).
	CPUShare map[string]float64
}

// RecordSuccess adds a completed request.
func (r *RunResult) RecordSuccess(respSeconds float64, servedBy int, redirected bool, ph PhaseBreakdown) {
	r.Completed++
	r.Response.Add(respSeconds)
	if redirected {
		r.Redirects++
	}
	if servedBy >= 0 && servedBy < len(r.PerNodeServed) {
		r.PerNodeServed[servedBy]++
	}
	r.Phases.Preprocess.Add(ph.Preprocess)
	r.Phases.Analysis.Add(ph.Analysis)
	r.Phases.Redirect.Add(ph.Redirect)
	r.Phases.Transfer.Add(ph.Transfer)
	r.Phases.Network.Add(ph.Network)
}

// RecordDrop adds a failed request.
func (r *RunResult) RecordDrop(cause DropCause) {
	if cause >= 0 && cause < numDropCauses {
		r.Drops[cause]++
	}
}

// Dropped returns the total failed requests.
func (r *RunResult) Dropped() int64 {
	var t int64
	for _, d := range r.Drops {
		t += d
	}
	return t
}

// DropRate returns dropped / offered, or 0 if nothing was offered.
func (r *RunResult) DropRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped()) / float64(r.Offered)
}

// MeanResponse returns the mean response time of successful requests.
func (r *RunResult) MeanResponse() float64 { return r.Response.Mean() }

// MaxRPS performs the paper's max-rps search: run(rps) reports the drop
// rate at that offered load; the search returns the largest integer rps in
// [1, limit] whose drop rate stays at or below threshold. It first doubles
// to bracket the failure point, then binary-searches. Monotonicity is
// assumed, as in the paper's methodology.
func MaxRPS(limit int, threshold float64, run func(rps int) float64) int {
	if limit < 1 {
		return 0
	}
	ok := func(rps int) bool { return run(rps) <= threshold }
	if !ok(1) {
		return 0
	}
	lo := 1 // known good
	hi := arrMin(2, limit)
	for hi < limit && ok(hi) {
		lo = hi
		hi *= 2
	}
	if hi >= limit {
		if ok(limit) {
			return limit
		}
		hi = limit
	}
	// Invariant: ok(lo), !ok(hi).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func arrMin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table renders aligned plain-text tables in the style of the paper.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	Caption string
}

// AddRow appends one row; cells are printf'd with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSeconds(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends pre-formatted cells.
func (t *Table) AddRowStrings(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, r := range t.rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = strings.ReplaceAll(c, "|", `\|`)
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Caption)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first; fields
// containing commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatSeconds renders a duration in seconds with sensible precision.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case math.Abs(s) < 0.001:
		return fmt.Sprintf("%.2fms", s*1000)
	case math.Abs(s) < 1:
		return fmt.Sprintf("%.0fms", s*1000)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// FormatPercent renders a 0..1 fraction as a percentage.
func FormatPercent(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}
