package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeSeriesBasics(t *testing.T) {
	var ts TimeSeries
	if ts.Len() != 0 || ts.Peak() != 0 || ts.Mean() != 0 {
		t.Fatal("empty series not zero")
	}
	ts.Add(0.5, 1)
	ts.Add(0.9, 1)
	ts.Add(2.1, 3)
	if ts.Len() != 3 {
		t.Fatalf("len = %d", ts.Len())
	}
	b := ts.Buckets()
	if b[0] != 2 || b[1] != 0 || b[2] != 3 {
		t.Fatalf("buckets = %v", b)
	}
	if ts.Peak() != 3 {
		t.Fatalf("peak = %v", ts.Peak())
	}
	if got := ts.Mean(); got < 1.66 || got > 1.67 {
		t.Fatalf("mean = %v", got)
	}
}

func TestTimeSeriesIgnoresNegativeAndNaN(t *testing.T) {
	var ts TimeSeries
	ts.Add(-1, 5)
	ts.Add(nan(), 5)
	if ts.Len() != 0 {
		t.Fatal("invalid times created buckets")
	}
}

func nan() float64 { var z float64; return z / z }

func TestSparkline(t *testing.T) {
	var ts TimeSeries
	if ts.RenderSparkline() != "(empty)" {
		t.Fatal("empty sparkline")
	}
	ts.Add(0, 0)
	ts.Add(1, 5)
	ts.Add(2, 10)
	line := []rune(ts.RenderSparkline())
	if len(line) != 3 {
		t.Fatalf("sparkline %q", string(line))
	}
	if line[2] != '█' {
		t.Fatalf("peak bucket is %q", line[2])
	}
	if line[0] == '█' {
		t.Fatal("zero bucket rendered full")
	}
}

func TestBucketsAreACopy(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	b := ts.Buckets()
	b[0] = 99
	if ts.Buckets()[0] != 1 {
		t.Fatal("Buckets leaked internal state")
	}
}

func TestRenderHistogram(t *testing.T) {
	var s Summary
	if RenderHistogram(&s, 5, "s") != "(no samples)\n" {
		t.Fatal("empty histogram")
	}
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	out := RenderHistogram(&s, 10, "s")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("buckets = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars rendered")
	}
	// Counts sum to N.
	total := 0
	for _, ln := range lines {
		fields := strings.Fields(ln)
		n := 0
		if _, err := sscanInt(fields[len(fields)-1], &n); err != nil {
			t.Fatalf("bad line %q", ln)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("histogram counts sum to %d", total)
	}
}

func sscanInt(s string, out *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errParse
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return 1, nil
}

var errParse = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "parse error" }

func TestRenderHistogramConstantValues(t *testing.T) {
	var s Summary
	for i := 0; i < 5; i++ {
		s.Add(3.5)
	}
	out := RenderHistogram(&s, 10, "s")
	if !strings.Contains(out, "all 5 samples") {
		t.Fatalf("constant histogram: %q", out)
	}
}

// Property: the series total equals the sum of added values regardless of
// insertion order.
func TestTimeSeriesConservationProperty(t *testing.T) {
	f := func(times []uint16, vals []uint8) bool {
		var ts TimeSeries
		var want float64
		for i, tt := range times {
			v := 1.0
			if i < len(vals) {
				v = float64(vals[i])
			}
			ts.Add(float64(tt%300), v)
			want += v
		}
		var got float64
		for _, b := range ts.Buckets() {
			got += b
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
