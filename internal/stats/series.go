package stats

import (
	"fmt"
	"math"
	"strings"
)

// TimeSeries accumulates values into fixed one-second buckets, for
// throughput-over-time views of a run (completions per second, bytes per
// second).
type TimeSeries struct {
	buckets []float64
}

// Add accumulates v into the bucket containing time atSec (seconds from
// the run start). Negative times are ignored.
func (ts *TimeSeries) Add(atSec, v float64) {
	if atSec < 0 || math.IsNaN(atSec) {
		return
	}
	idx := int(atSec)
	for len(ts.buckets) <= idx {
		ts.buckets = append(ts.buckets, 0)
	}
	ts.buckets[idx] += v
}

// Buckets returns a copy of the per-second totals.
func (ts *TimeSeries) Buckets() []float64 {
	return append([]float64(nil), ts.buckets...)
}

// Len returns the number of buckets (the covered duration in seconds).
func (ts *TimeSeries) Len() int { return len(ts.buckets) }

// Peak returns the largest bucket value.
func (ts *TimeSeries) Peak() float64 {
	var m float64
	for _, v := range ts.buckets {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average bucket value.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.buckets) == 0 {
		return 0
	}
	var sum float64
	for _, v := range ts.buckets {
		sum += v
	}
	return sum / float64(len(ts.buckets))
}

// RenderSparkline draws the series as a one-line bar chart, scaled to the
// peak; the paper-era equivalent of a throughput plot in a terminal.
func (ts *TimeSeries) RenderSparkline() string {
	if len(ts.buckets) == 0 {
		return "(empty)"
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	peak := ts.Peak()
	var b strings.Builder
	for _, v := range ts.buckets {
		idx := 0
		if peak > 0 {
			idx = int(v / peak * float64(len(levels)-1))
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// RenderHistogram draws a Summary's value distribution as an ASCII
// histogram with the given number of equal-width buckets.
func RenderHistogram(s *Summary, buckets int, unit string) string {
	if s.N() == 0 {
		return "(no samples)\n"
	}
	if buckets <= 0 {
		buckets = 10
	}
	lo, hi := s.Min(), s.Max()
	width := (hi - lo) / float64(buckets)
	if width <= 0 {
		return fmt.Sprintf("all %d samples = %.3g%s\n", s.N(), lo, unit)
	}
	counts := make([]int, buckets)
	for _, v := range s.values {
		idx := int((v - lo) / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		barLen := 0
		if maxCount > 0 {
			barLen = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%10.3g-%-10.3g %-40s %d\n",
			lo+float64(i)*width, lo+float64(i+1)*width,
			strings.Repeat("#", barLen), c)
	}
	return b.String()
}
