package heat

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestNilSketchIsSafe(t *testing.T) {
	var s *Sketch
	s.Observe(Observation{Path: "/a"})
	if s.Total() != 0 || s.Tracked() != 0 {
		t.Fatal("nil sketch should report zeros")
	}
	d := s.Dump()
	if d.Enabled {
		t.Fatal("nil sketch dump must be Enabled:false")
	}
	if got := s.Hot(4); len(got) != 0 {
		t.Fatalf("nil sketch Hot = %v", got)
	}
}

func TestSketchBasicAccumulation(t *testing.T) {
	s := New(Config{K: 4})
	for i := 0; i < 3; i++ {
		s.Observe(Observation{Path: "/hot", Owner: 1, Bytes: 100,
			Relay: i > 0, Miss: i == 0, Seconds: 0.5})
	}
	s.Observe(Observation{Path: "/cold", Owner: 0, Bytes: 7})
	d := s.Dump()
	if !d.Enabled || d.Total != 4 || len(d.Entries) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	e := d.Entries[0]
	if e.Path != "/hot" || e.Count != 3 || e.ErrBound != 0 ||
		e.Bytes != 300 || e.Relays != 2 || e.Misses != 1 || e.Owner != 1 {
		t.Fatalf("hot entry = %+v", e)
	}
	if e.LatencySum < 1.49 || e.LatencySum > 1.51 {
		t.Fatalf("latency sum = %v", e.LatencySum)
	}
	if got := s.Hot(1); len(got) != 1 || got[0] != "/hot" {
		t.Fatalf("Hot(1) = %v", got)
	}
}

func TestSketchEvictionInheritsBound(t *testing.T) {
	s := New(Config{K: 2})
	s.Observe(Observation{Path: "/a"})
	s.Observe(Observation{Path: "/a"})
	s.Observe(Observation{Path: "/b"})
	// Full: /c replaces the minimum (/b, count 1) and inherits it.
	s.Observe(Observation{Path: "/c", Bytes: 9})
	d := s.Dump()
	if len(d.Entries) != 2 {
		t.Fatalf("entries = %+v", d.Entries)
	}
	var c *Entry
	for i := range d.Entries {
		if d.Entries[i].Path == "/c" {
			c = &d.Entries[i]
		}
	}
	if c == nil || c.Count != 2 || c.ErrBound != 1 || c.Bytes != 9 {
		t.Fatalf("replacement entry = %+v", c)
	}
}

// TestSketchVsExactOracle is the randomized property test: against an
// exact count oracle, (1) every path whose true count exceeds Total/K
// must be tracked (the Space-Saving heavy-hitter guarantee), (2) every
// tracked count is an overestimate by at most its error bound, and (3)
// every error bound is at most Total/K.
func TestSketchVsExactOracle(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		k := 8 + rng.Intn(24)
		s := New(Config{K: k})
		exact := map[string]uint64{}
		paths := make([]string, 4*k)
		for i := range paths {
			paths[i] = fmt.Sprintf("/doc%03d", i)
		}
		n := 2000 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			// Zipf-ish skew: low indexes dominate.
			idx := int(float64(len(paths)) * rng.Float64() * rng.Float64())
			if idx >= len(paths) {
				idx = len(paths) - 1
			}
			p := paths[idx]
			exact[p]++
			s.Observe(Observation{Path: p})
		}
		d := s.Dump()
		if d.Total != uint64(n) {
			t.Fatalf("trial %d: total %d want %d", trial, d.Total, n)
		}
		tracked := map[string]Entry{}
		for _, e := range d.Entries {
			tracked[e.Path] = e
		}
		bound := uint64(n / k)
		for p, c := range exact {
			if c > bound {
				if _, ok := tracked[p]; !ok {
					t.Fatalf("trial %d: heavy hitter %s (count %d > %d/%d) not tracked",
						trial, p, c, n, k)
				}
			}
		}
		for p, e := range tracked {
			truth := exact[p]
			if e.Count < truth {
				t.Fatalf("trial %d: %s count %d underestimates truth %d",
					trial, p, e.Count, truth)
			}
			if e.Count-truth > e.ErrBound {
				t.Fatalf("trial %d: %s overestimate %d exceeds bound %d",
					trial, p, e.Count-truth, e.ErrBound)
			}
			if e.ErrBound > bound {
				t.Fatalf("trial %d: %s bound %d exceeds N/K=%d",
					trial, p, e.ErrBound, bound)
			}
		}
	}
}

func TestSketchConcurrentObserve(t *testing.T) {
	s := New(Config{K: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe(Observation{Path: fmt.Sprintf("/g%d", g%4), Bytes: 1})
			}
		}(g)
	}
	wg.Wait()
	if s.Total() != 4000 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestMergeSumsAcrossNodesAndSkipsDisabled(t *testing.T) {
	d0 := Dump{Enabled: true, Node: 0, Total: 10, Entries: []Entry{
		{Path: "/hot", Owner: 0, Count: 8, Bytes: 80, Relays: 0, Misses: 1},
		{Path: "/b", Owner: 1, Count: 2, Bytes: 4},
	}}
	d1 := Dump{Enabled: true, Node: 1, Total: 6, Entries: []Entry{
		{Path: "/hot", Owner: 0, Count: 6, Bytes: 60, Relays: 6, Misses: 6},
	}}
	m := Merge([]Dump{d0, d1, {}})
	if m.Total != 16 || len(m.Entries) != 2 {
		t.Fatalf("merged = %+v", m)
	}
	hot := m.Entries[0]
	if hot.Path != "/hot" || hot.Count != 14 || hot.Relays != 6 ||
		hot.Bytes != 140 || hot.Owner != 0 {
		t.Fatalf("hot = %+v", hot)
	}
	if hot.ByNode[0] != 8 || hot.ByNode[1] != 6 {
		t.Fatalf("by-node = %+v", hot.ByNode)
	}
}

func TestAdviseRanksAndPredicts(t *testing.T) {
	m := Merged{Total: 100, Entries: []MergedEntry{
		{Path: "/hot", Owner: 0, Count: 60, Relays: 30,
			ByNode: map[int]uint64{0: 20, 1: 30, 2: 10}},
		{Path: "/mild", Owner: 2, Count: 10, Relays: 0,
			ByNode: map[int]uint64{2: 10}},
	}}
	advs := Advise(m)
	if len(advs) != 2 || advs[0].Path != "/hot" {
		t.Fatalf("advice = %+v", advs)
	}
	a := advs[0]
	if a.Share != 0.6 || a.Owner != 0 || a.ReplicaNode != 1 {
		t.Fatalf("hot advice = %+v", a)
	}
	if a.HomeShare < 0.33 || a.HomeShare > 0.34 {
		t.Fatalf("home share = %v", a.HomeShare)
	}
	// 30 relays * (30/40 landings on node 1) = 22.5 saved of 100 total.
	if a.PredictedReduction < 0.224 || a.PredictedReduction > 0.226 {
		t.Fatalf("predicted reduction = %v", a.PredictedReduction)
	}
	mild := advs[1]
	if mild.HomeShare != 1 || mild.ReplicaNode != -1 || mild.PredictedReduction != 0 {
		t.Fatalf("mild advice = %+v", mild)
	}
	if got := Advise(Merged{}); got != nil {
		t.Fatalf("empty advise = %+v", got)
	}
}

func TestRenderTables(t *testing.T) {
	m := Merge([]Dump{{Enabled: true, Node: 0, Total: 4, Entries: []Entry{
		{Path: "/hot", Owner: 0, Count: 4, Bytes: 4096, Relays: 1,
			Misses: 2, LatencySum: 0.4},
	}}})
	out := Render("heat", m, 8)
	for _, want := range []string{"path", "share", "/hot", "node0", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	adv := RenderAdvice("advisor", Advise(m), 8)
	for _, want := range []string{"replica-on", "pred-reduction", "/hot"} {
		if !strings.Contains(adv, want) {
			t.Fatalf("advice render missing %q:\n%s", want, adv)
		}
	}
	empty := Render("heat", Merged{}, 8)
	if !strings.Contains(empty, "(no documents)") {
		t.Fatalf("empty render:\n%s", empty)
	}
}

func TestDumpSortedHottestFirst(t *testing.T) {
	s := New(Config{K: 8})
	for i := 0; i < 5; i++ {
		s.Observe(Observation{Path: "/a"})
	}
	for i := 0; i < 9; i++ {
		s.Observe(Observation{Path: "/b"})
	}
	s.Observe(Observation{Path: "/c"})
	d := s.Dump()
	got := make([]string, len(d.Entries))
	for i, e := range d.Entries {
		got[i] = e.Path
	}
	want := []string{"/b", "/a", "/c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v want %v", got, want)
		}
	}
}
