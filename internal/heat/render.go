package heat

import (
	"fmt"

	"sweb/internal/stats"
)

// Render draws the merged heat ranking as the aligned table both
// swebtop's heat panel and the parity tests use — one renderer for both
// substrates. limit bounds the rows (<= 0: all).
func Render(title string, m Merged, limit int) string {
	tbl := stats.Table{
		Title: title,
		Header: []string{"path", "owner", "req", "±err", "share",
			"bytes", "relays", "misses", "mean"},
	}
	entries := m.Entries
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	for _, e := range entries {
		mean := "-"
		if e.Count > 0 && e.LatencySum > 0 {
			mean = stats.FormatSeconds(e.LatencySum / float64(e.Count))
		}
		share := "-"
		if m.Total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(e.Count)/float64(m.Total))
		}
		tbl.AddRowStrings(
			e.Path,
			optNode(e.Owner),
			fmt.Sprintf("%d", e.Count),
			fmt.Sprintf("%d", e.ErrBound),
			share,
			fmt.Sprintf("%d", e.Bytes),
			fmt.Sprintf("%d", e.Relays),
			fmt.Sprintf("%d", e.Misses),
			mean,
		)
	}
	if tbl.Rows() == 0 {
		tbl.AddRowStrings("(no documents)", "-", "-", "-", "-", "-", "-", "-", "-")
	}
	return tbl.String()
}

// RenderAdvice draws the placement advisor's report. limit bounds the
// rows (<= 0: all).
func RenderAdvice(title string, advs []Advice, limit int) string {
	tbl := stats.Table{
		Title: title,
		Header: []string{"path", "share", "owner", "home", "relay",
			"replica-on", "pred-reduction"},
	}
	if limit > 0 && len(advs) > limit {
		advs = advs[:limit]
	}
	for _, a := range advs {
		tbl.AddRowStrings(
			a.Path,
			fmt.Sprintf("%.1f%%", 100*a.Share),
			optNode(a.Owner),
			fmt.Sprintf("%.1f%%", 100*a.HomeShare),
			fmt.Sprintf("%.1f%%", 100*a.RelayShare),
			optNode(a.ReplicaNode),
			fmt.Sprintf("%.2f%%", 100*a.PredictedReduction),
		)
	}
	if tbl.Rows() == 0 {
		tbl.AddRowStrings("(no documents)", "-", "-", "-", "-", "-", "-")
	}
	return tbl.String()
}

func optNode(n int) string {
	if n < 0 {
		return "-"
	}
	return fmt.Sprintf("node%d", n)
}
