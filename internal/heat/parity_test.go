package heat_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"sweb/internal/heat"
	"sweb/internal/live"
	"sweb/internal/simsrv"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// simHeatDumps drives a simulated burst and returns every node's
// document-heat dump.
func simHeatDumps(t *testing.T) []heat.Dump {
	t.Helper()
	st := storage.NewStore(3)
	paths := storage.UniformSet(st, 12, 32*1024)
	cl, err := simsrv.New(simsrv.MeikoConfig(3, st))
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 20, DurationSeconds: 5, Jitter: true}
	arr, err := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunSchedule(arr)
	if res.Completed == 0 {
		t.Fatal("simulated burst completed nothing")
	}
	dumps := make([]heat.Dump, 0, cl.Nodes())
	for i := 0; i < cl.Nodes(); i++ {
		dumps = append(dumps, cl.HeatDump(i))
	}
	return dumps
}

// liveHeatDumps drives a short live run and scrapes every node's
// /sweb/heat.
func liveHeatDumps(t *testing.T) []heat.Dump {
	t.Helper()
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 8, 4096)
	cl, err := live.Start(live.Options{
		Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod: 50 * time.Millisecond,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client := cl.NewClient()
	for _, p := range paths {
		if res, err := client.Get(p); err != nil || res.Status != 200 {
			t.Fatalf("get %s: res=%+v err=%v", p, res, err)
		}
	}
	dumps := make([]heat.Dump, 0, len(cl.Servers))
	for _, srv := range cl.Servers {
		d, err := live.Heat(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, *d)
	}
	return dumps
}

// jsonKeys marshals v and returns its sorted top-level JSON key set.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestSimLiveHeatParity is the acceptance criterion: the DES and the
// live httpd fill the same heat Dump schema, obey the same accounting
// invariants, and render through the one shared renderer.
func TestSimLiveHeatParity(t *testing.T) {
	simD := simHeatDumps(t)
	liveD := liveHeatDumps(t)

	for _, sub := range []struct {
		name  string
		dumps []heat.Dump
	}{{"sim", simD}, {"live", liveD}} {
		var total uint64
		for _, d := range sub.dumps {
			if !d.Enabled {
				t.Fatalf("%s: node %d dump disabled", sub.name, d.Node)
			}
			total += d.Total
			var counted uint64
			for _, e := range d.Entries {
				counted += e.Count
				if e.Relays > e.Count || e.Misses > e.Count {
					t.Errorf("%s: aux counts exceed requests in %+v", sub.name, e)
				}
				if e.LatencySum < 0 || e.Bytes < 0 {
					t.Errorf("%s: negative accumulator in %+v", sub.name, e)
				}
			}
			// With fewer distinct paths than K, nothing was evicted and
			// the tracked counts must sum exactly to the total.
			if counted != d.Total {
				t.Errorf("%s: node %d tracked %d of %d observations",
					sub.name, d.Node, counted, d.Total)
			}
		}
		if total == 0 {
			t.Fatalf("%s: no heat observations", sub.name)
		}
		m := heat.Merge(sub.dumps)
		if m.Total != total || len(m.Entries) == 0 {
			t.Fatalf("%s: merge lost observations: %+v", sub.name, m)
		}
		out := heat.Render(sub.name+" heat", m, 0)
		if !strings.Contains(out, "path") || !strings.Contains(out, "relays") {
			t.Fatalf("%s: renderer output missing headers:\n%s", sub.name, out)
		}
		if advs := heat.Advise(m); len(advs) == 0 {
			t.Fatalf("%s: advisor returned nothing", sub.name)
		}
	}

	// The marshalled schemas must match key-for-key at every level.
	sd, ld := simD[0], liveD[0]
	if len(sd.Entries) == 0 || len(ld.Entries) == 0 {
		t.Fatal("need at least one entry per substrate")
	}
	if sk, lk := jsonKeys(t, sd), jsonKeys(t, ld); !reflect.DeepEqual(sk, lk) {
		t.Fatalf("dump schemas diverge:\nsim:  %v\nlive: %v", sk, lk)
	}
	if sk, lk := jsonKeys(t, sd.Entries[0]), jsonKeys(t, ld.Entries[0]); !reflect.DeepEqual(sk, lk) {
		t.Fatalf("entry schemas diverge:\nsim:  %v\nlive: %v", sk, lk)
	}
}
