// Package heat tracks per-document request telemetry on a bounded
// heavy-hitter sketch. Each node keeps a Space-Saving (Misra-Gries
// family) top-K summary of the paths it served — request count, bytes,
// relays, cache misses, and latency sum per path — in O(K) memory no
// matter how many distinct documents the workload touches. Both the
// live server (internal/httpd) and the simulator (internal/simsrv)
// feed the same Observation schema, so one merge/advise/render pipeline
// serves either substrate.
//
// Space-Saving guarantees: with K counters over N observations, any
// path whose true count exceeds N/K is present in the sketch, and every
// reported count overestimates the truth by at most the entry's
// ErrBound (the count the evicted predecessor bequeathed). The
// auxiliary sums (bytes, relays, misses, latency) are tracked only
// while a path holds a slot, so they may undercount for paths that
// churned in and out; for the heavy hitters the advisor cares about
// they converge on the truth.
package heat

import (
	"sort"
	"sync"
)

// DefaultK is the sketch width when Config.K is zero: generous for the
// document populations this repo's workloads use while keeping the
// per-node summary a few KB.
const DefaultK = 64

// Config sizes a node's sketch. The zero value takes the default.
type Config struct {
	// K is the number of tracked paths (<= 0: DefaultK).
	K int
}

// Observation is one served request, the schema both substrates feed.
type Observation struct {
	// Path is the document identity the sketch keys on.
	Path string
	// Owner is the node that holds the document's only copy (-1 when
	// ownership does not apply, e.g. CGI output).
	Owner int
	// Bytes is the response body size actually served.
	Bytes int64
	// Relay marks a request served by fetching the document from its
	// owner over the interconnect (the SWEB "fetch_nfs" phase).
	Relay bool
	// Miss marks a page-cache miss on the serving node.
	Miss bool
	// Seconds is the request's total service time.
	Seconds float64
}

// Entry is one tracked path's accumulated telemetry as exported in a
// Dump. Count overestimates the true request count by at most ErrBound.
type Entry struct {
	Path       string  `json:"path"`
	Owner      int     `json:"owner"`
	Count      uint64  `json:"count"`
	ErrBound   uint64  `json:"err_bound"`
	Bytes      int64   `json:"bytes"`
	Relays     uint64  `json:"relays"`
	Misses     uint64  `json:"misses"`
	LatencySum float64 `json:"latency_sum_seconds"`
}

// Dump is one node's sketch snapshot — the /sweb/heat payload. Entries
// are sorted by count descending, then path, so the hottest documents
// lead. Both substrates marshal the identical schema.
type Dump struct {
	Enabled bool    `json:"enabled"`
	Node    int     `json:"node"`
	K       int     `json:"k"`
	Total   uint64  `json:"total"`
	Entries []Entry `json:"entries"`
}

// Sketch is a node's bounded per-document summary. All methods are safe
// for concurrent use and nil-safe: a nil *Sketch (telemetry disabled)
// no-ops everywhere, so call sites never branch.
type Sketch struct {
	k  int
	mu sync.Mutex
	// total counts every observation, tracked or not — the denominator
	// for load shares and the N in the N/K guarantee.
	total   uint64
	entries map[string]*Entry
}

// New returns an empty sketch sized by cfg.
func New(cfg Config) *Sketch {
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	return &Sketch{k: k, entries: make(map[string]*Entry, k)}
}

// Observe folds one served request into the sketch. When the sketch is
// full and o.Path is untracked, the minimum-count entry is evicted and
// its count bequeathed as the newcomer's starting count and error bound
// — the Space-Saving replacement rule.
func (s *Sketch) Observe(o Observation) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	e, ok := s.entries[o.Path]
	if !ok {
		if len(s.entries) < s.k {
			e = &Entry{Path: o.Path, Owner: o.Owner}
			s.entries[o.Path] = e
		} else {
			victim := s.minEntry()
			delete(s.entries, victim.Path)
			// Inherit the victim's count (the overestimate that keeps
			// heavy hitters from being starved out) but none of its
			// auxiliary sums — those belong to the evicted path.
			e = &Entry{Path: o.Path, Owner: o.Owner,
				Count: victim.Count, ErrBound: victim.Count}
			s.entries[o.Path] = e
		}
	}
	e.Count++
	e.Owner = o.Owner
	e.Bytes += o.Bytes
	if o.Relay {
		e.Relays++
	}
	if o.Miss {
		e.Misses++
	}
	if o.Seconds > 0 {
		e.LatencySum += o.Seconds
	}
}

// minEntry returns the tracked entry with the smallest count (ties
// broken by path for determinism). Callers hold s.mu.
func (s *Sketch) minEntry() *Entry {
	var min *Entry
	for _, e := range s.entries {
		if min == nil || e.Count < min.Count ||
			(e.Count == min.Count && e.Path < min.Path) {
			min = e
		}
	}
	return min
}

// Total reports how many observations the sketch has absorbed. Zero on
// a nil sketch.
func (s *Sketch) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Tracked reports how many paths currently hold a slot. Zero on nil.
func (s *Sketch) Tracked() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Dump snapshots the sketch. A nil sketch dumps Enabled:false so a
// scraper can tell "off" from "idle".
func (s *Sketch) Dump() Dump {
	if s == nil {
		return Dump{}
	}
	s.mu.Lock()
	d := Dump{Enabled: true, K: s.k, Total: s.total,
		Entries: make([]Entry, 0, len(s.entries))}
	for _, e := range s.entries {
		d.Entries = append(d.Entries, *e)
	}
	s.mu.Unlock()
	sortEntries(d.Entries)
	return d
}

// Hot returns the n hottest tracked paths, hottest first — the ranking
// /sweb/status surfaces. Nil-safe.
func (s *Sketch) Hot(n int) []string {
	d := s.Dump()
	if len(d.Entries) > n {
		d.Entries = d.Entries[:n]
	}
	out := make([]string, len(d.Entries))
	for i, e := range d.Entries {
		out[i] = e.Path
	}
	return out
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Path < es[j].Path
	})
}
