package heat

import "sort"

// Advice is the placement advisor's verdict for one hot document —
// report-only groundwork for R-way replication, which will consume this
// struct as its input signal.
type Advice struct {
	Path string `json:"path"`
	// Share is the fraction of all cluster requests this document drew.
	Share float64 `json:"share"`
	// Owner is the node holding the document's only copy (-1 unknown).
	Owner int `json:"owner"`
	// HomeShare is the fraction of the document's requests that landed
	// on its owner — low values mean the cluster is already serving it
	// remotely (relaying or from peer caches).
	HomeShare float64 `json:"home_share"`
	// RelayShare is the fraction of the document's requests that paid
	// an interconnect fetch from the owner.
	RelayShare float64 `json:"relay_share"`
	// ReplicaNode is the non-owner node that landed the most requests
	// for this document — the advisor's replica placement (-1 when no
	// non-owner node saw it).
	ReplicaNode int `json:"replica_node"`
	// PredictedReduction is the predicted share of cluster work
	// eliminated by one replica on ReplicaNode: the relays attributed
	// to that node (proportionally to its landings) stop crossing the
	// interconnect, as a fraction of total cluster requests.
	PredictedReduction float64 `json:"predicted_reduction"`
}

// Advise ranks the merged view's documents by cluster-load share and
// computes, for each, where its requests land versus where it lives and
// what one added replica would buy. Purely observational: nothing here
// moves data.
func Advise(m Merged) []Advice {
	if m.Total == 0 {
		return nil
	}
	out := make([]Advice, 0, len(m.Entries))
	for _, e := range m.Entries {
		if e.Count == 0 {
			continue
		}
		a := Advice{
			Path:        e.Path,
			Share:       float64(e.Count) / float64(m.Total),
			Owner:       e.Owner,
			RelayShare:  float64(e.Relays) / float64(e.Count),
			ReplicaNode: -1,
		}
		var home, away, awayMax uint64
		for node, c := range e.ByNode {
			if e.Owner >= 0 && node == e.Owner {
				home += c
				continue
			}
			away += c
			if c > awayMax || (c == awayMax && a.ReplicaNode >= 0 && node < a.ReplicaNode) {
				awayMax = c
				a.ReplicaNode = node
			}
		}
		a.HomeShare = float64(home) / float64(e.Count)
		// Relays are attributed to non-owner landing nodes
		// proportionally to their landings; a replica on the heaviest
		// one converts its slice of relays into local serves.
		if away > 0 {
			saved := float64(e.Relays) * float64(awayMax) / float64(away)
			a.PredictedReduction = saved / float64(m.Total)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Path < out[j].Path
	})
	return out
}
