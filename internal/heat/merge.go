package heat

import "sort"

// MergedEntry aggregates one path's telemetry across every node's dump,
// keeping the per-node landing counts the placement advisor needs.
type MergedEntry struct {
	Path       string         `json:"path"`
	Owner      int            `json:"owner"`
	Count      uint64         `json:"count"`
	ErrBound   uint64         `json:"err_bound"`
	Bytes      int64          `json:"bytes"`
	Relays     uint64         `json:"relays"`
	Misses     uint64         `json:"misses"`
	LatencySum float64        `json:"latency_sum_seconds"`
	ByNode     map[int]uint64 `json:"by_node"`
}

// Merged is the cluster-wide view: every node's sketch folded into one
// ranked report.
type Merged struct {
	Total   uint64        `json:"total"`
	Entries []MergedEntry `json:"entries"`
}

// Merge folds per-node dumps into one cluster-wide ranking, summing
// counts and auxiliary telemetry per path and recording on which node
// each path's requests landed. Disabled dumps are skipped. Error bounds
// add: the merged count overestimates by at most the sum of the
// per-node bounds.
func Merge(dumps []Dump) Merged {
	byPath := make(map[string]*MergedEntry)
	var m Merged
	for _, d := range dumps {
		if !d.Enabled {
			continue
		}
		m.Total += d.Total
		for _, e := range d.Entries {
			me, ok := byPath[e.Path]
			if !ok {
				me = &MergedEntry{Path: e.Path, Owner: e.Owner,
					ByNode: make(map[int]uint64)}
				byPath[e.Path] = me
			}
			if e.Owner >= 0 {
				me.Owner = e.Owner
			}
			me.Count += e.Count
			me.ErrBound += e.ErrBound
			me.Bytes += e.Bytes
			me.Relays += e.Relays
			me.Misses += e.Misses
			me.LatencySum += e.LatencySum
			me.ByNode[d.Node] += e.Count
		}
	}
	m.Entries = make([]MergedEntry, 0, len(byPath))
	for _, me := range byPath {
		m.Entries = append(m.Entries, *me)
	}
	sort.Slice(m.Entries, func(i, j int) bool {
		if m.Entries[i].Count != m.Entries[j].Count {
			return m.Entries[i].Count > m.Entries[j].Count
		}
		return m.Entries[i].Path < m.Entries[j].Path
	})
	return m
}
