package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeikoExampleMatchesPaper(t *testing.T) {
	m := MeikoExample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// "p = 6, r = 2.88, then the maximum sustained rps is 17.3 for 6 nodes."
	if r := m.PerNodeRPS(); math.Abs(r-2.88) > 0.02 {
		t.Fatalf("per-node rps = %v, paper says 2.88", r)
	}
	if R := m.MaxSustainedRPS(); math.Abs(R-17.3) > 0.1 {
		t.Fatalf("sustained rps = %v, paper says 17.3", R)
	}
}

func TestNOWExampleIsBusBound(t *testing.T) {
	m := NOWExample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Ethernet-bound NOW must land far below the Meiko.
	if m.MaxSustainedRPS() >= MeikoExample().MaxSustainedRPS()/2 {
		t.Fatalf("NOW bound %v not clearly below Meiko %v",
			m.MaxSustainedRPS(), MeikoExample().MaxSustainedRPS())
	}
}

func TestValidateErrors(t *testing.T) {
	base := MeikoExample()
	mut := func(f func(*Model)) Model { m := base; f(&m); return m }
	bad := []Model{
		mut(func(m *Model) { m.P = 0 }),
		mut(func(m *Model) { m.F = 0 }),
		mut(func(m *Model) { m.B1 = 0 }),
		mut(func(m *Model) { m.B2 = -1 }),
		mut(func(m *Model) { m.D = -0.1 }),
		mut(func(m *Model) { m.D = 1.1 }),
		mut(func(m *Model) { m.A = -1 }),
		mut(func(m *Model) { m.O = -1 }),
		mut(func(m *Model) { m.P = 2; m.D = 0.9 }), // 1/p + d > 1
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted: %+v", i, m)
		}
	}
}

func TestMoreNodesMoreThroughput(t *testing.T) {
	m := MeikoExample()
	rs := m.Sweep([]int{1, 2, 4, 6, 8, 12})
	for i := 1; i < len(rs); i++ {
		if rs[i] <= rs[i-1] {
			t.Fatalf("throughput not increasing with nodes: %v", rs)
		}
	}
}

func TestPerNodeRPSDecreasesWithNodes(t *testing.T) {
	// More nodes → more remote fetches → per-node rate drops (b2 < b1).
	one := MeikoExample()
	one.P = 1
	six := MeikoExample()
	if one.PerNodeRPS() <= six.PerNodeRPS() {
		t.Fatalf("p=1 per-node %v should exceed p=6 %v", one.PerNodeRPS(), six.PerNodeRPS())
	}
}

func TestRedirectionProbabilityTradeoff(t *testing.T) {
	// With O ≈ 0 and b2 < b1, redirecting toward owners (d > 0) shifts
	// fetches to the faster local disk and raises the bound slightly.
	m := MeikoExample()
	m.O = 0
	m.A = 0.02
	noRedir := m
	noRedir.D = 0
	withRedir := m
	withRedir.D = 0.2
	if withRedir.MaxSustainedRPS() <= noRedir.MaxSustainedRPS() {
		t.Fatalf("cheap redirection should help: %v vs %v",
			withRedir.MaxSustainedRPS(), noRedir.MaxSustainedRPS())
	}
	// But with an expensive redirect it hurts.
	costly := m
	costly.D = 0.2
	costly.O = 2.0
	if costly.MaxSustainedRPS() >= noRedir.MaxSustainedRPS() {
		t.Fatal("expensive redirection should hurt")
	}
}

// Property: throughput is monotone in the obvious directions — larger F or
// A never increases the bound; larger b1/b2 never decrease it.
func TestMonotonicityProperty(t *testing.T) {
	f := func(df, da, db uint8) bool {
		base := MeikoExample()
		worseF := base
		worseF.F += float64(df) * 1e4
		worseA := base
		worseA.A += float64(da) * 1e-3
		betterB := base
		betterB.B1 += float64(db) * 1e4
		betterB.B2 += float64(db) * 1e4
		r := base.MaxSustainedRPS()
		return worseF.MaxSustainedRPS() <= r+1e-9 &&
			worseA.MaxSustainedRPS() <= r+1e-9 &&
			betterB.MaxSustainedRPS() >= r-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PerRequestSeconds is always positive for valid models, so the
// rps bound is finite and positive.
func TestBoundPositiveProperty(t *testing.T) {
	f := func(p uint8, fKB uint16, d uint8) bool {
		m := Model{
			P:  int(p%12) + 1,
			F:  float64(fKB%2048+1) * 1024,
			B1: 5e6, B2: 4.5e6,
			D: float64(d%50) / 100,
			A: 0.02,
		}
		if 1/float64(m.P)+m.D > 1 {
			return true // invalid by construction; skip
		}
		if m.Validate() != nil {
			return true
		}
		return m.PerRequestSeconds() > 0 && m.MaxSustainedRPS() > 0 &&
			!math.IsInf(m.MaxSustainedRPS(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
