// Package analytic implements the Section 3.3 performance analysis: a
// closed-form bound on the maximum sustained requests/second of a p-node
// SWEB for file fetches,
//
//	r ≤ 1 / [ (1/p + d)·F/b1 + (1 − 1/p − d)·F/min(b1,b2) + A + d·(A+O) ]
//
// per node (R = p·r for the whole machine), where F is the average file
// size, b1/b2 the local/remote disk bandwidths, d the average redirection
// probability, A the preprocessing overhead, and O the redirection
// overhead. The paper's example — b1 = 5 MB/s, b2 = 4.5 MB/s, O ≈ 0, p = 6
// — gives r = 2.88 and a machine-wide 17.3 rps, "close to our experimental
// results" (16 rps measured in Table 1).
package analytic

import (
	"fmt"
	"math"
)

// Model holds the parameters of the Section 3.3 analysis.
type Model struct {
	// P is the number of nodes.
	P int
	// F is the average requested file size in bytes.
	F float64
	// B1 is the local disk bandwidth in bytes/second.
	B1 float64
	// B2 is the remote (NFS-over-interconnect) bandwidth in bytes/second.
	B2 float64
	// D is the average redirection probability (0..1). A redirected
	// request is assumed to land at the file's owner, so it is served
	// from the local disk.
	D float64
	// A is the per-request preprocessing overhead in seconds.
	A float64
	// O is the redirection overhead in seconds.
	O float64
}

// Validate reports out-of-range parameters.
func (m Model) Validate() error {
	switch {
	case m.P <= 0:
		return fmt.Errorf("analytic: P must be positive")
	case m.F <= 0:
		return fmt.Errorf("analytic: F must be positive")
	case m.B1 <= 0 || m.B2 <= 0:
		return fmt.Errorf("analytic: bandwidths must be positive")
	case m.D < 0 || m.D > 1:
		return fmt.Errorf("analytic: D must be in [0,1]")
	case m.A < 0 || m.O < 0:
		return fmt.Errorf("analytic: overheads must be non-negative")
	case 1/float64(m.P)+m.D > 1:
		return fmt.Errorf("analytic: 1/p + d exceeds 1; the local fraction is ill-defined")
	}
	return nil
}

// PerRequestSeconds returns the denominator: the average bottleneck time
// one request occupies on a node.
func (m Model) PerRequestSeconds() float64 {
	localFrac := 1/float64(m.P) + m.D
	remoteFrac := 1 - localFrac
	return localFrac*m.F/m.B1 +
		remoteFrac*m.F/math.Min(m.B1, m.B2) +
		m.A + m.D*(m.A+m.O)
}

// PerNodeRPS returns the sustained per-node bound r.
func (m Model) PerNodeRPS() float64 { return 1 / m.PerRequestSeconds() }

// MaxSustainedRPS returns the machine-wide bound p·r.
func (m Model) MaxSustainedRPS() float64 {
	return float64(m.P) * m.PerNodeRPS()
}

// MeikoExample returns the parameterization from the paper's Section 3.3
// example (A calibrated to 20 ms so that r = 2.88 as printed).
func MeikoExample() Model {
	return Model{P: 6, F: 1.5e6, B1: 5e6, B2: 4.5e6, D: 0, A: 0.02, O: 0}
}

// NOWExample parameterizes the SparcStation NOW: the "disk" a remote fetch
// competes with is the shared Ethernet, so b2 is the effective bus rate.
func NOWExample() Model {
	return Model{P: 4, F: 1.5e6, B1: 3.5e6, B2: 1.1e6, D: 0, A: 0.02, O: 0}
}

// Sweep evaluates MaxSustainedRPS for each node count in ps, holding the
// other parameters fixed — the scalability curve behind Table 2.
func (m Model) Sweep(ps []int) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		mm := m
		mm.P = p
		out[i] = mm.MaxSustainedRPS()
	}
	return out
}
