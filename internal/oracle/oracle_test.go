package oracle

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDemandOpsAndDiskBytes(t *testing.T) {
	d := Demand{BaseOps: 100, OpsPerByte: 0.5, CGIOps: 1000, DiskBytesPerByte: 2}
	if got := d.Ops(10); got != 100+5+1000 {
		t.Fatalf("Ops = %v", got)
	}
	if got := d.DiskBytes(10); got != 20 {
		t.Fatalf("DiskBytes = %v", got)
	}
}

func TestCharacterizeDefault(t *testing.T) {
	o := New(Demand{BaseOps: 7})
	if got := o.Characterize("/anything"); got.BaseOps != 7 {
		t.Fatalf("default not applied: %+v", got)
	}
	if o.Rules() != 0 {
		t.Fatalf("rules = %d", o.Rules())
	}
}

func TestExtensionRule(t *testing.T) {
	o := New(DefaultDemand())
	if err := o.AddRule("*.cgi", Demand{BaseOps: 1, CGIOps: 5e6, DiskBytesPerByte: 1}); err != nil {
		t.Fatal(err)
	}
	if got := o.Characterize("/cgi-bin/deep/query.cgi"); got.CGIOps != 5e6 {
		t.Fatalf("extension rule missed: %+v", got)
	}
	if got := o.Characterize("/a.html"); got.CGIOps != 0 {
		t.Fatalf("extension rule overmatched: %+v", got)
	}
}

func TestPrefixRule(t *testing.T) {
	o := New(DefaultDemand())
	if err := o.AddRule("/adl/full/*", Demand{BaseOps: 9, DiskBytesPerByte: 1}); err != nil {
		t.Fatal(err)
	}
	if got := o.Characterize("/adl/full/deep/scene.img"); got.BaseOps != 9 {
		t.Fatalf("prefix rule missed: %+v", got)
	}
	if got := o.Characterize("/adl/browse/x.gif"); got.BaseOps == 9 {
		t.Fatalf("prefix rule overmatched: %+v", got)
	}
}

func TestMoreSpecificRuleWins(t *testing.T) {
	o := New(DefaultDemand())
	if err := o.AddRule("/adl/*", Demand{BaseOps: 1, DiskBytesPerByte: 1}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddRule("/adl/full/*", Demand{BaseOps: 2, DiskBytesPerByte: 1}); err != nil {
		t.Fatal(err)
	}
	if got := o.Characterize("/adl/full/scene.img"); got.BaseOps != 2 {
		t.Fatalf("specific rule lost: %+v", got)
	}
	if got := o.Characterize("/adl/meta.html"); got.BaseOps != 1 {
		t.Fatalf("general rule lost: %+v", got)
	}
}

func TestSpecificityIndependentOfInsertOrder(t *testing.T) {
	o := New(DefaultDemand())
	// Insert the specific one first — it must still win.
	_ = o.AddRule("/adl/full/*", Demand{BaseOps: 2, DiskBytesPerByte: 1})
	_ = o.AddRule("/adl/*", Demand{BaseOps: 1, DiskBytesPerByte: 1})
	if got := o.Characterize("/adl/full/scene.img"); got.BaseOps != 2 {
		t.Fatalf("insert order changed the winner: %+v", got)
	}
}

func TestExactGlobRule(t *testing.T) {
	o := New(DefaultDemand())
	_ = o.AddRule("/docs/u*.dat", Demand{BaseOps: 3, DiskBytesPerByte: 1})
	if got := o.Characterize("/docs/u000001.dat"); got.BaseOps != 3 {
		t.Fatalf("glob rule missed: %+v", got)
	}
}

func TestAddRuleErrors(t *testing.T) {
	o := New(DefaultDemand())
	if err := o.AddRule("", Demand{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if err := o.AddRule("[bad", Demand{}); err == nil {
		t.Fatal("malformed glob accepted")
	}
}

func TestParseConfig(t *testing.T) {
	conf := `
# architecture parameters for the Meiko CS-2
default cpu_base=500000 cpu_per_byte=0.25
match *.cgi  cgi_ops=40000000
match /adl/full/* cpu_per_byte=0.1 disk_per_byte=1.5
`
	o, err := ParseConfig(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	if o.Rules() != 2 {
		t.Fatalf("rules = %d", o.Rules())
	}
	d := o.Characterize("/plain.html")
	if d.BaseOps != 500000 || d.OpsPerByte != 0.25 {
		t.Fatalf("default = %+v", d)
	}
	d = o.Characterize("/cgi-bin/q.cgi")
	if d.CGIOps != 4e7 || d.BaseOps != 500000 {
		t.Fatalf("cgi rule = %+v", d)
	}
	d = o.Characterize("/adl/full/x.img")
	if d.OpsPerByte != 0.1 || d.DiskBytesPerByte != 1.5 {
		t.Fatalf("adl rule = %+v", d)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"bogus directive\n",
		"default cpu_base\n",      // no '='
		"default cpu_base=abc\n",  // bad float
		"default cpu_base=-1\n",   // negative
		"default turbo=1\n",       // unknown key
		"match\n",                 // missing pattern
		"match [bad cpu_base=1\n", // malformed pattern
		"match /x/* nonsense=1\n", // unknown key on match
	}
	for _, in := range cases {
		if _, err := ParseConfig(strings.NewReader(in)); err == nil {
			t.Errorf("config %q parsed without error", in)
		}
	}
}

func TestFormatConfigRoundTrip(t *testing.T) {
	d := Demand{BaseOps: 123, OpsPerByte: 0.5, CGIOps: 9, DiskBytesPerByte: 2}
	o, err := ParseConfig(strings.NewReader(FormatConfig(d)))
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Characterize("/x"); got != d {
		t.Fatalf("round trip: %+v != %+v", got, d)
	}
}

func TestDefaultDemandIsSane(t *testing.T) {
	d := DefaultDemand()
	if d.BaseOps <= 0 || d.OpsPerByte <= 0 || d.DiskBytesPerByte != 1 {
		t.Fatalf("default demand = %+v", d)
	}
	// A 1.5 MB fetch must cost far more disk than CPU time on the
	// calibrated hardware (disk-bound workload).
	cpuSecs := d.Ops(1536<<10) / 40e6
	diskSecs := d.DiskBytes(1536<<10) / 5e6
	if cpuSecs > diskSecs {
		t.Fatalf("1.5MB fetch CPU-bound: cpu=%v disk=%v", cpuSecs, diskSecs)
	}
}

// Property: Ops is monotone in size for non-negative demands.
func TestOpsMonotoneProperty(t *testing.T) {
	f := func(base, per float64, a, b uint32) bool {
		if base < 0 {
			base = -base
		}
		if per < 0 {
			per = -per
		}
		d := Demand{BaseOps: base, OpsPerByte: per}
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return d.Ops(x) <= d.Ops(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
