// Package oracle implements SWEB's request-characterization module: "a
// miniature expert system, which uses a user-supplied table to characterize
// the CPU and disk demands for a particular task" (Sec. 3.1). The broker
// feeds the resulting demand estimate into the cost formula's t_CPU term
// ("the estimated number of operations required for the task"); "the
// parameters for different architectures are saved in a configuration file".
package oracle

import (
	"bufio"
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Demand is the oracle's estimate of a request's resource needs.
type Demand struct {
	// BaseOps is fixed per-request CPU work beyond preprocessing: forking
	// the handler process, permission checks, response header generation.
	BaseOps float64
	// OpsPerByte is CPU work per response byte: packetizing and marshaling
	// ("the overhead necessary to send bytes out on the network properly
	// packetized and marshaled").
	OpsPerByte float64
	// CGIOps is additional compute if the request executes a program
	// ("any known associated computational cost if the request is a CGI
	// operation").
	CGIOps float64
	// DiskBytesPerByte scales disk traffic relative to the file size
	// (1.0 for plain fetches; CGI may read auxiliary data).
	DiskBytesPerByte float64
}

// Ops returns total estimated CPU operations for a response of size bytes.
func (d Demand) Ops(size int64) float64 {
	return d.BaseOps + d.OpsPerByte*float64(size) + d.CGIOps
}

// DiskBytes returns estimated disk traffic for a file of size bytes.
func (d Demand) DiskBytes(size int64) float64 {
	return d.DiskBytesPerByte * float64(size)
}

type rule struct {
	pattern string
	demand  Demand
	// specificity orders rules: longer literal prefixes win.
	specificity int
}

// Oracle matches request paths against the user-supplied rule table.
// Patterns use path.Match syntax matched against the full URL path, plus a
// trailing "/*" form that matches any path under a prefix. The most
// specific matching rule wins; ties go to the later rule.
type Oracle struct {
	defaults Demand
	rules    []rule
}

// DefaultDemand is the stock static-file characterization calibrated to
// NCSA httpd 1.3 on a 40 Mops/s SuperSparc: 600k base ops ≈ 15 ms of
// fork+handler setup (preprocessing is charged separately by the server,
// so a single node tops out near the 5-15 rps the paper's NCSA references
// report) and 0.12 ops/byte of packetizing/marshaling.
func DefaultDemand() Demand {
	return Demand{BaseOps: 0.6e6, OpsPerByte: 0.12, DiskBytesPerByte: 1}
}

// New creates an oracle with the given default demand for unmatched paths.
func New(defaults Demand) *Oracle {
	return &Oracle{defaults: defaults}
}

// AddRule registers a pattern. Patterns are either path.Match globs
// ("/docs/*.gif", "*.cgi") or prefix globs ("/adl/full/*").
func (o *Oracle) AddRule(pattern string, d Demand) error {
	if pattern == "" {
		return fmt.Errorf("oracle: empty pattern")
	}
	if _, err := path.Match(normalizeGlob(pattern), "/probe"); err != nil {
		return fmt.Errorf("oracle: bad pattern %q: %v", pattern, err)
	}
	o.rules = append(o.rules, rule{pattern: pattern, demand: d, specificity: literalLen(pattern)})
	sort.SliceStable(o.rules, func(i, j int) bool {
		return o.rules[i].specificity < o.rules[j].specificity
	})
	return nil
}

// Characterize returns the demand estimate for a request path.
func (o *Oracle) Characterize(p string) Demand {
	best := o.defaults
	for _, r := range o.rules { // ascending specificity: last match wins
		if matchPattern(r.pattern, p) {
			best = r.demand
		}
	}
	return best
}

// Rules returns the number of installed rules.
func (o *Oracle) Rules() int { return len(o.rules) }

func literalLen(pattern string) int {
	n := 0
	for _, c := range pattern {
		if c != '*' && c != '?' && c != '[' && c != ']' {
			n++
		}
	}
	return n
}

func normalizeGlob(pattern string) string {
	if strings.HasSuffix(pattern, "/*") {
		return pattern[:len(pattern)-2] + "/*"
	}
	return pattern
}

func matchPattern(pattern, p string) bool {
	// Prefix form: "/adl/full/*" matches any depth under the prefix.
	if strings.HasSuffix(pattern, "/*") {
		return strings.HasPrefix(p, pattern[:len(pattern)-1])
	}
	// Extension form: "*.cgi" matches the basename anywhere.
	if strings.HasPrefix(pattern, "*.") {
		return strings.HasSuffix(p, pattern[1:])
	}
	ok, err := path.Match(pattern, p)
	return err == nil && ok
}

// ParseConfig reads the oracle's configuration-file format:
//
//	# comment
//	default  cpu_base=400000 cpu_per_byte=0.12
//	match *.cgi      cpu_base=800000 cgi_ops=40000000
//	match /adl/full/* cpu_per_byte=0.10 disk_per_byte=1.0
//
// Each "match" line starts from the default demand and overrides the listed
// keys. Lines are whitespace-separated; unknown keys are an error.
func ParseConfig(r io.Reader) (*Oracle, error) {
	sc := bufio.NewScanner(r)
	defaults := DefaultDemand()
	type pending struct {
		pattern string
		kv      []string
	}
	var matches []pending
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "default":
			if err := applyKVs(&defaults, fields[1:]); err != nil {
				return nil, fmt.Errorf("oracle: line %d: %v", lineNo, err)
			}
		case "match":
			if len(fields) < 2 {
				return nil, fmt.Errorf("oracle: line %d: match needs a pattern", lineNo)
			}
			matches = append(matches, pending{pattern: fields[1], kv: fields[2:]})
		default:
			return nil, fmt.Errorf("oracle: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("oracle: read: %v", err)
	}
	o := New(defaults)
	for i, m := range matches {
		d := defaults
		if err := applyKVs(&d, m.kv); err != nil {
			return nil, fmt.Errorf("oracle: match %d (%s): %v", i+1, m.pattern, err)
		}
		if err := o.AddRule(m.pattern, d); err != nil {
			return nil, err
		}
	}
	return o, nil
}

func applyKVs(d *Demand, kvs []string) error {
	for _, kv := range kvs {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return fmt.Errorf("expected key=value, got %q", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad value for %s: %v", key, err)
		}
		if f < 0 {
			return fmt.Errorf("%s must be non-negative", key)
		}
		switch key {
		case "cpu_base":
			d.BaseOps = f
		case "cpu_per_byte":
			d.OpsPerByte = f
		case "cgi_ops":
			d.CGIOps = f
		case "disk_per_byte":
			d.DiskBytesPerByte = f
		default:
			return fmt.Errorf("unknown key %q", key)
		}
	}
	return nil
}

// FormatConfig renders an oracle-config default line for the given demand,
// handy for writing architecture parameter files.
func FormatConfig(d Demand) string {
	return fmt.Sprintf("default cpu_base=%g cpu_per_byte=%g cgi_ops=%g disk_per_byte=%g",
		d.BaseOps, d.OpsPerByte, d.CGIOps, d.DiskBytesPerByte)
}
