// Package monitor is the cluster-wide continuous-observation layer: a
// dependency-free in-process time-series store fed by scraping every
// node's sweb_* exposition (live nodes over HTTP, simulated nodes straight
// from their virtual-time registries), derived signals (rates, deltas,
// windowed quantiles), and an alert-rule engine with hysteresis for the
// overload and imbalance conditions the paper's scheduler exists to
// prevent. One pipeline renders the same load/redirect-rate timelines and
// Table 4/5-style snapshots from either substrate.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"sweb/internal/metrics"
)

// Point is one timestamped sample. T is seconds on the feeding substrate's
// clock — wall seconds since the cluster epoch for live scrapes, virtual
// seconds for the simulator.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is one exported {metric, labels} stream, points oldest first.
type Series struct {
	Name   string         `json:"name"`
	Labels metrics.Labels `json:"labels,omitempty"`
	Points []Point        `json:"points"`
}

// series is the internal bounded ring behind one Series.
type series struct {
	name   string
	labels metrics.Labels
	ring   []Point
	next   int
	full   bool
}

func (s *series) append(p Point) {
	s.ring[s.next] = p
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
}

// points returns the retained window, oldest first.
func (s *series) points() []Point {
	if !s.full {
		return append([]Point(nil), s.ring[:s.next]...)
	}
	out := make([]Point, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}

// DefaultCapacity bounds each series ring: at a 1-2s collect cadence it
// retains tens of minutes, enough for every windowed signal the rules and
// reports derive, at a few KB per series.
const DefaultCapacity = 1024

// Store holds bounded time-series keyed by {metric name, labels}. All
// methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	capacity int
	byKey    map[string]*series
	order    []string
}

// NewStore returns an empty store with the given per-series ring capacity
// (<= 0: DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{capacity: capacity, byKey: make(map[string]*series)}
}

// Append records value v for the series name{labels} at time t. Labels are
// copied; the caller may reuse the map.
func (st *Store) Append(name string, labels metrics.Labels, t, v float64) {
	key := metrics.Sample{Name: name, Labels: labels}.Key()
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.byKey[key]
	if s == nil {
		var cp metrics.Labels
		if len(labels) > 0 {
			cp = make(metrics.Labels, len(labels))
			for k, lv := range labels {
				cp[k] = lv
			}
		}
		s = &series{name: name, labels: cp, ring: make([]Point, st.capacity)}
		st.byKey[key] = s
		st.order = append(st.order, key)
	}
	s.append(Point{T: t, V: v})
}

// AppendSamples records one node's scrape at time t, tagging every sample
// with a node label so per-node streams stay distinct after merging.
func (st *Store) AppendSamples(node string, t float64, samples []metrics.Sample) {
	for _, smp := range samples {
		labels := make(metrics.Labels, len(smp.Labels)+1)
		for k, v := range smp.Labels {
			labels[k] = v
		}
		labels["node"] = node
		st.Append(smp.Name, labels, t, smp.Value)
	}
}

// Points returns the retained points of the exactly matching series,
// oldest first (nil when absent).
func (st *Store) Points(name string, labels metrics.Labels) []Point {
	key := metrics.Sample{Name: name, Labels: labels}.Key()
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.byKey[key]
	if s == nil {
		return nil
	}
	return s.points()
}

// Select returns every series with the given name whose labels are a
// superset of sel, sorted by key for determinism.
func (st *Store) Select(name string, sel metrics.Labels) []Series {
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := append([]string(nil), st.order...)
	sort.Strings(keys)
	var out []Series
	for _, key := range keys {
		s := st.byKey[key]
		if s.name != name {
			continue
		}
		match := true
		for k, v := range sel {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		out = append(out, Series{Name: s.name, Labels: s.labels, Points: s.points()})
	}
	return out
}

// SeriesCount reports how many distinct series the store holds.
func (st *Store) SeriesCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byKey)
}

// Names returns the distinct metric names present, sorted.
func (st *Store) Names() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	seen := make(map[string]bool)
	for _, s := range st.byKey {
		seen[s.name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// all snapshots every series sorted by key.
func (st *Store) all() []Series {
	st.mu.Lock()
	defer st.mu.Unlock()
	keys := append([]string(nil), st.order...)
	sort.Strings(keys)
	out := make([]Series, 0, len(keys))
	for _, key := range keys {
		s := st.byKey[key]
		out = append(out, Series{Name: s.name, Labels: s.labels, Points: s.points()})
	}
	return out
}

// WriteCSV exports every series in long form: series,t,v — one row per
// point, series rendered as the canonical sample key.
func (st *Store) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,t,v\n"); err != nil {
		return err
	}
	for _, s := range st.all() {
		key := metrics.Sample{Name: s.Name, Labels: s.Labels}.Key()
		// The key can contain commas inside label lists; quote it so the
		// CSV stays parseable.
		quoted := `"` + strings.ReplaceAll(key, `"`, `""`) + `"`
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", quoted, p.T, p.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON exports every series as a JSON array of Series documents.
func (st *Store) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st.all())
}
