package monitor

import (
	"sort"
	"sync"
)

// Names of the series the monitor itself writes into its store, next to
// the scraped families.
const (
	// metricUp is 1 when the node's scrape succeeded, 0 when it failed —
	// the monitor's own liveness probe.
	metricUp = "sweb_monitor_up"
	// metricAlert is 1 while the {rule, node} alert fires, 0 otherwise;
	// exporting alert state as a metric closes the loop (a dashboard or a
	// meta-monitor can scrape the monitor).
	metricAlert = "sweb_monitor_alert"
)

// Config tunes a Monitor. The zero value works: 15s derivation window,
// DefaultCapacity rings, DefaultRules with default thresholds.
type Config struct {
	// Window is the lookback, in substrate seconds, for every derived
	// signal: rates, windowed quantiles, rule inputs (default 15).
	Window float64
	// Capacity bounds each series ring (default DefaultCapacity).
	Capacity int
	// Rules tunes the default rule thresholds.
	Rules RuleConfig
	// ExtraRules run after the defaults with the same hysteresis driver.
	ExtraRules []Rule
	// OnFire, when set, is invoked after any Collect round in which one
	// or more alerts transitioned to firing, with exactly those alerts.
	// It runs outside the monitor's lock on the Collect caller's
	// goroutine, so it may call back into the monitor — but a slow hook
	// (e.g. writing a diagnostic bundle) delays the next round.
	OnFire func([]Alert)
}

// Alert is one firing (or recently cleared) alert instance.
type Alert struct {
	Rule      string  `json:"rule"`
	Node      string  `json:"node,omitempty"` // "" for cluster-wide rules
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	SinceT    float64 `json:"since_t"`
	Firing    bool    `json:"firing"`
}

// alertState is the hysteresis state machine for one {rule, subject}.
type alertState struct {
	breaches int // consecutive rounds at/above Fire while idle
	clears   int // consecutive rounds below Clear while firing
	firing   bool
	sinceT   float64
	value    float64
}

// Monitor owns the store, the scrape sources, and the rule engine; one
// Collect call is one monitoring round on either substrate's clock.
type Monitor struct {
	mu      sync.Mutex
	cfg     Config
	store   *Store
	sources []Source
	rules   []Rule
	states  map[string]map[string]*alertState // rule -> subject
	nodes   []string                          // every node name ever scraped, in order
	rows    []TimelineRow
	lastT   float64
	rounds  int64
}

// New builds a monitor; attach sources with AddSource, then call Collect
// on whatever cadence the substrate provides.
func New(cfg Config) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = 15
	}
	rules := DefaultRules(cfg.Rules)
	rules = append(rules, cfg.ExtraRules...)
	return &Monitor{
		cfg:    cfg,
		store:  NewStore(cfg.Capacity),
		rules:  rules,
		states: make(map[string]map[string]*alertState),
	}
}

// AddSource registers one node's scrape source.
func (m *Monitor) AddSource(s Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sources = append(m.sources, s)
	m.nodes = append(m.nodes, s.Node())
}

// Store exposes the underlying time-series store.
func (m *Monitor) Store() *Store { return m.store }

// Window reports the configured derivation window.
func (m *Monitor) Window() float64 { return m.cfg.Window }

// Rounds reports how many Collect rounds have run.
func (m *Monitor) Rounds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rounds
}

// Collect runs one monitoring round at time now (seconds on the feeding
// substrate's clock): scrape every source, append the samples, evaluate
// the rules with hysteresis, export alert states back into the store, and
// capture one timeline row per node.
func (m *Monitor) Collect(now float64) {
	m.mu.Lock()
	for _, src := range m.sources {
		node := src.Node()
		samples, err := src.Scrape()
		if err != nil {
			m.store.Append(metricUp, map[string]string{"node": node}, now, 0)
			continue
		}
		m.store.Append(metricUp, map[string]string{"node": node}, now, 1)
		m.store.AppendSamples(node, now, samples)
	}
	view := &View{Store: m.store, Nodes: m.nodes, From: now - m.cfg.Window, To: now}
	var fired []Alert
	for _, rule := range m.rules {
		fired = append(fired, m.evalRule(rule, view, now)...)
	}
	m.captureRows(view, now)
	m.lastT = now
	m.rounds++
	hook := m.cfg.OnFire
	m.mu.Unlock()
	if hook != nil && len(fired) > 0 {
		hook(fired)
	}
}

// evalRule advances one rule's hysteresis machines, exports their states
// as metricAlert samples, and returns the alerts that newly fired this
// round (idle → firing transitions only).
func (m *Monitor) evalRule(rule Rule, view *View, now float64) []Alert {
	var fired []Alert
	vals := rule.Eval(view)
	states := m.states[rule.Name]
	if states == nil {
		states = make(map[string]*alertState)
		m.states[rule.Name] = states
	}
	// A subject the rule stopped reporting reads as zero: its signal is
	// gone, which must eventually clear the alert, never pin it.
	for subject := range states {
		if _, ok := vals[subject]; !ok {
			vals[subject] = 0
		}
	}
	need := rule.For
	if need <= 0 {
		need = 1
	}
	for subject, v := range vals {
		st := states[subject]
		if st == nil {
			st = &alertState{}
			states[subject] = st
		}
		st.value = v
		if st.firing {
			if v < rule.Clear {
				st.clears++
				if st.clears >= need {
					st.firing = false
					st.breaches, st.clears = 0, 0
				}
			} else {
				st.clears = 0
			}
		} else {
			if v >= rule.Fire {
				st.breaches++
				if st.breaches >= need {
					st.firing = true
					st.sinceT = now
					st.clears = 0
					fired = append(fired, Alert{
						Rule: rule.Name, Node: subject,
						Value: v, Threshold: rule.Fire,
						SinceT: now, Firing: true,
					})
				}
			} else {
				st.breaches = 0
			}
		}
		up := 0.0
		if st.firing {
			up = 1
		}
		m.store.Append(metricAlert, map[string]string{"rule": rule.Name, "node": subject}, now, up)
	}
	return fired
}

// Alerts returns the currently firing alerts, sorted by rule then node.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Alert
	for _, rule := range m.rules {
		for subject, st := range m.states[rule.Name] {
			if !st.firing {
				continue
			}
			out = append(out, Alert{
				Rule: rule.Name, Node: subject,
				Value: st.value, Threshold: rule.Fire,
				SinceT: st.sinceT, Firing: true,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// AlertFiring reports whether the {rule, subject} alert is firing now.
func (m *Monitor) AlertFiring(rule, subject string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	states := m.states[rule]
	if states == nil {
		return false
	}
	st := states[subject]
	return st != nil && st.firing
}
