package monitor_test

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"sweb/internal/des"
	"sweb/internal/live"
	"sweb/internal/monitor"
	"sweb/internal/simsrv"
	"sweb/internal/slo"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// coreFamilies are the sweb_* metric families both substrates must
// publish for one monitor pipeline to serve them interchangeably.
var coreFamilies = []string{
	"sweb_inflight",
	"sweb_capacity",
	"sweb_disk_active",
	"sweb_net_active",
	"sweb_bytes_out_total",
	"sweb_events_total",
	"sweb_phase_seconds_bucket",
	"sweb_phase_seconds_count",
	"sweb_phase_seconds_sum",
	"sweb_response_seconds_bucket",
	"sweb_response_seconds_count",
	"sweb_response_seconds_sum",
	"sweb_ttfb_seconds_bucket",
	"sweb_ttfb_seconds_count",
	"sweb_ttfb_seconds_sum",
	"sweb_loadd_broadcast_age_seconds",
	"sweb_loadd_advertised_load",
	"sweb_cache_hits_total",
	"sweb_cache_misses_total",
	"sweb_cache_evictions_total",
	"sweb_cache_singleflight_shared_total",
	"sweb_cache_bytes",
	"sweb_cache_capacity_bytes",
	"sweb_flight_records_total",
	"sweb_flight_notable_total",
}

// runSimMonitored drives a simulated burst with a monitor collecting on
// virtual time and returns the monitor.
func runSimMonitored(t *testing.T) *monitor.Monitor {
	t.Helper()
	st := storage.NewStore(3)
	paths := storage.UniformSet(st, 12, 32*1024)
	cfg := simsrv.MeikoConfig(3, st)
	cl, err := simsrv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(monitor.Config{Window: 5})
	for i := 0; i < cl.Nodes(); i++ {
		i := i
		mon.AddSource(&monitor.RegistrySource{
			Name:     strconv.Itoa(i),
			Registry: cl.Registry(i),
			Up:       func() bool { return cl.NodeUp(i) },
		})
	}
	cl.Every(des.Second, func() { mon.Collect(cl.Sim.Now().ToSeconds()) })
	burst := workload.Burst{RPS: 20, DurationSeconds: 5, Jitter: true}
	arr, err := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunSchedule(arr)
	if res.Completed == 0 {
		t.Fatal("simulated burst completed nothing")
	}
	return mon
}

// runLiveMonitored drives a short live run with the cluster-owned monitor
// and returns it (stopped, still readable).
func runLiveMonitored(t *testing.T) *monitor.Monitor {
	t.Helper()
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 8, 4096)
	cl, err := live.Start(live.Options{
		Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod: 50 * time.Millisecond,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mon := cl.StartMonitor(monitor.Config{Window: 2}, 50*time.Millisecond)
	client := cl.NewClient()
	for round := 0; round < 3; round++ {
		for _, p := range paths {
			if res, err := client.Get(p); err != nil || res.Status != 200 {
				t.Fatalf("get %s: res=%+v err=%v", p, res, err)
			}
		}
		time.Sleep(60 * time.Millisecond)
	}
	waitRounds := time.Now().Add(5 * time.Second)
	for mon.Rounds() < 3 && time.Now().Before(waitRounds) {
		time.Sleep(20 * time.Millisecond)
	}
	cl.StopMonitor()
	return mon
}

// TestSimLiveMetricsParity is the acceptance criterion: the same monitor
// code renders a load/redirect-rate timeline and a Table 4/5-style
// snapshot from a simulator run and from a live cluster run, with the
// core sweb_* families present in both stores.
func TestSimLiveMetricsParity(t *testing.T) {
	simMon := runSimMonitored(t)
	liveMon := runLiveMonitored(t)

	for _, mon := range []*monitor.Monitor{simMon, liveMon} {
		names := mon.Store().Names()
		have := make(map[string]bool, len(names))
		for _, n := range names {
			have[n] = true
		}
		for _, fam := range coreFamilies {
			if !have[fam] {
				t.Errorf("store %p missing family %s (has %v)", mon, fam, names)
			}
		}
	}

	// One report pipeline, two substrates: both must produce a non-empty
	// timeline CSV with identical headers and a renderable snapshot.
	var headers, bodies []string
	for _, mon := range []*monitor.Monitor{simMon, liveMon} {
		var b strings.Builder
		if err := mon.WriteTimelineCSV(&b); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("timeline CSV has no data rows:\n%s", b.String())
		}
		headers = append(headers, lines[0])
		bodies = append(bodies, b.String())

		snap := mon.Snapshot()
		if len(snap.Nodes) == 0 {
			t.Fatal("snapshot has no node rows")
		}
		out := monitor.RenderSnapshot(snap)
		if !strings.Contains(out, "Nodes") || !strings.Contains(out, "req/s") {
			t.Fatalf("rendered snapshot missing node table:\n%s", out)
		}
	}
	if headers[0] != headers[1] {
		t.Fatalf("timeline headers differ:\nsim:  %s\nlive: %s", headers[0], headers[1])
	}

	// The sim side must have seen real traffic through the same families
	// the live scraper fills: a positive windowed request rate somewhere.
	rows := simMon.Timeline()
	var sawReq bool
	for _, r := range rows {
		if r.ReqRate > 0 {
			sawReq = true
		}
	}
	if !sawReq {
		t.Fatal("simulated timeline never saw a positive request rate")
	}

	// Phase parity: both substrates fill sweb_phase_seconds with cells
	// drawn from the same vocabulary.
	simPhases := phaseSet(simMon)
	livePhases := phaseSet(liveMon)
	if len(simPhases) == 0 || len(livePhases) == 0 {
		t.Fatalf("phase cells empty: sim=%v live=%v", simPhases, livePhases)
	}
	known := map[string]bool{
		"parse": true, "analyze": true, "redirect": true, "redirect_hop": true,
		"fetch_local": true, "fetch_nfs": true, "cgi": true,
	}
	for _, set := range []([]string){simPhases, livePhases} {
		for _, ph := range set {
			if !known[ph] {
				t.Errorf("unknown phase cell %q", ph)
			}
		}
	}
}

// TestSimLiveSLOParity is the tentpole's parity criterion: the same
// declarative objective evaluated against either substrate's store must
// agree — on these deterministic healthy workloads, traffic was seen,
// no budget was burned, and every objective is met in both worlds.
func TestSimLiveSLOParity(t *testing.T) {
	objs, err := slo.ParseObjectives("avail=99.9,p99=10s")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		run  func(*testing.T) *monitor.Monitor
	}{{"sim", runSimMonitored}, {"live", runLiveMonitored}} {
		mon := tc.run(t)
		var nodes []string
		for _, s := range mon.Store().Select("sweb_response_seconds_count", nil) {
			if n := s.Labels["node"]; n != "" {
				nodes = append(nodes, n)
			}
		}
		sort.Strings(nodes)
		now := 0.0
		for _, s := range mon.Store().Select("sweb_response_seconds_count", nil) {
			if p, ok := monitor.Latest(s.Points); ok && p.T > now {
				now = p.T
			}
		}
		r := slo.Evaluate(mon.Store(), nodes, objs, now, now)
		if r.Breached() {
			t.Fatalf("%s: healthy run breached SLO: %+v", tc.name, r.Objectives)
		}
		for _, s := range r.Objectives {
			if s.Total == 0 {
				t.Fatalf("%s: objective %s saw no traffic", tc.name, s.Objective.Name)
			}
			if s.Errors != 0 {
				t.Fatalf("%s: objective %s charged %v errors on a healthy run", tc.name, s.Objective.Name, s.Errors)
			}
		}
		// Burn-rate rules evaluate cleanly against the same store.
		rules := slo.Rules(objs, slo.Windows{FastLong: now, FastShort: now / 2, SlowLong: now, SlowShort: now / 2})
		view := &monitor.View{Store: mon.Store(), Nodes: nodes, From: 0, To: now}
		for _, rule := range rules {
			for subject, burn := range rule.Eval(view) {
				if burn != 0 {
					t.Errorf("%s: rule %s subject %s burns %v on a healthy run", tc.name, rule.Name, subject, burn)
				}
			}
		}
	}
}

func phaseSet(mon *monitor.Monitor) []string {
	seen := make(map[string]bool)
	for _, s := range mon.Store().Select("sweb_phase_seconds_count", nil) {
		if ph := s.Labels["phase"]; ph != "" {
			seen[ph] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ph := range seen {
		out = append(out, ph)
	}
	sort.Strings(out)
	return out
}
