package monitor

import (
	"math"
	"sort"
	"strconv"

	"sweb/internal/metrics"
)

// window narrows pts to the closed interval [from, to], including the last
// point at or before from as the baseline a counter delta needs.
func window(pts []Point, from, to float64) []Point {
	lo := 0
	for i, p := range pts {
		if p.T <= from {
			lo = i
		}
	}
	hi := len(pts)
	for hi > 0 && pts[hi-1].T > to {
		hi--
	}
	if lo >= hi {
		return nil
	}
	return pts[lo:hi]
}

// Delta is the counter increase over [from, to], tolerant of counter
// resets: a drop between consecutive points (a node restart zeroing its
// registry) contributes the post-reset value instead of a negative jump,
// exactly the Prometheus increase() convention.
func Delta(pts []Point, from, to float64) float64 {
	w := window(pts, from, to)
	if len(w) < 2 {
		return 0
	}
	var inc float64
	for i := 1; i < len(w); i++ {
		d := w[i].V - w[i-1].V
		if d < 0 {
			d = w[i].V // reset: the counter restarted from zero
		}
		inc += d
	}
	return inc
}

// Rate is the per-second counter rate over [from, to]: the reset-aware
// increase divided by the span actually observed (first to last retained
// point in the window). Zero without two points or a positive span.
func Rate(pts []Point, from, to float64) float64 {
	w := window(pts, from, to)
	if len(w) < 2 {
		return 0
	}
	span := w[len(w)-1].T - w[0].T
	if span <= 0 {
		return 0
	}
	return Delta(pts, from, to) / span
}

// Deriv is the per-second slope of a gauge over [from, to]: (last-first)
// divided by the observed span. Unlike Rate it goes negative when the
// gauge falls.
func Deriv(pts []Point, from, to float64) float64 {
	w := window(pts, from, to)
	if len(w) < 2 {
		return 0
	}
	span := w[len(w)-1].T - w[0].T
	if span <= 0 {
		return 0
	}
	return (w[len(w)-1].V - w[0].V) / span
}

// Latest returns the newest point, false when the series is empty.
func Latest(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// HistogramQuantile estimates the q-th quantile of histogram name over the
// time window [from, to], restricted to series whose labels superset-match
// sel. Each node's cumulative _bucket counters are reduced to their
// windowed deltas per upper bound, summed across nodes, and fed to the
// histogram_quantile estimator — the merged-scrape analogue of
// rate(bucket[w]) quantiles. NaN with no observations in the window.
func (st *Store) HistogramQuantile(q float64, name string, sel metrics.Labels, from, to float64) float64 {
	perLE := make(map[float64]float64)
	for _, s := range st.Select(name+"_bucket", sel) {
		le, ok := s.Labels["le"]
		if !ok {
			continue
		}
		ub := math.Inf(1)
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			ub = v
		}
		perLE[ub] += Delta(s.Points, from, to)
	}
	if len(perLE) == 0 {
		return math.NaN()
	}
	buckets := make([]metrics.Bucket, 0, len(perLE))
	for ub, c := range perLE {
		buckets = append(buckets, metrics.Bucket{UpperBound: ub, CumulativeCount: c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].UpperBound < buckets[j].UpperBound })
	return metrics.HistogramQuantile(q, buckets)
}

// WindowedCount is the number of observations histogram name{sel} recorded
// in [from, to], summed across superset-matching series (the _count delta).
func (st *Store) WindowedCount(name string, sel metrics.Labels, from, to float64) float64 {
	var total float64
	for _, s := range st.Select(name+"_count", sel) {
		total += Delta(s.Points, from, to)
	}
	return total
}
