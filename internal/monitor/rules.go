package monitor

import (
	"math"

	"sweb/internal/metrics"
)

// RuleConfig tunes the paper-grounded default alert rules. Zero fields
// take the documented defaults.
type RuleConfig struct {
	// OverloadUtilization fires node_overload when a node's inflight
	// connections reach this fraction of its advertised accept capacity
	// (sweb_capacity) — the MAXLOAD dropping threshold made observable
	// (default 0.9).
	OverloadUtilization float64
	// ImbalanceCoV fires load_imbalance when the coefficient of variation
	// of per-node CPU load across up nodes exceeds it (default 0.75) —
	// the condition the t_s broker is supposed to prevent.
	ImbalanceCoV float64
	// ImbalanceMinLoad suppresses load_imbalance while the mean per-node
	// load is below it; an idle cluster is trivially "imbalanced"
	// (default 1).
	ImbalanceMinLoad float64
	// StalenessSeconds fires gossip_stale when any up node's view of a
	// peer's last broadcast is older than this — match it to the loadd
	// timeout (default 8, the live default).
	StalenessSeconds float64
	// RedirectRatio fires redirect_spike when the cluster-wide ratio of
	// redirects to connections over the window exceeds it (default 0.5):
	// the paper caps re-routing at one hop precisely because redirects
	// burn client round-trips.
	RedirectRatio float64
	// RedirectMinRate suppresses redirect_spike below this request rate
	// (default 1 rps).
	RedirectMinRate float64
	// PredictionErrorSeconds fires prediction_drift when the windowed
	// mean |predicted - actual| t_s exceeds it (default 0.75s).
	PredictionErrorSeconds float64
	// PredictionMinCompared suppresses prediction_drift with fewer
	// compared requests in the window (default 5).
	PredictionMinCompared float64
	// CacheMissRatio fires cache_low_hit when a node's windowed cache
	// miss ratio (Δmisses / Δlookups) reaches it (default 0.9): a hot-file
	// cache that almost never hits means the working set outgrew the
	// capacity — the regime where the paper's superlinear speedup
	// evaporates — or the cache was sized wrong.
	CacheMissRatio float64
	// CacheMinLookups suppresses cache_low_hit with fewer cache lookups
	// in the window (default 20); a cold or idle cache is not a failing
	// one.
	CacheMinLookups float64
	// HotDocShare fires hot_doc when one document draws more than this
	// fraction of the cluster's served requests over the window (default
	// 0.5): the paper's skewed-workload pathology, where a single hot
	// file collapses the "parallel" server onto one node, caught while
	// it happens. Keyed by path, read from the sweb_heat_* families.
	HotDocShare float64
	// HotDocMinRate suppresses hot_doc below this cluster-wide served
	// request rate (default 1 rps); one request in an idle window is
	// trivially 100% of the traffic.
	HotDocMinRate float64
	// ForSamples is how many consecutive breached (or cleared) collection
	// rounds a rule needs before changing state — the hysteresis that
	// stops threshold flapping (default 2).
	ForSamples int
	// ClearFraction scales a rule's fire threshold down to its clear
	// threshold (default 0.7): once firing, the signal must drop well
	// below the trigger before the alert clears.
	ClearFraction float64
}

func (c *RuleConfig) fillDefaults() {
	if c.OverloadUtilization == 0 {
		c.OverloadUtilization = 0.9
	}
	if c.ImbalanceCoV == 0 {
		c.ImbalanceCoV = 0.75
	}
	if c.ImbalanceMinLoad == 0 {
		c.ImbalanceMinLoad = 1
	}
	if c.StalenessSeconds == 0 {
		c.StalenessSeconds = 8
	}
	if c.RedirectRatio == 0 {
		c.RedirectRatio = 0.5
	}
	if c.RedirectMinRate == 0 {
		c.RedirectMinRate = 1
	}
	if c.PredictionErrorSeconds == 0 {
		c.PredictionErrorSeconds = 0.75
	}
	if c.PredictionMinCompared == 0 {
		c.PredictionMinCompared = 5
	}
	if c.CacheMissRatio == 0 {
		c.CacheMissRatio = 0.9
	}
	if c.CacheMinLookups == 0 {
		c.CacheMinLookups = 20
	}
	if c.HotDocShare == 0 {
		c.HotDocShare = 0.5
	}
	if c.HotDocMinRate == 0 {
		c.HotDocMinRate = 1
	}
	if c.ForSamples == 0 {
		c.ForSamples = 2
	}
	if c.ClearFraction == 0 {
		c.ClearFraction = 0.7
	}
}

// View is what a rule evaluation sees: the store plus the collection round
// it runs in. From/To bound the rule's derivation window and Nodes lists
// every node name the monitor has ever scraped.
type View struct {
	Store *Store
	Nodes []string
	From  float64
	To    float64
}

// latest reads the newest value of name{labels}, false when absent.
func (v *View) latest(name string, labels metrics.Labels) (float64, bool) {
	p, ok := Latest(v.Store.Points(name, labels))
	return p.V, ok
}

// up reports whether the node's last scrape succeeded.
func (v *View) up(node string) bool {
	val, ok := v.latest(metricUp, metrics.Labels{"node": node})
	return ok && val > 0
}

// Rule is one alert definition. Eval returns the observed value per
// subject (a node name, or "" for a cluster-wide rule); a subject at or
// above Fire for For consecutive rounds starts firing, and clears again
// only after For consecutive rounds below Clear.
type Rule struct {
	Name  string
	Fire  float64
	Clear float64
	For   int
	Eval  func(v *View) map[string]float64
}

// DefaultRules builds the paper-grounded rule set.
func DefaultRules(cfg RuleConfig) []Rule {
	cfg.fillDefaults()
	hy := func(name string, fire float64, eval func(v *View) map[string]float64) Rule {
		return Rule{Name: name, Fire: fire, Clear: fire * cfg.ClearFraction, For: cfg.ForSamples, Eval: eval}
	}
	return []Rule{
		// node_down: the scrape itself is the health check; a node that
		// stops answering /sweb/metrics is gone from the resource pool.
		{Name: "node_down", Fire: 1, Clear: 1, For: cfg.ForSamples, Eval: func(v *View) map[string]float64 {
			out := make(map[string]float64)
			for _, n := range v.Nodes {
				if v.up(n) {
					out[n] = 0
				} else {
					out[n] = 1
				}
			}
			return out
		}},
		hy("node_overload", cfg.OverloadUtilization, func(v *View) map[string]float64 {
			out := make(map[string]float64)
			for _, n := range v.Nodes {
				if !v.up(n) {
					continue
				}
				inflight, ok := v.latest("sweb_inflight", metrics.Labels{"node": n})
				capacity, ok2 := v.latest("sweb_capacity", metrics.Labels{"node": n})
				if !ok || !ok2 || capacity <= 0 {
					continue
				}
				out[n] = inflight / capacity
			}
			return out
		}),
		hy("load_imbalance", cfg.ImbalanceCoV, func(v *View) map[string]float64 {
			var loads []float64
			for _, n := range v.Nodes {
				if !v.up(n) {
					continue
				}
				if l, ok := v.latest("sweb_inflight", metrics.Labels{"node": n}); ok {
					loads = append(loads, l)
				}
			}
			if len(loads) < 2 {
				return map[string]float64{"": 0}
			}
			var sum float64
			for _, l := range loads {
				sum += l
			}
			mean := sum / float64(len(loads))
			if mean < cfg.ImbalanceMinLoad {
				return map[string]float64{"": 0}
			}
			var varsum float64
			for _, l := range loads {
				varsum += (l - mean) * (l - mean)
			}
			return map[string]float64{"": math.Sqrt(varsum/float64(len(loads))) / mean}
		}),
		// gossip_stale is keyed by the silent peer: the maximum broadcast
		// age any up node reports for it. A killed node's age grows on
		// every survivor until its loadd row would time out.
		hy("gossip_stale", cfg.StalenessSeconds, func(v *View) map[string]float64 {
			out := make(map[string]float64)
			for _, n := range v.Nodes {
				if !v.up(n) {
					continue
				}
				for _, s := range v.Store.Select("sweb_loadd_broadcast_age_seconds", metrics.Labels{"node": n}) {
					peer := s.Labels["peer"]
					p, ok := Latest(s.Points)
					if peer == "" || !ok || p.T < v.To {
						continue // only this round's reading counts
					}
					if p.V > out[peer] {
						out[peer] = p.V
					}
				}
			}
			return out
		}),
		hy("redirect_spike", cfg.RedirectRatio, func(v *View) map[string]float64 {
			var reqRate, redirRate float64
			for _, n := range v.Nodes {
				reqRate += Rate(v.Store.Points("sweb_events_total",
					metrics.Labels{"event": "connected", "node": n}), v.From, v.To)
				redirRate += Rate(v.Store.Points("sweb_events_total",
					metrics.Labels{"event": "redirected", "node": n}), v.From, v.To)
			}
			if reqRate < cfg.RedirectMinRate {
				return map[string]float64{"": 0}
			}
			return map[string]float64{"": redirRate / reqRate}
		}),
		// cache_low_hit is keyed by node: the windowed miss ratio of its
		// hot-file cache, suppressed until the window holds enough
		// lookups to mean something. Both substrates publish the same
		// sweb_cache_* counters, so one rule reads either.
		hy("cache_low_hit", cfg.CacheMissRatio, func(v *View) map[string]float64 {
			out := make(map[string]float64)
			for _, n := range v.Nodes {
				if !v.up(n) {
					continue
				}
				hits := Delta(v.Store.Points("sweb_cache_hits_total", metrics.Labels{"node": n}), v.From, v.To)
				misses := Delta(v.Store.Points("sweb_cache_misses_total", metrics.Labels{"node": n}), v.From, v.To)
				if hits+misses < cfg.CacheMinLookups {
					out[n] = 0
					continue
				}
				out[n] = misses / (hits + misses)
			}
			return out
		}),
		// hot_doc is keyed by document path: the share of the cluster's
		// served requests one document drew over the window, from the
		// per-path sweb_heat_requests_total counters against the
		// sweb_heat_observations_total denominator. Both substrates
		// publish the same families, so one rule reads either. The share
		// is divided by the document's replica-set size (the max
		// sweb_heat_replicas gauge any node reports, default 1): R
		// replicas split the load R ways, so a replicated document is
		// only pathological when its per-copy share still breaches — and
		// the rebalancer's fix clears the alert without the load itself
		// flattening.
		hy("hot_doc", cfg.HotDocShare, func(v *View) map[string]float64 {
			var total float64
			byPath := make(map[string]float64)
			replicas := make(map[string]float64)
			for _, n := range v.Nodes {
				if !v.up(n) {
					continue
				}
				total += Delta(v.Store.Points("sweb_heat_observations_total",
					metrics.Labels{"node": n}), v.From, v.To)
				for _, s := range v.Store.Select("sweb_heat_requests_total", metrics.Labels{"node": n}) {
					if path := s.Labels["path"]; path != "" {
						byPath[path] += Delta(s.Points, v.From, v.To)
					}
				}
				for _, s := range v.Store.Select("sweb_heat_replicas", metrics.Labels{"node": n}) {
					path := s.Labels["path"]
					p, ok := Latest(s.Points)
					if path == "" || !ok {
						continue
					}
					if p.V > replicas[path] {
						replicas[path] = p.V
					}
				}
			}
			if total <= 0 || total/(v.To-v.From) < cfg.HotDocMinRate {
				return map[string]float64{"": 0}
			}
			out := make(map[string]float64, len(byPath))
			for path, count := range byPath {
				r := replicas[path]
				if r < 1 {
					r = 1
				}
				out[path] = count / total / r
			}
			return out
		}),
		hy("prediction_drift", cfg.PredictionErrorSeconds, func(v *View) map[string]float64 {
			var absErr, compared float64
			for _, s := range v.Store.Select("sweb_sched_abs_error_seconds_sum", nil) {
				absErr += Delta(s.Points, v.From, v.To)
			}
			for _, s := range v.Store.Select("sweb_sched_compared_total", nil) {
				compared += Delta(s.Points, v.From, v.To)
			}
			if compared < cfg.PredictionMinCompared {
				return map[string]float64{"": 0}
			}
			return map[string]float64{"": absErr / compared}
		}),
	}
}
