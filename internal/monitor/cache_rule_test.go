package monitor_test

import (
	"testing"

	"sweb/internal/metrics"
	"sweb/internal/monitor"
)

// TestCacheLowHitRule drives the default cache_low_hit rule through its
// whole life: an idle cache is suppressed below the minimum-lookup floor,
// a thrashing one (pure misses) needs ForSamples consecutive breached
// rounds to fire, and recovery clears it only after the hysteresis streak.
func TestCacheLowHitRule(t *testing.T) {
	var hits, misses float64
	m := monitor.New(monitor.Config{
		Window: 3,
		Rules:  monitor.RuleConfig{ForSamples: 2, CacheMinLookups: 20},
	})
	m.AddSource(&monitor.FuncSource{Name: "n0", Fn: func() ([]metrics.Sample, error) {
		return []metrics.Sample{
			{Name: "sweb_cache_hits_total", Value: hits},
			{Name: "sweb_cache_misses_total", Value: misses},
		}, nil
	}})

	now := 0.0
	step := func(dh, dm float64) bool {
		hits += dh
		misses += dm
		now++
		m.Collect(now)
		return m.AlertFiring("cache_low_hit", "n0")
	}

	// A cold, idle cache: a few misses, below the lookup floor — quiet.
	for i := 0; i < 3; i++ {
		if step(0, 5) {
			t.Fatalf("round %d: fired below the minimum-lookup floor", i)
		}
	}
	// Thrashing: every lookup misses, well over the floor. One breached
	// round must not fire yet...
	if step(0, 50) {
		t.Fatal("fired after a single breached round")
	}
	// ...the second consecutive breach does.
	if !step(0, 50) {
		t.Fatal("did not fire after two consecutive thrashing rounds")
	}
	// The firing state is visible in Alerts() with the node as subject.
	var found bool
	for _, a := range m.Alerts() {
		if a.Rule == "cache_low_hit" && a.Node == "n0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cache_low_hit missing from Alerts(): %+v", m.Alerts())
	}

	// Recovery: the working set fits again and lookups start hitting.
	// One good round is not enough to clear...
	if !step(100, 0) {
		t.Fatal("cleared after a single recovered round")
	}
	// ...two consecutive good rounds are.
	if step(100, 0) {
		t.Fatal("still firing after two recovered rounds")
	}
}
