package monitor

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"sweb/internal/httpmsg"
	"sweb/internal/metrics"
)

// Source is one node's metrics feed. Scrape returns the node's current
// sample set, or an error when the node is unreachable — the monitor
// records the failure as sweb_monitor_up 0 and keeps the last good data.
type Source interface {
	Node() string
	Scrape() ([]metrics.Sample, error)
}

// RegistrySource scrapes an in-process Registry — the simulator path. The
// registry's text exposition is rendered and re-parsed rather than read
// directly so both substrates exercise the identical WriteText→ParseText
// pipeline the live scraper uses.
type RegistrySource struct {
	Name     string
	Registry *metrics.Registry
	// Up, when set, gates the scrape: false models an unreachable node
	// (the simulator's killed-node analogue of a refused TCP dial).
	Up func() bool
}

func (s *RegistrySource) Node() string { return s.Name }

func (s *RegistrySource) Scrape() ([]metrics.Sample, error) {
	if s.Up != nil && !s.Up() {
		return nil, fmt.Errorf("monitor: node %s down", s.Name)
	}
	var b strings.Builder
	if err := s.Registry.WriteText(&b); err != nil {
		return nil, err
	}
	return metrics.ParseText(strings.NewReader(b.String()))
}

// HTTPSource scrapes a live node's /sweb/metrics endpoint over a raw TCP
// dial, using the repo's own httpmsg reader rather than net/http — same
// wire format the introspection server speaks.
type HTTPSource struct {
	Name    string
	Addr    string
	Timeout time.Duration // default 5s
	Path    string        // default /sweb/metrics
}

func (s *HTTPSource) Node() string { return s.Name }

func (s *HTTPSource) Scrape() ([]metrics.Sample, error) {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	path := s.Path
	if path == "" {
		path = "/sweb/metrics"
	}
	conn, err := net.DialTimeout("tcp", s.Addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n", path, s.Addr); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := httpmsg.ReadResponse(br, 8<<20)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("monitor: scrape %s: HTTP %d", s.Addr, resp.StatusCode)
	}
	return metrics.ParseText(strings.NewReader(string(resp.Body)))
}

// FuncSource adapts a closure — handy for tests and synthetic feeds.
type FuncSource struct {
	Name string
	Fn   func() ([]metrics.Sample, error)
}

func (s *FuncSource) Node() string                      { return s.Name }
func (s *FuncSource) Scrape() ([]metrics.Sample, error) { return s.Fn() }
