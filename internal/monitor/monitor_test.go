package monitor_test

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"sweb/internal/metrics"
	"sweb/internal/monitor"
)

func pts(vals ...float64) []monitor.Point {
	out := make([]monitor.Point, len(vals)/2)
	for i := range out {
		out[i] = monitor.Point{T: vals[2*i], V: vals[2*i+1]}
	}
	return out
}

func TestDeltaAcrossCounterReset(t *testing.T) {
	// 100→110 (+10), restart zeroes the counter, 5 means +5 post-reset,
	// then 5→25 (+20): increase() convention says 35 total.
	series := pts(0, 100, 10, 110, 20, 5, 30, 25)
	if d := monitor.Delta(series, 0, 30); d != 35 {
		t.Fatalf("Delta = %v, want 35", d)
	}
	if r := monitor.Rate(series, 0, 30); math.Abs(r-35.0/30) > 1e-12 {
		t.Fatalf("Rate = %v, want %v", r, 35.0/30)
	}
}

func TestDeltaUsesBaselineBeforeWindow(t *testing.T) {
	// The last point at-or-before `from` anchors the delta; without it a
	// window that opens between scrapes would undercount.
	series := pts(0, 0, 10, 100)
	if d := monitor.Delta(series, 5, 10); d != 100 {
		t.Fatalf("Delta = %v, want 100", d)
	}
	if d := monitor.Delta(series, 10, 20); d != 0 {
		t.Fatalf("Delta past the data = %v, want 0", d)
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	if d := monitor.Delta(nil, 0, 10); d != 0 {
		t.Fatalf("Delta(nil) = %v", d)
	}
	if d := monitor.Delta(pts(5, 42), 0, 10); d != 0 {
		t.Fatalf("Delta(one point) = %v", d)
	}
	if r := monitor.Rate(pts(5, 1, 5, 2), 0, 10); r != 0 {
		t.Fatalf("Rate over zero span = %v", r)
	}
}

func TestDerivGoesNegative(t *testing.T) {
	series := pts(0, 10, 10, 0)
	if d := monitor.Deriv(series, 0, 10); d != -1 {
		t.Fatalf("Deriv = %v, want -1", d)
	}
}

func TestWindowedHistogramQuantileMergesNodes(t *testing.T) {
	st := monitor.NewStore(0)
	// Two nodes' cumulative buckets; windowed deltas: node a contributes
	// 10 observations ≤1, node b contributes 10 observations in (1,+Inf].
	for _, n := range []struct {
		node     string
		le1, inf []float64 // value at t=0 and t=10
	}{
		{"a", []float64{0, 10}, []float64{0, 10}},
		{"b", []float64{0, 0}, []float64{0, 10}},
	} {
		for i, tt := range []float64{0, 10} {
			st.Append("sweb_phase_seconds_bucket",
				metrics.Labels{"node": n.node, "phase": "parse", "le": "1"}, tt, n.le1[i])
			st.Append("sweb_phase_seconds_bucket",
				metrics.Labels{"node": n.node, "phase": "parse", "le": "+Inf"}, tt, n.inf[i])
			st.Append("sweb_phase_seconds_count",
				metrics.Labels{"node": n.node, "phase": "parse"}, tt, n.inf[i])
		}
	}
	sel := metrics.Labels{"phase": "parse"}
	if c := st.WindowedCount("sweb_phase_seconds", sel, 0, 10); c != 20 {
		t.Fatalf("WindowedCount = %v, want 20", c)
	}
	q25 := st.HistogramQuantile(0.25, "sweb_phase_seconds", sel, 0, 10)
	if math.IsNaN(q25) || q25 <= 0 || q25 > 1 {
		t.Fatalf("q25 = %v, want within (0, 1]", q25)
	}
	q90 := st.HistogramQuantile(0.9, "sweb_phase_seconds", sel, 0, 10)
	if math.IsNaN(q90) || q90 < 1 {
		t.Fatalf("q90 = %v, want >= 1 (upper bucket)", q90)
	}
	// An empty window has no observations: NaN, not zero.
	if q := st.HistogramQuantile(0.5, "sweb_phase_seconds", sel, 20, 30); !math.IsNaN(q) {
		t.Fatalf("quantile over empty window = %v, want NaN", q)
	}
}

// TestHysteresisNoFlapping drives a custom rule through the state machine:
// For=2 consecutive breaches to fire, threshold chatter must not flap it,
// and clearing needs For consecutive rounds below Clear (= Fire × 0.7).
func TestHysteresisNoFlapping(t *testing.T) {
	var val float64
	rule := monitor.Rule{
		Name: "sig", Fire: 10, Clear: 7, For: 2,
		Eval: func(v *monitor.View) map[string]float64 {
			return map[string]float64{"n0": val}
		},
	}
	m := monitor.New(monitor.Config{ExtraRules: []monitor.Rule{rule}})

	step := func(now, v float64) bool {
		val = v
		m.Collect(now)
		return m.AlertFiring("sig", "n0")
	}

	// Chatter around the fire threshold never accumulates two in a row.
	for i, v := range []float64{12, 6, 12, 6, 12, 6} {
		if step(float64(i), v) {
			t.Fatalf("rule fired while flapping at round %d", i)
		}
	}
	// Two consecutive breaches fire it.
	if step(10, 12) {
		t.Fatal("fired after a single breach")
	}
	if !step(11, 12) {
		t.Fatal("did not fire after two consecutive breaches")
	}
	// In the hysteresis band (Clear <= v < Fire) it stays firing forever.
	for i := 0; i < 5; i++ {
		if !step(12+float64(i), 8) {
			t.Fatal("cleared inside the hysteresis band")
		}
	}
	// One good round is not enough...
	if !step(20, 5) {
		t.Fatal("cleared after a single good round")
	}
	// ...a relapse resets the clear streak...
	if !step(21, 8) {
		t.Fatal("cleared after a relapse")
	}
	if !step(22, 5) {
		t.Fatal("cleared after one good round post-relapse")
	}
	// ...and two consecutive good rounds finally clear it.
	if step(23, 5) {
		t.Fatal("still firing after two consecutive good rounds")
	}
	// The alert state was exported into the store on every round.
	alertPts := m.Store().Points("sweb_monitor_alert", metrics.Labels{"rule": "sig", "node": "n0"})
	if len(alertPts) == 0 {
		t.Fatal("no sweb_monitor_alert series")
	}
	var sawFiring bool
	for _, p := range alertPts {
		if p.V == 1 {
			sawFiring = true
		}
	}
	if !sawFiring || alertPts[len(alertPts)-1].V != 0 {
		t.Fatalf("alert metric history wrong: %+v", alertPts)
	}
}

// TestNodeDownRule feeds the monitor a source that starts failing and
// checks the default node_down rule fires and clears with hysteresis.
func TestNodeDownRule(t *testing.T) {
	healthy := true
	m := monitor.New(monitor.Config{Rules: monitor.RuleConfig{ForSamples: 2}})
	m.AddSource(&monitor.FuncSource{Name: "n0", Fn: func() ([]metrics.Sample, error) {
		if !healthy {
			return nil, errors.New("down")
		}
		return []metrics.Sample{{Name: "sweb_inflight", Value: 1}}, nil
	}})
	m.Collect(1)
	m.Collect(2)
	if m.AlertFiring("node_down", "n0") {
		t.Fatal("node_down firing while healthy")
	}
	healthy = false
	m.Collect(3)
	if m.AlertFiring("node_down", "n0") {
		t.Fatal("node_down fired after one failed scrape")
	}
	m.Collect(4)
	if !m.AlertFiring("node_down", "n0") {
		t.Fatal("node_down did not fire after two failed scrapes")
	}
	if alerts := m.Alerts(); len(alerts) != 1 || alerts[0].Rule != "node_down" {
		t.Fatalf("Alerts() = %+v", alerts)
	}
	healthy = true
	m.Collect(5)
	m.Collect(6)
	if m.AlertFiring("node_down", "n0") {
		t.Fatal("node_down did not clear after recovery")
	}
}

func TestStoreRingBounds(t *testing.T) {
	st := monitor.NewStore(4)
	for i := 0; i < 10; i++ {
		st.Append("m", nil, float64(i), float64(i))
	}
	got := st.Points("m", nil)
	if len(got) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(got))
	}
	for i, p := range got {
		if want := float64(6 + i); p.T != want {
			t.Fatalf("point %d at t=%v, want %v (oldest-first)", i, p.T, want)
		}
	}
}

func TestStoreSelectSupersetAndExport(t *testing.T) {
	st := monitor.NewStore(0)
	st.Append("x", metrics.Labels{"node": "0", "phase": "parse"}, 1, 2)
	st.Append("x", metrics.Labels{"node": "1", "phase": "parse"}, 1, 3)
	st.Append("x", metrics.Labels{"node": "1", "phase": "cgi"}, 1, 4)
	st.Append("y", metrics.Labels{"node": "1"}, 1, 5)
	if got := st.Select("x", metrics.Labels{"phase": "parse"}); len(got) != 2 {
		t.Fatalf("Select matched %d series, want 2", len(got))
	}
	if got := st.Select("x", nil); len(got) != 3 {
		t.Fatalf("Select(nil) matched %d series, want 3", len(got))
	}
	var csv strings.Builder
	if err := st.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "series,t,v" || len(lines) != 5 {
		t.Fatalf("CSV:\n%s", csv.String())
	}
	var js strings.Builder
	if err := st.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded []monitor.Series
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if len(decoded) != 4 {
		t.Fatalf("JSON has %d series, want 4", len(decoded))
	}
}
