package monitor

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"sweb/internal/metrics"
	"sweb/internal/stats"
)

// reportPhases are the request-lifecycle histogram cells the snapshot
// tabulates, matching internal/live's report ordering.
var reportPhases = []string{"parse", "analyze", "redirect", "redirect_hop", "fetch_local", "fetch_nfs", "cgi"}

// TimelineRow is one node's state at one collection round — the unit the
// load-over-time CSV and the dashboard's history sparkline consume.
type TimelineRow struct {
	T            float64 `json:"t"`
	Node         string  `json:"node"`
	Up           bool    `json:"up"`
	Inflight     float64 `json:"inflight"`
	DiskActive   float64 `json:"disk_active"`
	NetActive    float64 `json:"net_active"`
	ReqRate      float64 `json:"req_rate"`      // connected events/s over the window
	RedirectRate float64 `json:"redirect_rate"` // redirected events/s over the window
}

// captureRows appends one TimelineRow per node for this round. Caller
// holds m.mu.
func (m *Monitor) captureRows(v *View, now float64) {
	for _, n := range v.Nodes {
		row := TimelineRow{T: now, Node: n, Up: v.up(n)}
		row.Inflight, _ = v.latest("sweb_inflight", metrics.Labels{"node": n})
		row.DiskActive, _ = v.latest("sweb_disk_active", metrics.Labels{"node": n})
		row.NetActive, _ = v.latest("sweb_net_active", metrics.Labels{"node": n})
		row.ReqRate = Rate(m.store.Points("sweb_events_total",
			metrics.Labels{"event": "connected", "node": n}), v.From, v.To)
		row.RedirectRate = Rate(m.store.Points("sweb_events_total",
			metrics.Labels{"event": "redirected", "node": n}), v.From, v.To)
		m.rows = append(m.rows, row)
	}
}

// Timeline returns every captured row, oldest round first.
func (m *Monitor) Timeline() []TimelineRow {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]TimelineRow(nil), m.rows...)
}

// WriteTimelineCSV exports the per-round per-node load timeline — the
// artifact the EXPERIMENTS.md walkthrough plots from either substrate.
func (m *Monitor) WriteTimelineCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t,node,up,inflight,disk_active,net_active,req_rate,redirect_rate\n"); err != nil {
		return err
	}
	for _, r := range m.Timeline() {
		up := 0
		if r.Up {
			up = 1
		}
		if _, err := fmt.Fprintf(w, "%g,%s,%d,%g,%g,%g,%.4g,%.4g\n",
			r.T, r.Node, up, r.Inflight, r.DiskActive, r.NetActive, r.ReqRate, r.RedirectRate); err != nil {
			return err
		}
	}
	return nil
}

// NodeRow is one node's line in a Snapshot.
type NodeRow struct {
	Node         string  `json:"node"`
	Up           bool    `json:"up"`
	Inflight     float64 `json:"inflight"`
	Capacity     float64 `json:"capacity"`
	DiskActive   float64 `json:"disk_active"`
	NetActive    float64 `json:"net_active"`
	Goroutines   float64 `json:"goroutines,omitempty"`
	HeapBytes    float64 `json:"heap_bytes,omitempty"`
	ReqRate      float64 `json:"req_rate"`
	RedirectRate float64 `json:"redirect_rate"`
	BytesOutRate float64 `json:"bytes_out_rate"`
}

// PhaseRow is one lifecycle phase's windowed latency summary.
type PhaseRow struct {
	Phase string  `json:"phase"`
	Count float64 `json:"count"` // observations inside the window
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// Snapshot is the dashboard's world-state at one instant: per-node load,
// windowed phase quantiles, and the firing alerts — the monitor-derived
// analogue of the paper's Table 4/5 rendered from live scrapes or from a
// simulator run alike.
type Snapshot struct {
	T       float64    `json:"t"`
	Window  float64    `json:"window"`
	Nodes   []NodeRow  `json:"nodes"`
	Phases  []PhaseRow `json:"phases"`
	P50     float64    `json:"response_p50"`
	P95     float64    `json:"response_p95"`
	Alerts  []Alert    `json:"alerts"`
	Rounds  int64      `json:"rounds"`
	Metrics int        `json:"series"`
}

// Snapshot reduces the store's current window to the dashboard view.
func (m *Monitor) Snapshot() *Snapshot {
	m.mu.Lock()
	now := m.lastT
	window := m.cfg.Window
	nodes := append([]string(nil), m.nodes...)
	rounds := m.rounds
	m.mu.Unlock()

	from, to := now-window, now
	v := &View{Store: m.store, Nodes: nodes, From: from, To: to}
	snap := &Snapshot{T: now, Window: window, Rounds: rounds, Metrics: m.store.SeriesCount()}
	for _, n := range nodes {
		row := NodeRow{Node: n, Up: v.up(n)}
		row.Inflight, _ = v.latest("sweb_inflight", metrics.Labels{"node": n})
		row.Capacity, _ = v.latest("sweb_capacity", metrics.Labels{"node": n})
		row.DiskActive, _ = v.latest("sweb_disk_active", metrics.Labels{"node": n})
		row.NetActive, _ = v.latest("sweb_net_active", metrics.Labels{"node": n})
		row.Goroutines, _ = v.latest("sweb_goroutines", metrics.Labels{"node": n})
		row.HeapBytes, _ = v.latest("sweb_heap_alloc_bytes", metrics.Labels{"node": n})
		row.ReqRate = Rate(m.store.Points("sweb_events_total",
			metrics.Labels{"event": "connected", "node": n}), from, to)
		row.RedirectRate = Rate(m.store.Points("sweb_events_total",
			metrics.Labels{"event": "redirected", "node": n}), from, to)
		for _, s := range m.store.Select("sweb_bytes_out_total", metrics.Labels{"node": n}) {
			row.BytesOutRate += Rate(s.Points, from, to)
		}
		snap.Nodes = append(snap.Nodes, row)
	}
	for _, phase := range reportPhases {
		sel := metrics.Labels{"phase": phase}
		count := m.store.WindowedCount("sweb_phase_seconds", sel, from, to)
		if count == 0 {
			continue
		}
		snap.Phases = append(snap.Phases, PhaseRow{
			Phase: phase,
			Count: count,
			P50:   m.store.HistogramQuantile(0.5, "sweb_phase_seconds", sel, from, to),
			P95:   m.store.HistogramQuantile(0.95, "sweb_phase_seconds", sel, from, to),
		})
	}
	if m.store.WindowedCount("sweb_response_seconds", nil, from, to) > 0 {
		snap.P50 = m.store.HistogramQuantile(0.5, "sweb_response_seconds", nil, from, to)
		snap.P95 = m.store.HistogramQuantile(0.95, "sweb_response_seconds", nil, from, to)
	}
	snap.Alerts = m.Alerts()
	return snap
}

// RenderSnapshot renders the snapshot as fixed-width tables for a
// terminal (or a -once CI log).
func RenderSnapshot(s *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweb monitor · t=%.1fs · window=%.0fs · rounds=%d · series=%d\n\n",
		s.T, s.Window, s.Rounds, s.Metrics)

	nt := &stats.Table{
		Title:  "Nodes",
		Header: []string{"node", "up", "load", "cap", "disk", "net", "req/s", "redir/s", "out MB/s", "goroutines", "heap MB"},
	}
	for _, n := range s.Nodes {
		up := "up"
		if !n.Up {
			up = "DOWN"
		}
		nt.AddRowStrings(n.Node, up,
			fmt.Sprintf("%.0f", n.Inflight),
			fmt.Sprintf("%.0f", n.Capacity),
			fmt.Sprintf("%.0f", n.DiskActive),
			fmt.Sprintf("%.0f", n.NetActive),
			fmt.Sprintf("%.2f", n.ReqRate),
			fmt.Sprintf("%.2f", n.RedirectRate),
			fmt.Sprintf("%.3f", n.BytesOutRate/1e6),
			fmt.Sprintf("%.0f", n.Goroutines),
			fmt.Sprintf("%.1f", n.HeapBytes/1e6))
	}
	b.WriteString(nt.String())
	b.WriteString("\n")

	if len(s.Phases) > 0 {
		pt := &stats.Table{
			Title:  "Phases (windowed)",
			Header: []string{"phase", "count", "p50", "p95"},
		}
		for _, p := range s.Phases {
			pt.AddRowStrings(p.Phase,
				fmt.Sprintf("%.0f", p.Count),
				quantileCell(p.P50), quantileCell(p.P95))
		}
		b.WriteString(pt.String())
		b.WriteString("\n")
	}
	if s.P50 != 0 || s.P95 != 0 {
		fmt.Fprintf(&b, "response: p50=%s p95=%s\n\n", quantileCell(s.P50), quantileCell(s.P95))
	}

	if len(s.Alerts) == 0 {
		b.WriteString("alerts: none\n")
	} else {
		at := &stats.Table{
			Title:  "Alerts (firing)",
			Header: []string{"rule", "subject", "value", "threshold", "since"},
		}
		for _, a := range s.Alerts {
			subject := a.Node
			if subject == "" {
				subject = "cluster"
			}
			at.AddRowStrings(a.Rule, subject,
				fmt.Sprintf("%.3g", a.Value),
				fmt.Sprintf("%.3g", a.Threshold),
				fmt.Sprintf("t=%.1fs", a.SinceT))
		}
		b.WriteString(at.String())
	}
	return b.String()
}

// quantileCell formats a quantile estimate, dashing out NaN (an empty
// window).
func quantileCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return stats.FormatSeconds(v)
}

// SortedAlertKeys is a test helper: the firing {rule, subject} pairs as
// "rule/subject" strings, sorted.
func SortedAlertKeys(alerts []Alert) []string {
	out := make([]string, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, a.Rule+"/"+a.Node)
	}
	sort.Strings(out)
	return out
}
