package httpmsg

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func parse(t *testing.T, raw string) *Request {
	t.Helper()
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatalf("parse %q: %v", raw, err)
	}
	return req
}

func TestParseSimpleGET(t *testing.T) {
	req := parse(t, "GET /index.html HTTP/1.0\r\nHost: example.com\r\n\r\n")
	if req.Method != "GET" || req.Path != "/index.html" || req.Proto != "HTTP/1.0" {
		t.Fatalf("req = %+v", req)
	}
	if req.Header.Get("Host") != "example.com" {
		t.Fatalf("host = %q", req.Header.Get("Host"))
	}
	if req.Query != "" || req.Body != nil {
		t.Fatal("unexpected query/body")
	}
}

func TestParseQueryString(t *testing.T) {
	req := parse(t, "GET /search?q=maps&swebr=1 HTTP/1.0\r\n\r\n")
	if req.Path != "/search" || req.Query != "q=maps&swebr=1" {
		t.Fatalf("req = %+v", req)
	}
}

func TestParsePercentEncodedPath(t *testing.T) {
	req := parse(t, "GET /a%20b/c%2Fd.html HTTP/1.0\r\n\r\n")
	if req.Path != "/a b/c/d.html" {
		t.Fatalf("path = %q", req.Path)
	}
}

func TestParseAbsoluteURL(t *testing.T) {
	req := parse(t, "GET http://server:8080/doc.html HTTP/1.0\r\n\r\n")
	if req.Path != "/doc.html" {
		t.Fatalf("path = %q", req.Path)
	}
	req = parse(t, "GET http://server HTTP/1.0\r\n\r\n")
	if req.Path != "/" {
		t.Fatalf("path = %q", req.Path)
	}
}

func TestParsePathNormalization(t *testing.T) {
	cases := map[string]string{
		"/a//b":     "/a/b",
		"/a/./b":    "/a/b",
		"/a/b/../c": "/a/c",
		"/":         "/",
		"/a/b/":     "/a/b/",
	}
	for in, want := range cases {
		req := parse(t, "GET "+in+" HTTP/1.0\r\n\r\n")
		if req.Path != want {
			t.Errorf("normalize(%q) = %q want %q", in, req.Path, want)
		}
	}
}

func TestParseRejectsTraversal(t *testing.T) {
	for _, p := range []string{"/../etc/passwd", "/a/../../etc", "/%2e%2e/secret"} {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader("GET " + p + " HTTP/1.0\r\n\r\n"))); err == nil {
			t.Errorf("traversal %q accepted", p)
		}
	}
}

func TestParsePOSTBody(t *testing.T) {
	req := parse(t, "POST /cgi-bin/q.cgi HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello")
	if string(req.Body) != "hello" {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"DELETE / HTTP/1.0\r\n\r\n",             // unsupported method
		"GET / SPDY/3\r\n\r\n",                  // unsupported proto
		"GET relative HTTP/1.0\r\n\r\n",         // non-absolute target
		"GET /%zz HTTP/1.0\r\n\r\n",             // bad escape
		"GET /%2 HTTP/1.0\r\n\r\n",              // truncated escape
		"GET / HTTP/1.0\r\nNoColonHere\r\n\r\n", // malformed header
		"GET / HTTP/1.0\r\n: empty\r\n\r\n",     // empty header name
		"POST / HTTP/1.0\r\n\r\n",               // POST without length
		"POST / HTTP/1.0\r\nContent-Length: -1\r\n\r\n",
		"POST / HTTP/1.0\r\nContent-Length: 10\r\n\r\nshort",
	}
	for _, in := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(in))); err == nil {
			t.Errorf("request %q parsed", in)
		}
	}
}

func TestParseLimits(t *testing.T) {
	longLine := "GET /" + strings.Repeat("a", MaxRequestLine) + " HTTP/1.0\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(longLine))); err == nil {
		t.Fatal("overlong request line accepted")
	}
	var b strings.Builder
	b.WriteString("GET / HTTP/1.0\r\n")
	for i := 0; i < MaxHeaderCount+1; i++ {
		b.WriteString("X-H: v\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String()))); err == nil {
		t.Fatal("too many headers accepted")
	}
	huge := "POST / HTTP/1.0\r\nContent-Length: 99999999\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(huge))); err == nil {
		t.Fatal("oversized body accepted")
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	if CanonicalKey("content-length") != "Content-Length" {
		t.Fatal("canonical key")
	}
	if CanonicalKey("X-SWEB-internal") != "X-Sweb-Internal" {
		t.Fatalf("got %q", CanonicalKey("X-SWEB-internal"))
	}
	h := Header{}
	h.Set("x-test", "1")
	if h.Get("X-TEST") != "1" {
		t.Fatal("case-insensitive get failed")
	}
	h.Add("x-test", "2")
	if len(h["X-Test"]) != 2 {
		t.Fatal("add did not append")
	}
	h.Del("X-test")
	if h.Get("x-test") != "" {
		t.Fatal("del failed")
	}
}

func TestRequestWriteReadRoundTrip(t *testing.T) {
	orig := &Request{
		Method: "GET",
		Path:   "/a b/file.html",
		Query:  "x=1&y=2",
		Header: Header{},
	}
	orig.Header.Set("X-Sweb-Internal", "1")
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != orig.Path || got.Query != orig.Query || got.Header.Get("X-Sweb-Internal") != "1" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestPOSTWriteReadRoundTrip(t *testing.T) {
	orig := &Request{Method: "POST", Path: "/cgi", Header: Header{}, Body: []byte("payload")}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "payload" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestWriteSimpleResponseReadBack(t *testing.T) {
	var buf bytes.Buffer
	h := Header{}
	h.Set("Location", "http://peer/doc")
	if err := WriteSimpleResponse(&buf, StatusMovedTemporarily, h, []byte("moved")); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(&buf), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 302 || resp.Header.Get("Location") != "http://peer/doc" {
		t.Fatalf("resp = %+v", resp)
	}
	if string(resp.Body) != "moved" {
		t.Fatalf("body = %q", resp.Body)
	}
	if resp.Header.Get("Date") == "" || resp.Header.Get("Server") == "" {
		t.Fatal("Date/Server headers missing")
	}
}

func TestReadResponseWithoutContentLength(t *testing.T) {
	raw := "HTTP/1.0 200 OK\r\n\r\nbody runs to eof"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "body runs to eof" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestReadResponseErrors(t *testing.T) {
	cases := []string{
		"NOTHTTP 200 OK\r\n\r\n",
		"HTTP/1.0 999999 X\r\n\r\n",
		"HTTP/1.0 20x OK\r\n\r\n",
		"HTTP/1.0 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.0 200 OK\r\nContent-Length: 10\r\n\r\nshort",
	}
	for _, in := range cases {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(in)), 0); err == nil {
			t.Errorf("response %q parsed", in)
		}
	}
}

func TestReadResponseLimit(t *testing.T) {
	raw := "HTTP/1.0 200 OK\r\nContent-Length: 100\r\n\r\n" + strings.Repeat("x", 100)
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 50); err == nil {
		t.Fatal("limit not enforced with Content-Length")
	}
	raw2 := "HTTP/1.0 200 OK\r\n\r\n" + strings.Repeat("x", 100)
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw2)), 50); err == nil {
		t.Fatal("limit not enforced without Content-Length")
	}
}

func TestStatusText(t *testing.T) {
	cases := map[int]string{
		200: "OK", 302: "Moved Temporarily", 400: "Bad Request",
		403: "Forbidden", 404: "Not Found", 500: "Internal Server Error",
		503: "Service Unavailable",
	}
	for code, want := range cases {
		if got := StatusText(code); got != want {
			t.Errorf("StatusText(%d) = %q", code, got)
		}
	}
	if !strings.Contains(StatusText(418), "418") {
		t.Fatal("unknown status formatting")
	}
}

func TestErrorBody(t *testing.T) {
	body := string(ErrorBody(404, "missing"))
	if !strings.Contains(body, "404") || !strings.Contains(body, "Not Found") || !strings.Contains(body, "missing") {
		t.Fatalf("error body = %q", body)
	}
}

func TestContentTypeFor(t *testing.T) {
	cases := map[string]string{
		"/a.html": "text/html", "/a.HTM": "text/html", "/a.txt": "text/plain",
		"/a.gif": "image/gif", "/a.jpg": "image/jpeg", "/a.pdf": "application/pdf",
		"/a.img": "application/octet-stream", "/noext": "application/octet-stream",
	}
	for in, want := range cases {
		if got := ContentTypeFor(in); got != want {
			t.Errorf("ContentTypeFor(%q) = %q", in, got)
		}
	}
}

// Property: any slash-separated path of safe segments survives a
// write→parse round trip byte for byte.
func TestPathRoundTripProperty(t *testing.T) {
	f := func(segs []string) bool {
		path := "/"
		for _, s := range segs {
			clean := strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == ' ' {
					return r
				}
				return -1
			}, s)
			if clean == "" || clean == strings.Repeat(" ", len(clean)) {
				continue
			}
			if path != "/" {
				path += "/"
			}
			path += clean
		}
		req := &Request{Method: "GET", Path: path, Header: Header{}}
		var buf bytes.Buffer
		if err := req.Write(&buf); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		return err == nil && got.Path == path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: header round trip preserves values for safe keys.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		req := &Request{Method: "GET", Path: "/", Header: Header{}}
		want := map[string]string{}
		for i, v := range vals {
			if i >= 20 {
				break
			}
			v = strings.Map(func(r rune) rune {
				if r >= ' ' && r < 127 {
					return r
				}
				return -1
			}, v)
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			key := "X-Prop-" + string(rune('A'+i))
			req.Header.Set(key, v)
			want[CanonicalKey(key)] = v
		}
		var buf bytes.Buffer
		if err := req.Write(&buf); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		for k, v := range want {
			if got.Header.Get(k) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
