package httpmsg

import (
	"testing"
	"time"
)

var refTime = time.Date(1994, time.November, 6, 8, 49, 37, 0, time.UTC)

func TestFormatHTTPDate(t *testing.T) {
	if got := FormatHTTPDate(refTime); got != "Sun, 06 Nov 1994 08:49:37 UTC" {
		t.Fatalf("got %q", got)
	}
}

func TestParseHTTPDateAllFormats(t *testing.T) {
	cases := []string{
		"Sun, 06 Nov 1994 08:49:37 GMT",  // RFC 1123
		"Sunday, 06-Nov-94 08:49:37 GMT", // RFC 850
		"Sun Nov  6 08:49:37 1994",       // asctime
	}
	for _, in := range cases {
		got, err := ParseHTTPDate(in)
		if err != nil {
			t.Errorf("parse %q: %v", in, err)
			continue
		}
		if !got.Equal(refTime) {
			t.Errorf("parse %q = %v, want %v", in, got, refTime)
		}
	}
}

func TestParseHTTPDateRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "yesterday", "2024-01-01T00:00:00Z"} {
		if _, err := ParseHTTPDate(in); err == nil {
			t.Errorf("parsed %q", in)
		}
	}
}

func TestNotModified(t *testing.T) {
	mod := refTime
	sameOrAfter := FormatHTTPDate(mod)
	later := FormatHTTPDate(mod.Add(time.Hour))
	earlier := FormatHTTPDate(mod.Add(-time.Hour))
	cases := []struct {
		ims  string
		want bool
	}{
		{"", false},           // unconditional
		{sameOrAfter, true},   // unchanged since the browser's copy
		{later, true},         // browser copy is newer than the file
		{earlier, false},      // file changed since the browser's copy
		{"not a date", false}, // malformed: serve the document
	}
	for _, c := range cases {
		if got := NotModified(c.ims, mod); got != c.want {
			t.Errorf("NotModified(%q) = %v want %v", c.ims, got, c.want)
		}
	}
}

func TestNotModifiedIgnoresSubSecond(t *testing.T) {
	mod := refTime.Add(300 * time.Millisecond)
	if !NotModified(FormatHTTPDate(refTime), mod) {
		t.Fatal("sub-second modification should not defeat the cache")
	}
}

func TestStatusTextNotModified(t *testing.T) {
	if StatusText(StatusNotModified) != "Not Modified" {
		t.Fatal("missing 304 reason phrase")
	}
}
