package httpmsg

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// A request line cut off by EOF used to parse as if it were complete: the
// old readLine returned the partial line alongside io.EOF's data. A
// truncated line must surface as an error, never as a valid request.
func TestReadRequestTruncatedLine(t *testing.T) {
	cases := []string{
		"GET / HTTP/1.0",                      // request line cut mid-way
		"GET / HTTP/1.0\r\nHost: example",     // header line cut mid-way
		"GET / HTTP/1.0\r\nHost: example\r\n", // header block never terminated
	}
	for _, in := range cases {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(in)))
		if err == nil {
			t.Errorf("truncated request %q parsed as %+v", in, req)
		}
		if err == io.EOF && in != "" {
			t.Errorf("truncated request %q reported clean EOF", in)
		}
	}
}

// A clean EOF before any bytes is the idle-connection-closed case and must
// stay distinguishable from a truncation error.
func TestReadRequestCleanEOF(t *testing.T) {
	_, err := ReadRequest(bufio.NewReader(strings.NewReader("")))
	if err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadResponseTruncatedHeader(t *testing.T) {
	cases := []string{
		"HTTP/1.0 200 OK",
		"HTTP/1.0 200 OK\r\nContent-Length: 3",
		"HTTP/1.0 200 OK\r\nContent-Length: 3\r\n",
	}
	for _, in := range cases {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(in)), 0); err == nil {
			t.Errorf("truncated response %q parsed", in)
		}
	}
}

// Request.Write used to Set Content-Length directly on the caller's Header
// map — a request written twice, or a header map shared between requests,
// silently grew a stale length.
func TestRequestWriteDoesNotMutateHeader(t *testing.T) {
	h := Header{}
	h.Set("X-Sweb-Internal", "1")
	req := &Request{Method: "POST", Path: "/cgi", Header: h, Body: []byte("12345")}
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := h.Get("Content-Length"); got != "" {
		t.Fatalf("Write mutated caller's header: Content-Length = %q", got)
	}
	// Writing again with a shorter body must not carry the old length.
	req.Body = []byte("123")
	var buf2 bytes.Buffer
	if err := req.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf2))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "123" {
		t.Fatalf("second write body = %q", got.Body)
	}
}

func TestRequestKeepAlive(t *testing.T) {
	cases := []struct {
		proto, conn string
		want        bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "Close", false},
		{"HTTP/1.1", "foo, close", false},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "Keep-Alive", true},
		{"", "", false},
	}
	for _, c := range cases {
		req := &Request{Proto: c.proto, Header: Header{}}
		if c.conn != "" {
			req.Header.Set("Connection", c.conn)
		}
		if got := req.KeepAlive(); got != c.want {
			t.Errorf("KeepAlive(%q, Connection:%q) = %v want %v", c.proto, c.conn, got, c.want)
		}
	}
}

func TestResponseSelfDelimited(t *testing.T) {
	mk := func(proto string, hdrs ...string) *Response {
		r := &Response{Proto: proto, StatusCode: 200, Header: Header{}}
		for i := 0; i+1 < len(hdrs); i += 2 {
			r.Header.Set(hdrs[i], hdrs[i+1])
		}
		return r
	}
	if !mk("HTTP/1.1", "Content-Length", "5").SelfDelimited() {
		t.Fatal("sized body should be self-delimited")
	}
	if !mk("HTTP/1.1", "Transfer-Encoding", "chunked").SelfDelimited() {
		t.Fatal("chunked body should be self-delimited")
	}
	if mk("HTTP/1.0").SelfDelimited() {
		t.Fatal("EOF-delimited body is not self-delimited")
	}
	if !mk("HTTP/1.1", "Content-Length", "5").KeepAlive() {
		t.Fatal("1.1 defaults to keep-alive")
	}
	if mk("HTTP/1.1", "Connection", "close").KeepAlive() {
		t.Fatal("Connection: close wins")
	}
	if !mk("HTTP/1.0", "Connection", "keep-alive").KeepAlive() {
		t.Fatal("1.0 keep-alive opt-in")
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	cw := NewChunkedWriter(bw)
	for _, part := range []string{"hello ", "", "chunked ", "world"} {
		if _, err := cw.Write([]byte(part)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(NewChunkedReader(bufio.NewReader(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello chunked world" {
		t.Fatalf("round trip = %q", got)
	}
}

// Property: any sequence of writes survives the chunked frame-and-decode
// round trip byte for byte, and the reader leaves the stream positioned
// exactly after the terminator.
func TestChunkedRoundTripProperty(t *testing.T) {
	f := func(parts [][]byte, trailing []byte) bool {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		cw := NewChunkedWriter(bw)
		var want []byte
		for _, p := range parts {
			if _, err := cw.Write(p); err != nil {
				return false
			}
			want = append(want, p...)
		}
		if cw.Close() != nil || bw.Flush() != nil {
			return false
		}
		buf.Write(trailing) // next message on the same connection
		br := bufio.NewReader(&buf)
		got, err := io.ReadAll(NewChunkedReader(br))
		if err != nil || !bytes.Equal(got, want) {
			return false
		}
		rest, _ := io.ReadAll(br)
		return bytes.Equal(rest, trailing)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A chunked stream cut before the terminator must error, not EOF cleanly —
// relays depend on this to tell a finished body from a dead peer.
func TestChunkedTruncation(t *testing.T) {
	cases := []string{
		"5\r\nhel",            // cut mid-chunk
		"5\r\nhello\r\n",      // cut before next size line
		"5\r\nhello\r\n0\r\n", // cut before trailer terminator
		"zz\r\n",              // garbage size
	}
	for _, in := range cases {
		_, err := io.ReadAll(NewChunkedReader(bufio.NewReader(strings.NewReader(in))))
		if err == nil {
			t.Errorf("truncated chunked stream %q read cleanly", in)
		}
	}
}

func TestReadResponseChunked(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hello world" {
		t.Fatalf("body = %q", resp.Body)
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 5); err == nil {
		t.Fatal("chunked body over limit accepted")
	}
}

func TestCopyBodyUsesPool(t *testing.T) {
	src := bytes.Repeat([]byte("x"), 100<<10)
	var dst bytes.Buffer
	n, err := CopyBody(&dst, bytes.NewReader(src))
	if err != nil || n != int64(len(src)) {
		t.Fatalf("CopyBody = %d, %v", n, err)
	}
	if !bytes.Equal(dst.Bytes(), src) {
		t.Fatal("CopyBody corrupted data")
	}
	dst.Reset()
	if _, err := CopyBodyN(&dst, bytes.NewReader(src), int64(len(src))); err != nil {
		t.Fatalf("CopyBodyN full: %v", err)
	}
	dst.Reset()
	if _, err := CopyBodyN(&dst, bytes.NewReader(src[:10]), 20); err == nil {
		t.Fatal("CopyBodyN short source succeeded")
	}
}
