package httpmsg

import (
	"io"
	"sync"
)

// copyBufSize is the transfer unit for streamed bodies — large enough to
// amortize syscalls, small enough that a pool of them is cheap to keep hot
// across keep-alive connections.
const copyBufSize = 32 << 10

var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufSize)
		return &b
	},
}

// plainReader/plainWriter strip io.WriterTo / io.ReaderFrom so the copy
// below genuinely goes through the pooled buffer instead of delegating to
// an allocation of the endpoint's choosing.
type plainReader struct{ r io.Reader }

func (p plainReader) Read(b []byte) (int, error) { return p.r.Read(b) }

type plainWriter struct{ w io.Writer }

func (p plainWriter) Write(b []byte) (int, error) { return p.w.Write(b) }

// CopyBody streams src to dst through a pool-recycled buffer, returning
// the byte count written.
func CopyBody(dst io.Writer, src io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	return io.CopyBuffer(plainWriter{dst}, plainReader{src}, *bp)
}

// CopyBodyN streams exactly n bytes from src to dst through a pooled
// buffer, with io.CopyN semantics: fewer than n bytes is an error (io.EOF
// when src ended cleanly early).
func CopyBodyN(dst io.Writer, src io.Reader, n int64) (int64, error) {
	written, err := CopyBody(dst, io.LimitReader(src, n))
	if written == n {
		return n, nil
	}
	if err == nil {
		err = io.EOF
	}
	return written, err
}
