// Package httpmsg implements the HTTP/1.0 message layer the live SWEB nodes
// speak: request parsing, response serialization, and the handful of status
// codes an NCSA-era server uses (200, 302 for SWEB's URL redirection, 400,
// 403, 404, 500, 503). It is deliberately a from-scratch implementation in
// the spirit of the 1996 httpd — one request per TCP connection, no
// keep-alive, no chunked encoding — built directly on bufio over net.Conn.
package httpmsg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Limits protect the parser from hostile or broken peers.
const (
	// MaxRequestLine bounds the "GET /path HTTP/1.0" line.
	MaxRequestLine = 8 << 10
	// MaxHeaderBytes bounds the total header block.
	MaxHeaderBytes = 32 << 10
	// MaxHeaderCount bounds the number of header fields.
	MaxHeaderCount = 100
	// MaxBodyBytes bounds request bodies (POST to CGI).
	MaxBodyBytes = 1 << 20
)

// Common status codes. (The paper's text quotes "202 ... OK. File found." —
// a typo for 200, which is what NCSA httpd actually sent.)
const (
	StatusOK                  = 200
	StatusMovedTemporarily    = 302 // SWEB's redirection vehicle
	StatusBadRequest          = 400
	StatusForbidden           = 403
	StatusNotFound            = 404
	StatusInternalServerError = 500
	StatusServiceUnavailable  = 503
)

// StatusText returns the reason phrase for the codes this server emits.
func StatusText(code int) string {
	switch code {
	case StatusOK:
		return "OK"
	case StatusMovedTemporarily:
		return "Moved Temporarily"
	case StatusNotModified:
		return "Not Modified"
	case StatusBadRequest:
		return "Bad Request"
	case StatusForbidden:
		return "Forbidden"
	case StatusNotFound:
		return "Not Found"
	case StatusInternalServerError:
		return "Internal Server Error"
	case StatusServiceUnavailable:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// Header is a case-insensitive header map; keys are stored canonicalized
// ("Content-Length"). Values keep insertion order per key.
type Header map[string][]string

// CanonicalKey converts "content-length" to "Content-Length".
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - ('a' - 'A')
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// Set replaces the values for key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = []string{value} }

// Add appends a value for key.
func (h Header) Add(key, value string) {
	ck := CanonicalKey(key)
	h[ck] = append(h[ck], value)
}

// Get returns the first value for key, or "".
func (h Header) Get(key string) string {
	if vs := h[CanonicalKey(key)]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Del removes key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// write serializes headers in sorted key order (deterministic output).
func (h Header) write(w *bufio.Writer) error {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range h[k] {
			if _, err := fmt.Fprintf(w, "%s: %s\r\n", k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Request is a parsed HTTP/1.0 request.
type Request struct {
	Method string // "GET", "HEAD", "POST"
	// Path is the decoded absolute path, query string stripped.
	Path string
	// Query is the raw query string (without '?'), "" if none.
	Query  string
	Proto  string // "HTTP/1.0" or "HTTP/1.1"
	Header Header
	Body   []byte // POST payload, nil otherwise
}

// ParseError marks a malformed message; servers answer 400.
type ParseError struct{ Reason string }

func (e *ParseError) Error() string { return "httpmsg: " + e.Reason }

func parseErrf(format string, args ...any) error {
	return &ParseError{Reason: fmt.Sprintf(format, args...)}
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br, MaxRequestLine)
	if err != nil {
		return nil, err
	}
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return nil, parseErrf("malformed request line %q", line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	switch method {
	case "GET", "HEAD", "POST":
	default:
		return nil, parseErrf("unsupported method %q", method)
	}
	if proto != "HTTP/1.0" && proto != "HTTP/1.1" && proto != "HTTP/0.9" {
		return nil, parseErrf("unsupported protocol %q", proto)
	}
	req := &Request{Method: method, Proto: proto, Header: Header{}}
	// Accept absolute URLs (proxy-style) by stripping the scheme+host.
	if strings.HasPrefix(target, "http://") {
		rest := target[len("http://"):]
		if slash := strings.IndexByte(rest, '/'); slash >= 0 {
			target = rest[slash:]
		} else {
			target = "/"
		}
	}
	if !strings.HasPrefix(target, "/") {
		return nil, parseErrf("request target %q is not absolute", target)
	}
	if q := strings.IndexByte(target, '?'); q >= 0 {
		req.Query = target[q+1:]
		target = target[:q]
	}
	req.Path, err = decodePath(target)
	if err != nil {
		return nil, err
	}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	if method == "POST" {
		n, err := strconv.Atoi(strings.TrimSpace(req.Header.Get("Content-Length")))
		if err != nil || n < 0 {
			return nil, parseErrf("POST without a valid Content-Length")
		}
		if n > MaxBodyBytes {
			return nil, parseErrf("request body of %d bytes exceeds limit", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, parseErrf("short request body: %v", err)
		}
		req.Body = body
	}
	return req, nil
}

// Write serializes the request (client side).
func (r *Request) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	target := escapePath(r.Path)
	if r.Query != "" {
		target += "?" + r.Query
	}
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	if _, err := fmt.Fprintf(bw, "%s %s %s\r\n", r.Method, target, proto); err != nil {
		return err
	}
	h := r.Header
	if h == nil {
		h = Header{}
	}
	if r.Body != nil {
		h.Set("Content-Length", strconv.Itoa(len(r.Body)))
	}
	if err := h.write(bw); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}
	if r.Body != nil {
		if _, err := bw.Write(r.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Response is a parsed or to-be-written HTTP response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string // reason phrase
	Header     Header
	// Body is the full body for parsed responses. When writing, use
	// WriteResponseHeader followed by direct writes for streaming.
	Body []byte
}

// ReadResponseHeader parses the status line and headers only, leaving the
// body unread on br — what a HEAD client or a streaming relay needs.
func ReadResponseHeader(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br, MaxRequestLine)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, parseErrf("malformed status line %q", line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, parseErrf("bad status code in %q", line)
	}
	resp := &Response{Proto: parts[0], StatusCode: code, Header: Header{}}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	return resp, nil
}

// ReadResponse parses a full response, including the body (bounded by
// limit bytes; pass <=0 for no limit beyond Content-Length).
func ReadResponse(br *bufio.Reader, limit int64) (*Response, error) {
	resp, err := ReadResponseHeader(br)
	if err != nil {
		return nil, err
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if err != nil || n < 0 {
			return nil, parseErrf("bad Content-Length %q", cl)
		}
		if limit > 0 && n > limit {
			return nil, parseErrf("response body of %d bytes exceeds limit", n)
		}
		resp.Body = make([]byte, n)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, parseErrf("short response body: %v", err)
		}
		return resp, nil
	}
	// HTTP/1.0 without Content-Length: body runs to EOF.
	var r io.Reader = br
	if limit > 0 {
		r = io.LimitReader(br, limit+1)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if limit > 0 && int64(len(body)) > limit {
		return nil, parseErrf("unbounded response exceeds limit")
	}
	resp.Body = body
	return resp, nil
}

// WriteResponseHeader writes the status line and headers; the caller then
// streams the body. Content-Length should already be set for HTTP/1.0
// clients that want to reuse nothing but still know the size.
func WriteResponseHeader(w *bufio.Writer, code int, h Header) error {
	if h == nil {
		h = Header{}
	}
	if h.Get("Date") == "" {
		h.Set("Date", time.Now().UTC().Format(time.RFC1123))
	}
	if h.Get("Server") == "" {
		h.Set("Server", "SWEB/1.0 (NCSA-derived)")
	}
	if _, err := fmt.Fprintf(w, "HTTP/1.0 %d %s\r\n", code, StatusText(code)); err != nil {
		return err
	}
	if err := h.write(w); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteSimpleResponse writes a complete small response (errors, redirects).
func WriteSimpleResponse(w io.Writer, code int, h Header, body []byte) error {
	bw := bufio.NewWriter(w)
	if h == nil {
		h = Header{}
	}
	if h.Get("Content-Type") == "" {
		h.Set("Content-Type", "text/html")
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	if err := WriteResponseHeader(bw, code, h); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// ErrorBody renders the little HTML page NCSA httpd sends with an error.
func ErrorBody(code int, detail string) []byte {
	return []byte(fmt.Sprintf(
		"<HEAD><TITLE>%d %s</TITLE></HEAD>\n<BODY><H1>%d %s</H1>\n%s\n</BODY>\n",
		code, StatusText(code), code, StatusText(code), detail))
}

// readLine reads a CRLF- or LF-terminated line of at most max bytes.
func readLine(br *bufio.Reader, max int) (string, error) {
	var b strings.Builder
	for {
		chunk, err := br.ReadString('\n')
		b.WriteString(chunk)
		if b.Len() > max {
			return "", parseErrf("line exceeds %d bytes", max)
		}
		if err != nil {
			if err == io.EOF && b.Len() == 0 {
				return "", io.EOF
			}
			if err == io.EOF {
				break
			}
			return "", err
		}
		break
	}
	return strings.TrimRight(b.String(), "\r\n"), nil
}

func readHeaders(br *bufio.Reader, h Header) error {
	total, count := 0, 0
	for {
		line, err := readLine(br, MaxRequestLine)
		if err != nil {
			return parseErrf("reading headers: %v", err)
		}
		if line == "" {
			return nil
		}
		total += len(line)
		count++
		if total > MaxHeaderBytes {
			return parseErrf("header block exceeds %d bytes", MaxHeaderBytes)
		}
		if count > MaxHeaderCount {
			return parseErrf("more than %d header fields", MaxHeaderCount)
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return parseErrf("malformed header line %q", line)
		}
		key := strings.TrimSpace(line[:colon])
		if key == "" || strings.ContainsAny(key, " \t") {
			return parseErrf("malformed header name %q", key)
		}
		h.Add(key, strings.TrimSpace(line[colon+1:]))
	}
}
