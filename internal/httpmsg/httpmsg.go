// Package httpmsg implements the HTTP message layer the live SWEB nodes
// speak: request parsing, response serialization, and the handful of status
// codes an NCSA-era server uses (200, 302 for SWEB's URL redirection, 400,
// 403, 404, 500, 503). It is deliberately a from-scratch implementation in
// the spirit of the 1996 httpd, built directly on bufio over net.Conn, but
// extended with the two HTTP/1.1 features the redirection architecture
// leans on: persistent connections (so a 302 hop does not cost a second
// TCP handshake) and chunked transfer coding for bodies whose length is
// unknown when the status line goes out.
package httpmsg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Limits protect the parser from hostile or broken peers.
const (
	// MaxRequestLine bounds the "GET /path HTTP/1.0" line.
	MaxRequestLine = 8 << 10
	// MaxHeaderBytes bounds the total header block.
	MaxHeaderBytes = 32 << 10
	// MaxHeaderCount bounds the number of header fields.
	MaxHeaderCount = 100
	// MaxBodyBytes bounds request bodies (POST to CGI).
	MaxBodyBytes = 1 << 20
)

// Common status codes. (The paper's text quotes "202 ... OK. File found." —
// a typo for 200, which is what NCSA httpd actually sent.)
const (
	StatusOK                  = 200
	StatusMovedTemporarily    = 302 // SWEB's redirection vehicle
	StatusBadRequest          = 400
	StatusForbidden           = 403
	StatusNotFound            = 404
	StatusInternalServerError = 500
	StatusServiceUnavailable  = 503
)

// StatusText returns the reason phrase for the codes this server emits.
func StatusText(code int) string {
	switch code {
	case StatusOK:
		return "OK"
	case StatusMovedTemporarily:
		return "Moved Temporarily"
	case StatusNotModified:
		return "Not Modified"
	case StatusBadRequest:
		return "Bad Request"
	case StatusForbidden:
		return "Forbidden"
	case StatusNotFound:
		return "Not Found"
	case StatusInternalServerError:
		return "Internal Server Error"
	case StatusServiceUnavailable:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// Header is a case-insensitive header map; keys are stored canonicalized
// ("Content-Length"). Values keep insertion order per key.
type Header map[string][]string

// CanonicalKey converts "content-length" to "Content-Length".
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - ('a' - 'A')
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// Set replaces the values for key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = []string{value} }

// Add appends a value for key.
func (h Header) Add(key, value string) {
	ck := CanonicalKey(key)
	h[ck] = append(h[ck], value)
}

// Get returns the first value for key, or "".
func (h Header) Get(key string) string {
	if vs := h[CanonicalKey(key)]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Del removes key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// Clone returns a deep copy of h (nil stays nil).
func (h Header) Clone() Header {
	if h == nil {
		return nil
	}
	out := make(Header, len(h))
	for k, vs := range h {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// hasToken reports whether the comma-separated header value v contains
// token, compared case-insensitively (the grammar of Connection and
// Transfer-Encoding values).
func hasToken(v, token string) bool {
	for len(v) > 0 {
		part := v
		if i := strings.IndexByte(v, ','); i >= 0 {
			part, v = v[:i], v[i+1:]
		} else {
			v = ""
		}
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// write serializes headers in sorted key order (deterministic output).
func (h Header) write(w *bufio.Writer) error {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range h[k] {
			if _, err := fmt.Fprintf(w, "%s: %s\r\n", k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Request is a parsed HTTP/1.0 request.
type Request struct {
	Method string // "GET", "HEAD", "POST"
	// Path is the decoded absolute path, query string stripped.
	Path string
	// Query is the raw query string (without '?'), "" if none.
	Query  string
	Proto  string // "HTTP/1.0" or "HTTP/1.1"
	Header Header
	Body   []byte // POST payload, nil otherwise
}

// ParseError marks a malformed message; servers answer 400.
type ParseError struct{ Reason string }

func (e *ParseError) Error() string { return "httpmsg: " + e.Reason }

func parseErrf(format string, args ...any) error {
	return &ParseError{Reason: fmt.Sprintf(format, args...)}
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br, MaxRequestLine)
	if err != nil {
		return nil, err
	}
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return nil, parseErrf("malformed request line %q", line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	switch method {
	case "GET", "HEAD", "POST":
	default:
		return nil, parseErrf("unsupported method %q", method)
	}
	if proto != "HTTP/1.0" && proto != "HTTP/1.1" && proto != "HTTP/0.9" {
		return nil, parseErrf("unsupported protocol %q", proto)
	}
	req := &Request{Method: method, Proto: proto, Header: Header{}}
	// Accept absolute URLs (proxy-style) by stripping the scheme+host.
	if strings.HasPrefix(target, "http://") {
		rest := target[len("http://"):]
		if slash := strings.IndexByte(rest, '/'); slash >= 0 {
			target = rest[slash:]
		} else {
			target = "/"
		}
	}
	if !strings.HasPrefix(target, "/") {
		return nil, parseErrf("request target %q is not absolute", target)
	}
	if q := strings.IndexByte(target, '?'); q >= 0 {
		req.Query = target[q+1:]
		target = target[:q]
	}
	req.Path, err = decodePath(target)
	if err != nil {
		return nil, err
	}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	if method == "POST" {
		n, err := strconv.Atoi(strings.TrimSpace(req.Header.Get("Content-Length")))
		if err != nil || n < 0 {
			return nil, parseErrf("POST without a valid Content-Length")
		}
		if n > MaxBodyBytes {
			return nil, parseErrf("request body of %d bytes exceeds limit", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, parseErrf("short request body: %v", err)
		}
		req.Body = body
	}
	return req, nil
}

// Write serializes the request (client side).
func (r *Request) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	target := escapePath(r.Path)
	if r.Query != "" {
		target += "?" + r.Query
	}
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	if _, err := fmt.Fprintf(bw, "%s %s %s\r\n", r.Method, target, proto); err != nil {
		return err
	}
	h := r.Header
	if h == nil {
		h = Header{}
	}
	if r.Body != nil {
		// Clone before stamping Content-Length: callers share one Header
		// map across retries and across requests, and must not see it grow.
		h = h.Clone()
		h.Set("Content-Length", strconv.Itoa(len(r.Body)))
	}
	if err := h.write(bw); err != nil {
		return err
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}
	if r.Body != nil {
		if _, err := bw.Write(r.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// KeepAlive reports whether the client asked for the connection to stay
// open after this request: the default on HTTP/1.1 unless "Connection:
// close", and on HTTP/1.0 only with an explicit "Connection: keep-alive"
// token.
func (r *Request) KeepAlive() bool {
	conn := r.Header.Get("Connection")
	switch r.Proto {
	case "HTTP/1.1":
		return !hasToken(conn, "close")
	case "HTTP/1.0":
		return hasToken(conn, "keep-alive")
	}
	return false
}

// Response is a parsed or to-be-written HTTP response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string // reason phrase
	Header     Header
	// Body is the full body for parsed responses. When writing, use
	// WriteResponseHeader followed by direct writes for streaming.
	Body []byte
}

// ReadResponseHeader parses the status line and headers only, leaving the
// body unread on br — what a HEAD client or a streaming relay needs.
func ReadResponseHeader(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br, MaxRequestLine)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, parseErrf("malformed status line %q", line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, parseErrf("bad status code in %q", line)
	}
	resp := &Response{Proto: parts[0], StatusCode: code, Header: Header{}}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	return resp, nil
}

// KeepAlive reports whether the server left the connection open after this
// response: "Connection: close" always spends it, HTTP/1.1 defaults to
// open, HTTP/1.0 needs the explicit keep-alive token. Callers must also
// check SelfDelimited — an EOF-bounded body spends the connection anyway.
func (r *Response) KeepAlive() bool {
	conn := r.Header.Get("Connection")
	if hasToken(conn, "close") {
		return false
	}
	if r.Proto == "HTTP/1.1" {
		return true
	}
	return hasToken(conn, "keep-alive")
}

// Chunked reports whether the response body uses chunked transfer coding.
func (r *Response) Chunked() bool {
	return hasToken(r.Header.Get("Transfer-Encoding"), "chunked")
}

// SelfDelimited reports whether the response advertises its own body
// length (Content-Length or chunked), i.e. whether a reader can find the
// boundary of the next response on the same connection.
func (r *Response) SelfDelimited() bool {
	return r.Header.Get("Content-Length") != "" || r.Chunked()
}

// ReadResponse parses a full response, including the body (bounded by
// limit bytes; pass <=0 for no limit beyond Content-Length).
func ReadResponse(br *bufio.Reader, limit int64) (*Response, error) {
	resp, err := ReadResponseHeader(br)
	if err != nil {
		return nil, err
	}
	if resp.Chunked() {
		var r io.Reader = NewChunkedReader(br)
		if limit > 0 {
			r = io.LimitReader(r, limit+1)
		}
		body, err := io.ReadAll(r)
		if err != nil {
			return nil, parseErrf("chunked body: %v", err)
		}
		if limit > 0 && int64(len(body)) > limit {
			return nil, parseErrf("chunked response exceeds limit")
		}
		resp.Body = body
		return resp, nil
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if err != nil || n < 0 {
			return nil, parseErrf("bad Content-Length %q", cl)
		}
		if limit > 0 && n > limit {
			return nil, parseErrf("response body of %d bytes exceeds limit", n)
		}
		resp.Body = make([]byte, n)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, parseErrf("short response body: %v", err)
		}
		return resp, nil
	}
	// HTTP/1.0 without Content-Length: body runs to EOF.
	var r io.Reader = br
	if limit > 0 {
		r = io.LimitReader(br, limit+1)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if limit > 0 && int64(len(body)) > limit {
		return nil, parseErrf("unbounded response exceeds limit")
	}
	resp.Body = body
	return resp, nil
}

// validProto clamps a protocol version to the two response lines this
// server emits; anything unrecognized downgrades to HTTP/1.0.
func validProto(proto string) string {
	if proto == "HTTP/1.1" {
		return proto
	}
	return "HTTP/1.0"
}

// WriteProtoResponseHeader writes the status line (under the given
// protocol version) and headers; the caller then streams the body.
func WriteProtoResponseHeader(w *bufio.Writer, proto string, code int, h Header) error {
	if h == nil {
		h = Header{}
	}
	if h.Get("Date") == "" {
		h.Set("Date", time.Now().UTC().Format(time.RFC1123))
	}
	if h.Get("Server") == "" {
		h.Set("Server", "SWEB/1.0 (NCSA-derived)")
	}
	if _, err := fmt.Fprintf(w, "%s %d %s\r\n", validProto(proto), code, StatusText(code)); err != nil {
		return err
	}
	if err := h.write(w); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

// WriteResponseHeader is WriteProtoResponseHeader pinned to HTTP/1.0, kept
// for the callers that never negotiate keep-alive (monitor, DNS admin).
func WriteResponseHeader(w *bufio.Writer, code int, h Header) error {
	return WriteProtoResponseHeader(w, "HTTP/1.0", code, h)
}

// WriteProtoSimpleResponse writes a complete small response (errors,
// redirects) under the given protocol version.
func WriteProtoSimpleResponse(w io.Writer, proto string, code int, h Header, body []byte) error {
	bw := bufio.NewWriter(w)
	if h == nil {
		h = Header{}
	}
	if h.Get("Content-Type") == "" {
		h.Set("Content-Type", "text/html")
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	if err := WriteProtoResponseHeader(bw, proto, code, h); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSimpleResponse is WriteProtoSimpleResponse pinned to HTTP/1.0.
func WriteSimpleResponse(w io.Writer, code int, h Header, body []byte) error {
	return WriteProtoSimpleResponse(w, "HTTP/1.0", code, h, body)
}

// ErrorBody renders the little HTML page NCSA httpd sends with an error.
func ErrorBody(code int, detail string) []byte {
	return []byte(fmt.Sprintf(
		"<HEAD><TITLE>%d %s</TITLE></HEAD>\n<BODY><H1>%d %s</H1>\n%s\n</BODY>\n",
		code, StatusText(code), code, StatusText(code), detail))
}

// readLine reads a CRLF- or LF-terminated line of at most max bytes. A
// clean close before any byte arrives surfaces as bare io.EOF (how a
// keep-alive loop sees the peer hang up between requests); a close after a
// partial line is a ParseError — the fragment is a truncated message, not
// a complete line.
func readLine(br *bufio.Reader, max int) (string, error) {
	chunk, err := br.ReadString('\n')
	if len(chunk) > max {
		return "", parseErrf("line exceeds %d bytes", max)
	}
	if err != nil {
		if err == io.EOF && len(chunk) == 0 {
			return "", io.EOF
		}
		if err == io.EOF {
			return "", parseErrf("connection closed mid-line after %d bytes", len(chunk))
		}
		return "", err
	}
	return strings.TrimRight(chunk, "\r\n"), nil
}

func readHeaders(br *bufio.Reader, h Header) error {
	total, count := 0, 0
	for {
		line, err := readLine(br, MaxRequestLine)
		if err != nil {
			return parseErrf("reading headers: %v", err)
		}
		if line == "" {
			return nil
		}
		total += len(line)
		count++
		if total > MaxHeaderBytes {
			return parseErrf("header block exceeds %d bytes", MaxHeaderBytes)
		}
		if count > MaxHeaderCount {
			return parseErrf("more than %d header fields", MaxHeaderCount)
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return parseErrf("malformed header line %q", line)
		}
		key := strings.TrimSpace(line[:colon])
		if key == "" || strings.ContainsAny(key, " \t") {
			return parseErrf("malformed header name %q", key)
		}
		h.Add(key, strings.TrimSpace(line[colon+1:]))
	}
}
