package httpmsg

import (
	"time"
)

// HTTP/1.0 date handling (RFC 1945 §3.3): servers emit RFC 1123 dates and
// must accept all three formats browsers of the era sent.
var httpDateLayouts = []string{
	time.RFC1123,                     // Sun, 06 Nov 1994 08:49:37 GMT
	"Monday, 02-Jan-06 15:04:05 MST", // RFC 850
	"Mon Jan  2 15:04:05 2006",       // ANSI C asctime()
}

// FormatHTTPDate renders t in the preferred RFC 1123 GMT form.
func FormatHTTPDate(t time.Time) string {
	return t.UTC().Format(time.RFC1123)
}

// ParseHTTPDate accepts any of the three HTTP/1.0 date formats.
func ParseHTTPDate(s string) (time.Time, error) {
	var lastErr error
	for _, layout := range httpDateLayouts {
		t, err := time.Parse(layout, s)
		if err == nil {
			return t, nil
		}
		lastErr = err
	}
	return time.Time{}, parseErrf("unparseable HTTP date %q: %v", s, lastErr)
}

// StatusNotModified is the conditional-GET answer (RFC 1945 §9.3).
const StatusNotModified = 304

// NotModified reports whether a document with modification time mod should
// answer 304 to a request carrying the given If-Modified-Since header value
// ("" means unconditional). Sub-second precision is dropped, as HTTP dates
// have none.
func NotModified(ifModifiedSince string, mod time.Time) bool {
	if ifModifiedSince == "" {
		return false
	}
	since, err := ParseHTTPDate(ifModifiedSince)
	if err != nil {
		return false // malformed condition: serve the full document
	}
	return !mod.Truncate(time.Second).After(since)
}
