package httpmsg

import (
	"strings"
)

// DecodePath percent-decodes a wire-form path (e.g. one lifted from a 302
// Location) and normalizes it, exactly as the server-side parser would.
func DecodePath(p string) (string, error) { return decodePath(p) }

// decodePath percent-decodes a request path and normalizes it, rejecting
// traversal outside the document root ("completes the pathname given,
// determining appropriate permissions along the way").
func decodePath(p string) (string, error) {
	decoded, err := unescape(p)
	if err != nil {
		return "", err
	}
	clean, ok := normalize(decoded)
	if !ok {
		return "", parseErrf("path %q escapes the document root", p)
	}
	return clean, nil
}

// unescape performs percent-decoding.
func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '%') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", parseErrf("truncated percent escape in %q", s)
		}
		hi, ok1 := unhex(s[i+1])
		lo, ok2 := unhex(s[i+2])
		if !ok1 || !ok2 {
			return "", parseErrf("bad percent escape in %q", s)
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// normalize resolves "." and ".." segments. It returns ok=false if the path
// would climb above the root, and always yields a path starting with "/".
func normalize(p string) (string, bool) {
	segs := strings.Split(p, "/")
	out := make([]string, 0, len(segs))
	for _, seg := range segs {
		switch seg {
		case "", ".":
			// Collapse duplicate slashes and self references.
		case "..":
			if len(out) == 0 {
				return "", false
			}
			out = out[:len(out)-1]
		default:
			if strings.ContainsRune(seg, '\x00') {
				return "", false
			}
			out = append(out, seg)
		}
	}
	clean := "/" + strings.Join(out, "/")
	if strings.HasSuffix(p, "/") && clean != "/" {
		clean += "/"
	}
	return clean, true
}

// EscapePath percent-encodes the bytes that cannot appear raw in a request
// target or Location header. Slashes are kept as separators.
func EscapePath(p string) string { return escapePath(p) }

// escapePath percent-encodes the bytes that cannot appear raw in a request
// target. Slashes are kept as separators.
func escapePath(p string) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	b.Grow(len(p))
	for i := 0; i < len(p); i++ {
		c := p[i]
		if shouldEscape(c) {
			b.WriteByte('%')
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xf])
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

func shouldEscape(c byte) bool {
	switch {
	case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		return false
	}
	switch c {
	case '/', '-', '_', '.', '~', '+', '&', '=', ':', '@', ',', ';', '$', '!', '*', '\'', '(', ')':
		return false
	}
	return true
}

// ContentTypeFor guesses a Content-Type from the path extension, covering
// the document types a 1996 digital library serves.
func ContentTypeFor(path string) string {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 {
		return "application/octet-stream"
	}
	switch strings.ToLower(path[dot+1:]) {
	case "html", "htm":
		return "text/html"
	case "txt":
		return "text/plain"
	case "gif":
		return "image/gif"
	case "jpg", "jpeg":
		return "image/jpeg"
	case "ps":
		return "application/postscript"
	case "pdf":
		return "application/pdf"
	case "img", "dat", "bin":
		return "application/octet-stream"
	default:
		return "application/octet-stream"
	}
}
