package httpmsg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxChunkLine bounds the "ffff;ext" chunk-size line.
const maxChunkLine = 256

// ChunkedWriter frames writes as HTTP/1.1 chunks on bw. Each Write emits
// one chunk; Close emits the zero-length terminator. The caller owns
// flushing bw.
type ChunkedWriter struct {
	bw *bufio.Writer
}

// NewChunkedWriter wraps bw in chunked transfer coding.
func NewChunkedWriter(bw *bufio.Writer) *ChunkedWriter { return &ChunkedWriter{bw: bw} }

// Write emits p as a single chunk. Zero-length writes are suppressed — a
// zero chunk would terminate the body early.
func (cw *ChunkedWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if _, err := fmt.Fprintf(cw.bw, "%x\r\n", len(p)); err != nil {
		return 0, err
	}
	if _, err := cw.bw.Write(p); err != nil {
		return 0, err
	}
	if _, err := cw.bw.WriteString("\r\n"); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close writes the last-chunk marker (no trailers). It does not flush.
func (cw *ChunkedWriter) Close() error {
	_, err := cw.bw.WriteString("0\r\n\r\n")
	return err
}

// chunkedReader decodes chunked transfer coding off br, consuming the
// terminating zero chunk (and any trailer lines) so the connection is left
// positioned at the next message.
type chunkedReader struct {
	br     *bufio.Reader
	remain int64 // unread bytes in the current chunk
	done   bool
	err    error
}

// NewChunkedReader returns a reader yielding the dechunked body. It
// reports io.EOF only after the zero-length terminator; a connection that
// dies mid-body surfaces as an error, never as a clean EOF.
func NewChunkedReader(br *bufio.Reader) io.Reader { return &chunkedReader{br: br} }

func (cr *chunkedReader) Read(p []byte) (int, error) {
	if cr.err != nil {
		return 0, cr.err
	}
	if cr.remain == 0 && !cr.done {
		if err := cr.nextChunk(); err != nil {
			cr.err = err
			return 0, err
		}
	}
	if cr.done {
		return 0, io.EOF
	}
	if int64(len(p)) > cr.remain {
		p = p[:cr.remain]
	}
	n, err := cr.br.Read(p)
	cr.remain -= int64(n)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if err == nil && cr.remain == 0 {
		err = cr.readCRLF()
	}
	if err != nil {
		cr.err = err
	}
	return n, err
}

// nextChunk parses the next chunk-size line; a zero size consumes the
// trailer section and marks the stream done.
func (cr *chunkedReader) nextChunk() error {
	line, err := readLine(cr.br, maxChunkLine)
	if err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i] // chunk extensions are ignored
	}
	size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
	if err != nil || size < 0 {
		return parseErrf("bad chunk size %q", line)
	}
	if size == 0 {
		for {
			l, err := readLine(cr.br, MaxRequestLine)
			if err != nil {
				if err == io.EOF {
					return io.ErrUnexpectedEOF
				}
				return err
			}
			if l == "" {
				break
			}
		}
		cr.done = true
		return nil
	}
	cr.remain = size
	return nil
}

// readCRLF consumes the CRLF that closes a chunk's data.
func (cr *chunkedReader) readCRLF() error {
	line, err := readLine(cr.br, 4)
	if err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if line != "" {
		return parseErrf("chunk data not followed by CRLF")
	}
	return nil
}
