package experiments

import (
	"fmt"

	"sweb/internal/analytic"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/workload"
)

// Table5Result is the client-side cost distribution for 1.5 MB fetches on a
// heavily loaded Meiko (paper Table 5).
type Table5Result struct {
	Preprocess float64
	Analysis   float64
	Redirect   float64 // mean over redirected requests only
	Transfer   float64
	Network    float64
	Total      float64 // mean total client time
	Redirects  int64
	Completed  int64
}

// Table5 instruments a 16 rps / 1.5 MB / 30 s SWEB run and reports the mean
// per-phase cost. Paper values: preprocessing 70 ms, analysis 1-4 ms,
// redirection 4 ms, data transfer 4.9 s, network 0.5 s, total 5.4 s.
func Table5(o Options) (Table5Result, *stats.Table) {
	const nodes = 6
	st, paths := uniformStore(nodes, fileCount(LargeFile), LargeFile)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Policy = simsrv.PolicySWEB
	burst := workload.Burst{RPS: 16, DurationSeconds: o.burstDur(), Jitter: true}
	res := mustRun(cfg, burst, workload.UniformPicker(paths), nil, o.Seed+300)

	out := Table5Result{
		Preprocess: res.Phases.Preprocess.Mean(),
		Analysis:   res.Phases.Analysis.Mean(),
		Transfer:   res.Phases.Transfer.Mean(),
		Network:    res.Phases.Network.Mean(),
		Total:      res.MeanResponse(),
		Redirects:  res.Redirects,
		Completed:  res.Completed,
	}
	// The redirect phase is zero for non-redirected requests; report the
	// conditional mean, like the paper's "4 msec if necessary".
	if res.Redirects > 0 && res.Phases.Redirect.N() > 0 {
		out.Redirect = res.Phases.Redirect.Mean() * float64(res.Phases.Redirect.N()) / float64(res.Redirects)
	}

	tbl := &stats.Table{
		Title:  "Table 5: Cost distribution in average response time (1.5M files, Meiko, 16 rps)",
		Header: []string{"activity", "mean time", "paper"},
		Caption: "Items marked SWEB are introduced by the scheduler; everything else is " +
			"standard httpd work. The SWEB overhead must be a negligible slice of the total.",
	}
	tbl.AddRowStrings("Preprocessing", stats.FormatSeconds(out.Preprocess), "70 ms")
	tbl.AddRowStrings("Req. Analysis (SWEB)", stats.FormatSeconds(out.Analysis), "1-4 ms")
	tbl.AddRowStrings("Redirection (SWEB)", stats.FormatSeconds(out.Redirect), "4 ms + travel")
	tbl.AddRowStrings("Data Transfer", stats.FormatSeconds(out.Transfer), "4.9 s")
	tbl.AddRowStrings("Network Costs", stats.FormatSeconds(out.Network), "0.5 s")
	tbl.AddRowStrings("Total Client Time", stats.FormatSeconds(out.Total), "5.4 s")
	return out, tbl
}

// OverheadResult is the server-side CPU accounting of Section 4.3.
type OverheadResult struct {
	// Shares maps activity -> fraction of total cluster CPU capacity.
	Shares map[string]float64
}

// Overhead reproduces the Section 4.3 report: at 16 rps of 1.5 MB files,
// "4.4% of CPU cycles are used for parsing the HTML commands, but less than
// 0.01% ... for collecting load information and making scheduling
// decisions. Approximately 0.2% of the available CPU is used for load
// monitoring."
func Overhead(o Options) (OverheadResult, *stats.Table) {
	const nodes = 6
	st, paths := uniformStore(nodes, fileCount(LargeFile), LargeFile)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Policy = simsrv.PolicySWEB
	burst := workload.Burst{RPS: 16, DurationSeconds: o.burstDur(), Jitter: true}
	res := mustRun(cfg, burst, workload.UniformPicker(paths), nil, o.Seed+400)

	out := OverheadResult{Shares: res.CPUShare}
	tbl := &stats.Table{
		Title:   "Section 4.3: Server-side CPU overhead by activity (1.5M, 16 rps, Meiko 6 nodes)",
		Header:  []string{"activity", "CPU share", "paper"},
		Caption: "Scheduling and load monitoring must remain a tiny fraction of request fulfillment.",
	}
	order := []struct{ key, label, paper string }{
		{"parse", "HTTP parsing (preprocess)", "4.4%"},
		{"schedule", "Scheduling decisions (SWEB)", "<0.01% decisions"},
		{"loadd", "Load monitoring (SWEB)", "~0.2%"},
		{"fulfill", "Request fulfillment", "(bulk)"},
		{"cgi", "CGI execution", "-"},
	}
	for _, row := range order {
		share := res.CPUShare[row.key]
		tbl.AddRowStrings(row.label, fmt.Sprintf("%.3f%%", share*100), row.paper)
	}
	return out, tbl
}

// AnalyticRow compares the Section 3.3 closed form with measurement.
type AnalyticRow struct {
	Label        string
	Predicted    float64
	MeasuredRPS  int
	HaveMeasured bool
}

// Analytic evaluates the Section 3.3 bound for the paper's example
// (r = 2.88/node, 17.3 rps for 6 nodes) and, unless Quick, compares it with
// the simulated sustained maximum for the same configuration.
func Analytic(o Options) ([]AnalyticRow, *stats.Table) {
	meiko := analytic.MeikoExample()
	now := analytic.NOWExample()
	rows := []AnalyticRow{
		{Label: "Meiko 6-node, 1.5M (paper: 17.3)", Predicted: meiko.MaxSustainedRPS()},
		{Label: "NOW 4-node, 1.5M", Predicted: now.MaxSustainedRPS()},
	}
	// Sweep the analytic bound across node counts (scalability shape).
	for _, p := range []int{1, 2, 4, 8, 12} {
		m := meiko
		m.P = p
		rows = append(rows, AnalyticRow{
			Label:     fmt.Sprintf("Meiko analytic, p=%d", p),
			Predicted: m.MaxSustainedRPS(),
		})
	}
	if !o.Quick {
		st, paths := uniformStore(6, fileCount(LargeFile), LargeFile)
		measured := maxRPSCell(func(rps int) (simsrv.Config, workload.Burst, workload.Picker) {
			cfg := simsrv.MeikoConfig(6, st)
			cfg.Policy = simsrv.PolicySWEB
			return cfg, workload.Burst{RPS: rps, DurationSeconds: o.sustainedDur(), Jitter: true},
				workload.UniformPicker(paths)
		}, 64, o.Seed+500)
		rows[0].MeasuredRPS = measured
		rows[0].HaveMeasured = true
	}

	tbl := &stats.Table{
		Title:   "Section 3.3: Analytical maximum sustained rps vs measurement",
		Header:  []string{"configuration", "analytic rps", "simulated rps"},
		Caption: "Paper: analysis gives 17.3 rps for 6 Meiko nodes; 16 rps was measured.",
	}
	for _, r := range rows {
		meas := "-"
		if r.HaveMeasured {
			meas = fmt.Sprintf("%d", r.MeasuredRPS)
		}
		tbl.AddRowStrings(r.Label, fmt.Sprintf("%.1f", r.Predicted), meas)
	}
	return rows, tbl
}
