package experiments

import (
	"fmt"

	"sweb/internal/des"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/workload"
)

// Table1Row is one cell of Table 1: the maximum requests/second a server
// configuration sustains before requests start to fail.
type Table1Row struct {
	Machine  string // "Meiko" or "NOW"
	Server   string // "Single server" or "SWEB"
	Nodes    int
	FileSize int64
	Duration int // seconds: 30 (burst) or 120 (sustained)
	MaxRPS   int
}

// Table1 reproduces "Maximum rps for a test duration of 30s and 120s on
// Meiko CS-2 and NOW": single server vs the multi-node SWEB, 1 KB and
// 1.5 MB files, short bursts vs sustained load.
func Table1(o Options) ([]Table1Row, *stats.Table) {
	var rows []Table1Row

	cell := func(machineName string, nodes int, size int64, duration int, seed int64) int {
		limit := 256
		if size >= LargeFile {
			limit = 96
		}
		if o.Quick && size < LargeFile {
			// Small-file searches probe high rps; quick mode halves the
			// ceiling. Large-file limits stay: the single-node drop
			// behaviour lives near the top of the range.
			limit /= 2
		}
		sustained := duration >= o.sustainedDur()
		return maxRPSCell(func(rps int) (simsrv.Config, workload.Burst, workload.Picker) {
			st, paths := uniformStore(nodes, fileCount(size), size)
			var cfg simsrv.Config
			if machineName == "Meiko" {
				cfg = simsrv.MeikoConfig(nodes, st)
			} else {
				cfg = simsrv.NOWConfig(nodes, st)
			}
			cfg.Policy = simsrv.PolicySWEB
			// The paper's own distinction: "requests coming in a short
			// period can be queued and processed gradually. But the
			// requests continuously generated in a long period cannot be
			// queued" — so burst tests fail only on refused connections,
			// while sustained tests also fail when responses blow past
			// the clients' patience.
			if sustained {
				cfg.ClientTimeout = 90 * des.Second
			} else {
				cfg.ClientTimeout = 3600 * des.Second
			}
			burst := workload.Burst{RPS: rps, DurationSeconds: duration, Jitter: true}
			return cfg, burst, workload.UniformPicker(paths)
		}, limit, seed)
	}

	machines := []struct {
		name       string
		swebNodes  int
		singleName string
	}{
		{"Meiko", 6, "Single server"},
		{"NOW", 4, "Single server"},
	}
	durations := []int{o.burstDur(), o.sustainedDur()}
	sizes := []int64{SmallFile, LargeFile}
	seed := o.Seed
	for _, m := range machines {
		for _, dur := range durations {
			for _, size := range sizes {
				seed++
				single := cell(m.name, 1, size, dur, seed)
				rows = append(rows, Table1Row{
					Machine: m.name, Server: "Single server", Nodes: 1,
					FileSize: size, Duration: dur, MaxRPS: single,
				})
				seed++
				multi := cell(m.name, m.swebNodes, size, dur, seed)
				rows = append(rows, Table1Row{
					Machine: m.name, Server: "SWEB", Nodes: m.swebNodes,
					FileSize: size, Duration: dur, MaxRPS: multi,
				})
			}
		}
	}

	tbl := &stats.Table{
		Title:  "Table 1: Maximum rps (burst vs sustained), Meiko CS-2 and NOW",
		Header: []string{"machine", "server", "file", "duration", "max rps"},
		Caption: "Paper anchors: single high-end workstation ~5-10 rps; SWEB Meiko " +
			"1.5M sustained 16 rps; NOW 1.5M burst 11 rps vs sustained 1 rps.",
	}
	for _, r := range rows {
		tbl.AddRowStrings(r.Machine, fmt.Sprintf("%s(%d)", r.Server, r.Nodes),
			sizeLabel(r.FileSize), fmt.Sprintf("%ds", r.Duration), fmt.Sprintf("%d", r.MaxRPS))
	}
	return rows, tbl
}

func sizeLabel(size int64) string {
	if size >= LargeFile {
		return "1.5M"
	}
	return "1K"
}
