package experiments

import (
	"fmt"

	"sweb/internal/des"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/workload"
)

// CurvePoint is one point of the scalability curve: mean response time and
// drop rate at a given offered load and cluster size.
type CurvePoint struct {
	Nodes        int
	RPS          int
	MeanResponse float64
	P95Response  float64
	DropRate     float64
}

// ScalabilityCurve sweeps the offered rate for 1-, 2-, 4-, and 6-node
// Meiko clusters at the 1.5 MB file size — the response-time-vs-load curve
// behind Tables 1 and 2. The knee of each curve should move right roughly
// in proportion to the node count, with the single-node knee near the
// NCSA-class limit.
func ScalabilityCurve(o Options) ([]CurvePoint, *stats.Table) {
	nodeCounts := []int{1, 2, 4, 6}
	rpsSweep := []int{2, 4, 8, 12, 16, 24}
	if o.Quick {
		nodeCounts = []int{1, 4}
		rpsSweep = []int{4, 12, 24}
	}
	var points []CurvePoint
	seed := o.Seed + 1500
	for _, nodes := range nodeCounts {
		for _, rps := range rpsSweep {
			seed++
			st, paths := uniformStore(nodes, fileCount(LargeFile), LargeFile)
			cfg := simsrv.MeikoConfig(nodes, st)
			cfg.Policy = simsrv.PolicySWEB
			cfg.ClientTimeout = 600 * des.Second
			burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
			res := mustRun(cfg, burst, workload.UniformPicker(paths), nil, seed)
			points = append(points, CurvePoint{
				Nodes: nodes, RPS: rps,
				MeanResponse: res.MeanResponse(),
				P95Response:  res.Response.Quantile(0.95),
				DropRate:     res.DropRate(),
			})
		}
	}
	tbl := &stats.Table{
		Title:  "Scalability curve: mean response vs offered rps, 1.5M files, SWEB",
		Header: []string{"nodes", "rps", "response", "p95", "drop rate"},
		Caption: "The knee of each curve moves right with the node count — the paper's " +
			"scalability definition (\"response time ... kept as small as theoretically " +
			"possible when the number of simultaneous HTTP requests increases\").",
	}
	for _, p := range points {
		tbl.AddRowStrings(fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%d", p.RPS),
			stats.FormatSeconds(p.MeanResponse), stats.FormatSeconds(p.P95Response),
			stats.FormatPercent(p.DropRate))
	}
	return points, tbl
}

// Throughput runs one loaded burst and renders the per-second completion
// series plus the response-time histogram — the "figure" views the paper's
// prose describes but never plots.
func Throughput(o Options) (*stats.TimeSeries, *stats.Table) {
	const nodes, rps = 6, 16
	st, paths := uniformStore(nodes, fileCount(LargeFile), LargeFile)
	cfg := simsrv.MeikoConfig(nodes, st)
	cfg.Policy = simsrv.PolicySWEB
	cfg.ClientTimeout = 600 * des.Second
	cfg.Seed = o.Seed + 1600
	cl, err := simsrv.New(cfg)
	if err != nil {
		panic(err)
	}
	burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
	arrivals, err := burst.Generate(workload.UniformPicker(paths), nil, newRand(o.Seed+1601))
	if err != nil {
		panic(err)
	}
	res := cl.RunSchedule(arrivals)

	// Reconstruct the completion time series from the response samples:
	// completion time = arrival second + response. Arrival seconds are
	// uniform by construction, so approximate with the response summary's
	// own samples spread over the burst.
	var series stats.TimeSeries
	for i, resp := range responseSamples(res) {
		at := float64(i%o.burstDur()) + resp
		series.Add(at, 1)
	}
	tbl := &stats.Table{
		Title:  "Throughput over time: completions/second, 16 rps, 1.5M, 6-node Meiko",
		Header: []string{"metric", "value"},
	}
	tbl.AddRowStrings("completions", fmt.Sprintf("%d", res.Completed))
	tbl.AddRowStrings("peak rps", fmt.Sprintf("%.0f", series.Peak()))
	tbl.AddRowStrings("mean rps", fmt.Sprintf("%.1f", series.Mean()))
	tbl.AddRowStrings("series", series.RenderSparkline())
	tbl.Caption = "Response-time distribution:\n" + stats.RenderHistogram(&res.Response, 12, "s")
	return &series, tbl
}

// responseSamples extracts the raw per-request response times in
// completion-record order.
func responseSamples(res *stats.RunResult) []float64 {
	return res.Response.Values()
}
