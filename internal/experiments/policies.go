package experiments

import (
	"fmt"

	"sweb/internal/des"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// PolicyRow is one cell of a policy-comparison experiment (Tables 3, 4 and
// the skewed test).
type PolicyRow struct {
	Policy       string
	RPS          int
	MeanResponse float64
	DropRate     float64
	Redirects    int64
	Imbalance    float64 // coefficient of variation of per-node served counts
}

var comparedPolicies = []struct {
	key   string
	label string
}{
	{simsrv.PolicyRoundRobin, "Round Robin"},
	{simsrv.PolicyFileLocality, "File Locality"},
	{simsrv.PolicySWEB, "SWEB"},
}

// Table3 reproduces "Performance under non-uniform requests" on the Meiko:
// file sizes from ~100 bytes to ~1.5 MB, so the DNS rotation spreads request
// counts evenly but byte-load unevenly; at >=20 rps SWEB should beat round
// robin and file locality by roughly 15-60%.
func Table3(o Options) ([]PolicyRow, *stats.Table) {
	const nodes = 6
	rpsSweep := []int{8, 16, 20, 24}
	if o.Quick {
		rpsSweep = []int{16, 24}
	}
	dur := o.burstDur()
	var rows []PolicyRow
	seed := o.Seed
	for _, rps := range rpsSweep {
		for _, pol := range comparedPolicies {
			seed++
			st, pick := adlStore(nodes, o.Seed+7)
			cfg := simsrv.MeikoConfig(nodes, st)
			cfg.Policy = pol.key
			cfg.ClientTimeout = 600 * des.Second
			burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
			res := mustRun(cfg, burst, pick, nil, seed)
			rows = append(rows, PolicyRow{
				Policy: pol.label, RPS: rps,
				MeanResponse: res.MeanResponse(), DropRate: res.DropRate(),
				Redirects: res.Redirects, Imbalance: imbalance(res.PerNodeServed),
			})
		}
	}
	tbl := policyTable(rows,
		"Table 3: Non-uniform file sizes (100B-1.5MB), Meiko CS-2, 6 nodes, 30s bursts",
		"Paper anchor: under heavy load (rps >= 20) SWEB leads round robin and file locality by 15-60%.")
	return rows, tbl
}

// Table4 reproduces "Performance under uniform requests on NOW": 1.5 MB
// files over the shared Ethernet, where exploiting file locality avoids the
// expensive NFS bus crossings.
func Table4(o Options) ([]PolicyRow, *stats.Table) {
	const nodes = 4
	rpsSweep := []int{2, 4, 6}
	if o.Quick {
		rpsSweep = []int{2, 4}
	}
	dur := o.burstDur()
	var rows []PolicyRow
	seed := o.Seed + 100
	for _, rps := range rpsSweep {
		for _, pol := range comparedPolicies {
			seed++
			st, paths := uniformStore(nodes, 16, LargeFile)
			cfg := simsrv.NOWConfig(nodes, st)
			cfg.Policy = pol.key
			cfg.ClientTimeout = 600 * des.Second
			burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
			res := mustRun(cfg, burst, workload.UniformPicker(paths), nil, seed)
			rows = append(rows, PolicyRow{
				Policy: pol.label, RPS: rps,
				MeanResponse: res.MeanResponse(), DropRate: res.DropRate(),
				Redirects: res.Redirects, Imbalance: imbalance(res.PerNodeServed),
			})
		}
	}
	tbl := policyTable(rows,
		"Table 4: Uniform 1.5MB files, NOW (shared Ethernet), 4 nodes, 30s bursts",
		"Paper anchor: file locality and SWEB beat round robin on the slow bus-type Ethernet.")
	return rows, tbl
}

// Skewed reproduces the Section 4.2 pathology test: "each client accessed
// the same file located on a single server, effectively reducing the
// parallel system to a single server" under file locality. Six servers,
// 8 rps, 45 seconds, 1.5 MB; the paper measured round robin at 3.7 s and
// file locality at 81.4 s.
func Skewed(o Options) ([]PolicyRow, *stats.Table) {
	const nodes = 6
	const rps = 8
	dur := o.skewDur()
	var rows []PolicyRow
	seed := o.Seed + 200
	for _, pol := range comparedPolicies {
		seed++
		st := storage.NewStore(nodes)
		hot := storage.SkewedSet(st, LargeFile)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = pol.key
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		res := mustRun(cfg, burst, workload.SinglePicker(hot), nil, seed)
		rows = append(rows, PolicyRow{
			Policy: pol.label, RPS: rps,
			MeanResponse: res.MeanResponse(), DropRate: res.DropRate(),
			Redirects: res.Redirects, Imbalance: imbalance(res.PerNodeServed),
		})
	}
	tbl := policyTable(rows,
		"Skewed hot-file test: 6 servers, 8 rps, 45s, one 1.5MB file on node 0",
		"Paper anchor: round robin 3.7s vs file locality 81.4s; SWEB must track round robin.")
	return rows, tbl
}

func policyTable(rows []PolicyRow, title, caption string) *stats.Table {
	tbl := &stats.Table{
		Title:   title,
		Header:  []string{"rps", "policy", "response", "drop rate", "redirects", "imbalance"},
		Caption: caption,
	}
	for _, r := range rows {
		tbl.AddRowStrings(fmt.Sprintf("%d", r.RPS), r.Policy,
			stats.FormatSeconds(r.MeanResponse), stats.FormatPercent(r.DropRate),
			fmt.Sprintf("%d", r.Redirects), fmt.Sprintf("%.2f", r.Imbalance))
	}
	return tbl
}
