// Package experiments regenerates every table and figure from the paper's
// evaluation (Section 4) on the simulated substrate, plus the ablation
// studies for the design choices Section 3 calls out. Each experiment
// returns structured rows for tests and EXPERIMENTS.md alongside a rendered
// paper-style text table.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// Options scale the experiments. Quick mode shrinks the sustained-test
// duration and the max-rps search limits so the full suite fits in a
// benchmark iteration; the 30s/45s burst experiments always run at the
// paper's full length.
type Options struct {
	// Quick shortens the sustained tests (120s→40s) and lowers the rps
	// search limits.
	Quick bool
	// Seed drives all randomness.
	Seed int64
}

// burstDur is always the paper's 30 seconds: the burst experiments are
// cheap, and the drop dynamics (accept-capacity overflow on a single node)
// only appear at full length.
func (o Options) burstDur() int { return 30 }

func (o Options) sustainedDur() int {
	if o.Quick {
		// Long enough that "cannot be queued without actively processing"
		// still binds on the bus-bound NOW cells.
		return 60
	}
	return 120
}

// skewDur is always the paper's 45 seconds (see burstDur).
func (o Options) skewDur() int { return 45 }

// Standard file sizes from the paper.
const (
	SmallFile = 1 << 10    // "1K"
	LargeFile = 1536 << 10 // "1.5M"
)

// uniformStore builds a round-robin-placed corpus of count equal files.
func uniformStore(nodes, count int, size int64) (*storage.Store, []string) {
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, count, size)
	return st, paths
}

// nonUniformStore builds the Table 3 corpus: "sizes varying from short,
// approximately 100 bytes, to relatively long, approximately 1.5MB", laid
// out collection-per-disk the way the Alexandria library stores its maps
// and images, so byte ownership is grossly uneven.
func nonUniformStore(nodes, count int, seed int64) (*storage.Store, []string) {
	st := storage.NewStore(nodes)
	rng := rand.New(rand.NewSource(seed))
	paths := storage.CollectionSet(st, count/nodes, 100, LargeFile, rng)
	return st, paths
}

// adlStore builds the Table 3 document layout the way the Alexandria
// library stores its data: metadata pages on nodes 0-1, browse thumbnails
// on nodes 2-3, and full-resolution scenes on nodes 4-5. Returns the path
// groups plus a request picker weighted toward the large scenes (the
// caption's "1.5MB file size" workload with sizes down to ~100 bytes).
func adlStore(nodes int, seed int64) (*storage.Store, workload.Picker) {
	st := storage.NewStore(nodes)
	rng := rand.New(rand.NewSource(seed))
	var meta, browse, full []string
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/adl/meta/m%04d.html", i)
		st.MustAdd(storage.File{Path: p, Size: 100 + int64(rng.Intn(4<<10)), Owner: i % 2})
		meta = append(meta, p)
	}
	for i := 0; i < 80; i++ {
		p := fmt.Sprintf("/adl/browse/b%04d.gif", i)
		st.MustAdd(storage.File{Path: p, Size: 200<<10 + int64(rng.Intn(200<<10)), Owner: 2 + i%2})
		browse = append(browse, p)
	}
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("/adl/full/f%04d.img", i)
		st.MustAdd(storage.File{Path: p, Size: 1200<<10 + int64(rng.Intn(336<<10)), Owner: 4 + i%2})
		full = append(full, p)
	}
	pick, err := workload.WeightedPicker([][]string{meta, browse, full}, []float64{0.15, 0.25, 0.60})
	if err != nil {
		panic(err)
	}
	return st, pick
}

// runOnce builds a fresh cluster for cfg, generates the burst, and runs it
// to completion.
func runOnce(cfg simsrv.Config, burst workload.Burst, pick workload.Picker, domains *workload.DomainPool, seed int64) (*stats.RunResult, error) {
	cfg.Seed = seed
	cl, err := simsrv.New(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	arrivals, err := burst.Generate(pick, domains, rng)
	if err != nil {
		return nil, err
	}
	return cl.RunSchedule(arrivals), nil
}

// mustRun is runOnce for experiment code whose configs are known-valid.
func mustRun(cfg simsrv.Config, burst workload.Burst, pick workload.Picker, domains *workload.DomainPool, seed int64) *stats.RunResult {
	res, err := runOnce(cfg, burst, pick, domains, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// maxRPSCell performs the Table 1 search for one configuration cell.
func maxRPSCell(mk func(rps int) (simsrv.Config, workload.Burst, workload.Picker), limit int, seed int64) int {
	return stats.MaxRPS(limit, 0.01, func(rps int) float64 {
		cfg, burst, pick := mk(rps)
		return mustRun(cfg, burst, pick, nil, seed).DropRate()
	})
}

// imbalance returns the coefficient of variation of per-node served counts:
// 0 for a perfectly even spread.
func imbalance(served []int64) float64 {
	if len(served) == 0 {
		return 0
	}
	var sum float64
	for _, s := range served {
		sum += float64(s)
	}
	mean := sum / float64(len(served))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, s := range served {
		d := float64(s) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(served))) / mean
}

// fileCount picks corpus sizes: enough files that DNS rotation and placement
// interact, few enough that per-node working sets resemble the paper's test
// document sets.
func fileCount(size int64) int {
	if size >= LargeFile {
		return 12
	}
	return 600
}

// newRand builds a deterministic PRNG for one experiment leg.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
