package experiments

import (
	"strings"
	"testing"
)

// These tests run the quick-mode experiment harnesses and assert the
// paper's qualitative results — the shapes EXPERIMENTS.md documents.

var quick = Options{Quick: true, Seed: 1}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 searches are slow")
	}
	rows, tbl := Table1(quick)
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	if tbl.Rows() != 16 {
		t.Fatal("table rows mismatch")
	}
	get := func(machine, server string, size int64, dur int) int {
		for _, r := range rows {
			if r.Machine == machine && r.Server == server && r.FileSize == size && r.Duration == dur {
				return r.MaxRPS
			}
		}
		t.Fatalf("missing cell %s/%s/%d/%d", machine, server, size, dur)
		return 0
	}
	burst, sustained := quick.burstDur(), quick.sustainedDur()
	// The multi-node server beats the single server everywhere except the
	// bus-bound NOW sustained 1.5M cell, where the shared Ethernet caps
	// both at ~1 rps (the paper's own "maximum disk and Ethernet
	// bandwidth limit is reached").
	for _, machine := range []string{"Meiko", "NOW"} {
		for _, size := range []int64{SmallFile, LargeFile} {
			for _, dur := range []int{burst, sustained} {
				single, multi := get(machine, "Single server", size, dur), get(machine, "SWEB", size, dur)
				busBound := machine == "NOW" && size == LargeFile && dur == sustained
				if busBound {
					if multi < single {
						t.Errorf("NOW sustained 1.5M: SWEB %d below single %d", multi, single)
					}
					continue
				}
				if multi <= single {
					t.Errorf("%s %s %ds: SWEB (%d) did not beat single server (%d)",
						machine, sizeLabel(size), dur, multi, single)
				}
			}
		}
	}
	// Bursts queue, so the burst max is at least the sustained max.
	if get("Meiko", "SWEB", LargeFile, burst) < get("Meiko", "SWEB", LargeFile, sustained) {
		t.Error("Meiko burst max below sustained max")
	}
	// The NOW's shared Ethernet collapses sustained 1.5M throughput.
	if now := get("NOW", "SWEB", LargeFile, sustained); now > 4 {
		t.Errorf("NOW sustained 1.5M = %d, paper says ~1", now)
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, tbl := Table2(quick)
	if len(rows) != 20 || tbl.Rows() != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(machine string, size int64, nodes int) Table2Row {
		for _, r := range rows {
			if r.Machine == machine && r.FileSize == size && r.Nodes == nodes {
				return r
			}
		}
		t.Fatalf("missing %s/%d/%d", machine, size, nodes)
		return Table2Row{}
	}
	// 1K: response roughly flat for 2+ nodes, no drops.
	for n := 2; n <= 6; n++ {
		r := get("Meiko", SmallFile, n)
		if r.DropRate > 0 {
			t.Errorf("Meiko 1K %d nodes dropped %.1f%%", n, r.DropRate*100)
		}
	}
	// 1.5M: single node melts (the paper's 37.3%-drop row), six nodes don't.
	single := get("Meiko", LargeFile, 1)
	six := get("Meiko", LargeFile, 6)
	if single.DropRate < 0.1 {
		t.Errorf("single Meiko node at 16rps/1.5M dropped only %.1f%%", single.DropRate*100)
	}
	if six.DropRate > 0.01 {
		t.Errorf("six Meiko nodes dropped %.1f%%", six.DropRate*100)
	}
	if six.MeanResponse >= single.MeanResponse {
		t.Error("adding nodes did not reduce 1.5M response time")
	}
	// NOW 1.5M: more nodes -> fewer refusals (paper: 20.5% at 2, 0% at 3-4).
	if get("NOW", LargeFile, 4).DropRate > get("NOW", LargeFile, 1).DropRate {
		t.Error("NOW drops grew with nodes")
	}
}

func TestTable3Shapes(t *testing.T) {
	rows, _ := Table3(quick)
	byPolicy := func(rps int) map[string]float64 {
		out := map[string]float64{}
		for _, r := range rows {
			if r.RPS == rps {
				out[r.Policy] = r.MeanResponse
			}
		}
		return out
	}
	heavy := byPolicy(24)
	if len(heavy) != 3 {
		t.Fatalf("policies at 24 rps: %v", heavy)
	}
	// Paper: at heavy load SWEB leads round robin by 15-60%.
	if heavy["SWEB"] >= heavy["Round Robin"] {
		t.Errorf("SWEB %.2fs did not beat RR %.2fs under heavy non-uniform load",
			heavy["SWEB"], heavy["Round Robin"])
	}
	// Drop-free runs (paper reports 0% drop rate for this table).
	for _, r := range rows {
		if r.DropRate > 0.02 {
			t.Errorf("%s at %d rps dropped %.1f%%", r.Policy, r.RPS, r.DropRate*100)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	rows, _ := Table4(quick)
	for _, rps := range []int{2, 4} {
		var rr, fl float64
		for _, r := range rows {
			if r.RPS != rps {
				continue
			}
			switch r.Policy {
			case "Round Robin":
				rr = r.MeanResponse
			case "File Locality":
				fl = r.MeanResponse
			}
		}
		// Paper: on the bus-type Ethernet, exploiting file locality wins.
		if fl >= rr {
			t.Errorf("at %d rps on the NOW, FL %.1fs did not beat RR %.1fs", rps, fl, rr)
		}
	}
}

func TestSkewedShapes(t *testing.T) {
	rows, _ := Skewed(quick)
	var rr, fl, sweb PolicyRow
	for _, r := range rows {
		switch r.Policy {
		case "Round Robin":
			rr = r
		case "File Locality":
			fl = r
		case "SWEB":
			sweb = r
		}
	}
	// Paper: "round-robin handily outperforms file locality, 3.7s vs 81.4s".
	if fl.MeanResponse < 5*rr.MeanResponse {
		t.Errorf("FL %.1fs vs RR %.1fs: collapse factor too small", fl.MeanResponse, rr.MeanResponse)
	}
	if sweb.MeanResponse > 3*rr.MeanResponse {
		t.Errorf("SWEB %.1fs did not track RR %.1fs", sweb.MeanResponse, rr.MeanResponse)
	}
	if fl.Imbalance < 1 {
		t.Errorf("FL imbalance %.2f: everything should pile on node 0", fl.Imbalance)
	}
}

func TestTable5Shapes(t *testing.T) {
	res, tbl := Table5(quick)
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	// The SWEB-introduced costs are a negligible slice of the total.
	overhead := res.Analysis + res.Redirect
	if overhead > 0.05*res.Total {
		t.Errorf("scheduling overhead %.3fs vs total %.3fs", overhead, res.Total)
	}
	// Data transfer dominates for 1.5 MB fetches.
	if res.Transfer < 0.5*res.Total {
		t.Errorf("transfer %.2fs not dominant in %.2fs", res.Transfer, res.Total)
	}
	if !strings.Contains(tbl.String(), "Preprocessing") {
		t.Fatal("table missing rows")
	}
}

func TestOverheadShapes(t *testing.T) {
	res, _ := Overhead(quick)
	sched, loadd := res.Shares["schedule"], res.Shares["loadd"]
	if sched <= 0 || loadd <= 0 {
		t.Fatalf("missing shares: %v", res.Shares)
	}
	// Paper's headline: the scheduling machinery is a tiny CPU fraction.
	if sched > 0.03 || loadd > 0.02 {
		t.Errorf("overhead too large: schedule=%.3f%% loadd=%.3f%%", sched*100, loadd*100)
	}
	if res.Shares["parse"] < sched {
		t.Error("parsing should dwarf scheduling")
	}
}

func TestAnalyticShapes(t *testing.T) {
	rows, _ := Analytic(quick)
	if rows[0].Predicted < 17 || rows[0].Predicted > 17.6 {
		t.Fatalf("Meiko analytic = %.1f, paper says 17.3", rows[0].Predicted)
	}
	// The sweep rows grow with p.
	var prev float64
	for _, r := range rows[2:] {
		if r.Predicted <= prev {
			t.Fatalf("analytic sweep not increasing: %+v", rows)
		}
		prev = r.Predicted
	}
}

func TestAblationDeltaShapes(t *testing.T) {
	rows, _ := AblationDelta(quick)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The bump must not hurt; typically it helps under stale info.
	if rows[0].MeanResponse > 1.3*rows[1].MeanResponse {
		t.Errorf("delta=30%% (%.2fs) much worse than delta=0 (%.2fs)",
			rows[0].MeanResponse, rows[1].MeanResponse)
	}
}

func TestAblationDNSCacheShapes(t *testing.T) {
	rows, _ := AblationDNSCache(quick)
	var pureRR, cachedRR, cachedSWEB AblationRow
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.Variant, "no caching"):
			pureRR = r
		case strings.HasSuffix(r.Variant, "RR"):
			cachedRR = r
		default:
			cachedSWEB = r
		}
	}
	if cachedRR.MeanResponse <= pureRR.MeanResponse {
		t.Error("DNS caching should hurt plain round robin")
	}
	if cachedSWEB.MeanResponse >= cachedRR.MeanResponse {
		t.Error("SWEB should absorb the DNS-cache skew")
	}
	if cachedSWEB.Imbalance >= cachedRR.Imbalance {
		t.Error("SWEB should spread the funneled load")
	}
}

func TestAblationFacetsShapes(t *testing.T) {
	rows, _ := AblationFacets(quick)
	var multi, cpuOnly float64
	for _, r := range rows {
		switch r.Variant {
		case "multi-faceted (SWEB)":
			multi = r.MeanResponse
		case "single-faceted (CPU-only)":
			cpuOnly = r.MeanResponse
		}
	}
	if multi >= cpuOnly {
		t.Errorf("multi-faceted %.2fs did not beat CPU-only %.2fs", multi, cpuOnly)
	}
}

func TestAblationPingPongShapes(t *testing.T) {
	rows, _ := AblationPingPong(quick)
	var one, zero float64
	for _, r := range rows {
		switch r.Variant {
		case "max redirects=1":
			one = r.MeanResponse
		case "max redirects=0":
			zero = r.MeanResponse
		}
	}
	if one >= zero {
		t.Errorf("re-scheduling (%.2fs) did not beat no-redirects (%.2fs)", one, zero)
	}
}

func TestHeterogeneousShapes(t *testing.T) {
	rows, _ := Heterogeneous(quick)
	var rr, sweb AblationRow
	for _, r := range rows {
		if r.Variant == "Round Robin" {
			rr = r
		} else {
			sweb = r
		}
	}
	if sweb.MeanResponse >= rr.MeanResponse {
		t.Errorf("SWEB %.2fs did not beat RR %.2fs under churn+heterogeneity",
			sweb.MeanResponse, rr.MeanResponse)
	}
	if sweb.Redirects == 0 {
		t.Error("SWEB never re-scheduled")
	}
}

func TestImbalanceHelper(t *testing.T) {
	if imbalance(nil) != 0 {
		t.Fatal("nil")
	}
	if imbalance([]int64{5, 5, 5}) != 0 {
		t.Fatal("even spread should be 0")
	}
	if imbalance([]int64{0, 0, 0}) != 0 {
		t.Fatal("all-zero should be 0")
	}
	if imbalance([]int64{30, 0, 0}) < 1 {
		t.Fatal("total skew should exceed 1")
	}
}
