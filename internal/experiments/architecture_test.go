package experiments

import (
	"strings"
	"testing"
)

func TestForwardingShapes(t *testing.T) {
	rows, tbl := Forwarding(quick)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var redirect, forward AblationRow
	for _, r := range rows {
		if strings.HasSuffix(r.Variant, "redirect") {
			redirect = r
		} else {
			forward = r
		}
	}
	// Both mechanisms must serve everything; they reassign comparably.
	if redirect.DropRate > 0.02 || forward.DropRate > 0.02 {
		t.Fatalf("drops: redirect %.1f%% forward %.1f%%",
			redirect.DropRate*100, forward.DropRate*100)
	}
	if redirect.Redirects == 0 || forward.Redirects == 0 {
		t.Fatal("a mechanism never reassigned")
	}
	// Neither collapses: both stay within 2x of the other.
	if forward.MeanResponse > 2*redirect.MeanResponse ||
		redirect.MeanResponse > 2*forward.MeanResponse {
		t.Fatalf("mechanisms diverged: redirect %.2fs forward %.2fs",
			redirect.MeanResponse, forward.MeanResponse)
	}
	if !strings.Contains(tbl.String(), "forward") {
		t.Fatal("table missing rows")
	}
}

func TestCentralizedShapes(t *testing.T) {
	rows, _ := Centralized(quick)
	get := func(arch string, rps int) CentralRow {
		for _, r := range rows {
			if r.Arch == arch && r.RPS == rps {
				return r
			}
		}
		t.Fatalf("missing %s/%d", arch, rps)
		return CentralRow{}
	}
	loRPS, hiRPS := 16, 32
	// At high load the dispatcher is the bottleneck.
	distHi, centHi := get("distributed", hiRPS), get("centralized", hiRPS)
	if centHi.MeanResponse <= distHi.MeanResponse {
		t.Fatalf("central dispatcher did not bottleneck: %.2fs vs %.2fs",
			centHi.MeanResponse, distHi.MeanResponse)
	}
	// The dispatcher's CPU climbs with load.
	centLo := get("centralized", loRPS)
	if centHi.DispatcherBusy <= centLo.DispatcherBusy {
		t.Fatalf("dispatcher busy did not grow: %.2f -> %.2f",
			centLo.DispatcherBusy, centHi.DispatcherBusy)
	}
}

func TestCentralSPOFShapes(t *testing.T) {
	rows, _ := CentralSPOF(quick)
	var dist, cent CentralRow
	for _, r := range rows {
		if strings.HasPrefix(r.Arch, "distributed") {
			dist = r
		} else {
			cent = r
		}
	}
	// Distributed loses roughly the dead node's DNS share (~1/6 of the
	// remaining traffic); the centralized service loses everything after
	// the dispatcher dies (~2/3 of the run).
	if dist.DropRate > 0.25 {
		t.Fatalf("distributed drop rate %.1f%%", dist.DropRate*100)
	}
	if cent.DropRate < 2*dist.DropRate {
		t.Fatalf("SPOF not visible: centralized %.1f%% vs distributed %.1f%%",
			cent.DropRate*100, dist.DropRate*100)
	}
}

func TestGossipLossShapes(t *testing.T) {
	rows, _ := GossipLoss(quick)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DropRate > 0.02 {
			t.Fatalf("%s dropped %.1f%%: gossip loss must not drop requests",
				r.Variant, r.DropRate*100)
		}
	}
	// Heavy loss degrades gracefully: within 2x of lossless.
	if rows[2].MeanResponse > 2*rows[0].MeanResponse {
		t.Fatalf("70%% loss degraded response %.2fs vs %.2fs",
			rows[2].MeanResponse, rows[0].MeanResponse)
	}
}

func TestScalabilityCurveShapes(t *testing.T) {
	points, _ := ScalabilityCurve(quick)
	get := func(nodes, rps int) CurvePoint {
		for _, p := range points {
			if p.Nodes == nodes && p.RPS == rps {
				return p
			}
		}
		t.Fatalf("missing %d/%d", nodes, rps)
		return CurvePoint{}
	}
	// Response is non-decreasing in offered load for a fixed size...
	if get(1, 4).MeanResponse > get(1, 24).MeanResponse {
		t.Fatal("single-node curve not increasing")
	}
	// ...and the big cluster is far better at the heavy point.
	if get(4, 24).MeanResponse >= get(1, 24).MeanResponse {
		t.Fatal("scaling does not move the knee")
	}
}

func TestThroughputSeries(t *testing.T) {
	series, tbl := Throughput(quick)
	if series.Len() == 0 {
		t.Fatal("empty series")
	}
	var total float64
	for _, b := range series.Buckets() {
		total += b
	}
	if total < 400 { // 16 rps * 30s minus drops
		t.Fatalf("series total = %v", total)
	}
	out := tbl.String()
	if !strings.Contains(out, "completions") || !strings.Contains(out, "#") {
		t.Fatalf("throughput table incomplete:\n%s", out)
	}
}

func TestCoopCacheShapes(t *testing.T) {
	rows, _ := CoopCache(quick)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.DropRate > 0.02 || on.DropRate > 0.02 {
		t.Fatal("drops in coop-cache runs")
	}
	// The digest must help on the Zipf workload.
	if on.MeanResponse >= off.MeanResponse {
		t.Fatalf("hints did not help: on %.2fs vs off %.2fs", on.MeanResponse, off.MeanResponse)
	}
}

func TestEastCoastShapes(t *testing.T) {
	rows, _ := EastCoast(quick)
	var rr, fl float64
	for _, r := range rows {
		switch r.Policy {
		case "Round Robin":
			rr = r.MeanResponse
		case "File Locality":
			fl = r.MeanResponse
		}
	}
	// Paper: >10% gain for locality even with east-coast clients.
	if fl >= rr*0.9 {
		t.Fatalf("locality gain missing: FL %.2fs vs RR %.2fs", fl, rr)
	}
}
