package experiments

import (
	"fmt"

	"sweb/internal/des"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/workload"
)

// Table2Row is one cell of Table 2: response time and drop rate at a fixed
// offered load as the node count grows.
type Table2Row struct {
	Machine      string
	Nodes        int
	FileSize     int64
	RPS          int
	MeanResponse float64
	DropRate     float64
	Redirects    int64
}

// Table2 reproduces "Performance in terms of response times and drop
// rates": Meiko 1-6 nodes at 16 rps (1 KB and 1.5 MB files), NOW 1-4 nodes
// at 16 rps (1 KB) and 8 rps (1.5 MB), 30-second bursts.
func Table2(o Options) ([]Table2Row, *stats.Table) {
	var rows []Table2Row
	dur := o.burstDur()
	seed := o.Seed

	run := func(machine string, nodes int, size int64, rps int) {
		seed++
		st, paths := uniformStore(nodes, fileCount(size), size)
		var cfg simsrv.Config
		if machine == "Meiko" {
			cfg = simsrv.MeikoConfig(nodes, st)
		} else {
			cfg = simsrv.NOWConfig(nodes, st)
		}
		cfg.Policy = simsrv.PolicySWEB
		// Table 2 clients report true response times (the paper prints
		// ">120" rather than failing); only refused connections drop.
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		res := mustRun(cfg, burst, workload.UniformPicker(paths), nil, seed)
		rows = append(rows, Table2Row{
			Machine: machine, Nodes: nodes, FileSize: size, RPS: rps,
			MeanResponse: res.MeanResponse(), DropRate: res.DropRate(),
			Redirects: res.Redirects,
		})
	}

	for nodes := 1; nodes <= 6; nodes++ {
		run("Meiko", nodes, SmallFile, 16)
	}
	for nodes := 1; nodes <= 6; nodes++ {
		run("Meiko", nodes, LargeFile, 16)
	}
	for nodes := 1; nodes <= 4; nodes++ {
		run("NOW", nodes, SmallFile, 16)
	}
	for nodes := 1; nodes <= 4; nodes++ {
		run("NOW", nodes, LargeFile, 8)
	}

	tbl := &stats.Table{
		Title:  "Table 2: Response time and drop rate vs number of server nodes (30s bursts)",
		Header: []string{"machine", "file", "rps", "nodes", "response", "drop rate"},
		Caption: "Paper anchors: 1K response flat for 2+ nodes; Meiko 1.5M single node " +
			">120s and 37.3% drops, 6 nodes 0%; NOW 1.5M single server timed out, " +
			"2 nodes 20.5%, 3-4 nodes 0%.",
	}
	for _, r := range rows {
		tbl.AddRowStrings(r.Machine, sizeLabel(r.FileSize), fmt.Sprintf("%d", r.RPS),
			fmt.Sprintf("%d", r.Nodes), stats.FormatSeconds(r.MeanResponse),
			stats.FormatPercent(r.DropRate))
	}
	return rows, tbl
}
