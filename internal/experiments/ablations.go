package experiments

import (
	"fmt"

	"sweb/internal/core"
	"sweb/internal/des"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// AblationRow is one variant of a design-choice ablation.
type AblationRow struct {
	Variant      string
	MeanResponse float64
	P95Response  float64
	DropRate     float64
	Redirects    int64
	Imbalance    float64
}

func ablationTable(title, caption string, rows []AblationRow) *stats.Table {
	tbl := &stats.Table{
		Title:   title,
		Header:  []string{"variant", "response", "p95", "drop rate", "redirects", "imbalance"},
		Caption: caption,
	}
	for _, r := range rows {
		tbl.AddRowStrings(r.Variant, stats.FormatSeconds(r.MeanResponse),
			stats.FormatSeconds(r.P95Response), stats.FormatPercent(r.DropRate),
			fmt.Sprintf("%d", r.Redirects), fmt.Sprintf("%.2f", r.Imbalance))
	}
	return tbl
}

func rowFrom(variant string, res *stats.RunResult) AblationRow {
	return AblationRow{
		Variant:      variant,
		MeanResponse: res.MeanResponse(),
		P95Response:  res.Response.Quantile(0.95),
		DropRate:     res.DropRate(),
		Redirects:    res.Redirects,
		Imbalance:    imbalance(res.PerNodeServed),
	}
}

// AblationDelta toggles the Δ=30% anti-herd bump (Sec. 3.2: "To avoid this
// unsynchronized overloading, we conservatively increase the CPU load of px
// by Δ"). Without it, every broker chases the same stale "lightly loaded"
// peer between broadcasts.
func AblationDelta(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 20
	var rows []AblationRow
	for _, delta := range []float64{0.30, 0} {
		st, pick := adlStore(nodes, o.Seed+17)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = simsrv.PolicySWEB
		cfg.Params = core.DefaultParams()
		cfg.Params.Delta = delta
		cfg.HaveParams = true
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, pick, nil, o.Seed+601)
		rows = append(rows, rowFrom(fmt.Sprintf("delta=%.0f%%", delta*100), res))
	}
	return rows, ablationTable(
		"Ablation A1: anti-herd bump (delta) on vs off, non-uniform load, 20 rps",
		"Without delta, redirects dogpile whichever node last broadcast a low load.", rows)
}

// AblationDNSCache contrasts pure DNS rotation with cached client domains
// (the round-robin weakness called out in Section 1): a handful of client
// domains re-using cached answers skews the initial assignment.
func AblationDNSCache(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 16
	var rows []AblationRow
	cases := []struct {
		label   string
		ttl     float64
		domains int
		policy  string
	}{
		{"no caching, RR", 0, 0, simsrv.PolicyRoundRobin},
		{"cached (3 domains, 60s TTL), RR", 60, 3, simsrv.PolicyRoundRobin},
		{"cached (3 domains, 60s TTL), SWEB", 60, 3, simsrv.PolicySWEB},
	}
	for i, cse := range cases {
		st, paths := uniformStore(nodes, fileCount(LargeFile), LargeFile)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = cse.policy
		cfg.DNSCacheTTL = cse.ttl
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, workload.UniformPicker(paths),
			workload.NewDomainPool(cse.domains), o.Seed+700+int64(i))
		rows = append(rows, rowFrom(cse.label, res))
	}
	return rows, ablationTable(
		"Ablation A2: DNS caching skew, 1.5M files, 16 rps, Meiko 6 nodes",
		"DNS caching funnels whole client domains to one node; SWEB's re-scheduling absorbs the skew.", rows)
}

// AblationFacets compares the multi-faceted cost model against single-
// faceted variants (CPU-only policy; SWEB without the disk facet) on the
// non-uniform workload where disk pressure, not CPU, is the real signal.
func AblationFacets(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 20
	var rows []AblationRow
	type variant struct {
		label  string
		policy string
		mut    func(*core.Params)
	}
	variants := []variant{
		{"multi-faceted (SWEB)", simsrv.PolicySWEB, nil},
		{"single-faceted (CPU-only)", simsrv.PolicyCPUOnly, nil},
		{"SWEB w/o disk facet", simsrv.PolicySWEB, func(p *core.Params) { p.UseDiskFacet = false }},
		{"SWEB w/o net facet", simsrv.PolicySWEB, func(p *core.Params) { p.UseNetFacet = false }},
	}
	for i, v := range variants {
		st, pick := adlStore(nodes, o.Seed+17)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = v.policy
		if v.mut != nil {
			p := core.DefaultParams()
			v.mut(&p)
			cfg.Params = p
			cfg.HaveParams = true
		}
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, pick, nil, o.Seed+800+int64(i))
		rows = append(rows, rowFrom(v.label, res))
	}
	return rows, ablationTable(
		"Ablation A3: multi-faceted vs single-faceted scheduling, non-uniform load, 20 rps",
		"The optimal assignment 'does not solely depend on CPU loads' (Sec. 1).", rows)
}

// AblationPingPong varies MaxRedirects. The paper pins it at 1 "to avoid
// the ping-pong effect"; allowing more lets requests bounce between nodes
// that each think the other is less loaded.
func AblationPingPong(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 20
	var rows []AblationRow
	for i, maxR := range []int{1, 3, 0} {
		st, pick := adlStore(nodes, o.Seed+17)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = simsrv.PolicySWEB
		p := core.DefaultParams()
		p.MaxRedirects = maxR
		cfg.Params = p
		cfg.HaveParams = true
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, pick, nil, o.Seed+900+int64(i))
		rows = append(rows, rowFrom(fmt.Sprintf("max redirects=%d", maxR), res))
	}
	return rows, ablationTable(
		"Ablation A4: redirect limit (ping-pong guard), non-uniform load, 20 rps",
		"MaxRedirects=1 is the paper's rule; 0 disables re-scheduling entirely.", rows)
}

// Heterogeneous exercises the Section 5 future-work scenario: unequal node
// speeds plus a node leaving and rejoining the pool mid-run. SWEB must keep
// serving (loadd times the dead node out) where round robin keeps throwing
// requests at it.
func Heterogeneous(o Options) ([]AblationRow, *stats.Table) {
	const rps = 16
	dur := o.burstDur()
	var rows []AblationRow
	for i, pol := range []string{simsrv.PolicyRoundRobin, simsrv.PolicySWEB} {
		st := storage.NewStore(6)
		paths := storage.UniformSet(st, 24, LargeFile)
		specs := simsrv.MeikoSpecs(6)
		// Two nodes are older, half-speed workstations with slower disks.
		for _, slow := range []int{4, 5} {
			specs[slow].CPUOpsPerSec /= 2
			specs[slow].DiskBytesPerSec /= 2
		}
		cfg := simsrv.Config{Specs: specs, Net: simsrv.NetMeiko, Store: st, Policy: pol}
		cl, err := simsrv.New(cfg)
		if err != nil {
			panic(err)
		}
		// Node 3 crashes a third of the way in and rejoins at two thirds.
		cl.FailNodeAt(des.Time(dur/3)*des.Second, 3)
		cl.RecoverNodeAt(des.Time(2*dur/3)*des.Second, 3)
		burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		arrivals, err := burst.Generate(workload.UniformPicker(paths), nil,
			newRand(o.Seed+1000+int64(i)))
		if err != nil {
			panic(err)
		}
		res := cl.RunSchedule(arrivals)
		label := map[string]string{simsrv.PolicyRoundRobin: "Round Robin", simsrv.PolicySWEB: "SWEB"}[pol]
		rows = append(rows, rowFrom(label, res))
	}
	return rows, ablationTable(
		"F1: heterogeneous speeds + node churn (node 3 fails and rejoins), 16 rps, 1.5M",
		"Both policies lose the DNS arrivals aimed at the dead node; SWEB's gain is "+
			"response time — loadd times the node out, so peers stop redirecting to it "+
			"and route around the half-speed stragglers.", rows)
}
