package experiments

import (
	"fmt"

	"sweb/internal/des"
	"sweb/internal/netsim"
	"sweb/internal/simsrv"
	"sweb/internal/stats"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// Forwarding compares the paper's chosen reassignment mechanism (URL
// redirection) with the alternative it rejected (server-side request
// forwarding, Sec. 3.1): forwarding saves the client round trip but
// occupies two handler slots per request and relays every byte across the
// interconnect a second time.
func Forwarding(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 20
	var rows []AblationRow
	for i, mech := range []string{simsrv.ReassignRedirect, simsrv.ReassignForward} {
		st, pick := adlStore(nodes, o.Seed+17)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = simsrv.PolicySWEB
		cfg.Reassign = mech
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, pick, nil, o.Seed+1100+int64(i))
		rows = append(rows, rowFrom("reassign="+mech, res))
	}
	return rows, ablationTable(
		"Architecture: URL redirection vs request forwarding (Sec. 3.1), 20 rps",
		"The paper chose redirection for browser compatibility; forwarding also pays "+
			"double handling and a second interconnect crossing per byte.", rows)
}

// CentralRow is one cell of the centralized-vs-distributed comparison.
type CentralRow struct {
	Arch         string
	RPS          int
	MeanResponse float64
	DropRate     float64
	// DispatcherCPUShare is the fraction of the dispatcher node's CPU
	// consumed (centralized only).
	DispatcherBusy float64
}

// Centralized builds the architecture Section 3.1 rejects — one central
// distributor every request flows through — and sweeps the offered load
// against the distributed scheduler on identical worker hardware. Two
// effects should appear: the dispatcher's CPU saturates first, and killing
// it (the single point of failure) takes the whole service down, while the
// distributed cluster only loses the dead node's DNS share.
func Centralized(o Options) ([]CentralRow, *stats.Table) {
	const workers = 6
	rpsSweep := []int{8, 16, 24, 32}
	if o.Quick {
		rpsSweep = []int{16, 32}
	}
	var rows []CentralRow
	seed := o.Seed + 1200

	for _, rps := range rpsSweep {
		// Distributed: 6 nodes, every one a server (the SWEB design).
		seed++
		stD, paths := uniformStore(workers, fileCount(SmallFile), SmallFile)
		cfgD := simsrv.MeikoConfig(workers, stD)
		cfgD.Policy = simsrv.PolicySWEB
		cfgD.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		resD := mustRun(cfgD, burst, workload.UniformPicker(paths), nil, seed)
		rows = append(rows, CentralRow{
			Arch: "distributed", RPS: rps,
			MeanResponse: resD.MeanResponse(), DropRate: resD.DropRate(),
		})

		// Centralized: the SAME 6 workers plus a dedicated dispatcher in
		// front (7 nodes of hardware — it still loses).
		seed++
		stC, cpaths := centralStore(workers)
		cfgC := simsrv.MeikoConfig(workers+1, stC)
		cfgC.Policy = simsrv.PolicySWEB
		cfgC.Dispatcher = true
		cfgC.ClientTimeout = 600 * des.Second
		cl, err := simsrv.New(cfgC)
		if err != nil {
			panic(err)
		}
		arrivals, err := burst.Generate(workload.UniformPicker(cpaths), nil, newRand(seed*13))
		if err != nil {
			panic(err)
		}
		resC := cl.RunSchedule(arrivals)
		busy := 0.0
		if span := cl.Makespan().ToSeconds(); span > 0 {
			busy = cl.Node(0).CPU.BusyTime().ToSeconds() / span
		}
		rows = append(rows, CentralRow{
			Arch: "centralized", RPS: rps,
			MeanResponse:   resC.MeanResponse(),
			DropRate:       resC.DropRate(),
			DispatcherBusy: busy,
		})
	}

	tbl := &stats.Table{
		Title:  "Architecture: distributed scheduler vs central dispatcher (Sec. 3.1)",
		Header: []string{"rps", "architecture", "response", "drop rate", "dispatcher busy"},
		Caption: "Every request crosses the single distributor; its CPU saturates while the " +
			"distributed design spreads the preprocessing. It is also a single point of failure.",
	}
	for _, r := range rows {
		busy := "-"
		if r.Arch == "centralized" {
			busy = stats.FormatPercent(r.DispatcherBusy)
		}
		tbl.AddRowStrings(fmt.Sprintf("%d", r.RPS), r.Arch,
			stats.FormatSeconds(r.MeanResponse), stats.FormatPercent(r.DropRate), busy)
	}
	return rows, tbl
}

// centralStore lays out the corpus on workers 1..n, leaving the dispatcher
// (node 0) without documents.
func centralStore(workers int) (*storage.Store, []string) {
	st := storage.NewStore(workers + 1)
	var paths []string
	for i := 0; i < fileCount(SmallFile); i++ {
		p := fmt.Sprintf("/docs/c%06d.dat", i)
		st.MustAdd(storage.File{Path: p, Size: SmallFile, Owner: 1 + i%workers})
		paths = append(paths, p)
	}
	return st, paths
}

// CentralSPOF kills the scheduler's critical node mid-run in both
// architectures: the distributed cluster keeps serving 5/6 of its traffic;
// the centralized one flatlines.
func CentralSPOF(o Options) ([]CentralRow, *stats.Table) {
	const workers, rps = 6, 12
	dur := o.burstDur()
	var rows []CentralRow

	// Distributed: node 0 dies at dur/3.
	stD, paths := uniformStore(workers, fileCount(SmallFile), SmallFile)
	cfgD := simsrv.MeikoConfig(workers, stD)
	cfgD.Policy = simsrv.PolicySWEB
	cfgD.Seed = o.Seed + 1300
	clD, err := simsrv.New(cfgD)
	if err != nil {
		panic(err)
	}
	clD.FailNodeAt(des.Time(dur/3)*des.Second, 0)
	burst := workload.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
	arrD, _ := burst.Generate(workload.UniformPicker(paths), nil, newRand(o.Seed+1301))
	resD := clD.RunSchedule(arrD)
	rows = append(rows, CentralRow{Arch: "distributed, node dies", RPS: rps,
		MeanResponse: resD.MeanResponse(), DropRate: resD.DropRate()})

	// Centralized: the dispatcher dies at dur/3.
	stC, cpaths := centralStore(workers)
	cfgC := simsrv.MeikoConfig(workers+1, stC)
	cfgC.Policy = simsrv.PolicySWEB
	cfgC.Dispatcher = true
	cfgC.Seed = o.Seed + 1302
	clC, err := simsrv.New(cfgC)
	if err != nil {
		panic(err)
	}
	clC.FailNodeAt(des.Time(dur/3)*des.Second, 0)
	arrC, _ := burst.Generate(workload.UniformPicker(cpaths), nil, newRand(o.Seed+1303))
	resC := clC.RunSchedule(arrC)
	rows = append(rows, CentralRow{Arch: "centralized, dispatcher dies", RPS: rps,
		MeanResponse: resC.MeanResponse(), DropRate: resC.DropRate()})

	tbl := &stats.Table{
		Title:  "Single point of failure: losing the critical node (Sec. 3.1)",
		Header: []string{"architecture", "response", "drop rate"},
		Caption: "\"The single central distributor becomes a single point of failure, making " +
			"the entire system more vulnerable.\"",
	}
	for _, r := range rows {
		tbl.AddRowStrings(r.Arch, stats.FormatSeconds(r.MeanResponse), stats.FormatPercent(r.DropRate))
	}
	return rows, tbl
}

// GossipLoss measures loadd's robustness to dropped datagrams: even heavy
// UDP loss only staleness-degrades the tables, because every broadcast is a
// full state refresh.
func GossipLoss(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 20
	var rows []AblationRow
	for i, loss := range []float64{0, 0.3, 0.7} {
		st, pick := adlStore(nodes, o.Seed+17)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = simsrv.PolicySWEB
		cfg.LoaddLossRate = loss
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, pick, nil, o.Seed+1400+int64(i))
		rows = append(rows, rowFrom(fmt.Sprintf("loss=%.0f%%", loss*100), res))
	}
	return rows, ablationTable(
		"Gossip robustness: loadd datagram loss, 20 rps non-uniform load",
		"Lost broadcasts only make tables staler; the Δ bump and the loadd timeout absorb it.", rows)
}

// CoopCache measures the cooperative-caching extension: with cache-hint
// gossip on, a broker can route a hot document to ANY peer whose memory
// holds it, instead of choosing between its own disk path and the owner.
// The workload is a Zipf-popular ADL corpus, where the head documents end
// up cached on several nodes.
func CoopCache(o Options) ([]AblationRow, *stats.Table) {
	const nodes, rps = 6, 14
	var rows []AblationRow
	for i, hints := range []int{0, 8} {
		st := storage.NewStore(nodes)
		paths := storage.UniformSet(st, 36, LargeFile)
		cfg := simsrv.MeikoConfig(nodes, st)
		cfg.Policy = simsrv.PolicySWEB
		cfg.CacheHints = hints
		cfg.ClientTimeout = 600 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		pick := workload.ZipfPicker(paths, 1.2, newRand(o.Seed+1700))
		res := mustRun(cfg, burst, pick, nil, o.Seed+1701+int64(i))
		label := "hints off"
		if hints > 0 {
			label = fmt.Sprintf("hints top-%d", hints)
		}
		rows = append(rows, rowFrom(label, res))
	}
	return rows, ablationTable(
		"Extension: cooperative cache-hint gossip, Zipf-popular 1.5M corpus, 14 rps",
		"With the digest, brokers see which peers hold the hot documents in memory "+
			"and spread them; without it, remote candidates are assumed disk-bound.", rows)
}

// EastCoast reproduces the Rutgers experiment (Sec. 4.2): clients on the
// other side of the country fetch from the Ethernet-linked NOW, "in spite
// of the poor bandwidth and long latency over the connection from the east
// coast to the west coast", file locality still gains over 10% versus
// round robin, because every NFS crossing of the shared segment is pure
// waste regardless of how slow the client is.
func EastCoast(o Options) ([]PolicyRow, *stats.Table) {
	const nodes, rps = 4, 4
	var rows []PolicyRow
	seed := o.Seed + 1800
	for _, pol := range comparedPolicies {
		seed++
		st, paths := uniformStore(nodes, 16, LargeFile)
		cfg := simsrv.NOWConfig(nodes, st)
		cfg.Policy = pol.key
		cfg.Client = netsim.CrossCountryClient()
		cfg.ClientTimeout = 900 * des.Second
		burst := workload.Burst{RPS: rps, DurationSeconds: o.burstDur(), Jitter: true}
		res := mustRun(cfg, burst, workload.UniformPicker(paths), nil, seed)
		rows = append(rows, PolicyRow{
			Policy: pol.label, RPS: rps,
			MeanResponse: res.MeanResponse(), DropRate: res.DropRate(),
			Redirects: res.Redirects, Imbalance: imbalance(res.PerNodeServed),
		})
	}
	return rows, policyTable(rows,
		"East-coast clients (Rutgers, Sec. 4.2): 1.5M files over the NOW Ethernet, 4 rps",
		"Paper anchor: >10% gain for file locality over round robin despite the poor "+
			"cross-country bandwidth and latency.")
}
