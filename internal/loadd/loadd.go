// Package loadd implements SWEB's load daemon state: each node periodically
// broadcasts its CPU, disk, and network loads (every 2-3 seconds); peers
// store the samples, mark nodes that stay silent past a preset timeout as
// unavailable, and conservatively bump a peer's CPU load by Δ = 30% each
// time a request is redirected to it, so that several nodes acting on the
// same stale broadcast do not simultaneously dogpile an apparently idle
// peer ("unsynchronized overloading", Sec. 3.2).
//
// The Table is pure bookkeeping over float64 timestamps, so the identical
// code backs the discrete-event simulator (sim-time seconds) and the live
// UDP daemon (wall-clock seconds).
package loadd

import (
	"fmt"
	"sort"
	"sync"

	"sweb/internal/core"
)

// Sample is one load broadcast from a node.
type Sample struct {
	Node     int
	CPULoad  float64
	DiskLoad float64
	NetLoad  float64

	// Static capabilities travel with the sample so that nodes joining
	// the resource pool are usable without extra configuration exchange.
	CPUOpsPerSec    float64
	DiskBytesPerSec float64
	NetBytesPerSec  float64

	// SentAt is the sender's timestamp in seconds.
	SentAt float64

	// CacheHints lists the sender's hottest cached document paths —
	// the cooperative-caching digest (the authors' follow-up work:
	// peers that know a document is hot in a remote memory can route
	// requests there instead of to the owner's disk).
	CacheHints []string
}

// Validate reports obviously corrupt samples (negative loads or rates),
// which the live UDP listener drops rather than poisoning the table.
func (s Sample) Validate() error {
	switch {
	case s.Node < 0:
		return fmt.Errorf("loadd: negative node id %d", s.Node)
	case s.CPULoad < 0 || s.DiskLoad < 0 || s.NetLoad < 0:
		return fmt.Errorf("loadd: node %d: negative load", s.Node)
	case s.CPUOpsPerSec <= 0 || s.DiskBytesPerSec <= 0 || s.NetBytesPerSec <= 0:
		return fmt.Errorf("loadd: node %d: non-positive capability", s.Node)
	case len(s.CacheHints) > MaxCacheHints:
		return fmt.Errorf("loadd: node %d: %d cache hints exceeds %d", s.Node, len(s.CacheHints), MaxCacheHints)
	}
	for _, h := range s.CacheHints {
		if h == "" || len(h) > MaxHintLen {
			return fmt.Errorf("loadd: node %d: malformed cache hint", s.Node)
		}
	}
	return nil
}

// Limits on the cooperative-caching digest, bounding datagram size.
const (
	MaxCacheHints = 32
	MaxHintLen    = 255
)

// BroadcastRecord is one received broadcast as the gossip telemetry ring
// keeps it: the advertised load vector plus both clocks — the sender's
// SentAt (its own epoch) and the receiver's arrival time. Staleness math
// must use ReceivedAt: the two epochs are not comparable.
type BroadcastRecord struct {
	CPULoad    float64 `json:"cpu_load"`
	DiskLoad   float64 `json:"disk_load"`
	NetLoad    float64 `json:"net_load"`
	SentAt     float64 `json:"sent_at"`
	ReceivedAt float64 `json:"received_at"`
}

// HistoryCap bounds the per-peer broadcast ring: enough to cover a minute
// and a half of the paper's 2-3 s gossip period without growing forever.
const HistoryCap = 32

type entry struct {
	sample     Sample
	receivedAt float64
	haveSample bool
	// history is the bounded time-series of received broadcasts, newest
	// last — the scheduler's decision inputs made replayable.
	history []BroadcastRecord
	// bumps counts redirects issued to this peer since its last broadcast;
	// each adds Δ·CPUOpsPerSec-normalized load. Reset on fresh samples.
	bumps int
	// failures counts consecutive data-path failures (dial/fetch errors)
	// observed against this peer since its last success or broadcast. At
	// failLimit the peer is treated as unavailable even if its broadcasts
	// still look fresh — a node can gossip happily while its HTTP side is
	// wedged.
	failures int
}

// DefaultFailureLimit is the consecutive data-path failure count at which
// a peer is considered unavailable regardless of broadcast freshness.
const DefaultFailureLimit = 3

// Table is one node's view of the whole resource pool.
type Table struct {
	mu        sync.Mutex
	self      int
	timeout   float64 // seconds of silence before a peer is unavailable
	delta     float64 // Δ, the anti-herd CPU bump per redirect
	failLimit int     // consecutive data-path failures before unavailable
	entries   map[int]*entry
}

// NewTable creates a table for node self. timeout is the silence threshold
// in seconds ("a preset period of time"); delta is Δ (0.30 in the paper).
func NewTable(self int, timeout, delta float64) *Table {
	if timeout <= 0 {
		panic("loadd: timeout must be positive")
	}
	if delta < 0 {
		panic("loadd: delta must be non-negative")
	}
	return &Table{self: self, timeout: timeout, delta: delta,
		failLimit: DefaultFailureLimit, entries: make(map[int]*entry)}
}

// SetFailureLimit overrides the consecutive-failure threshold; n <= 0
// restores DefaultFailureLimit.
func (t *Table) SetFailureLimit(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		n = DefaultFailureLimit
	}
	t.failLimit = n
}

// Self returns the owning node id.
func (t *Table) Self() int { return t.self }

// Update records a broadcast received at time now (seconds). A fresh sample
// clears any accumulated redirect bumps for that peer. Invalid samples are
// ignored and reported.
func (t *Table) Update(s Sample, now float64) error {
	if err := s.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[s.Node]
	if e == nil {
		e = &entry{}
		t.entries[s.Node] = e
	}
	// Out-of-order datagrams: keep the newest sender timestamp.
	if e.haveSample && s.SentAt < e.sample.SentAt {
		return nil
	}
	e.sample = s
	e.receivedAt = now
	e.haveSample = true
	e.bumps = 0
	// A fresh broadcast proves the node is alive again; the data path
	// re-earns trust until the next failure streak.
	e.failures = 0
	e.history = append(e.history, BroadcastRecord{
		CPULoad: s.CPULoad, DiskLoad: s.DiskLoad, NetLoad: s.NetLoad,
		SentAt: s.SentAt, ReceivedAt: now,
	})
	if len(e.history) > HistoryCap {
		e.history = e.history[len(e.history)-HistoryCap:]
	}
	return nil
}

// Age returns the seconds since node's last broadcast as of now, or -1
// when no sample has ever arrived. This is the staleness of the
// scheduler's input for that peer — the quantity the gossip gauges track.
func (t *Table) Age(node int, now float64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[node]
	if e == nil || !e.haveSample {
		return -1
	}
	return now - e.receivedAt
}

// Advertised returns node's last broadcast sample as received, without the
// anti-herd bumps the broker's Snapshot applies — the "what the peer said"
// half of the advertised-vs-observed comparison.
func (t *Table) Advertised(node int) (Sample, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[node]
	if e == nil || !e.haveSample {
		return Sample{}, false
	}
	return e.sample, true
}

// PeerHistory is one peer's broadcast time-series.
type PeerHistory struct {
	Node    int               `json:"node"`
	Records []BroadcastRecord `json:"records"`
}

// HistorySnapshot copies every peer's broadcast ring, sorted by node id.
func (t *Table) HistorySnapshot() []PeerHistory {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.entries))
	for id, e := range t.entries {
		if len(e.history) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]PeerHistory, 0, len(ids))
	for _, id := range ids {
		out = append(out, PeerHistory{
			Node:    id,
			Records: append([]BroadcastRecord(nil), t.entries[id].history...),
		})
	}
	return out
}

// MarkFailure records one data-path failure against node (an internal
// fetch that could not dial, write, or read the peer). It returns the new
// consecutive-failure count. The peer becomes unavailable once the count
// reaches the failure limit, recovering on MarkSuccess or a fresh Update.
func (t *Table) MarkFailure(node int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[node]
	if e == nil {
		e = &entry{}
		t.entries[node] = e
	}
	e.failures++
	return e.failures
}

// MarkSuccess records a successful data-path exchange with node, clearing
// any failure streak.
func (t *Table) MarkSuccess(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[node]; e != nil {
		e.failures = 0
	}
}

// Failures returns node's current consecutive data-path failure count.
func (t *Table) Failures(node int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[node]; e != nil {
		return e.failures
	}
	return 0
}

// Bump conservatively inflates the local view of node's CPU load after
// redirecting a request to it. The bump decays when the peer's next
// broadcast arrives.
func (t *Table) Bump(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[node]; e != nil {
		e.bumps++
	}
}

// Known returns the node ids with at least one sample, in unspecified order.
func (t *Table) Known() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.entries))
	for id, e := range t.entries {
		if e.haveSample {
			out = append(out, id)
		}
	}
	return out
}

// Available reports whether node has broadcast within the timeout as of now
// and its data path is not in a failure streak at or past the limit.
func (t *Table) Available(node int, now float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[node]
	return e != nil && e.haveSample && now-e.receivedAt <= t.timeout &&
		e.failures < t.failLimit
}

// PeerHealth is one row of the table's introspection snapshot (served by
// the live nodes under /sweb/status): the raw ingredients of the
// availability verdict — broadcast freshness, the data-path failure
// streak, and pending anti-herd bumps — next to the last advertised loads.
type PeerHealth struct {
	Node       int     `json:"node"`
	HaveSample bool    `json:"have_sample"`
	Available  bool    `json:"available"`
	Failures   int     `json:"failures"`
	Bumps      int     `json:"bumps"`
	AgeSeconds float64 `json:"age_seconds"` // since the last broadcast; -1 with no sample
	CPULoad    float64 `json:"cpu_load"`
	DiskLoad   float64 `json:"disk_load"`
	NetLoad    float64 `json:"net_load"`
}

// Health snapshots every known entry for introspection, sorted by node id,
// applying the same freshness and failure-streak rules as Available. Where
// Snapshot renders the broker's (bump-inflated) view, Health reports the
// raw samples plus the verdict's inputs, so an operator can see *why* a
// peer is being scheduled around.
func (t *Table) Health(now float64) []PeerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.entries))
	for id := range t.entries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]PeerHealth, 0, len(ids))
	for _, id := range ids {
		e := t.entries[id]
		h := PeerHealth{
			Node:       id,
			HaveSample: e.haveSample,
			Failures:   e.failures,
			Bumps:      e.bumps,
			AgeSeconds: -1,
		}
		if e.haveSample {
			h.AgeSeconds = now - e.receivedAt
			h.Available = h.AgeSeconds <= t.timeout && e.failures < t.failLimit
			h.CPULoad = e.sample.CPULoad
			h.DiskLoad = e.sample.DiskLoad
			h.NetLoad = e.sample.NetLoad
		}
		out = append(out, h)
	}
	return out
}

// Forget drops a peer entirely (a node leaving the resource pool
// gracefully). Silent departures are handled by the timeout.
func (t *Table) Forget(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, node)
}

// CachedAt reports whether node's last broadcast advertised path in its
// cache digest. Stale entries (past the timeout) report false.
func (t *Table) CachedAt(node int, path string, now float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[node]
	if e == nil || !e.haveSample || now-e.receivedAt > t.timeout {
		return false
	}
	for _, h := range e.sample.CacheHints {
		if h == path {
			return true
		}
	}
	return false
}

// Snapshot renders the table as the broker's []core.NodeLoad, indexed by
// node id 0..n-1, applying staleness and bumps as of time now (seconds).
// Nodes without a recent sample have Available == false.
func (t *Table) Snapshot(n int, now float64) []core.NodeLoad {
	t.mu.Lock()
	defer t.mu.Unlock()
	loads := make([]core.NodeLoad, n)
	for id := 0; id < n; id++ {
		e := t.entries[id]
		if e == nil || !e.haveSample {
			continue
		}
		if now-e.receivedAt > t.timeout {
			continue // silent too long: unavailable
		}
		if e.failures >= t.failLimit {
			continue // data path failing even though broadcasts look fresh
		}
		s := e.sample
		// Each redirect since the last broadcast adds Δ load (relative to
		// one runnable job), i.e. Δ=0.3 means "assume the request I just
		// sent adds 30% of a job's worth of extra pressure". The paper
		// bumps the CPU load — the only input of its t_CPU term that the
		// sender influences; this multi-faceted table bumps the whole
		// vector so the same anti-herd logic protects the disk and
		// network terms that dominate large-file costs.
		bump := t.delta * float64(e.bumps)
		loads[id] = core.NodeLoad{
			Available:       true,
			CPULoad:         s.CPULoad + bump*(1+s.CPULoad),
			DiskLoad:        s.DiskLoad + bump*(1+s.DiskLoad),
			NetLoad:         s.NetLoad + bump*(1+s.NetLoad),
			CPUOpsPerSec:    s.CPUOpsPerSec,
			DiskBytesPerSec: s.DiskBytesPerSec,
			NetBytesPerSec:  s.NetBytesPerSec,
		}
	}
	return loads
}
