package loadd

import "testing"

func historySample(node int, cpu, sentAt float64) Sample {
	return Sample{
		Node: node, CPULoad: cpu, DiskLoad: 2 * cpu, NetLoad: 3 * cpu,
		CPUOpsPerSec: 1e6, DiskBytesPerSec: 1e6, NetBytesPerSec: 1e6,
		SentAt: sentAt,
	}
}

func TestHistoryRingRecordsAndTrims(t *testing.T) {
	tb := NewTable(0, 10, 0.3)
	for i := 0; i < HistoryCap+5; i++ {
		if err := tb.Update(historySample(1, float64(i), float64(i)), float64(i)+0.25); err != nil {
			t.Fatal(err)
		}
	}
	hist := tb.HistorySnapshot()
	if len(hist) != 1 || hist[0].Node != 1 {
		t.Fatalf("snapshot %+v, want one peer (node 1)", hist)
	}
	recs := hist[0].Records
	if len(recs) != HistoryCap {
		t.Fatalf("ring holds %d records, want trimmed to %d", len(recs), HistoryCap)
	}
	// Newest last, oldest entries dropped.
	last := recs[len(recs)-1]
	if last.CPULoad != float64(HistoryCap+4) || last.ReceivedAt != float64(HistoryCap+4)+0.25 {
		t.Fatalf("newest record %+v, want the final broadcast", last)
	}
	if recs[0].CPULoad != 5 {
		t.Fatalf("oldest kept record advertises cpu %v, want 5", recs[0].CPULoad)
	}
}

func TestHistorySnapshotSortedAndCopied(t *testing.T) {
	tb := NewTable(0, 10, 0.3)
	for _, n := range []int{3, 1, 2} {
		if err := tb.Update(historySample(n, 1, 1), 1); err != nil {
			t.Fatal(err)
		}
	}
	hist := tb.HistorySnapshot()
	if len(hist) != 3 || hist[0].Node != 1 || hist[1].Node != 2 || hist[2].Node != 3 {
		t.Fatalf("snapshot not sorted by node: %+v", hist)
	}
	// Mutating the snapshot must not reach back into the table.
	hist[0].Records[0].CPULoad = 99
	if again := tb.HistorySnapshot(); again[0].Records[0].CPULoad == 99 {
		t.Fatal("HistorySnapshot returned the live ring, not a copy")
	}
}

func TestAge(t *testing.T) {
	tb := NewTable(0, 10, 0.3)
	if got := tb.Age(1, 5); got != -1 {
		t.Fatalf("Age with no sample = %v, want -1", got)
	}
	if err := tb.Update(historySample(1, 1, 1), 2); err != nil {
		t.Fatal(err)
	}
	if got := tb.Age(1, 5); got != 3 {
		t.Fatalf("Age = %v, want 3 (received at 2, now 5)", got)
	}
}

func TestAdvertisedIsRawSample(t *testing.T) {
	tb := NewTable(0, 10, 0.3)
	if _, ok := tb.Advertised(1); ok {
		t.Fatal("Advertised reported a sample before any broadcast")
	}
	if err := tb.Update(historySample(1, 4, 1), 1); err != nil {
		t.Fatal(err)
	}
	// Bumps inflate Snapshot's broker view but must not leak into the
	// advertised (as-received) sample.
	tb.Bump(1)
	tb.Bump(1)
	s, ok := tb.Advertised(1)
	if !ok || s.CPULoad != 4 || s.DiskLoad != 8 || s.NetLoad != 12 {
		t.Fatalf("Advertised = %+v (%v), want the raw broadcast", s, ok)
	}
	if got := tb.Snapshot(2, 1)[1].CPULoad; got <= 4 {
		t.Fatalf("broker view %v should carry the anti-herd bumps", got)
	}
}
