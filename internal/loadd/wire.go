package loadd

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for live-cluster UDP broadcasts: a fixed 64-byte datagram.
//
//	offset  field
//	0       magic "SWLD"
//	4       version (uint16)
//	6       node id (uint16)
//	8..56   six float64 fields (cpu, disk, net loads; cpu, disk, net rates)
//	56      sentAt seconds (float64)
//
// All integers and float bit patterns are big-endian. A fixed binary layout
// keeps the daemon allocation-free on the receive path and rejects foreign
// traffic cheaply.

const (
	wireMagic   = "SWLD"
	wireVersion = 2
	// WireSize is the fixed header length; hint bytes follow it.
	WireSize = 64
	// MaxWireSize bounds a full datagram including the hint digest.
	MaxWireSize = WireSize + 2 + MaxCacheHints*(2+MaxHintLen)
)

// EncodedSize returns the exact datagram length EncodeSample will produce.
func EncodedSize(s Sample) int {
	n := WireSize + 2
	for _, h := range s.CacheHints {
		n += 2 + len(h)
	}
	return n
}

// EncodeSample serializes s into buf, which must be at least WireSize bytes,
// and returns the number of bytes written.
func EncodeSample(buf []byte, s Sample) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if len(buf) < WireSize {
		return 0, fmt.Errorf("loadd: encode buffer too small: %d < %d", len(buf), WireSize)
	}
	if s.Node < 0 || s.Node > math.MaxUint16 {
		return 0, fmt.Errorf("loadd: node id %d does not fit wire format", s.Node)
	}
	copy(buf[0:4], wireMagic)
	binary.BigEndian.PutUint16(buf[4:6], wireVersion)
	binary.BigEndian.PutUint16(buf[6:8], uint16(s.Node))
	fields := [7]float64{s.CPULoad, s.DiskLoad, s.NetLoad, s.CPUOpsPerSec, s.DiskBytesPerSec, s.NetBytesPerSec, s.SentAt}
	for i, f := range fields {
		binary.BigEndian.PutUint64(buf[8+8*i:16+8*i], math.Float64bits(f))
	}
	// Hint digest: uint16 count, then per hint uint16 length + bytes.
	off := WireSize
	need := EncodedSize(s)
	if len(buf) < need {
		return 0, fmt.Errorf("loadd: encode buffer too small for hints: %d < %d", len(buf), need)
	}
	binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(s.CacheHints)))
	off += 2
	for _, h := range s.CacheHints {
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(h)))
		off += 2
		copy(buf[off:], h)
		off += len(h)
	}
	return off, nil
}

// DecodeSample parses a datagram produced by EncodeSample.
func DecodeSample(buf []byte) (Sample, error) {
	var s Sample
	if len(buf) < WireSize {
		return s, fmt.Errorf("loadd: datagram too short: %d", len(buf))
	}
	if string(buf[0:4]) != wireMagic {
		return s, fmt.Errorf("loadd: bad magic %q", buf[0:4])
	}
	if v := binary.BigEndian.Uint16(buf[4:6]); v != wireVersion {
		return s, fmt.Errorf("loadd: unsupported version %d", v)
	}
	s.Node = int(binary.BigEndian.Uint16(buf[6:8]))
	var fields [7]float64
	for i := range fields {
		fields[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8+8*i : 16+8*i]))
	}
	s.CPULoad, s.DiskLoad, s.NetLoad = fields[0], fields[1], fields[2]
	s.CPUOpsPerSec, s.DiskBytesPerSec, s.NetBytesPerSec = fields[3], fields[4], fields[5]
	s.SentAt = fields[6]
	// Hint digest.
	off := WireSize
	if len(buf) < off+2 {
		return s, fmt.Errorf("loadd: datagram truncated before hint count")
	}
	count := int(binary.BigEndian.Uint16(buf[off : off+2]))
	off += 2
	if count > MaxCacheHints {
		return s, fmt.Errorf("loadd: %d hints exceeds %d", count, MaxCacheHints)
	}
	for i := 0; i < count; i++ {
		if len(buf) < off+2 {
			return s, fmt.Errorf("loadd: datagram truncated in hint %d", i)
		}
		l := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if l == 0 || l > MaxHintLen || len(buf) < off+l {
			return s, fmt.Errorf("loadd: malformed hint %d", i)
		}
		s.CacheHints = append(s.CacheHints, string(buf[off:off+l]))
		off += l
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}
