package loadd

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func sample(node int, cpu, disk, net float64, sentAt float64) Sample {
	return Sample{
		Node: node, CPULoad: cpu, DiskLoad: disk, NetLoad: net,
		CPUOpsPerSec: 40e6, DiskBytesPerSec: 5e6, NetBytesPerSec: 4.5e6,
		SentAt: sentAt,
	}
}

func TestSampleValidate(t *testing.T) {
	if err := sample(0, 1, 1, 1, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		{Node: -1, CPUOpsPerSec: 1, DiskBytesPerSec: 1, NetBytesPerSec: 1},
		sample(0, -1, 0, 0, 0),
		sample(0, 0, -1, 0, 0),
		sample(0, 0, 0, -1, 0),
		{Node: 0, CPUOpsPerSec: 0, DiskBytesPerSec: 1, NetBytesPerSec: 1},
		{Node: 0, CPUOpsPerSec: 1, DiskBytesPerSec: 0, NetBytesPerSec: 1},
		{Node: 0, CPUOpsPerSec: 1, DiskBytesPerSec: 1, NetBytesPerSec: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid sample accepted: %+v", i, s)
		}
	}
}

func TestTableUpdateAndSnapshot(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	if err := tb.Update(sample(1, 2, 3, 4, 1), 1); err != nil {
		t.Fatal(err)
	}
	loads := tb.Snapshot(2, 2)
	if !loads[1].Available {
		t.Fatal("fresh sample unavailable")
	}
	if loads[1].CPULoad != 2 || loads[1].DiskLoad != 3 || loads[1].NetLoad != 4 {
		t.Fatalf("loads = %+v", loads[1])
	}
	if loads[0].Available {
		t.Fatal("node without a sample should be unavailable")
	}
}

func TestTableRejectsInvalidSamples(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	if err := tb.Update(Sample{Node: 1}, 0); err == nil {
		t.Fatal("invalid sample accepted")
	}
	if tb.Available(1, 0) {
		t.Fatal("table poisoned by invalid sample")
	}
}

func TestTableStalenessTimeout(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)
	if !tb.Available(1, 7.9) {
		t.Fatal("node timed out too early")
	}
	if tb.Available(1, 8.1) {
		t.Fatal("silent node not marked unavailable")
	}
	if loads := tb.Snapshot(2, 9); loads[1].Available {
		t.Fatal("stale node available in snapshot")
	}
	// A new broadcast revives it (joining the pool again).
	_ = tb.Update(sample(1, 1, 1, 1, 9), 9)
	if !tb.Available(1, 9.5) {
		t.Fatal("rejoined node unavailable")
	}
}

func TestTableOutOfOrderSamplesIgnored(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 5, 0, 0, 10), 10)
	_ = tb.Update(sample(1, 99, 0, 0, 4), 10.1) // older SentAt
	if got := tb.Snapshot(2, 10.2)[1].CPULoad; got != 5 {
		t.Fatalf("stale datagram overwrote table: cpu=%v", got)
	}
}

func TestBumpInflatesAllFacets(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 1, 2, 3, 0), 0)
	tb.Bump(1)
	loads := tb.Snapshot(2, 1)
	// bump = 0.3: load + 0.3*(1+load)
	if math.Abs(loads[1].CPULoad-(1+0.3*2)) > 1e-9 {
		t.Fatalf("cpu after bump = %v", loads[1].CPULoad)
	}
	if math.Abs(loads[1].DiskLoad-(2+0.3*3)) > 1e-9 {
		t.Fatalf("disk after bump = %v", loads[1].DiskLoad)
	}
	if math.Abs(loads[1].NetLoad-(3+0.3*4)) > 1e-9 {
		t.Fatalf("net after bump = %v", loads[1].NetLoad)
	}
}

func TestBumpsAccumulateAndResetOnUpdate(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 0, 0, 0, 0), 0)
	tb.Bump(1)
	tb.Bump(1)
	loads := tb.Snapshot(2, 1)
	if math.Abs(loads[1].CPULoad-0.6) > 1e-9 {
		t.Fatalf("two bumps = %v", loads[1].CPULoad)
	}
	// Fresh broadcast clears the conservative inflation.
	_ = tb.Update(sample(1, 0, 0, 0, 2), 2)
	if got := tb.Snapshot(2, 2.5)[1].CPULoad; got != 0 {
		t.Fatalf("bump survived a fresh sample: %v", got)
	}
}

func TestBumpUnknownNodeIsNoop(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	tb.Bump(7) // must not panic or create an entry
	if len(tb.Known()) != 0 {
		t.Fatal("bump created a phantom entry")
	}
}

func TestForget(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)
	tb.Forget(1)
	if tb.Available(1, 0.1) {
		t.Fatal("forgotten node still available")
	}
	if len(tb.Known()) != 0 {
		t.Fatal("forgotten node still known")
	}
}

func TestKnown(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 0, 0, 0, 0), 0)
	_ = tb.Update(sample(3, 0, 0, 0, 0), 0)
	known := tb.Known()
	if len(known) != 2 {
		t.Fatalf("known = %v", known)
	}
}

func TestNewTablePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTable(0, 0, 0.3) },
		func() { NewTable(0, 8, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = tb.Update(sample(g%4, float64(i), 0, 0, float64(i)), float64(i))
				tb.Bump(g % 4)
				tb.Snapshot(4, float64(i))
				tb.Available(g%4, float64(i))
			}
		}()
	}
	wg.Wait()
}

func samplesEqual(a, b Sample) bool {
	if a.Node != b.Node || a.CPULoad != b.CPULoad || a.DiskLoad != b.DiskLoad ||
		a.NetLoad != b.NetLoad || a.CPUOpsPerSec != b.CPUOpsPerSec ||
		a.DiskBytesPerSec != b.DiskBytesPerSec || a.NetBytesPerSec != b.NetBytesPerSec ||
		a.SentAt != b.SentAt || len(a.CacheHints) != len(b.CacheHints) {
		return false
	}
	for i := range a.CacheHints {
		if a.CacheHints[i] != b.CacheHints[i] {
			return false
		}
	}
	return true
}

func TestWireRoundTrip(t *testing.T) {
	s := sample(3, 1.5, 2.25, 0.125, 42.5)
	var buf [MaxWireSize]byte
	n, err := EncodeSample(buf[:], s)
	if err != nil || n != EncodedSize(s) {
		t.Fatalf("encode: n=%d err=%v", n, err)
	}
	got, err := DecodeSample(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !samplesEqual(got, s) {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
}

func TestWireRoundTripWithHints(t *testing.T) {
	s := sample(2, 1, 1, 1, 5)
	s.CacheHints = []string{"/adl/full/scene0001.img", "/docs/hot.dat", "/x"}
	var buf [MaxWireSize]byte
	n, err := EncodeSample(buf[:], s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSample(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !samplesEqual(got, s) {
		t.Fatalf("round trip with hints: %+v != %+v", got, s)
	}
}

func TestWireRejectsOversizedHints(t *testing.T) {
	s := sample(0, 0, 0, 0, 0)
	for i := 0; i <= MaxCacheHints; i++ {
		s.CacheHints = append(s.CacheHints, "/f")
	}
	var buf [2 * MaxWireSize]byte
	if _, err := EncodeSample(buf[:], s); err == nil {
		t.Fatal("oversized hint list encoded")
	}
}

func TestWireTruncatedHintsRejected(t *testing.T) {
	s := sample(1, 1, 1, 1, 0)
	s.CacheHints = []string{"/hot.dat"}
	var buf [MaxWireSize]byte
	n, _ := EncodeSample(buf[:], s)
	for _, cut := range []int{n - 1, WireSize + 1, WireSize + 3} {
		if _, err := DecodeSample(buf[:cut]); err == nil {
			t.Errorf("truncated datagram (len %d) decoded", cut)
		}
	}
}

func TestWireEncodeErrors(t *testing.T) {
	var small [10]byte
	if _, err := EncodeSample(small[:], sample(0, 0, 0, 0, 0)); err == nil {
		t.Fatal("short buffer accepted")
	}
	var exact [WireSize]byte // no room for the hint count
	if _, err := EncodeSample(exact[:], sample(0, 0, 0, 0, 0)); err == nil {
		t.Fatal("header-only buffer accepted")
	}
	var buf [MaxWireSize]byte
	if _, err := EncodeSample(buf[:], sample(1<<17, 0, 0, 0, 0)); err == nil {
		t.Fatal("oversized node id accepted")
	}
	if _, err := EncodeSample(buf[:], sample(0, -1, 0, 0, 0)); err == nil {
		t.Fatal("invalid sample encoded")
	}
}

func TestWireDecodeErrors(t *testing.T) {
	var buf [MaxWireSize]byte
	n, _ := EncodeSample(buf[:], sample(0, 1, 1, 1, 0))
	good := buf[:n]

	short := good[:WireSize-1]
	if _, err := DecodeSample(short); err == nil {
		t.Fatal("short datagram accepted")
	}
	bad := append([]byte(nil), good...)
	copy(bad[0:4], "XXXX")
	if _, err := DecodeSample(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	badVer := append([]byte(nil), good...)
	badVer[4], badVer[5] = 0xFF, 0xFF
	if _, err := DecodeSample(badVer); err == nil {
		t.Fatal("bad version accepted")
	}
	// Corrupt payload producing an invalid sample (negative load).
	neg := append([]byte(nil), good...)
	neg[8] |= 0x80 // flip CPULoad sign bit
	if _, err := DecodeSample(neg); err == nil {
		t.Fatal("negative load accepted")
	}
}

// Property: encode/decode round-trips any valid sample.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(node uint16, cpu, disk, net uint16, sentAt int32) bool {
		s := Sample{
			Node:         int(node),
			CPULoad:      float64(cpu) / 16,
			DiskLoad:     float64(disk) / 16,
			NetLoad:      float64(net) / 16,
			CPUOpsPerSec: 40e6, DiskBytesPerSec: 5e6, NetBytesPerSec: 4.5e6,
			SentAt: float64(sentAt),
		}
		var buf [MaxWireSize]byte
		n, err := EncodeSample(buf[:], s)
		if err != nil {
			return false
		}
		got, err := DecodeSample(buf[:n])
		return err == nil && samplesEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCachedAt(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	s := sample(1, 0, 0, 0, 0)
	s.CacheHints = []string{"/hot.dat", "/warm.dat"}
	_ = tb.Update(s, 0)
	if !tb.CachedAt(1, "/hot.dat", 1) {
		t.Fatal("hinted path not found")
	}
	if tb.CachedAt(1, "/cold.dat", 1) {
		t.Fatal("phantom hint")
	}
	if tb.CachedAt(2, "/hot.dat", 1) {
		t.Fatal("unknown node hinted")
	}
	// Stale digests are ignored.
	if tb.CachedAt(1, "/hot.dat", 100) {
		t.Fatal("stale digest honored")
	}
}

func TestSampleValidateHints(t *testing.T) {
	s := sample(0, 0, 0, 0, 0)
	s.CacheHints = []string{""}
	if err := s.Validate(); err == nil {
		t.Fatal("empty hint accepted")
	}
	s.CacheHints = []string{string(make([]byte, MaxHintLen+1))}
	if err := s.Validate(); err == nil {
		t.Fatal("overlong hint accepted")
	}
}

func TestMarkFailureMakesPeerUnavailable(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)
	if !tb.Available(1, 1) {
		t.Fatal("fresh peer should be available")
	}
	// Below the limit the peer stays usable.
	for i := 1; i < DefaultFailureLimit; i++ {
		if got := tb.MarkFailure(1); got != i {
			t.Fatalf("failure count = %d want %d", got, i)
		}
		if !tb.Available(1, 1) {
			t.Fatalf("peer unavailable after only %d failures", i)
		}
	}
	tb.MarkFailure(1)
	if tb.Available(1, 1) {
		t.Fatal("peer still available at the failure limit")
	}
	if loads := tb.Snapshot(2, 1); loads[1].Available {
		t.Fatal("snapshot still advertises the failing peer")
	}
}

func TestMarkSuccessRecoversPeer(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)
	for i := 0; i < DefaultFailureLimit; i++ {
		tb.MarkFailure(1)
	}
	if tb.Available(1, 1) {
		t.Fatal("peer should be down")
	}
	tb.MarkSuccess(1)
	if !tb.Available(1, 1) {
		t.Fatal("MarkSuccess did not recover the peer")
	}
	if tb.Failures(1) != 0 {
		t.Fatalf("failures = %d after success", tb.Failures(1))
	}
}

func TestBroadcastRecoversFailingPeer(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)
	for i := 0; i < DefaultFailureLimit; i++ {
		tb.MarkFailure(1)
	}
	// A fresh broadcast proves the node is back.
	_ = tb.Update(sample(1, 1, 1, 1, 1), 1)
	if !tb.Available(1, 2) {
		t.Fatal("fresh broadcast did not recover the peer")
	}
	if loads := tb.Snapshot(2, 2); !loads[1].Available {
		t.Fatal("snapshot did not recover the peer")
	}
}

func TestSetFailureLimit(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	tb.SetFailureLimit(1)
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)
	tb.MarkFailure(1)
	if tb.Available(1, 1) {
		t.Fatal("limit 1 not honored")
	}
	tb.SetFailureLimit(0) // restores the default
	if !tb.Available(1, 1) {
		t.Fatal("default limit not restored")
	}
}

func TestMarkFailureUnknownPeerTracked(t *testing.T) {
	// Failures can precede the first broadcast (we dialed a configured
	// peer that never gossiped); the streak must survive until Update.
	tb := NewTable(0, 8, 0.3)
	tb.MarkFailure(7)
	tb.MarkFailure(7)
	if got := tb.Failures(7); got != 2 {
		t.Fatalf("failures = %d", got)
	}
	if tb.Available(7, 0) {
		t.Fatal("never-heard peer reported available")
	}
}

func TestHealthSnapshot(t *testing.T) {
	tb := NewTable(0, 8, 0.3)
	_ = tb.Update(sample(2, 0.5, 0.25, 0.125, 0), 0) // fresh at now=1
	_ = tb.Update(sample(1, 1, 1, 1, 0), 0)          // will look stale
	tb.Bump(2)
	tb.MarkFailure(1)
	tb.MarkFailure(3) // failures before any broadcast

	h := tb.Health(20) // node 1 and 2 are 20s old, past the 8s timeout
	if len(h) != 3 || h[0].Node != 1 || h[1].Node != 2 || h[2].Node != 3 {
		t.Fatalf("health rows = %+v", h)
	}
	if h[0].Available || h[1].Available {
		t.Fatal("stale peers reported available")
	}

	h = tb.Health(1)
	if !h[1].Available || h[1].Bumps != 1 || h[1].AgeSeconds != 1 {
		t.Fatalf("node 2 row = %+v", h[1])
	}
	if h[1].CPULoad != 0.5 || h[1].DiskLoad != 0.25 || h[1].NetLoad != 0.125 {
		t.Fatalf("node 2 loads = %+v", h[1])
	}
	if h[0].Failures != 1 || !h[0].Available {
		// One failure is under DefaultFailureLimit; still available.
		t.Fatalf("node 1 row = %+v", h[0])
	}
	if h[2].HaveSample || h[2].Available || h[2].AgeSeconds != -1 || h[2].Failures != 1 {
		t.Fatalf("node 3 (no sample) row = %+v", h[2])
	}

	tb.MarkFailure(1)
	tb.MarkFailure(1)
	if h = tb.Health(1); h[0].Available {
		t.Fatal("failure streak at limit still reported available")
	}
}
