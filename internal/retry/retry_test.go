package retry

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	want := []time.Duration{0, 10, 20, 40, 80, 80, 80}
	for streak, w := range want {
		w *= time.Millisecond
		if got := Backoff(streak, base, max); got != w {
			t.Errorf("Backoff(%d) = %v want %v", streak, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	if got := Backoff(1, 0, 0); got != DefaultBaseDelay {
		t.Fatalf("default base = %v", got)
	}
	if got := Backoff(100, 0, 0); got != DefaultMaxDelay {
		t.Fatalf("default cap = %v", got)
	}
}

func TestBackoffLargeStreakNoOverflow(t *testing.T) {
	// 2^streak overflows int64 long before streak 500; the cap must win.
	if got := Backoff(500, time.Second, time.Minute); got != time.Minute {
		t.Fatalf("Backoff(500) = %v", got)
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Policy{MaxAttempts: 3}.Do(nil, func(int) error { calls++; return nil })
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	err := p.Do(nil, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttemptBudget(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	if err := p.Do(nil, func(int) error { calls++; return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDoHonorsWallClockBudget(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	// The first backoff sleep (50ms) would blow the 10ms budget, so Do
	// must stop after one attempt instead of sleeping.
	p := Policy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, Budget: 10 * time.Millisecond}
	start := time.Now()
	if err := p.Do(nil, func(int) error { calls++; return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatalf("Do slept past its budget (%v)", time.Since(start))
	}
}

func TestDoStopChannelAborts(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	calls := 0
	err := Policy{MaxAttempts: 5}.Do(stop, func(int) error { calls++; return errors.New("x") })
	if err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
	if calls != 0 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDoStopDuringSleep(t *testing.T) {
	stop := make(chan struct{})
	p := Policy{MaxAttempts: 2, BaseDelay: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- p.Do(stop, func(int) error { return errors.New("x") }) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != ErrStopped {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not abort when stop closed mid-sleep")
	}
}

func TestDelayJitterStaysBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.2}
	for i := 0; i < 200; i++ {
		d := p.delay(1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±20%% of 100ms", d)
		}
	}
}
