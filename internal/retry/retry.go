// Package retry implements the fault-tolerance primitives the live cluster
// shares: deadline-capped exponential backoff with jitter and per-operation
// attempt budgets. The paper's round-robin DNS keeps resolving to every
// node, so each node must expect stale load views and unreachable peers;
// this package is the "try again, but not forever" half of that contract —
// the degradation ladder's middle rung between "first dial failed" and
// "give up with 503 + Retry-After".
package retry

import (
	"errors"
	"math/rand"
	"time"
)

// Policy bounds one retried operation.
type Policy struct {
	// MaxAttempts is the total number of tries (first try included).
	// Zero or negative means 1: a single attempt, no retry.
	MaxAttempts int
	// BaseDelay is the sleep after the first failure; each later failure
	// doubles it. Zero means DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Zero means DefaultMaxDelay.
	MaxDelay time.Duration
	// Jitter randomizes each sleep within ±Jitter fraction of itself
	// (0.2 → the sleep lands in [0.8d, 1.2d]), de-synchronizing peers
	// that all noticed the same failure at once. Zero means no jitter.
	Jitter float64
	// Budget caps the wall-clock of the whole operation, sleeps included.
	// Once the budget would be exceeded by the next sleep, Do returns the
	// last error instead of sleeping. Zero means no budget.
	Budget time.Duration
}

// Defaults used when Policy fields are zero.
const (
	DefaultBaseDelay = 100 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// ErrStopped reports that the stop channel closed before fn succeeded.
var ErrStopped = errors.New("retry: stopped")

// Backoff returns the deterministic exponential delay for a failure streak:
// base·2^(streak-1), capped at max. A streak below 1 yields zero — callers
// can feed a consecutive-error counter straight in and pay nothing on the
// first error.
func Backoff(streak int, base, max time.Duration) time.Duration {
	if streak < 1 {
		return 0
	}
	if base <= 0 {
		base = DefaultBaseDelay
	}
	if max <= 0 {
		max = DefaultMaxDelay
	}
	d := base
	for i := 1; i < streak; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// attempts returns the effective attempt budget.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay returns the jittered sleep after attempt number attempt (1-based).
func (p Policy) delay(attempt int) time.Duration {
	d := Backoff(attempt, p.BaseDelay, p.MaxDelay)
	if p.Jitter > 0 && d > 0 {
		// rand's global source is goroutine-safe; determinism is not
		// needed here (tests pin Jitter to 0).
		f := 1 + p.Jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Do runs fn until it returns nil, the attempt budget is spent, the
// wall-clock budget would be exceeded, or stop closes. It returns nil on
// success, the last fn error once the budgets are spent, or ErrStopped.
// fn receives the 1-based attempt number. A nil stop channel never fires.
func (p Policy) Do(stop <-chan struct{}, fn func(attempt int) error) error {
	deadline := time.Time{}
	if p.Budget > 0 {
		deadline = time.Now().Add(p.Budget)
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		select {
		case <-stop:
			return ErrStopped
		default:
		}
		if lastErr = fn(attempt); lastErr == nil {
			return nil
		}
		if attempt >= p.attempts() {
			return lastErr
		}
		d := p.delay(attempt)
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			return lastErr
		}
		timer := time.NewTimer(d)
		select {
		case <-stop:
			timer.Stop()
			return ErrStopped
		case <-timer.C:
		}
	}
}
