package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomStore builds an arbitrary layout: 4-10 nodes, files with replica
// sets of R=1..4 (canonical form: owner-led, duplicate-free), a sprinkle
// of CGI endpoints.
func randomStore(rng *rand.Rand) *Store {
	nodes := 4 + rng.Intn(7)
	s := NewStore(nodes)
	count := 1 + rng.Intn(40)
	for i := 0; i < count; i++ {
		f := File{
			Path: fmt.Sprintf("/p%02d/doc%04d.dat", rng.Intn(8), i),
			Size: rng.Int63n(1 << 20),
		}
		r := 1 + rng.Intn(4)
		if r > nodes {
			r = nodes
		}
		perm := rng.Perm(nodes)[:r]
		f.Owner = perm[0]
		if r > 1 {
			f.Replicas = perm
		}
		if rng.Intn(6) == 0 {
			f.CGI = true
			f.CGIOps = float64(1+rng.Intn(100)) * 1e5
			f.Replicas = nil // CGI endpoints are compute, not data; keep R=1
		}
		s.MustAdd(f)
	}
	return s
}

// TestManifestRoundTripProperty is the randomized property test: any
// store survives Write -> Read -> Write with byte-identical output and
// semantically identical files, replica sets included.
func TestManifestRoundTripProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := randomStore(rng)
		var buf1 bytes.Buffer
		if err := WriteManifest(&buf1, s); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadManifest(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, buf1.String())
		}
		if got.Nodes() != s.Nodes() || got.Len() != s.Len() {
			t.Fatalf("trial %d: shape changed: %d/%d nodes, %d/%d files",
				trial, got.Nodes(), s.Nodes(), got.Len(), s.Len())
		}
		for _, p := range s.Paths() {
			want, _ := s.Lookup(p)
			have, ok := got.Lookup(p)
			if !ok {
				t.Fatalf("trial %d: %s lost in round trip", trial, p)
			}
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("trial %d: %s changed: %+v != %+v", trial, p, want, have)
			}
			if !reflect.DeepEqual(want.ReplicaSet(), have.ReplicaSet()) {
				t.Fatalf("trial %d: %s replica set changed: %v != %v",
					trial, p, want.ReplicaSet(), have.ReplicaSet())
			}
		}
		var buf2 bytes.Buffer
		if err := WriteManifest(&buf2, got); err != nil {
			t.Fatalf("trial %d: rewrite: %v", trial, err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("trial %d: manifest not byte-identical after round trip:\n--- first\n%s--- second\n%s",
				trial, buf1.String(), buf2.String())
		}
	}
}

// TestManifestLegacySingleOwner pins backward compatibility: a manifest
// written before replica sets existed (bare integer owner column) loads
// as R=1, and writing it back emits the identical bare-integer form.
func TestManifestLegacySingleOwner(t *testing.T) {
	legacy := strings.Join([]string{
		"# SWEB document manifest: 3 files on 4 nodes",
		"nodes 4",
		"/cgi-bin/query.cgi 512 3 cgi 4e+07",
		"/docs/a.dat 2048 0",
		"/docs/b.dat 4096 2",
		"",
	}, "\n")
	s, err := ReadManifest(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Paths() {
		f, _ := s.Lookup(p)
		if f.Replicas != nil {
			t.Fatalf("%s: legacy entry parsed with explicit replicas %v", p, f.Replicas)
		}
		if got := f.ReplicaSet(); len(got) != 1 || got[0] != f.Owner {
			t.Fatalf("%s: legacy entry replica set = %v, want [%d]", p, got, f.Owner)
		}
	}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, s); err != nil {
		t.Fatal(err)
	}
	if buf.String() != legacy {
		t.Fatalf("legacy manifest not preserved:\n--- in\n%s--- out\n%s", legacy, buf.String())
	}
}

// TestReplicaValidation pins the malformed-set rejections and the runtime
// mutations' invariants.
func TestReplicaValidation(t *testing.T) {
	s := NewStore(4)
	if err := s.Add(File{Path: "/dup", Size: 1, Owner: 0, Replicas: []int{0, 2, 2}}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if err := s.Add(File{Path: "/lead", Size: 1, Owner: 0, Replicas: []int{1, 0}}); err == nil {
		t.Fatal("replica set not led by owner accepted")
	}
	if err := s.Add(File{Path: "/range", Size: 1, Owner: 0, Replicas: []int{0, 9}}); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
	if _, err := ReadManifest(strings.NewReader("nodes 4\n/a 1 0,2,2\n")); err == nil {
		t.Fatal("manifest with duplicate replicas accepted")
	}

	s.MustAdd(File{Path: "/doc", Size: 8, Owner: 1})
	if err := s.AddReplica("/doc", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AddReplica("/doc", 3); err != nil {
		t.Fatalf("idempotent AddReplica errored: %v", err)
	}
	if got := s.Replicas("/doc"); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("replicas = %v, want [1 3]", got)
	}
	if err := s.DropReplica("/doc", 1); err == nil {
		t.Fatal("dropping the primary replica accepted")
	}
	if err := s.DropReplica("/doc", 3); err != nil {
		t.Fatal(err)
	}
	f, _ := s.Lookup("/doc")
	if f.Replicas != nil {
		t.Fatalf("drop back to R=1 should normalize to nil, got %v", f.Replicas)
	}
}
