package storage

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestStoreAddAndLookup(t *testing.T) {
	s := NewStore(3)
	if err := s.Add(File{Path: "/a", Size: 10, Owner: 2}); err != nil {
		t.Fatal(err)
	}
	f, ok := s.Lookup("/a")
	if !ok || f.Size != 10 || f.Owner != 2 {
		t.Fatalf("lookup = %+v ok=%v", f, ok)
	}
	if _, ok := s.Lookup("/missing"); ok {
		t.Fatal("found missing file")
	}
	owner, ok := s.Owner("/a")
	if !ok || owner != 2 {
		t.Fatalf("owner = %d ok=%v", owner, ok)
	}
	if _, ok := s.Owner("/missing"); ok {
		t.Fatal("owner of missing file")
	}
}

func TestStoreAddErrors(t *testing.T) {
	s := NewStore(2)
	cases := []struct {
		f    File
		want string
	}{
		{File{Path: "", Size: 1, Owner: 0}, "empty path"},
		{File{Path: "/x", Size: -1, Owner: 0}, "negative size"},
		{File{Path: "/x", Size: 1, Owner: 2}, "out of range"},
		{File{Path: "/x", Size: 1, Owner: -1}, "out of range"},
	}
	for _, c := range cases {
		if err := s.Add(c.f); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Add(%+v) = %v, want %q", c.f, err, c.want)
		}
	}
	s.MustAdd(File{Path: "/dup", Size: 1, Owner: 0})
	if err := s.Add(File{Path: "/dup", Size: 1, Owner: 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(1).MustAdd(File{Path: ""})
}

func TestNewStorePanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(0)
}

func TestLookupReturnsCopy(t *testing.T) {
	s := NewStore(1)
	s.MustAdd(File{Path: "/a", Size: 5, Owner: 0})
	f, _ := s.Lookup("/a")
	f.Size = 999
	g, _ := s.Lookup("/a")
	if g.Size != 5 {
		t.Fatal("Lookup leaked a mutable reference")
	}
}

func TestOwnedByAndPaths(t *testing.T) {
	s := NewStore(2)
	s.MustAdd(File{Path: "/b", Size: 1, Owner: 0})
	s.MustAdd(File{Path: "/a", Size: 1, Owner: 0})
	s.MustAdd(File{Path: "/c", Size: 1, Owner: 1})
	got := s.OwnedBy(0)
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("OwnedBy(0) = %v", got)
	}
	if s.OwnedBy(5) != nil || s.OwnedBy(-1) != nil {
		t.Fatal("out-of-range OwnedBy should be nil")
	}
	all := s.Paths()
	if len(all) != 3 || all[0] != "/a" || all[2] != "/c" {
		t.Fatalf("Paths = %v", all)
	}
}

func TestBytesByOwnerAndTotal(t *testing.T) {
	s := NewStore(2)
	s.MustAdd(File{Path: "/a", Size: 10, Owner: 0})
	s.MustAdd(File{Path: "/b", Size: 30, Owner: 1})
	s.MustAdd(File{Path: "/c", Size: 5, Owner: 1})
	by := s.BytesByOwner()
	if by[0] != 10 || by[1] != 35 {
		t.Fatalf("BytesByOwner = %v", by)
	}
	if s.TotalBytes() != 45 || s.Len() != 3 {
		t.Fatalf("total=%d len=%d", s.TotalBytes(), s.Len())
	}
}

func TestUniformSetPlacement(t *testing.T) {
	s := NewStore(3)
	paths := UniformSet(s, 9, 1024)
	if len(paths) != 9 || s.Len() != 9 {
		t.Fatalf("len = %d", len(paths))
	}
	for i, p := range paths {
		f, _ := s.Lookup(p)
		if f.Size != 1024 {
			t.Fatalf("size = %d", f.Size)
		}
		if f.Owner != i%3 {
			t.Fatalf("file %d owned by %d", i, f.Owner)
		}
	}
	by := s.BytesByOwner()
	if by[0] != by[1] || by[1] != by[2] {
		t.Fatalf("uniform set unbalanced: %v", by)
	}
}

func TestNonUniformSetSizesInRange(t *testing.T) {
	s := NewStore(4)
	rng := rand.New(rand.NewSource(1))
	paths := NonUniformSet(s, 100, 100, 1000, rng)
	for _, p := range paths {
		f, _ := s.Lookup(p)
		if f.Size < 100 || f.Size > 1000 {
			t.Fatalf("size %d out of range", f.Size)
		}
	}
}

func TestNonUniformSetRejectsBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NonUniformSet(NewStore(1), 1, 10, 5, rand.New(rand.NewSource(1)))
}

func TestCollectionSetBandsGrowWithNode(t *testing.T) {
	s := NewStore(4)
	rng := rand.New(rand.NewSource(2))
	CollectionSet(s, 20, 100, 1<<20, rng)
	by := s.BytesByOwner()
	for i := 1; i < len(by); i++ {
		if by[i] <= by[i-1] {
			t.Fatalf("collection bytes not increasing: %v", by)
		}
	}
	// Every node owns exactly its own collection.
	for node := 0; node < 4; node++ {
		for _, p := range s.OwnedBy(node) {
			if !strings.HasPrefix(p, "/coll") {
				t.Fatalf("unexpected path %q", p)
			}
		}
		if len(s.OwnedBy(node)) != 20 {
			t.Fatalf("node %d owns %d files", node, len(s.OwnedBy(node)))
		}
	}
}

func TestSkewedSet(t *testing.T) {
	s := NewStore(6)
	hot := SkewedSet(s, 1536<<10)
	f, ok := s.Lookup(hot)
	if !ok || f.Owner != 0 || f.Size != 1536<<10 {
		t.Fatalf("hot file = %+v", f)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestADLSetGroups(t *testing.T) {
	s := NewStore(2)
	rng := rand.New(rand.NewSource(3))
	meta, browse, full := ADLSet(s, 10, rng)
	if len(meta) != 10 || len(browse) != 10 || len(full) != 10 {
		t.Fatal("wrong group sizes")
	}
	for i := range meta {
		m, _ := s.Lookup(meta[i])
		b, _ := s.Lookup(browse[i])
		f, _ := s.Lookup(full[i])
		if !(m.Size < b.Size && b.Size < f.Size) {
			t.Fatalf("size ordering violated: %d %d %d", m.Size, b.Size, f.Size)
		}
	}
}

func TestAddCGISet(t *testing.T) {
	s := NewStore(3)
	paths := AddCGISet(s, 5, 1e7, 2048)
	for i, p := range paths {
		f, _ := s.Lookup(p)
		if !f.CGI || f.CGIOps != 1e7 || f.Size != 2048 || f.Owner != i%3 {
			t.Fatalf("cgi file = %+v", f)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	s := NewStore(3)
	s.MustAdd(File{Path: "/a/b.html", Size: 123, Owner: 0})
	s.MustAdd(File{Path: "/big.img", Size: 1 << 20, Owner: 2})
	s.MustAdd(File{Path: "/cgi-bin/q.cgi", Size: 512, Owner: 1, CGI: true, CGIOps: 4e7})
	var buf bytes.Buffer
	if err := WriteManifest(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != 3 || got.Len() != 3 {
		t.Fatalf("nodes=%d len=%d", got.Nodes(), got.Len())
	}
	for _, p := range s.Paths() {
		want, _ := s.Lookup(p)
		have, ok := got.Lookup(p)
		if !ok || !reflect.DeepEqual(have, want) {
			t.Fatalf("file %q: %+v != %+v", p, have, want)
		}
	}
}

func TestManifestErrors(t *testing.T) {
	cases := []string{
		"",                            // empty
		"/a 1 0\n",                    // entry before nodes
		"nodes 0\n",                   // bad node count
		"nodes x\n",                   // non-numeric
		"nodes 2\nnodes 2\n",          // duplicate directive
		"nodes 2\n/a\n",               // short line
		"nodes 2\n/a big 0\n",         // bad size
		"nodes 2\n/a 1 z\n",           // bad owner
		"nodes 2\n/a 1 5\n",           // owner out of range
		"nodes 2\n/a 1 0 cgi\n",       // cgi without ops
		"nodes 2\n/a 1 0 cgi -3\n",    // negative ops
		"nodes 2\n/a 1 0 dynamic 5\n", // unknown trailer
		"nodes 2\n/a 1 0\n/a 2 1\n",   // duplicate path
	}
	for _, in := range cases {
		if _, err := ReadManifest(strings.NewReader(in)); err == nil {
			t.Errorf("manifest %q parsed without error", in)
		}
	}
}

func TestManifestCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nnodes 2\n# a file\n/a 10 1\n"
	s, err := ReadManifest(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}
