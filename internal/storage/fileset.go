package storage

import (
	"fmt"
	"math"
	"math/rand"
)

// The generators below build the document corpora used in the paper's
// experiments: uniform 1 KB and 1.5 MB sets (Tables 1, 2, 4), the
// non-uniform 100 B - 1.5 MB mix (Table 3), the single hot file of the
// skewed test (Sec. 4.2), and an Alexandria-Digital-Library-like mix of
// metadata, browse images, and full-resolution scenes for the examples.

// UniformSet creates count files of exactly size bytes, placed round-robin
// across the store's nodes.
func UniformSet(s *Store, count int, size int64) []string {
	paths := make([]string, 0, count)
	for i := 0; i < count; i++ {
		p := fmt.Sprintf("/docs/u%06d.dat", i)
		s.MustAdd(File{Path: p, Size: size, Owner: i % s.Nodes()})
		paths = append(paths, p)
	}
	return paths
}

// NonUniformSet creates count files with sizes drawn uniformly between
// minSize and maxSize (the paper's "sizes varying from short, approximately
// 100 bytes, to relatively long, approximately 1.5MB"), placed round-robin.
// Placement by index (not by size) reproduces the paper's heterogeneous
// load: DNS rotation spreads request *counts* evenly while the byte demand
// fluctuates node to node within each burst.
func NonUniformSet(s *Store, count int, minSize, maxSize int64, rng *rand.Rand) []string {
	if minSize <= 0 || maxSize < minSize {
		panic("storage: NonUniformSet needs 0 < minSize <= maxSize")
	}
	paths := make([]string, 0, count)
	for i := 0; i < count; i++ {
		size := minSize + rng.Int63n(maxSize-minSize+1)
		p := fmt.Sprintf("/docs/n%06d.dat", i)
		s.MustAdd(File{Path: p, Size: size, Owner: i % s.Nodes()})
		paths = append(paths, p)
	}
	return paths
}

// CollectionSet builds the non-uniform corpus the way a digital library
// lays data out: each node's dedicated disk holds one collection, and the
// collections have very different size profiles (metadata pages, browse
// thumbnails, full-resolution scenes). Request counts spread evenly under
// DNS rotation, but the byte demand per *owner* is grossly uneven — the
// structural weakness of the pure file-locality policy in Table 3.
// perNode files are created per node; sizes for node k are drawn uniformly
// from the band [minSize·g^k, minSize·g^(k+1)] where g spans the bands
// geometrically up to maxSize.
func CollectionSet(s *Store, perNode int, minSize, maxSize int64, rng *rand.Rand) []string {
	if minSize <= 0 || maxSize < minSize {
		panic("storage: CollectionSet needs 0 < minSize <= maxSize")
	}
	n := s.Nodes()
	g := math.Pow(float64(maxSize)/float64(minSize), 1/float64(n))
	paths := make([]string, 0, perNode*n)
	for node := 0; node < n; node++ {
		lo := float64(minSize) * math.Pow(g, float64(node))
		hi := lo * g
		for i := 0; i < perNode; i++ {
			size := int64(lo + rng.Float64()*(hi-lo))
			if size > maxSize {
				size = maxSize
			}
			p := fmt.Sprintf("/coll%d/doc%04d.dat", node, i)
			s.MustAdd(File{Path: p, Size: size, Owner: node})
			paths = append(paths, p)
		}
	}
	return paths
}

// SkewedSet creates a corpus where every request will target one hot file
// owned by node 0, "effectively reducing the parallel system to a single
// server" under the file-locality policy.
func SkewedSet(s *Store, size int64) string {
	p := "/docs/hot.dat"
	s.MustAdd(File{Path: p, Size: size, Owner: 0})
	return p
}

// ADLSet builds an Alexandria Digital Library style corpus: small HTML
// metadata pages, mid-size browse thumbnails, and large full-resolution
// map/aerial-photograph scenes. It returns the three path groups.
func ADLSet(s *Store, scenes int, rng *rand.Rand) (meta, browse, full []string) {
	for i := 0; i < scenes; i++ {
		owner := i % s.Nodes()
		m := fmt.Sprintf("/adl/meta/scene%04d.html", i)
		b := fmt.Sprintf("/adl/browse/scene%04d.gif", i)
		f := fmt.Sprintf("/adl/full/scene%04d.img", i)
		s.MustAdd(File{Path: m, Size: 2<<10 + int64(rng.Intn(2<<10)), Owner: owner})
		s.MustAdd(File{Path: b, Size: 40<<10 + int64(rng.Intn(40<<10)), Owner: owner})
		s.MustAdd(File{Path: f, Size: 1<<20 + int64(rng.Intn(1<<20)), Owner: owner})
		meta = append(meta, m)
		browse = append(browse, b)
		full = append(full, f)
	}
	return meta, browse, full
}

// Replicate extends every non-CGI document's replica set to r copies,
// placing the extra replicas on the nodes following the owner in id order
// (owner, owner+1, ... mod n). The spread is a pure function of the
// manifest, so every node of a deployment computes the identical layout
// from the shared manifest with no coordination — the static analogue of
// the rebalancer's heat-driven placement. r is clamped to the cluster
// size; r <= 1 is a no-op.
func Replicate(s *Store, r int) {
	if r > s.Nodes() {
		r = s.Nodes()
	}
	if r <= 1 {
		return
	}
	for _, p := range s.Paths() {
		f, _ := s.Lookup(p)
		if f.CGI {
			continue
		}
		for k := 1; k < r; k++ {
			if err := s.AddReplica(p, (f.Owner+k)%s.Nodes()); err != nil {
				panic(err)
			}
		}
	}
}

// AddCGISet registers count CGI endpoints with the given per-invocation
// computational demand, placed round-robin. CGI results are small (the
// paper's CGI cost is compute, not bytes).
func AddCGISet(s *Store, count int, ops float64, resultSize int64) []string {
	paths := make([]string, 0, count)
	for i := 0; i < count; i++ {
		p := fmt.Sprintf("/cgi-bin/query%03d.cgi", i)
		s.MustAdd(File{Path: p, Size: resultSize, Owner: i % s.Nodes(), CGI: true, CGIOps: ops})
		paths = append(paths, p)
	}
	return paths
}
