// Package storage models SWEB's distributed file layout: every document
// lives on one or more nodes' dedicated local disks and is visible to all
// other nodes through NFS cross-mounts. The broker consults the ownership
// map ("determines the server on whose local disk the file resides") and a
// remote fetch pays the interconnect instead of the local disk channel.
// Documents may carry an R-way replica set: the owner is the primary
// replica, extra replicas are full copies on other nodes' disks, and the
// rebalance controller mutates the set at runtime — so the Store is
// guarded by a lock: brokers read it on every request while the
// controller adds and drains replicas underneath them.
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// File describes one served document.
type File struct {
	// Path is the URL path, e.g. "/maps/goleta.gif".
	Path string
	// Size is the response body size in bytes.
	Size int64
	// Owner is the node whose local disk holds the primary copy.
	Owner int
	// Replicas is the full ordered replica set, Replicas[0] == Owner.
	// A nil slice means the single-owner layout (R=1); ReplicaSet
	// normalizes the two forms.
	Replicas []int
	// CGI marks an executable resource; CGIOps is its computational demand
	// in CPU operations (estimated by the oracle's user-supplied table).
	CGI    bool
	CGIOps float64
}

// ReplicaSet returns the ordered replica node list, never empty: the
// primary owner first, then the extra replicas. The returned slice must
// not be mutated.
func (f File) ReplicaSet() []int {
	if len(f.Replicas) == 0 {
		return []int{f.Owner}
	}
	return f.Replicas
}

// HasReplica reports whether node holds a local copy of the file.
func (f File) HasReplica(node int) bool {
	if len(f.Replicas) == 0 {
		return node == f.Owner
	}
	for _, r := range f.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// Store is the cluster-wide document layout.
type Store struct {
	mu      sync.RWMutex
	nodes   int
	files   map[string]*File
	byOwner [][]string // owner -> paths (primary copies only)
	total   int64      // total corpus bytes (primary copies)
}

// NewStore creates an empty layout for a cluster of n nodes.
func NewStore(n int) *Store {
	if n <= 0 {
		panic("storage: store needs at least one node")
	}
	return &Store{
		nodes:   n,
		files:   make(map[string]*File),
		byOwner: make([][]string, n),
	}
}

// Nodes returns the cluster size the layout was built for.
func (s *Store) Nodes() int { return s.nodes }

// Len returns the number of files.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// TotalBytes returns the corpus size (each document counted once).
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// normalizeReplicas validates f's replica set and returns it in canonical
// form: nil for R=1, otherwise a copy with Replicas[0] == Owner.
func (s *Store) normalizeReplicas(f File) ([]int, error) {
	if len(f.Replicas) == 0 {
		return nil, nil
	}
	if f.Replicas[0] != f.Owner {
		return nil, fmt.Errorf("storage: %s: replica set %v must start with owner %d", f.Path, f.Replicas, f.Owner)
	}
	seen := make(map[int]bool, len(f.Replicas))
	for _, r := range f.Replicas {
		if r < 0 || r >= s.nodes {
			return nil, fmt.Errorf("storage: %s: replica %d out of range [0,%d)", f.Path, r, s.nodes)
		}
		if seen[r] {
			return nil, fmt.Errorf("storage: %s: duplicate replica %d", f.Path, r)
		}
		seen[r] = true
	}
	if len(f.Replicas) == 1 {
		return nil, nil
	}
	return append([]int(nil), f.Replicas...), nil
}

// Add registers a file. Adding a duplicate path, an out-of-range owner, or
// a malformed replica set (duplicates, replicas not led by the owner) is
// an error.
func (s *Store) Add(f File) error {
	if f.Path == "" {
		return fmt.Errorf("storage: empty path")
	}
	if f.Size < 0 {
		return fmt.Errorf("storage: %s: negative size", f.Path)
	}
	if f.Owner < 0 || f.Owner >= s.nodes {
		return fmt.Errorf("storage: %s: owner %d out of range [0,%d)", f.Path, f.Owner, s.nodes)
	}
	reps, err := s.normalizeReplicas(f)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.files[f.Path]; dup {
		return fmt.Errorf("storage: %s: duplicate path", f.Path)
	}
	cp := f
	cp.Replicas = reps
	s.files[f.Path] = &cp
	s.byOwner[f.Owner] = append(s.byOwner[f.Owner], f.Path)
	s.total += f.Size
	return nil
}

// MustAdd is Add that panics on error, for test and generator code.
func (s *Store) MustAdd(f File) {
	if err := s.Add(f); err != nil {
		panic(err)
	}
}

// AddReplica extends path's replica set with node — the rebalance
// controller's "re-replicate" mutation. Adding a node that already holds
// a replica is a no-op (every node applies the same manifest broadcast,
// so the mutation must be idempotent).
func (s *Store) AddReplica(path string, node int) error {
	if node < 0 || node >= s.nodes {
		return fmt.Errorf("storage: %s: replica %d out of range [0,%d)", path, node, s.nodes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("storage: %s: no such file", path)
	}
	if f.HasReplica(node) {
		return nil
	}
	if len(f.Replicas) == 0 {
		f.Replicas = []int{f.Owner}
	}
	f.Replicas = append(f.Replicas, node)
	return nil
}

// DropReplica removes node from path's replica set — the "drain"
// mutation. The primary owner cannot be drained; dropping a node that
// holds no replica is a no-op.
func (s *Store) DropReplica(path string, node int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("storage: %s: no such file", path)
	}
	if node == f.Owner {
		return fmt.Errorf("storage: %s: cannot drop primary replica %d", path, node)
	}
	if len(f.Replicas) == 0 {
		return nil
	}
	// Copy-on-write: Lookup hands out the old slice to concurrent readers,
	// so the mutation must build a fresh backing array.
	out := make([]int, 0, len(f.Replicas))
	for _, r := range f.Replicas {
		if r != node {
			out = append(out, r)
		}
	}
	if len(out) == 1 {
		out = nil
	}
	f.Replicas = out
	return nil
}

// Lookup returns the file metadata for path. The returned File's replica
// slice is shared and must not be mutated (use AddReplica/DropReplica).
func (s *Store) Lookup(path string) (File, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return File{}, false
	}
	return *f, true
}

// Owner returns the primary owning node for path.
func (s *Store) Owner(path string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return 0, false
	}
	return f.Owner, true
}

// Replicas returns path's full replica node list (primary first), nil when
// the path is unknown.
func (s *Store) Replicas(path string) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return nil
	}
	return append([]int(nil), f.ReplicaSet()...)
}

// OwnedBy returns the sorted list of paths whose primary copy node holds.
func (s *Store) OwnedBy(node int) []string {
	if node < 0 || node >= s.nodes {
		return nil
	}
	s.mu.RLock()
	out := append([]string(nil), s.byOwner[node]...)
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ReplicatedOn returns the sorted list of paths with any replica (primary
// included) on node.
func (s *Store) ReplicatedOn(node int) []string {
	if node < 0 || node >= s.nodes {
		return nil
	}
	s.mu.RLock()
	var out []string
	for p, f := range s.files {
		if f.HasReplica(node) {
			out = append(out, p)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Paths returns every path in sorted order.
func (s *Store) Paths() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// BytesByOwner returns the per-node primary-copy bytes, useful for
// checking placement balance.
func (s *Store) BytesByOwner() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, s.nodes)
	for _, f := range s.files {
		out[f.Owner] += f.Size
	}
	return out
}

// BytesByReplica returns the per-node disk bytes including extra replicas
// — what each node's disk actually holds.
func (s *Store) BytesByReplica() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, s.nodes)
	for _, f := range s.files {
		for _, r := range f.ReplicaSet() {
			out[r] += f.Size
		}
	}
	return out
}
