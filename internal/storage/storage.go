// Package storage models SWEB's distributed file layout: every document
// lives on exactly one node's dedicated local disk and is visible to all
// other nodes through NFS cross-mounts. The broker consults the ownership
// map ("determines the server on whose local disk the file resides") and a
// remote fetch pays the interconnect instead of the local disk channel.
package storage

import (
	"fmt"
	"sort"
)

// File describes one served document.
type File struct {
	// Path is the URL path, e.g. "/maps/goleta.gif".
	Path string
	// Size is the response body size in bytes.
	Size int64
	// Owner is the node whose local disk holds the file.
	Owner int
	// CGI marks an executable resource; CGIOps is its computational demand
	// in CPU operations (estimated by the oracle's user-supplied table).
	CGI    bool
	CGIOps float64
}

// Store is the cluster-wide document layout.
type Store struct {
	nodes   int
	files   map[string]*File
	byOwner [][]string // owner -> sorted paths
	total   int64      // total corpus bytes
}

// NewStore creates an empty layout for a cluster of n nodes.
func NewStore(n int) *Store {
	if n <= 0 {
		panic("storage: store needs at least one node")
	}
	return &Store{
		nodes:   n,
		files:   make(map[string]*File),
		byOwner: make([][]string, n),
	}
}

// Nodes returns the cluster size the layout was built for.
func (s *Store) Nodes() int { return s.nodes }

// Len returns the number of files.
func (s *Store) Len() int { return len(s.files) }

// TotalBytes returns the corpus size.
func (s *Store) TotalBytes() int64 { return s.total }

// Add registers a file. Adding a duplicate path or an out-of-range owner is
// an error.
func (s *Store) Add(f File) error {
	if f.Path == "" {
		return fmt.Errorf("storage: empty path")
	}
	if f.Size < 0 {
		return fmt.Errorf("storage: %s: negative size", f.Path)
	}
	if f.Owner < 0 || f.Owner >= s.nodes {
		return fmt.Errorf("storage: %s: owner %d out of range [0,%d)", f.Path, f.Owner, s.nodes)
	}
	if _, dup := s.files[f.Path]; dup {
		return fmt.Errorf("storage: %s: duplicate path", f.Path)
	}
	cp := f
	s.files[f.Path] = &cp
	s.byOwner[f.Owner] = append(s.byOwner[f.Owner], f.Path)
	s.total += f.Size
	return nil
}

// MustAdd is Add that panics on error, for test and generator code.
func (s *Store) MustAdd(f File) {
	if err := s.Add(f); err != nil {
		panic(err)
	}
}

// Lookup returns the file metadata for path.
func (s *Store) Lookup(path string) (File, bool) {
	f, ok := s.files[path]
	if !ok {
		return File{}, false
	}
	return *f, true
}

// Owner returns the owning node for path.
func (s *Store) Owner(path string) (int, bool) {
	f, ok := s.files[path]
	if !ok {
		return 0, false
	}
	return f.Owner, true
}

// OwnedBy returns the sorted list of paths owned by node.
func (s *Store) OwnedBy(node int) []string {
	if node < 0 || node >= s.nodes {
		return nil
	}
	out := append([]string(nil), s.byOwner[node]...)
	sort.Strings(out)
	return out
}

// Paths returns every path in sorted order.
func (s *Store) Paths() []string {
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// BytesByOwner returns the per-node corpus bytes, useful for checking
// placement balance.
func (s *Store) BytesByOwner() []int64 {
	out := make([]int64, s.nodes)
	for _, f := range s.files {
		out[f.Owner] += f.Size
	}
	return out
}
