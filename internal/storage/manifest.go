package storage

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Manifest format: the cluster-wide document map a SWEB deployment shares
// (the live daemons load it at startup; the simulator builds it in memory).
// One file per line:
//
//	# path size owner [cgi <ops>]
//	/adl/meta/scene0001.html 2048 0
//	/cgi-bin/query.cgi 512 3 cgi 4e7
//
// Lines are whitespace-separated; '#' starts a comment.

// WriteManifest serializes the store.
func WriteManifest(w io.Writer, s *Store) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# SWEB document manifest: %d files on %d nodes\n", s.Len(), s.Nodes())
	fmt.Fprintf(bw, "nodes %d\n", s.Nodes())
	paths := s.Paths()
	sort.Strings(paths)
	for _, p := range paths {
		f, _ := s.Lookup(p)
		if f.CGI {
			fmt.Fprintf(bw, "%s %d %d cgi %g\n", f.Path, f.Size, f.Owner, f.CGIOps)
		} else {
			fmt.Fprintf(bw, "%s %d %d\n", f.Path, f.Size, f.Owner)
		}
	}
	return bw.Flush()
}

// ReadManifest parses a manifest into a new Store.
func ReadManifest(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var store *Store
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "nodes" {
			if store != nil {
				return nil, fmt.Errorf("storage: line %d: duplicate nodes directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("storage: line %d: nodes needs a count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("storage: line %d: bad node count %q", lineNo, fields[1])
			}
			store = NewStore(n)
			continue
		}
		if store == nil {
			return nil, fmt.Errorf("storage: line %d: file entry before nodes directive", lineNo)
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("storage: line %d: want 'path size owner'", lineNo)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("storage: line %d: bad size %q", lineNo, fields[1])
		}
		owner, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("storage: line %d: bad owner %q", lineNo, fields[2])
		}
		f := File{Path: fields[0], Size: size, Owner: owner}
		if len(fields) >= 4 {
			if fields[3] != "cgi" || len(fields) != 5 {
				return nil, fmt.Errorf("storage: line %d: trailing fields must be 'cgi <ops>'", lineNo)
			}
			ops, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || ops < 0 {
				return nil, fmt.Errorf("storage: line %d: bad cgi ops %q", lineNo, fields[4])
			}
			f.CGI = true
			f.CGIOps = ops
		}
		if err := store.Add(f); err != nil {
			return nil, fmt.Errorf("storage: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: %v", err)
	}
	if store == nil {
		return nil, fmt.Errorf("storage: empty manifest")
	}
	return store, nil
}
