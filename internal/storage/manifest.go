package storage

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Manifest format: the cluster-wide document map a SWEB deployment shares
// (the live daemons load it at startup; the simulator builds it in memory).
// One file per line:
//
//	# path size replicas [cgi <ops>]
//	/adl/meta/scene0001.html 2048 0
//	/docs/hot.dat 4096 0,2,3
//	/cgi-bin/query.cgi 512 3 cgi 4e7
//
// The third column is the replica set: a comma-separated node list whose
// first entry is the primary owner. A bare integer is the legacy
// single-owner form — old manifests parse unchanged as R=1, and R=1
// entries are written back in exactly that form, so a replica-free
// manifest round-trips byte-identically through a pre-replica reader.
// Lines are whitespace-separated; '#' starts a comment.

// formatReplicas renders the replica column: the bare owner for R=1, the
// comma-joined set otherwise.
func formatReplicas(f File) string {
	reps := f.ReplicaSet()
	if len(reps) == 1 {
		return strconv.Itoa(reps[0])
	}
	parts := make([]string, len(reps))
	for i, r := range reps {
		parts[i] = strconv.Itoa(r)
	}
	return strings.Join(parts, ",")
}

// parseReplicas parses the replica column into (owner, replicas) where
// replicas is nil for the R=1 forms ("3" or a single-element list).
func parseReplicas(field string) (owner int, replicas []int, err error) {
	if !strings.Contains(field, ",") {
		owner, err = strconv.Atoi(field)
		return owner, nil, err
	}
	parts := strings.Split(field, ",")
	replicas = make([]int, len(parts))
	for i, p := range parts {
		n, perr := strconv.Atoi(p)
		if perr != nil {
			return 0, nil, perr
		}
		replicas[i] = n
	}
	owner = replicas[0]
	if len(replicas) == 1 {
		replicas = nil
	}
	return owner, replicas, nil
}

// WriteManifest serializes the store.
func WriteManifest(w io.Writer, s *Store) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# SWEB document manifest: %d files on %d nodes\n", s.Len(), s.Nodes())
	fmt.Fprintf(bw, "nodes %d\n", s.Nodes())
	paths := s.Paths()
	sort.Strings(paths)
	for _, p := range paths {
		f, _ := s.Lookup(p)
		if f.CGI {
			fmt.Fprintf(bw, "%s %d %s cgi %g\n", f.Path, f.Size, formatReplicas(f), f.CGIOps)
		} else {
			fmt.Fprintf(bw, "%s %d %s\n", f.Path, f.Size, formatReplicas(f))
		}
	}
	return bw.Flush()
}

// ReadManifest parses a manifest into a new Store.
func ReadManifest(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var store *Store
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "nodes" {
			if store != nil {
				return nil, fmt.Errorf("storage: line %d: duplicate nodes directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("storage: line %d: nodes needs a count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("storage: line %d: bad node count %q", lineNo, fields[1])
			}
			store = NewStore(n)
			continue
		}
		if store == nil {
			return nil, fmt.Errorf("storage: line %d: file entry before nodes directive", lineNo)
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("storage: line %d: want 'path size replicas'", lineNo)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("storage: line %d: bad size %q", lineNo, fields[1])
		}
		owner, replicas, err := parseReplicas(fields[2])
		if err != nil {
			return nil, fmt.Errorf("storage: line %d: bad replica set %q", lineNo, fields[2])
		}
		f := File{Path: fields[0], Size: size, Owner: owner, Replicas: replicas}
		if len(fields) >= 4 {
			if fields[3] != "cgi" || len(fields) != 5 {
				return nil, fmt.Errorf("storage: line %d: trailing fields must be 'cgi <ops>'", lineNo)
			}
			ops, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || ops < 0 {
				return nil, fmt.Errorf("storage: line %d: bad cgi ops %q", lineNo, fields[4])
			}
			f.CGI = true
			f.CGIOps = ops
		}
		if err := store.Add(f); err != nil {
			return nil, fmt.Errorf("storage: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: %v", err)
	}
	if store == nil {
		return nil, fmt.Errorf("storage: empty manifest")
	}
	return store, nil
}
