package flight

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Record{Status: 200})
	if r.Total() != 0 || r.NotableTotal() != 0 {
		t.Fatal("nil recorder reported nonzero totals")
	}
	d := r.Dump()
	if d.Enabled {
		t.Fatal("nil recorder dumps Enabled=true")
	}
}

func TestNotableClassification(t *testing.T) {
	r := New(Config{Cap: 8, NotableCap: 8, SlowSeconds: 0.5})
	r.Add(Record{Status: 200, TotalSeconds: 0.1})  // healthy
	r.Add(Record{Status: 404, TotalSeconds: 0.1})  // error
	r.Add(Record{Status: 0, TotalSeconds: 0.1})    // failed write
	r.Add(Record{Status: 200, TotalSeconds: 0.9})  // slow
	r.Add(Record{Status: 302, TotalSeconds: 0.01}) // healthy redirect

	if got := r.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	if got := r.NotableTotal(); got != 3 {
		t.Fatalf("NotableTotal = %d, want 3", got)
	}
	d := r.Dump()
	if len(d.Records) != 5 || len(d.Notable) != 3 {
		t.Fatalf("dump sizes = %d/%d, want 5/3", len(d.Records), len(d.Notable))
	}
	wantNotable := []string{NotableError, NotableError, NotableSlow}
	for i, rec := range d.Notable {
		if rec.Notable != wantNotable[i] {
			t.Errorf("notable[%d] class %q, want %q", i, rec.Notable, wantNotable[i])
		}
	}
	// Sequence numbers are assigned in add order.
	for i, rec := range d.Records {
		if rec.Seq != int64(i+1) {
			t.Fatalf("records[%d].Seq = %d, want %d", i, rec.Seq, i+1)
		}
	}
}

func TestSlowDisabled(t *testing.T) {
	r := New(Config{SlowSeconds: -1})
	r.Add(Record{Status: 200, TotalSeconds: 100})
	if got := r.NotableTotal(); got != 0 {
		t.Fatalf("slow routing disabled but NotableTotal = %d", got)
	}
}

func TestRingEvictionKeepsNotable(t *testing.T) {
	// A burst of healthy traffic wraps the recent ring but the one error
	// stays pinned in the notable ring — the whole point of the split.
	r := New(Config{Cap: 4, NotableCap: 4})
	r.Add(Record{Status: 500, Path: "/broken"})
	for i := 0; i < 10; i++ {
		r.Add(Record{Status: 200, Path: "/ok"})
	}
	d := r.Dump()
	if len(d.Records) != 4 {
		t.Fatalf("recent ring holds %d, want 4", len(d.Records))
	}
	for _, rec := range d.Records {
		if rec.Path == "/broken" {
			t.Fatal("evicted record still in recent ring")
		}
	}
	if len(d.Notable) != 1 || d.Notable[0].Path != "/broken" {
		t.Fatalf("notable ring = %+v, want the one /broken error", d.Notable)
	}
	// Oldest-first ordering after wrap.
	for i := 1; i < len(d.Records); i++ {
		if d.Records[i].Seq <= d.Records[i-1].Seq {
			t.Fatal("recent ring not oldest-first after wrap")
		}
	}
}

func TestMergeOrdersAcrossNodes(t *testing.T) {
	d0 := Dump{Records: []Record{
		{Seq: 1, Node: 0, AtSeconds: 0.5},
		{Seq: 2, Node: 0, AtSeconds: 2.0},
	}}
	d1 := Dump{Records: []Record{
		{Seq: 1, Node: 1, AtSeconds: 1.0},
		{Seq: 2, Node: 1, AtSeconds: 0.5},
	}}
	got := Merge([]Dump{d0, d1}, false)
	if len(got) != 4 {
		t.Fatalf("merged %d records, want 4", len(got))
	}
	order := []struct {
		node int
		seq  int64
	}{{0, 1}, {1, 2}, {1, 1}, {0, 2}}
	for i, want := range order {
		if got[i].Node != want.node || got[i].Seq != want.seq {
			t.Fatalf("merge[%d] = node %d seq %d, want node %d seq %d",
				i, got[i].Node, got[i].Seq, want.node, want.seq)
		}
	}
}

func TestRenderRecords(t *testing.T) {
	out := RenderRecords("flight", []Record{
		{Seq: 1, Node: 0, Path: "/a", Status: 200, TTFBSeconds: 0.01,
			TotalSeconds: 0.02, Target: -1, PredictedSeconds: -1, CacheHit: true},
		{Seq: 2, Node: 1, Path: "/b", Status: 302, Redirected: true,
			Target: 2, PredictedSeconds: 0.4, TTFBSeconds: -1},
	})
	for _, want := range []string{"/a", "/b", "ttfb", "302", "C", "R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if empty := RenderRecords("flight", nil); !strings.Contains(empty, "no records") {
		t.Fatalf("empty render missing placeholder:\n%s", empty)
	}
}

func TestSnapshotWritesBundle(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{})
	r.Add(Record{Status: 200, Path: "/x", TotalSeconds: 0.01})
	nodes := []NodeState{
		{
			Name:    "node0",
			Metrics: []byte("# TYPE sweb_inflight gauge\nsweb_inflight 0\n"),
			Status:  []byte(`{"id":0}`),
			Flight:  r.Dump(),
			Conns:   []int{1, 2},
		},
		{Name: "node1", Err: "connection refused"},
	}
	bundle, err := Snapshot(SnapshotOptions{Dir: dir, Reason: "test", CPUSeconds: 0.01}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{
		"MANIFEST.json",
		"profiles/goroutine.pprof",
		"profiles/heap.pprof",
		"node-node0/metrics.prom",
		"node-node0/status.json",
		"node-node0/flight.json",
		"node-node0/conns.json",
		"node-node1/error.txt",
	} {
		fi, err := os.Stat(filepath.Join(bundle, rel))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", rel, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("bundle file %s is empty", rel)
		}
	}
	man, err := os.ReadFile(filepath.Join(bundle, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reason": "test"`, `"node0"`, `"node1"`} {
		if !strings.Contains(string(man), want) {
			t.Fatalf("manifest missing %s:\n%s", want, man)
		}
	}
}

func TestSnapshotNeedsDir(t *testing.T) {
	if _, err := Snapshot(SnapshotOptions{}, nil); err == nil {
		t.Fatal("snapshot without a directory did not error")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"node0":        "node0",
		"alert-x/../y": "alert-x----y",
		"../../etc":    "etc",
		"":             "x",
		"---":          "x",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
