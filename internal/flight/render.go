package flight

import (
	"fmt"

	"sweb/internal/stats"
)

// RenderRecords renders a merged record slice as the aligned table both
// swebtop and the parity tests use — one renderer for both substrates.
func RenderRecords(title string, recs []Record) string {
	tbl := stats.Table{
		Title: title,
		Header: []string{"seq", "t", "node", "conn", "path", "status",
			"bytes", "ttfb", "total", "target", "pred", "flags", "note"},
	}
	for _, r := range recs {
		flags := ""
		if r.Redirected {
			flags += "R"
		}
		if r.CacheHit {
			flags += "C"
		}
		if flags == "" {
			flags = "-"
		}
		tbl.AddRowStrings(
			fmt.Sprintf("%d", r.Seq),
			stats.FormatSeconds(r.AtSeconds),
			fmt.Sprintf("%d", r.Node),
			fmt.Sprintf("%d", r.ConnID),
			r.Path,
			fmt.Sprintf("%d", r.Status),
			fmt.Sprintf("%d", r.Bytes),
			optSeconds(r.TTFBSeconds),
			stats.FormatSeconds(r.TotalSeconds),
			optInt(r.Target),
			optSeconds(r.PredictedSeconds),
			flags,
			r.Notable,
		)
	}
	if tbl.Rows() == 0 {
		tbl.AddRowStrings("-", "-", "-", "-", "(no records)",
			"-", "-", "-", "-", "-", "-", "-", "")
	}
	return tbl.String()
}

func optSeconds(s float64) string {
	if s < 0 {
		return "-"
	}
	return stats.FormatSeconds(s)
}

func optInt(v int) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
