package flight_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"sweb/internal/des"
	"sweb/internal/flight"
	"sweb/internal/live"
	"sweb/internal/simsrv"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// simFlightDumps drives a simulated burst — plus one request for a path
// that does not exist, guaranteeing a notable record — and returns every
// node's black-box dump.
func simFlightDumps(t *testing.T) []flight.Dump {
	t.Helper()
	st := storage.NewStore(3)
	paths := storage.UniformSet(st, 12, 32*1024)
	cl, err := simsrv.New(simsrv.MeikoConfig(3, st))
	if err != nil {
		t.Fatal(err)
	}
	burst := workload.Burst{RPS: 20, DurationSeconds: 5, Jitter: true}
	arr, err := burst.Generate(workload.UniformPicker(paths), nil, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	arr = append(arr, workload.Arrival{At: des.Second, Path: "/no-such-file.html"})
	res := cl.RunSchedule(arr)
	if res.Completed == 0 {
		t.Fatal("simulated burst completed nothing")
	}
	dumps := make([]flight.Dump, 0, cl.Nodes())
	for i := 0; i < cl.Nodes(); i++ {
		dumps = append(dumps, cl.FlightDump(i))
	}
	return dumps
}

// liveFlightDumps drives a short live run — again with one 404 — and
// scrapes every node's /sweb/flight.
func liveFlightDumps(t *testing.T) []flight.Dump {
	t.Helper()
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 8, 4096)
	cl, err := live.Start(live.Options{
		Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod: 50 * time.Millisecond,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client := cl.NewClient()
	for _, p := range paths {
		if res, err := client.Get(p); err != nil || res.Status != 200 {
			t.Fatalf("get %s: res=%+v err=%v", p, res, err)
		}
	}
	if res, err := client.Get("/no-such-file.html"); err != nil || res.Status != 404 {
		t.Fatalf("404 get: res=%+v err=%v", res, err)
	}
	dumps := make([]flight.Dump, 0, len(cl.Servers))
	for _, srv := range cl.Servers {
		d, err := live.Flight(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, *d)
	}
	return dumps
}

// servedRecord picks a healthy scheduled record: both substrates produce
// them with the same omitempty behaviour (policy present, trace id and
// notable class absent), so their JSON key sets must match exactly.
func servedRecord(recs []flight.Record) *flight.Record {
	for i, r := range recs {
		if r.Status == 200 && r.Policy != "" && r.Notable == "" {
			return &recs[i]
		}
	}
	return nil
}

func recordKeys(t *testing.T, rec flight.Record) []string {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestSimLiveFlightParity is the black-box acceptance criterion: the DES
// and the live httpd fill the same Record schema, obey the same timing
// invariants, retain their errors in the notable ring, and render through
// the one shared renderer.
func TestSimLiveFlightParity(t *testing.T) {
	simD := simFlightDumps(t)
	liveD := liveFlightDumps(t)

	for _, sub := range []struct {
		name  string
		dumps []flight.Dump
	}{{"sim", simD}, {"live", liveD}} {
		all := flight.Merge(sub.dumps, false)
		if len(all) == 0 {
			t.Fatalf("%s: no flight records", sub.name)
		}
		notable := flight.Merge(sub.dumps, true)
		if len(notable) == 0 {
			t.Fatalf("%s: notable ring empty despite a 404", sub.name)
		}
		for _, r := range all {
			if r.TotalSeconds < 0 {
				t.Errorf("%s: negative total in %+v", sub.name, r)
			}
			if r.TTFBSeconds != -1 && (r.TTFBSeconds < 0 || r.TTFBSeconds > r.TotalSeconds+1e-9) {
				t.Errorf("%s: ttfb %v outside [0,total=%v] for %s",
					sub.name, r.TTFBSeconds, r.TotalSeconds, r.Path)
			}
			if r.Seq <= 0 {
				t.Errorf("%s: unassigned seq in %+v", sub.name, r)
			}
		}
		out := flight.RenderRecords(sub.name+" flight", all)
		if !strings.Contains(out, "path") || !strings.Contains(out, "ttfb") {
			t.Fatalf("%s: renderer output missing headers:\n%s", sub.name, out)
		}
	}

	simRec := servedRecord(flight.Merge(simD, false))
	liveRec := servedRecord(flight.Merge(liveD, false))
	if simRec == nil || liveRec == nil {
		t.Fatalf("no served 200 record: sim=%v live=%v", simRec, liveRec)
	}
	if simRec.Target < 0 || liveRec.Target < 0 {
		t.Fatalf("served records must carry a target: sim=%d live=%d",
			simRec.Target, liveRec.Target)
	}
	sk, lk := recordKeys(t, *simRec), recordKeys(t, *liveRec)
	if !reflect.DeepEqual(sk, lk) {
		t.Fatalf("record schemas diverge:\nsim:  %v\nlive: %v", sk, lk)
	}
}
