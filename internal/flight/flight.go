// Package flight is the always-on request black box: every request a
// node handles leaves a compact fixed-size record in a bounded ring, and
// slow or errored requests are additionally retained in a separate
// "notable" ring so a burst of healthy traffic cannot evict the evidence
// of the one that went wrong. The package is dependency-free and shared
// verbatim by the live server and the simulator, so one renderer and one
// parity test cover both substrates.
package flight

import (
	"sort"
	"sync"
)

// Defaults for a recorder built from a zero Config.
const (
	DefaultCap         = 512
	DefaultNotableCap  = 128
	DefaultSlowSeconds = 1.0
)

// Notability classes stamped on records routed to the notable ring.
const (
	NotableError = "error"
	NotableSlow  = "slow"
)

// Record is one request's black-box entry. Fields are plain values so a
// record is a single copy in and a single copy out; durations are
// seconds, with -1 meaning "not measured" (no byte ever written, no
// prediction made, no target chosen).
type Record struct {
	Seq       int64   `json:"seq"`
	AtSeconds float64 `json:"at_seconds"` // arrival, on the node's epoch clock
	Node      int     `json:"node"`
	ConnID    int64   `json:"conn_id"`
	Path      string  `json:"path"`
	Status    int     `json:"status"` // 0: no (or failed) response write
	Bytes     int64   `json:"bytes"`
	TraceID   string  `json:"trace_id,omitempty"`

	// Decision summary.
	Policy           string  `json:"policy,omitempty"`
	Target           int     `json:"target"` // -1 when the broker never ran
	Redirected       bool    `json:"redirected"`
	CacheHit         bool    `json:"cache_hit"`
	PredictedSeconds float64 `json:"predicted_seconds"` // broker t_s estimate, -1 none

	// Phase timings.
	ParseSeconds   float64 `json:"parse_seconds"`
	AnalyzeSeconds float64 `json:"analyze_seconds"`
	TTFBSeconds    float64 `json:"ttfb_seconds"` // -1 when no byte reached the wire
	TotalSeconds   float64 `json:"total_seconds"`

	Notable string `json:"notable,omitempty"` // "error", "slow", or ""
}

// Config sizes a Recorder. Zero values take the defaults; a negative
// SlowSeconds disables slow-routing (errors still reach the notable ring).
type Config struct {
	Cap         int
	NotableCap  int
	SlowSeconds float64
}

// ring is a fixed-size overwrite buffer, oldest-first on snapshot.
type ring struct {
	recs []Record
	next int
	full bool
}

func newRing(n int) ring { return ring{recs: make([]Record, n)} }

func (r *ring) add(rec Record) {
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
}

func (r *ring) snapshot() []Record {
	if !r.full {
		return append([]Record(nil), r.recs[:r.next]...)
	}
	out := make([]Record, 0, len(r.recs))
	out = append(out, r.recs[r.next:]...)
	return append(out, r.recs[:r.next]...)
}

// Recorder is the per-node black box. All methods are nil-safe so a
// server with the recorder disabled keeps calling the same code paths.
type Recorder struct {
	slow float64 // slow threshold in seconds, <=0: no slow routing

	mu           sync.Mutex
	seq          int64
	total        int64
	notableTotal int64
	recent       ring
	notable      ring
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultCap
	}
	if cfg.NotableCap <= 0 {
		cfg.NotableCap = DefaultNotableCap
	}
	slow := cfg.SlowSeconds
	if slow == 0 {
		slow = DefaultSlowSeconds
	}
	return &Recorder{
		slow:    slow,
		recent:  newRing(cfg.Cap),
		notable: newRing(cfg.NotableCap),
	}
}

// Add classifies rec, assigns its sequence number, and appends it to the
// recent ring (and the notable ring when it erred or ran slow). Nil-safe:
// a disabled recorder drops the record.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	switch {
	case rec.Status == 0 || rec.Status >= 400:
		rec.Notable = NotableError
	case r.slow > 0 && rec.TotalSeconds > r.slow:
		rec.Notable = NotableSlow
	}
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	r.total++
	r.recent.add(rec)
	if rec.Notable != "" {
		r.notableTotal++
		r.notable.add(rec)
	}
	r.mu.Unlock()
}

// Total reports how many records were ever added (0 on a nil recorder).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// NotableTotal reports how many records were routed to the notable ring.
func (r *Recorder) NotableTotal() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notableTotal
}

// Dump is one node's full black-box state, shaped for the /sweb/flight
// endpoint and for snapshot bundles. Node and EpochUnix are filled by the
// caller, which knows its identity and clock.
type Dump struct {
	Enabled      bool     `json:"enabled"`
	Node         int      `json:"node"`
	EpochUnix    float64  `json:"epoch_unix,omitempty"`
	SlowSeconds  float64  `json:"slow_seconds"`
	Total        int64    `json:"total"`
	NotableTotal int64    `json:"notable_total"`
	Records      []Record `json:"records"`
	Notable      []Record `json:"notable"`
}

// Dump snapshots both rings. A nil recorder dumps Enabled: false.
func (r *Recorder) Dump() Dump {
	if r == nil {
		return Dump{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Dump{
		Enabled:      true,
		SlowSeconds:  r.slow,
		Total:        r.total,
		NotableTotal: r.notableTotal,
		Records:      r.recent.snapshot(),
		Notable:      r.notable.snapshot(),
	}
}

// Merge interleaves per-node dumps into one cluster-wide timeline,
// ordered by arrival time then node then sequence. With notableOnly set
// only the notable rings contribute — the view swebtop renders.
func Merge(dumps []Dump, notableOnly bool) []Record {
	var out []Record
	for _, d := range dumps {
		if notableOnly {
			out = append(out, d.Notable...)
		} else {
			out = append(out, d.Records...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.AtSeconds != b.AtSeconds {
			return a.AtSeconds < b.AtSeconds
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}
