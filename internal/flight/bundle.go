package flight

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"sweb/internal/heat"
)

// NodeState is one node's contribution to a snapshot bundle. Byte fields
// arrive pre-serialized (the node's own exposition and status formats);
// Conns is marshaled as JSON. A node that could not be reached
// contributes only its name and Err, so a bundle records the cluster's
// holes as faithfully as its survivors.
type NodeState struct {
	Name    string
	Metrics []byte
	Status  []byte
	Trace   []byte
	Flight  Dump
	Heat    heat.Dump
	Conns   any
	Err     string
}

// SnapshotOptions configures one bundle write.
type SnapshotOptions struct {
	Dir        string  // parent directory, required
	Reason     string  // "manual", "alert-node_down", ... becomes part of the name
	CPUSeconds float64 // CPU profile length; 0: 0.2s, negative: skip
}

// Manifest indexes the bundle. Errors maps a file that could not be
// written (or a capture that failed) to why; a partial bundle with an
// honest manifest beats no bundle.
type Manifest struct {
	Reason      string            `json:"reason"`
	WrittenUnix float64           `json:"written_unix"`
	GoVersion   string            `json:"go_version"`
	Nodes       []string          `json:"nodes"`
	Files       []string          `json:"files"`
	Errors      map[string]string `json:"errors,omitempty"`
}

// Snapshot writes a timestamped bundle directory under opts.Dir holding
// process-wide profiles (goroutine, heap, a short CPU profile) captured
// programmatically via runtime/pprof, plus one subdirectory per node with
// its metrics exposition, status report, trace tail, flight rings, and
// connection table. It returns the bundle directory path. Capture
// failures are tolerated and recorded in MANIFEST.json; only an unusable
// destination is a hard error.
func Snapshot(opts SnapshotOptions, nodes []NodeState) (string, error) {
	if opts.Dir == "" {
		return "", errors.New("flight: snapshot needs a destination directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return "", err
	}
	reason := opts.Reason
	if reason == "" {
		reason = "manual"
	}
	dir, err := makeBundleDir(opts.Dir, reason)
	if err != nil {
		return "", err
	}

	man := Manifest{
		Reason:      reason,
		WrittenUnix: float64(time.Now().UnixNano()) / 1e9,
		GoVersion:   runtime.Version(),
		Errors:      map[string]string{},
	}
	write := func(rel string, data []byte) {
		if err := os.MkdirAll(filepath.Dir(filepath.Join(dir, rel)), 0o755); err != nil {
			man.Errors[rel] = err.Error()
			return
		}
		if err := os.WriteFile(filepath.Join(dir, rel), data, 0o644); err != nil {
			man.Errors[rel] = err.Error()
			return
		}
		man.Files = append(man.Files, rel)
	}

	// Process-wide profiles. These cover every in-process node (the live
	// test cluster) or the single swebd process; a remote trigger captures
	// them inside the serving process itself.
	for _, prof := range []string{"goroutine", "heap"} {
		var buf bytes.Buffer
		if p := pprof.Lookup(prof); p == nil {
			man.Errors["profiles/"+prof+".pprof"] = "profile not registered"
		} else if err := p.WriteTo(&buf, 0); err != nil {
			man.Errors["profiles/"+prof+".pprof"] = err.Error()
		} else {
			write("profiles/"+prof+".pprof", buf.Bytes())
		}
	}
	cpuSec := opts.CPUSeconds
	if cpuSec == 0 {
		cpuSec = 0.2
	}
	if cpuSec > 0 {
		var buf bytes.Buffer
		// StartCPUProfile fails when another profile is already running
		// (e.g. two alerts racing, or swebd -pprof-addr mid-capture);
		// the bundle proceeds without it.
		if err := pprof.StartCPUProfile(&buf); err != nil {
			man.Errors["profiles/cpu.pprof"] = err.Error()
		} else {
			time.Sleep(time.Duration(cpuSec * float64(time.Second)))
			pprof.StopCPUProfile()
			write("profiles/cpu.pprof", buf.Bytes())
		}
	}

	for _, ns := range nodes {
		name := sanitizeName(ns.Name)
		man.Nodes = append(man.Nodes, name)
		base := "node-" + name
		if ns.Err != "" {
			write(filepath.Join(base, "error.txt"), []byte(ns.Err+"\n"))
			continue
		}
		if len(ns.Metrics) > 0 {
			write(filepath.Join(base, "metrics.prom"), ns.Metrics)
		}
		if len(ns.Status) > 0 {
			write(filepath.Join(base, "status.json"), ns.Status)
		}
		if len(ns.Trace) > 0 {
			write(filepath.Join(base, "trace.json"), ns.Trace)
		}
		if fl, err := json.MarshalIndent(ns.Flight, "", "  "); err != nil {
			man.Errors[filepath.Join(base, "flight.json")] = err.Error()
		} else {
			write(filepath.Join(base, "flight.json"), fl)
		}
		if ns.Heat.Enabled {
			if hj, err := json.MarshalIndent(ns.Heat, "", "  "); err != nil {
				man.Errors[filepath.Join(base, "heat.json")] = err.Error()
			} else {
				write(filepath.Join(base, "heat.json"), hj)
			}
		}
		if ns.Conns != nil {
			if cj, err := json.MarshalIndent(ns.Conns, "", "  "); err != nil {
				man.Errors[filepath.Join(base, "conns.json")] = err.Error()
			} else {
				write(filepath.Join(base, "conns.json"), cj)
			}
		}
	}

	mj, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return dir, err
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), mj, 0o644); err != nil {
		return dir, err
	}
	return dir, nil
}

// makeBundleDir creates parent/<stamp>-<reason>[.k], retrying with a
// numeric suffix when two snapshots land in the same nanosecond.
func makeBundleDir(parent, reason string) (string, error) {
	t := time.Now().UTC()
	stamp := t.Format("20060102T150405") + fmt.Sprintf(".%09d", t.Nanosecond())
	base := filepath.Join(parent, stamp+"-"+sanitizeName(reason))
	dir := base
	for k := 1; ; k++ {
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !os.IsExist(err) {
			return "", err
		}
		if k > 100 {
			return "", fmt.Errorf("flight: cannot create bundle dir under %s: %w", parent, err)
		}
		dir = fmt.Sprintf("%s.%d", base, k)
	}
}

// sanitizeName keeps bundle path components filesystem-safe.
func sanitizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	trimmed := string(out)
	for len(trimmed) > 0 && trimmed[0] == '-' {
		trimmed = trimmed[1:]
	}
	for len(trimmed) > 0 && trimmed[len(trimmed)-1] == '-' {
		trimmed = trimmed[:len(trimmed)-1]
	}
	if trimmed == "" {
		return "x"
	}
	return trimmed
}
