// Package accesslog implements NCSA Common Log Format — the access-log
// format the original httpd defined and every 1996 server wrote:
//
//	host ident authuser [02/Jan/1996:15:04:05 -0700] "GET /p HTTP/1.0" 200 2326
//
// The live SWEB nodes write one line per request; the parser turns existing
// logs back into entries so real traces can be replayed through the
// simulator (workload.FromAccessLog).
package accesslog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Entry is one access-log record.
type Entry struct {
	Host     string    // client host or address
	Ident    string    // RFC 1413 identity, almost always "-"
	AuthUser string    // authenticated user, almost always "-"
	Time     time.Time // completion time
	Method   string
	Path     string // request target as sent (path?query)
	Proto    string
	Status   int
	Bytes    int64 // response body size; -1 renders as "-"
}

// clfTime is the CLF timestamp layout.
const clfTime = "02/Jan/2006:15:04:05 -0700"

// String renders the entry as one CLF line (no trailing newline).
func (e Entry) String() string {
	ident, user := e.Ident, e.AuthUser
	if ident == "" {
		ident = "-"
	}
	if user == "" {
		user = "-"
	}
	size := "-"
	if e.Bytes >= 0 {
		size = strconv.FormatInt(e.Bytes, 10)
	}
	return fmt.Sprintf("%s %s %s [%s] \"%s %s %s\" %d %s",
		e.Host, ident, user, e.Time.Format(clfTime), e.Method, e.Path, e.Proto, e.Status, size)
}

// ParseLine parses one CLF line.
func ParseLine(line string) (Entry, error) {
	var e Entry
	line = strings.TrimSpace(line)
	if line == "" {
		return e, fmt.Errorf("accesslog: empty line")
	}
	// host ident authuser
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 4 {
		return e, fmt.Errorf("accesslog: truncated line %q", line)
	}
	e.Host, e.Ident, e.AuthUser = fields[0], fields[1], fields[2]
	rest := fields[3]

	// [timestamp]
	if !strings.HasPrefix(rest, "[") {
		return e, fmt.Errorf("accesslog: missing timestamp in %q", line)
	}
	close := strings.IndexByte(rest, ']')
	if close < 0 {
		return e, fmt.Errorf("accesslog: unterminated timestamp in %q", line)
	}
	ts, err := time.Parse(clfTime, rest[1:close])
	if err != nil {
		return e, fmt.Errorf("accesslog: bad timestamp: %v", err)
	}
	e.Time = ts
	rest = strings.TrimSpace(rest[close+1:])

	// "METHOD target PROTO"
	if !strings.HasPrefix(rest, "\"") {
		return e, fmt.Errorf("accesslog: missing request in %q", line)
	}
	endq := strings.IndexByte(rest[1:], '"')
	if endq < 0 {
		return e, fmt.Errorf("accesslog: unterminated request in %q", line)
	}
	reqLine := rest[1 : 1+endq]
	parts := strings.Fields(reqLine)
	if len(parts) != 3 {
		return e, fmt.Errorf("accesslog: malformed request %q", reqLine)
	}
	e.Method, e.Path, e.Proto = parts[0], parts[1], parts[2]
	rest = strings.TrimSpace(rest[endq+2:])

	// status bytes
	tail := strings.Fields(rest)
	if len(tail) < 2 {
		return e, fmt.Errorf("accesslog: missing status/bytes in %q", line)
	}
	status, err := strconv.Atoi(tail[0])
	if err != nil || status < 100 || status > 599 {
		return e, fmt.Errorf("accesslog: bad status %q", tail[0])
	}
	e.Status = status
	if tail[1] == "-" {
		e.Bytes = -1
	} else {
		n, err := strconv.ParseInt(tail[1], 10, 64)
		if err != nil || n < 0 {
			return e, fmt.Errorf("accesslog: bad size %q", tail[1])
		}
		e.Bytes = n
	}
	return e, nil
}

// Parse reads a whole log, skipping blank lines. A malformed line aborts
// with its line number.
func Parse(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var out []Entry
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Logger serializes entries to a writer, one per line. Safe for concurrent
// use (many handler goroutines share one log).
type Logger struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewLogger wraps w. Call Flush before reading what was written.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: bufio.NewWriter(w)}
}

// Log writes one entry.
func (l *Logger) Log(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.WriteString(e.String()); err != nil {
		return err
	}
	return l.w.WriteByte('\n')
}

// Flush drains buffered lines to the underlying writer.
func (l *Logger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}
