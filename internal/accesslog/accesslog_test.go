package accesslog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleEntry() Entry {
	return Entry{
		Host:   "128.111.41.7",
		Time:   time.Date(1996, time.February, 2, 15, 4, 5, 0, time.FixedZone("", -7*3600)),
		Method: "GET", Path: "/adl/full/scene.img", Proto: "HTTP/1.0",
		Status: 200, Bytes: 1572864,
	}
}

func TestEntryString(t *testing.T) {
	got := sampleEntry().String()
	want := `128.111.41.7 - - [02/Feb/1996:15:04:05 -0700] "GET /adl/full/scene.img HTTP/1.0" 200 1572864`
	if got != want {
		t.Fatalf("got  %q\nwant %q", got, want)
	}
}

func TestEntryStringDashSize(t *testing.T) {
	e := sampleEntry()
	e.Bytes = -1
	if !strings.HasSuffix(e.String(), " 200 -") {
		t.Fatalf("got %q", e.String())
	}
}

func TestParseLineRoundTrip(t *testing.T) {
	orig := sampleEntry()
	got, err := ParseLine(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != orig.Host || got.Method != orig.Method || got.Path != orig.Path ||
		got.Status != orig.Status || got.Bytes != orig.Bytes {
		t.Fatalf("round trip: %+v", got)
	}
	if !got.Time.Equal(orig.Time) {
		t.Fatalf("time: %v != %v", got.Time, orig.Time)
	}
}

func TestParseLineWithQuery(t *testing.T) {
	line := `host - - [02/Feb/1996:15:04:05 -0700] "GET /cgi-bin/q.cgi?x=1&swebr=1 HTTP/1.0" 200 44`
	e, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if e.Path != "/cgi-bin/q.cgi?x=1&swebr=1" {
		t.Fatalf("path = %q", e.Path)
	}
}

func TestParseLineIdentAndUser(t *testing.T) {
	line := `frank rfc931 alice [02/Feb/1996:15:04:05 -0700] "GET / HTTP/1.0" 200 1`
	e, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if e.Ident != "rfc931" || e.AuthUser != "alice" {
		t.Fatalf("ident=%q user=%q", e.Ident, e.AuthUser)
	}
}

func TestParseLineErrors(t *testing.T) {
	cases := []string{
		"",
		"too short",
		`h - - no-timestamp "GET / HTTP/1.0" 200 1`,
		`h - - [bad time] "GET / HTTP/1.0" 200 1`,
		`h - - [02/Feb/1996:15:04:05 -0700] GET / 200 1`,      // unquoted request
		`h - - [02/Feb/1996:15:04:05 -0700] "GET /" 200 1`,    // 2-field request
		`h - - [02/Feb/1996:15:04:05 -0700] "GET / HTTP/1.0"`, // missing status
		`h - - [02/Feb/1996:15:04:05 -0700] "GET / HTTP/1.0" banana 1`,
		`h - - [02/Feb/1996:15:04:05 -0700] "GET / HTTP/1.0" 200 minus`,
		`h - - [02/Feb/1996:15:04:05 -0700] "GET / HTTP/1.0" 99 1`, // status range
	}
	for _, line := range cases {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("line %q parsed", line)
		}
	}
}

func TestLoggerAndParse(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf)
	e1 := sampleEntry()
	e2 := sampleEntry()
	e2.Path = "/other.html"
	e2.Status = 404
	e2.Bytes = -1
	if err := lg.Log(e1); err != nil {
		t.Fatal(err)
	}
	if err := lg.Log(e2); err != nil {
		t.Fatal(err)
	}
	if err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Status != 404 || entries[1].Bytes != -1 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	in := "\n" + sampleEntry().String() + "\n\n"
	entries, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
}

func TestParseReportsLineNumber(t *testing.T) {
	in := sampleEntry().String() + "\ngarbage line here\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

// Property: String → ParseLine round-trips for arbitrary safe fields,
// including the "-" rendering of a missing byte count.
func TestRoundTripProperty(t *testing.T) {
	f := func(hostIdx, identIdx, pathIdx uint8, status uint16, size uint32, noSize bool, secs uint32) bool {
		hosts := []string{"a.example", "10.0.0.9", "client-42.ucsb.edu"}
		idents := []string{"", "-", "rfc931"}
		paths := []string{"/", "/a/b.html", "/cgi-bin/q.cgi?x=1&swebr=2", "/with%20escape", "/deep/a/b/c.img?q"}
		e := Entry{
			Host:   hosts[int(hostIdx)%len(hosts)],
			Ident:  idents[int(identIdx)%len(idents)],
			Time:   time.Unix(int64(secs), 0).UTC(),
			Method: "GET",
			Path:   paths[int(pathIdx)%len(paths)],
			Proto:  "HTTP/1.0",
			Status: 100 + int(status)%500,
			Bytes:  int64(size),
		}
		if noSize {
			e.Bytes = -1
		}
		got, err := ParseLine(e.String())
		if err != nil {
			return false
		}
		// "" and "-" both render as "-", so compare the rendered ident.
		wantIdent := e.Ident
		if wantIdent == "" {
			wantIdent = "-"
		}
		return got.Host == e.Host && got.Ident == wantIdent && got.Path == e.Path &&
			got.Status == e.Status && got.Bytes == e.Bytes && got.Time.Equal(e.Time)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutilating a valid line never panics the parser, and whenever
// the mutant still parses, re-rendering and re-parsing it is a fixed point
// (parse ∘ render is idempotent — no field silently drifts).
func TestMalformedLineProperty(t *testing.T) {
	base := sampleEntry().String()
	f := func(cut uint16, insPos uint16, insCh byte) bool {
		// Truncations at every length and single-byte insertions anywhere.
		mutants := []string{
			base[:int(cut)%(len(base)+1)],
			base[:int(insPos)%len(base)] + string(insCh) + base[int(insPos)%len(base):],
		}
		for _, m := range mutants {
			e, err := ParseLine(m)
			if err != nil {
				continue // rejected is fine; not crashing is the property
			}
			again, err := ParseLine(e.String())
			if err != nil {
				return false
			}
			// Compare the time by instant: time.Parse mints a fresh
			// FixedZone per call, so struct equality would lie.
			if !again.Time.Equal(e.Time) {
				return false
			}
			again.Time, e.Time = time.Time{}, time.Time{}
			if again != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
