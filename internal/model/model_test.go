package model

import (
	"math"
	"strings"
	"testing"

	"sweb/internal/des"
)

func validSpec() Spec {
	s := MeikoNodeSpec("test")
	return s
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of error, "" for valid
	}{
		{"valid", func(s *Spec) {}, ""},
		{"zero cpu", func(s *Spec) { s.CPUOpsPerSec = 0 }, "CPUOpsPerSec"},
		{"negative ram", func(s *Spec) { s.RAMBytes = -1 }, "RAMBytes"},
		{"cache exceeds ram", func(s *Spec) { s.FileCacheBytes = s.RAMBytes + 1 }, "FileCacheBytes"},
		{"zero disk", func(s *Spec) { s.DiskBytesPerSec = 0 }, "DiskBytesPerSec"},
		{"zero nic", func(s *Spec) { s.NICBytesPerSec = 0 }, "NICBytesPerSec"},
		{"zero accept", func(s *Spec) { s.AcceptQueue = 0 }, "AcceptQueue"},
		{"swap below 1", func(s *Spec) { s.SwapPenalty = 0.5 }, "SwapPenalty"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mut(&s)
		err := s.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestNewNodeRejectsBadSpec(t *testing.T) {
	s := validSpec()
	s.CPUOpsPerSec = -1
	if _, err := NewNode(des.New(), 0, s); err == nil {
		t.Fatal("expected error")
	}
}

func TestCalibratedSpecsAreValid(t *testing.T) {
	for _, s := range []Spec{MeikoNodeSpec("m"), NOWNodeSpec("n")} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if MeikoNodeSpec("m").CPUOpsPerSec != 40e6 {
		t.Error("Meiko CPU should model the 40 MHz SuperSparc")
	}
	if NOWNodeSpec("n").RAMBytes != 16<<20 {
		t.Error("LX RAM should be 16 MB")
	}
}

func TestCPUWorkAccounting(t *testing.T) {
	sim := des.New()
	n, err := NewNode(sim, 0, validSpec())
	if err != nil {
		t.Fatal(err)
	}
	n.CPUWork(ActParse, 1000, func() {})
	n.CPUWork(ActParse, 500, func() {})
	n.CPUWork(ActSchedule, 200, func() {})
	sim.RunAll()
	acc := n.CPUByActivity()
	if acc[ActParse] != 1500 || acc[ActSchedule] != 200 {
		t.Fatalf("accounting = %v", acc)
	}
	// Returned map is a copy.
	acc[ActParse] = 0
	if n.CPUByActivity()[ActParse] != 1500 {
		t.Fatal("CPUByActivity leaked internal state")
	}
}

func TestPinBufferAndMemoryPressure(t *testing.T) {
	sim := des.New()
	spec := validSpec()
	free := spec.RAMBytes - spec.FileCacheBytes
	n, _ := NewNode(sim, 0, spec)
	if n.MemoryPressure() {
		t.Fatal("fresh node under pressure")
	}
	rel1 := n.PinBuffer(free)
	if n.MemoryPressure() {
		t.Fatal("exactly-full is not pressure")
	}
	rel2 := n.PinBuffer(1)
	if !n.MemoryPressure() {
		t.Fatal("over-full must be pressure")
	}
	rel2()
	rel2() // double release is a no-op
	if n.MemoryPressure() {
		t.Fatal("pressure after release")
	}
	rel1()
	if n.MemoryPressure() {
		t.Fatal("pressure after all released")
	}
}

func TestReadFileMissThenHit(t *testing.T) {
	sim := des.New()
	n, _ := NewNode(sim, 0, validSpec())
	var missDone, hitDone des.Time
	n.ReadFile("/a", 5_000_000, 0.5, func() { missDone = sim.Now() })
	sim.RunAll()
	n.ReadFile("/a", 5_000_000, 0.5, func() { hitDone = sim.Now() - missDone })
	sim.RunAll()
	if n.CacheMisses != 1 || n.CacheHits != 1 {
		t.Fatalf("hits=%d misses=%d", n.CacheHits, n.CacheMisses)
	}
	// Miss: 5 MB over 5 MB/s disk = 1s. Hit: CPU copy 2.5e6 ops / 40e6 ≈ 62ms.
	if got := missDone.ToSeconds(); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("miss took %v", got)
	}
	if got := hitDone.ToSeconds(); got > 0.1 {
		t.Fatalf("hit took %v, want near-free copy", got)
	}
	if n.DiskReads != 1 {
		t.Fatalf("disk reads = %d", n.DiskReads)
	}
}

func TestReadFileSwapPenaltyUnderPressure(t *testing.T) {
	sim := des.New()
	spec := validSpec()
	n, _ := NewNode(sim, 0, spec)
	release := n.PinBuffer(spec.RAMBytes) // force pressure
	defer release()
	var done des.Time
	n.ReadFile("/big", 5_000_000, 0.5, func() { done = sim.Now() })
	sim.RunAll()
	want := 1.0 * spec.SwapPenalty
	if got := done.ToSeconds(); math.Abs(got-want) > 0.01 {
		t.Fatalf("swapped read took %v, want %v", got, want)
	}
	if n.SwappedOps != 1 {
		t.Fatalf("SwappedOps = %d", n.SwappedOps)
	}
}

func TestFilesBiggerThanCacheAreNeverCached(t *testing.T) {
	sim := des.New()
	spec := validSpec()
	n, _ := NewNode(sim, 0, spec)
	big := spec.FileCacheBytes + 1
	n.ReadFile("/huge", big, 0.5, func() {})
	sim.RunAll()
	n.ReadFile("/huge", big, 0.5, func() {})
	sim.RunAll()
	if n.CacheHits != 0 || n.CacheMisses != 2 {
		t.Fatalf("hits=%d misses=%d", n.CacheHits, n.CacheMisses)
	}
}

func TestLoadVector(t *testing.T) {
	sim := des.New()
	n, _ := NewNode(sim, 0, validSpec())
	n.CPU.Submit(1e9, func() {})
	n.Disk.Submit(1e9, func() {})
	n.Disk.Submit(1e9, func() {})
	cpu, disk, nic := n.LoadVector()
	if cpu != 1 || disk != 2 || nic != 0 {
		t.Fatalf("load vector = %d,%d,%d", cpu, disk, nic)
	}
}
