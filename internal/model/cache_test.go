package model

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheInsertAndContains(t *testing.T) {
	c := NewFileCache(100)
	if c.Contains("/a") {
		t.Fatal("empty cache contains /a")
	}
	c.Insert("/a", 40)
	if !c.Contains("/a") {
		t.Fatal("inserted file missing")
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewFileCache(100)
	c.Insert("/a", 40)
	c.Insert("/b", 40)
	c.Insert("/c", 40) // evicts /a (LRU)
	if c.Peek("/a") {
		t.Fatal("/a should be evicted")
	}
	if !c.Peek("/b") || !c.Peek("/c") {
		t.Fatal("/b or /c wrongly evicted")
	}
	if c.Used() != 80 {
		t.Fatalf("used = %d", c.Used())
	}
}

func TestCacheTouchProtectsFromEviction(t *testing.T) {
	c := NewFileCache(100)
	c.Insert("/a", 40)
	c.Insert("/b", 40)
	c.Touch("/a") // /a becomes MRU
	c.Insert("/c", 40)
	if !c.Peek("/a") {
		t.Fatal("touched /a evicted")
	}
	if c.Peek("/b") {
		t.Fatal("/b should have been evicted as LRU")
	}
}

func TestCacheOversizeFileIgnored(t *testing.T) {
	c := NewFileCache(100)
	c.Insert("/big", 101)
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("oversize file was cached")
	}
	c.Insert("/zero", 0)
	if c.Len() != 0 {
		t.Fatal("zero-size file was cached")
	}
	c.Insert("/neg", -5)
	if c.Len() != 0 {
		t.Fatal("negative-size file was cached")
	}
}

func TestCacheExactFit(t *testing.T) {
	c := NewFileCache(100)
	c.Insert("/a", 100)
	if !c.Peek("/a") {
		t.Fatal("exact-capacity file rejected")
	}
	c.Insert("/b", 1)
	if c.Peek("/a") {
		t.Fatal("/a should be evicted to fit /b")
	}
}

func TestCacheDuplicateInsertMovesToFront(t *testing.T) {
	c := NewFileCache(100)
	c.Insert("/a", 40)
	c.Insert("/b", 40)
	c.Insert("/a", 40) // duplicate: refresh, no double count
	if c.Used() != 80 || c.Len() != 2 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	c.Insert("/c", 40)
	if c.Peek("/b") || !c.Peek("/a") {
		t.Fatal("duplicate insert did not refresh recency")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewFileCache(100)
	c.Insert("/a", 60)
	c.Invalidate("/a")
	if c.Peek("/a") || c.Used() != 0 {
		t.Fatal("invalidate failed")
	}
	c.Invalidate("/missing") // no-op
}

func TestCacheStatsAndHitRate(t *testing.T) {
	c := NewFileCache(100)
	c.Contains("/a") // miss
	c.Insert("/a", 10)
	c.Contains("/a") // hit
	c.Contains("/a") // hit
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
	empty := NewFileCache(10)
	if empty.HitRate() != 0 {
		t.Fatal("empty cache hit rate should be 0")
	}
}

func TestCacheZeroCapacityNeverStores(t *testing.T) {
	c := NewFileCache(0)
	c.Insert("/a", 1)
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache stored a file")
	}
}

// Property: after any operation sequence, Used() equals the sum of resident
// entries and never exceeds capacity.
func TestCacheInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const capacity = 1000
		c := NewFileCache(capacity)
		rng := rand.New(rand.NewSource(seed))
		resident := map[string]int64{}
		for _, op := range ops {
			path := fmt.Sprintf("/f%d", op%31)
			_ = rng
			// Size is a deterministic function of the path: a re-insert
			// refreshes recency but never resizes (matching Insert's
			// semantics for duplicate paths).
			switch op % 4 {
			case 0:
				size := int64(op%31)*13 + 1
				c.Insert(path, size)
				if size <= capacity {
					resident[path] = size
				}
			case 1:
				c.Touch(path)
			case 2:
				c.Invalidate(path)
				delete(resident, path)
			case 3:
				c.Contains(path)
			}
			// Resident map is a superset of cache contents (evictions
			// shrink the cache), so recompute from the cache itself:
			var used int64
			for p, sz := range resident {
				if c.Peek(p) {
					used += sz
				}
			}
			if c.Used() > capacity {
				return false
			}
			if c.Used() != used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHotReturnsMRUOrder(t *testing.T) {
	c := NewFileCache(1000)
	c.Insert("/a", 10)
	c.Insert("/b", 10)
	c.Insert("/c", 10)
	c.Touch("/a") // a is now hottest
	hot := c.Hot(2)
	if len(hot) != 2 || hot[0] != "/a" || hot[1] != "/c" {
		t.Fatalf("hot = %v", hot)
	}
	if got := c.Hot(10); len(got) != 3 {
		t.Fatalf("hot(10) = %v", got)
	}
	if c.Hot(0) != nil {
		t.Fatal("hot(0) should be nil")
	}
	if NewFileCache(10).Hot(5) != nil {
		t.Fatal("empty cache hot should be nil")
	}
}
