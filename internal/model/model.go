// Package model provides the simulated node hardware that SWEB runs on in
// the discrete-event substrate: a time-shared CPU with per-activity
// accounting, a disk channel, a main-memory file cache with a thrashing
// penalty (the source of the paper's observed superlinear speedup), and the
// per-node specification types used to describe the Meiko CS-2 and the
// SparcStation NOW testbeds.
package model

import (
	"fmt"

	"sweb/internal/des"
)

// Activity labels CPU work for the Section 4.3 overhead accounting
// ("4.4% of CPU cycles are used for parsing ... less than 0.01% ... for
// collecting load information and making scheduling decisions").
type Activity string

const (
	// ActParse is HTTP command parsing / request preprocessing.
	ActParse Activity = "parse"
	// ActSchedule is broker cost estimation and redirect generation.
	ActSchedule Activity = "schedule"
	// ActLoadd is periodic load collection and broadcasting.
	ActLoadd Activity = "loadd"
	// ActFulfill is request fulfillment: fork, read, packetize, send.
	ActFulfill Activity = "fulfill"
	// ActCGI is dynamic (CGI) computation.
	ActCGI Activity = "cgi"
)

// Spec describes one node's hardware. All rates are "work units per second":
// ops/s for the CPU and bytes/s for the disk and NIC.
type Spec struct {
	Name string
	// CPUOpsPerSec is the scalar unit speed; a 40 MHz SuperSparc is modeled
	// as 40e6 ops/s so that the paper's 70 ms preprocessing corresponds to
	// 2.8e6 ops.
	CPUOpsPerSec float64
	// RAMBytes is physical memory; FileCacheBytes of it act as page cache.
	RAMBytes       int64
	FileCacheBytes int64
	// DiskBytesPerSec is b1, the local disk channel bandwidth (5 MB/s on
	// the Meiko's dedicated drives).
	DiskBytesPerSec float64
	// NICBytesPerSec is the node's attachment bandwidth to the
	// interconnect (the effective socket throughput, not the hardware peak:
	// the paper measured only 5-15% of the Meiko's 40 MB/s through TCP).
	NICBytesPerSec float64
	// AcceptQueue is the listen backlog; arrivals beyond it are dropped
	// ("the system starts to drop requests if the server reaches its rps
	// limit").
	AcceptQueue int
	// SwapPenalty multiplies disk work while in-flight buffer bytes exceed
	// free RAM, modeling paging ("one-node server spends more time in
	// swapping between memory and the disk").
	SwapPenalty float64
}

// Validate reports a descriptive error for an unusable spec.
func (s *Spec) Validate() error {
	switch {
	case s.CPUOpsPerSec <= 0:
		return fmt.Errorf("model: node %q: CPUOpsPerSec must be positive", s.Name)
	case s.RAMBytes <= 0:
		return fmt.Errorf("model: node %q: RAMBytes must be positive", s.Name)
	case s.FileCacheBytes < 0 || s.FileCacheBytes > s.RAMBytes:
		return fmt.Errorf("model: node %q: FileCacheBytes out of range", s.Name)
	case s.DiskBytesPerSec <= 0:
		return fmt.Errorf("model: node %q: DiskBytesPerSec must be positive", s.Name)
	case s.NICBytesPerSec <= 0:
		return fmt.Errorf("model: node %q: NICBytesPerSec must be positive", s.Name)
	case s.AcceptQueue <= 0:
		return fmt.Errorf("model: node %q: AcceptQueue must be positive", s.Name)
	case s.SwapPenalty < 1:
		return fmt.Errorf("model: node %q: SwapPenalty must be >= 1", s.Name)
	}
	return nil
}

// MeikoNodeSpec returns the calibrated Meiko CS-2 node: 40 MHz SuperSparc,
// 32 MB RAM, dedicated 1 GB drive at b1 = 5 MB/s.
func MeikoNodeSpec(name string) Spec {
	return Spec{
		Name:            name,
		CPUOpsPerSec:    40e6,
		RAMBytes:        32 << 20,
		FileCacheBytes:  20 << 20,
		DiskBytesPerSec: 5e6,
		NICBytesPerSec:  5e6,
		AcceptQueue:     240,
		SwapPenalty:     1.8,
	}
}

// NOWNodeSpec returns the calibrated SparcStation LX node: 16 MB RAM,
// 525 MB local drive, 10 Mb/s shared Ethernet attachment.
func NOWNodeSpec(name string) Spec {
	return Spec{
		Name:            name,
		CPUOpsPerSec:    36e6,
		RAMBytes:        16 << 20,
		FileCacheBytes:  8 << 20,
		DiskBytesPerSec: 3.5e6,
		NICBytesPerSec:  1.25e6, // 10 Mb/s line rate; bus contention is modeled separately
		AcceptQueue:     128,
		SwapPenalty:     2.2,
	}
}

// Node is the simulated hardware instance: CPU and disk are
// processor-sharing resources, plus the page cache and memory pressure
// tracking.
type Node struct {
	Spec Spec
	ID   int

	sim  *des.Simulator
	CPU  *des.PSResource
	Disk *des.PSResource
	// NIC is the node's attachment link into the interconnect; the
	// interconnect may impose additional shared stages (Ethernet bus).
	NIC *des.PSResource

	Cache *FileCache

	cpuByActivity map[Activity]float64 // ops submitted per activity
	inflightBytes int64                // buffer memory currently pinned by active transfers

	// Counters.
	DiskReads   int64
	DiskBytes   int64
	CacheHits   int64
	CacheMisses int64
	SwappedOps  int64 // disk jobs that paid the swap penalty
}

// NewNode builds a node's resources on the given simulator.
func NewNode(sim *des.Simulator, id int, spec Spec) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		Spec:          spec,
		ID:            id,
		sim:           sim,
		CPU:           des.NewPSResource(sim, spec.Name+"/cpu", spec.CPUOpsPerSec),
		Disk:          des.NewPSResource(sim, spec.Name+"/disk", spec.DiskBytesPerSec),
		NIC:           des.NewPSResource(sim, spec.Name+"/nic", spec.NICBytesPerSec),
		Cache:         NewFileCache(spec.FileCacheBytes),
		cpuByActivity: make(map[Activity]float64),
	}
	return n, nil
}

// CPUWork submits ops to the CPU under an accounting activity.
func (n *Node) CPUWork(act Activity, ops float64, done func()) {
	n.cpuByActivity[act] += ops
	n.CPU.Submit(ops, done)
}

// CPUByActivity returns a copy of the per-activity ops accounting.
func (n *Node) CPUByActivity() map[Activity]float64 {
	out := make(map[Activity]float64, len(n.cpuByActivity))
	for k, v := range n.cpuByActivity {
		out[k] = v
	}
	return out
}

// PinBuffer reserves transfer buffer memory for an in-flight request.
// Call the returned release function exactly once when the transfer ends.
func (n *Node) PinBuffer(bytes int64) (release func()) {
	n.inflightBytes += bytes
	released := false
	return func() {
		if released {
			return
		}
		released = true
		n.inflightBytes -= bytes
	}
}

// MemoryPressure reports whether pinned transfer buffers exceed the RAM not
// reserved for the page cache, i.e. the node is paging.
func (n *Node) MemoryPressure() bool {
	return n.inflightBytes > n.Spec.RAMBytes-n.Spec.FileCacheBytes
}

// ReadFile submits the disk work to fetch a file, consulting the page cache.
// A cache hit completes after a memory-copy charge on the CPU instead of the
// disk. The file is inserted into the cache after a miss (files larger than
// the cache are never cached). done fires when the bytes are available in
// memory.
func (n *Node) ReadFile(path string, size int64, copyOpsPerByte float64, done func()) {
	if n.Cache.Contains(path) {
		n.CacheHits++
		n.Cache.Touch(path)
		n.CPUWork(ActFulfill, copyOpsPerByte*float64(size), done)
		return
	}
	n.CacheMisses++
	work := float64(size)
	if n.MemoryPressure() {
		work *= n.Spec.SwapPenalty
		n.SwappedOps++
	}
	n.DiskReads++
	n.DiskBytes += size
	n.Disk.Submit(work, func() {
		n.Cache.Insert(path, size)
		done()
	})
}

// LoadVector samples the node's instantaneous resource loads, in the units
// loadd broadcasts: runnable-job counts per resource.
func (n *Node) LoadVector() (cpu, disk, nic int) {
	return n.CPU.Load(), n.Disk.Load(), n.NIC.Load()
}
