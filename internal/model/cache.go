package model

import "container/list"

// FileCache is a byte-capacity LRU cache of whole files, standing in for the
// Unix buffer cache on each node. The paper attributes its superlinear
// multi-node speedup to "the total size of memory in SWEB [being] much
// larger than on a one-node server": with requests spread over p nodes, the
// aggregate cache is p times larger and the per-node working set p times
// smaller, so hit rates climb with cluster size.
type FileCache struct {
	// OnEvent, when non-nil, observes every transition ("hit"/"miss" on
	// Contains, "insert" per new entry, "evict" per eviction, with the
	// affected path) in the order it happens. The live internal/cache
	// emits the same vocabulary, so a differential test can replay one
	// request sequence through both caches and compare streams verbatim.
	OnEvent func(kind, path string)

	capacity int64
	used     int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	path string
	size int64
}

// NewFileCache returns an LRU cache holding at most capacity bytes.
// A zero or negative capacity yields a cache that never stores anything.
func NewFileCache(capacity int64) *FileCache {
	return &FileCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Capacity returns the configured byte capacity.
func (c *FileCache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *FileCache) Used() int64 { return c.used }

// Len returns the number of cached files.
func (c *FileCache) Len() int { return c.order.Len() }

func (c *FileCache) emit(kind, path string) {
	if c.OnEvent != nil {
		c.OnEvent(kind, path)
	}
}

// Contains reports whether path is cached, updating hit/miss statistics.
func (c *FileCache) Contains(path string) bool {
	if _, ok := c.entries[path]; ok {
		c.hits++
		c.emit("hit", path)
		return true
	}
	c.misses++
	c.emit("miss", path)
	return false
}

// Peek reports whether path is cached without touching statistics or LRU
// order. Used by the broker when estimating remote nodes' service times.
func (c *FileCache) Peek(path string) bool {
	_, ok := c.entries[path]
	return ok
}

// Touch moves path to the most-recently-used position.
func (c *FileCache) Touch(path string) {
	if el, ok := c.entries[path]; ok {
		c.order.MoveToFront(el)
	}
}

// Insert adds a file, evicting least-recently-used entries to fit. Files
// larger than the capacity are not cached at all (a 1.5 MB image cannot
// displace the whole cache usefully under the paper's streaming access
// pattern).
func (c *FileCache) Insert(path string, size int64) {
	if size <= 0 || size > c.capacity {
		return
	}
	if el, ok := c.entries[path]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.path)
		c.used -= ent.size
		c.evictions++
		c.emit("evict", ent.path)
	}
	el := c.order.PushFront(&cacheEntry{path: path, size: size})
	c.entries[path] = el
	c.used += size
	c.emit("insert", path)
}

// Invalidate removes path if present.
func (c *FileCache) Invalidate(path string) {
	if el, ok := c.entries[path]; ok {
		ent := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, path)
		c.used -= ent.size
	}
}

// Hot returns up to n most-recently-used cached paths, hottest first —
// the digest a node gossips for cooperative caching.
func (c *FileCache) Hot(n int) []string {
	if n <= 0 || c.order.Len() == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for el := c.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).path)
	}
	return out
}

// Stats returns cumulative Contains() hits and misses.
func (c *FileCache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Evictions returns how many entries the LRU policy has displaced.
func (c *FileCache) Evictions() int64 { return c.evictions }

// HitRate returns the fraction of Contains() calls that hit, or 0 if none.
func (c *FileCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
