package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (2500 * Millisecond).ToSeconds(); got != 2.5 {
		t.Fatalf("ToSeconds = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500000s" {
		t.Fatalf("String = %q", s)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	sim := New()
	var order []int
	sim.At(30*Millisecond, func() { order = append(order, 3) })
	sim.At(10*Millisecond, func() { order = append(order, 1) })
	sim.At(20*Millisecond, func() { order = append(order, 2) })
	sim.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if sim.Now() != 30*Millisecond {
		t.Fatalf("now = %v", sim.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	sim := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		sim.At(Second, func() { order = append(order, i) })
	}
	sim.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	sim := New()
	var at Time
	sim.After(10*Millisecond, func() {
		sim.After(5*Millisecond, func() { at = sim.Now() })
	})
	sim.RunAll()
	if at != 15*Millisecond {
		t.Fatalf("nested After fired at %v", at)
	}
}

func TestSchedulingInThePastPanics(t *testing.T) {
	sim := New()
	sim.At(Second, func() {})
	sim.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling before now")
		}
	}()
	sim.At(Millisecond, func() {})
}

func TestCancelPreventsFiring(t *testing.T) {
	sim := New()
	fired := false
	ev := sim.At(Second, func() { fired = true })
	sim.Cancel(ev)
	sim.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancelling fired events are no-ops.
	sim.Cancel(ev)
	sim.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	sim := New()
	var got []int
	e1 := sim.At(1*Millisecond, func() { got = append(got, 1) })
	sim.At(2*Millisecond, func() { got = append(got, 2) })
	e3 := sim.At(3*Millisecond, func() { got = append(got, 3) })
	sim.Cancel(e1)
	sim.Cancel(e3)
	sim.RunAll()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	sim := New()
	fired := 0
	sim.At(Second, func() { fired++ })
	sim.At(3*Second, func() { fired++ })
	end := sim.Run(2 * Second)
	if fired != 1 || end != 2*Second {
		t.Fatalf("fired=%d end=%v", fired, end)
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d", sim.Pending())
	}
	// Continue past the horizon.
	sim.Run(5 * Second)
	if fired != 2 {
		t.Fatalf("fired=%d after second run", fired)
	}
}

func TestRunEventAtExactHorizonFires(t *testing.T) {
	sim := New()
	fired := false
	sim.At(2*Second, func() { fired = true })
	sim.Run(2 * Second)
	if !fired {
		t.Fatal("event at exact horizon did not fire")
	}
}

func TestStopInsideEvent(t *testing.T) {
	sim := New()
	fired := 0
	sim.At(Millisecond, func() { fired++; sim.Stop() })
	sim.At(2*Millisecond, func() { fired++ })
	sim.Run(Second)
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired=%d", fired)
	}
}

func TestEventsFiredCounter(t *testing.T) {
	sim := New()
	for i := 0; i < 7; i++ {
		sim.After(Time(i)*Millisecond, func() {})
	}
	sim.RunAll()
	if sim.EventsFired() != 7 {
		t.Fatalf("EventsFired = %d", sim.EventsFired())
	}
}

func TestEventSchedulesMoreEvents(t *testing.T) {
	sim := New()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			sim.After(Millisecond, recurse)
		}
	}
	sim.After(0, recurse)
	sim.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if sim.Now() != 100*Millisecond {
		t.Fatalf("now = %v", sim.Now())
	}
}

// --- PSResource ----------------------------------------------------------

func TestPSSingleJobTiming(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "cpu", 1000) // 1000 units/s
	var done Time
	r.Submit(500, func() { done = sim.Now() })
	sim.RunAll()
	if got := done.ToSeconds(); math.Abs(got-0.5) > 1e-3 {
		t.Fatalf("single job finished at %vs, want 0.5s", got)
	}
}

func TestPSTwoJobsShareEqually(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "disk", 1000)
	var d1, d2 Time
	r.Submit(500, func() { d1 = sim.Now() })
	r.Submit(500, func() { d2 = sim.Now() })
	sim.RunAll()
	// Both share: each takes 1.0s.
	for i, d := range []Time{d1, d2} {
		if got := d.ToSeconds(); math.Abs(got-1.0) > 1e-3 {
			t.Fatalf("job %d finished at %v, want ~1.0s", i, got)
		}
	}
}

func TestPSShortJobLeavesLongJobSpeedsUp(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	var dShort, dLong Time
	r.Submit(250, func() { dShort = sim.Now() })
	r.Submit(750, func() { dLong = sim.Now() })
	sim.RunAll()
	// Short: shares until 250 done at t=0.5. Long: 250 done by 0.5,
	// remaining 500 alone → finishes at 1.0.
	if got := dShort.ToSeconds(); math.Abs(got-0.5) > 1e-3 {
		t.Fatalf("short finished at %v", got)
	}
	if got := dLong.ToSeconds(); math.Abs(got-1.0) > 1e-3 {
		t.Fatalf("long finished at %v", got)
	}
}

func TestPSLateArrivalSlowsExisting(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	var d1 Time
	r.Submit(1000, func() { d1 = sim.Now() })
	sim.At(500*Millisecond, func() {
		r.Submit(1000, func() {})
	})
	sim.RunAll()
	// First job: 500 units alone (0.5s), then 500 shared (1.0s) → 1.5s.
	if got := d1.ToSeconds(); math.Abs(got-1.5) > 1e-3 {
		t.Fatalf("first job finished at %v, want 1.5s", got)
	}
}

func TestPSBackgroundLoadSlowsService(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "bus", 1000)
	r.SetBackground(1) // one phantom always-on competitor
	var done Time
	r.Submit(500, func() { done = sim.Now() })
	sim.RunAll()
	if got := done.ToSeconds(); math.Abs(got-1.0) > 1e-3 {
		t.Fatalf("with background=1 job finished at %v, want 1.0s", got)
	}
}

func TestPSSetRate(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	var done Time
	r.Submit(1000, func() { done = sim.Now() })
	sim.At(500*Millisecond, func() { r.SetRate(500) })
	sim.RunAll()
	// 500 units at 1000/s, then 500 at 500/s → 0.5 + 1.0 = 1.5s.
	if got := done.ToSeconds(); math.Abs(got-1.5) > 1e-3 {
		t.Fatalf("finished at %v, want 1.5s", got)
	}
}

func TestPSZeroWorkCompletesAsync(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	done := false
	r.Submit(0, func() { done = true })
	if done {
		t.Fatal("zero-work job completed synchronously")
	}
	sim.RunAll()
	if !done {
		t.Fatal("zero-work job never completed")
	}
}

func TestPSCancelJob(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	fired := false
	j := r.Submit(1000, func() { fired = true })
	sim.At(100*Millisecond, func() { r.CancelJob(j) })
	sim.RunAll()
	if fired {
		t.Fatal("cancelled job completed")
	}
	if r.Load() != 0 {
		t.Fatalf("load = %d after cancel", r.Load())
	}
	r.CancelJob(j) // idempotent
	r.CancelJob(nil)
}

func TestPSLoadCount(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1e6)
	r.Submit(1e6, func() {})
	r.Submit(1e6, func() {})
	if r.Load() != 2 {
		t.Fatalf("load = %d", r.Load())
	}
	sim.RunAll()
	if r.Load() != 0 {
		t.Fatalf("load after completion = %d", r.Load())
	}
}

func TestPSBusyTimeAndUtilization(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	sim.At(Second, func() {
		r.Submit(1000, func() {})
	})
	sim.RunAll() // busy from t=1 to t=2
	if got := r.BusyTime().ToSeconds(); math.Abs(got-1.0) > 1e-3 {
		t.Fatalf("busy = %v", got)
	}
	if got := r.Utilization(0); math.Abs(got-0.5) > 1e-2 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestPSCompletedAndServedCounters(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	for i := 0; i < 5; i++ {
		r.Submit(100, func() {})
	}
	sim.RunAll()
	if r.Completed() != 5 {
		t.Fatalf("completed = %d", r.Completed())
	}
	if math.Abs(r.Served()-500) > 1 {
		t.Fatalf("served = %v", r.Served())
	}
}

func TestPSInvalidRatesPanic(t *testing.T) {
	sim := New()
	for _, fn := range []func(){
		func() { NewPSResource(sim, "bad", 0) },
		func() { NewPSResource(sim, "bad", -1) },
		func() { NewPSResource(sim, "ok", 1).SetRate(0) },
		func() { NewPSResource(sim, "ok", 1).SetBackground(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: work is conserved — the sum of submitted work equals Served()
// once everything completes, for any job mix.
func TestPSWorkConservationProperty(t *testing.T) {
	f := func(works []uint16, gaps []uint8) bool {
		if len(works) == 0 {
			return true
		}
		if len(works) > 64 {
			works = works[:64]
		}
		sim := New()
		r := NewPSResource(sim, "r", 1234)
		var total float64
		at := Time(0)
		for i, w := range works {
			work := float64(w%5000) + 1
			total += work
			if i < len(gaps) {
				at += Time(gaps[i]) * Millisecond
			}
			w := work
			sim.At(at, func() { r.Submit(w, func() {}) })
		}
		sim.RunAll()
		return math.Abs(r.Served()-total) < 1e-3*total+1 &&
			r.Completed() == int64(len(works)) && r.Load() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion times are non-decreasing in submitted work when jobs
// start together.
func TestPSMoreWorkFinishesLaterProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		wa, wb := float64(a%1000)+1, float64(b%1000)+1
		sim := New()
		r := NewPSResource(sim, "r", 500)
		var ta, tb Time
		r.Submit(wa, func() { ta = sim.Now() })
		r.Submit(wb, func() { tb = sim.Now() })
		sim.RunAll()
		if wa < wb {
			return ta <= tb
		}
		if wb < wa {
			return tb <= ta
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	sim := New()
	if sim.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	sim.At(Millisecond, func() {})
	if !sim.Step() {
		t.Fatal("Step with pending event returned false")
	}
	if sim.Now() != Millisecond {
		t.Fatalf("now = %v", sim.Now())
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	sim := New()
	end := sim.Run(5 * Second)
	if end != 5*Second || sim.Now() != 5*Second {
		t.Fatalf("idle run ended at %v", end)
	}
}

func TestCancelDuringDispatchOfSameInstant(t *testing.T) {
	sim := New()
	fired := false
	var victim *Event
	sim.At(Millisecond, func() { sim.Cancel(victim) })
	victim = sim.At(Millisecond, func() { fired = true })
	sim.RunAll()
	if fired {
		t.Fatal("event cancelled by an earlier same-instant event still fired")
	}
}

func TestPSResubmitFromCompletionCallback(t *testing.T) {
	sim := New()
	r := NewPSResource(sim, "r", 1000)
	count := 0
	var done func()
	done = func() {
		count++
		if count < 3 {
			r.Submit(100, done)
		}
	}
	r.Submit(100, done)
	sim.RunAll()
	if count != 3 {
		t.Fatalf("chained submissions = %d", count)
	}
	if got := sim.Now().ToSeconds(); math.Abs(got-0.3) > 1e-3 {
		t.Fatalf("chain finished at %v", got)
	}
}
