// Package des implements a deterministic discrete-event simulation engine
// with shared-resource models (processor sharing and FIFO service) used to
// simulate the multicomputer substrate that SWEB runs on.
//
// Time is kept as int64 microseconds so that runs are exactly reproducible
// across platforms. Events scheduled for the same instant fire in the order
// they were scheduled (a monotonically increasing sequence number breaks
// ties), which keeps the simulation deterministic even under heavy fan-out.
package des

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in microseconds.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// ToSeconds converts t to floating-point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.ToSeconds()) }

// Event is a scheduled callback. Events are single-shot; cancelling an event
// that has already fired is a no-op.
type Event struct {
	at    Time
	seq   int64
	fn    func()
	index int // heap index, -1 once fired or cancelled
}

// At returns the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler.
// The zero value is ready to use, starting at time 0.
type Simulator struct {
	now     Time
	seq     int64
	events  eventHeap
	stopped bool
	fired   int64
}

// New returns a simulator starting at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// EventsFired reports how many events have executed so far.
func (s *Simulator) EventsFired() int64 { return s.fired }

// Pending reports how many events are scheduled but not yet fired.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality, which is always a bug in the caller.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d microseconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. It is safe to cancel an event that has
// already fired or been cancelled.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.events, e.index)
	e.index = -1
	e.fn = nil
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next pending event, if any, and reports whether one fired.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	s.now = e.at
	fn := e.fn
	e.fn = nil
	s.fired++
	if fn != nil {
		fn()
	}
	return true
}

// Run executes events until the queue is empty, the horizon is passed, or
// Stop is called. Events scheduled exactly at the horizon still fire.
// It returns the simulated time when execution stopped.
func (s *Simulator) Run(until Time) Time {
	s.stopped = false
	for !s.stopped && len(s.events) > 0 {
		if s.events[0].at > until {
			s.now = until
			return s.now
		}
		s.Step()
	}
	if s.now < until && len(s.events) == 0 {
		s.now = until
	}
	return s.now
}

// RunAll executes every pending event regardless of horizon.
func (s *Simulator) RunAll() Time {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	return s.now
}
