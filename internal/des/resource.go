package des

import (
	"fmt"
	"math"
)

// Job is a unit of work submitted to a resource. The resource invokes Done
// when the job's work has been fully served.
type Job struct {
	remaining float64 // work units left (ops, bytes, ...)
	done      func()
	start     Time
	seq       int64 // submission order, for deterministic completion ties
	res       *PSResource
}

// PSResource is an egalitarian processor-sharing server: when n jobs are
// active each receives rate/n work units per second. This models a
// time-shared CPU, a disk channel serving interleaved streams, or a shared
// Ethernet bus — exactly the degradation the SWEB paper describes
// ("if there are many requests, the disk transmission performance degrades
// accordingly").
//
// The implementation advances all active jobs lazily at each submit/finish
// event and keeps the next completion event scheduled. Cost is O(n) per
// event, which is ample for the cluster sizes in the paper.
type PSResource struct {
	sim  *Simulator
	name string
	rate float64 // work units per second when uncontended

	jobs map[*Job]struct{}
	last Time   // last time remaining-work was advanced
	next *Event // pending completion event

	// Accounting for utilization/overhead reports (Table 5, Sec. 4.3).
	busy      Time    // total time with >=1 active job
	served    float64 // total work completed
	completed int64
	subSeq    int64 // next job sequence number
	// background is phantom elastic load: a constant number of fictitious
	// jobs that always compete for the resource (models "Ethernet shared
	// by other UCSB machines"). May be fractional.
	background float64
}

// NewPSResource creates a processor-sharing resource with the given
// uncontended service rate in work units per second.
func NewPSResource(sim *Simulator, name string, rate float64) *PSResource {
	if rate <= 0 {
		panic(fmt.Sprintf("des: resource %q needs positive rate, got %g", name, rate))
	}
	return &PSResource{sim: sim, name: name, rate: rate, jobs: make(map[*Job]struct{}), last: sim.Now()}
}

// Name returns the resource's diagnostic name.
func (r *PSResource) Name() string { return r.name }

// Rate returns the uncontended service rate.
func (r *PSResource) Rate() float64 { return r.rate }

// SetRate changes the service rate, first advancing all in-flight work at
// the old rate. Used for dynamic degradation scenarios.
func (r *PSResource) SetRate(rate float64) {
	if rate <= 0 {
		panic("des: SetRate requires positive rate")
	}
	r.advance()
	r.rate = rate
	r.reschedule()
}

// SetBackground sets the phantom competing load (number of always-active
// fictitious jobs, fractional allowed).
func (r *PSResource) SetBackground(n float64) {
	if n < 0 {
		panic("des: negative background load")
	}
	r.advance()
	r.background = n
	r.reschedule()
}

// Load returns the instantaneous number of active jobs, excluding phantom
// background load. This is what loadd samples.
func (r *PSResource) Load() int { return len(r.jobs) }

// BusyTime returns the cumulative time during which at least one real job
// was active.
func (r *PSResource) BusyTime() Time { r.advance(); return r.busy }

// Served returns total completed work units.
func (r *PSResource) Served() float64 { r.advance(); return r.served }

// Completed returns the count of finished jobs.
func (r *PSResource) Completed() int64 { return r.completed }

// Utilization returns busy time divided by elapsed time since t0.
func (r *PSResource) Utilization(t0 Time) float64 {
	elapsed := r.sim.Now() - t0
	if elapsed <= 0 {
		return 0
	}
	r.advance()
	return float64(r.busy) / float64(elapsed)
}

// perJobRate returns the current service rate seen by each active job.
func (r *PSResource) perJobRate() float64 {
	n := float64(len(r.jobs)) + r.background
	if n <= 0 {
		return r.rate
	}
	return r.rate / n
}

// advance applies elapsed service to all active jobs.
func (r *PSResource) advance() {
	now := r.sim.Now()
	if now == r.last {
		return
	}
	elapsed := now - r.last
	r.last = now
	if len(r.jobs) == 0 {
		return
	}
	r.busy += elapsed
	per := r.perJobRate() * elapsed.ToSeconds()
	for j := range r.jobs {
		w := per
		if j.remaining < w {
			w = j.remaining
		}
		j.remaining -= w
		if j.remaining < 1e-9 {
			j.remaining = 0
		}
		r.served += w
	}
}

// Submit enqueues work on the resource; done fires when it completes.
// Zero or negative work completes after the next event dispatch (still
// asynchronously, preserving event ordering).
func (r *PSResource) Submit(work float64, done func()) *Job {
	r.advance()
	j := &Job{remaining: math.Max(work, 0), done: done, start: r.sim.Now(), seq: r.subSeq, res: r}
	r.subSeq++
	r.jobs[j] = struct{}{}
	r.reschedule()
	return j
}

// CancelJob removes a job without firing its completion callback.
func (r *PSResource) CancelJob(j *Job) {
	if j == nil || j.res != r {
		return
	}
	if _, ok := r.jobs[j]; !ok {
		return
	}
	r.advance()
	delete(r.jobs, j)
	j.done = nil
	r.reschedule()
}

// reschedule recomputes the next completion event.
func (r *PSResource) reschedule() {
	if r.next != nil {
		r.sim.Cancel(r.next)
		r.next = nil
	}
	if len(r.jobs) == 0 {
		return
	}
	minRem := math.Inf(1)
	for j := range r.jobs {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	per := r.perJobRate()
	var dt Time
	if minRem <= 0 {
		dt = 0
	} else {
		secs := minRem / per
		dt = Time(math.Ceil(secs * float64(Second)))
		if dt < 1 {
			dt = 1
		}
	}
	r.next = r.sim.After(dt, r.finishDue)
}

// finishDue completes every job whose remaining work has reached zero.
func (r *PSResource) finishDue() {
	r.next = nil
	r.advance()
	var finished []*Job
	for j := range r.jobs {
		if j.remaining <= 1e-9 {
			finished = append(finished, j)
		}
	}
	// Deterministic completion order: map iteration order varies, so order
	// finished jobs by submission sequence.
	for i := 1; i < len(finished); i++ {
		for k := i; k > 0 && finished[k].seq < finished[k-1].seq; k-- {
			finished[k], finished[k-1] = finished[k-1], finished[k]
		}
	}
	for _, j := range finished {
		delete(r.jobs, j)
		r.completed++
	}
	r.reschedule()
	for _, j := range finished {
		if j.done != nil {
			j.done()
		}
	}
}
