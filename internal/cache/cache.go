// Package cache is the live substrate's hot-file memory cache: a
// byte-capacity-bounded LRU of whole response bodies with singleflight
// miss coalescing, standing in for the Unix buffer cache the paper credits
// for SWEB's superlinear multi-node speedup. Its replacement semantics —
// whole files only, refuse anything larger than the capacity, evict from
// the LRU tail until the newcomer fits — deliberately mirror
// internal/model.FileCache byte for byte, so a differential test can drive
// both caches with one request sequence and demand identical hit, miss,
// insert, and eviction streams. Unlike the simulator's size-only model,
// entries here hold real bytes and carry a validator hook: a lookup
// re-checks the entry against the backing truth (a stat for local files,
// the manifest size for relayed ones) and treats a stale entry as a miss,
// so a mutated document is never served from memory.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Event kinds emitted to the OnEvent hook; the same vocabulary the
// simulator's model.FileCache emits, so differential tests compare streams
// verbatim.
const (
	EvHit    = "hit"
	EvMiss   = "miss"
	EvInsert = "insert"
	EvEvict  = "evict"
)

// Entry is one cached document: the full response body plus the
// modification time it was read at (zero for bodies relayed from a remote
// owner, whose mtime the fetching node never sees).
type Entry struct {
	Path    string
	Body    []byte
	ModTime time.Time
}

// Stats is a consistent snapshot of the cache counters.
type Stats struct {
	Hits               int64
	Misses             int64
	Evictions          int64
	SingleflightShared int64
	UsedBytes          int64
	CapacityBytes      int64
	Files              int
}

// HitRate returns the fraction of counted lookups that hit, or 0 if none.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	Entry
	size int64
}

// flight is one in-progress fill; latecomers for the same path wait on
// done instead of issuing their own backing read.
type flight struct {
	done chan struct{}
	ent  Entry
	err  error
}

// Cache is the hot-file LRU. All methods are safe for concurrent use.
type Cache struct {
	// OnEvent, when non-nil, observes every transition ("hit", "miss",
	// "insert", "evict" with the affected path) under the cache lock, in
	// the order they happen — the differential-test tap. Set it before
	// the cache is shared; keep the callback cheap.
	OnEvent func(kind, path string)

	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	flights  map[string]*flight

	hits, misses, evictions, shared int64
}

// New returns an LRU cache holding at most capacity bytes. A zero or
// negative capacity yields a cache that never stores anything (every
// lookup misses, every insert is refused) — the -cache-off behaviour with
// the wiring still in place.
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

func (c *Cache) emit(kind, path string) {
	if c.OnEvent != nil {
		c.OnEvent(kind, path)
	}
}

// lookupLocked finds path, validates it, and moves it to the MRU position
// on a valid hit. A stale entry is removed and reported as absent. counted
// selects whether the hit/miss statistics (and OnEvent) see this lookup:
// the client-facing serving path counts one lookup per request, exactly as
// the simulator's Contains does, while internal probes stay quiet like the
// simulator's Peek.
func (c *Cache) lookupLocked(path string, check func(Entry) bool, counted bool) (Entry, bool) {
	el, ok := c.entries[path]
	if ok && check != nil && !check(el.Value.(*entry).Entry) {
		c.removeLocked(el)
		ok = false
	}
	if !ok {
		if counted {
			c.misses++
			c.emit(EvMiss, path)
		}
		return Entry{}, false
	}
	if counted {
		c.hits++
		c.emit(EvHit, path)
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).Entry, true
}

// Lookup is the counted, validated lookup the serving path runs once per
// request: a valid hit bumps the entry to most-recently-used and the hit
// counter; anything else (absent, or invalidated by check) counts a miss.
// check may be nil to accept any resident entry; it runs under the cache
// lock so validation and invalidation are atomic — keep it to a stat.
func (c *Cache) Lookup(path string, check func(Entry) bool) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupLocked(path, check, true)
}

// Peek reports whether path is resident without touching statistics, LRU
// order, or validation — the broker's stat-free cache-residency signal,
// mirroring model.FileCache.Peek.
func (c *Cache) Peek(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[path]
	return ok
}

// Fetch returns the cached entry for path or, on a miss, fills it with one
// backing read shared by every concurrent caller (singleflight): the first
// caller runs fill outside the lock, latecomers block on its result, and a
// successful fill is inserted. The internal lookup is quiet — Fetch is the
// fill-through half of the serving path, whose counted Lookup already ran.
// fill errors are returned to every waiter and nothing is cached.
func (c *Cache) Fetch(path string, check func(Entry) bool, fill func() (Entry, error)) (Entry, error) {
	c.mu.Lock()
	if ent, ok := c.lookupLocked(path, check, false); ok {
		c.mu.Unlock()
		return ent, nil
	}
	if f, ok := c.flights[path]; ok {
		c.shared++
		c.mu.Unlock()
		<-f.done
		return f.ent, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[path] = f
	c.mu.Unlock()

	f.ent, f.err = fill()

	c.mu.Lock()
	delete(c.flights, path)
	if f.err == nil {
		c.insertLocked(f.ent)
	}
	c.mu.Unlock()
	close(f.done)
	return f.ent, f.err
}

// Insert adds an entry, evicting least-recently-used entries to fit,
// with model.FileCache's exact refusal rules: empty bodies and bodies
// larger than the whole capacity are not cached at all.
func (c *Cache) Insert(ent Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(ent)
}

func (c *Cache) insertLocked(ent Entry) {
	size := int64(len(ent.Body))
	if size <= 0 || size > c.capacity {
		return
	}
	if el, ok := c.entries[ent.Path]; ok {
		// Refresh in place (a concurrent fill raced a revalidation):
		// replace the bytes, keep the LRU/accounting behaviour identical
		// to the model's existing-key Insert — move to front, no event.
		old := el.Value.(*entry)
		c.used += size - old.size
		old.Entry, old.size = ent, size
		c.order.MoveToFront(el)
		c.evictOverflowLocked()
		return
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
		c.emit(EvEvict, back.Value.(*entry).Path)
	}
	el := c.order.PushFront(&entry{Entry: ent, size: size})
	c.entries[ent.Path] = el
	c.used += size
	c.emit(EvInsert, ent.Path)
}

// evictOverflowLocked trims the tail after an in-place refresh grew an
// entry past the capacity.
func (c *Cache) evictOverflowLocked() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
		c.emit(EvEvict, back.Value.(*entry).Path)
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.entries, ent.Path)
	c.used -= ent.size
}

// Invalidate removes path if present (a write-path hook; the read path
// invalidates through Lookup's check).
func (c *Cache) Invalidate(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[path]; ok {
		c.removeLocked(el)
	}
}

// Hot returns up to n most-recently-used cached paths, hottest first —
// the residency digest /sweb/status shows.
func (c *Cache) Hot(n int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	for el := c.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(*entry).Path)
	}
	return out
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evictions,
		SingleflightShared: c.shared,
		UsedBytes:          c.used,
		CapacityBytes:      c.capacity,
		Files:              c.order.Len(),
	}
}
