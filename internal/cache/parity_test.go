package cache_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sweb/internal/cache"
	"sweb/internal/model"
)

// event is one OnEvent observation, comparable across both caches.
type event struct {
	kind, path string
}

// TestDifferentialParityWithModel replays one deterministic request
// sequence through the simulator's model.FileCache and the live
// internal/cache, each driven exactly the way its substrate drives it —
// the sim's Contains→Touch/Insert choreography against the live
// Lookup→Fetch fill-through — and demands byte-identical event streams:
// every hit, miss, insert, and eviction, in order, with the same path.
// This is the proof that the live data path and the simulated page cache
// implement the same replacement policy.
func TestDifferentialParityWithModel(t *testing.T) {
	const capacity = 64 << 10 // small enough that evictions are routine

	// A fixed per-path size: ~40 documents from 1 KB to 20 KB, so a
	// handful of large entries churn the LRU tail. One path (index 0)
	// gets size 0 and one (index 1) exceeds the capacity, exercising
	// both refusal rules on the same sequence.
	size := func(i int) int64 {
		switch i {
		case 0:
			return 0
		case 1:
			return capacity + 1
		default:
			return int64(1+(i*7)%20) << 10
		}
	}

	var modelEvents, liveEvents []event
	mc := model.NewFileCache(capacity)
	mc.OnEvent = func(kind, path string) { modelEvents = append(modelEvents, event{kind, path}) }
	lc := cache.New(capacity)
	lc.OnEvent = func(kind, path string) { liveEvents = append(liveEvents, event{kind, path}) }

	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 2000; op++ {
		i := rng.Intn(40)
		path := fmt.Sprintf("/doc%02d.html", i)
		body := make([]byte, size(i))

		// Simulator choreography (internal/simsrv/request.go): one
		// counted Contains per request; a hit is touched, a miss is
		// inserted after the read completes.
		if mc.Contains(path) {
			mc.Touch(path)
		} else {
			mc.Insert(path, size(i))
		}

		// Live choreography (internal/httpd/handler.go): one counted
		// Lookup per request; a miss falls through to the quiet
		// singleflight Fetch, which fills and inserts.
		if _, ok := lc.Lookup(path, nil); !ok {
			if _, err := lc.Fetch(path, nil, func() (cache.Entry, error) {
				return cache.Entry{Path: path, Body: body}, nil
			}); err != nil {
				t.Fatalf("Fetch(%s): %v", path, err)
			}
		}
	}

	if len(modelEvents) != len(liveEvents) {
		t.Fatalf("event streams diverge in length: model %d, live %d",
			len(modelEvents), len(liveEvents))
	}
	for i := range modelEvents {
		if modelEvents[i] != liveEvents[i] {
			t.Fatalf("event %d diverges: model %v, live %v", i, modelEvents[i], liveEvents[i])
		}
	}

	// The aggregate state must agree too: counters, residency, LRU order.
	mh, mm := mc.Stats()
	ls := lc.Stats()
	if mh != ls.Hits || mm != ls.Misses {
		t.Errorf("counters diverge: model hits=%d misses=%d, live hits=%d misses=%d",
			mh, mm, ls.Hits, ls.Misses)
	}
	if mc.Evictions() != ls.Evictions {
		t.Errorf("evictions diverge: model %d, live %d", mc.Evictions(), ls.Evictions)
	}
	if mc.Used() != ls.UsedBytes {
		t.Errorf("used bytes diverge: model %d, live %d", mc.Used(), ls.UsedBytes)
	}
	if mc.Len() != ls.Files {
		t.Errorf("file counts diverge: model %d, live %d", mc.Len(), ls.Files)
	}
	mHot, lHot := mc.Hot(64), lc.Hot(64)
	if len(mHot) != len(lHot) {
		t.Fatalf("LRU order length diverges: model %v, live %v", mHot, lHot)
	}
	for i := range mHot {
		if mHot[i] != lHot[i] {
			t.Fatalf("LRU order diverges at %d: model %v, live %v", i, mHot, lHot)
		}
	}
}
