package cache_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sweb/internal/cache"
	"sweb/internal/model"
)

// TestSingleflightStampede aims N concurrent misses for one path at the
// cache and demands exactly one backing read: the first caller fills,
// every latecomer blocks on the flight and shares the result.
func TestSingleflightStampede(t *testing.T) {
	const waiters = 32
	c := cache.New(1 << 20)

	fills := 0
	entered := make(chan struct{})
	release := make(chan struct{})
	fill := func() (cache.Entry, error) {
		fills++ // no mutex: a second concurrent fill is the bug under test
		close(entered)
		<-release
		return cache.Entry{Path: "/hot", Body: []byte("payload")}, nil
	}

	var wg sync.WaitGroup
	results := make([]cache.Entry, waiters)
	errs := make([]error, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = c.Fetch("/hot", nil, fill)
	}()
	<-entered // the leader is inside fill; the path has an open flight
	for i := 1; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = c.Fetch("/hot", nil, func() (cache.Entry, error) {
				t.Error("latecomer ran its own backing read")
				return cache.Entry{}, errors.New("stampede")
			})
		}()
	}
	// Wait until every latecomer has joined the flight, then let the
	// leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().SingleflightShared < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d latecomers joined the flight", c.Stats().SingleflightShared, waiters-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("backing read ran %d times, want 1", fills)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if string(results[i].Body) != "payload" {
			t.Fatalf("waiter %d got body %q", i, results[i].Body)
		}
	}
	st := c.Stats()
	if st.SingleflightShared != waiters-1 {
		t.Errorf("SingleflightShared = %d, want %d", st.SingleflightShared, waiters-1)
	}
	if !c.Peek("/hot") {
		t.Error("filled entry not resident after the flight")
	}
}

// TestFetchErrorNotCached verifies a failed fill reaches every waiter and
// leaves nothing resident, so the next request retries the backing read.
func TestFetchErrorNotCached(t *testing.T) {
	c := cache.New(1 << 20)
	boom := errors.New("disk gone")
	if _, err := c.Fetch("/a", nil, func() (cache.Entry, error) { return cache.Entry{}, boom }); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c.Peek("/a") {
		t.Fatal("failed fill left an entry resident")
	}
	if _, ok := c.Lookup("/a", nil); ok {
		t.Fatal("failed fill satisfied a later lookup")
	}
}

// TestStaleEntryInvalidated verifies the validator contract: a resident
// entry the check rejects is removed atomically and the lookup misses, so
// a mutated document can never be served from memory.
func TestStaleEntryInvalidated(t *testing.T) {
	c := cache.New(1 << 20)
	c.Insert(cache.Entry{Path: "/f", Body: []byte("old")})
	stale := func(cache.Entry) bool { return false }
	if _, ok := c.Lookup("/f", stale); ok {
		t.Fatal("stale entry served as a hit")
	}
	if c.Peek("/f") {
		t.Fatal("stale entry still resident after the rejecting lookup")
	}
	// Fetch's quiet lookup applies the same validator: the fill refreshes
	// the bytes.
	c.Insert(cache.Entry{Path: "/f", Body: []byte("old")})
	ent, err := c.Fetch("/f", stale, func() (cache.Entry, error) {
		return cache.Entry{Path: "/f", Body: []byte("new")}, nil
	})
	if err != nil || string(ent.Body) != "new" {
		t.Fatalf("Fetch after staleness = %q, %v; want refreshed bytes", ent.Body, err)
	}
}

// TestRefusalRules checks the model-mirrored insert refusals: empty bodies
// and bodies larger than the capacity are never cached, and a zero-capacity
// cache stores nothing.
func TestRefusalRules(t *testing.T) {
	c := cache.New(10)
	c.Insert(cache.Entry{Path: "/empty"})
	c.Insert(cache.Entry{Path: "/huge", Body: make([]byte, 11)})
	if c.Peek("/empty") || c.Peek("/huge") {
		t.Fatal("refused entry became resident")
	}
	off := cache.New(0)
	off.Insert(cache.Entry{Path: "/x", Body: []byte("y")})
	if off.Peek("/x") {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if _, err := off.Fetch("/x", nil, func() (cache.Entry, error) {
		return cache.Entry{Path: "/x", Body: []byte("y")}, nil
	}); err != nil {
		t.Fatalf("zero-capacity Fetch: %v", err)
	}
	if off.Peek("/x") {
		t.Fatal("zero-capacity cache stored a fill")
	}
}

// TestLRUPropertyAgainstModel is the randomized invariant check: a long
// random mix of lookups, fills, inserts, and invalidations, applied in
// lockstep to internal/cache and to the model.FileCache oracle. After
// every operation the capacity bound must hold and residency, accounting,
// and LRU order must match the oracle exactly.
func TestLRUPropertyAgainstModel(t *testing.T) {
	const capacity = 8 << 10
	rng := rand.New(rand.NewSource(7))
	c := cache.New(capacity)
	oracle := model.NewFileCache(capacity)

	size := func(i int) int64 { return int64(1+(i*13)%30) * 256 }
	paths := make([]string, 24)
	for i := range paths {
		paths[i] = fmt.Sprintf("/p%02d", i)
	}

	for op := 0; op < 5000; op++ {
		i := rng.Intn(len(paths))
		p, body := paths[i], make([]byte, size(i))
		switch rng.Intn(4) {
		case 0: // counted lookup = Contains (+Touch on hit, as the serving path does)
			_, hit := c.Lookup(p, nil)
			if oracle.Contains(p) != hit {
				t.Fatalf("op %d: Lookup(%s) hit=%v diverges from oracle", op, p, hit)
			}
			oracle.Touch(p)
		case 1: // fill-through
			if _, err := c.Fetch(p, nil, func() (cache.Entry, error) {
				return cache.Entry{Path: p, Body: body}, nil
			}); err != nil {
				t.Fatalf("op %d: Fetch(%s): %v", op, p, err)
			}
			if oracle.Peek(p) {
				oracle.Touch(p)
			} else {
				oracle.Insert(p, size(i))
			}
		case 2: // direct insert
			c.Insert(cache.Entry{Path: p, Body: body})
			if oracle.Peek(p) {
				oracle.Touch(p)
			} else {
				oracle.Insert(p, size(i))
			}
		case 3:
			c.Invalidate(p)
			oracle.Invalidate(p)
		}

		st := c.Stats()
		if st.UsedBytes > capacity {
			t.Fatalf("op %d: used %d exceeds capacity %d", op, st.UsedBytes, capacity)
		}
		if st.UsedBytes != oracle.Used() || st.Files != oracle.Len() {
			t.Fatalf("op %d: accounting diverges: used=%d files=%d, oracle used=%d files=%d",
				op, st.UsedBytes, st.Files, oracle.Used(), oracle.Len())
		}
		for _, q := range paths {
			if c.Peek(q) != oracle.Peek(q) {
				t.Fatalf("op %d: residency of %s diverges", op, q)
			}
		}
		ch, oh := c.Hot(len(paths)), oracle.Hot(len(paths))
		if len(ch) != len(oh) {
			t.Fatalf("op %d: LRU order length diverges: %v vs %v", op, ch, oh)
		}
		for k := range ch {
			if ch[k] != oh[k] {
				t.Fatalf("op %d: LRU order diverges at %d: %v vs %v", op, k, ch, oh)
			}
		}
	}
}
