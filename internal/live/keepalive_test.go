package live

import (
	"strings"
	"testing"
	"time"

	"sweb/internal/storage"
)

// TestClientKeepAliveReusesConnections: repeated fetches from one client
// against one node must ride a single TCP connection.
func TestClientKeepAliveReusesConnections(t *testing.T) {
	cl, paths := startCluster(t, 1, 2, 2048, "rr")
	client := cl.NewClient()
	defer client.Close()
	for i := 0; i < 5; i++ {
		res, err := client.Get(paths[i%len(paths)])
		if err != nil || res.Status != 200 {
			t.Fatalf("fetch %d: res=%+v err=%v", i, res, err)
		}
	}
	if got := cl.Servers[0].Stats().Accepted; got != 1 {
		t.Fatalf("accepted = %d connections for 5 keep-alive fetches, want 1", got)
	}
	// With keep-alive off the same pattern dials per request.
	client.SetKeepAlive(false)
	for i := 0; i < 2; i++ {
		if res, err := client.Get(paths[0]); err != nil || res.Status != 200 {
			t.Fatalf("one-shot fetch %d: res=%+v err=%v", i, res, err)
		}
	}
	if got := cl.Servers[0].Stats().Accepted; got != 3 {
		t.Fatalf("accepted = %d after two one-shot fetches, want 3", got)
	}
}

// TestKeepAliveOffOptionPropagates: a cluster started with KeepAliveOff
// closes every connection after one response, so each fetch is a new
// accept even from a keep-alive client.
func TestKeepAliveOffOptionPropagates(t *testing.T) {
	st := storage.NewStore(1)
	paths := storage.UniformSet(st, 2, 1024)
	cl, err := Start(Options{Nodes: 1, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		KeepAliveOff: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client := cl.NewClient()
	defer client.Close()
	for i := 0; i < 3; i++ {
		if res, err := client.Get(paths[0]); err != nil || res.Status != 200 {
			t.Fatalf("fetch %d: res=%+v err=%v", i, res, err)
		}
	}
	if got := cl.Servers[0].Stats().Accepted; got != 3 {
		t.Fatalf("accepted = %d with KeepAliveOff, want 3", got)
	}
}

// TestClientFollowsEscapedRedirect: a document whose path needs
// percent-escaping, owned by the non-entry node under file-locality, comes
// back through a 302 whose Location carries the escaped path — and the
// client must decode it, re-issue, and land on the bytes.
func TestClientFollowsEscapedRedirect(t *testing.T) {
	const doc = "/spaced dir/a b.html"
	st := storage.NewStore(2)
	st.MustAdd(storage.File{Path: doc, Size: 4096, Owner: 1})
	st.MustAdd(storage.File{Path: "/plain.html", Size: 4096, Owner: 0})
	cl, err := Start(Options{Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "fl", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0}, cl, 2, 5*time.Second)

	client := cl.NewClient()
	defer client.Close()
	res, err := client.GetVia(0, doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || len(res.Body) != 4096 {
		t.Fatalf("escaped-path fetch: status=%d len=%d", res.Status, len(res.Body))
	}
	if !res.Redirected {
		t.Fatal("file-locality fetch from the wrong node did not redirect")
	}
	if !strings.Contains(res.ServedBy, cl.Servers[1].Addr()) {
		t.Fatalf("served by %q, want owner %q", res.ServedBy, cl.Servers[1].Addr())
	}
}

// TestChaosOwnerDiesUnderKeepAliveClient: a client holding a keep-alive
// connection to the relay node keeps using it while the document's owner
// is killed. The relay's pooled upstream connection to the dead owner goes
// stale; the next relayed fetch must degrade to a 503 — on the same client
// connection — and locally-owned documents keep flowing.
func TestChaosOwnerDiesUnderKeepAliveClient(t *testing.T) {
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 4, 4096)
	cl, err := Start(Options{Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		CacheOff: true, FetchAttempts: 1, FetchBackoff: 10 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var localDoc, remoteDoc string
	for _, p := range paths {
		if o, _ := st.Owner(p); o == 0 {
			localDoc = p
		} else {
			remoteDoc = p
		}
	}

	client := cl.NewClient()
	defer client.Close()
	// Warm the whole path: client conn to node 0, upstream conn to node 1.
	res, err := client.GetVia(0, remoteDoc)
	if err != nil || res.Status != 200 {
		t.Fatalf("warm relay: res=%+v err=%v", res, err)
	}

	if err := cl.Kill(1); err != nil {
		t.Fatal(err)
	}

	// The relay discovers its pooled upstream is dead and degrades.
	res, err = client.GetVia(0, remoteDoc)
	if err != nil {
		t.Fatalf("relayed fetch errored instead of degrading: %v", err)
	}
	if res.Status != 503 {
		t.Fatalf("relayed fetch with dead owner = %d, want 503", res.Status)
	}
	// Locally-owned documents still flow, and the client never re-dialed:
	// every request above shared one accepted connection on node 0.
	res, err = client.GetVia(0, localDoc)
	if err != nil || res.Status != 200 {
		t.Fatalf("local fetch after owner death: res=%+v err=%v", res, err)
	}
	if got := cl.Servers[0].Stats().Accepted; got != 1 {
		t.Fatalf("accepted = %d connections across the outage, want 1 (keep-alive held)", got)
	}
}
