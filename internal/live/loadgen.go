package live

import (
	"math/rand"
	"sync"
	"time"
)

// GenResult aggregates a load-generation run against the live cluster.
type GenResult struct {
	Offered    int
	Completed  int
	Failed     int
	Redirected int
	Mean       time.Duration
	Max        time.Duration
	ByServer   map[string]int
}

// Generate fires rps requests per second for duration, drawing paths with
// pick, exactly like the paper's burst tests ("at each second a constant
// number of requests are launched"). It blocks until every request has
// finished or failed.
func (c *Cluster) Generate(rps, seconds int, pick func(i int, rng *rand.Rand) string, seed int64) GenResult {
	client := c.NewClient()
	defer client.Close()
	rng := rand.New(rand.NewSource(seed))
	type outcome struct {
		ok         bool
		redirected bool
		servedBy   string
		elapsed    time.Duration
	}
	total := rps * seconds
	outcomes := make([]outcome, total)
	paths := make([]string, total)
	for i := range paths {
		paths[i] = pick(i, rng)
	}

	var wg sync.WaitGroup
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	idx := 0
	for sec := 0; sec < seconds; sec++ {
		for k := 0; k < rps; k++ {
			i := idx
			idx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := client.Get(paths[i])
				if err != nil || res.Status != 200 {
					return
				}
				outcomes[i] = outcome{ok: true, redirected: res.Redirected, servedBy: res.ServedBy, elapsed: res.Elapsed}
			}()
		}
		if sec < seconds-1 {
			<-ticker.C
		}
	}
	wg.Wait()

	out := GenResult{Offered: total, ByServer: make(map[string]int)}
	var sum time.Duration
	for _, o := range outcomes {
		if !o.ok {
			out.Failed++
			continue
		}
		out.Completed++
		if o.redirected {
			out.Redirected++
		}
		sum += o.elapsed
		if o.elapsed > out.Max {
			out.Max = o.elapsed
		}
		out.ByServer[o.servedBy]++
	}
	if out.Completed > 0 {
		out.Mean = sum / time.Duration(out.Completed)
	}
	return out
}
