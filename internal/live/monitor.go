package live

import (
	"strconv"
	"sync"
	"time"

	"sweb/internal/monitor"
)

// monitorState holds the cluster's attached monitor and its collect loop.
type monitorState struct {
	mon  *monitor.Monitor
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// HTTPSources builds one /sweb/metrics scrape source per node, named by
// node id. Addresses are captured now, so sources stay valid across
// Kill/Restart (a restarted node rebinds its original address).
func (c *Cluster) HTTPSources(timeout time.Duration) []monitor.Source {
	out := make([]monitor.Source, 0, len(c.Servers))
	for i, srv := range c.Servers {
		out = append(out, &monitor.HTTPSource{
			Name:    strconv.Itoa(i),
			Addr:    srv.Addr(),
			Timeout: timeout,
		})
	}
	return out
}

// StartMonitor attaches a cluster monitor that scrapes every node's
// /sweb/metrics each period, with sample timestamps in seconds on the
// shared cluster epoch clock. Idempotent: repeated calls return the
// already-running monitor. Close stops the collect loop.
func (c *Cluster) StartMonitor(cfg monitor.Config, period time.Duration) *monitor.Monitor {
	if c.ms != nil {
		return c.ms.mon
	}
	if period <= 0 {
		period = time.Second
	}
	timeout := period
	if timeout < 500*time.Millisecond {
		timeout = 500 * time.Millisecond
	}
	// Alert-triggered diagnostics: when the cluster has a snapshot dir,
	// any newly firing alert captures a cross-node bundle — after the
	// caller's own OnFire hook, which stays intact.
	if c.snapshotDir != "" {
		user := cfg.OnFire
		cfg.OnFire = func(alerts []monitor.Alert) {
			if user != nil {
				user(alerts)
			}
			c.maybeSnapshot(alerts)
		}
	}
	m := monitor.New(cfg)
	for _, src := range c.HTTPSources(timeout) {
		m.AddSource(src)
	}
	ms := &monitorState{mon: m, stop: make(chan struct{})}
	c.ms = ms
	ms.wg.Add(1)
	go func() {
		defer ms.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-ms.stop:
				return
			case <-t.C:
				m.Collect(time.Since(c.epoch).Seconds())
			}
		}
	}()
	return m
}

// Monitor returns the attached monitor, nil before StartMonitor.
func (c *Cluster) Monitor() *monitor.Monitor {
	if c.ms == nil {
		return nil
	}
	return c.ms.mon
}

// StopMonitor halts the collect loop; the monitor and its store remain
// readable. Safe to call repeatedly or with no monitor attached.
func (c *Cluster) StopMonitor() {
	if c.ms == nil {
		return
	}
	c.ms.once.Do(func() { close(c.ms.stop) })
	c.ms.wg.Wait()
}
