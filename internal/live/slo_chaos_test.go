package live

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"sweb/internal/flight"
	"sweb/internal/metrics"
	"sweb/internal/monitor"
	"sweb/internal/slo"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// TestSLOBreachFiresFastBurnAndSnapshot is the SLO engine's acceptance
// scenario: traced traffic fills the exemplar slots and flight rings, a
// node is killed under load, the injected owner-dead 503s burn the
// availability budget past the fast pair's threshold, slo_fast_avail
// fires through the monitor's ExtraRules hook, and the OnFire snapshot
// writes a bundle named after the SLO alert. The consumed budget must
// match the injected error count exactly, and a response-histogram
// exemplar scraped out of the bundle must resolve to a flight record in
// the same bundle — the breach → exemplar → flight pivot end to end.
func TestSLOBreachFiresFastBurnAndSnapshot(t *testing.T) {
	const (
		nodes       = 3
		dead        = 2
		loaddPeriod = 50 * time.Millisecond
		collect     = 60 * time.Millisecond
	)
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 9, 2048)
	rec := trace.NewRecorder(1 << 14)
	cl, err := Start(Options{
		// Round-robin never redirects, so a survivor entered directly must
		// relay dead-owner documents itself — every injected request is one
		// deterministic owner_unreachable drop (FetchAttempts 1).
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		LoaddPeriod:   loaddPeriod,
		FetchAttempts: 1,
		SnapshotDir:   t.TempDir(),
		Trace:         rec,
		FlightRing:    4096,
		Seed:          37,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)

	objs, err := slo.ParseObjectives("avail=99")
	if err != nil {
		t.Fatal(err)
	}
	mon := cl.StartMonitor(monitor.Config{
		Window: 2,
		// Push the built-in rules past the test's horizon so the only
		// alert that can fire — and trigger the snapshot — is the SLO
		// burn-rate pair under test.
		Rules: monitor.RuleConfig{ForSamples: 100000, StalenessSeconds: 1e9},
		ExtraRules: slo.Rules(objs, slo.Windows{
			FastLong: 3, FastShort: 1, SlowLong: 6, SlowShort: 2,
		}),
	}, collect)

	// Healthy traced traffic: fills every node's response exemplars and
	// flight rings with resolvable trace ids, burns no budget.
	client := cl.NewClient()
	client.SetTrace(rec)
	for round := 0; round < 2; round++ {
		for _, p := range paths {
			if res, err := client.Get(p); err != nil || res.Status != 200 {
				t.Fatalf("healthy get %s: res=%+v err=%v", p, res, err)
			}
		}
	}
	waitFor(t, "first collection rounds", 5*time.Second, func() bool { return mon.Rounds() >= 3 })
	if alerts := mon.Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy traffic fired alerts: %v", monitor.SortedAlertKeys(alerts))
	}
	if got := cl.Bundles(); len(got) != 0 {
		t.Fatalf("healthy cluster already wrote bundles: %v", got)
	}

	var deadPaths []string
	for _, p := range paths {
		if o, _ := st.Owner(p); o == dead {
			deadPaths = append(deadPaths, p)
		}
	}
	if len(deadPaths) == 0 {
		t.Fatal("uniform set left the doomed node unowned")
	}
	if err := cl.Kill(dead); err != nil {
		t.Fatal(err)
	}

	// Inject failures until the fast pair fires: each owner-dead fetch
	// (swebr marks it re-scheduled, so the survivor must serve, not 302)
	// is exactly one 503 and one owner_unreachable drop.
	injected := 0
	breachDeadline := time.Now().Add(20 * time.Second)
	for !mon.AlertFiring("slo_fast_avail", "cluster") {
		if time.Now().After(breachDeadline) {
			t.Fatalf("slo_fast_avail never fired after %d injected errors; alerts: %v",
				injected, monitor.SortedAlertKeys(mon.Alerts()))
		}
		for _, p := range deadPaths {
			status, _, _ := directGet(t, cl.Servers[0].Addr(), p+"?swebr=1")
			if status != 503 {
				t.Fatalf("owner-dead fetch %s: status %d, want 503", p, status)
			}
			injected++
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The firing SLO alert wrote the diagnostic bundle via OnFire.
	waitFor(t, "alert-triggered bundle", 10*time.Second, func() bool {
		return len(cl.Bundles()) >= 1
	})
	bundle := cl.Bundles()[0]
	if !strings.Contains(filepath.Base(bundle), "alert-slo_") {
		t.Fatalf("bundle %s not named after the SLO alert", bundle)
	}

	// Budget accounting: once the collect loop has scraped the final
	// counters, the cluster-wide error count equals the injected 503s —
	// nothing else in this run consumes budget.
	var rep slo.Report
	waitFor(t, "budget accounting to settle", 5*time.Second, func() bool {
		r, err := cl.SLOReport(objs, 0)
		if err != nil {
			return false
		}
		rep = r
		return len(r.Objectives) == 1 && r.Objectives[0].Errors >= float64(injected)
	})
	got := rep.Objectives[0]
	if got.Errors != float64(injected) {
		t.Fatalf("budget charged %v errors, injected %d", got.Errors, injected)
	}
	if !rep.Breached() || got.Met || got.BurnRate <= 1 {
		t.Fatalf("report does not show the breach: %+v", got)
	}
	// The untouched survivor never dropped anything.
	for _, s := range rep.Nodes["1"] {
		if s.Errors != 0 {
			t.Fatalf("node 1 charged %v errors without serving any failure", s.Errors)
		}
	}

	// The pivot: a response-histogram exemplar in the bundle's metrics
	// snapshot names a trace id, and that id resolves to a flight record
	// in the same node's black box within the same bundle.
	resolved := false
	for _, i := range []int{0, 1} {
		ndir := filepath.Join(bundle, "node-node"+strconv.Itoa(i))
		pm, err := os.ReadFile(filepath.Join(ndir, "metrics.prom"))
		if err != nil {
			t.Fatalf("bundle missing node %d metrics: %v", i, err)
		}
		samples, err := metrics.ParseText(strings.NewReader(string(pm)))
		if err != nil {
			t.Fatalf("bundle node %d metrics unparsable: %v", i, err)
		}
		var tid string
		for _, s := range samples {
			if s.Name == slo.ResponseFamily+"_bucket" && s.Exemplar != nil && s.Exemplar.TraceID != "" {
				tid = s.Exemplar.TraceID
				break
			}
		}
		if tid == "" {
			continue
		}
		fb, err := os.ReadFile(filepath.Join(ndir, "flight.json"))
		if err != nil {
			t.Fatalf("bundle missing node %d flight rings: %v", i, err)
		}
		var d flight.Dump
		if err := json.Unmarshal(fb, &d); err != nil {
			t.Fatal(err)
		}
		for _, r := range d.Records {
			if r.TraceID == tid {
				if r.Status != 200 {
					t.Fatalf("exemplar trace %s resolved to status %d, want a success", tid, r.Status)
				}
				resolved = true
				break
			}
		}
		if !resolved {
			t.Fatalf("node %d exemplar trace %s has no flight record in the bundle", i, tid)
		}
	}
	if !resolved {
		t.Fatal("no survivor published a response exemplar in the bundle")
	}
}
