package live

import (
	"math/rand"
	"sync"
	"time"
)

// Faults injects failures into a live cluster run — the chaos knobs the
// integration tests turn: lossy loadd gossip and a slow interconnect. A
// killed node is a separate operation (Cluster.Kill) because it happens at
// a chosen moment, not as a rate.
type Faults struct {
	// BroadcastLoss is the fraction of outgoing loadd datagrams silently
	// dropped, per peer send, in [0,1).
	BroadcastLoss float64
	// DialLatency is injected before every internal-fetch dial, modeling
	// a congested or degraded interconnect path.
	DialLatency time.Duration
	// Seed makes the loss pattern reproducible; each node derives its own
	// stream from it.
	Seed int64
}

// dropFn builds node i's datagram-loss hook (nil when lossless).
func (f *Faults) dropFn(node int64) func() bool {
	if f == nil || f.BroadcastLoss <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(f.Seed + node))
	loss := f.BroadcastLoss
	var mu sync.Mutex
	return func() bool {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < loss
	}
}

// delayFn builds the internal-fetch latency hook (nil when zero).
func (f *Faults) delayFn() func() time.Duration {
	if f == nil || f.DialLatency <= 0 {
		return nil
	}
	d := f.DialLatency
	return func() time.Duration { return d }
}
