package live

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"sweb/internal/flight"
	"sweb/internal/monitor"
	"sweb/internal/storage"
)

// TestFlightSnapshotOnNodeDown is the flight recorder's acceptance
// scenario: traffic fills every node's black box, a node is killed,
// node_down fires, and the OnFire hook writes one cross-node snapshot
// bundle — process profiles, plus flight rings, metrics, and status from
// every surviving node, with the corpse recorded as a hole. When
// SWEB_SNAPSHOT_DIR is set (CI does this) the bundle lands there, so a
// failing chaos run leaves an artifact to download.
func TestFlightSnapshotOnNodeDown(t *testing.T) {
	const (
		nodes        = 3
		dead         = 2
		loaddPeriod  = 50 * time.Millisecond
		loaddTimeout = 400 * time.Millisecond
		collect      = 60 * time.Millisecond
	)
	snapDir := os.Getenv("SWEB_SNAPSHOT_DIR")
	if snapDir == "" {
		snapDir = t.TempDir()
	} else if err := os.MkdirAll(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 6, 2048)
	cl, err := Start(Options{
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod:  loaddPeriod,
		LoaddTimeout: loaddTimeout,
		SnapshotDir:  snapDir,
		Seed:         31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)

	mon := cl.StartMonitor(monitor.Config{
		Window: 2,
		Rules: monitor.RuleConfig{
			StalenessSeconds: loaddTimeout.Seconds(),
			ForSamples:       2,
		},
	}, collect)

	// Fill the black boxes before the fault: the bundle must carry the
	// traffic that preceded the failure, that is its whole point.
	client := cl.NewClient()
	for _, p := range paths {
		if res, err := client.Get(p); err != nil || res.Status != 200 {
			t.Fatalf("get %s: res=%+v err=%v", p, res, err)
		}
	}

	waitFor(t, "first collection rounds", 5*time.Second, func() bool { return mon.Rounds() >= 3 })
	if got := cl.Bundles(); len(got) != 0 {
		t.Fatalf("healthy cluster already wrote bundles: %v", got)
	}

	if err := cl.Kill(dead); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node_down to fire", 10*time.Second, func() bool {
		return mon.AlertFiring("node_down", strconv.Itoa(dead))
	})
	waitFor(t, "alert-triggered bundle", 10*time.Second, func() bool {
		return len(cl.Bundles()) >= 1
	})

	bundle := cl.Bundles()[0]
	if !strings.Contains(filepath.Base(bundle), "alert-") {
		t.Fatalf("bundle %s not named after the alert", bundle)
	}

	// Process profiles captured programmatically.
	for _, rel := range []string{"profiles/goroutine.pprof", "profiles/heap.pprof"} {
		fi, err := os.Stat(filepath.Join(bundle, rel))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("bundle missing %s: err=%v", rel, err)
		}
	}

	// The manifest indexes the bundle and names every node, dead included.
	mb, err := os.ReadFile(filepath.Join(bundle, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man flight.Manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(man.Reason, "alert-") {
		t.Fatalf("manifest reason %q", man.Reason)
	}
	if len(man.Nodes) != nodes {
		t.Fatalf("manifest nodes %v, want %d entries", man.Nodes, nodes)
	}

	// Every survivor contributed its flight rings, metrics, and status.
	for _, i := range []int{0, 1} {
		ndir := filepath.Join(bundle, "node-node"+strconv.Itoa(i))
		fb, err := os.ReadFile(filepath.Join(ndir, "flight.json"))
		if err != nil {
			t.Fatalf("node %d flight rings missing: %v", i, err)
		}
		var d flight.Dump
		if err := json.Unmarshal(fb, &d); err != nil {
			t.Fatal(err)
		}
		if !d.Enabled || d.Total == 0 || len(d.Records) == 0 {
			t.Fatalf("node %d black box empty in bundle: %+v", i, d)
		}
		pm, err := os.ReadFile(filepath.Join(ndir, "metrics.prom"))
		if err != nil || !strings.Contains(string(pm), "sweb_inflight") {
			t.Fatalf("node %d metrics snapshot unusable: err=%v", i, err)
		}
		if _, err := os.Stat(filepath.Join(ndir, "status.json")); err != nil {
			t.Fatalf("node %d status missing: %v", i, err)
		}
	}

	// The corpse is an explicit hole, not a silent omission.
	eb, err := os.ReadFile(filepath.Join(bundle, "node-node"+strconv.Itoa(dead), "error.txt"))
	if err != nil {
		t.Fatalf("dead node left no error marker: %v", err)
	}
	if !strings.Contains(string(eb), "down") {
		t.Fatalf("dead node error marker says %q", eb)
	}

	// The cooldown keeps the alert storm from writing a bundle per rule:
	// gossip_stale fires right behind node_down, yet one bundle stands.
	// (Only assertable while still inside the cooldown window — a starved
	// CI machine could legitimately stretch past it.)
	firstBundleAt := time.Now()
	waitFor(t, "gossip_stale to fire", 10*time.Second, func() bool {
		return mon.AlertFiring("gossip_stale", strconv.Itoa(dead))
	})
	if time.Since(firstBundleAt) < snapshotCooldown {
		if n := len(cl.Bundles()); n != 1 {
			t.Fatalf("alert storm wrote %d bundles, cooldown should hold it to 1", n)
		}
	}
}
