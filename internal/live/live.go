// Package live runs a whole SWEB deployment as real processes-worth of
// goroutines on localhost: n httpd nodes with their own document roots and
// UDP loadd gossip, a round-robin resolver standing in for the DNS front
// end, a redirect-following client, and a burst-style load generator. This
// is the "cluster simulated via processes" substrate: every byte crosses a
// real TCP socket and every load sample a real UDP datagram.
package live

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sweb/internal/core"
	"sweb/internal/dnsrr"
	"sweb/internal/httpd"
	"sweb/internal/httpmsg"
	"sweb/internal/retry"
	"sweb/internal/slo"
	"sweb/internal/storage"
	"sweb/internal/trace"
)

// Options configures a live cluster.
type Options struct {
	// Nodes is the cluster size.
	Nodes int
	// Store describes the documents; files are materialized on disk under
	// BaseDir, one docroot per owning node. Required.
	Store *storage.Store
	// BaseDir hosts the per-node docroots. Required (use t.TempDir() in
	// tests).
	BaseDir string
	// Policy selects the scheduler per node: "sweb" (default), "rr",
	// "fl", "cpu".
	Policy string
	// Params tunes the scheduler (zero: core.DefaultParams).
	Params     core.Params
	HaveParams bool
	// LoaddPeriod overrides the broadcast interval (default 500ms — the
	// live cluster runs short tests, so it gossips faster than the
	// paper's 2-3s while keeping the same structure).
	LoaddPeriod time.Duration
	// LoaddTimeout overrides the peer-silence threshold (default: the
	// httpd default of 8s; chaos tests shorten it).
	LoaddTimeout time.Duration
	// MaxConcurrent is the per-node accept capacity (default 256).
	MaxConcurrent int
	// FetchAttempts and FetchBackoff tune the internal-fetch retry budget
	// per node (zero: httpd defaults).
	FetchAttempts int
	FetchBackoff  time.Duration
	// RetryAfterHint is stamped on degraded 503s (zero: httpd default).
	RetryAfterHint time.Duration
	// FailureLimit is the consecutive data-path failure count before a
	// peer is scheduled around (zero: loadd default).
	FailureLimit int
	// CacheBytes is each node's hot-file cache capacity (zero: httpd's
	// DefaultCacheBytes).
	CacheBytes int64
	// CacheOff disables the hot-file cache on every node.
	CacheOff bool
	// IdleTimeout bounds how long a keep-alive connection may sit between
	// requests on every node (zero: httpd default).
	IdleTimeout time.Duration
	// KeepAliveMax caps requests served per connection (zero: httpd
	// default; negative: unlimited).
	KeepAliveMax int
	// KeepAliveOff makes every node close connections after one response,
	// the pre-persistent-connection behavior.
	KeepAliveOff bool
	// Faults, when non-nil, injects gossip loss and fetch latency.
	Faults *Faults
	// Trace, when non-nil, is shared by every node: each request's
	// lifecycle events land in one recorder, aggregable by the same
	// renderers the simulator uses.
	Trace *trace.Recorder
	// NodeTraces, when > 0, gives every node its own recorder capped at
	// that many events (overriding Trace) — the distributed configuration,
	// where each node captures only its own view and the streams are
	// stitched back together by scraping /sweb/trace into a Collector.
	NodeTraces int
	// DisableIntrospection turns off /sweb/status and /sweb/metrics on
	// every node.
	DisableIntrospection bool
	// FlightOff disables the flight recorder on every node (the overhead
	// ablation); FlightRing/FlightNotable size the rings (zero: flight
	// defaults); SlowThreshold routes slower requests to the notable ring
	// (zero: 1s default, negative: disabled).
	FlightOff     bool
	FlightRing    int
	FlightNotable int
	SlowThreshold time.Duration
	// HeatOff disables document-heat telemetry on every node (the
	// overhead ablation); HeatK sizes the sketches (zero: heat default).
	HeatOff bool
	HeatK   int
	// SnapshotDir, when set, enables diagnostic bundles: alerts from the
	// cluster monitor and WriteSnapshot calls write cross-node bundle
	// directories under it.
	SnapshotDir string
	// SLO sets every node's /sweb/slo objectives (empty: slo defaults);
	// ExemplarOff skips histogram exemplar stamping on traced successes
	// (the overhead ablation).
	SLO         []slo.Objective
	ExemplarOff bool
	// Replicas, when > 1, replicates every static document R ways at
	// startup (storage.Replicate's round-robin placement) and
	// materializes each copy in its node's docroot — the availability
	// baseline the chaos tests kill nodes under.
	Replicas int
	// Seed drives file content generation.
	Seed int64
}

// Cluster is a running live deployment.
type Cluster struct {
	Servers  []*httpd.Server
	Resolver *dnsrr.Resolver
	store    *storage.Store
	// epoch is the shared zero point of every node's trace clock.
	epoch time.Time
	// cfgs holds each node's config with its *bound* addresses, so a
	// killed node can be restarted in place; nil for Assemble clusters.
	cfgs  []httpd.Config
	peers []httpd.Peer
	// ms is the attached cluster monitor, nil until StartMonitor.
	ms *monitorState
	// rb is the attached replica rebalancer, nil until StartRebalancer.
	rb *rebalancerState

	// snapshotDir is the bundle destination; snapMu serializes writes and
	// guards the cooldown clock and the written-bundle list.
	snapshotDir string
	snapMu      sync.Mutex
	lastSnap    time.Time
	bundles     []string
}

// Start materializes the docroots, binds and starts every node, and wires
// the peer tables.
func Start(o Options) (*Cluster, error) {
	if o.Nodes <= 0 {
		return nil, fmt.Errorf("live: need at least one node")
	}
	if o.Store == nil || o.BaseDir == "" {
		return nil, fmt.Errorf("live: Store and BaseDir are required")
	}
	if o.Store.Nodes() != o.Nodes {
		return nil, fmt.Errorf("live: store built for %d nodes, want %d", o.Store.Nodes(), o.Nodes)
	}
	if o.LoaddPeriod == 0 {
		o.LoaddPeriod = 500 * time.Millisecond
	}
	if o.Replicas > 1 {
		storage.Replicate(o.Store, o.Replicas)
	}
	if err := Materialize(o.Store, o.BaseDir, o.Seed); err != nil {
		return nil, err
	}
	policies := map[string]func(core.Params) core.Policy{
		"":     func(p core.Params) core.Policy { return core.NewSWEB(p) },
		"sweb": func(p core.Params) core.Policy { return core.NewSWEB(p) },
		"rr":   func(p core.Params) core.Policy { return core.RoundRobin{} },
		"fl":   func(p core.Params) core.Policy { return core.FileLocality{P: p} },
		"cpu":  func(p core.Params) core.Policy { return core.CPUOnly{P: p} },
	}
	mk, ok := policies[o.Policy]
	if !ok {
		return nil, fmt.Errorf("live: unknown policy %q", o.Policy)
	}
	params := o.Params
	if !o.HaveParams {
		params = core.DefaultParams()
	}

	cl := &Cluster{store: o.Store, epoch: time.Now(), snapshotDir: o.SnapshotDir}
	for i := 0; i < o.Nodes; i++ {
		rec := o.Trace
		if o.NodeTraces > 0 {
			rec = trace.NewRecorder(o.NodeTraces)
		}
		cfg := httpd.Config{
			ID:             i,
			DocRoot:        nodeDocRoot(o.BaseDir, i),
			Store:          o.Store,
			Policy:         mk(params),
			Params:         params,
			HaveParams:     true,
			LoaddPeriod:    o.LoaddPeriod,
			LoaddTimeout:   o.LoaddTimeout,
			MaxConcurrent:  o.MaxConcurrent,
			FetchAttempts:  o.FetchAttempts,
			FetchBackoff:   o.FetchBackoff,
			RetryAfterHint: o.RetryAfterHint,
			FailureLimit:   o.FailureLimit,
			CacheBytes:     o.CacheBytes,
			CacheOff:       o.CacheOff,
			IdleTimeout:    o.IdleTimeout,
			KeepAliveMax:   o.KeepAliveMax,
			KeepAliveOff:   o.KeepAliveOff,
			DropBroadcast:  o.Faults.dropFn(int64(i)),
			DialDelay:      o.Faults.delayFn(),
			Trace:          rec,
			Epoch:          cl.epoch,
			FlightOff:      o.FlightOff,
			FlightRing:     o.FlightRing,
			FlightNotable:  o.FlightNotable,
			SlowThreshold:  o.SlowThreshold,
			HeatOff:        o.HeatOff,
			HeatK:          o.HeatK,
			SnapshotDir:    o.SnapshotDir,
			SLO:            o.SLO,
			ExemplarOff:    o.ExemplarOff,

			DisableIntrospection: o.DisableIntrospection,
		}
		srv, err := httpd.New(cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Servers = append(cl.Servers, srv)
		// Keep the bound addresses so Restart can re-create the node in
		// place and peers keep reaching it.
		cfg.Addr = srv.Addr()
		cfg.UDPAddr = srv.UDPAddr()
		cl.cfgs = append(cl.cfgs, cfg)
	}
	peers := make([]httpd.Peer, 0, o.Nodes)
	ids := make([]int, 0, o.Nodes)
	for i, srv := range cl.Servers {
		peers = append(peers, httpd.Peer{ID: i, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()})
		ids = append(ids, i)
	}
	cl.peers = peers
	for _, srv := range cl.Servers {
		srv.SetPeers(peers)
		srv.Start()
	}
	var err error
	cl.Resolver, err = dnsrr.New(ids, 0)
	if err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// Assemble wraps already-constructed servers (e.g. nodes sharing one access
// log) into a Cluster with a round-robin resolver. The servers must already
// have their peers set; Assemble starts none of them.
func Assemble(servers []*httpd.Server, store *storage.Store) (*Cluster, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("live: no servers to assemble")
	}
	ids := make([]int, len(servers))
	for i, srv := range servers {
		ids[i] = srv.ID()
	}
	resolver, err := dnsrr.New(ids, 0)
	if err != nil {
		return nil, err
	}
	return &Cluster{Servers: servers, Resolver: resolver, store: store, epoch: time.Now()}, nil
}

// Epoch returns the cluster's shared trace-clock zero (for Assemble
// clusters, the assembly time — the servers keep their own epochs).
func (c *Cluster) Epoch() time.Time { return c.epoch }

// Close stops every node.
func (c *Cluster) Close() {
	c.StopRebalancer()
	c.StopMonitor()
	for _, srv := range c.Servers {
		if srv != nil {
			srv.Close()
		}
	}
}

// Kill crashes node i mid-run: its HTTP listener and loadd socket close
// immediately with no goodbye. The DNS rotation keeps resolving to it —
// the paper's premise is that round-robin DNS cannot react to failures —
// so the surviving nodes (and the clients' own failover) must cope.
func (c *Cluster) Kill(i int) error {
	if i < 0 || i >= len(c.Servers) {
		return fmt.Errorf("live: no node %d", i)
	}
	c.Servers[i].Close()
	return nil
}

// Restart brings a killed node back on its original HTTP and loadd
// addresses with a fresh server, re-wiring the peer tables. The node keeps
// its recorder: timestamps are relative to the shared cluster epoch, so
// the stream stays consistent across the outage. The chaos tests use it to
// watch staleness metrics recover.
func (c *Cluster) Restart(i int) error {
	if i < 0 || i >= len(c.Servers) {
		return fmt.Errorf("live: no node %d", i)
	}
	if c.cfgs == nil {
		return fmt.Errorf("live: cluster was assembled from external servers; restart is not supported")
	}
	srv, err := httpd.New(c.cfgs[i])
	if err != nil {
		return err
	}
	c.Servers[i] = srv
	srv.SetPeers(c.peers)
	srv.Start()
	return nil
}

// Addrs returns the HTTP addresses in node order.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Servers))
	for i, srv := range c.Servers {
		out[i] = srv.Addr()
	}
	return out
}

// nodeDocRoot is the directory holding node i's documents.
func nodeDocRoot(base string, i int) string {
	return filepath.Join(base, fmt.Sprintf("node%d", i))
}

// Materialize writes every document in the store to each replica's
// docroot with deterministic pseudo-random content (one generation per
// document, so every copy is byte-identical).
func Materialize(st *storage.Store, baseDir string, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range st.Paths() {
		f, _ := st.Lookup(p)
		if f.CGI {
			continue // dynamic endpoints are registered, not stored
		}
		body := make([]byte, f.Size)
		rng.Read(body)
		for _, node := range f.ReplicaSet() {
			full := filepath.Join(nodeDocRoot(baseDir, node), filepath.FromSlash(strings.TrimPrefix(p, "/")))
			if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
				return fmt.Errorf("live: %v", err)
			}
			if err := os.WriteFile(full, body, 0o644); err != nil {
				return fmt.Errorf("live: %v", err)
			}
		}
	}
	return nil
}

// Result is the outcome of one client fetch.
type Result struct {
	Status     int
	Body       []byte
	Redirected bool
	ServedBy   string // final address that answered
	Elapsed    time.Duration
}

// Client fetches documents through the DNS rotation, following at most one
// redirect like a 1996 browser. When a node is unreachable — the rotation
// still resolves to crashed nodes — the client re-resolves and tries the
// next address, the way browsers walked a DNS answer's remaining A
// records, under a small capped-backoff budget.
//
// By default the client speaks HTTP/1.1 with keep-alive and parks one idle
// connection per node address, so a redirect's follow-up request to a node
// it has already visited rides the open socket instead of paying a fresh
// TCP handshake. SetKeepAlive(false) restores one-shot HTTP/1.0 fetches.
type Client struct {
	mu        sync.Mutex
	cluster   *Cluster
	timeout   time.Duration
	maxBytes  int64
	attempts  int
	backoff   time.Duration
	rec       *trace.Recorder
	keepAlive bool
	idle      map[string]*persistConn
	closed    bool
}

// persistConn is one parked keep-alive connection with its response parser.
type persistConn struct {
	c  net.Conn
	br *bufio.Reader
}

func (p *persistConn) Close() { _ = p.c.Close() }

// SetTrace makes the client originate traces: every Get mints a trace id,
// records the client-side events (issued, resolved, delivered/timed-out)
// on the cluster's epoch clock, and sends the id along as swebt so the
// serving nodes join the same span. The span then covers the full
// client-observed latency, redirect round-trip included.
func (cl *Client) SetTrace(rec *trace.Recorder) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.rec = rec
}

// NewClient builds a client for the cluster. The default failover budget
// is one attempt per node plus one.
func (c *Cluster) NewClient() *Client {
	return &Client{
		cluster: c, timeout: 30 * time.Second, maxBytes: 64 << 20,
		attempts: len(c.Servers) + 1, backoff: 50 * time.Millisecond,
		keepAlive: true, idle: make(map[string]*persistConn),
	}
}

// SetKeepAlive toggles connection reuse. Turning it off closes any parked
// connections and makes every fetch a one-shot HTTP/1.0 exchange.
func (cl *Client) SetKeepAlive(on bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.keepAlive = on
	if !on {
		for addr, pc := range cl.idle {
			pc.Close()
			delete(cl.idle, addr)
		}
	}
}

// Close releases every parked keep-alive connection. The client stays
// usable; subsequent fetches just dial fresh.
func (cl *Client) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	for addr, pc := range cl.idle {
		pc.Close()
		delete(cl.idle, addr)
	}
}

// takeConn pops the parked connection for addr, nil when none.
func (cl *Client) takeConn(addr string) *persistConn {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	pc := cl.idle[addr]
	delete(cl.idle, addr)
	return pc
}

// parkConn stores a reusable connection for addr, displacing (and closing)
// any connection already parked there.
func (cl *Client) parkConn(addr string, pc *persistConn) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed || !cl.keepAlive {
		pc.Close()
		return
	}
	if old := cl.idle[addr]; old != nil {
		old.Close()
	}
	cl.idle[addr] = pc
}

// SetRetry tunes the failover budget: total attempts across re-resolves
// and the base backoff between them (doubling, capped at 1s).
func (cl *Client) SetRetry(attempts int, backoff time.Duration) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.attempts = attempts
	cl.backoff = backoff
}

// Get fetches path, following redirects (up to 4 hops as browsers did) and
// failing over to the next resolved node when one is unreachable.
func (cl *Client) Get(path string) (*Result, error) {
	cl.mu.Lock()
	pol := retry.Policy{MaxAttempts: cl.attempts, BaseDelay: cl.backoff, MaxDelay: time.Second}
	rec := cl.rec
	cl.mu.Unlock()
	start := time.Now()
	tid := int64(-1)
	if rec.Enabled() {
		var tctx trace.TraceID
		tid, tctx = rec.Begin("")
		rec.Record(tid, cl.sinceEpoch(start), trace.EvIssued, -1, "path="+path)
		path = appendQueryParam(path, traceQueryParam+"="+string(tctx))
	}
	var res *Result
	resolvedNode, resolvedAt := -1, time.Time{}
	err := pol.Do(nil, func(int) error {
		node, err := cl.cluster.Resolver.Resolve("", float64(time.Now().UnixNano())/1e9)
		if err != nil {
			return err
		}
		resolvedNode, resolvedAt = node, time.Now()
		r, err := cl.getVia(cl.cluster.Servers[node].Addr(), path, start)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		rec.Record(tid, cl.sinceEpoch(time.Now()), trace.EvTimedOut, -1, err.Error())
		return nil, err
	}
	rec.Record(tid, cl.sinceEpoch(resolvedAt), trace.EvResolved, resolvedNode, "")
	rec.Record(tid, cl.sinceEpoch(time.Now()), trace.EvDelivered, -1,
		fmt.Sprintf("status=%d", res.Status))
	return res, nil
}

// GetVia fetches path entering the cluster at node's HTTP listener,
// bypassing the DNS rotation — benchmarks and chaos tests pin the entry
// node so cache placement and internal-fetch direction are deterministic.
// Redirects are still followed like Get's.
func (cl *Client) GetVia(node int, path string) (*Result, error) {
	if node < 0 || node >= len(cl.cluster.Servers) {
		return nil, fmt.Errorf("live: no node %d", node)
	}
	return cl.getVia(cl.cluster.Servers[node].Addr(), path, time.Now())
}

// traceQueryParam mirrors the httpd swebt parameter name; the client sends
// a bare trace id (no send timestamp — there is no hop to measure yet).
const traceQueryParam = "swebt"

// sinceEpoch converts a wall instant to the cluster's shared trace clock.
func (cl *Client) sinceEpoch(t time.Time) float64 {
	return t.Sub(cl.cluster.epoch).Seconds()
}

// appendQueryParam adds one key=value to a path-and-query string.
func appendQueryParam(pathAndQuery, kv string) string {
	if strings.Contains(pathAndQuery, "?") {
		return pathAndQuery + "&" + kv
	}
	return pathAndQuery + "?" + kv
}

// getVia performs one full fetch entering the cluster at addr. With
// keep-alive on, the redirect hop's second request reuses the pool — when
// the rotation has already visited the target node, no handshake is paid.
func (cl *Client) getVia(addr, path string, start time.Time) (*Result, error) {
	redirected := false
	for hop := 0; hop < 4; hop++ {
		status, hdr, body, err := cl.roundTrip(addr, path)
		if err != nil {
			return nil, err
		}
		if status == httpmsg.StatusMovedTemporarily {
			loc := hdr.Get("Location")
			naddr, npath, ok := splitLocation(loc)
			if !ok {
				return nil, fmt.Errorf("live: bad Location %q", loc)
			}
			addr, path = naddr, npath
			redirected = true
			continue
		}
		return &Result{
			Status: status, Body: body, Redirected: redirected,
			ServedBy: addr, Elapsed: time.Since(start),
		}, nil
	}
	return nil, fmt.Errorf("live: too many redirects for %s", path)
}

// roundTrip performs one GET against addr. With keep-alive on it tries the
// parked connection first (retrying once on a fresh dial if the server
// idle-timed it out), and parks the connection back when the response
// framing leaves it clean. With keep-alive off it is a one-shot HTTP/1.0
// exchange.
func (cl *Client) roundTrip(addr, pathAndQuery string) (int, httpmsg.Header, []byte, error) {
	cl.mu.Lock()
	ka := cl.keepAlive && !cl.closed
	cl.mu.Unlock()
	if !ka {
		return fetchOnce(addr, pathAndQuery, cl.timeout, cl.maxBytes)
	}
	req := cl.buildGet(pathAndQuery, true)
	if pc := cl.takeConn(addr); pc != nil {
		resp, err := cl.exchange(pc, req)
		if err == nil {
			return cl.finish(addr, pc, resp)
		}
		pc.Close() // idle connection went stale under us; dial fresh
	}
	conn, err := net.DialTimeout("tcp", addr, cl.timeout)
	if err != nil {
		return 0, nil, nil, err
	}
	pc := &persistConn{c: conn, br: bufio.NewReader(conn)}
	resp, err := cl.exchange(pc, req)
	if err != nil {
		pc.Close()
		return 0, nil, nil, err
	}
	return cl.finish(addr, pc, resp)
}

// buildGet parses "/path?query" into a request; keepAlive selects the
// HTTP/1.1 persistent form. The path is decoded first: redirect Locations
// arrive percent-escaped, and Request.Write re-escapes on the wire.
func (cl *Client) buildGet(pathAndQuery string, keepAlive bool) *httpmsg.Request {
	p, q := pathAndQuery, ""
	if i := strings.IndexByte(pathAndQuery, '?'); i >= 0 {
		p, q = pathAndQuery[:i], pathAndQuery[i+1:]
	}
	if dp, err := httpmsg.DecodePath(p); err == nil {
		p = dp
	}
	req := &httpmsg.Request{Method: "GET", Path: p, Query: q, Header: httpmsg.Header{}}
	if keepAlive {
		req.Proto = "HTTP/1.1"
		req.Header.Set("Connection", "keep-alive")
	}
	return req
}

// exchange writes one request and reads the full response off pc.
func (cl *Client) exchange(pc *persistConn, req *httpmsg.Request) (*httpmsg.Response, error) {
	_ = pc.c.SetDeadline(time.Now().Add(cl.timeout))
	if err := req.Write(pc.c); err != nil {
		return nil, err
	}
	return httpmsg.ReadResponse(pc.br, cl.maxBytes)
}

// finish parks pc for reuse when the response says the server is keeping
// the connection open and the framing consumed the body exactly.
func (cl *Client) finish(addr string, pc *persistConn, resp *httpmsg.Response) (int, httpmsg.Header, []byte, error) {
	if resp.KeepAlive() && resp.SelfDelimited() {
		cl.parkConn(addr, pc)
	} else {
		pc.Close()
	}
	return resp.StatusCode, resp.Header, resp.Body, nil
}

// fetchOnce performs a single HTTP/1.0 GET.
func fetchOnce(addr, pathAndQuery string, timeout time.Duration, maxBytes int64) (int, httpmsg.Header, []byte, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	p, q := pathAndQuery, ""
	if i := strings.IndexByte(pathAndQuery, '?'); i >= 0 {
		p, q = pathAndQuery[:i], pathAndQuery[i+1:]
	}
	if dp, err := httpmsg.DecodePath(p); err == nil {
		p = dp
	}
	req := &httpmsg.Request{Method: "GET", Path: p, Query: q, Header: httpmsg.Header{}}
	if err := req.Write(conn); err != nil {
		return 0, nil, nil, err
	}
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), maxBytes)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, resp.Body, nil
}

// splitLocation turns "http://host:port/path?q" into (host:port, /path?q).
func splitLocation(loc string) (addr, path string, ok bool) {
	rest, ok := strings.CutPrefix(loc, "http://")
	if !ok {
		return "", "", false
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return rest, "/", true
	}
	return rest[:slash], rest[slash:], true
}

// Post sends a POST with body to path (the footnote-1 extension).
func (cl *Client) Post(path string, body []byte) (*Result, error) {
	start := time.Now()
	node, err := cl.cluster.Resolver.Resolve("", float64(time.Now().UnixNano())/1e9)
	if err != nil {
		return nil, err
	}
	addr := cl.cluster.Servers[node].Addr()
	conn, err := net.DialTimeout("tcp", addr, cl.timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(cl.timeout))
	req := &httpmsg.Request{Method: "POST", Path: path, Header: httpmsg.Header{}, Body: body}
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), cl.maxBytes)
	if err != nil {
		return nil, err
	}
	return &Result{Status: resp.StatusCode, Body: resp.Body, ServedBy: addr, Elapsed: time.Since(start)}, nil
}
