package live

import (
	"strconv"
	"testing"
	"time"

	"sweb/internal/metrics"
	"sweb/internal/monitor"
	"sweb/internal/storage"
)

// TestReplicaSurvivesOwnerKill is the replication acceptance scenario:
// with R=2 every document survives any single node's death. Each node is
// killed in turn under request load, and every document must keep serving
// 200 — zero 503s — because the internal fetch rotation falls through to
// the surviving replica. The monitor notices the corpse (node_down), the
// scraped sweb_replica_fetch_total counters prove failover traffic moved
// to the survivor (and none kept crediting the dead source), the victim
// node's flight recorder on a forced-relay survivor shows the successful
// serves, and Restart heals the cluster for the next round.
func TestReplicaSurvivesOwnerKill(t *testing.T) {
	const (
		nodes       = 3
		loaddPeriod = 50 * time.Millisecond
		collect     = 60 * time.Millisecond
	)
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 9, 4096)
	cl, err := Start(Options{
		// Round-robin serves where the request lands, so pinning the entry
		// node forces the internal fetch path instead of a redirect.
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		Replicas:      2,
		CacheOff:      true, // every foreign serve re-fetches: steady failover evidence
		LoaddPeriod:   loaddPeriod,
		FetchAttempts: 2,
		FetchBackoff:  10 * time.Millisecond,
		Seed:          23,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// R=2 must actually hold before anything is killed.
	for _, p := range paths {
		if reps := st.Replicas(p); len(reps) != 2 {
			t.Fatalf("%s replica set = %v, want 2-way", p, reps)
		}
	}

	waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)

	// Only node_down (and gossip staleness) are in play; the traffic-shape
	// rules are parked out of reach.
	mon := cl.StartMonitor(monitor.Config{
		Window: 2,
		Rules: monitor.RuleConfig{
			RedirectRatio:   2,
			ImbalanceCoV:    100,
			CacheMinLookups: 1e9,
			ForSamples:      2,
		},
	}, collect)

	client := cl.NewClient()

	for dead := 0; dead < nodes; dead++ {
		deadName := strconv.Itoa(dead)
		pre, _ := cl.ScrapeMetrics()

		if err := cl.Kill(dead); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "node_down("+deadName+") to fire", 10*time.Second, func() bool {
			return mon.AlertFiring("node_down", deadName)
		})

		// The load: every document via every surviving entry node, twice.
		// All of them are 2-way replicated, so not one response may be 503.
		for round := 0; round < 2; round++ {
			for s := 0; s < nodes; s++ {
				if s == dead {
					continue
				}
				for _, p := range paths {
					res, err := client.GetVia(s, p)
					if err != nil {
						t.Fatalf("kill %d: GetVia(%d, %s) err=%v", dead, s, p, err)
					}
					if res.Status != 200 {
						t.Fatalf("kill %d: GetVia(%d, %s) status=%d, want 200 (zero 503s for replicated docs)",
							dead, s, p, res.Status)
					}
				}
			}
		}

		// Failover evidence. Pick a document the dead node owned: its
		// replica set is {dead, survivor}, so the non-replica survivor was
		// forced to fetch it remotely — and can only have been fed by the
		// surviving replica.
		var deadPath string
		for _, p := range paths {
			if o, _ := st.Owner(p); o == dead {
				deadPath = p
				break
			}
		}
		if deadPath == "" {
			t.Fatalf("uniform set left node %d ownerless", dead)
		}
		reps := st.Replicas(deadPath)
		survivorRep := reps[1] // Replicate never reorders: primary first
		post, _ := cl.ScrapeMetrics()
		lbl := metrics.Labels{"path": deadPath, "source": strconv.Itoa(survivorRep)}
		if before, after := MetricValue(pre, "sweb_replica_fetch_total", lbl),
			MetricValue(post, "sweb_replica_fetch_total", lbl); after <= before {
			t.Fatalf("kill %d: fetches from surviving replica %d of %s did not grow (%v -> %v)",
				dead, survivorRep, deadPath, before, after)
		}
		// No successful fetch may have credited the dead source while it
		// was down. (source=dead samples live on the surviving fetchers,
		// so they are visible in both scrapes.)
		if before, after := sourceFetchTotal(pre, deadName), sourceFetchTotal(post, deadName); after != before {
			t.Fatalf("kill %d: fetches crediting the dead source grew %v -> %v", dead, before, after)
		}
		// The forced-relay survivor's flight recorder carries the proof at
		// per-request grain: successful serves of the dead node's document.
		forced := 3 - dead - survivorRep
		fd, err := Flight(cl.Servers[forced].Addr())
		if err != nil {
			t.Fatal(err)
		}
		served := false
		for _, rec := range fd.Records {
			if rec.Path == deadPath && rec.Status == 200 {
				served = true
			}
		}
		if !served {
			t.Fatalf("kill %d: node %d's flight records show no 200 for %s", dead, forced, deadPath)
		}

		// Restart heals: the alert clears, gossip reconverges, and the
		// reborn node serves again.
		if err := cl.Restart(dead); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "node_down("+deadName+") to clear", 10*time.Second, func() bool {
			return !mon.AlertFiring("node_down", deadName)
		})
		waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)
		waitFor(t, "restarted node to serve", 10*time.Second, func() bool {
			res, err := client.GetVia(dead, paths[0])
			return err == nil && res.Status == 200
		})
	}
}

// sourceFetchTotal sums sweb_replica_fetch_total across all paths for one
// source node.
func sourceFetchTotal(samples []metrics.Sample, source string) float64 {
	var sum float64
	for _, s := range samples {
		if s.Name == "sweb_replica_fetch_total" && s.Labels["source"] == source {
			sum += s.Value
		}
	}
	return sum
}
