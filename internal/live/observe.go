package live

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sweb/internal/flight"
	"sweb/internal/heat"
	"sweb/internal/httpd"
	"sweb/internal/httpmsg"
	"sweb/internal/metrics"
	"sweb/internal/stats"
	"sweb/internal/trace"
)

// scrapeTimeout bounds one introspection fetch; dead nodes fail the dial
// fast and are skipped.
const scrapeTimeout = 5 * time.Second

// Status fetches and decodes one node's /sweb/status.
func Status(addr string) (*httpd.StatusReport, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/status", scrapeTimeout, 16<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/status returned %d", addr, code)
	}
	var rep httpd.StatusReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("live: %s/sweb/status: %v", addr, err)
	}
	return &rep, nil
}

// Flight fetches and decodes one node's /sweb/flight black-box dump.
func Flight(addr string) (*flight.Dump, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/flight", scrapeTimeout, 16<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/flight returned %d", addr, code)
	}
	var dump flight.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		return nil, fmt.Errorf("live: %s/sweb/flight: %v", addr, err)
	}
	return &dump, nil
}

// MergedHeat folds every live node's document-heat sketch into the
// cluster-wide ranking — the in-process analogue of scraping and merging
// /sweb/heat from each node. Dead nodes are skipped.
func (c *Cluster) MergedHeat() heat.Merged {
	var dumps []heat.Dump
	for _, srv := range c.Servers {
		if srv == nil || srv.Closed() {
			continue
		}
		dumps = append(dumps, srv.HeatDump())
	}
	return heat.Merge(dumps)
}

// Heat fetches and decodes one node's /sweb/heat document-heat dump.
func Heat(addr string) (*heat.Dump, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/heat", scrapeTimeout, 16<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/heat returned %d", addr, code)
	}
	var dump heat.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		return nil, fmt.Errorf("live: %s/sweb/heat: %v", addr, err)
	}
	return &dump, nil
}

// ReplicateCmd asks one node to apply a replica-set change via
// /sweb/replicate: the addressed node materializes (add) or retires
// (drop) its own copy when node is its id, and otherwise just records
// the routing fact. Returns the replica set the node reports afterward.
func ReplicateCmd(addr, path string, node int, action string) ([]int, error) {
	q := fmt.Sprintf("/sweb/replicate?path=%s&node=%d&action=%s",
		httpmsg.EscapePath(path), node, action)
	code, _, body, err := fetchOnce(addr, q, scrapeTimeout, 1<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/replicate returned %d", addr, code)
	}
	var resp struct {
		Replicas []int `json:"replicas"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("live: %s/sweb/replicate: %v", addr, err)
	}
	return resp.Replicas, nil
}

// TriggerSnapshot asks one node to write a diagnostic bundle via
// /sweb/snapshot and returns the bundle path (local to that node).
func TriggerSnapshot(addr string) (string, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/snapshot", scrapeTimeout, 1<<20)
	if err != nil {
		return "", err
	}
	if code != httpmsg.StatusOK {
		return "", fmt.Errorf("live: %s/sweb/snapshot returned %d", addr, code)
	}
	var resp struct {
		Bundle string `json:"bundle"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return "", fmt.Errorf("live: %s/sweb/snapshot: %v", addr, err)
	}
	return resp.Bundle, nil
}

// Metrics scrapes and parses one node's /sweb/metrics exposition.
func Metrics(addr string) ([]metrics.Sample, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/metrics", scrapeTimeout, 16<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/metrics returned %d", addr, code)
	}
	return metrics.ParseText(strings.NewReader(string(body)))
}

// ScrapeTrace fetches and decodes one node's /sweb/trace dump.
func ScrapeTrace(addr string) (*httpd.TraceDump, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/trace", scrapeTimeout, 64<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/trace returned %d", addr, code)
	}
	var dump httpd.TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		return nil, fmt.Errorf("live: %s/sweb/trace: %v", addr, err)
	}
	return &dump, nil
}

// ScrapeTraces pulls every live node's event stream into a Collector —
// each anchored by the epoch the node advertised — and returns it with the
// number of nodes that contributed. Dead nodes and nodes with tracing off
// are skipped.
func (c *Cluster) ScrapeTraces() (*trace.Collector, int) {
	col := trace.NewCollector()
	up := 0
	for _, srv := range c.Servers {
		dump, err := ScrapeTrace(srv.Addr())
		if err != nil || !dump.Enabled {
			continue
		}
		col.Add(dump.EpochUnix, dump.Events)
		up++
	}
	return col, up
}

// ScrapeMetrics scrapes every node, skipping the dead ones (a killed node
// refuses the dial — exactly the condition the chaos tests probe), and
// returns the merged samples plus the number of nodes that answered.
func (c *Cluster) ScrapeMetrics() ([]metrics.Sample, int) {
	var scrapes [][]metrics.Sample
	up := 0
	for _, srv := range c.Servers {
		samples, err := Metrics(srv.Addr())
		if err != nil {
			continue
		}
		scrapes = append(scrapes, samples)
		up++
	}
	return metrics.MergeSamples(scrapes...), up
}

// MetricValue reads one merged sample, 0 when absent.
func MetricValue(samples []metrics.Sample, name string, labels metrics.Labels) float64 {
	v, _ := metrics.Value(samples, name, labels)
	return v
}

// PhaseStat is one row of the report's per-phase latency table.
type PhaseStat struct {
	Phase string
	Count float64
	P50   float64
	P95   float64
}

// PredictionStat compares the broker's predicted t_s term against the
// measured time for one phase, cluster-wide. Error is
// (predicted-actual)/actual; NaN with no comparisons.
type PredictionStat struct {
	Phase         string
	PredictedMean float64
	ActualMean    float64
	Error         float64
}

// ClusterReport is the paper-style aggregate view of a live run,
// assembled from every reachable node's exposition.
type ClusterReport struct {
	NodesUp      int
	Policy       string
	Connected    float64
	Sent         float64
	Redirected   float64
	Refused      float64
	RedirectRate float64 // redirected / connected
	Drops        map[string]float64
	Phases       []PhaseStat
	Prediction   []PredictionStat
	Compared     float64 // requests with both prediction and measurement
}

// reportPhases are the phase histogram cells the report tabulates, in
// lifecycle order. redirect_hop is the measured t_redirection: the wall
// time between a 302 leaving one node and the redirected connection
// arriving at the target.
var reportPhases = []string{"parse", "analyze", "redirect", "redirect_hop", "fetch_local", "fetch_nfs", "cgi"}

// Report scrapes the cluster and reduces the merged samples to the
// redirect rate, per-phase latency quantiles, and the predicted-vs-actual
// t_s error — the live analogue of the paper's Table 5.
func (c *Cluster) Report() (*ClusterReport, error) {
	samples, up := c.ScrapeMetrics()
	if up == 0 {
		return nil, fmt.Errorf("live: no node answered /sweb/metrics")
	}
	r := &ClusterReport{
		NodesUp:    up,
		Connected:  MetricValue(samples, "sweb_events_total", metrics.Labels{"event": "connected"}),
		Sent:       MetricValue(samples, "sweb_events_total", metrics.Labels{"event": "sent"}),
		Redirected: MetricValue(samples, "sweb_events_total", metrics.Labels{"event": "redirected"}),
		Refused:    MetricValue(samples, "sweb_events_total", metrics.Labels{"event": "refused"}),
		Compared:   MetricValue(samples, "sweb_sched_compared_total", nil),
		Drops:      map[string]float64{},
	}
	if r.Connected > 0 {
		r.RedirectRate = r.Redirected / r.Connected
	}
	for _, s := range samples {
		if s.Name == "sweb_drops_total" {
			r.Drops[s.Labels["cause"]] += s.Value
		}
	}
	for _, phase := range reportPhases {
		sel := metrics.Labels{"phase": phase}
		buckets := metrics.Buckets(samples, "sweb_phase_seconds", sel)
		count := MetricValue(samples, "sweb_phase_seconds_count", sel)
		if count == 0 {
			continue
		}
		r.Phases = append(r.Phases, PhaseStat{
			Phase: phase,
			Count: count,
			P50:   metrics.HistogramQuantile(0.50, buckets),
			P95:   metrics.HistogramQuantile(0.95, buckets),
		})
	}
	for _, phase := range []string{"cpu", "data", "total"} {
		sel := metrics.Labels{"phase": phase}
		pred, okP := metrics.Value(samples, "sweb_sched_predicted_seconds_total", sel)
		act, okA := metrics.Value(samples, "sweb_sched_actual_seconds_total", sel)
		if !okP || !okA || r.Compared == 0 {
			continue
		}
		ps := PredictionStat{
			Phase:         phase,
			PredictedMean: pred / r.Compared,
			ActualMean:    act / r.Compared,
			Error:         math.NaN(),
		}
		if act > 0 {
			ps.Error = (pred - act) / act
		}
		r.Prediction = append(r.Prediction, ps)
	}
	// The policy is uniform across the cluster; read it off any live node.
	for _, srv := range c.Servers {
		if rep, err := Status(srv.Addr()); err == nil {
			r.Policy = rep.Config.Policy
			break
		}
	}
	return r, nil
}

// RenderReport prints the cluster report as the paper-style text tables.
func RenderReport(r *ClusterReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster report — policy %s, %d node(s) up\n", r.Policy, r.NodesUp)
	fmt.Fprintf(&b, "requests %.0f, sent %.0f, redirected %.0f (rate %.1f%%), refused %.0f\n",
		r.Connected, r.Sent, r.Redirected, 100*r.RedirectRate, r.Refused)
	if len(r.Drops) > 0 {
		causes := make([]string, 0, len(r.Drops))
		for c := range r.Drops {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		b.WriteString("drops:")
		for _, c := range causes {
			fmt.Fprintf(&b, " %s=%.0f", c, r.Drops[c])
		}
		b.WriteByte('\n')
	}
	if len(r.Phases) > 0 {
		tbl := stats.Table{
			Title:  "per-phase service time (live Table 5)",
			Header: []string{"phase", "count", "p50", "p95"},
		}
		for _, p := range r.Phases {
			tbl.AddRowStrings(p.Phase, fmt.Sprintf("%.0f", p.Count),
				stats.FormatSeconds(p.P50), stats.FormatSeconds(p.P95))
		}
		b.WriteString(tbl.String())
	}
	if len(r.Prediction) > 0 {
		tbl := stats.Table{
			Title:  fmt.Sprintf("predicted vs actual t_s (%.0f compared requests)", r.Compared),
			Header: []string{"phase", "predicted mean", "actual mean", "error"},
		}
		for _, p := range r.Prediction {
			errCell := "n/a"
			if !math.IsNaN(p.Error) {
				errCell = fmt.Sprintf("%+.0f%%", 100*p.Error)
			}
			tbl.AddRowStrings(p.Phase, stats.FormatSeconds(p.PredictedMean),
				stats.FormatSeconds(p.ActualMean), errCell)
		}
		b.WriteString(tbl.String())
	}
	return b.String()
}
