package live

import (
	"sync"
	"time"

	"sweb/internal/rebalance"
)

// rebalancerState holds the cluster's replica rebalancer loop.
type rebalancerState struct {
	ctrl *rebalance.Controller
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mu      sync.Mutex
	applied []rebalance.Action
}

// StartRebalancer attaches the heat-driven replica rebalancer: every
// period it folds the nodes' heat sketches into the cluster view, asks
// the controller for actions, and applies them — an "add" makes the
// target node materialize its own copy (bytes first, store second), a
// "drop" retires one. Dead nodes neither receive replicas nor apply
// actions. Idempotent; StopRebalancer (or Close) halts the loop.
func (c *Cluster) StartRebalancer(cfg rebalance.Config, period time.Duration) {
	if c.rb != nil {
		return
	}
	if period <= 0 {
		period = time.Second
	}
	rb := &rebalancerState{ctrl: rebalance.New(cfg), stop: make(chan struct{})}
	c.rb = rb
	rb.wg.Add(1)
	go func() {
		defer rb.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-rb.stop:
				return
			case <-t.C:
				c.rebalanceTick(rb)
			}
		}
	}()
}

// rebalanceTick runs one controller round and applies its actions.
func (c *Cluster) rebalanceTick(rb *rebalancerState) {
	up := func(n int) bool {
		return n >= 0 && n < len(c.Servers) && c.Servers[n] != nil && !c.Servers[n].Closed()
	}
	for _, act := range rb.ctrl.Tick(c.MergedHeat(), c.store, up) {
		if !up(act.Node) {
			continue
		}
		var err error
		switch act.Kind {
		case "add":
			err = c.Servers[act.Node].MaterializeReplica(act.Path)
		case "drop":
			err = c.Servers[act.Node].DropReplicaLocal(act.Path)
		}
		if err == nil {
			rb.mu.Lock()
			rb.applied = append(rb.applied, act)
			rb.mu.Unlock()
		}
	}
}

// RebalanceLog returns the actions the rebalancer has applied so far, in
// order — the redistribution tests read it to hold the advisor's
// predictions against observed traffic.
func (c *Cluster) RebalanceLog() []rebalance.Action {
	if c.rb == nil {
		return nil
	}
	c.rb.mu.Lock()
	defer c.rb.mu.Unlock()
	out := make([]rebalance.Action, len(c.rb.applied))
	copy(out, c.rb.applied)
	return out
}

// StopRebalancer halts the rebalance loop. Safe to call repeatedly or
// with no rebalancer attached.
func (c *Cluster) StopRebalancer() {
	if c.rb == nil {
		return
	}
	c.rb.once.Do(func() { close(c.rb.stop) })
	c.rb.wg.Wait()
}
