package live

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sweb/internal/heat"
	"sweb/internal/monitor"
	"sweb/internal/storage"
)

// TestHeatHotDocChaos is the document-heat acceptance scenario: a
// Zipf-skewed burst hammers one injected hotspot, the placement advisor
// ranks it #1, the hot_doc rule fires and writes a diagnostic bundle
// whose per-node state now includes heat.json, and the alert clears
// again once the workload flattens out.
func TestHeatHotDocChaos(t *testing.T) {
	const (
		nodes       = 3
		loaddPeriod = 50 * time.Millisecond
		collect     = 60 * time.Millisecond
	)
	snapDir := t.TempDir()
	st := storage.NewStore(nodes)
	bg := storage.UniformSet(st, 6, 2048)
	hot := storage.SkewedSet(st, 4096)
	cl, err := Start(Options{
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod: loaddPeriod,
		SnapshotDir: snapDir,
		Seed:        37,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)

	// The other rules are parked far out of reach so the one bundle this
	// run writes is attributable to hot_doc alone.
	mon := cl.StartMonitor(monitor.Config{
		Window: 2,
		Rules: monitor.RuleConfig{
			RedirectRatio:   2,
			ImbalanceCoV:    100,
			CacheMinLookups: 1e9,
			ForSamples:      2,
		},
	}, collect)

	// Zipf-skewed traffic: ~80% of requests hit the injected hotspot
	// until hotOn is flipped off, then the background set takes over.
	var hotOn atomic.Bool
	hotOn.Store(true)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		client := cl.NewClient()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := bg[rng.Intn(len(bg))]
			if hotOn.Load() && rng.Float64() < 0.8 {
				p = hot
			}
			client.Get(p)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	defer func() { close(stop); <-done }()

	waitFor(t, "hot_doc to fire", 20*time.Second, func() bool {
		return mon.AlertFiring("hot_doc", hot)
	})

	// The advisor's #1 recommendation is the injected hotspot — via the
	// in-process merge and via scraping every node's /sweb/heat.
	advs := heat.Advise(cl.MergedHeat())
	if len(advs) == 0 || advs[0].Path != hot {
		t.Fatalf("advisor top pick = %+v, want %s", advs, hot)
	}
	if advs[0].Owner != 0 {
		t.Fatalf("hotspot owner = %d, want 0", advs[0].Owner)
	}
	var dumps []heat.Dump
	for _, srv := range cl.Servers {
		d, err := Heat(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if !d.Enabled {
			t.Fatalf("node %d heat disabled", d.Node)
		}
		dumps = append(dumps, *d)
	}
	scraped := heat.Advise(heat.Merge(dumps))
	if len(scraped) == 0 || scraped[0].Path != hot {
		t.Fatalf("scraped advisor top pick = %+v, want %s", scraped, hot)
	}

	// The hotspot alert wrote a bundle, and each node's contribution now
	// carries its heat sketch.
	waitFor(t, "alert-triggered bundle", 10*time.Second, func() bool {
		return len(cl.Bundles()) >= 1
	})
	bundle := cl.Bundles()[0]
	if !strings.Contains(filepath.Base(bundle), "alert-hot_doc") {
		t.Fatalf("bundle %s not named after hot_doc", bundle)
	}
	sawHot := false
	for i := 0; i < nodes; i++ {
		hb, err := os.ReadFile(filepath.Join(bundle, "node-node"+strconv.Itoa(i), "heat.json"))
		if err != nil {
			t.Fatalf("node %d heat.json missing from bundle: %v", i, err)
		}
		var d heat.Dump
		if err := json.Unmarshal(hb, &d); err != nil {
			t.Fatal(err)
		}
		if !d.Enabled {
			t.Fatalf("node %d bundled heat dump disabled", i)
		}
		for _, e := range d.Entries {
			if e.Path == hot {
				sawHot = true
			}
		}
	}
	if !sawHot {
		t.Fatalf("no bundled sketch tracks the hotspot %s", hot)
	}

	// Flatten the workload: the hotspot's windowed share decays and the
	// alert must clear through the standard hysteresis.
	hotOn.Store(false)
	waitFor(t, "hot_doc to clear", 30*time.Second, func() bool {
		return !mon.AlertFiring("hot_doc", hot)
	})
}
