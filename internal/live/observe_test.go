package live

import (
	"strings"
	"testing"
	"time"

	"sweb/internal/storage"
	"sweb/internal/trace"
)

// TestClusterObservability drives traffic through a traced two-node
// cluster and checks the three aggregation paths the tentpole promises:
// per-node /sweb/status, the merged cluster report with its
// predicted-vs-actual t_s table, and the live trace stream reduced by the
// same renderers the simulator uses.
func TestClusterObservability(t *testing.T) {
	rec := trace.NewRecorder(0)
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 6, 8192)
	cl, err := Start(Options{
		Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod: 50 * time.Millisecond,
		Trace:       rec,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1}, cl, 2, 10*time.Second)

	client := cl.NewClient()
	for round := 0; round < 3; round++ {
		for _, p := range paths {
			res, err := client.Get(p)
			if err != nil || res.Status != 200 {
				t.Fatalf("%s: res=%+v err=%v", p, res, err)
			}
		}
	}

	// Every live node answers both introspection endpoints.
	for i, srv := range cl.Servers {
		rep, err := Status(srv.Addr())
		if err != nil {
			t.Fatalf("node %d status: %v", i, err)
		}
		if rep.Node != i || rep.Config.Policy != "SWEB" {
			t.Fatalf("node %d status = %+v", i, rep)
		}
		if rep.Stats.Served == 0 {
			t.Fatalf("node %d served nothing", i)
		}
		if len(rep.Peers) == 0 {
			t.Fatalf("node %d reports no peer health", i)
		}
		if len(rep.Decisions) == 0 {
			t.Fatalf("node %d has an empty decision audit", i)
		}
		if _, err := Metrics(srv.Addr()); err != nil {
			t.Fatalf("node %d metrics: %v", i, err)
		}
	}

	// The merged report carries the paper-style numbers.
	rep, err := cl.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodesUp != 2 || rep.Policy != "SWEB" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Connected < 18 || rep.Sent < 18 {
		t.Fatalf("report undercounts traffic: %+v", rep)
	}
	if rep.Compared == 0 {
		t.Fatal("no predicted-vs-actual comparisons recorded")
	}
	havePhase := map[string]bool{}
	for _, p := range rep.Phases {
		havePhase[p.Phase] = true
		if p.P50 < 0 || p.P95 < p.P50 {
			t.Fatalf("phase %s quantiles out of order: %+v", p.Phase, p)
		}
	}
	if !havePhase["parse"] || !havePhase["analyze"] {
		t.Fatalf("report phases = %+v", rep.Phases)
	}
	havePred := map[string]bool{}
	for _, p := range rep.Prediction {
		havePred[p.Phase] = true
	}
	for _, want := range []string{"cpu", "data", "total"} {
		if !havePred[want] {
			t.Fatalf("prediction table lacks %s: %+v", want, rep.Prediction)
		}
	}
	out := RenderReport(rep)
	for _, want := range []string{"policy SWEB", "per-phase service time", "predicted vs actual t_s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}

	// The live event stream reduces through the simulator's renderers.
	sum := trace.Summarize(rec.Events())
	if sum.Requests < 18 || sum.ByKind[trace.EvSent] < 18 {
		t.Fatalf("trace summary = %+v", sum)
	}
	if _, ok := sum.MeanPhase["parsed→analyzed"]; !ok {
		t.Fatalf("trace summary lacks live phases: %+v", sum.MeanPhase)
	}
	if r := trace.RenderSummary(sum); !strings.Contains(r, "requests") {
		t.Fatalf("RenderSummary output:\n%s", r)
	}
}
