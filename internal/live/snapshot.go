package live

import (
	"errors"
	"strconv"
	"time"

	"sweb/internal/flight"
	"sweb/internal/monitor"
)

// snapshotCooldown bounds alert-triggered bundle writes: a storm of
// related alerts (node_down plus gossip_stale for the same peer) produces
// one bundle, not one per rule.
const snapshotCooldown = 5 * time.Second

// WriteSnapshot captures a cross-node diagnostic bundle: every live
// node's metrics, status, trace tail, flight rings, and conn table,
// gathered in-process, plus the shared process profiles, written as one
// timestamped directory under the cluster's snapshot dir. Dead nodes are
// recorded as holes (an error entry), which is itself evidence.
func (c *Cluster) WriteSnapshot(reason string) (string, error) {
	if c.snapshotDir == "" {
		return "", errors.New("live: no snapshot directory configured")
	}
	var states []flight.NodeState
	for i, srv := range c.Servers {
		if srv == nil || srv.Closed() {
			states = append(states, flight.NodeState{
				Name: "node" + strconv.Itoa(i), Err: "node down",
			})
			continue
		}
		states = append(states, srv.SnapshotState())
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	dir, err := flight.Snapshot(flight.SnapshotOptions{Dir: c.snapshotDir, Reason: reason}, states)
	if err != nil {
		return "", err
	}
	c.lastSnap = time.Now()
	c.bundles = append(c.bundles, dir)
	return dir, nil
}

// Bundles lists the snapshot bundles this cluster has written, in order.
func (c *Cluster) Bundles() []string {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return append([]string(nil), c.bundles...)
}

// maybeSnapshot is the alert-triggered capture path: any newly fired
// alert produces a bundle named after the first rule, rate-limited by the
// cooldown. Runs synchronously on the monitor's collect goroutine — the
// cluster's state is captured as close to the firing instant as possible.
func (c *Cluster) maybeSnapshot(alerts []monitor.Alert) {
	if c.snapshotDir == "" || len(alerts) == 0 {
		return
	}
	c.snapMu.Lock()
	tooSoon := !c.lastSnap.IsZero() && time.Since(c.lastSnap) < snapshotCooldown
	c.snapMu.Unlock()
	if tooSoon {
		return
	}
	_, _ = c.WriteSnapshot("alert-" + alerts[0].Rule)
}
