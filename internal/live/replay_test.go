package live

import (
	"bytes"
	"testing"
	"time"

	"sweb/internal/accesslog"
	"sweb/internal/core"
	"sweb/internal/httpd"
	"sweb/internal/simsrv"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// TestAccessLogCapturedAndReplayable drives the live cluster, collects its
// Common Log Format access logs, and replays the trace through the
// simulator — the full production-trace-to-model loop.
func TestAccessLogCapturedAndReplayable(t *testing.T) {
	const nodes = 2
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 4, 4096)
	if err := Materialize(st, t.TempDir(), 1); err != nil {
		t.Fatal(err)
	}

	// Build the cluster by hand so every node shares one access log.
	var logBuf bytes.Buffer
	logger := accesslog.NewLogger(&logBuf)
	dir := t.TempDir()
	if err := Materialize(st, dir, 1); err != nil {
		t.Fatal(err)
	}
	var servers []*httpd.Server
	for i := 0; i < nodes; i++ {
		srv, err := httpd.New(httpd.Config{
			ID: i, DocRoot: nodeDocRoot(dir, i), Store: st, AccessLog: logger,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		defer srv.Close()
	}
	var peers []httpd.Peer
	for i, srv := range servers {
		peers = append(peers, httpd.Peer{ID: i, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()})
	}
	for _, srv := range servers {
		srv.SetPeers(peers)
		srv.Start()
	}

	// Drive some traffic directly at both nodes.
	for i := 0; i < 8; i++ {
		addr := servers[i%nodes].Addr()
		status, _, _, err := fetchOnce(addr, paths[i%len(paths)], 5*time.Second, 1<<20)
		if err != nil || status != 200 {
			t.Fatalf("fetch %d: status=%d err=%v", i, status, err)
		}
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}

	entries, err := accesslog.Parse(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatalf("parse live log: %v", err)
	}
	if len(entries) < 8 {
		t.Fatalf("log has %d entries, want >= 8", len(entries))
	}
	for _, e := range entries {
		if e.Status != 200 || e.Bytes != 4096 {
			t.Fatalf("unexpected log entry: %+v", e)
		}
	}

	// Replay the captured trace through the simulator.
	arrivals, err := workload.FromAccessLog(entries)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simsrv.MeikoConfig(nodes, st)
	cl, err := simsrv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunSchedule(arrivals)
	if res.Completed != int64(len(arrivals)) {
		t.Fatalf("replay completed %d of %d", res.Completed, len(arrivals))
	}
}

// TestAccessLogRecordsErrorsAndRedirects exercises the non-200 log paths.
func TestAccessLogRecordsErrorsAndRedirects(t *testing.T) {
	st := storage.NewStore(2)
	storage.UniformSet(st, 2, 1024)
	var logBuf bytes.Buffer
	logger := accesslog.NewLogger(&logBuf)
	dir := t.TempDir()
	if err := Materialize(st, dir, 2); err != nil {
		t.Fatal(err)
	}
	var servers []*httpd.Server
	for i := 0; i < 2; i++ {
		srv, err := httpd.New(httpd.Config{
			ID: i, DocRoot: nodeDocRoot(dir, i), Store: st,
			Policy:    core.FileLocality{P: core.DefaultParams()},
			AccessLog: logger,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		defer srv.Close()
	}
	var peers []httpd.Peer
	for i, srv := range servers {
		peers = append(peers, httpd.Peer{ID: i, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()})
	}
	for _, srv := range servers {
		srv.SetPeers(peers)
		srv.Start()
	}
	// 404.
	if status, _, _, err := fetchOnce(servers[0].Addr(), "/nope", 5*time.Second, 1<<20); err != nil || status != 404 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	// 302: ask node 0 for a file owned by node 1 under file locality.
	var owned1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			owned1 = p
		}
	}
	if status, _, _, err := fetchOnce(servers[0].Addr(), owned1, 5*time.Second, 1<<20); err != nil || status != 302 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if err := logger.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := accesslog.Parse(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var saw404, saw302 bool
	for _, e := range entries {
		saw404 = saw404 || e.Status == 404
		saw302 = saw302 || e.Status == 302
	}
	if !saw404 || !saw302 {
		t.Fatalf("log missing error/redirect entries: %+v", entries)
	}
}
