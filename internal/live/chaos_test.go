package live

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"sweb/internal/metrics"
	"sweb/internal/monitor"
	"sweb/internal/storage"
)

// waitKnown polls until every listed server's loadd table has heard from
// want nodes, failing the test after deadline.
func waitKnown(t *testing.T, servers []int, cl *Cluster, want int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		full := true
		for _, i := range servers {
			if len(cl.Servers[i].Table().Known()) < want {
				full = false
			}
		}
		if full {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, i := range servers {
		t.Logf("node %d knows %v", i, cl.Servers[i].Table().Known())
	}
	t.Fatalf("gossip did not converge to %d nodes within %v", want, deadline)
}

// TestChaosNodeKilledMidRun is the acceptance scenario: three nodes, 20%
// simulated broadcast loss, one node killed mid-run. Every request for a
// surviving-node-owned document must keep succeeding (the client's
// failover budget covers the stale-table window), no request may be 302'd
// to the dead node once its loadd row times out, and owner-dead fetches
// must degrade to 503 with Retry-After only after the retry budget.
func TestChaosNodeKilledMidRun(t *testing.T) {
	const (
		nodes        = 3
		dead         = 2
		loaddPeriod  = 50 * time.Millisecond
		loaddTimeout = 600 * time.Millisecond
		fetchBackoff = 30 * time.Millisecond
	)
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 9, 4096)
	cl, err := Start(Options{
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod:   loaddPeriod,
		LoaddTimeout:  loaddTimeout,
		FetchAttempts: 3,
		FetchBackoff:  fetchBackoff,
		Faults:        &Faults{BroadcastLoss: 0.2, Seed: 42},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	byOwner := make(map[int][]string)
	for _, p := range paths {
		o, _ := st.Owner(p)
		byOwner[o] = append(byOwner[o], p)
	}
	var survivorPaths []string
	for o, ps := range byOwner {
		if o != dead {
			survivorPaths = append(survivorPaths, ps...)
		}
	}
	if len(survivorPaths) == 0 || len(byOwner[dead]) == 0 {
		t.Fatal("uniform set did not cover every owner")
	}

	waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)

	client := cl.NewClient()
	// Budget generous enough to ride out the stale-table window in which
	// survivors may still 302 toward the corpse.
	client.SetRetry(8, 100*time.Millisecond)

	// Sanity traffic with everything alive.
	for _, p := range survivorPaths {
		res, err := client.Get(p)
		if err != nil || res.Status != 200 {
			t.Fatalf("pre-kill %s: res=%+v err=%v", p, res, err)
		}
	}

	if err := cl.Kill(dead); err != nil {
		t.Fatal(err)
	}

	// Mid-run: the dead node's loadd row is still fresh on the survivors,
	// and the rotation still resolves to its address. Requests for
	// surviving-owned documents must nevertheless succeed within the
	// failover budget.
	for _, p := range survivorPaths {
		res, err := client.Get(p)
		if err != nil {
			t.Fatalf("mid-run %s failed past the retry budget: %v", p, err)
		}
		if res.Status != 200 {
			t.Fatalf("mid-run %s: status %d", p, res.Status)
		}
	}

	// Let the dead node's row expire everywhere (timeout plus slack for
	// the lossy gossip to refresh the survivors' mutual rows).
	time.Sleep(loaddTimeout + 4*loaddPeriod)

	// The survivors must still see each other...
	waitKnown(t, []int{0, 1}, cl, 2, 5*time.Second)

	// ...and never 302 anything toward the corpse.
	deadAddr := cl.Servers[dead].Addr()
	for _, i := range []int{0, 1} {
		for _, p := range paths {
			status, hdr, _ := directGet(t, cl.Servers[i].Addr(), p)
			if status == 302 && strings.Contains(hdr.Get("Location"), deadAddr) {
				t.Fatalf("node %d still redirects %s to the dead node", i, p)
			}
		}
	}

	// The scraped metrics must tell the same story: only the survivors
	// answer /sweb/metrics, and from here on the cluster-wide count of
	// 302s aimed at the dead node must not move.
	preSamples, up := cl.ScrapeMetrics()
	if up != nodes-1 {
		t.Fatalf("scrape reached %d nodes, want %d survivors", up, nodes-1)
	}
	deadTargetLabel := metrics.Labels{"target": strconv.Itoa(dead)}
	deadRedirectsBefore := MetricValue(preSamples, "sweb_redirect_targets_total", deadTargetLabel)

	// Owner-dead documents degrade to 503 + Retry-After, and only after
	// the retry budget: the two backoff sleeps put a floor on elapsed.
	deadPath := byOwner[dead][0]
	start := time.Now()
	status, hdr, _ := directGet(t, cl.Servers[0].Addr(), deadPath+"?swebr=1")
	elapsed := time.Since(start)
	if status != 503 {
		t.Fatalf("owner-dead fetch: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	if elapsed < fetchBackoff {
		t.Fatalf("503 after %v — retry budget was not exercised", elapsed)
	}

	// And the surviving-owned world keeps serving.
	for _, p := range survivorPaths {
		res, err := client.Get(p)
		if err != nil || res.Status != 200 {
			t.Fatalf("post-timeout %s: res=%+v err=%v", p, res, err)
		}
	}

	// Post-mortem via the observability layer: the owner-dead 503 shows up
	// as an owner_unreachable drop, the post-expiry traffic added no 302s
	// toward the corpse, and the cluster report agrees nothing was refused.
	postSamples, up := cl.ScrapeMetrics()
	if up != nodes-1 {
		t.Fatalf("post-traffic scrape reached %d nodes, want %d", up, nodes-1)
	}
	if v := MetricValue(postSamples, "sweb_drops_total", metrics.Labels{"cause": "owner_unreachable"}); v < 1 {
		t.Fatalf("owner_unreachable drops = %v, want >= 1", v)
	}
	if after := MetricValue(postSamples, "sweb_redirect_targets_total", deadTargetLabel); after != deadRedirectsBefore {
		t.Fatalf("redirects to dead node grew after expiry: %v -> %v", deadRedirectsBefore, after)
	}
	rep, err := cl.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodesUp != nodes-1 || rep.Refused != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Drops["owner_unreachable"] < 1 {
		t.Fatalf("report drops = %v", rep.Drops)
	}
}

// waitFor polls cond until it holds, failing the test after deadline.
func waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (%v)", what, deadline)
}

// TestMonitorAlertsOnKillAndRestart proves the alerting loop end to end:
// a healthy cluster fires nothing, killing a node fires node_down (the
// scrape is the health check) and gossip_stale (the survivors' view of its
// last broadcast ages past the loadd timeout), and Restart clears both.
func TestMonitorAlertsOnKillAndRestart(t *testing.T) {
	const (
		nodes        = 3
		dead         = 2
		loaddPeriod  = 50 * time.Millisecond
		loaddTimeout = 400 * time.Millisecond
		collect      = 60 * time.Millisecond
	)
	st := storage.NewStore(nodes)
	storage.UniformSet(st, 6, 2048)
	cl, err := Start(Options{
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod:  loaddPeriod,
		LoaddTimeout: loaddTimeout,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1, 2}, cl, nodes, 10*time.Second)

	mon := cl.StartMonitor(monitor.Config{
		Window: 2,
		Rules: monitor.RuleConfig{
			StalenessSeconds: loaddTimeout.Seconds(),
			ForSamples:       2,
		},
	}, collect)
	if cl.Monitor() != mon {
		t.Fatal("Monitor() does not return the attached monitor")
	}

	waitFor(t, "first collection rounds", 5*time.Second, func() bool { return mon.Rounds() >= 3 })
	if alerts := mon.Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy cluster has firing alerts: %v", monitor.SortedAlertKeys(alerts))
	}

	if err := cl.Kill(dead); err != nil {
		t.Fatal(err)
	}
	deadName := strconv.Itoa(dead)
	waitFor(t, "node_down to fire", 10*time.Second, func() bool {
		return mon.AlertFiring("node_down", deadName)
	})
	waitFor(t, "gossip_stale to fire", 10*time.Second, func() bool {
		return mon.AlertFiring("gossip_stale", deadName)
	})
	// The firing state is exported back into the store as a metric.
	if p, ok := monitor.Latest(mon.Store().Points("sweb_monitor_alert",
		metrics.Labels{"rule": "node_down", "node": deadName})); !ok || p.V != 1 {
		t.Fatalf("sweb_monitor_alert{rule=node_down,node=%s} = %+v ok=%v, want 1", deadName, p, ok)
	}

	if err := cl.Restart(dead); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node_down to clear", 10*time.Second, func() bool {
		return !mon.AlertFiring("node_down", deadName)
	})
	waitFor(t, "gossip_stale to clear", 10*time.Second, func() bool {
		return !mon.AlertFiring("gossip_stale", deadName)
	})

	snap := mon.Snapshot()
	if len(snap.Nodes) != nodes {
		t.Fatalf("snapshot has %d node rows, want %d", len(snap.Nodes), nodes)
	}
	for _, row := range snap.Nodes {
		if !row.Up {
			t.Fatalf("node %s still down in snapshot after restart", row.Node)
		}
	}
	if out := monitor.RenderSnapshot(snap); !strings.Contains(out, "alerts: none") {
		t.Fatalf("rendered snapshot still shows alerts:\n%s", out)
	}
}

// TestGossipConvergesUnderLoss drops 30% of loadd datagrams and checks the
// tables still converge: the paper's 2-3s broadcast cadence is itself the
// retransmission mechanism.
func TestGossipConvergesUnderLoss(t *testing.T) {
	st := storage.NewStore(3)
	storage.UniformSet(st, 3, 1024)
	cl, err := Start(Options{
		Nodes: 3, Store: st, BaseDir: t.TempDir(),
		LoaddPeriod: 50 * time.Millisecond,
		Faults:      &Faults{BroadcastLoss: 0.3, Seed: 9},
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1, 2}, cl, 3, 10*time.Second)
}

// TestDialLatencyInjection slows the interconnect and checks the remote
// fetch path both survives it and actually pays it.
func TestDialLatencyInjection(t *testing.T) {
	const lag = 60 * time.Millisecond
	st := storage.NewStore(2)
	storage.UniformSet(st, 2, 2048)
	cl, err := Start(Options{
		Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		Faults: &Faults{DialLatency: lag},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var owned1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			owned1 = p
		}
	}
	// Round-robin never redirects, so node 0 must relay via the slowed
	// internal fetch.
	start := time.Now()
	status, _, body := directGet(t, cl.Servers[0].Addr(), owned1)
	if status != 200 || len(body) != 2048 {
		t.Fatalf("status=%d len=%d", status, len(body))
	}
	if d := time.Since(start); d < lag {
		t.Fatalf("remote fetch took %v, injected latency %v not paid", d, lag)
	}
}

// TestCacheServesDeadOwnerDocuments is the cache's availability dividend:
// a document relayed from its owner is cached at the relaying node, so
// killing the owner leaves warm documents servable while cold ones degrade
// to 503 — and restarting the owner brings the cold ones back.
func TestCacheServesDeadOwnerDocuments(t *testing.T) {
	const owner = 1
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 6, 4096)
	cl, err := Start(Options{
		// Round-robin never redirects, so node 0 must relay owner-held
		// documents through the internal fetch path — the path that fills
		// its cache with foreign documents.
		Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		FetchAttempts: 1,
		Seed:          19,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var ownerPaths []string
	for _, p := range paths {
		if o, _ := st.Owner(p); o == owner {
			ownerPaths = append(ownerPaths, p)
		}
	}
	if len(ownerPaths) < 2 {
		t.Fatal("uniform set left the owner under-provisioned")
	}
	warm, cold := ownerPaths[0], ownerPaths[1]

	client := cl.NewClient()
	res, err := client.GetVia(0, warm)
	if err != nil || res.Status != 200 {
		t.Fatalf("warm-up relay: res=%+v err=%v", res, err)
	}
	warmBody := res.Body
	if !cl.Servers[0].Cache().Peek(warm) {
		t.Fatal("relayed document not resident in the relaying node's cache")
	}

	if err := cl.Kill(owner); err != nil {
		t.Fatal(err)
	}

	// The warm document survives its owner: served from node 0's memory.
	res, err = client.GetVia(0, warm)
	if err != nil || res.Status != 200 {
		t.Fatalf("warm fetch with owner dead: res=%+v err=%v", res, err)
	}
	if string(res.Body) != string(warmBody) {
		t.Fatal("cached body diverged from the owner's original")
	}
	// The cold one has nowhere to come from: degraded 503.
	res, err = client.GetVia(0, cold)
	if err != nil {
		t.Fatalf("cold fetch errored instead of degrading: %v", err)
	}
	if res.Status != 503 {
		t.Fatalf("cold fetch with owner dead: status %d, want 503", res.Status)
	}

	// Restart heals the cold path while the warm one keeps hitting.
	if err := cl.Restart(owner); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restarted owner to answer relays", 10*time.Second, func() bool {
		res, err := client.GetVia(0, cold)
		return err == nil && res.Status == 200
	})
	res, err = client.GetVia(0, warm)
	if err != nil || res.Status != 200 || string(res.Body) != string(warmBody) {
		t.Fatalf("warm fetch after restart: res=%+v err=%v", res, err)
	}

	// The scraped story agrees: the cluster counted cache hits for the
	// warm document's repeat fetches.
	samples, _ := cl.ScrapeMetrics()
	if v := MetricValue(samples, "sweb_cache_hits_total", nil); v < 2 {
		t.Fatalf("cluster cache hits = %v, want >= 2", v)
	}
}

// TestClientFailsOverDeadEntryNode kills a node and checks the client
// rides the rotation past its address without an error surfacing.
func TestClientFailsOverDeadEntryNode(t *testing.T) {
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 4, 1024)
	cl, err := Start(Options{Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "rr", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Kill(1); err != nil {
		t.Fatal(err)
	}
	client := cl.NewClient()
	for _, p := range paths {
		o, _ := st.Owner(p)
		if o != 0 {
			continue
		}
		// The rotation alternates 0,1,0,1...; every fetch must succeed
		// regardless of which address comes up first.
		for i := 0; i < 2; i++ {
			res, err := client.Get(p)
			if err != nil || res.Status != 200 {
				t.Fatalf("%s: res=%+v err=%v", p, res, err)
			}
		}
	}
}
