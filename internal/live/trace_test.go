package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"sweb/internal/metrics"
	"sweb/internal/simsrv"
	"sweb/internal/storage"
	"sweb/internal/trace"
	"sweb/internal/workload"
)

// epochUnix renders the cluster's shared trace epoch the way /sweb/trace
// advertises it.
func epochUnix(cl *Cluster) float64 {
	return float64(cl.Epoch().UnixNano()) / 1e9
}

// TestStitchedCrossNodeTrace is the acceptance scenario for distributed
// tracing: each node runs its own recorder (the distributed configuration),
// the client originates the trace, and a request redirected node 0 → node 1
// must come back from /sweb/trace scraping as ONE span carrying both nodes'
// events under a single trace id, with a positive measured t_redirection.
func TestStitchedCrossNodeTrace(t *testing.T) {
	const nodes = 2
	st := storage.NewStore(nodes)
	paths := storage.UniformSet(st, 4, 4096)
	cl, err := Start(Options{
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "fl",
		NodeTraces: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The 302 only happens once node 0 sees node 1 as available.
	waitKnown(t, []int{0, 1}, cl, nodes, 5*time.Second)

	// paths[1] lives on node 1; the rotation resolves the first request to
	// node 0, so file-locality must 302 the client across the cluster.
	clientRec := trace.NewRecorder(0)
	client := cl.NewClient()
	client.SetTrace(clientRec)
	res, err := client.Get(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || !res.Redirected {
		t.Fatalf("want redirected 200, got status %d redirected %v", res.Status, res.Redirected)
	}

	col, up := cl.ScrapeTraces()
	if up != nodes {
		t.Fatalf("scraped %d trace streams, want %d", up, nodes)
	}
	col.Add(epochUnix(cl), clientRec.Events())

	spans := col.Spans()
	if len(spans) != 1 {
		for _, sp := range spans {
			t.Logf("span %s: %v", sp.Trace, sp.Kinds())
		}
		t.Fatalf("stitched %d spans, want exactly 1", len(spans))
	}
	span := spans[0]
	if got := span.Nodes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("span touched nodes %v, want [0 1]", got)
	}
	counts := map[trace.Kind]int{}
	for _, k := range span.Kinds() {
		counts[k]++
	}
	if counts[trace.EvConnected] != 2 || counts[trace.EvRedirected] != 1 {
		t.Fatalf("span kinds %v: want 2 connected and 1 redirected", span.Kinds())
	}
	if counts[trace.EvIssued] != 1 || counts[trace.EvDelivered] != 1 {
		t.Fatalf("span kinds %v: want client-side issued and delivered", span.Kinds())
	}
	hop, ok := span.Redirection()
	if !ok || hop <= 0 {
		t.Fatalf("measured t_redirection = (%v, %v), want positive", hop, ok)
	}

	// The Chrome trace-event export of the stitched run must be valid JSON
	// in the schema Perfetto loads: slices, flow arrows for the cross-node
	// hop, and process-name metadata.
	var buf bytes.Buffer
	if err := trace.ExportChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("Chrome export has no traceEvents")
	}
	phases := map[string]int{}
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X", "s", "f", "i", "M":
			phases[ev.Ph]++
		default:
			t.Fatalf("unknown trace-event phase %q", ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts < 0 {
			t.Fatalf("negative timestamp in %q", ev.Name)
		}
	}
	if phases["X"] == 0 {
		t.Fatal("export has no complete slices")
	}
	if phases["s"] == 0 || phases["f"] == 0 {
		t.Fatalf("cross-node hop produced no flow arrows: phases %v", phases)
	}
	if phases["M"] == 0 {
		t.Fatal("export has no process-name metadata")
	}

	// The live Table 5 must now cover the redirected request: the report
	// carries a redirect_hop row (the measured t_redirection histogram).
	rep, err := cl.Report()
	if err != nil {
		t.Fatal(err)
	}
	foundHop := false
	for _, p := range rep.Phases {
		if p.Phase == "redirect_hop" {
			foundHop = true
			if p.Count < 1 {
				t.Fatalf("redirect_hop count %v, want >= 1", p.Count)
			}
		}
	}
	if !foundHop {
		t.Fatalf("report phases %+v missing redirect_hop", rep.Phases)
	}
	if !strings.Contains(RenderReport(rep), "redirect_hop") {
		t.Fatal("rendered report does not print the redirect_hop row")
	}
}

// TestSimLiveParity is the differential test between the two substrates: a
// request for a foreign-owned document under file locality must produce the
// same lifecycle event-kind sequence whether it runs through the simulated
// Meiko or over real sockets.
func TestSimLiveParity(t *testing.T) {
	const nodes = 2
	want := []trace.Kind{
		trace.EvIssued, trace.EvResolved,
		trace.EvConnected, trace.EvParsed, trace.EvAnalyzed, trace.EvRedirected,
		trace.EvConnected, trace.EvParsed, trace.EvAnalyzed,
		trace.EvFetchLocal, trace.EvSent, trace.EvDelivered,
	}

	// Live: one shared recorder across nodes and client, one shared epoch.
	liveStore := storage.NewStore(nodes)
	livePaths := storage.UniformSet(liveStore, 4, 4096)
	rec := trace.NewRecorder(0)
	cl, err := Start(Options{
		Nodes: nodes, Store: liveStore, BaseDir: t.TempDir(), Policy: "fl",
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1}, cl, nodes, 5*time.Second)
	client := cl.NewClient()
	client.SetTrace(rec)
	if _, err := client.Get(livePaths[1]); err != nil {
		t.Fatal(err)
	}
	liveKinds := singleSpanKinds(t, rec, "live")

	// Sim: same topology, same policy, one arrival for the same document
	// placement; the rotation resolves it to node 0 on both substrates.
	simStore := storage.NewStore(nodes)
	simPaths := storage.UniformSet(simStore, 4, 4096)
	simRec := trace.NewRecorder(0)
	cfg := simsrv.MeikoConfig(nodes, simStore)
	cfg.Policy = simsrv.PolicyFileLocality
	cfg.Trace = simRec
	sim, err := simsrv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.RunSchedule([]workload.Arrival{{At: 0, Path: simPaths[1]}})
	if res.Redirects != 1 {
		t.Fatalf("sim run made %d redirects, want 1", res.Redirects)
	}
	simKinds := singleSpanKinds(t, simRec, "sim")

	if fmt.Sprint(liveKinds) != fmt.Sprint(simKinds) {
		t.Fatalf("event sequences diverge:\n live: %v\n  sim: %v", liveKinds, simKinds)
	}
	if fmt.Sprint(liveKinds) != fmt.Sprint(want) {
		t.Fatalf("both substrates agree but on the wrong sequence:\n got: %v\nwant: %v", liveKinds, want)
	}
}

// singleSpanKinds stitches one recorder's stream (already on one clock) and
// returns the lone span's event-kind sequence.
func singleSpanKinds(t *testing.T, rec *trace.Recorder, label string) []trace.Kind {
	t.Helper()
	col := trace.NewCollector()
	col.Add(0, rec.Events())
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("%s run produced %d spans, want 1", label, len(spans))
	}
	return spans[0].Kinds()
}

// TestGossipStalenessChaos asserts the gossip telemetry end to end over
// ScrapeMetrics: the broadcast-staleness gauge for a killed node must grow
// past the loadd timeout, and recover after the node restarts.
func TestGossipStalenessChaos(t *testing.T) {
	const (
		nodes        = 3
		dead         = 2
		loaddPeriod  = 50 * time.Millisecond
		loaddTimeout = 400 * time.Millisecond
	)
	st := storage.NewStore(nodes)
	storage.UniformSet(st, 6, 2048)
	cl, err := Start(Options{
		Nodes: nodes, Store: st, BaseDir: t.TempDir(), Policy: "sweb",
		LoaddPeriod:  loaddPeriod,
		LoaddTimeout: loaddTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitKnown(t, []int{0, 1, 2}, cl, nodes, 5*time.Second)

	deadLabel := metrics.Labels{"peer": fmt.Sprint(dead)}
	// Healthy cluster: every survivor heard node 2 within roughly one
	// gossip period, and — once a second broadcast lands — the interval
	// histogram is populated.
	var samples []metrics.Sample
	up := 0
	intervalDeadline := time.Now().Add(5 * time.Second)
	for {
		samples, up = cl.ScrapeMetrics()
		if up == nodes && MetricValue(samples, "sweb_loadd_broadcast_interval_seconds_count", deadLabel) >= 1 {
			break
		}
		if time.Now().After(intervalDeadline) {
			t.Fatalf("no broadcast intervals observed for node %d (%d nodes up)", dead, up)
		}
		time.Sleep(loaddPeriod)
	}
	if v := MetricValue(samples, "sweb_loadd_broadcast_age_seconds", deadLabel); v < 0 || v > 2*float64(nodes) {
		t.Fatalf("baseline staleness for node %d = %v, want small and non-negative", dead, v)
	}
	if _, ok := metrics.Value(samples, "sweb_loadd_advertised_load",
		metrics.Labels{"peer": fmt.Sprint(dead), "facet": "cpu"}); !ok {
		t.Fatalf("advertised-load gauge for node %d missing", dead)
	}

	// Kill node 2 and let its rows go stale well past the loadd timeout.
	if err := cl.Kill(dead); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * loaddTimeout)
	samples, up = cl.ScrapeMetrics()
	if up != nodes-1 {
		t.Fatalf("scraped %d nodes after kill, want %d", up, nodes-1)
	}
	// The merged gauge sums both survivors' views; each alone must already
	// exceed the timeout, so the sum clears 2x comfortably.
	grown := MetricValue(samples, "sweb_loadd_broadcast_age_seconds", deadLabel)
	if grown < 2*loaddTimeout.Seconds() {
		t.Fatalf("staleness for killed node %d = %vs, want > %vs", dead, grown, 2*loaddTimeout.Seconds())
	}

	// Restart it in place; once gossip re-converges the staleness gauge
	// must fall back to the healthy range.
	if err := cl.Restart(dead); err != nil {
		t.Fatal(err)
	}
	waitKnown(t, []int{0, 1}, cl, nodes, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		samples, _ = cl.ScrapeMetrics()
		recovered := MetricValue(samples, "sweb_loadd_broadcast_age_seconds", deadLabel)
		if recovered >= 0 && recovered < grown/2 && recovered < 2*loaddTimeout.Seconds() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("staleness for node %d stuck at %vs after restart (was %vs)", dead, recovered, grown)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
