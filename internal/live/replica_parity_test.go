package live

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"sweb/internal/metrics"
	"sweb/internal/simsrv"
	"sweb/internal/storage"
	"sweb/internal/workload"
)

// replicaParityStore is the shared fixture: one 32 KiB document owned by
// node 0 with a replica on node 1, in a 3-node cluster whose node 2 must
// fetch it remotely.
func replicaParityStore(t *testing.T) *storage.Store {
	t.Helper()
	st := storage.NewStore(3)
	if err := st.Add(storage.File{Path: "/rep.html", Size: 32 << 10, Owner: 0}); err != nil {
		t.Fatal(err)
	}
	if err := st.AddReplica("/rep.html", 1); err != nil {
		t.Fatal(err)
	}
	return st
}

// fetchSources extracts per-source counts of sweb_replica_fetch_total for
// path from a sample set, plus the sorted label-key schema of the family.
func fetchSources(samples []metrics.Sample, path string) (map[string]float64, []string) {
	out := make(map[string]float64)
	var schema []string
	for _, s := range samples {
		if s.Name != "sweb_replica_fetch_total" || s.Labels["path"] != path {
			continue
		}
		out[s.Labels["source"]] += s.Value
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		schema = keys
	}
	return out, schema
}

// maxReplicaGauge returns the largest sweb_heat_replicas value any sample
// reports for path.
func maxReplicaGauge(samples []metrics.Sample, path string) float64 {
	var max float64
	for _, s := range samples {
		if s.Name == "sweb_heat_replicas" && s.Labels["path"] == path && s.Value > max {
			max = s.Value
		}
	}
	return max
}

// simReplicaRun drives the DES substrate with round-robin scheduling (so
// serves land on every node, including the replica-less node 2) and
// returns all nodes' metric samples. killOwner takes the primary out of
// the pool before any request arrives.
func simReplicaRun(t *testing.T, killOwner bool) []metrics.Sample {
	t.Helper()
	st := replicaParityStore(t)
	cfg := simsrv.MeikoConfig(3, st)
	cfg.Policy = simsrv.PolicyRoundRobin
	cfg.CacheOff = true // keep every node-2 serve a remote fetch
	cfg.Seed = 11
	cl, err := simsrv.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if killOwner {
		cl.FailNodeAt(0, 0)
	}
	burst := workload.Burst{RPS: 5, DurationSeconds: 4, Jitter: true}
	arr, err := burst.Generate(workload.UniformPicker([]string{"/rep.html"}), nil,
		rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if res := cl.RunSchedule(arr); res.Completed == 0 {
		t.Fatal("simulated burst completed nothing")
	}
	var samples []metrics.Sample
	for i := 0; i < cl.Nodes(); i++ {
		var buf bytes.Buffer
		if err := cl.Registry(i).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		ss, err := metrics.ParseText(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, ss...)
	}
	return samples
}

// liveScrape pulls and parses /sweb/metrics from every live node that
// answers.
func liveScrape(t *testing.T, cl *Cluster) []metrics.Sample {
	t.Helper()
	var samples []metrics.Sample
	for _, srv := range cl.Servers {
		if srv == nil || srv.Closed() {
			continue
		}
		ss, err := Metrics(srv.Addr())
		if err != nil {
			continue
		}
		samples = append(samples, ss...)
	}
	return samples
}

// TestSimLiveReplicaParity is the differential harness for replica-source
// selection: both substrates route node 2's internal fetches through
// core.RankSources, so on an idle cluster both must pull from the primary
// (set-order tie-break), both must flip to the surviving replica when the
// primary dies, and both must expose the identical
// sweb_replica_fetch_total schema.
func TestSimLiveReplicaParity(t *testing.T) {
	const path = "/rep.html"

	// --- DES substrate, healthy and with the owner dead.
	simHealthy := simReplicaRun(t, false)
	simSrc, simSchema := fetchSources(simHealthy, path)
	if len(simSrc) != 1 || simSrc["0"] == 0 {
		t.Fatalf("sim healthy fetch sources = %v, want all from primary 0", simSrc)
	}
	if g := maxReplicaGauge(simHealthy, path); g != 2 {
		t.Fatalf("sim sweb_heat_replicas = %v, want 2", g)
	}
	simKilledSrc, _ := fetchSources(simReplicaRun(t, true), path)
	if len(simKilledSrc) != 1 || simKilledSrc["1"] == 0 {
		t.Fatalf("sim owner-dead fetch sources = %v, want all from survivor 1", simKilledSrc)
	}

	// --- Live substrate: same store layout, requests pinned to node 2.
	st := replicaParityStore(t)
	cl, err := Start(Options{
		Nodes: 3, Store: st, BaseDir: t.TempDir(), Policy: "rr",
		CacheOff:      true,
		LoaddPeriod:   50 * time.Millisecond,
		FetchAttempts: 2, FetchBackoff: 5 * time.Millisecond,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client := cl.NewClient()
	defer client.Close()
	for i := 0; i < 6; i++ {
		res, err := client.GetVia(2, path)
		if err != nil || res.Status != 200 {
			t.Fatalf("healthy get %d: res=%+v err=%v", i, res, err)
		}
	}
	liveSrc, liveSchema := fetchSources(liveScrape(t, cl), path)
	if len(liveSrc) != 1 || liveSrc["0"] == 0 {
		t.Fatalf("live healthy fetch sources = %v, want all from primary 0", liveSrc)
	}
	if g := maxReplicaGauge(liveScrape(t, cl), path); g != 2 {
		t.Fatalf("live sweb_heat_replicas = %v, want 2", g)
	}

	// Kill the primary: the rotation's next attempt must land on the
	// surviving replica with no client-visible failure.
	if err := cl.Kill(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		res, err := client.GetVia(2, path)
		if err != nil || res.Status != 200 {
			t.Fatalf("owner-dead get %d: res=%+v err=%v", i, res, err)
		}
	}
	liveKilledSrc, _ := fetchSources(liveScrape(t, cl), path)
	if liveKilledSrc["1"] == 0 {
		t.Fatalf("live owner-dead fetch sources = %v, want failover traffic from survivor 1", liveKilledSrc)
	}
	if liveKilledSrc["0"] != liveSrc["0"] {
		t.Fatalf("live fetches still crediting dead primary: before=%v after=%v", liveSrc, liveKilledSrc)
	}

	// --- The two substrates must expose the identical metric schema: the
	// differential harness diffs label-key sets, not just values.
	if !reflect.DeepEqual(simSchema, liveSchema) {
		t.Fatalf("replica-fetch schemas diverge:\nsim:  %v\nlive: %v", simSchema, liveSchema)
	}
	// And the healthy-phase choice sequence agrees: one source, the same
	// source, on both substrates.
	simKeys, liveKeys := sortedKeys(simSrc), sortedKeys(liveSrc)
	if !reflect.DeepEqual(simKeys, liveKeys) {
		t.Fatalf("healthy replica choices diverge: sim=%v live=%v", simKeys, liveKeys)
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
