package live

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sweb/internal/core"
	"sweb/internal/httpmsg"
	"sweb/internal/storage"
)

// startCluster is a test helper: n nodes, count files of size bytes.
func startCluster(t *testing.T, n, count int, size int64, policy string) (*Cluster, []string) {
	t.Helper()
	st := storage.NewStore(n)
	paths := storage.UniformSet(st, count, size)
	cl, err := Start(Options{Nodes: n, Store: st, BaseDir: t.TempDir(), Policy: policy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, paths
}

func TestStartValidation(t *testing.T) {
	st := storage.NewStore(2)
	cases := []Options{
		{Nodes: 0, Store: st, BaseDir: "x"},
		{Nodes: 2, Store: nil, BaseDir: "x"},
		{Nodes: 2, Store: st, BaseDir: ""},
		{Nodes: 3, Store: st, BaseDir: "x"},              // store/node mismatch
		{Nodes: 2, Store: st, BaseDir: "x", Policy: "?"}, // unknown policy
	}
	for i, o := range cases {
		if o.BaseDir == "x" {
			o.BaseDir = t.TempDir()
		}
		if _, err := Start(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestServeOwnedDocument(t *testing.T) {
	cl, paths := startCluster(t, 2, 4, 8192, "rr")
	client := cl.NewClient()
	for _, p := range paths {
		res, err := client.Get(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 200 || len(res.Body) != 8192 {
			t.Fatalf("%s: status=%d len=%d", p, res.Status, len(res.Body))
		}
	}
}

func TestBodiesMatchDiskContent(t *testing.T) {
	st := storage.NewStore(2)
	paths := storage.UniformSet(st, 2, 4096)
	dir := t.TempDir()
	cl, err := Start(Options{Nodes: 2, Store: st, BaseDir: dir, Policy: "rr", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.NewClient().Get(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	f, _ := st.Lookup(paths[0])
	disk, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("node%d", f.Owner),
		filepath.FromSlash(strings.TrimPrefix(paths[0], "/"))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Body, disk) {
		t.Fatal("served body differs from on-disk content")
	}
}

// direct fetch against one specific node, no redirect following.
func directGet(t *testing.T, addr, path string) (int, httpmsg.Header, []byte) {
	t.Helper()
	status, hdr, body, err := fetchOnce(addr, path, 10*time.Second, 64<<20)
	if err != nil {
		t.Fatalf("GET %s from %s: %v", path, addr, err)
	}
	return status, hdr, body
}

func TestRemoteFetchThroughNonOwner(t *testing.T) {
	// Round-robin never redirects, so asking the wrong node forces the
	// NFS-style internal fetch path.
	cl, _ := startCluster(t, 2, 2, 4096, "rr")
	st := cl.store
	var pathOwnedBy1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			pathOwnedBy1 = p
			break
		}
	}
	status, _, body := directGet(t, cl.Servers[0].Addr(), pathOwnedBy1)
	if status != 200 || len(body) != 4096 {
		t.Fatalf("status=%d len=%d", status, len(body))
	}
	if cl.Servers[1].Stats().InternalFetch == 0 {
		t.Fatal("owner saw no internal fetch")
	}
}

func TestFileLocalityRedirectsToOwner(t *testing.T) {
	cl, _ := startCluster(t, 2, 2, 4096, "fl")
	// The 302 only happens once node 0 sees node 1 as available.
	waitKnown(t, []int{0}, cl, 2, 5*time.Second)
	st := cl.store
	var pathOwnedBy1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			pathOwnedBy1 = p
			break
		}
	}
	status, hdr, _ := directGet(t, cl.Servers[0].Addr(), pathOwnedBy1)
	if status != 302 {
		t.Fatalf("status = %d, want 302", status)
	}
	loc := hdr.Get("Location")
	if !strings.Contains(loc, cl.Servers[1].Addr()) {
		t.Fatalf("Location %q does not point at the owner", loc)
	}
	if !strings.Contains(loc, "swebr=1") {
		t.Fatalf("Location %q missing the redirect counter", loc)
	}
	// Following the location must serve directly (no ping-pong).
	rest := strings.TrimPrefix(loc, "http://")
	slash := strings.IndexByte(rest, '/')
	status2, _, body := directGet(t, rest[:slash], rest[slash:])
	if status2 != 200 || len(body) != 4096 {
		t.Fatalf("redirect target: status=%d len=%d", status2, len(body))
	}
}

func TestRedirectCounterPreventsPingPong(t *testing.T) {
	cl, _ := startCluster(t, 2, 2, 4096, "fl")
	st := cl.store
	var pathOwnedBy1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			pathOwnedBy1 = p
		}
	}
	// Claim we were already redirected: even the wrong node must serve it.
	status, _, body := directGet(t, cl.Servers[0].Addr(), pathOwnedBy1+"?swebr=1")
	if status != 200 || len(body) != 4096 {
		t.Fatalf("redirected request bounced again: status=%d", status)
	}
}

func TestClientFollowsRedirectTransparently(t *testing.T) {
	cl, paths := startCluster(t, 3, 6, 4096, "fl")
	waitKnown(t, []int{0, 1, 2}, cl, 3, 5*time.Second)
	client := cl.NewClient()
	// Fetch the same document repeatedly: the DNS rotation moves across
	// all three nodes while the owner stays fixed, so two thirds of the
	// fetches must arrive via a 302.
	redirected := 0
	for i := 0; i < 6; i++ {
		res, err := client.Get(paths[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != 200 {
			t.Fatalf("status = %d", res.Status)
		}
		if res.Redirected {
			redirected++
		}
	}
	if redirected != 4 {
		t.Fatalf("redirected %d of 6, want 4 (rotation hits the owner twice)", redirected)
	}
}

func TestNotFound(t *testing.T) {
	cl, _ := startCluster(t, 2, 2, 1024, "sweb")
	res, err := cl.NewClient().Get("/missing.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 404 {
		t.Fatalf("status = %d", res.Status)
	}
}

func TestMalformedRequestGets400(t *testing.T) {
	cl, _ := startCluster(t, 1, 1, 1024, "rr")
	conn, err := net.Dial("tcp", cl.Servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "BOGUS REQUEST LINE\r\n\r\n")
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHEADOmitsBody(t *testing.T) {
	cl, paths := startCluster(t, 1, 1, 4096, "rr")
	conn, err := net.Dial("tcp", cl.Servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &httpmsg.Request{Method: "HEAD", Path: paths[0], Header: httpmsg.Header{}}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := httpmsg.ReadResponseHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Length") != "4096" {
		t.Fatalf("content-length = %q", resp.Header.Get("Content-Length"))
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("HEAD returned %d body bytes", len(rest))
	}
}

func TestCGIGetAndPost(t *testing.T) {
	st := storage.NewStore(2)
	storage.UniformSet(st, 2, 1024)
	st.MustAdd(storage.File{Path: "/cgi-bin/echo.cgi", Size: 64, Owner: 0, CGI: true})
	cl, err := Start(Options{Nodes: 2, Store: st, BaseDir: t.TempDir(), Policy: "sweb", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, srv := range cl.Servers {
		srv.RegisterCGI("/cgi-bin/echo.cgi", func(query string, body []byte) ([]byte, string) {
			return []byte("q=" + query + " b=" + string(body)), "text/plain"
		})
	}
	client := cl.NewClient()
	res, err := client.Get("/cgi-bin/echo.cgi?x=1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || string(res.Body) != "q=x=1 b=" {
		t.Fatalf("cgi get: %d %q", res.Status, res.Body)
	}
	// POST: the footnote-1 extension; must be served where it arrives.
	res, err = client.Post("/cgi-bin/echo.cgi", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || string(res.Body) != "q= b=payload" {
		t.Fatalf("cgi post: %d %q", res.Status, res.Body)
	}
}

func TestLoaddGossipPopulatesTables(t *testing.T) {
	st := storage.NewStore(3)
	storage.UniformSet(st, 3, 1024)
	cl, err := Start(Options{
		Nodes: 3, Store: st, BaseDir: t.TempDir(),
		LoaddPeriod: 50 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		full := true
		for _, srv := range cl.Servers {
			if len(srv.Table().Known()) < 3 {
				full = false
			}
		}
		if full {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, srv := range cl.Servers {
		t.Logf("node %d knows %v (heard %d samples)", i, srv.Table().Known(), srv.Stats().SamplesHeard)
	}
	t.Fatal("loadd gossip did not converge within 5s")
}

func TestMaxConcurrentSheds(t *testing.T) {
	st := storage.NewStore(1)
	paths := storage.UniformSet(st, 1, 1024)
	cl, err := Start(Options{
		Nodes: 1, Store: st, BaseDir: t.TempDir(),
		MaxConcurrent: 1, Policy: "rr", Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Hold one connection open mid-request to occupy the single slot.
	hold, err := net.Dial("tcp", cl.Servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if _, err := hold.Write([]byte("GET " + paths[0] + " HTTP/1.0\r\n")); err != nil {
		t.Fatal(err)
	}
	// The handler goroutine is now blocked reading the rest of the
	// request; a second connection must be shed with 503.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		status, _, _, err := fetchOnce(cl.Servers[0].Addr(), paths[0], time.Second, 1<<20)
		if err == nil && status == 503 {
			if cl.Servers[0].Stats().Refused == 0 {
				t.Fatal("refused counter not incremented")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Skip("could not provoke a 503 (handler won the race repeatedly)")
}

func TestGenerateLoad(t *testing.T) {
	cl, paths := startCluster(t, 2, 4, 2048, "sweb")
	res := cl.Generate(20, 2, func(i int, rng *rand.Rand) string {
		return paths[rng.Intn(len(paths))]
	}, 5)
	if res.Offered != 40 {
		t.Fatalf("offered = %d", res.Offered)
	}
	if res.Completed < 38 {
		t.Fatalf("completed = %d of %d (failed %d)", res.Completed, res.Offered, res.Failed)
	}
	if res.Mean <= 0 || res.Max < res.Mean {
		t.Fatalf("timing stats broken: mean=%v max=%v", res.Mean, res.Max)
	}
}

func TestStatsCounters(t *testing.T) {
	cl, paths := startCluster(t, 2, 2, 4096, "rr")
	client := cl.NewClient()
	for i := 0; i < 4; i++ {
		if _, err := client.Get(paths[i%len(paths)]); err != nil {
			t.Fatal(err)
		}
	}
	var served, bytesOut int64
	for _, srv := range cl.Servers {
		s := srv.Stats()
		served += s.Served
		bytesOut += s.BytesOut
	}
	if served != 4 || bytesOut != 4*4096 {
		t.Fatalf("served=%d bytes=%d", served, bytesOut)
	}
}

func TestMaterializeSkipsCGI(t *testing.T) {
	st := storage.NewStore(1)
	st.MustAdd(storage.File{Path: "/cgi-bin/x.cgi", Size: 10, Owner: 0, CGI: true})
	st.MustAdd(storage.File{Path: "/real.dat", Size: 10, Owner: 0})
	dir := t.TempDir()
	if err := Materialize(st, dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "node0", "real.dat")); err != nil {
		t.Fatal("static file not materialized")
	}
	if _, err := os.Stat(filepath.Join(dir, "node0", "cgi-bin", "x.cgi")); err == nil {
		t.Fatal("CGI endpoint materialized as a file")
	}
}

func TestSplitLocation(t *testing.T) {
	addr, path, ok := splitLocation("http://127.0.0.1:8080/a/b?x=1")
	if !ok || addr != "127.0.0.1:8080" || path != "/a/b?x=1" {
		t.Fatalf("%q %q %v", addr, path, ok)
	}
	if _, _, ok := splitLocation("ftp://x/y"); ok {
		t.Fatal("non-http location accepted")
	}
	addr, path, ok = splitLocation("http://hostonly")
	if !ok || addr != "hostonly" || path != "/" {
		t.Fatalf("%q %q %v", addr, path, ok)
	}
}

func TestSWEBPolicyLiveEndToEnd(t *testing.T) {
	// A SWEB cluster under a small burst: everything completes, and the
	// load spreads across both nodes.
	cl, paths := startCluster(t, 2, 8, 16<<10, "sweb")
	res := cl.Generate(30, 2, func(i int, rng *rand.Rand) string {
		return paths[i%len(paths)]
	}, 6)
	if res.Failed > 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	if len(res.ByServer) < 2 {
		t.Fatalf("all requests landed on one server: %v", res.ByServer)
	}
}

func TestHonorsCoreParams(t *testing.T) {
	// MaxRedirects=0 disables re-scheduling even under file locality.
	st := storage.NewStore(2)
	storage.UniformSet(st, 2, 1024)
	p := core.DefaultParams()
	p.MaxRedirects = 0
	cl, err := Start(Options{
		Nodes: 2, Store: st, BaseDir: t.TempDir(),
		Policy: "fl", Params: p, HaveParams: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var owned1 string
	for _, pth := range st.Paths() {
		if o, _ := st.Owner(pth); o == 1 {
			owned1 = pth
		}
	}
	status, _, _ := directGet(t, cl.Servers[0].Addr(), owned1)
	if status != 200 {
		t.Fatalf("status = %d; MaxRedirects=0 should serve locally", status)
	}
}

func TestConditionalGETReturns304(t *testing.T) {
	cl, paths := startCluster(t, 1, 1, 4096, "rr")
	addr := cl.Servers[0].Addr()

	// First fetch: 200 with Last-Modified.
	status, hdr, body := directGet(t, addr, paths[0])
	if status != 200 || len(body) != 4096 {
		t.Fatalf("status=%d len=%d", status, len(body))
	}
	lastMod := hdr.Get("Last-Modified")
	if lastMod == "" {
		t.Fatal("no Last-Modified header")
	}

	// Revalidation: the same document with If-Modified-Since.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &httpmsg.Request{Method: "GET", Path: paths[0], Header: httpmsg.Header{}}
	req.Header.Set("If-Modified-Since", lastMod)
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpmsg.ReadResponse(bufio.NewReader(conn), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != httpmsg.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp.StatusCode)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(resp.Body))
	}

	// A stale browser copy gets the full document again.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	req2 := &httpmsg.Request{Method: "GET", Path: paths[0], Header: httpmsg.Header{}}
	req2.Header.Set("If-Modified-Since", httpmsg.FormatHTTPDate(time.Now().Add(-24*time.Hour)))
	if err := req2.Write(conn2); err != nil {
		t.Fatal(err)
	}
	resp2, err := httpmsg.ReadResponse(bufio.NewReader(conn2), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != 200 || len(resp2.Body) != 4096 {
		t.Fatalf("stale revalidation: status=%d len=%d", resp2.StatusCode, len(resp2.Body))
	}
}

func TestRedirectPreservesQueryString(t *testing.T) {
	// Regression: the 302 Location used to be rebuilt as "?swebr=N" only,
	// so GET /doc?x=1 arrived at the target node stripped of x=1.
	cl, _ := startCluster(t, 2, 2, 4096, "fl")
	// The 302 only happens once node 0 sees node 1 as available.
	waitKnown(t, []int{0}, cl, 2, 5*time.Second)
	st := cl.store
	var pathOwnedBy1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			pathOwnedBy1 = p
		}
	}
	status, hdr, _ := directGet(t, cl.Servers[0].Addr(), pathOwnedBy1+"?x=1&y=2")
	if status != 302 {
		t.Fatalf("status = %d, want 302", status)
	}
	loc := hdr.Get("Location")
	if !strings.Contains(loc, "x=1&y=2") {
		t.Fatalf("Location %q dropped the client's query string", loc)
	}
	if !strings.Contains(loc, "swebr=1") {
		t.Fatalf("Location %q missing the redirect counter", loc)
	}
	// Following the location serves the document with the query intact.
	rest := strings.TrimPrefix(loc, "http://")
	slash := strings.IndexByte(rest, '/')
	status2, _, body := directGet(t, rest[:slash], rest[slash:])
	if status2 != 200 || len(body) != 4096 {
		t.Fatalf("redirect target: status=%d len=%d", status2, len(body))
	}
}

func TestRedirectedCGIKeepsQuery(t *testing.T) {
	// A CGI registered only at its owner is pinned, so force the redirect
	// shape with a static doc carrying an existing swebr param: the
	// counter must be replaced, never duplicated.
	cl, _ := startCluster(t, 2, 2, 4096, "fl")
	// The 302 only happens once node 0 sees node 1 as available.
	waitKnown(t, []int{0}, cl, 2, 5*time.Second)
	st := cl.store
	var pathOwnedBy1 string
	for _, p := range st.Paths() {
		if o, _ := st.Owner(p); o == 1 {
			pathOwnedBy1 = p
		}
	}
	status, hdr, _ := directGet(t, cl.Servers[0].Addr(), pathOwnedBy1+"?swebr=0&k=v")
	if status != 302 {
		t.Fatalf("status = %d, want 302", status)
	}
	loc := hdr.Get("Location")
	if strings.Count(loc, "swebr=") != 1 {
		t.Fatalf("Location %q duplicated the redirect counter", loc)
	}
	if !strings.Contains(loc, "k=v") {
		t.Fatalf("Location %q dropped the surviving parameter", loc)
	}
}
