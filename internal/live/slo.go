package live

import (
	"encoding/json"
	"fmt"
	"time"

	"sweb/internal/httpmsg"
	"sweb/internal/monitor"
	"sweb/internal/slo"
)

// SLO fetches and decodes one node's /sweb/slo lifetime-budget report.
func SLO(addr string) (*slo.Report, error) {
	code, _, body, err := fetchOnce(addr, "/sweb/slo", scrapeTimeout, 1<<20)
	if err != nil {
		return nil, err
	}
	if code != httpmsg.StatusOK {
		return nil, fmt.Errorf("live: %s/sweb/slo returned %d", addr, code)
	}
	var rep slo.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("live: %s/sweb/slo: %v", addr, err)
	}
	return &rep, nil
}

// SLOReport evaluates objectives over the cluster monitor's time-series
// store: cluster-wide plus per-node budgets over the trailing window
// (whole history when window <= 0). Node subjects use the monitor's
// source names, the same labels the burn-rate rules alert on. Returns an
// error before StartMonitor — rolling windows need scrape history, which
// only the monitor holds; per-node lifetime budgets are SLO(addr)'s job.
func (c *Cluster) SLOReport(objs []slo.Objective, window float64) (slo.Report, error) {
	mon := c.Monitor()
	if mon == nil {
		return slo.Report{}, fmt.Errorf("live: SLOReport needs StartMonitor's scrape history")
	}
	if len(objs) == 0 {
		objs = slo.DefaultObjectives()
	}
	nodes := make([]string, 0, len(c.Servers))
	for _, src := range c.HTTPSources(scrapeTimeout) {
		nodes = append(nodes, src.(*monitor.HTTPSource).Name)
	}
	now := time.Since(c.epoch).Seconds()
	if window <= 0 {
		window = now
	}
	return slo.Evaluate(mon.Store(), nodes, objs, window, now), nil
}
