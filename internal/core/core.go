// Package core implements the paper's primary contribution: SWEB's
// multi-faceted scheduling algorithm (Sec. 3.2). Given a parsed HTTP
// request and each node's last-known CPU, disk, and network loads, the
// broker estimates for every available node the completion time
//
//	t_s = t_redirection + t_data + t_CPU + t_net
//
// and routes the request to the node with the minimum estimate, redirecting
// at most once to prevent the ping-pong effect. The package also implements
// the comparison policies from Sec. 4.2 — NCSA-style round-robin (serve
// wherever DNS sent the request), pure file locality (always serve at the
// file's owner), and a single-faceted CPU-only balancer — plus facet toggles
// used by the ablation benchmarks.
//
// The package is substrate-independent: all quantities are plain float64
// seconds and work units, so the identical scheduler runs inside the
// discrete-event simulator and the live TCP server.
package core

import (
	"fmt"
	"math"
	"sort"
)

// NodeLoad is one row of the broker's view of the cluster, assembled by
// loadd from periodic broadcasts.
type NodeLoad struct {
	// Available is false if the node has not broadcast within the loadd
	// timeout ("marking those processors which have not responded in a
	// preset period of time as unavailable").
	Available bool

	// CPULoad is the runnable-job count (Unix load average style),
	// including any Δ anti-herd bump applied locally after redirecting to
	// this node.
	CPULoad float64
	// DiskLoad is the number of outstanding requests on the node's disk
	// channel.
	DiskLoad float64
	// NetLoad is the number of active transfers on the node's
	// interconnect attachment.
	NetLoad float64

	// Static capabilities, from the architecture configuration file.
	CPUOpsPerSec    float64 // "CPU_speed"
	DiskBytesPerSec float64 // b_disk (b1)
	NetBytesPerSec  float64 // b_net for remote fetches (b2 before penalty)
}

// Request is the broker's view of a parsed HTTP request after the
// preprocessing phase: the pathname is complete, permissions are checked,
// the document is known to exist, and the oracle has characterized it.
type Request struct {
	Path string
	// Size is the response size in bytes.
	Size int64
	// Owner is the node whose local disk holds the document.
	Owner int
	// Replicas is the document's full replica set (primary owner first).
	// Nil means the single-owner layout; the cost model then falls back to
	// Owner alone, preserving the pre-replication behavior bit for bit.
	Replicas []int
	// Ops is the oracle's CPU estimate: fork + read handling + marshaling
	// + any CGI computation.
	Ops float64
	// DiskBytes is the oracle's disk-traffic estimate.
	DiskBytes float64
	// Arrived is the node DNS routed the request to.
	Arrived int
	// RedirectCount is how many times the request has already been
	// redirected. Once it reaches Params.MaxRedirects the request must be
	// completed locally (the paper's no-ping-pong rule, with the default
	// MaxRedirects of 1).
	RedirectCount int
	// CGI requests, non-GET methods, and error responses are always
	// completed where they arrived (Sec. 3.2 step 2).
	PinnedLocal bool
	// CachedLocal reports that the broker's own node already holds the
	// document in its page/NFS-client cache, so serving locally skips the
	// disk and the interconnect entirely. A broker only knows its own
	// cache; remote candidates are estimated pessimistically unless
	// CachedAt says otherwise.
	CachedLocal bool
	// CachedAt, when non-nil, marks peers whose last cooperative-caching
	// digest advertised this document (indexed by node id). A hinted peer
	// serves from memory: its t_data estimate drops to zero.
	CachedAt []bool
}

// cachedAt reports whether the document is believed resident at node.
func (r Request) cachedAt(node, local int) bool {
	if node == local && r.CachedLocal {
		return true
	}
	return r.CachedAt != nil && node >= 0 && node < len(r.CachedAt) && r.CachedAt[node]
}

// replicaSet returns the document's replica node list: the explicit set
// when present, else the single owner.
func (r Request) replicaSet() []int {
	if len(r.Replicas) > 0 {
		return r.Replicas
	}
	return []int{r.Owner}
}

// holdsReplica reports whether node has a local copy of the document.
func (r Request) holdsReplica(node int) bool {
	if len(r.Replicas) == 0 {
		return node == r.Owner
	}
	for _, rep := range r.Replicas {
		if rep == node {
			return true
		}
	}
	return false
}

// Params are the scheduler's tunables, with paper defaults from
// DefaultParams.
type Params struct {
	// Delta is the conservative CPU-load bump applied to a peer after
	// redirecting a request to it, decayed when the next broadcast
	// arrives. The paper uses Δ = 30%.
	Delta float64
	// RedirectCPUSeconds is O, the server-side cost to generate a
	// redirection response (4 ms in Table 5).
	RedirectCPUSeconds float64
	// ClientLatencySeconds is the estimated one-way client↔server
	// latency; a redirection costs two of these ("a very short reply
	// going back to the client browser, who then automatically issues
	// another request").
	ClientLatencySeconds float64
	// ConnectSeconds is t_connect, the server connection setup time.
	ConnectSeconds float64
	// RemotePenalty is the measured remote-vs-local fetch slowdown (≈1.1
	// on the Meiko, 1.5–1.7 on Ethernet). The substrate divides the raw
	// network rate by it to advertise b2; the cost model then uses b2
	// directly.
	RemotePenalty float64
	// MaxRedirects caps redirections per request; the paper fixes 1.
	MaxRedirects int
	// RedirectAdvantage is the conservatism threshold for leaving the
	// local node: a redirect is issued only when the best remote estimate
	// is below RedirectAdvantage × the local estimate. Like the Δ bump,
	// it guards against acting on stale broadcasts — a marginal predicted
	// win is noise, not signal, when load information is seconds old.
	// 1.0 disables the margin; the default 0.7 requires a 30% predicted
	// improvement, mirroring Δ's 30% conservatism.
	RedirectAdvantage float64

	// Facet toggles for the ablation study. All true for SWEB proper.
	UseCPUFacet  bool
	UseDiskFacet bool
	UseNetFacet  bool
}

// DefaultParams returns the paper's calibration.
func DefaultParams() Params {
	return Params{
		Delta:                0.30,
		RedirectCPUSeconds:   0.004,
		ClientLatencySeconds: 0.002,
		ConnectSeconds:       0.003,
		RemotePenalty:        1.1,
		MaxRedirects:         1,
		RedirectAdvantage:    0.7,
		UseCPUFacet:          true,
		UseDiskFacet:         true,
		UseNetFacet:          true,
	}
}

// Validate reports an error for out-of-range parameters.
func (p Params) Validate() error {
	switch {
	case p.Delta < 0:
		return fmt.Errorf("core: Delta must be >= 0")
	case p.RedirectCPUSeconds < 0 || p.ClientLatencySeconds < 0 || p.ConnectSeconds < 0:
		return fmt.Errorf("core: cost terms must be >= 0")
	case p.RemotePenalty < 1:
		return fmt.Errorf("core: RemotePenalty must be >= 1")
	case p.MaxRedirects < 0:
		return fmt.Errorf("core: MaxRedirects must be >= 0")
	case p.RedirectAdvantage <= 0 || p.RedirectAdvantage > 1:
		return fmt.Errorf("core: RedirectAdvantage must be in (0,1]")
	}
	return nil
}

// CostBreakdown itemizes one candidate node's estimate, mirroring the
// paper's formula term by term.
type CostBreakdown struct {
	Node     int
	Redirect float64 // t_redirection
	Data     float64 // t_data
	CPU      float64 // t_CPU
	Net      float64 // t_net: server-attachment egress share (see EstimateCost)
	// Source is the replica node the data term assumed the bytes come
	// from: the candidate itself when it holds a copy (or a cache hit),
	// otherwise the cheapest replica of the document's set.
	Source     int
	Total      float64
	Infeasible bool // node unavailable
}

// Decision is the broker's choice for one request.
type Decision struct {
	// Target is the node that should fulfill the request.
	Target int
	// Estimate is the predicted completion time at Target, seconds.
	Estimate float64
	// Candidates holds the per-node breakdowns (index = node id), for
	// instrumentation and tests.
	Candidates []CostBreakdown
}

// Policy decides where a request should be served. local is the node
// executing the broker; loads[i] describes node i.
type Policy interface {
	// Name identifies the policy in reports ("SWEB", "Round Robin", ...).
	Name() string
	// Choose returns the decision. Implementations must return a target
	// equal to local when the request is pinned or already redirected.
	Choose(req Request, local int, loads []NodeLoad) Decision
}

// mustServeLocally reports whether scheduling is moot for this request.
func mustServeLocally(req Request, p Params) bool {
	return req.PinnedLocal || req.RedirectCount >= p.MaxRedirects
}

// SWEB is the multi-faceted scheduler.
type SWEB struct {
	P Params
}

// NewSWEB returns the paper's scheduler with the given parameters.
func NewSWEB(p Params) *SWEB { return &SWEB{P: p} }

// Name implements Policy.
func (s *SWEB) Name() string { return "SWEB" }

// EstimateCost computes the cost formula for serving req at node target
// given the load table. Exported so tests and the analytic comparisons can
// probe individual terms.
func (s *SWEB) EstimateCost(req Request, local, target int, loads []NodeLoad) CostBreakdown {
	cb := CostBreakdown{Node: target, Source: target}
	ld := loads[target]
	if !ld.Available {
		cb.Infeasible = true
		cb.Total = math.Inf(1)
		return cb
	}

	// t_redirection: zero if the task is already local to the target,
	// else two client-server latencies plus a connection setup.
	if target != local {
		cb.Redirect = 2*s.P.ClientLatencySeconds + s.P.ConnectSeconds + s.P.RedirectCPUSeconds
	}

	// t_data: local disk at load-degraded bandwidth, or the minimum of the
	// owner's disk channel and the interconnect path for remote files.
	if s.P.UseDiskFacet || s.P.UseNetFacet {
		diskLoad := func(n NodeLoad) float64 {
			if !s.P.UseDiskFacet {
				return 0
			}
			return n.DiskLoad
		}
		netLoad := func(n NodeLoad) float64 {
			if !s.P.UseNetFacet {
				return 0
			}
			return n.NetLoad
		}
		cb.Data, cb.Source = dataSeconds(req, local, target, loads, diskLoad, netLoad)
	}

	// t_CPU: estimated operations over the load-degraded CPU speed.
	if s.P.UseCPUFacet {
		speed := ld.CPUOpsPerSec / (1 + ld.CPULoad)
		cb.CPU = req.Ops / speed
	}

	// t_net: the paper skips this term, assuming "all processors will
	// have basically the same cost" because the Internet path dominates.
	// On the simulated substrate the per-node attachment link is both
	// measurable and unequal (it also carries NFS traffic), so the broker
	// estimates the egress share — without it, every broker happily
	// redirects hot-file requests to an owner whose link is saturated
	// with client sends. Disabled with the net facet for the ablation.
	if s.P.UseNetFacet {
		bn := ld.NetBytesPerSec / (1 + ld.NetLoad)
		cb.Net = float64(req.Size) / bn
	}

	cb.Total = cb.Redirect + cb.Data + cb.CPU + cb.Net
	return cb
}

// dataSeconds prices the t_data term for serving req at target and names
// the replica the bytes would come from. A target holding a replica (or a
// cache-resident copy) reads locally; a remote target prices every
// replica of the document's set and fetches from the cheapest — a
// cache-resident source skips its disk, leaving only the interconnect
// path, exactly as the single-owner model priced a cached owner. Replicas
// marked unavailable are priced only as a last resort, so a dead source
// never outranks a live one. diskLoad and netLoad are the caller's
// facet-ablation views of the load vector.
func dataSeconds(req Request, local, target int, loads []NodeLoad,
	diskLoad, netLoad func(NodeLoad) float64) (float64, int) {
	ld := loads[target]
	switch {
	case req.cachedAt(target, local):
		// Page-cache hit (own cache, or a peer's gossiped digest):
		// a memory copy, effectively free next to the disk and
		// network terms.
		return 0, target
	case req.holdsReplica(target):
		bd := ld.DiskBytesPerSec / (1 + diskLoad(ld))
		return req.DiskBytes / bd, target
	}
	best, bestRep := math.Inf(1), -1
	for pass := 0; pass < 2 && bestRep < 0; pass++ {
		for _, rep := range req.replicaSet() {
			if rep < 0 || rep >= len(loads) || rep == target {
				continue
			}
			if pass == 0 && !loads[rep].Available {
				continue
			}
			if sec := sourceSeconds(req, local, target, rep, loads, diskLoad, netLoad); sec < best {
				best, bestRep = sec, rep
			}
		}
	}
	if bestRep < 0 {
		// No remote source at all (the set reduced to the target, or every
		// replica is out of range): price the local disk.
		bd := ld.DiskBytesPerSec / (1 + diskLoad(ld))
		return req.DiskBytes / bd, target
	}
	return best, bestRep
}

// sourceSeconds prices one remote fetch: req's bytes pulled from replica
// rep for service at target. b2 — the advertised NetBytesPerSec — already
// folds in the NFS protocol penalty, exactly as the paper's measured b2
// does.
func sourceSeconds(req Request, local, target, rep int, loads []NodeLoad,
	diskLoad, netLoad func(NodeLoad) float64) float64 {
	ld := loads[target]
	bn := ld.NetBytesPerSec / (1 + netLoad(ld))
	if req.cachedAt(rep, local) {
		// The source holds the document in memory: its NFS answer skips
		// the disk, leaving only the interconnect path.
		return req.DiskBytes / bn
	}
	src := loads[rep]
	bd := src.DiskBytesPerSec / (1 + diskLoad(src))
	return req.DiskBytes / math.Min(bd, bn)
}

// identityDisk and identityNet are the facet-free load views RankSources
// uses: failover order is about where the bytes physically are, not about
// the scheduler ablation under test.
func identityDisk(n NodeLoad) float64 { return n.DiskLoad }
func identityNet(n NodeLoad) float64  { return n.NetLoad }

// RankSources orders req's replica set cheapest-first for service at
// target — the fetch-failover order both substrates walk: the first
// source gets the internal fetch, and when it dies mid-budget the relay
// fails over down the list. The target itself leads when it holds a
// replica (a local copy beats any interconnect path); available replicas
// follow, priced by the same disk-vs-interconnect minimum EstimateCost
// uses; unavailable replicas trail in set order as the last resort.
func RankSources(req Request, local, target int, loads []NodeLoad) []int {
	type cand struct {
		node int
		sec  float64
		up   bool
		idx  int
	}
	reps := req.replicaSet()
	cands := make([]cand, 0, len(reps))
	for i, rep := range reps {
		if rep < 0 || rep >= len(loads) {
			continue
		}
		c := cand{node: rep, idx: i, up: loads[rep].Available}
		if rep == target {
			c.sec, c.up = 0, true
		} else {
			c.sec = sourceSeconds(req, local, target, rep, loads, identityDisk, identityNet)
		}
		cands = append(cands, c)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.up != cb.up {
			return ca.up
		}
		if ca.sec != cb.sec {
			return ca.sec < cb.sec
		}
		return ca.idx < cb.idx
	})
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// PickSource returns RankSources' first choice — the node the document's
// bytes should come from when req is served at target. Falls back to the
// primary owner when the replica set is empty or out of range.
func PickSource(req Request, local, target int, loads []NodeLoad) int {
	if r := RankSources(req, local, target, loads); len(r) > 0 {
		return r[0]
	}
	return req.Owner
}

// Choose implements Policy: minimum estimated completion time, with ties
// broken in favor of the local node (avoiding a pointless redirection) and
// then the lowest node id.
func (s *SWEB) Choose(req Request, local int, loads []NodeLoad) Decision {
	if mustServeLocally(req, s.P) {
		return Decision{Target: local, Estimate: s.EstimateCost(req, local, local, loads).Total}
	}
	d := Decision{Target: local, Estimate: math.Inf(1), Candidates: make([]CostBreakdown, len(loads))}
	best := math.Inf(1)
	bestNode := local
	for i := range loads {
		cb := s.EstimateCost(req, local, i, loads)
		d.Candidates[i] = cb
		if cb.Infeasible {
			continue
		}
		better := cb.Total < best-1e-12
		tie := math.Abs(cb.Total-best) <= 1e-12
		if better || (tie && i == local && bestNode != local) {
			best = cb.Total
			bestNode = i
		}
	}
	if math.IsInf(best, 1) {
		// Every peer looks dead; serve locally rather than dropping.
		return Decision{Target: local, Estimate: best, Candidates: d.Candidates}
	}
	// Apply the redirect-advantage margin: leave home only for a clear win.
	if bestNode != local {
		localTotal := d.Candidates[local].Total
		if !d.Candidates[local].Infeasible && best >= s.P.RedirectAdvantage*localTotal {
			bestNode = local
			best = localTotal
		}
	}
	d.Target = bestNode
	d.Estimate = best
	return d
}

// RoundRobin is the NCSA baseline: the DNS rotation is the whole policy, so
// every request is served where it arrived.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "Round Robin" }

// Choose implements Policy.
func (RoundRobin) Choose(req Request, local int, loads []NodeLoad) Decision {
	return Decision{Target: local}
}

// FileLocality always routes to the node owning the requested file,
// "purely exploit[ing] the file locality", regardless of load. If the owner
// looks unavailable the request is served locally.
type FileLocality struct {
	P Params
}

// Name implements Policy.
func (FileLocality) Name() string { return "File Locality" }

// Choose implements Policy.
func (f FileLocality) Choose(req Request, local int, loads []NodeLoad) Decision {
	if mustServeLocally(req, f.P) {
		return Decision{Target: local}
	}
	owner := req.Owner
	if owner < 0 || owner >= len(loads) || !loads[owner].Available {
		return Decision{Target: local}
	}
	return Decision{Target: owner}
}

// CPUOnly is the single-faceted baseline from the load-balancing literature
// the paper contrasts against: "the criteria for task migration are based on
// a single system parameter, i.e., the CPU load".
type CPUOnly struct {
	P Params
}

// Name implements Policy.
func (CPUOnly) Name() string { return "CPU Only" }

// Choose implements Policy: pick the available node with the lowest CPU
// load, preferring local on ties.
func (c CPUOnly) Choose(req Request, local int, loads []NodeLoad) Decision {
	if mustServeLocally(req, c.P) {
		return Decision{Target: local}
	}
	best := math.Inf(1)
	bestNode := -1
	for i, ld := range loads {
		if !ld.Available {
			continue
		}
		switch {
		case ld.CPULoad < best-1e-12:
			best = ld.CPULoad
			bestNode = i
		case math.Abs(ld.CPULoad-best) <= 1e-12 && i == local:
			bestNode = i // prefer local on ties: no pointless redirect
		}
	}
	if bestNode < 0 {
		return Decision{Target: local}
	}
	return Decision{Target: bestNode, Estimate: best}
}
