package core

import (
	"math"
	"testing"
	"testing/quick"
)

// evenLoads builds n identical available rows with the Meiko capabilities.
func evenLoads(n int) []NodeLoad {
	loads := make([]NodeLoad, n)
	for i := range loads {
		loads[i] = NodeLoad{
			Available:       true,
			CPUOpsPerSec:    40e6,
			DiskBytesPerSec: 5e6,
			NetBytesPerSec:  4.5e6,
		}
	}
	return loads
}

func baseRequest() Request {
	return Request{
		Path:      "/doc.dat",
		Size:      1536 << 10,
		Owner:     0,
		Ops:       800e3,
		DiskBytes: 1536 << 10,
		Arrived:   1,
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	if p.Delta != 0.30 || p.MaxRedirects != 1 {
		t.Fatalf("paper calibration changed: %+v", p)
	}
	if !p.UseCPUFacet || !p.UseDiskFacet || !p.UseNetFacet {
		t.Fatal("all facets must default on")
	}
}

func TestParamsValidateErrors(t *testing.T) {
	mk := func(mut func(*Params)) Params {
		p := DefaultParams()
		mut(&p)
		return p
	}
	bad := []Params{
		mk(func(p *Params) { p.Delta = -0.1 }),
		mk(func(p *Params) { p.RedirectCPUSeconds = -1 }),
		mk(func(p *Params) { p.ClientLatencySeconds = -1 }),
		mk(func(p *Params) { p.ConnectSeconds = -1 }),
		mk(func(p *Params) { p.RemotePenalty = 0.9 }),
		mk(func(p *Params) { p.MaxRedirects = -1 }),
		mk(func(p *Params) { p.RedirectAdvantage = 0 }),
		mk(func(p *Params) { p.RedirectAdvantage = 1.5 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestEstimateLocalVsRemoteData(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(3)
	atOwner := s.EstimateCost(req, 0, 0, loads)
	atOther := s.EstimateCost(req, 1, 1, loads)
	// Owner reads at b1=5MB/s; the other node fetches at b2=4.5MB/s.
	wantOwner := float64(req.DiskBytes) / 5e6
	wantOther := float64(req.DiskBytes) / 4.5e6
	if math.Abs(atOwner.Data-wantOwner) > 1e-9 {
		t.Fatalf("owner data = %v want %v", atOwner.Data, wantOwner)
	}
	if math.Abs(atOther.Data-wantOther) > 1e-9 {
		t.Fatalf("remote data = %v want %v", atOther.Data, wantOther)
	}
}

func TestEstimateRedirectTermOnlyForRemoteTargets(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(3)
	local := s.EstimateCost(req, 1, 1, loads)
	remote := s.EstimateCost(req, 1, 2, loads)
	if local.Redirect != 0 {
		t.Fatalf("local redirect cost = %v", local.Redirect)
	}
	want := 2*s.P.ClientLatencySeconds + s.P.ConnectSeconds + s.P.RedirectCPUSeconds
	if math.Abs(remote.Redirect-want) > 1e-12 {
		t.Fatalf("remote redirect cost = %v want %v", remote.Redirect, want)
	}
}

func TestEstimateCPUDegradesWithLoad(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(2)
	idle := s.EstimateCost(req, 0, 1, loads).CPU
	loads[1].CPULoad = 3
	busy := s.EstimateCost(req, 0, 1, loads).CPU
	if math.Abs(busy-4*idle) > 1e-9 {
		t.Fatalf("cpu cost: idle=%v busy=%v, want 4x", idle, busy)
	}
}

func TestEstimateDiskLoadDegradesOwnerFetch(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(2)
	base := s.EstimateCost(req, 0, 0, loads).Data
	loads[0].DiskLoad = 1
	degraded := s.EstimateCost(req, 0, 0, loads).Data
	if math.Abs(degraded-2*base) > 1e-9 {
		t.Fatalf("disk degradation: %v -> %v, want 2x", base, degraded)
	}
}

func TestEstimateRemoteUsesMinOfDiskAndNet(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(2)
	// Saturate the owner's disk so it becomes the bottleneck.
	loads[0].DiskLoad = 9 // effective 0.5 MB/s < b2
	cb := s.EstimateCost(req, 1, 1, loads)
	want := float64(req.DiskBytes) / (5e6 / 10)
	if math.Abs(cb.Data-want) > 1e-9 {
		t.Fatalf("remote data = %v want %v (owner-disk bound)", cb.Data, want)
	}
}

func TestEstimateUnavailableNodeInfeasible(t *testing.T) {
	s := NewSWEB(DefaultParams())
	loads := evenLoads(2)
	loads[1].Available = false
	cb := s.EstimateCost(baseRequest(), 0, 1, loads)
	if !cb.Infeasible || !math.IsInf(cb.Total, 1) {
		t.Fatalf("dead node feasible: %+v", cb)
	}
}

func TestEstimateCachedLocalSkipsData(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	req.CachedLocal = true
	loads := evenLoads(3)
	local := s.EstimateCost(req, 1, 1, loads)
	if local.Data != 0 {
		t.Fatalf("cached-local data = %v", local.Data)
	}
	// Only the broker's own node benefits: other candidates don't.
	other := s.EstimateCost(req, 1, 2, loads)
	if other.Data == 0 {
		t.Fatal("cache knowledge leaked to remote candidate")
	}
}

func TestEstimateNetTermUsesEgressShare(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(2)
	idle := s.EstimateCost(req, 0, 0, loads).Net
	loads[0].NetLoad = 2
	busy := s.EstimateCost(req, 0, 0, loads).Net
	if idle <= 0 || math.Abs(busy-3*idle) > 1e-9 {
		t.Fatalf("net term: idle=%v busy=%v", idle, busy)
	}
}

func TestChoosePrefersOwnerWhenMarginDisabled(t *testing.T) {
	p := DefaultParams()
	p.RedirectAdvantage = 1.0 // no conservatism: raw cost minimization
	s := NewSWEB(p)
	req := baseRequest() // owner 0, arrived at 1
	dec := s.Choose(req, 1, evenLoads(3))
	if dec.Target != 0 {
		t.Fatalf("idle cluster should exploit locality, chose %d", dec.Target)
	}
}

func TestChooseMarginSuppressesMarginalRedirect(t *testing.T) {
	// With the default 30% advantage requirement, the small b1-vs-b2 gap
	// on an idle cluster is not worth a round trip to the client.
	s := NewSWEB(DefaultParams())
	dec := s.Choose(baseRequest(), 1, evenLoads(3))
	if dec.Target != 1 {
		t.Fatalf("marginal redirect issued to %d", dec.Target)
	}
}

func TestChooseAvoidsOverloadedOwner(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	loads := evenLoads(3)
	loads[0].DiskLoad = 20
	loads[0].NetLoad = 20
	loads[0].CPULoad = 20
	dec := s.Choose(req, 1, loads)
	if dec.Target == 0 {
		t.Fatal("chose the melted owner")
	}
	if dec.Target != 1 {
		t.Fatalf("should serve locally, chose %d", dec.Target)
	}
}

func TestChooseRedirectAdvantageMargin(t *testing.T) {
	p := DefaultParams()
	p.RedirectAdvantage = 0.7
	s := NewSWEB(p)
	req := baseRequest()
	loads := evenLoads(3)
	// Make node 2 marginally better than local node 1 (same data path,
	// slightly lower CPU load).
	loads[1].CPULoad = 0.2
	dec := s.Choose(req, 1, loads)
	if dec.Target == 2 {
		t.Fatal("marginal win must not trigger a redirect")
	}
}

func TestChooseRedirectCountPinsRequest(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	req.RedirectCount = 1 // already redirected once
	loads := evenLoads(3)
	loads[1].CPULoad = 50 // local looks terrible
	dec := s.Choose(req, 1, loads)
	if dec.Target != 1 {
		t.Fatalf("redirected request moved again to %d (ping-pong)", dec.Target)
	}
}

func TestChoosePinnedLocalStaysLocal(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	req.PinnedLocal = true
	dec := s.Choose(req, 1, evenLoads(3))
	if dec.Target != 1 {
		t.Fatalf("pinned request moved to %d", dec.Target)
	}
}

func TestChooseAllPeersDeadServesLocally(t *testing.T) {
	s := NewSWEB(DefaultParams())
	loads := evenLoads(3)
	for i := range loads {
		loads[i].Available = false
	}
	dec := s.Choose(baseRequest(), 1, loads)
	if dec.Target != 1 {
		t.Fatalf("with everyone dead, serve locally; chose %d", dec.Target)
	}
}

func TestChooseMaxRedirectsZeroDisablesScheduling(t *testing.T) {
	p := DefaultParams()
	p.MaxRedirects = 0
	s := NewSWEB(p)
	loads := evenLoads(3)
	loads[1].CPULoad = 100
	dec := s.Choose(baseRequest(), 1, loads)
	if dec.Target != 1 {
		t.Fatalf("MaxRedirects=0 still redirected to %d", dec.Target)
	}
}

func TestRoundRobinAlwaysLocal(t *testing.T) {
	var rr RoundRobin
	if rr.Name() != "Round Robin" {
		t.Fatal("name")
	}
	loads := evenLoads(3)
	loads[2].CPULoad = 1000
	for local := 0; local < 3; local++ {
		if dec := rr.Choose(baseRequest(), local, loads); dec.Target != local {
			t.Fatalf("rr moved a request from %d to %d", local, dec.Target)
		}
	}
}

func TestFileLocalityTargetsOwner(t *testing.T) {
	fl := FileLocality{P: DefaultParams()}
	if fl.Name() != "File Locality" {
		t.Fatal("name")
	}
	loads := evenLoads(3)
	loads[0].CPULoad = 1000 // load is irrelevant to FL
	dec := fl.Choose(baseRequest(), 1, loads)
	if dec.Target != 0 {
		t.Fatalf("fl chose %d, want owner 0", dec.Target)
	}
}

func TestFileLocalityFallsBackWhenOwnerDead(t *testing.T) {
	fl := FileLocality{P: DefaultParams()}
	loads := evenLoads(3)
	loads[0].Available = false
	dec := fl.Choose(baseRequest(), 1, loads)
	if dec.Target != 1 {
		t.Fatalf("fl with dead owner chose %d", dec.Target)
	}
}

func TestFileLocalityHonorsRedirectLimit(t *testing.T) {
	fl := FileLocality{P: DefaultParams()}
	req := baseRequest()
	req.RedirectCount = 1
	dec := fl.Choose(req, 1, evenLoads(3))
	if dec.Target != 1 {
		t.Fatal("fl redirected an already-redirected request")
	}
}

func TestCPUOnlyPicksLowestCPULoad(t *testing.T) {
	c := CPUOnly{P: DefaultParams()}
	if c.Name() != "CPU Only" {
		t.Fatal("name")
	}
	loads := evenLoads(4)
	loads[0].CPULoad = 3
	loads[1].CPULoad = 2
	loads[2].CPULoad = 0.5
	loads[3].CPULoad = 1
	dec := c.Choose(baseRequest(), 1, loads)
	if dec.Target != 2 {
		t.Fatalf("cpu-only chose %d", dec.Target)
	}
}

func TestCPUOnlyPrefersLocalOnTie(t *testing.T) {
	c := CPUOnly{P: DefaultParams()}
	dec := c.Choose(baseRequest(), 2, evenLoads(4))
	if dec.Target != 2 {
		t.Fatalf("tie should stay local, chose %d", dec.Target)
	}
}

func TestCPUOnlySkipsDeadNodes(t *testing.T) {
	c := CPUOnly{P: DefaultParams()}
	loads := evenLoads(3)
	loads[0].Available = false
	loads[0].CPULoad = 0 // dead but tempting
	loads[1].CPULoad = 5
	loads[2].CPULoad = 4
	dec := c.Choose(baseRequest(), 1, loads)
	if dec.Target != 2 {
		t.Fatalf("chose %d", dec.Target)
	}
}

func TestFacetTogglesZeroTheirTerms(t *testing.T) {
	req := baseRequest()
	loads := evenLoads(2)
	loads[1].CPULoad, loads[1].DiskLoad, loads[1].NetLoad = 2, 2, 2

	p := DefaultParams()
	p.UseCPUFacet = false
	if cb := NewSWEB(p).EstimateCost(req, 1, 1, loads); cb.CPU != 0 {
		t.Fatalf("cpu facet off but cost %v", cb.CPU)
	}
	p = DefaultParams()
	p.UseNetFacet = false
	if cb := NewSWEB(p).EstimateCost(req, 1, 1, loads); cb.Net != 0 {
		t.Fatalf("net facet off but cost %v", cb.Net)
	}
	p = DefaultParams()
	p.UseDiskFacet = false
	cbOff := NewSWEB(p).EstimateCost(baseRequest(), 0, 0, loads)
	loads[0].DiskLoad = 10
	cbOff2 := NewSWEB(p).EstimateCost(baseRequest(), 0, 0, loads)
	if cbOff.Data != cbOff2.Data {
		t.Fatal("disk facet off but disk load still matters")
	}
}

// Property: Choose never returns an unavailable or out-of-range target.
func TestChooseTargetAlwaysValidProperty(t *testing.T) {
	s := NewSWEB(DefaultParams())
	f := func(cpu, disk, net [5]uint8, avail [5]bool, owner, local uint8, size uint32) bool {
		loads := evenLoads(5)
		anyUp := false
		for i := range loads {
			loads[i].CPULoad = float64(cpu[i] % 50)
			loads[i].DiskLoad = float64(disk[i] % 50)
			loads[i].NetLoad = float64(net[i] % 50)
			loads[i].Available = avail[i]
			anyUp = anyUp || avail[i]
		}
		lcl := int(local % 5)
		loads[lcl].Available = true // the broker's own node is alive
		req := baseRequest()
		req.Owner = int(owner % 5)
		req.Size = int64(size%10_000_000) + 1
		req.DiskBytes = float64(req.Size)
		dec := s.Choose(req, lcl, loads)
		if dec.Target < 0 || dec.Target >= 5 {
			return false
		}
		return loads[dec.Target].Available
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the chosen target has the minimum estimate among candidates
// that beat the redirect-advantage margin.
func TestChooseIsMinCostProperty(t *testing.T) {
	s := NewSWEB(DefaultParams())
	f := func(cpu, disk, net [4]uint8, owner, local uint8) bool {
		loads := evenLoads(4)
		for i := range loads {
			loads[i].CPULoad = float64(cpu[i] % 20)
			loads[i].DiskLoad = float64(disk[i] % 20)
			loads[i].NetLoad = float64(net[i] % 20)
		}
		lcl := int(local % 4)
		req := baseRequest()
		req.Owner = int(owner % 4)
		dec := s.Choose(req, lcl, loads)
		best := math.Inf(1)
		for i := range loads {
			cb := s.EstimateCost(req, lcl, i, loads)
			if cb.Total < best {
				best = cb.Total
			}
		}
		chosen := s.EstimateCost(req, lcl, dec.Target, loads).Total
		if dec.Target == lcl {
			// Local is legal if nothing beats it by the required margin.
			localCost := chosen
			return best >= s.P.RedirectAdvantage*localCost || best == localCost
		}
		return math.Abs(chosen-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateHonorsPeerCacheHints(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest() // owner 0
	req.CachedAt = []bool{false, false, true}
	loads := evenLoads(3)
	hinted := s.EstimateCost(req, 1, 2, loads)
	if hinted.Data != 0 {
		t.Fatalf("hinted peer data = %v", hinted.Data)
	}
	unhinted := s.EstimateCost(req, 1, 1, loads)
	if unhinted.Data == 0 {
		t.Fatal("unhinted node treated as cached")
	}
}

func TestChoosePrefersCachedPeerUnderMargin(t *testing.T) {
	p := DefaultParams()
	s := NewSWEB(p)
	req := baseRequest() // owner 0, large file
	req.CachedAt = []bool{false, false, true}
	loads := evenLoads(3)
	// The hinted peer skips ~0.33s of data time: a >30% predicted win.
	dec := s.Choose(req, 1, loads)
	if dec.Target != 2 {
		t.Fatalf("chose %d, want the memory-resident peer 2", dec.Target)
	}
}

func TestSWEBName(t *testing.T) {
	if NewSWEB(DefaultParams()).Name() != "SWEB" {
		t.Fatal("name")
	}
}

func TestChooseCandidatesPopulated(t *testing.T) {
	s := NewSWEB(DefaultParams())
	dec := s.Choose(baseRequest(), 1, evenLoads(3))
	if len(dec.Candidates) != 3 {
		t.Fatalf("candidates = %d", len(dec.Candidates))
	}
	for i, cb := range dec.Candidates {
		if cb.Node != i {
			t.Fatalf("candidate %d labeled %d", i, cb.Node)
		}
		if cb.Total <= 0 {
			t.Fatalf("candidate %d has non-positive total", i)
		}
	}
}

func TestPinnedSkipsCandidateEvaluation(t *testing.T) {
	s := NewSWEB(DefaultParams())
	req := baseRequest()
	req.PinnedLocal = true
	dec := s.Choose(req, 0, evenLoads(3))
	if dec.Candidates != nil {
		t.Fatal("pinned decision evaluated candidates")
	}
}
