// Skewed hotspot: the paper's Section 4.2 pathology. Every client hammers
// the same 1.5 MB file owned by node 0 — under pure file locality the
// "parallel" system collapses onto a single server (the paper measured
// 81.4 s vs round robin's 3.7 s). SWEB must notice the owner melting and
// serve the hot document from the other nodes' caches instead.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sweb"
)

func main() {
	const (
		nodes = 6
		rps   = 8
		dur   = 45 // the paper's skew-test duration
	)
	fmt.Println("Skewed test: 6 servers, 8 rps for 45 s, every request for the")
	fmt.Println("same 1.5 MB file on node 0 (paper: RR 3.7s, FL 81.4s).")
	fmt.Println()
	fmt.Printf("%-14s %10s %10s %8s %10s %s\n", "policy", "mean", "max", "drops", "redirects", "served-per-node")

	for _, policy := range []string{sweb.PolicyRoundRobin, sweb.PolicyFileLocality, sweb.PolicySWEB} {
		st := sweb.NewStore(nodes)
		hot := sweb.SkewedSet(st, 1536<<10)

		cfg := sweb.MeikoSim(nodes, st)
		cfg.Policy = policy
		cfg.Seed = 5
		cl, err := sweb.NewSimCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		burst := sweb.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		arrivals, err := burst.Generate(sweb.SinglePicker(hot), nil, rand.New(rand.NewSource(23)))
		if err != nil {
			log.Fatal(err)
		}
		res := cl.RunSchedule(arrivals)

		perNode := ""
		for i, n := range res.PerNodeServed {
			perNode += fmt.Sprintf("n%d=%d ", i, n)
		}
		fmt.Printf("%-14s %9.2fs %9.2fs %7.1f%% %10d %s\n",
			cl.PolicyName(), res.MeanResponse(), res.Response.Max(),
			res.DropRate()*100, res.Redirects, perNode)
	}
	fmt.Println()
	fmt.Println("File locality funnels everything to node 0; round robin and SWEB")
	fmt.Println("spread the load — after one fetch each node serves the hot file")
	fmt.Println("from its own page cache.")
}
