// Skewed hotspot: the paper's Section 4.2 pathology. Every client hammers
// the same 1.5 MB file owned by node 0 — under pure file locality the
// "parallel" system collapses onto a single server (the paper measured
// 81.4 s vs round robin's 3.7 s). SWEB must notice the owner melting and
// serve the hot document from the other nodes' caches instead.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"sweb"
)

func main() {
	const (
		nodes = 6
		rps   = 8
		dur   = 45 // the paper's skew-test duration
	)
	fmt.Println("Skewed test: 6 servers, 8 rps for 45 s, every request for the")
	fmt.Println("same 1.5 MB file on node 0 (paper: RR 3.7s, FL 81.4s).")
	fmt.Println()
	fmt.Printf("%-14s %10s %10s %8s %10s %s\n", "policy", "mean", "max", "drops", "redirects", "served-per-node")

	for _, policy := range []string{sweb.PolicyRoundRobin, sweb.PolicyFileLocality, sweb.PolicySWEB} {
		st := sweb.NewStore(nodes)
		hot := sweb.SkewedSet(st, 1536<<10)

		cfg := sweb.MeikoSim(nodes, st)
		cfg.Policy = policy
		cfg.Seed = 5
		cl, err := sweb.NewSimCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		burst := sweb.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		arrivals, err := burst.Generate(sweb.SinglePicker(hot), nil, rand.New(rand.NewSource(23)))
		if err != nil {
			log.Fatal(err)
		}
		res := cl.RunSchedule(arrivals)

		perNode := ""
		for i, n := range res.PerNodeServed {
			perNode += fmt.Sprintf("n%d=%d ", i, n)
		}
		fmt.Printf("%-14s %9.2fs %9.2fs %7.1f%% %10d %s\n",
			cl.PolicyName(), res.MeanResponse(), res.Response.Max(),
			res.DropRate()*100, res.Redirects, perNode)
	}
	fmt.Println()
	fmt.Println("File locality funnels everything to node 0; round robin and SWEB")
	fmt.Println("spread the load — after one fetch each node serves the hot file")
	fmt.Println("from its own page cache.")

	liveHeat()
}

// liveHeat replays the hotspot on a real 4-node cluster and renders the
// document-heat panel and placement advisor — the same two tables
// `swebtop -nodes ...` refreshes live from every node's /sweb/heat.
func liveHeat() {
	fmt.Println()
	fmt.Println("Live replay: the same hotspot on a 4-node live cluster. The heat")
	fmt.Println("sketch names the culprit; the advisor prices an extra replica:")
	fmt.Println()

	dir, err := os.MkdirTemp("", "sweb-hotspot")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st := sweb.NewStore(4)
	bg := sweb.UniformSet(st, 8, 8<<10)
	hot := sweb.SkewedSet(st, 64<<10)
	cl, err := sweb.StartLive(sweb.LiveOptions{
		Nodes: 4, Store: st, BaseDir: dir, Policy: sweb.PolicySWEB, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	client := cl.NewClient()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		p := hot
		if rng.Float64() > 0.8 {
			p = bg[rng.Intn(len(bg))]
		}
		if _, err := client.Get(p); err != nil {
			log.Fatal(err)
		}
	}

	m := cl.MergedHeat()
	fmt.Println(sweb.RenderHeat("hottest documents, cluster-wide", m, 6))
	fmt.Println()
	fmt.Println(sweb.RenderHeatAdvice("placement advisor (report-only)", sweb.AdviseHeat(m), 4))
}
