// Quickstart: bring up a live 4-node SWEB cluster on localhost, fetch a few
// documents through the round-robin front, and watch one request get
// 302-redirected by the multi-faceted scheduler — the Figure 1 transaction
// (DNS lookup → connect → request → response) with SWEB's extra hop.
package main

import (
	"fmt"
	"log"
	"os"

	"sweb"
)

func main() {
	dir, err := os.MkdirTemp("", "sweb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Four nodes, sixteen 64 KB documents spread round-robin across their
	// dedicated docroots.
	const nodes = 4
	st := sweb.NewStore(nodes)
	paths := sweb.UniformSet(st, 16, 64<<10)

	cl, err := sweb.StartLive(sweb.LiveOptions{Nodes: nodes, Store: st, BaseDir: dir, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fmt.Printf("SWEB cluster up: %d nodes\n", nodes)
	for i, addr := range cl.Addrs() {
		fmt.Printf("  node %d  http://%s  (owns %d documents)\n", i, addr, len(st.OwnedBy(i)))
	}

	client := cl.NewClient()
	fmt.Println("\nFigure 1, live: client C resolves the server via round-robin DNS,")
	fmt.Println("connects, sends the request, and receives the response —")
	fmt.Println("possibly via one SWEB redirection to a better node.")
	for _, p := range paths[:6] {
		res, err := client.Get(p)
		if err != nil {
			log.Fatal(err)
		}
		hop := "served directly"
		if res.Redirected {
			hop = "302-redirected by the broker"
		}
		fmt.Printf("  GET %-22s -> %d, %6d bytes from %s (%s, %v)\n",
			p, res.Status, len(res.Body), res.ServedBy, hop, res.Elapsed.Round(0))
	}

	// A miss exercises the error path.
	res, err := client.Get("/no/such/document.html")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GET %-22s -> %d (%s)\n", "/no/such/document.html", res.Status, "not found")

	// Each node's own view of the run.
	fmt.Println("\nPer-node counters:")
	for i, srv := range cl.Servers {
		s := srv.Stats()
		fmt.Printf("  node %d: served=%d redirected=%d internal-fetches=%d bytes-out=%d\n",
			i, s.Served, s.Redirected, s.InternalFetch, s.BytesOut)
	}
}
