// Trace replay: the full production-trace loop. A live SWEB cluster serves
// real TCP traffic while writing NCSA Common Log Format access logs; the
// captured trace is then replayed through the simulated Meiko under every
// scheduling policy — what operators of a real deployment would do to ask
// "what would SWEB have bought us?".
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"sweb"
	"sweb/internal/httpd"
	"sweb/internal/live"
)

func main() {
	dir, err := os.MkdirTemp("", "sweb-tracereplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Phase 1: a live 3-node cluster with a shared access log. ---
	const nodes = 3
	st := sweb.NewStore(nodes)
	paths := sweb.UniformSet(st, 12, 32<<10)
	var logBuf bytes.Buffer
	logger := sweb.NewAccessLogger(&logBuf)
	// One shared recorder and epoch across the nodes: every request's
	// lifecycle — 302 hops included — lands in a single stream, exported
	// as a Perfetto trace after the run.
	rec := sweb.NewTraceRecorder(0)
	epoch := time.Now()

	if err := live.Materialize(st, dir, 1); err != nil {
		log.Fatal(err)
	}
	var servers []*httpd.Server
	for i := 0; i < nodes; i++ {
		srv, err := httpd.New(httpd.Config{
			ID:      i,
			DocRoot: fmt.Sprintf("%s/node%d", dir, i),
			Store:   st,
			// One shared CLF log, as a site with a log host would run it.
			AccessLog: logger,
			Trace:     rec,
			Epoch:     epoch,
		})
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		defer srv.Close()
	}
	var peers []httpd.Peer
	for i, srv := range servers {
		peers = append(peers, httpd.Peer{ID: i, HTTPAddr: srv.Addr(), UDPAddr: srv.UDPAddr()})
	}
	for _, srv := range servers {
		srv.SetPeers(peers)
		srv.Start()
	}
	cl, err := live.Assemble(servers, st)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Phase 1: live cluster serving a short burst over real sockets...")
	gen := cl.Generate(25, 2, func(i int, rng *rand.Rand) string {
		return paths[rng.Intn(len(paths))]
	}, 42)
	fmt.Printf("  offered %d, completed %d, mean %v\n", gen.Offered, gen.Completed, gen.Mean.Round(0))
	if err := logger.Flush(); err != nil {
		log.Fatal(err)
	}

	// Export the live run as a Chrome trace: the shared recorder is one
	// stream on one clock, so the collector needs no epoch alignment.
	col := sweb.NewTraceCollector()
	col.Add(0, rec.Events())
	spans := col.Spans()
	const traceFile = "tracereplay.perfetto.json"
	tf, err := os.Create(traceFile)
	if err != nil {
		log.Fatal(err)
	}
	if err := sweb.ExportChromeTrace(tf, spans); err != nil {
		log.Fatal(err)
	}
	tf.Close()
	fmt.Printf("  exported %d spans (%d events) to %s — open it at ui.perfetto.dev\n",
		len(spans), rec.Len(), traceFile)

	// --- Phase 2: parse the captured Common Log Format trace. ---
	entries, err := sweb.ParseAccessLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhase 2: captured %d CLF entries; first line:\n  %s\n", len(entries), entries[0])

	// --- Phase 3: replay the trace through the simulated Meiko. ---
	arrivals, err := sweb.FromAccessLog(entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhase 3: replaying %d requests through the simulator per policy:\n", len(arrivals))
	fmt.Printf("  %-14s %10s %10s %10s\n", "policy", "mean", "p95", "redirects")
	for _, policy := range []string{sweb.PolicyRoundRobin, sweb.PolicyFileLocality, sweb.PolicySWEB} {
		cfg := sweb.MeikoSim(nodes, st)
		cfg.Policy = policy
		cfg.Seed = 7
		sim, err := sweb.NewSimCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.RunSchedule(arrivals)
		fmt.Printf("  %-14s %9.3fs %9.3fs %10d\n",
			sim.PolicyName(), res.MeanResponse(), res.Response.Quantile(0.95), res.Redirects)
	}
	fmt.Println()
	fmt.Println("Same trace, three placements: the simulator answers the operator's")
	fmt.Println("question without touching the production cluster.")
}
