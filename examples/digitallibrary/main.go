// Digital library: the workload that motivated SWEB. An Alexandria-style
// corpus — small metadata pages, mid-size browse thumbnails, and large
// full-resolution map scenes, each collection on its own node's disk — is
// served at increasing request rates on the simulated Meiko CS-2, comparing
// SWEB's multi-faceted scheduler against NCSA round-robin and pure file
// locality (the paper's Table 3 scenario on the ADL mix).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sweb"
)

func main() {
	const nodes = 6

	fmt.Println("Alexandria Digital Library on a simulated 6-node Meiko CS-2")
	fmt.Println("Collections: metadata (nodes 0-1), browse images (2-3), full scenes (4-5)")
	fmt.Println()
	fmt.Printf("%-4s %-14s %10s %10s %10s %10s\n", "rps", "policy", "mean", "p95", "drops", "redirects")

	for _, rps := range []int{8, 16, 24} {
		for _, policy := range []string{sweb.PolicyRoundRobin, sweb.PolicyFileLocality, sweb.PolicySWEB} {
			// The library's layout: each collection lives on its own
			// disks — metadata on nodes 0-1, browse images on 2-3, the
			// full-resolution scenes on 4-5. Request counts spread evenly
			// but the bytes all come from two nodes, which is what breaks
			// pure file locality.
			st := sweb.NewStore(nodes)
			rng := rand.New(rand.NewSource(42))
			var meta, browse, full []string
			for i := 0; i < 80; i++ {
				p := fmt.Sprintf("/adl/meta/m%04d.html", i)
				st.MustAdd(sweb.File{Path: p, Size: 2 << 10, Owner: i % 2})
				meta = append(meta, p)
			}
			for i := 0; i < 60; i++ {
				p := fmt.Sprintf("/adl/browse/b%04d.gif", i)
				st.MustAdd(sweb.File{Path: p, Size: 200<<10 + int64(rng.Intn(100<<10)), Owner: 2 + i%2})
				browse = append(browse, p)
			}
			for i := 0; i < 30; i++ {
				p := fmt.Sprintf("/adl/full/f%04d.img", i)
				st.MustAdd(sweb.File{Path: p, Size: 1200<<10 + int64(rng.Intn(300<<10)), Owner: 4 + i%2})
				full = append(full, p)
			}
			// Browsing sessions: most hits are metadata and thumbnails,
			// but the bytes are in the full scenes.
			pick, err := sweb.WeightedPicker(
				[][]string{meta, browse, full}, []float64{0.2, 0.25, 0.55})
			if err != nil {
				log.Fatal(err)
			}

			cfg := sweb.MeikoSim(nodes, st)
			cfg.Policy = policy
			cfg.Seed = int64(rps)
			cl, err := sweb.NewSimCluster(cfg)
			if err != nil {
				log.Fatal(err)
			}
			burst := sweb.Burst{RPS: rps, DurationSeconds: 30, Jitter: true}
			arrivals, err := burst.Generate(pick, nil, rand.New(rand.NewSource(int64(rps)*7)))
			if err != nil {
				log.Fatal(err)
			}
			res := cl.RunSchedule(arrivals)
			fmt.Printf("%-4d %-14s %9.2fs %9.2fs %9.1f%% %10d\n",
				rps, cl.PolicyName(), res.MeanResponse(), res.Response.Quantile(0.95),
				res.DropRate()*100, res.Redirects)
		}
		fmt.Println()
	}
	fmt.Println("Lightly loaded, the three policies are close. As the full-scene")
	fmt.Println("traffic saturates nodes 4-5, file locality melts onto the image")
	fmt.Println("servers while SWEB spreads the work and pulls ahead of both.")
}
