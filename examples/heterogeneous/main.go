// Heterogeneous pool: the Section 5 future-work scenario. Workstations "can
// be used for other computing needs, and can leave and join the system
// resource pool at any time" — so two nodes run at half speed, one node
// crashes mid-run and later rejoins, and the loadd timeout is what keeps
// the cluster serving. Round-robin DNS cannot react; SWEB's brokers route
// around the dead and slow nodes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sweb"
	"sweb/internal/des"
	"sweb/internal/simsrv"
)

func main() {
	const (
		nodes = 6
		rps   = 16
		dur   = 30
	)
	fmt.Println("Heterogeneous 6-node cluster: nodes 4-5 at half speed;")
	fmt.Println("node 3 leaves the pool at t=10s and rejoins at t=20s.")
	fmt.Println()

	for _, policy := range []string{sweb.PolicyRoundRobin, sweb.PolicySWEB} {
		st := sweb.NewStore(nodes)
		paths := sweb.UniformSet(st, 24, 1536<<10)

		specs := simsrv.MeikoSpecs(nodes)
		for _, slow := range []int{4, 5} {
			specs[slow].CPUOpsPerSec /= 2
			specs[slow].DiskBytesPerSec /= 2
		}
		cfg := sweb.SimConfig{Specs: specs, Net: sweb.NetMeiko, Store: st, Policy: policy, Seed: 3}
		cl, err := sweb.NewSimCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cl.FailNodeAt(10*des.Second, 3)
		cl.RecoverNodeAt(20*des.Second, 3)

		burst := sweb.Burst{RPS: rps, DurationSeconds: dur, Jitter: true}
		arrivals, err := burst.Generate(sweb.UniformPicker(paths), nil, rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		res := cl.RunSchedule(arrivals)

		fmt.Printf("%-12s mean=%6.2fs p95=%6.2fs drops=%4.1f%% redirects=%d\n",
			cl.PolicyName(), res.MeanResponse(), res.Response.Quantile(0.95),
			res.DropRate()*100, res.Redirects)
		fmt.Print("  served per node: ")
		for i, n := range res.PerNodeServed {
			fmt.Printf("n%d=%d ", i, n)
		}
		fmt.Println("\n  (node 3 dips while down; nodes 4-5 serve less under SWEB, which")
		fmt.Println("   sees their halved capabilities in every loadd broadcast)")
		fmt.Println()
	}
}
